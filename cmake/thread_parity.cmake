# Golden parity test: the physics metrics a figure bench exports must be
# byte-identical no matter how many TrialRunner workers execute the
# trials. This is the workspace invariant — one Workspace per worker,
# no shared mutable state — checked end-to-end through a real figure.
#
# Invoked by ctest (see bench/CMakeLists.txt) as:
#   cmake -DBENCH=<bench exe> -DSEED=<decimal seed>
#         -DOUT1=<artifact> -DOUT2=<artifact> -DTHREADS2=<N>
#         [-DEXTRA_ARGS=<;-separated extra bench args>]
#         -P thread_parity.cmake
#
# EXTRA_ARGS (e.g. --fault-plan=plan.json) are appended to both bench
# invocations, so faulted runs are held to the same parity bar.
#
# Physics-only export (no --metrics-timing): wall-clock metrics are not
# expected to be reproducible, the physics must be.
foreach(var BENCH SEED OUT1 OUT2 THREADS2)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "thread_parity.cmake: missing -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env JMB_THREADS=1
          "${BENCH}" "${SEED}" "--metrics-out=${OUT1}" ${EXTRA_ARGS}
  RESULT_VARIABLE rc1
  OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "bench '${BENCH}' (JMB_THREADS=1) exited with ${rc1}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env "JMB_THREADS=${THREADS2}"
          "${BENCH}" "${SEED}" "--metrics-out=${OUT2}" ${EXTRA_ARGS}
  RESULT_VARIABLE rc2
  OUTPUT_QUIET)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "bench '${BENCH}' (JMB_THREADS=${THREADS2}) exited with ${rc2}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files "${OUT1}" "${OUT2}"
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
    "physics exports differ between JMB_THREADS=1 and JMB_THREADS=${THREADS2}: "
    "'${OUT1}' vs '${OUT2}'")
endif()
