# Golden parity test for the SIMD dispatch layer: the physics metrics a
# figure bench exports must be byte-identical whether the kernels run on
# the forced scalar backend or the best native one (JMB_SIMD unset). This
# is the dispatch contract from DESIGN.md "SIMD model" checked end-to-end
# through a real figure, not just kernel-by-kernel unit parity.
#
# Invoked by ctest (see bench/CMakeLists.txt) as:
#   cmake -DBENCH=<bench exe> -DSEED=<decimal seed>
#         -DOUT1=<artifact> -DOUT2=<artifact>
#         [-DEXTRA_ARGS=<;-separated extra bench args>]
#         -P simd_parity.cmake
#
# Physics-only export (no --metrics-timing): wall-clock metrics are not
# expected to be reproducible, the physics must be.
foreach(var BENCH SEED OUT1 OUT2)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "simd_parity.cmake: missing -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env JMB_SIMD=scalar
          "${BENCH}" "${SEED}" "--metrics-out=${OUT1}" ${EXTRA_ARGS}
  RESULT_VARIABLE rc1
  OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "bench '${BENCH}' (JMB_SIMD=scalar) exited with ${rc1}")
endif()

# --unset=JMB_SIMD: the native leg must pick the machine's best backend
# even when the surrounding environment (e.g. a CI job matrix) pins one.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env --unset=JMB_SIMD
          "${BENCH}" "${SEED}" "--metrics-out=${OUT2}" ${EXTRA_ARGS}
  RESULT_VARIABLE rc2
  OUTPUT_QUIET)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "bench '${BENCH}' (native SIMD) exited with ${rc2}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files "${OUT1}" "${OUT2}"
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
    "physics exports differ between JMB_SIMD=scalar and the native backend: "
    "'${OUT1}' vs '${OUT2}'")
endif()
