# Flight-recorder end-to-end smoke, two legs:
#
#  1. Fault-triggered dump: run the resilience bench under a fault plan
#     with JMB_FLIGHT_DUMP_DIR set; the quarantine path must write a
#     flight_*.json dump that validates against the trace_event schema
#     and that trace_stats can break down (i.e. it carries span events).
#  2. Explicit drain: run the streaming bench with --trace-out; the
#     trace must validate and trace_stats must find the per-stage /
#     ring-wait spans and item flows.
#
# Invoked by ctest (see bench/CMakeLists.txt) as:
#   cmake -DRESILIENCE=<exe> -DSTREAMING=<exe> -DVALIDATOR=<exe>
#         -DTRACE_STATS=<exe> -DSCHEMA=<trace_event schema>
#         -DFAULT_PLAN=<plan json> -DDUMP_DIR=<dir> -DTRACE_OUT=<path>
#         -P flight_smoke.cmake
foreach(var RESILIENCE STREAMING VALIDATOR TRACE_STATS SCHEMA FAULT_PLAN
            DUMP_DIR TRACE_OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "flight_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

function(check_trace path)
  execute_process(
    COMMAND "${VALIDATOR}" "${SCHEMA}" "${path}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "'${path}' failed trace_event schema validation")
  endif()
  execute_process(
    COMMAND "${TRACE_STATS}" "${path}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace_stats could not analyze '${path}' (${rc})")
  endif()
endfunction()

# --- Leg 1: the quarantine path dumps a crash scene automatically.
file(REMOVE_RECURSE "${DUMP_DIR}")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env "JMB_FLIGHT_DUMP_DIR=${DUMP_DIR}"
          "${RESILIENCE}" 3 "--fault-plan=${FAULT_PLAN}"
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "resilience bench exited with ${bench_rc}")
endif()

file(GLOB dumps "${DUMP_DIR}/flight_*.json")
list(LENGTH dumps n_dumps)
if(n_dumps EQUAL 0)
  message(FATAL_ERROR
    "no flight dump in '${DUMP_DIR}': the quarantine trigger did not fire")
endif()
list(GET dumps 0 first_dump)
check_trace("${first_dump}")

# --- Leg 2: --trace-out drains the recorder after a streaming run.
execute_process(
  COMMAND "${STREAMING}" 11 --quick "--trace-out=${TRACE_OUT}"
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "streaming bench exited with ${bench_rc}")
endif()
if(NOT EXISTS "${TRACE_OUT}")
  message(FATAL_ERROR "streaming bench did not write '${TRACE_OUT}'")
endif()
check_trace("${TRACE_OUT}")
