# bench_compare self-test: two exports of the same (bench, seed) must
# PASS the comparison (physics byte-identical is the repo's determinism
# contract), and a tampered candidate must FAIL with exit 1. Runs the
# comparison both without and with a timing tolerance, so the timing
# structural checks get coverage without depending on wall-clock noise.
#
# The checked-in BENCH_baseline.json is intentionally NOT compared here:
# cross-compiler FP divergence would make that flaky in the {gcc,clang}
# test matrix. The baseline comparison runs in the toolchain-pinned
# bench-artifacts CI job instead.
#
# Invoked by ctest (see bench/CMakeLists.txt) as:
#   cmake -DBENCH=<exe> -DCOMPARE=<bench_compare exe> -DSEED=<n>
#         -DOUT1=<path> -DOUT2=<path> -P bench_compare.cmake
foreach(var BENCH COMPARE SEED OUT1 OUT2)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_compare.cmake: missing -D${var}=...")
  endif()
endforeach()

foreach(out "${OUT1}" "${OUT2}")
  execute_process(
    COMMAND "${BENCH}" "${SEED}" "--metrics-out=${out}"
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
  if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "bench '${BENCH}' exited with ${bench_rc}")
  endif()
endforeach()

execute_process(
  COMMAND "${COMPARE}" "${OUT1}" "${OUT2}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "self-comparison failed (${rc}): determinism broken?")
endif()

# A huge tolerance keeps this leg deterministic while still exercising
# the timing count/order/structure checks.
execute_process(
  COMMAND "${COMPARE}" "${OUT1}" "${OUT2}" --timing-tol=1e9
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "self-comparison with timing failed (${rc})")
endif()

# Fail path: corrupt every metric value in the candidate; the physics
# byte-compare must notice and exit 1 (not 0, not a usage error, and not
# the structural exit 3 — the shape is untouched).
file(READ "${OUT2}" text)
string(REGEX REPLACE "\"value\":([0-9])" "\"value\":9\\1" text "${text}")
file(WRITE "${OUT2}.tampered" "${text}")
execute_process(
  COMMAND "${COMPARE}" "${OUT1}" "${OUT2}.tampered"
  RESULT_VARIABLE rc
  ERROR_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "tampered comparison exited ${rc}, expected 1: mismatch not detected")
endif()

# Structural path: a different "figure" header means the artifacts are
# not the same experiment — exit 3 (regenerate the baseline), distinct
# from the physics-value exit 1.
file(READ "${OUT2}" text)
string(REPLACE "\"figure\":\"" "\"figure\":\"not-" text "${text}")
file(WRITE "${OUT2}.drifted" "${text}")
execute_process(
  COMMAND "${COMPARE}" "${OUT1}" "${OUT2}.drifted"
  RESULT_VARIABLE rc
  ERROR_QUIET)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR
    "drifted comparison exited ${rc}, expected 3: structural drift not "
    "classified")
endif()
