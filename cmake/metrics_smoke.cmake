# Smoke test: run one bench with --metrics-out and validate the emitted
# bench_result.json against the checked-in schema.
#
# Invoked by ctest (see bench/CMakeLists.txt) as:
#   cmake -DBENCH=<bench exe> -DVALIDATOR=<validator exe>
#         -DSCHEMA=<schema json> -DOUT=<artifact path> -P metrics_smoke.cmake
#
# --metrics-timing is passed so the per-stage latency histograms are part
# of the validated artifact too, not just the physics metrics.
foreach(var BENCH VALIDATOR SCHEMA OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "metrics_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND "${BENCH}" "--metrics-out=${OUT}" "--metrics-timing"
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench '${BENCH}' exited with ${bench_rc}")
endif()

if(NOT EXISTS "${OUT}")
  message(FATAL_ERROR "bench did not write '${OUT}'")
endif()

execute_process(
  COMMAND "${VALIDATOR}" "${SCHEMA}" "${OUT}"
  RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR "'${OUT}' failed schema validation (${validate_rc})")
endif()
