# Streaming determinism parity: the physics metrics streaming_throughput
# exports must be byte-identical across execution configurations — ring
# depth, operator-thread placement, and the batch facade loop. This is
# the lane-ownership invariant (one JmbSystem per lane, item-chained
# hand-offs) checked end-to-end through the real bench.
#
# Invoked by ctest (see bench/CMakeLists.txt) as:
#   cmake -DBENCH=<bench exe> -DSEED=<decimal seed>
#         -DOUT1=<artifact> -DOUT2=<artifact>
#         [-DENV1=<;-separated VAR=VAL>] [-DENV2=...]
#         [-DARGS1=<;-separated bench args>] [-DARGS2=...]
#         -P stream_parity.cmake
#
# Physics-only export (no --metrics-timing): queue depths, stalls and
# deadline misses legitimately vary with configuration; the physics and
# the export bytes that carry it must not.
foreach(var BENCH SEED OUT1 OUT2)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "stream_parity.cmake: missing -D${var}=...")
  endif()
endforeach()
foreach(var ENV1 ENV2 ARGS1 ARGS2)
  if(NOT DEFINED ${var})
    set(${var} "")
  endif()
endforeach()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env ${ENV1}
          "${BENCH}" "${SEED}" "--metrics-out=${OUT1}" ${ARGS1}
  RESULT_VARIABLE rc1
  OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "bench '${BENCH}' (run 1: ${ENV1} ${ARGS1}) exited with ${rc1}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env ${ENV2}
          "${BENCH}" "${SEED}" "--metrics-out=${OUT2}" ${ARGS2}
  RESULT_VARIABLE rc2
  OUTPUT_QUIET)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "bench '${BENCH}' (run 2: ${ENV2} ${ARGS2}) exited with ${rc2}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files "${OUT1}" "${OUT2}"
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
    "physics exports differ between streaming configurations: "
    "'${OUT1}' vs '${OUT2}'")
endif()
