// SIMD dispatch layer: per-backend batch-wrapper semantics, randomized
// bitwise parity of every ported kernel against the scalar reference
// table, and the JMB_SIMD override round-trip.
//
// The parity tests are the enforcement arm of the dispatch contract
// (DESIGN.md "SIMD model"): every backend must produce byte-identical
// outputs, so they compare raw memory, not values-within-epsilon.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "dsp/fft_plan.h"
#include "dsp/types.h"
#include "simd/aligned.h"
#include "simd/backend.h"
#include "simd/kernels.h"
#include "simd/tables.h"

namespace jmb::simd {
namespace {

constexpr Backend kAllBackends[] = {Backend::kScalar, Backend::kSse2,
                                    Backend::kAvx2, Backend::kAvx512,
                                    Backend::kNeon};

const Kernels* table_of(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_kernels();
    case Backend::kSse2:
      return sse2_kernels();
    case Backend::kAvx2:
      return avx2_kernels();
    case Backend::kAvx512:
      return avx512_kernels();
    case Backend::kNeon:
      return neon_kernels();
  }
  return nullptr;
}

/// Every runnable backend table on this machine (scalar included).
std::vector<const Kernels*> runnable_tables() {
  std::vector<const Kernels*> out;
  for (const Backend b : kAllBackends) {
    if (backend_available(b)) out.push_back(table_of(b));
  }
  return out;
}

std::vector<double> random_doubles(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  std::vector<double> v(n);
  for (double& x : v) x = u(rng);
  return v;
}

// ---- selection & override ------------------------------------------------

TEST(SimdBackend, ScalarIsAlwaysRunnable) {
  EXPECT_TRUE(backend_available(Backend::kScalar));
  ASSERT_NE(scalar_kernels(), nullptr);
  EXPECT_STREQ(scalar_kernels()->name, "scalar");
}

TEST(SimdBackend, ParseBackendNames) {
  EXPECT_EQ(parse_backend("scalar"), Backend::kScalar);
  EXPECT_EQ(parse_backend("sse2"), Backend::kSse2);
  EXPECT_EQ(parse_backend("avx2"), Backend::kAvx2);
  EXPECT_EQ(parse_backend("avx512"), Backend::kAvx512);
  EXPECT_EQ(parse_backend("avx512f"), Backend::kAvx512);
  EXPECT_EQ(parse_backend("neon"), Backend::kNeon);
  EXPECT_EQ(parse_backend(""), std::nullopt);
  EXPECT_EQ(parse_backend("auto"), std::nullopt);
  EXPECT_EQ(parse_backend("mmx"), std::nullopt);
}

TEST(SimdBackend, NamesRoundTripThroughParse) {
  for (const Backend b : kAllBackends) {
    EXPECT_EQ(parse_backend(backend_name(b)), b) << backend_name(b);
  }
}

TEST(SimdBackend, BestBackendIsRunnable) {
  EXPECT_TRUE(backend_available(best_backend()));
}

TEST(SimdBackend, SetBackendForcesTheActiveTable) {
  for (const Backend b : kAllBackends) {
    if (!backend_available(b)) {
      EXPECT_FALSE(set_backend(b)) << backend_name(b);
      continue;
    }
    ASSERT_TRUE(set_backend(b));
    EXPECT_EQ(active_backend(), b);
    EXPECT_STREQ(active_kernels().name, backend_name(b));
  }
  reset_backend_cache();
}

TEST(SimdBackend, EnvOverrideRoundTrip) {
  for (const Backend b : kAllBackends) {
    if (!backend_available(b)) continue;
    ASSERT_EQ(setenv("JMB_SIMD", backend_name(b), 1), 0);
    reset_backend_cache();
    EXPECT_EQ(active_backend(), b) << backend_name(b);
    EXPECT_STREQ(active_kernels().name, backend_name(b));
  }
  // Unknown and empty values fall back to the best native backend.
  ASSERT_EQ(setenv("JMB_SIMD", "not-a-backend", 1), 0);
  reset_backend_cache();
  EXPECT_EQ(active_backend(), best_backend());
  ASSERT_EQ(unsetenv("JMB_SIMD"), 0);
  reset_backend_cache();
  EXPECT_EQ(active_backend(), best_backend());
}

TEST(SimdAligned, VectorsAreCacheLineAligned) {
  acvec c(3);
  advec d(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % kCacheLine, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % kCacheLine, 0u);
}

// ---- batch-wrapper semantics, per backend --------------------------------

TEST(SimdKernels, CmacMatchesComplexArithmetic) {
  // n = 5 exercises both the vector body and the scalar tail on every
  // backend (kLanes is 1, 2 or 4).
  const std::size_t n = 5;
  std::mt19937_64 rng(11);
  const std::vector<double> w = random_doubles(rng, 2 * n);
  const std::vector<double> x = random_doubles(rng, 2 * n);
  for (const Kernels* k : runnable_tables()) {
    std::vector<double> acc(2 * n, 0.0);
    k->cmac(acc.data(), w.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const cplx wi{w[2 * i], w[2 * i + 1]};
      const cplx xi{x[2 * i], x[2 * i + 1]};
      const cplx e = wi * xi;
      EXPECT_EQ(acc[2 * i], e.real()) << k->name << " lane " << i;
      EXPECT_EQ(acc[2 * i + 1], e.imag()) << k->name << " lane " << i;
    }
  }
}

TEST(SimdKernels, CaxpySubMatchesComplexArithmetic) {
  const std::size_t n = 7;
  const std::size_t c0 = 2;
  std::mt19937_64 rng(12);
  const std::vector<double> krow = random_doubles(rng, 2 * n);
  const std::vector<double> row0 = random_doubles(rng, 2 * n);
  const cplx f{0.25, -1.5};
  for (const Kernels* k : runnable_tables()) {
    std::vector<double> row = row0;
    k->caxpy_sub(row.data(), krow.data(), f.real(), f.imag(), c0, n);
    for (std::size_t c = 0; c < n; ++c) {
      cplx e{row0[2 * c], row0[2 * c + 1]};
      if (c >= c0) {
        e -= cplx{f.real() * krow[2 * c] - f.imag() * krow[2 * c + 1],
                  f.real() * krow[2 * c + 1] + f.imag() * krow[2 * c]};
      }
      EXPECT_EQ(row[2 * c], e.real()) << k->name << " col " << c;
      EXPECT_EQ(row[2 * c + 1], e.imag()) << k->name << " col " << c;
    }
  }
}

TEST(SimdKernels, HermitianConjugateTransposes) {
  const std::size_t rows = 3;
  const std::size_t cols = 5;
  std::mt19937_64 rng(13);
  const std::vector<double> a = random_doubles(rng, 2 * rows * cols);
  for (const Kernels* k : runnable_tables()) {
    std::vector<double> out(2 * rows * cols, 0.0);
    k->hermitian(a.data(), rows, cols, out.data());
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_EQ(out[2 * (c * rows + r)], a[2 * (r * cols + c)]) << k->name;
        EXPECT_EQ(out[2 * (c * rows + r) + 1], -a[2 * (r * cols + c) + 1])
            << k->name;
      }
    }
  }
}

TEST(SimdKernels, FftPassFirstStageIsAddSub) {
  // Stage len = 2 with twiddle 1 + 0i: [a, b] -> [a + b, a - b].
  const double tw[2] = {1.0, 0.0};
  for (const Kernels* k : runnable_tables()) {
    double d[8] = {1.0, 2.0, 3.0, -4.0, 0.5, 0.0, -0.25, 8.0};
    k->fft_pass(d, tw, 4, 2);
    const double expect[8] = {4.0, -2.0, -2.0, 6.0, 0.25, 8.0, 0.75, -8.0};
    for (int i = 0; i < 8; ++i) EXPECT_EQ(d[i], expect[i]) << k->name;
  }
}

TEST(SimdKernels, ViterbiAcsTieKeepsEvenPredecessor) {
  // All-zero metrics with all +1 signs make every candidate pair tie at
  // la + lb; the strictly-greater select must keep the even predecessor,
  // matching the sequential reference update order.
  alignas(64) double signs[4 * kViterbiStates];
  for (double& s : signs) s = 1.0;
  alignas(64) double metric[kViterbiStates] = {};
  for (const Kernels* k : runnable_tables()) {
    alignas(64) double next[kViterbiStates];
    std::uint8_t surv[kViterbiStates];
    std::uint8_t surv_bit[kViterbiStates];
    k->viterbi_acs(metric, signs, 0.5, 0.25, next, surv, surv_bit);
    constexpr std::size_t kHalf = kViterbiStates / 2;
    for (std::size_t ns = 0; ns < kViterbiStates; ++ns) {
      EXPECT_EQ(next[ns], 0.75) << k->name << " state " << ns;
      EXPECT_EQ(surv[ns], 2 * (ns % kHalf)) << k->name << " state " << ns;
      EXPECT_EQ(surv_bit[ns], ns / kHalf) << k->name << " state " << ns;
    }
  }
}

// ---- randomized bitwise parity vs the scalar table -----------------------

class SimdParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimdParity, FftPassAndRun) {
  std::mt19937_64 rng(GetParam());
  const Kernels* ref = scalar_kernels();
  for (const std::size_t n : {2u, 4u, 8u, 64u, 256u}) {
    const std::vector<double> d0 = random_doubles(rng, 2 * n);
    const std::vector<double> tw = random_doubles(rng, 2 * n);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      std::vector<double> want = d0;
      ref->fft_pass(want.data(), tw.data(), n, len);
      for (const Kernels* k : runnable_tables()) {
        std::vector<double> got = d0;
        k->fft_pass(got.data(), tw.data(), n, len);
        EXPECT_EQ(std::memcmp(got.data(), want.data(), 2 * n * sizeof(double)),
                  0)
            << k->name << " n=" << n << " len=" << len;
      }
    }
    std::vector<double> want = d0;
    ref->fft_run(want.data(), tw.data(), n);
    for (const Kernels* k : runnable_tables()) {
      std::vector<double> got = d0;
      k->fft_run(got.data(), tw.data(), n);
      EXPECT_EQ(std::memcmp(got.data(), want.data(), 2 * n * sizeof(double)),
                0)
          << k->name << " fft_run n=" << n;
    }
  }
}

TEST_P(SimdParity, AxpyAccSubMacEwKernels) {
  std::mt19937_64 rng(GetParam() + 101);
  const Kernels* ref = scalar_kernels();
  for (const std::size_t n : {1u, 3u, 26u, 52u, 65u}) {
    const std::vector<double> b = random_doubles(rng, 2 * n);
    const std::vector<double> x = random_doubles(rng, 2 * n);
    const std::vector<double> acc0 = random_doubles(rng, 2 * n);
    const double vr = acc0[0];
    const double vi = b[0];
    const std::size_t c0 = n / 3;
    const auto bytes = 2 * n * sizeof(double);

    std::vector<double> w1 = acc0;
    ref->caxpy_acc(w1.data(), b.data(), vr, vi, n);
    std::vector<double> w2 = acc0;
    ref->caxpy_sub(w2.data(), b.data(), vr, vi, c0, n);
    std::vector<double> w3 = acc0;
    ref->cmac(w3.data(), b.data(), x.data(), n);
    std::vector<double> w4 = acc0;
    ref->cacc(w4.data(), b.data(), n);
    std::vector<double> w5(2 * n);
    ref->cmul_ew(w5.data(), b.data(), x.data(), n);

    for (const Kernels* k : runnable_tables()) {
      std::vector<double> g = acc0;
      k->caxpy_acc(g.data(), b.data(), vr, vi, n);
      EXPECT_EQ(std::memcmp(g.data(), w1.data(), bytes), 0)
          << k->name << " caxpy_acc n=" << n;
      g = acc0;
      k->caxpy_sub(g.data(), b.data(), vr, vi, c0, n);
      EXPECT_EQ(std::memcmp(g.data(), w2.data(), bytes), 0)
          << k->name << " caxpy_sub n=" << n;
      g = acc0;
      k->cmac(g.data(), b.data(), x.data(), n);
      EXPECT_EQ(std::memcmp(g.data(), w3.data(), bytes), 0)
          << k->name << " cmac n=" << n;
      g = acc0;
      k->cacc(g.data(), b.data(), n);
      EXPECT_EQ(std::memcmp(g.data(), w4.data(), bytes), 0)
          << k->name << " cacc n=" << n;
      g.assign(2 * n, 0.0);
      k->cmul_ew(g.data(), b.data(), x.data(), n);
      EXPECT_EQ(std::memcmp(g.data(), w5.data(), bytes), 0)
          << k->name << " cmul_ew n=" << n;
      // Aliased output (out == a), the SynthesisStage LTF configuration.
      g = b;
      k->cmul_ew(g.data(), g.data(), x.data(), n);
      EXPECT_EQ(std::memcmp(g.data(), w5.data(), bytes), 0)
          << k->name << " cmul_ew aliased n=" << n;
    }
  }
}

TEST_P(SimdParity, CmacnMatchesSuccessiveCmacs) {
  std::mt19937_64 rng(GetParam() + 202);
  const Kernels* ref = scalar_kernels();
  for (const std::size_t nrows : {1u, 2u, 4u, 7u}) {
    const std::size_t n = 26;
    std::vector<std::vector<double>> w(nrows), x(nrows);
    std::vector<const double*> wp(nrows), xp(nrows);
    for (std::size_t j = 0; j < nrows; ++j) {
      w[j] = random_doubles(rng, 2 * n);
      x[j] = random_doubles(rng, 2 * n);
      wp[j] = w[j].data();
      xp[j] = x[j].data();
    }
    const std::vector<double> acc0 = random_doubles(rng, 2 * n);
    // Reference: the unfused per-stream loop.
    std::vector<double> want = acc0;
    for (std::size_t j = 0; j < nrows; ++j) {
      ref->cmac(want.data(), wp[j], xp[j], n);
    }
    for (const Kernels* k : runnable_tables()) {
      std::vector<double> got = acc0;
      k->cmacn(got.data(), wp.data(), xp.data(), nrows, n);
      EXPECT_EQ(
          std::memcmp(got.data(), want.data(), 2 * n * sizeof(double)), 0)
          << k->name << " cmacn nrows=" << nrows;
    }
  }
}

TEST_P(SimdParity, MatvecAndHermitian) {
  std::mt19937_64 rng(GetParam() + 303);
  const Kernels* ref = scalar_kernels();
  for (const std::size_t rows : {1u, 2u, 4u, 5u, 10u}) {
    const std::size_t cols = rows;
    const std::vector<double> a = random_doubles(rng, 2 * rows * cols);
    const std::vector<double> x = random_doubles(rng, 2 * cols);
    const auto bytes = 2 * rows * cols * sizeof(double);

    std::vector<double> w1(2 * rows);
    ref->cmatvec(a.data(), rows, cols, x.data(), w1.data());
    std::vector<double> w2(2 * rows * cols);
    ref->hermitian(a.data(), rows, cols, w2.data());

    for (const Kernels* k : runnable_tables()) {
      std::vector<double> g1(2 * rows);
      k->cmatvec(a.data(), rows, cols, x.data(), g1.data());
      EXPECT_EQ(
          std::memcmp(g1.data(), w1.data(), 2 * rows * sizeof(double)), 0)
          << k->name << " cmatvec " << rows << "x" << cols;
      std::vector<double> g2(2 * rows * cols);
      k->hermitian(a.data(), rows, cols, g2.data());
      EXPECT_EQ(std::memcmp(g2.data(), w2.data(), bytes), 0)
          << k->name << " hermitian " << rows << "x" << cols;
    }
  }
}

TEST_P(SimdParity, ViterbiAcs) {
  std::mt19937_64 rng(GetParam() + 404);
  const Kernels* ref = scalar_kernels();
  std::uniform_real_distribution<double> u(-4.0, 4.0);
  std::bernoulli_distribution coin(0.5);
  for (int trial = 0; trial < 8; ++trial) {
    alignas(64) double signs[4 * kViterbiStates];
    for (double& s : signs) s = coin(rng) ? 1.0 : -1.0;
    alignas(64) double metric[kViterbiStates];
    for (double& m : metric) {
      // A sprinkle of -inf models unreachable trellis states.
      m = coin(rng) && trial < 2 ? -std::numeric_limits<double>::infinity()
                                 : u(rng);
    }
    const double la = u(rng);
    const double lb = u(rng);

    alignas(64) double want_metric[kViterbiStates];
    std::uint8_t want_surv[kViterbiStates];
    std::uint8_t want_bit[kViterbiStates];
    ref->viterbi_acs(metric, signs, la, lb, want_metric, want_surv, want_bit);
    for (const Kernels* k : runnable_tables()) {
      alignas(64) double got_metric[kViterbiStates];
      std::uint8_t got_surv[kViterbiStates];
      std::uint8_t got_bit[kViterbiStates];
      k->viterbi_acs(metric, signs, la, lb, got_metric, got_surv, got_bit);
      EXPECT_EQ(std::memcmp(got_metric, want_metric, sizeof(want_metric)), 0)
          << k->name << " trial " << trial;
      EXPECT_EQ(std::memcmp(got_surv, want_surv, sizeof(want_surv)), 0)
          << k->name << " trial " << trial;
      EXPECT_EQ(std::memcmp(got_bit, want_bit, sizeof(want_bit)), 0)
          << k->name << " trial " << trial;
    }
  }
}

TEST_P(SimdParity, PlannedFftUnderForcedBackends) {
  // End to end through FftPlan: every backend must reproduce the scalar
  // transform bit for bit, forward and inverse.
  std::mt19937_64 rng(GetParam() + 505);
  for (const std::size_t n : {64u, 256u}) {
    const FftPlan plan(n);
    const std::vector<double> d0 = random_doubles(rng, 2 * n);
    acvec buf(n);
    auto load = [&] {
      std::memcpy(buf.data(), d0.data(), 2 * n * sizeof(double));
    };
    ASSERT_TRUE(set_backend(Backend::kScalar));
    load();
    plan.forward(std::span<cplx>(buf.data(), n));
    const acvec want_fwd = buf;
    plan.inverse(std::span<cplx>(buf.data(), n));
    const acvec want_rt = buf;
    for (const Backend b : kAllBackends) {
      if (!backend_available(b)) continue;
      ASSERT_TRUE(set_backend(b));
      load();
      plan.forward(std::span<cplx>(buf.data(), n));
      EXPECT_EQ(std::memcmp(buf.data(), want_fwd.data(),
                            2 * n * sizeof(double)),
                0)
          << backend_name(b) << " forward n=" << n;
      plan.inverse(std::span<cplx>(buf.data(), n));
      EXPECT_EQ(
          std::memcmp(buf.data(), want_rt.data(), 2 * n * sizeof(double)), 0)
          << backend_name(b) << " round trip n=" << n;
    }
    reset_backend_cache();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdParity,
                         ::testing::Values(1u, 20260807u, 0xDEADBEEFu));

}  // namespace
}  // namespace jmb::simd
