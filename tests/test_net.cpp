// Tests for the link layer: event scheduler, shared downlink queue, and
// the baseline vs JMB MAC simulations.
#include <gtest/gtest.h>

#include <cmath>

#include "net/mac.h"
#include "net/queue.h"
#include "net/scheduler.h"
#include "rate/effective_snr.h"

namespace jmb::net {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.at(2.0, [&] { order.push_back(2); });
  sched.at(1.0, [&] { order.push_back(1); });
  sched.at(3.0, [&] { order.push_back(3); });
  EXPECT_EQ(sched.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_NEAR(sched.now(), 3.0, 1e-12);
}

TEST(Scheduler, TiesBreakFifo) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.at(1.0, [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, HandlersCanScheduleMore) {
  EventScheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) sched.after(0.1, tick);
  };
  sched.at(0.0, tick);
  sched.run_until(0.45);
  EXPECT_EQ(count, 5);  // t = 0, .1, .2, .3, .4
  sched.run();
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, PastEventsClampToNow) {
  EventScheduler sched;
  sched.at(1.0, [] {});
  sched.run();
  // Regression: scheduling behind the clock must clamp to now() and fire
  // as soon as possible, not throw or run at a time before now().
  double fired_at = -1.0;
  sched.at(0.5, [&] { fired_at = sched.now(); });
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_NEAR(fired_at, 1.0, 1e-12);
  EXPECT_NEAR(sched.now(), 1.0, 1e-12);
}

TEST(Scheduler, ClampedEventsKeepFifoOrderBehindDueWork) {
  EventScheduler sched;
  sched.at(1.0, [] {});
  sched.run();
  std::vector<int> order;
  sched.at(1.0, [&] { order.push_back(0); });  // already due
  sched.at(0.25, [&] { order.push_back(1); }); // clamped to 1.0, queued after
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Scheduler, RejectsNanTime) {
  EventScheduler sched;
  EXPECT_THROW(sched.at(std::nan(""), [] {}), std::invalid_argument);
}

TEST(Scheduler, RunUntilAdvancesClock) {
  EventScheduler sched;
  sched.run_until(5.0);
  EXPECT_NEAR(sched.now(), 5.0, 1e-12);
}

TEST(Queue, FifoAndHead) {
  DownlinkQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.head(), std::logic_error);
  q.push({0, 1500, 0, 0.0, 0, 1});
  q.push({1, 1500, 0, 0.0, 0, 2});
  EXPECT_EQ(q.head().id, 1u);
  const auto p = q.pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->id, 1u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(Queue, PushFrontForRetransmission) {
  DownlinkQueue q;
  q.push({0, 1500, 0, 0.0, 0, 1});
  q.push_front({1, 1500, 0, 0.0, 1, 2});
  EXPECT_EQ(q.head().id, 2u);
  // The re-queue IS the retry: push_front bumps the count itself, so a
  // packet that failed once and is re-queued carries retries = 2.
  EXPECT_EQ(q.head().retries, 2);
}

TEST(Queue, JointSelectionDistinctClients) {
  DownlinkQueue q;
  // Client pattern: 0, 0, 1, 2, 1, 3.
  const std::size_t clients[] = {0, 0, 1, 2, 1, 3};
  for (std::size_t i = 0; i < 6; ++i) {
    q.push({clients[i], 1500, 0, 0.0, 0, i});
  }
  const auto batch = q.pop_joint(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 0u);  // head (client 0)
  EXPECT_EQ(batch[1].id, 2u);  // first client-1 packet
  EXPECT_EQ(batch[2].id, 3u);  // first client-2 packet
  // Remaining queue preserves order: ids 1 (client 0), 4, 5.
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.head().id, 1u);
}

TEST(Queue, JointSelectionFewerClientsThanStreams) {
  DownlinkQueue q;
  q.push({0, 1500, 0, 0.0, 0, 1});
  q.push({0, 1500, 0, 0.0, 0, 2});
  const auto batch = q.pop_joint(4);
  EXPECT_EQ(batch.size(), 1u);  // only one distinct client available
  EXPECT_TRUE(q.pop_joint(0).empty());
}

TEST(Queue, JointSelectionAllPacketsOneClient) {
  DownlinkQueue q;
  for (std::size_t i = 0; i < 5; ++i) {
    q.push({7, 1500, 0, 0.0, 0, i});
  }
  // Every packet targets one client: a joint transmission degenerates to
  // a single stream, takes only the head, and leaves the rest untouched.
  const auto batch = q.pop_joint(3);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.head().id, 1u);
}

TEST(Queue, PushFrontRetryOrderAfterFailedJoint) {
  DownlinkQueue q;
  // Three clients' heads go out jointly; the transmission fails and the
  // MAC re-queues the batch at the front, as run_jmb_mac does.
  for (std::size_t i = 0; i < 3; ++i) {
    q.push({i, 1500, 0, 0.0, 0, i});       // ids 0,1,2 (one per client)
    q.push({i, 1500, 0, 0.0, 0, 10 + i});  // backlog ids 10,11,12
  }
  auto batch = q.pop_joint(3);
  ASSERT_EQ(batch.size(), 3u);
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    q.push_front(*it);  // increments retries itself
  }
  // Retries drain before the backlog, in the original batch order.
  const auto again = q.pop_joint(3);
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[0].id, 0u);
  EXPECT_EQ(again[1].id, 1u);
  EXPECT_EQ(again[2].id, 2u);
  EXPECT_EQ(again[0].retries, 1);
  EXPECT_EQ(q.head().id, 10u);
}

TEST(Queue, HeadOnEmptyThrowsAndQueueStaysUsable) {
  DownlinkQueue q;
  EXPECT_THROW((void)q.head(), std::logic_error);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.pop_joint(2).empty());
  // The failed accesses must not corrupt the queue.
  q.push({0, 1500, 0, 0.0, 0, 42});
  EXPECT_EQ(q.head().id, 42u);
  EXPECT_EQ(q.size(), 1u);
}

LinkStateFn flat_links(double snr_db) {
  return [snr_db](std::size_t) {
    return LinkState{rvec(phy::kNumDataCarriers, from_db(snr_db))};
  };
}

TEST(Mac, BaselineSharesMediumEqually) {
  MacParams p;
  p.duration_s = 0.5;
  const MacReport r = run_baseline_mac(4, flat_links(25.0), p);
  ASSERT_EQ(r.per_client.size(), 4u);
  // All clients at the same SNR deliver within a packet of each other.
  for (const auto& c : r.per_client) {
    EXPECT_NEAR(static_cast<double>(c.delivered),
                static_cast<double>(r.per_client[0].delivered), 2.0);
    EXPECT_EQ(c.dropped, 0u);
  }
  EXPECT_GT(r.total_goodput_mbps, 15.0);  // 27 Mb/s PHY less overheads
  EXPECT_LT(r.total_goodput_mbps, 27.0);
  EXPECT_EQ(r.joint_transmissions, 0u);
}

TEST(Mac, BaselineTotalIndependentOfClientCount) {
  // The core 802.11 scaling fact: total throughput does not grow with n.
  MacParams p;
  p.duration_s = 0.5;
  const double t2 = run_baseline_mac(2, flat_links(20.0), p).total_goodput_mbps;
  const double t8 = run_baseline_mac(8, flat_links(20.0), p).total_goodput_mbps;
  EXPECT_NEAR(t8 / t2, 1.0, 0.05);
}

TEST(Mac, JmbScalesWithStreams) {
  MacParams p;
  p.duration_s = 0.5;
  const double t2 =
      run_jmb_mac(2, 2, 2, flat_links(25.0), p).total_goodput_mbps;
  const double t8 =
      run_jmb_mac(8, 8, 8, flat_links(25.0), p).total_goodput_mbps;
  EXPECT_GT(t2, 20.0);
  // 4x the streams: close to 4x the throughput (measurement overhead grows
  // slightly with N).
  EXPECT_NEAR(t8 / t2, 4.0, 0.5);
}

TEST(Mac, JmbBeatsBaselineHeadToHead) {
  MacParams p;
  p.duration_s = 0.5;
  const double base =
      run_baseline_mac(6, flat_links(22.0), p).total_goodput_mbps;
  const double jmb =
      run_jmb_mac(6, 6, 6, flat_links(22.0), p).total_goodput_mbps;
  EXPECT_GT(jmb / base, 4.0);  // ideal 6x less overheads
}

TEST(Mac, MeasurementOverheadAccounted) {
  MacParams p;
  p.duration_s = 1.0;
  p.coherence_time_s = 0.1;
  const MacReport r = run_jmb_mac(4, 4, 4, flat_links(25.0), p);
  EXPECT_GT(r.measurement_airtime_s, 0.0);
  // ~10 measurement epochs in a second.
  EXPECT_NEAR(
      r.measurement_airtime_s / rate::measurement_airtime_s(4, 4, p.airtime),
      10.0, 2.0);
  EXPECT_LE(r.data_airtime_s + r.measurement_airtime_s, p.duration_s + 0.05);
}

TEST(Mac, LowSnrClientRetriesAndDrops) {
  // One client far below threshold: baseline burns airtime on it, delivers
  // nothing to it, but others still progress.
  MacParams p;
  p.duration_s = 0.2;
  p.max_retries = 2;
  const LinkStateFn links = [](std::size_t client) {
    return LinkState{rvec(phy::kNumDataCarriers,
                          from_db(client == 0 ? -10.0 : 25.0))};
  };
  const MacReport r = run_baseline_mac(2, links, p);
  EXPECT_EQ(r.per_client[0].delivered, 0u);
  EXPECT_GT(r.per_client[0].dropped, 0u);
  EXPECT_GT(r.per_client[1].delivered, 10u);
}

TEST(Mac, MarginalSnrCausesRetransmissions) {
  MacParams p;
  p.duration_s = 0.5;
  p.seed = 7;
  // Pick an SNR a hair above the 64-QAM 3/4 threshold: ~10% PER.
  const double thr = rate::rate_thresholds_db().back();
  const MacReport r = run_jmb_mac(2, 2, 2, flat_links(thr), p);
  EXPECT_GT(r.per_client[0].failed_attempts + r.per_client[1].failed_attempts,
            5u);
  EXPECT_GT(r.per_client[0].delivered, 50u);  // retransmissions recover
}

}  // namespace
}  // namespace jmb::net
