// Unit and property tests for the complex linear-algebra substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/rng.h"
#include "linalg/cmatrix.h"
#include "linalg/lu.h"
#include "linalg/pinv.h"

namespace jmb {
namespace {

constexpr double kTol = 1e-9;

CMatrix random_matrix(Rng& rng, std::size_t r, std::size_t c) {
  CMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.cgaussian();
  return m;
}

TEST(CMatrixTest, ConstructionAndAccess) {
  CMatrix m{{cplx{1, 0}, cplx{2, 0}}, {cplx{3, 0}, cplx{4, 5}}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_TRUE(m.is_square());
  EXPECT_EQ(m(1, 1), (cplx{4, 5}));
  EXPECT_THROW((CMatrix{{cplx{1, 0}}, {cplx{1, 0}, cplx{2, 0}}}),
               std::invalid_argument);
}

TEST(CMatrixTest, IdentityAndDiagonal) {
  const CMatrix i3 = CMatrix::identity(3);
  EXPECT_NEAR(i3.frobenius_norm(), std::sqrt(3.0), kTol);
  const CMatrix d = CMatrix::diagonal({cplx{1, 0}, cplx{0, 2}});
  EXPECT_EQ(d(1, 1), (cplx{0, 2}));
  EXPECT_EQ(d(0, 1), (cplx{0, 0}));
}

TEST(CMatrixTest, HermitianTransposeConj) {
  const CMatrix m{{cplx{1, 2}, cplx{3, 4}}, {cplx{5, 6}, cplx{7, 8}}};
  const CMatrix h = m.hermitian();
  EXPECT_EQ(h(0, 1), (cplx{5, -6}));
  EXPECT_EQ(m.transpose()(0, 1), (cplx{5, 6}));
  EXPECT_EQ(m.conj()(0, 0), (cplx{1, -2}));
  // (A^H)^H == A
  EXPECT_NEAR(h.hermitian().max_abs_diff(m), 0.0, kTol);
}

TEST(CMatrixTest, ArithmeticAndShapeChecks) {
  Rng rng(1);
  const CMatrix a = random_matrix(rng, 3, 3);
  const CMatrix b = random_matrix(rng, 3, 3);
  const CMatrix sum = a + b;
  EXPECT_NEAR((sum - b).max_abs_diff(a), 0.0, kTol);
  const CMatrix scaled = a * cplx{2.0, 0.0};
  EXPECT_NEAR(scaled.frobenius_norm(), 2.0 * a.frobenius_norm(), kTol);
  const CMatrix c = random_matrix(rng, 2, 3);
  EXPECT_THROW(a + c, std::invalid_argument);
  // (2x3)(3x3)=2x3, (2x3)(2x3) bad
  EXPECT_THROW(c * a * c, std::invalid_argument);
}

TEST(CMatrixTest, MatrixProductAgainstHand) {
  const CMatrix a{{cplx{1, 0}, cplx{2, 0}}, {cplx{0, 1}, cplx{0, 0}}};
  const CMatrix b{{cplx{3, 0}, cplx{0, 0}}, {cplx{1, 0}, cplx{1, 0}}};
  const CMatrix p = a * b;
  EXPECT_EQ(p(0, 0), (cplx{5, 0}));
  EXPECT_EQ(p(0, 1), (cplx{2, 0}));
  EXPECT_EQ(p(1, 0), (cplx{0, 3}));
  EXPECT_EQ(p(1, 1), (cplx{0, 0}));
}

TEST(CMatrixTest, MatVecAndRowColHelpers) {
  Rng rng(2);
  const CMatrix a = random_matrix(rng, 4, 3);
  const cvec v = rng.cgaussian_vec(3);
  const cvec y = a * v;
  ASSERT_EQ(y.size(), 4u);
  // y == A*v computed through column extraction.
  for (std::size_t r = 0; r < 4; ++r) {
    cplx acc{};
    for (std::size_t c = 0; c < 3; ++c) acc += a(r, c) * v[c];
    EXPECT_NEAR(std::abs(y[r] - acc), 0.0, kTol);
  }
  const cvec row1 = a.row(1);
  const cvec col2 = a.col(2);
  EXPECT_EQ(row1.size(), 3u);
  EXPECT_EQ(col2.size(), 4u);
  EXPECT_EQ(row1[2], a(1, 2));
  EXPECT_EQ(col2[3], a(3, 2));
  CMatrix b(4, 3);
  b.set_row(1, row1);
  b.set_col(2, col2);
  EXPECT_EQ(b(1, 0), a(1, 0));
  EXPECT_EQ(b(0, 2), a(0, 2));
}

TEST(CMatrixTest, RowColPower) {
  const CMatrix m{{cplx{3, 4}, cplx{0, 0}}, {cplx{1, 0}, cplx{2, 0}}};
  EXPECT_NEAR(m.row_power(0), 25.0, kTol);
  EXPECT_NEAR(m.row_power(1), 5.0, kTol);
  EXPECT_NEAR(m.col_power(0), 26.0, kTol);
}

TEST(LuTest, SolvesKnownSystem) {
  const CMatrix a{{cplx{2, 0}, cplx{1, 0}}, {cplx{1, 0}, cplx{3, 0}}};
  const cvec b{cplx{5, 0}, cplx{10, 0}};
  const Lu lu(a);
  ASSERT_TRUE(lu.ok());
  const cvec x = lu.solve(b);
  EXPECT_NEAR(std::abs(x[0] - cplx{1, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(x[1] - cplx{3, 0}), 0.0, kTol);
}

TEST(LuTest, DeterminantOfKnownMatrix) {
  const CMatrix a{{cplx{1, 0}, cplx{2, 0}}, {cplx{3, 0}, cplx{4, 0}}};
  EXPECT_NEAR(std::abs(Lu(a).determinant() - cplx{-2, 0}), 0.0, kTol);
}

TEST(LuTest, DetectsSingular) {
  const CMatrix a{{cplx{1, 0}, cplx{2, 0}}, {cplx{2, 0}, cplx{4, 0}}};
  const Lu lu(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_THROW(lu.solve(cvec{cplx{1, 0}, cplx{1, 0}}), std::logic_error);
  EXPECT_FALSE(inverse(a).has_value());
  EXPECT_FALSE(solve(a, {cplx{1, 0}, cplx{1, 0}}).has_value());
}

TEST(LuTest, RejectsNonSquare) {
  Rng rng(3);
  EXPECT_THROW(Lu(random_matrix(rng, 2, 3)), std::invalid_argument);
}

// Property: A * A^{-1} == I for random well-conditioned matrices of many
// sizes (this is the exact operation zero-forcing performs per subcarrier).
class LuInverseProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuInverseProperty, InverseTimesSelfIsIdentity) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 20; ++trial) {
    const CMatrix a = random_matrix(rng, n, n);
    const auto inv = inverse(a);
    ASSERT_TRUE(inv.has_value());
    const CMatrix eye = a * (*inv);
    EXPECT_NEAR(eye.max_abs_diff(CMatrix::identity(n)), 0.0, 1e-8)
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuInverseProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10, 12, 16, 20));

TEST(LuTest, SolveMatrixRhs) {
  Rng rng(5);
  const CMatrix a = random_matrix(rng, 5, 5);
  const CMatrix b = random_matrix(rng, 5, 3);
  const Lu lu(a);
  ASSERT_TRUE(lu.ok());
  const CMatrix x = lu.solve(b);
  EXPECT_NEAR((a * x).max_abs_diff(b), 0.0, 1e-8);
}

TEST(PinvTest, SquareMatchesInverse) {
  Rng rng(6);
  const CMatrix a = random_matrix(rng, 4, 4);
  const auto p = pinv(a);
  const auto inv_a = inverse(a);
  ASSERT_TRUE(p && inv_a);
  EXPECT_NEAR(p->max_abs_diff(*inv_a), 0.0, 1e-7);
}

TEST(PinvTest, FatMatrixRightInverse) {
  // Downlink case: fewer client antennas (rows) than AP antennas (cols).
  Rng rng(7);
  const CMatrix h = random_matrix(rng, 3, 6);
  const auto p = pinv(h);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->rows(), 6u);
  EXPECT_EQ(p->cols(), 3u);
  EXPECT_NEAR((h * (*p)).max_abs_diff(CMatrix::identity(3)), 0.0, 1e-8);
}

TEST(PinvTest, TallMatrixLeftInverse) {
  Rng rng(8);
  const CMatrix a = random_matrix(rng, 6, 3);
  const auto p = pinv(a);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(((*p) * a).max_abs_diff(CMatrix::identity(3)), 0.0, 1e-8);
}

TEST(PinvTest, RidgeRegularizesRankDeficient) {
  // Rank-1 fat matrix: exact pinv of the Gram is singular, ridge versions
  // must still return something finite.
  CMatrix a(2, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    a(0, c) = cplx{1.0, 0.0};
    a(1, c) = cplx{2.0, 0.0};
  }
  EXPECT_FALSE(pinv(a, 0.0).has_value());
  const auto p = pinv(a, 1e-6);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(std::isfinite(p->frobenius_norm()));
}

TEST(SingularValues, DiagonalMatrixExact) {
  const CMatrix d = CMatrix::diagonal({cplx{5, 0}, cplx{0, 2}, cplx{1, 0}});
  EXPECT_NEAR(largest_singular_value(d), 5.0, 1e-6);
  EXPECT_NEAR(smallest_singular_value(d), 1.0, 1e-6);
  EXPECT_NEAR(condition_number(d), 5.0, 1e-5);
}

TEST(SingularValues, UnitaryHasConditionOne) {
  // DFT-like unitary 2x2.
  const double s = 1.0 / std::sqrt(2.0);
  const CMatrix u{{cplx{s, 0}, cplx{s, 0}}, {cplx{s, 0}, cplx{-s, 0}}};
  EXPECT_NEAR(condition_number(u), 1.0, 1e-6);
}

TEST(SingularValues, SingularMatrixInfiniteCondition) {
  const CMatrix a{{cplx{1, 0}, cplx{1, 0}}, {cplx{1, 0}, cplx{1, 0}}};
  EXPECT_EQ(smallest_singular_value(a), 0.0);
  EXPECT_TRUE(std::isinf(condition_number(a)));
}

TEST(SingularValues, BoundsFrobeniusNorm) {
  Rng rng(9);
  const CMatrix a = random_matrix(rng, 5, 5);
  const double smax = largest_singular_value(a);
  EXPECT_LE(smax, a.frobenius_norm() + 1e-9);
  EXPECT_GE(smax * std::sqrt(5.0), a.frobenius_norm() - 1e-9);
}

// ---- Into-kernel parity: the allocating APIs wrap the _into kernels, so
// the results must be bitwise equal, and warm buffers must be reusable.

void expect_bitwise_equal(const CMatrix& a, const CMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a(r, c).real(), b(r, c).real()) << r << "," << c;
      EXPECT_EQ(a(r, c).imag(), b(r, c).imag()) << r << "," << c;
    }
  }
}

TEST(IntoKernels, MultiplyIntoBitwiseMatchesOperator) {
  Rng rng(31);
  const CMatrix a = random_matrix(rng, 3, 5);
  const CMatrix b = random_matrix(rng, 5, 4);
  CMatrix out;
  multiply_into(a, b, out);
  expect_bitwise_equal(a * b, out);
  // Reuse with a different shape: resize keeps capacity, zeroes content.
  const CMatrix c = random_matrix(rng, 2, 2);
  const CMatrix d = random_matrix(rng, 2, 2);
  multiply_into(c, d, out);
  expect_bitwise_equal(c * d, out);
}

TEST(IntoKernels, MatrixVectorMultiplyIntoBitwiseMatchesOperator) {
  Rng rng(37);
  const CMatrix a = random_matrix(rng, 4, 3);
  cvec v(3);
  for (cplx& x : v) x = rng.cgaussian();
  cvec out(4);
  multiply_into(a, v, out);
  const cvec ref = a * v;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].real(), out[i].real());
    EXPECT_EQ(ref[i].imag(), out[i].imag());
  }
}

TEST(IntoKernels, HermitianIntoBitwiseMatchesAllocating) {
  Rng rng(41);
  const CMatrix a = random_matrix(rng, 3, 4);
  CMatrix out;
  hermitian_into(a, out);
  expect_bitwise_equal(a.hermitian(), out);
}

TEST(IntoKernels, LuFactorizeSolveIntoMatchesLegacySolve) {
  Rng rng(43);
  const CMatrix a = random_matrix(rng, 4, 4);
  cvec b(4);
  for (cplx& x : b) x = rng.cgaussian();

  const Lu legacy(a);
  ASSERT_TRUE(legacy.ok());
  const cvec x_legacy = legacy.solve(b);

  Lu reusable;
  LuScratch scratch;
  // Factorize twice (second over a different matrix, then back) to prove
  // the factorization state fully resets between uses.
  ASSERT_TRUE(reusable.factorize(random_matrix(rng, 3, 3)));
  ASSERT_TRUE(reusable.factorize(a));
  cvec x_into(4);
  reusable.solve_into(b, x_into, scratch);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(x_legacy[i].real(), x_into[i].real());
    EXPECT_EQ(x_legacy[i].imag(), x_into[i].imag());
  }

  CMatrix inv_into;
  reusable.inverse_into(inv_into, scratch);
  const auto inv_legacy = inverse(a);
  ASSERT_TRUE(inv_legacy.has_value());
  expect_bitwise_equal(*inv_legacy, inv_into);
}

TEST(IntoKernels, PinvIntoBitwiseMatchesPinvAndReusesScratch) {
  Rng rng(47);
  PinvScratch scratch;
  CMatrix out;
  for (const auto& [r, c] : {std::pair<std::size_t, std::size_t>{2, 4},
                            {4, 2},
                            {3, 3}}) {
    const CMatrix a = random_matrix(rng, r, c);
    const auto ref = pinv(a);
    ASSERT_TRUE(ref.has_value());
    ASSERT_TRUE(pinv_into(a, 0.0, scratch, out));
    expect_bitwise_equal(*ref, out);
  }
  // Singular input reports failure both ways.
  const CMatrix s{{cplx{1, 0}, cplx{1, 0}}, {cplx{1, 0}, cplx{1, 0}}};
  EXPECT_FALSE(pinv(s).has_value());
  EXPECT_FALSE(pinv_into(s, 0.0, scratch, out));
}

}  // namespace
}  // namespace jmb
