// Unit tests for the DSP substrate: FFT, statistics, RNG, resampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/resampler.h"
#include "dsp/rng.h"
#include "dsp/stats.h"
#include "dsp/types.h"

namespace jmb {
namespace {

constexpr double kTol = 1e-10;

TEST(Types, DbRoundTrip) {
  EXPECT_NEAR(to_db(100.0), 20.0, kTol);
  EXPECT_NEAR(from_db(20.0), 100.0, kTol);
  EXPECT_NEAR(from_db(to_db(3.7)), 3.7, kTol);
  EXPECT_NEAR(amp_to_db(10.0), 20.0, kTol);
}

TEST(Types, WrapPhase) {
  EXPECT_NEAR(wrap_phase(0.0), 0.0, kTol);
  EXPECT_NEAR(wrap_phase(kPi / 2), kPi / 2, kTol);
  EXPECT_NEAR(wrap_phase(kTwoPi + 0.1), 0.1, kTol);
  EXPECT_NEAR(wrap_phase(-kTwoPi - 0.1), -0.1, kTol);
  // At the +-pi boundary floating point may land on either representative.
  EXPECT_NEAR(std::abs(wrap_phase(3 * kPi)), kPi, kTol);
  // Result is always in (-pi, pi].
  for (double phi = -20.0; phi <= 20.0; phi += 0.37) {
    const double w = wrap_phase(phi);
    EXPECT_GT(w, -kPi - kTol);
    EXPECT_LE(w, kPi + kTol);
    // And equal to the input modulo 2*pi.
    EXPECT_NEAR(std::remainder(w - phi, kTwoPi), 0.0, 1e-9);
  }
}

TEST(Types, MeanPowerAndEnergy) {
  const cvec x{{3.0, 4.0}, {0.0, 0.0}};  // |3+4j|^2 = 25
  EXPECT_NEAR(mean_power(x), 12.5, kTol);
  EXPECT_NEAR(energy(x), 25.0, kTol);
  EXPECT_EQ(mean_power(cvec{}), 0.0);
}

TEST(Fft, RejectsNonPow2) {
  cvec x(12, cplx{1.0, 0.0});
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(64));
}

TEST(Fft, DeltaIsFlat) {
  cvec x(64);
  x[0] = 1.0;
  const cvec X = fft(x);
  for (const cplx& v : X) {
    EXPECT_NEAR(v.real(), 1.0, kTol);
    EXPECT_NEAR(v.imag(), 0.0, kTol);
  }
}

TEST(Fft, SingleToneLandsOnItsBin) {
  const std::size_t n = 64;
  const std::size_t k0 = 5;
  cvec x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = phasor(kTwoPi * static_cast<double>(k0 * t) /
                  static_cast<double>(n));
  }
  const cvec X = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = (k == k0) ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(X[k]), expected, 1e-9) << "bin " << k;
  }
}

TEST(Fft, InverseRoundTrip) {
  Rng rng(42);
  for (std::size_t n : {2u, 8u, 64u, 256u, 1024u}) {
    const cvec x = rng.cgaussian_vec(n);
    const cvec y = ifft(fft(x));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(7);
  const cvec x = rng.cgaussian_vec(128);
  const cvec X = fft(x);
  EXPECT_NEAR(energy(X), 128.0 * energy(x), 1e-7);
}

TEST(Fft, LinearityProperty) {
  Rng rng(9);
  const cvec a = rng.cgaussian_vec(64);
  const cvec b = rng.cgaussian_vec(64);
  const cplx alpha{0.3, -1.2};
  cvec combo(64);
  for (std::size_t i = 0; i < 64; ++i) combo[i] = a[i] + alpha * b[i];
  const cvec lhs = fft(combo);
  const cvec fa = fft(a);
  const cvec fb = fft(b);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(lhs[i] - (fa[i] + alpha * fb[i])), 0.0, 1e-9);
  }
}

TEST(Fft, FftShiftMovesDcToCenter) {
  cvec x(8);
  for (std::size_t i = 0; i < 8; ++i) x[i] = static_cast<double>(i);
  const cvec s = fftshift(x);
  EXPECT_NEAR(s[4].real(), 0.0, kTol);  // DC (index 0) lands at n/2
  EXPECT_NEAR(s[0].real(), 4.0, kTol);
}

TEST(Stats, MeanVarianceStddev) {
  const rvec x{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(mean(x), 5.0, kTol);
  EXPECT_NEAR(variance(x), 32.0 / 7.0, kTol);
  EXPECT_NEAR(stddev(x), std::sqrt(32.0 / 7.0), kTol);
  EXPECT_EQ(mean(rvec{}), 0.0);
  EXPECT_EQ(variance(rvec{1.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const rvec x{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(percentile(x, 0.0), 1.0, kTol);
  EXPECT_NEAR(percentile(x, 1.0), 5.0, kTol);
  EXPECT_NEAR(percentile(x, 0.5), 3.0, kTol);
  EXPECT_NEAR(percentile(x, 0.25), 2.0, kTol);
  EXPECT_NEAR(percentile(x, 0.125), 1.5, kTol);
  EXPECT_NEAR(median(rvec{3.0, 1.0, 2.0}), 2.0, kTol);
  EXPECT_THROW((void)percentile(rvec{}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile(rvec{1.0}, 1.5), std::invalid_argument);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  Rng rng(3);
  rvec x(100);
  for (double& v : x) v = rng.gaussian();
  const auto cdf = empirical_cdf(x);
  ASSERT_EQ(cdf.size(), 100u);
  EXPECT_NEAR(cdf.back().fraction, 1.0, kTol);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(11);
  rvec x(1000);
  RunningStats rs;
  for (double& v : x) {
    v = rng.gaussian(2.5) + 1.0;
    rs.add(v);
  }
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_NEAR(rs.mean(), mean(x), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(x), 1e-9);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(Stats, EwmaConvergesToConstant) {
  Ewma e(0.1);
  EXPECT_TRUE(e.empty());
  for (int i = 0; i < 500; ++i) e.add(7.0);
  EXPECT_FALSE(e.empty());
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

TEST(Stats, EwmaTracksStep) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);  // 5.0
  EXPECT_NEAR(e.value(), 5.0, kTol);
  e.add(10.0);  // 7.5
  EXPECT_NEAR(e.value(), 7.5, kTol);
}

TEST(Rng, Reproducible) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  // Children look different from each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, GaussianMoments) {
  Rng rng(77);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.gaussian(3.0));
  EXPECT_NEAR(rs.mean(), 0.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 3.0, 0.1);
}

TEST(Rng, ComplexGaussianVariance) {
  Rng rng(78);
  RunningStats power;
  for (int i = 0; i < 20000; ++i) power.add(std::norm(rng.cgaussian(2.0)));
  EXPECT_NEAR(power.mean(), 2.0, 0.1);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Resampler, IdentityRatioPreservesSamples) {
  Rng rng(21);
  const cvec x = rng.cgaussian_vec(64);
  const cvec y = resample(x, 1.0);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
  }
}

TEST(Resampler, RecoversSmoothToneWithSmallPpm) {
  // A 100 kHz tone at 10 MHz sampling, resampled by 20 ppm, should match
  // the analytically resampled tone closely (interpolation error << phase
  // errors the system cares about).
  const double fs = 10e6, f0 = 100e3;
  const std::size_t n = 4096;
  cvec x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = phasor(kTwoPi * f0 * static_cast<double>(t) / fs);
  }
  const double ratio = 1.0 + 20e-6;
  const cvec y = resample(x, ratio);
  for (std::size_t t = 8; t + 8 < y.size(); ++t) {
    const cplx ref = phasor(kTwoPi * f0 * static_cast<double>(t) * ratio / fs);
    EXPECT_NEAR(std::abs(y[t] - ref), 0.0, 1e-4);
  }
}

TEST(Resampler, FractionalOffsetShiftsSamples) {
  // Linear ramp: interpolating at +0.5 lands halfway between samples.
  cvec x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<double>(i);
  const cvec y = resample(x, 1.0, 0.5);
  ASSERT_GE(y.size(), 10u);
  for (std::size_t i = 2; i < 10; ++i) {
    EXPECT_NEAR(y[i].real(), static_cast<double>(i) + 0.5, 1e-9);
  }
}

TEST(Resampler, OutOfRangeIsSilence) {
  const cvec x{{1.0, 0.0}, {2.0, 0.0}};
  EXPECT_EQ(interp_cubic(x, -0.5), (cplx{0.0, 0.0}));
  EXPECT_EQ(interp_cubic(x, 5.0), (cplx{0.0, 0.0}));
  EXPECT_EQ(interp_cubic(cvec{}, 0.0), (cplx{0.0, 0.0}));
}

// The FftPlan contract is BITWISE identity with the naive transform —
// equality, not closeness, because the golden physics exports depend on it.
TEST(FftPlan, ForwardBitwiseMatchesNaive) {
  Rng rng(17);
  for (std::size_t n : {2u, 8u, 64u, 256u}) {
    const FftPlan plan(n);
    cvec x(n);
    for (cplx& v : x) v = rng.cgaussian();
    cvec naive = x;
    cvec planned = x;
    fft_inplace(naive);
    plan.forward(planned);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(naive[i].real(), planned[i].real()) << "n=" << n << " i=" << i;
      EXPECT_EQ(naive[i].imag(), planned[i].imag()) << "n=" << n << " i=" << i;
    }
  }
}

TEST(FftPlan, InverseBitwiseMatchesNaive) {
  Rng rng(23);
  for (std::size_t n : {4u, 64u, 128u}) {
    const FftPlan plan(n);
    cvec x(n);
    for (cplx& v : x) v = rng.cgaussian();
    cvec naive = x;
    cvec planned = x;
    ifft_inplace(naive);
    plan.inverse(planned);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(naive[i].real(), planned[i].real()) << "n=" << n << " i=" << i;
      EXPECT_EQ(naive[i].imag(), planned[i].imag()) << "n=" << n << " i=" << i;
    }
  }
}

TEST(FftPlan, RejectsNonPowerOfTwoAndWrongSpan) {
  EXPECT_THROW(FftPlan(48), std::invalid_argument);
  const FftPlan plan(64);
  cvec x(32);
  EXPECT_THROW(plan.forward(x), std::invalid_argument);
}

}  // namespace
}  // namespace jmb
