// Engine layer: thread pool, trial runner determinism, and the staged
// pipeline's parity with the JmbSystem facade.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "engine/env.h"
#include "engine/pipeline.h"
#include "engine/system.h"
#include "engine/thread_pool.h"
#include "engine/trial_runner.h"

namespace jmb {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  engine::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  engine::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  engine::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, TasksMaySubmitFurtherTasks) {
  engine::ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1);
      pool.submit([&count] { count.fetch_add(1); });
    });
  }
  // wait() must also cover the tasks spawned from inside tasks: in_flight
  // is bumped at submit time, before the parent task retires.
  pool.wait();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, DestructionWithDrainedQueueIsClean) {
  std::atomic<int> count{0};
  {
    engine::ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait();  // queue drained; destructor only has to stop idle workers
  }
  EXPECT_EQ(count.load(), 4);
}

// The strict env parser behind JMB_THREADS (and the streaming knobs):
// digits only, warn-once fallback on anything else.
TEST(EngineEnv, ParseU64StrictRejectsNonCanonicalForms) {
  std::uint64_t v = 0;
  EXPECT_TRUE(engine::parse_u64_strict("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(engine::parse_u64_strict("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(engine::parse_u64_strict(nullptr, v));
  EXPECT_FALSE(engine::parse_u64_strict("", v));
  EXPECT_FALSE(engine::parse_u64_strict("-1", v));      // sign
  EXPECT_FALSE(engine::parse_u64_strict("+4", v));      // sign
  EXPECT_FALSE(engine::parse_u64_strict(" 4", v));      // leading whitespace
  EXPECT_FALSE(engine::parse_u64_strict("4 ", v));      // trailing whitespace
  EXPECT_FALSE(engine::parse_u64_strict("4x", v));      // trailing garbage
  EXPECT_FALSE(engine::parse_u64_strict("0x10", v));    // hex
  EXPECT_FALSE(engine::parse_u64_strict("18446744073709551616", v));  // 2^64
}

TEST(EngineEnv, EnvU64FallsBackOnMalformedValues) {
  bool warned = false;
  ASSERT_EQ(unsetenv("JMB_TEST_KNOB"), 0);
  EXPECT_EQ(engine::env_u64("JMB_TEST_KNOB", 7, true, warned), 7u);
  EXPECT_FALSE(warned);  // unset is not a warning

  ASSERT_EQ(setenv("JMB_TEST_KNOB", "12", 1), 0);
  EXPECT_EQ(engine::env_u64("JMB_TEST_KNOB", 7, true, warned), 12u);
  EXPECT_FALSE(warned);

  for (const char* bad : {"-3", " 4", "4x", "", "0"}) {
    warned = false;
    ASSERT_EQ(setenv("JMB_TEST_KNOB", bad, 1), 0);
    EXPECT_EQ(engine::env_u64("JMB_TEST_KNOB", 7, true, warned), 7u)
        << "value '" << bad << "'";
    EXPECT_TRUE(warned) << "value '" << bad << "'";
    // Second read with the flag still set stays silent.
    EXPECT_EQ(engine::env_u64("JMB_TEST_KNOB", 7, true, warned), 7u);
  }
  // With min_one off, an explicit 0 is a valid value.
  warned = false;
  ASSERT_EQ(setenv("JMB_TEST_KNOB", "0", 1), 0);
  EXPECT_EQ(engine::env_u64("JMB_TEST_KNOB", 7, false, warned), 0u);
  EXPECT_FALSE(warned);
  ASSERT_EQ(unsetenv("JMB_TEST_KNOB"), 0);
}

TEST(EngineEnv, ParseF64StrictRejectsNonCanonicalForms) {
  double v = 0.0;
  EXPECT_TRUE(engine::parse_f64_strict("0", v));
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(engine::parse_f64_strict("2", v));
  EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_TRUE(engine::parse_f64_strict("0.5", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(engine::parse_f64_strict("12.25", v));
  EXPECT_DOUBLE_EQ(v, 12.25);
  EXPECT_FALSE(engine::parse_f64_strict(nullptr, v));
  EXPECT_FALSE(engine::parse_f64_strict("", v));
  EXPECT_FALSE(engine::parse_f64_strict("-1", v));     // sign
  EXPECT_FALSE(engine::parse_f64_strict("+0.5", v));   // sign
  EXPECT_FALSE(engine::parse_f64_strict(" 1.5", v));   // leading whitespace
  EXPECT_FALSE(engine::parse_f64_strict("1.5 ", v));   // trailing whitespace
  EXPECT_FALSE(engine::parse_f64_strict(".5", v));     // leading dot
  EXPECT_FALSE(engine::parse_f64_strict("1.", v));     // trailing dot
  EXPECT_FALSE(engine::parse_f64_strict("1.2.3", v));  // two dots
  EXPECT_FALSE(engine::parse_f64_strict("1e3", v));    // exponent
  EXPECT_FALSE(engine::parse_f64_strict("nan", v));
  EXPECT_FALSE(engine::parse_f64_strict("1.5x", v));   // trailing garbage
}

TEST(EngineEnv, EnvF64FallsBackOnMalformedValues) {
  bool warned = false;
  ASSERT_EQ(unsetenv("JMB_TEST_RATE"), 0);
  EXPECT_DOUBLE_EQ(engine::env_f64("JMB_TEST_RATE", 1.5, warned), 1.5);
  EXPECT_FALSE(warned);  // unset is not a warning

  ASSERT_EQ(setenv("JMB_TEST_RATE", "2.5", 1), 0);
  EXPECT_DOUBLE_EQ(engine::env_f64("JMB_TEST_RATE", 1.5, warned), 2.5);
  EXPECT_FALSE(warned);
  // An explicit 0 is a valid value (it disables rate-style knobs).
  ASSERT_EQ(setenv("JMB_TEST_RATE", "0", 1), 0);
  EXPECT_DOUBLE_EQ(engine::env_f64("JMB_TEST_RATE", 1.5, warned), 0.0);
  EXPECT_FALSE(warned);

  for (const char* bad : {"-3", " 4", "4x", "", ".5", "1e2", "1.2.3"}) {
    warned = false;
    ASSERT_EQ(setenv("JMB_TEST_RATE", bad, 1), 0);
    EXPECT_DOUBLE_EQ(engine::env_f64("JMB_TEST_RATE", 1.5, warned), 1.5)
        << "value '" << bad << "'";
    EXPECT_TRUE(warned) << "value '" << bad << "'";
    // Second read with the flag still set stays silent.
    EXPECT_DOUBLE_EQ(engine::env_f64("JMB_TEST_RATE", 1.5, warned), 1.5);
  }
  ASSERT_EQ(unsetenv("JMB_TEST_RATE"), 0);
}

TEST(EngineEnv, DefaultThreadCountSurvivesMalformedJmbThreads) {
  ASSERT_EQ(setenv("JMB_THREADS", "3", 1), 0);
  EXPECT_EQ(engine::default_thread_count(), 3u);
  for (const char* bad : {"-2", "4x", " 8", "", "0"}) {
    ASSERT_EQ(setenv("JMB_THREADS", bad, 1), 0);
    EXPECT_GE(engine::default_thread_count(), 1u) << "value '" << bad << "'";
  }
  ASSERT_EQ(unsetenv("JMB_THREADS"), 0);
  EXPECT_GE(engine::default_thread_count(), 1u);
}

TEST(TrialRunner, SeedsAreBaseXorIndex) {
  engine::TrialRunner runner({.base_seed = 0xabcd, .n_threads = 1});
  const auto seeds = runner.run(8, [](engine::TrialContext& ctx) {
    return ctx.seed;
  });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], 0xabcdu ^ static_cast<std::uint64_t>(i));
  }
}

TEST(TrialRunner, ThreadCountDoesNotChangeResults) {
  auto body = [](engine::TrialContext& ctx) {
    // A few dependent draws so any RNG sharing would show.
    double acc = 0.0;
    for (int i = 0; i < 50; ++i) acc += ctx.rng.uniform(0.0, 1.0);
    return acc;
  };
  engine::TrialRunner serial({.base_seed = 99, .n_threads = 1});
  engine::TrialRunner parallel({.base_seed = 99, .n_threads = 4});
  const auto a = serial.run(32, body);
  const auto b = parallel.run(32, body);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "trial " << i;  // bit-identical, not approximate
  }
}

TEST(TrialRunner, MetricsMergeInTrialOrder) {
  auto body = [](engine::TrialContext& ctx) {
    ctx.metrics->stage(engine::kStagePrecode).add_condition(
        static_cast<double>(ctx.index + 1));
    return 0;
  };
  engine::TrialRunner serial({.base_seed = 5, .n_threads = 1});
  engine::TrialRunner parallel({.base_seed = 5, .n_threads = 4});
  (void)serial.run(16, body);
  (void)parallel.run(16, body);
  ASSERT_FALSE(serial.metrics().empty());
  const auto s = serial.metrics().snapshot(engine::kStagePrecode);
  const auto p = parallel.metrics().snapshot(engine::kStagePrecode);
  EXPECT_EQ(s.cond_count, 16u);
  EXPECT_EQ(p.cond_count, 16u);
  EXPECT_DOUBLE_EQ(s.cond_sum, p.cond_sum);
  EXPECT_DOUBLE_EQ(s.mean_condition(), p.mean_condition());
}

TEST(TrialRunner, ExceptionsPropagate) {
  engine::TrialRunner runner({.base_seed = 1, .n_threads = 4});
  EXPECT_THROW(
      runner.run(8,
                 [](engine::TrialContext& ctx) -> int {
                   if (ctx.index == 3) throw std::runtime_error("boom");
                   return 0;
                 }),
      std::runtime_error);
}

core::JointResult run_system_once(std::uint64_t seed) {
  core::SystemParams p;
  p.n_aps = 2;
  p.n_clients = 2;
  p.seed = seed;
  const double gain = core::JmbSystem::gain_for_snr_db(25.0, 1.0);
  core::JmbSystem sys(p, {{gain, gain}, {gain, gain}});
  if (!sys.run_measurement()) return {};
  sys.advance_time(5e-3);
  phy::ByteVec a(200, 0x11), b(200, 0x22);
  return sys.transmit_joint({a, b},
                            {phy::Modulation::kQpsk, phy::CodeRate::kHalf});
}

TEST(TrialRunner, SampleLevelTrialsAreThreadCountInvariant) {
  auto body = [](engine::TrialContext& ctx) {
    return run_system_once(ctx.seed);
  };
  engine::TrialRunner serial({.base_seed = 7, .n_threads = 1});
  engine::TrialRunner parallel({.base_seed = 7, .n_threads = 4});
  const auto a = serial.run(4, body);
  const auto b = parallel.run(4, body);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].per_client.size(), b[i].per_client.size()) << "trial " << i;
    EXPECT_EQ(a[i].slaves_synced, b[i].slaves_synced) << "trial " << i;
    // Bit-identical outcomes, including the analog-domain EVM.
    EXPECT_EQ(a[i].precoder_scale, b[i].precoder_scale) << "trial " << i;
    for (std::size_t c = 0; c < a[i].per_client.size(); ++c) {
      EXPECT_EQ(a[i].per_client[c].ok, b[i].per_client[c].ok);
      EXPECT_EQ(a[i].per_client[c].psdu, b[i].per_client[c].psdu);
      EXPECT_EQ(a[i].per_client[c].evm_snr_db, b[i].per_client[c].evm_snr_db);
    }
  }
}

// Driving the stages directly through the facade's SystemState must
// reproduce JmbSystem::transmit_joint exactly on the same seed.
TEST(FramePipeline, MatchesFacadeOnFixedSeed) {
  const std::uint64_t kSeed = 1234;
  const phy::Mcs mcs{phy::Modulation::kQpsk, phy::CodeRate::kHalf};
  phy::ByteVec pa(150, 0xA5), pb(150, 0x3C);

  // Path 1: the facade.
  core::SystemParams p;
  p.n_aps = 2;
  p.n_clients = 2;
  p.seed = kSeed;
  const double gain = core::JmbSystem::gain_for_snr_db(25.0, 1.0);
  core::JmbSystem facade(p, {{gain, gain}, {gain, gain}});
  ASSERT_TRUE(facade.run_measurement());
  facade.advance_time(5e-3);
  const core::JointResult via_facade = facade.transmit_joint({pa, pb}, mcs);

  // Path 2: hand-run the stages on an identical system.
  core::JmbSystem host(p, {{gain, gain}, {gain, gain}});
  engine::SystemState& sys = host.state();
  engine::FramePipeline pipeline;
  {
    engine::FrameContext ctx(sys);
    ASSERT_TRUE(pipeline.run_measurement(ctx));
  }
  host.advance_time(5e-3);
  std::vector<std::vector<cvec>> streams{sys.tx.build_freq_symbols(pa, mcs),
                                         sys.tx.build_freq_symbols(pb, mcs)};
  ASSERT_EQ(streams[0].size(), streams[1].size());
  engine::FrameContext ctx(sys);
  ctx.streams = &streams;
  const core::JointResult via_stages = pipeline.run_joint(ctx);

  EXPECT_EQ(via_facade.slaves_synced, via_stages.slaves_synced);
  EXPECT_EQ(via_facade.precoder_scale, via_stages.precoder_scale);
  ASSERT_EQ(via_facade.per_client.size(), via_stages.per_client.size());
  for (std::size_t c = 0; c < via_facade.per_client.size(); ++c) {
    EXPECT_EQ(via_facade.per_client[c].ok, via_stages.per_client[c].ok);
    EXPECT_EQ(via_facade.per_client[c].psdu, via_stages.per_client[c].psdu);
    EXPECT_EQ(via_facade.per_client[c].evm_snr_db,
              via_stages.per_client[c].evm_snr_db);
  }
}

TEST(FramePipeline, RecordsPerStageMetrics) {
  core::SystemParams p;
  p.n_aps = 2;
  p.n_clients = 2;
  p.seed = 42;
  const double gain = core::JmbSystem::gain_for_snr_db(25.0, 1.0);
  core::JmbSystem sys(p, {{gain, gain}, {gain, gain}});
  engine::StageMetricsSet metrics;
  sys.attach_metrics(&metrics);
  ASSERT_TRUE(sys.run_measurement());
  sys.advance_time(5e-3);
  phy::ByteVec a(100, 0x01), b(100, 0x02);
  (void)sys.transmit_joint({a, b},
                           {phy::Modulation::kQpsk, phy::CodeRate::kHalf});

  bool saw_measure = false, saw_precode = false, saw_decode = false;
  for (const std::string_view name : metrics.stage_names()) {
    const engine::StageSnapshot m = metrics.snapshot(name);
    if (name == engine::kStageMeasure) {
      saw_measure = true;
      EXPECT_EQ(m.frames, 1u);
    }
    if (name == engine::kStagePrecode) {
      saw_precode = true;
      EXPECT_GT(m.mean_condition(), 0.0);
    }
    if (name == engine::kStageDecode) saw_decode = true;
  }
  EXPECT_TRUE(saw_measure);
  EXPECT_TRUE(saw_precode);
  EXPECT_TRUE(saw_decode);
}

}  // namespace
}  // namespace jmb
