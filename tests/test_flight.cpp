// Flight recorder unit tests: clock calibration, name interning, the
// seqlock ring (bounded retention, concurrent snapshot safety), span
// scopes, the enable switch, the Chrome trace exporter (including flow
// stitch events) and fault-triggered dumps.
//
// The recorder is a process-wide leaked singleton, so tests share one
// instance; each test asserts on written() deltas or freshly interned
// names rather than absolute state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight/clock.h"
#include "obs/flight/export.h"
#include "obs/flight/recorder.h"
#include "obs/json.h"

namespace flight = jmb::obs::flight;

TEST(FlightClock, TicksAreMonotonicAndCalibrated) {
  const std::uint64_t a = flight::now_ticks();
  const std::uint64_t b = flight::now_ticks();
  EXPECT_GE(b, a);
  const auto& cal = flight::clock_calibration();
  // Any sane TSC (or the ns fallback) runs faster than 1 tick/us and
  // slower than 100 GHz.
  EXPECT_GT(cal.ticks_per_us, 0.9);
  EXPECT_LT(cal.ticks_per_us, 1e5);
  // Conversions are anchored at the calibration epoch.
  const double us = flight::ticks_to_us(cal.tsc0);
  EXPECT_DOUBLE_EQ(us, 0.0);
  EXPECT_NEAR(flight::tick_delta_us(
                  static_cast<std::uint64_t>(cal.ticks_per_us * 1000.0)),
              1000.0, 1.0);
}

TEST(FlightRecorder, InternDedupesAndRoundTrips) {
  auto& rec = flight::FlightRecorder::instance();
  const std::uint32_t a = rec.intern("test/intern_alpha");
  const std::uint32_t b = rec.intern("test/intern_beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, rec.intern("test/intern_alpha"));
  EXPECT_EQ(b, rec.intern("test/intern_beta"));
  EXPECT_EQ(rec.name_of(a), "test/intern_alpha");
  EXPECT_EQ(rec.name_of(b), "test/intern_beta");
  // Id 0 is the overflow alias; out-of-range ids degrade to it too.
  EXPECT_EQ(rec.name_of(0), "?");
  EXPECT_EQ(rec.name_of(0xffffffffu), "?");
}

TEST(FlightRing, BoundedOldestFirstSnapshot) {
  flight::FlightRing ring(8, 42);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.tid(), 42u);
  for (std::uint64_t i = 0; i < 12; ++i) {
    ring.write(flight::EventType::kInstant, 1, /*tsc=*/100 + i, /*flow=*/i,
               /*value=*/i * 10);
  }
  EXPECT_EQ(ring.written(), 12u);
  // Only the last 8 survive, oldest first.
  const auto all = ring.snapshot();
  ASSERT_EQ(all.size(), 8u);
  for (std::size_t j = 0; j < all.size(); ++j) {
    const std::uint64_t i = 4 + j;
    EXPECT_EQ(all[j].tsc, 100 + i);
    EXPECT_EQ(all[j].flow, i);
    EXPECT_EQ(all[j].value, i * 10);
    EXPECT_EQ(all[j].name, 1u);
    EXPECT_EQ(all[j].type, flight::EventType::kInstant);
  }
  // last_n trims from the new end.
  const auto tail = ring.snapshot(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().flow, 9u);
  EXPECT_EQ(tail.back().flow, 11u);
}

TEST(FlightRing, SnapshotIsSafeAgainstConcurrentWriter) {
  // Hammer a tiny ring from a writer thread while snapshotting; every
  // record that survives the torn-read filter must be internally
  // consistent (we encode value = tsc so tearing is detectable).
  flight::FlightRing ring(64, 0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> wrote{0};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.write(flight::EventType::kCounter, 7, /*tsc=*/i, /*flow=*/i,
                 /*value=*/i);
      wrote.store(++i, std::memory_order_relaxed);
    }
  });
  // On a single-core machine the writer may not be scheduled until we
  // yield; make sure the rings are non-empty before racing snapshots.
  while (wrote.load(std::memory_order_relaxed) < 256) {
    std::this_thread::yield();
  }
  std::size_t seen = 0;
  for (int round = 0; round < 200; ++round) {
    if (round % 16 == 0) std::this_thread::yield();
    for (const flight::FlightRecord& r : ring.snapshot()) {
      EXPECT_EQ(r.tsc, r.flow);
      EXPECT_EQ(r.tsc, r.value);
      EXPECT_EQ(r.name, 7u);
      ++seen;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(seen, 0u);
}

TEST(FlightRecorder, SpanScopeWritesOneSpanRecord) {
  auto& rec = flight::FlightRecorder::instance();
  flight::FlightRing* ring = rec.local_ring();
  if (ring == nullptr) GTEST_SKIP() << "flight recording disabled by env";
  const std::uint32_t name = rec.intern("test/span_scope");
  const std::uint64_t before = ring->written();
  {
    flight::SpanScope span(name, flight::make_flow(1, 2));
  }
  ASSERT_EQ(ring->written(), before + 1);
  const auto tail = ring->snapshot(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].type, flight::EventType::kSpan);
  EXPECT_EQ(tail[0].name, name);
  EXPECT_EQ(tail[0].flow, flight::make_flow(1, 2));
  // string_view convenience path resolves to the same interned id.
  {
    flight::SpanScope span2(std::string_view("test/span_scope"));
  }
  EXPECT_EQ(ring->snapshot(1)[0].name, name);
}

TEST(FlightRecorder, DisableSwitchStopsRecording) {
  auto& rec = flight::FlightRecorder::instance();
  if (rec.local_ring() == nullptr) {
    GTEST_SKIP() << "flight recording disabled by env";
  }
  flight::FlightRing* ring = rec.local_ring();
  rec.set_enabled_for_test(false);
  EXPECT_EQ(rec.local_ring(), nullptr);
  const std::uint64_t before = ring->written();
  flight::record(flight::EventType::kInstant, 0, flight::now_ticks(),
                 flight::kNoFlow, 0);
  {
    flight::SpanScope span(std::uint32_t{0});
  }
  flight::instant(std::string_view("test/disabled"));
  flight::counter("test/disabled_counter", 1.0);
  EXPECT_EQ(ring->written(), before);
  rec.set_enabled_for_test(true);
  EXPECT_EQ(rec.local_ring(), ring);
}

TEST(FlightExport, ChromeTraceCarriesSpansFlowsAndCounters) {
  auto& rec = flight::FlightRecorder::instance();
  if (rec.local_ring() == nullptr) {
    GTEST_SKIP() << "flight recording disabled by env";
  }
  // One flow crossing two spans (so the exporter emits s/t flow
  // events), an instant and a counter sample.
  const std::uint64_t flow = flight::make_flow(5, 77);
  {
    flight::SpanScope a(rec.intern("test/export_stage_a"), flow);
  }
  {
    flight::SpanScope b(rec.intern("test/export_stage_b"), flow);
  }
  flight::instant(std::string_view("test/export_instant"), flow, 3);
  flight::counter("test/export_depth", 2.5);

  const std::string json = flight::chrome_trace_json();
  std::string err;
  const jmb::obs::JsonValue doc = jmb::obs::parse_json(json, &err);
  ASSERT_FALSE(doc.is_null()) << err;
  const jmb::obs::JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool saw_a = false;
  bool saw_b = false;
  bool saw_instant = false;
  bool saw_counter = false;
  int flow_starts = 0;
  int flow_steps = 0;
  for (const jmb::obs::JsonValue& ev : events->as_array()) {
    const jmb::obs::JsonValue* name = ev.get("name");
    const jmb::obs::JsonValue* ph = ev.get("ph");
    if (name == nullptr || ph == nullptr) continue;
    const std::string& n = name->as_string();
    const std::string& p = ph->as_string();
    if (n == "test/export_stage_a" && p == "X") saw_a = true;
    if (n == "test/export_stage_b" && p == "X") saw_b = true;
    if (n == "test/export_instant" && p == "i") saw_instant = true;
    if (n == "test/export_depth" && p == "C") {
      const jmb::obs::JsonValue* args = ev.get("args");
      ASSERT_NE(args, nullptr);
      const jmb::obs::JsonValue* value = args->get("value");
      ASSERT_NE(value, nullptr);
      EXPECT_DOUBLE_EQ(value->as_number(), 2.5);
      saw_counter = true;
    }
    if (ev.get("id") != nullptr && p == "s") ++flow_starts;
    if (ev.get("id") != nullptr && (p == "t" || p == "f")) ++flow_steps;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
  // At least our two-span flow got stitched.
  EXPECT_GE(flow_starts, 1);
  EXPECT_GE(flow_steps, 1);
}

TEST(FlightExport, TriggerDumpWritesBudgetedFiles) {
  namespace fs = std::filesystem;
  auto& rec = flight::FlightRecorder::instance();
  if (rec.local_ring() == nullptr) {
    GTEST_SKIP() << "flight recording disabled by env";
  }
  const fs::path dir =
      fs::temp_directory_path() / "jmb_flight_dump_test";
  fs::remove_all(dir);
  flight::set_dump_dir_for_test(dir.string());
  flight::reset_dump_count_for_test();

  flight::instant(std::string_view("test/dump_marker"), flight::kNoFlow, 1);
  const std::string p0 = flight::trigger_dump("unit_test");
  ASSERT_FALSE(p0.empty());
  EXPECT_TRUE(fs::exists(p0));
  EXPECT_EQ(flight::dumps_written(), 1u);

  // The dump parses as a trace and carries the reason instant.
  std::string text;
  {
    std::FILE* f = std::fopen(p0.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  std::string err;
  const jmb::obs::JsonValue doc = jmb::obs::parse_json(text, &err);
  ASSERT_FALSE(doc.is_null()) << err;
  ASSERT_NE(doc.get("traceEvents"), nullptr);
  EXPECT_NE(text.find("dump/unit_test"), std::string::npos);
  EXPECT_NE(text.find("test/dump_marker"), std::string::npos);

  // The budget (JMB_FLIGHT_MAX_DUMPS, default 4) caps total dumps.
  std::size_t written = 1;
  for (int i = 0; i < 10; ++i) {
    if (!flight::trigger_dump("unit_test").empty()) ++written;
  }
  EXPECT_LE(written, 4u);
  EXPECT_EQ(written, flight::dumps_written());

  flight::set_dump_dir_for_test("");
  flight::reset_dump_count_for_test();
  EXPECT_TRUE(flight::trigger_dump("unit_test_nodir").empty() ||
              std::getenv("JMB_FLIGHT_DUMP_DIR") != nullptr);
  fs::remove_all(dir);
}
