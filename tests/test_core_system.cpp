// Integration tests for the sample-level JMB system: the interleaved
// channel-measurement protocol, distributed phase synchronization, joint
// zero-forcing transmissions, diversity mode, nulling (INR), and the
// compat / decoupled measurement schemes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/compat11n.h"
#include "core/decoupled.h"
#include "core/measurement.h"
#include "core/system.h"
#include "dsp/stats.h"
#include "rate/effective_snr.h"

namespace jmb::core {
namespace {

std::vector<std::vector<double>> flat_gains(std::size_t n_clients,
                                            std::size_t n_aps, double snr_db) {
  return std::vector<std::vector<double>>(
      n_clients,
      std::vector<double>(n_aps, JmbSystem::gain_for_snr_db(snr_db, 1.0)));
}

phy::ByteVec random_psdu(Rng& rng, std::size_t n) {
  phy::ByteVec p(n);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

TEST(MeasurementSchedule, SlotLayout) {
  const MeasurementSchedule s{4, 3};
  EXPECT_EQ(s.cfo_block_offset(0), phy::kPreambleLen);
  EXPECT_EQ(s.cfo_block_offset(3), phy::kPreambleLen + 3 * 160);
  const std::size_t chan_base = phy::kPreambleLen + 4 * 160;
  EXPECT_EQ(s.chan_symbol_offset(0, 0), chan_base);
  EXPECT_EQ(s.chan_symbol_offset(2, 1), chan_base + (4 + 2) * 80);
  EXPECT_EQ(s.frame_len(), chan_base + 12 * 80);
  EXPECT_THROW((void)s.cfo_block_offset(4), std::invalid_argument);
  EXPECT_THROW((void)s.chan_symbol_offset(0, 3), std::invalid_argument);
}

TEST(MeasurementSchedule, WaveformsDoNotOverlap) {
  const MeasurementSchedule s{3, 2};
  std::vector<cvec> waves;
  for (std::size_t ap = 0; ap < 3; ++ap) waves.push_back(s.ap_waveform(ap));
  for (std::size_t i = 0; i < waves[0].size(); ++i) {
    int active = 0;
    for (const auto& w : waves) {
      if (std::abs(w[i]) > 1e-12) ++active;
    }
    EXPECT_LE(active, 1) << "overlap at sample " << i;
  }
  // The lead's preamble occupies the frame start.
  EXPECT_GT(std::abs(waves[0][10]), 0.0);
  EXPECT_EQ(std::abs(waves[1][10]), 0.0);
}

TEST(MeasurementFrame, CleanChannelRecovery) {
  // Render a 3-AP measurement frame through trivial per-AP channels with
  // known CFOs; the client's estimates must match gains and reference
  // phases.
  const phy::PhyConfig cfg;
  const MeasurementSchedule sched{3, 4};
  Rng rng(1);

  const cplx gains[3] = {{0.9, 0.3}, {-0.5, 0.8}, {0.4, -0.7}};
  const double cfos[3] = {3000.0, -5200.0, 800.0};

  cvec buf(sched.frame_len() + 400);
  for (auto& v : buf) v = rng.cgaussian(1e-6);
  const std::size_t at = 150;
  for (std::size_t ap = 0; ap < 3; ++ap) {
    const cvec w = sched.ap_waveform(ap);
    for (std::size_t n = 0; n < w.size(); ++n) {
      const double t = static_cast<double>(at + n);
      buf[at + n] += w[n] * gains[ap] *
                     phasor(kTwoPi * cfos[ap] * t / cfg.sample_rate_hz);
    }
  }
  const auto cm = process_measurement_frame(buf, sched, cfg);
  ASSERT_TRUE(cm.has_value());
  EXPECT_NEAR(static_cast<double>(cm->header_start), 150.0, 3.0);
  for (std::size_t ap = 0; ap < 3; ++ap) {
    EXPECT_NEAR(cm->per_ap[ap].cfo_hz, cfos[ap], 25.0) << "ap " << ap;
    // The estimate should equal gain * e^{j cfo * header_start_phase}
    // rotated to the reference time; compare against the oracle value at
    // the detected header.
    // Estimates are referenced to the block-center snapshot time.
    const cplx expect =
        gains[ap] * phasor(kTwoPi * cfos[ap] *
                           static_cast<double>(cm->reference_sample) /
                           cfg.sample_rate_hz);
    for (int k : {-20, -5, 5, 20}) {
      // The FFT windows back off 4 samples into the CP, adding the ramp
      // e^{-j 2 pi k 4/64} per subcarrier. It is common to every AP and
      // cancels through the client's own estimation in the full loop, but
      // the oracle here must include it.
      const cplx ramp = phasor(-kTwoPi * static_cast<double>(k) * 4.0 / 64.0);
      EXPECT_NEAR(std::abs(cm->per_ap[ap].channel.at(k) - expect * ramp), 0.0,
                  0.06)
          << "ap " << ap << " sc " << k;
    }
  }
}

TEST(MeasurementFrame, FailsWithoutPreamble) {
  const phy::PhyConfig cfg;
  Rng rng(2);
  const cvec noise = rng.cgaussian_vec(4000, 1.0);
  EXPECT_FALSE(process_measurement_frame(noise, {3, 2}, cfg).has_value());
}

TEST(JmbSystemTest, MeasurementProducesConsistentChannels) {
  SystemParams p;
  p.n_aps = 3;
  p.n_clients = 3;
  p.seed = 5;
  JmbSystem sys(p, flat_gains(3, 3, 25.0));
  ASSERT_TRUE(sys.run_measurement());
  ASSERT_TRUE(sys.ready());
  const ChannelMatrixSet& h = sys.measured_channels();
  EXPECT_EQ(h.n_clients(), 3u);
  EXPECT_EQ(h.n_tx(), 3u);
  // Mean measured link power should be in the ballpark of the configured
  // gain (Rayleigh/Rician spread makes individual links vary).
  const double expect_gain = JmbSystem::gain_for_snr_db(25.0, 1.0);
  double acc = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t a = 0; a < 3; ++a) acc += h.mean_link_power(c, a);
  }
  acc /= 9.0;
  EXPECT_GT(acc, expect_gain * 0.25);
  EXPECT_LT(acc, expect_gain * 4.0);
}

TEST(JmbSystemTest, JointTransmissionDeliversAllStreams) {
  SystemParams p;
  p.n_aps = 3;
  p.n_clients = 3;
  p.seed = 7;
  JmbSystem sys(p, flat_gains(3, 3, 28.0));
  ASSERT_TRUE(sys.run_measurement());
  // Operate at a paper-like effective SNR (high band), then re-measure so
  // the measurement noise matches the operating point.
  sys.calibrate_to_effective_snr(22.0);
  sys.advance_time(2e-3);
  ASSERT_TRUE(sys.run_measurement());

  Rng rng(8);
  std::vector<phy::ByteVec> psdus;
  for (int c = 0; c < 3; ++c) psdus.push_back(random_psdu(rng, 300));

  sys.advance_time(5e-3);
  const JointResult jr = sys.transmit_joint(
      psdus, {phy::Modulation::kQam16, phy::CodeRate::kHalf});
  EXPECT_EQ(jr.slaves_synced, 2u);
  ASSERT_EQ(jr.per_client.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    ASSERT_TRUE(jr.per_client[c].ok)
        << "client " << c << ": " << jr.per_client[c].fail_reason;
    EXPECT_EQ(jr.per_client[c].psdu, psdus[c]) << "client " << c;
  }
}

TEST(JmbSystemTest, JointTransmissionSurvivesCoherenceTimeGap) {
  // The whole point of per-packet re-sync: a single measurement serves
  // transmissions spread over ~100 ms (within the coherence time) even
  // though CFO-predicted phase would have wrapped many times over.
  SystemParams p;
  p.n_aps = 2;
  p.n_clients = 2;
  p.seed = 9;
  p.coherence_time_s = 10.0;  // keep the channel itself still: isolate sync
  JmbSystem sys(p, flat_gains(2, 2, 28.0));
  ASSERT_TRUE(sys.run_measurement());
  sys.calibrate_to_effective_snr(20.0);
  sys.advance_time(2e-3);
  ASSERT_TRUE(sys.run_measurement());

  Rng rng(10);
  for (int round = 0; round < 4; ++round) {
    sys.advance_time(25e-3);
    std::vector<phy::ByteVec> psdus{random_psdu(rng, 200),
                                    random_psdu(rng, 200)};
    const JointResult jr = sys.transmit_joint(
        psdus, {phy::Modulation::kQpsk, phy::CodeRate::kHalf});
    for (std::size_t c = 0; c < 2; ++c) {
      ASSERT_TRUE(jr.per_client[c].ok)
          << "round " << round << " client " << c << ": "
          << jr.per_client[c].fail_reason;
      EXPECT_EQ(jr.per_client[c].psdu, psdus[c]);
    }
  }
}

TEST(JmbSystemTest, InrSmallWithSyncEnabled) {
  SystemParams p;
  p.n_aps = 3;
  p.n_clients = 3;
  p.seed = 11;
  // Median over topologies: single draws have a heavy conditioning tail.
  rvec inrs;
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u, 17u, 18u}) {
    p.seed = seed;
    JmbSystem sys(p, flat_gains(3, 3, 22.0));
    ASSERT_TRUE(sys.run_measurement());
    sys.calibrate_to_effective_snr(20.0);
    sys.advance_time(2e-3);
    ASSERT_TRUE(sys.run_measurement());
    sys.advance_time(2e-3);
    inrs.push_back(sys.measure_inr(0));
  }
  // Fig. 8 territory: residual interference within a few dB of the noise
  // floor. Our estimation-limited nulls sit ~-30 dB below the signal, so
  // the median INR lands a couple of dB above the paper's testbed values;
  // EXPERIMENTS.md discusses the delta. The scaling trend matches.
  EXPECT_LT(median(inrs), 6.0);
  for (double v : inrs) EXPECT_GT(v, -1.0);
}

TEST(JmbSystemTest, AlignmentSeriesMatchesPaperScale) {
  SystemParams p;
  p.n_aps = 2;
  p.n_clients = 1;
  p.seed = 13;
  // The paper's probe isolates oscillator sync on a static testbed; a
  // moving channel would add its own (genuine, but different) drift.
  p.coherence_time_s = 1e4;
  JmbSystem sys(p, flat_gains(1, 2, 25.0));
  ASSERT_TRUE(sys.run_measurement());
  const rvec dev = sys.measure_alignment_series(30, 5e-3);
  ASSERT_GE(dev.size(), 20u);
  // Paper Fig. 7: median 0.017 rad, 95th percentile 0.05 rad. Allow slack
  // for our different (simulated) hardware, but require the same order.
  EXPECT_LT(median(dev), 0.05);
  EXPECT_LT(percentile(dev, 0.95), 0.15);
}

TEST(JmbSystemTest, DiversityBeatsSingleApAtLowSnr) {
  SystemParams p;
  p.n_aps = 4;
  p.n_clients = 1;
  p.seed = 15;
  JmbSystem sys(p, flat_gains(1, 4, 8.0));  // weak links
  ASSERT_TRUE(sys.run_measurement());
  sys.advance_time(2e-3);
  Rng rng(16);
  const phy::ByteVec psdu = random_psdu(rng, 200);
  const phy::RxResult res = sys.transmit_diversity(
      0, psdu, {phy::Modulation::kQpsk, phy::CodeRate::kHalf});
  ASSERT_TRUE(res.ok) << res.fail_reason;
  EXPECT_EQ(res.psdu, psdu);
  // Coherent combining of 4 APs at 8 dB/link should land well above a
  // single 8 dB link (ideal +12 dB).
  EXPECT_GT(res.preamble.snr_db, 14.0);
}

TEST(JmbSystemTest, PredictedSnrTracksConfiguredGain) {
  SystemParams p;
  p.n_aps = 2;
  p.n_clients = 2;
  p.seed = 17;
  JmbSystem sys(p, flat_gains(2, 2, 24.0));
  ASSERT_TRUE(sys.run_measurement());
  // ZF through a 2x2 at per-link 24 dB: within a broad band of the link
  // SNR (conditioning makes it vary).
  const double snr = sys.predicted_beamforming_snr_db();
  EXPECT_GT(snr, 8.0);
  EXPECT_LT(snr, 32.0);
}

TEST(JmbSystemTest, InputValidation) {
  SystemParams p;
  p.n_aps = 2;
  p.n_clients = 2;
  JmbSystem sys(p, flat_gains(2, 2, 20.0));
  EXPECT_THROW((void)sys.transmit_joint({}, phy::rate_set()[0]),
               std::logic_error);
  EXPECT_THROW((void)sys.measure_inr(0), std::logic_error);
  EXPECT_THROW(sys.advance_time(-1.0), std::invalid_argument);
  EXPECT_THROW(JmbSystem(p, flat_gains(1, 2, 20.0)), std::invalid_argument);
}

TEST(Compat11n, ReferenceAntennaTrickReconstructsH) {
  Rng rng(20);
  Compat11nParams p;
  const Compat11nResult r = run_compat11n(p, rng);
  // With the trick: a few percent error (estimation noise dominated).
  EXPECT_LT(r.reconstruction_rel_err, 0.2);
  // Without it, the stale soundings are rotated by essentially random
  // phases: order-of-magnitude worse.
  EXPECT_GT(r.naive_rel_err, 3.0 * r.reconstruction_rel_err);
}

TEST(Compat11n, JointBeatsBaselinePerStream) {
  Rng rng(21);
  Compat11nParams p;
  p.link_gain = from_db(22.0);
  const Compat11nResult r = run_compat11n(p, rng);
  ASSERT_EQ(r.jmb_stream_sinr.size(), 4u);
  // All four streams decodable concurrently: each stream's effective SNR
  // supports some rate.
  for (const rvec& s : r.jmb_stream_sinr) {
    EXPECT_TRUE(rate::select_rate(s).has_value());
  }
  // Baseline gets only 2 concurrent streams (one client at a time); the
  // JMB aggregate rate must exceed the baseline's time-shared aggregate.
  double jmb_rate = 0.0, base_rate = 0.0;
  for (const rvec& s : r.jmb_stream_sinr) {
    if (const auto ri = rate::select_rate(s)) {
      jmb_rate += phy::rate_set()[*ri].rate_mbps(20e6);
    }
  }
  for (const rvec& s : r.baseline_stream_snr) {
    if (const auto ri = rate::select_rate(s)) {
      base_rate += phy::rate_set()[*ri].rate_mbps(20e6);
    }
  }
  base_rate /= 2.0;  // two clients time-share the medium
  EXPECT_GT(jmb_rate, 1.2 * base_rate);
}

TEST(Compat11n, RxZfStreamSnrs) {
  // Orthogonal channel: no noise enhancement; each stream gets |h|^2/noise.
  CMatrix h{{cplx{2, 0}, cplx{0, 0}}, {cplx{0, 0}, cplx{1, 0}}};
  const rvec snrs = rx_zf_stream_snrs(h, 1.0, 0.5);
  EXPECT_NEAR(snrs[0], 8.0, 1e-9);
  EXPECT_NEAR(snrs[1], 2.0, 1e-9);
  // Rank-deficient: zero SNRs, no crash.
  CMatrix bad{{cplx{1, 0}, cplx{1, 0}}, {cplx{1, 0}, cplx{1, 0}}};
  for (double s : rx_zf_stream_snrs(bad, 1.0, 1.0)) EXPECT_EQ(s, 0.0);
}

TEST(Decoupled, SharedReferenceFixesStaleRows) {
  Rng rng(22);
  DecoupledParams p;
  p.link_gain = from_db(22.0);
  const DecoupledResult r = run_decoupled(p, rng);
  ASSERT_EQ(r.sinr_db.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    // Decoupled measurement tracks the oracle within a few dB.
    EXPECT_GT(r.sinr_db[c], r.oracle_sinr_db[c] - 6.0) << c;
  }
  // Naive stitching: the first client's row happens to be self-consistent
  // (exact inverses null on their own row), but every client measured at a
  // later time collapses to interference-limited SINR.
  EXPECT_GT(r.sinr_db[1], r.naive_sinr_db[1] + 6.0);
  EXPECT_LT(r.naive_sinr_db[1], 10.0);
}

TEST(Decoupled, WorksForMoreNodes) {
  Rng rng(23);
  DecoupledParams p;
  p.n_nodes = 4;
  p.link_gain = from_db(22.0);
  const DecoupledResult r = run_decoupled(p, rng);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_GT(r.sinr_db[c], 12.0) << c;  // oracle target is 20 dB
    EXPECT_GT(r.sinr_db[c], r.oracle_sinr_db[c] - 8.0) << c;
  }
  // Stale rows without the shared reference: last client suffers most.
  EXPECT_LT(r.naive_sinr_db[3], r.sinr_db[3] - 6.0);
}

}  // namespace
}  // namespace jmb::core
