// Streaming execution mode: the SPSC ring, the virtual sample clock, the
// stage partitioner, and the pipeline's determinism contract — physics
// outputs bit-identical to batch mode for any ring depth and thread
// placement.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "engine/stream/sample_clock.h"
#include "engine/stream/spsc_ring.h"
#include "engine/stream/stream_pipeline.h"
#include "engine/system.h"

namespace jmb {
namespace {

using engine::stream::ItemKind;
using engine::stream::SpscRing;
using engine::stream::StreamConfig;
using engine::stream::StreamLaneResult;
using engine::stream::StreamLaneSpec;
using engine::stream::StreamPipeline;
using engine::stream::StreamReport;
using engine::stream::VirtualSampleClock;

TEST(SpscRing, FifoOrderAndCapacity) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(v));
  }
  int v = 99;
  EXPECT_FALSE(ring.try_push(v));  // full
  EXPECT_EQ(v, 99);                // untouched on failure
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(2);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    std::uint64_t v = i;
    ASSERT_TRUE(ring.try_push(v));
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscRing, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring(2);
  auto p = std::make_unique<int>(7);
  ASSERT_TRUE(ring.try_push(p));
  EXPECT_EQ(p, nullptr);  // moved from on success
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRing, CloseDrainsRemainingItems) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  ring.close();
  EXPECT_TRUE(ring.closed());
  for (int i = 0; i < 3; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesSequence) {
  constexpr std::uint64_t kN = 200000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kN;) {
      std::uint64_t v = i;
      if (ring.try_push(v)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
    ring.close();
  });
  std::uint64_t expect = 0;
  std::uint64_t out = 0;
  for (;;) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expect);
      ++expect;
      continue;
    }
    if (ring.closed()) {
      if (!ring.try_pop(out)) break;  // closed + drained
      ASSERT_EQ(out, expect);
      ++expect;
      continue;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(expect, kN);
}

TEST(VirtualSampleClock, FreeRunHasInfiniteDeadlines) {
  VirtualSampleClock clock(10e6, 0.0);
  EXPECT_TRUE(clock.free_run());
  EXPECT_TRUE(std::isinf(clock.deadline_s(1)));
  EXPECT_TRUE(std::isinf(clock.deadline_s(1u << 30)));
}

TEST(VirtualSampleClock, DeadlineScalesWithRateAndFactor) {
  VirtualSampleClock rt(10e6, 1.0);  // real time: 10 Msamples per second
  EXPECT_FALSE(rt.free_run());
  EXPECT_DOUBLE_EQ(rt.deadline_s(10000000), 1.0);
  VirtualSampleClock fast(10e6, 100.0);  // 100x faster than the air
  EXPECT_DOUBLE_EQ(fast.deadline_s(10000000), 0.01);
}

TEST(PartitionStages, ContiguousAndBalanced) {
  using Parts = std::vector<std::pair<std::size_t, std::size_t>>;
  EXPECT_EQ(engine::stream::partition_stages(5, 1), (Parts{{0, 5}}));
  EXPECT_EQ(engine::stream::partition_stages(5, 2), (Parts{{0, 3}, {3, 5}}));
  EXPECT_EQ(engine::stream::partition_stages(5, 3),
            (Parts{{0, 2}, {2, 4}, {4, 5}}));
  EXPECT_EQ(engine::stream::partition_stages(5, 5),
            (Parts{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}));
  // More threads than stages clamps.
  EXPECT_EQ(engine::stream::partition_stages(5, 9).size(), 5u);
}

StreamLaneSpec lane_spec(std::uint64_t seed) {
  StreamLaneSpec spec;
  spec.params.n_aps = 2;
  spec.params.n_clients = 2;
  spec.params.seed = seed;
  const double gain = core::JmbSystem::gain_for_snr_db(25.0, 1.0);
  spec.link_gains = {{gain, gain}, {gain, gain}};
  spec.psdus = {phy::ByteVec(150, 0xA5), phy::ByteVec(150, 0x3C)};
  spec.mcs = {phy::Modulation::kQpsk, phy::CodeRate::kHalf};
  return spec;
}

std::vector<StreamLaneSpec> two_lanes() {
  return {lane_spec(0xbeef), lane_spec(0xbeef ^ 1)};
}

void expect_same_physics(const std::vector<StreamLaneResult>& a,
                         const std::vector<StreamLaneResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t l = 0; l < a.size(); ++l) {
    ASSERT_EQ(a[l].frames.size(), b[l].frames.size()) << "lane " << l;
    for (std::size_t f = 0; f < a[l].frames.size(); ++f) {
      const auto& x = a[l].frames[f];
      const auto& y = b[l].frames[f];
      EXPECT_EQ(x.seq, y.seq);
      EXPECT_EQ(x.kind, y.kind);
      EXPECT_EQ(x.aborted, y.aborted);
      EXPECT_EQ(x.measurement_ok, y.measurement_ok);
      EXPECT_EQ(x.joint.slaves_synced, y.joint.slaves_synced);
      // Bit-identical physics, including the analog-domain EVM.
      EXPECT_EQ(x.joint.precoder_scale, y.joint.precoder_scale);
      ASSERT_EQ(x.joint.per_client.size(), y.joint.per_client.size());
      for (std::size_t c = 0; c < x.joint.per_client.size(); ++c) {
        EXPECT_EQ(x.joint.per_client[c].ok, y.joint.per_client[c].ok);
        EXPECT_EQ(x.joint.per_client[c].psdu, y.joint.per_client[c].psdu);
        EXPECT_EQ(x.joint.per_client[c].evm_snr_db,
                  y.joint.per_client[c].evm_snr_db);
      }
    }
  }
}

TEST(StreamPipeline, PhysicsDeterministicAcrossRepeatRuns) {
  const StreamConfig cfg{.ring_depth = 8,
                         .n_threads = 3,
                         .rt_factor = 0.0,
                         .n_epochs = 1,
                         .frames_per_epoch = 2};
  StreamPipeline first(two_lanes(), cfg);
  const StreamReport r1 = first.run();
  StreamPipeline second(two_lanes(), cfg);
  const StreamReport r2 = second.run();
  EXPECT_EQ(r1.items, r2.items);
  EXPECT_EQ(r1.total_samples, r2.total_samples);
  expect_same_physics(first.lane_results(), second.lane_results());
}

TEST(StreamPipeline, PhysicsInvariantToDepthAndPlacement) {
  StreamPipeline narrow(two_lanes(), {.ring_depth = 2,
                                      .n_threads = 1,
                                      .rt_factor = 0.0,
                                      .n_epochs = 1,
                                      .frames_per_epoch = 2});
  (void)narrow.run();
  StreamPipeline wide(two_lanes(), {.ring_depth = 64,
                                    .n_threads = 5,
                                    .rt_factor = 0.0,
                                    .n_epochs = 1,
                                    .frames_per_epoch = 2});
  (void)wide.run();
  expect_same_physics(narrow.lane_results(), wide.lane_results());
}

// The determinism contract's strongest form: a streaming lane must be
// bit-identical to the batch facade executing the same call sequence.
TEST(StreamPipeline, MatchesBatchFacadeSequence) {
  constexpr std::size_t kEpochs = 2;
  constexpr std::size_t kFramesPerEpoch = 2;
  const StreamLaneSpec spec = lane_spec(4242);

  StreamPipeline pipe({spec}, {.ring_depth = 4,
                               .n_threads = 5,
                               .rt_factor = 0.0,
                               .n_epochs = kEpochs,
                               .frames_per_epoch = kFramesPerEpoch});
  (void)pipe.run();
  const StreamLaneResult& lane = pipe.lane_results()[0];
  ASSERT_EQ(lane.frames.size(), kEpochs * (1 + kFramesPerEpoch));

  core::JmbSystem batch(spec.params, spec.link_gains);
  std::size_t at = 0;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    const bool meas_ok = batch.run_measurement();
    ASSERT_EQ(lane.frames[at].kind, ItemKind::kMeasure);
    // At 25 dB the measurement epoch reliably succeeds in both modes
    // (run_measurement() additionally folds in precoder viability; the
    // streaming record carries the raw measurement outcome).
    EXPECT_TRUE(meas_ok);
    EXPECT_TRUE(lane.frames[at].measurement_ok);
    ++at;
    for (std::size_t f = 0; f < kFramesPerEpoch; ++f, ++at) {
      ASSERT_EQ(lane.frames[at].kind, ItemKind::kData);
      if (!batch.ready()) {
        EXPECT_TRUE(lane.frames[at].aborted);
        continue;
      }
      const core::JointResult jr = batch.transmit_joint(spec.psdus, spec.mcs);
      const auto& rec = lane.frames[at];
      ASSERT_FALSE(rec.aborted);
      EXPECT_EQ(rec.joint.slaves_synced, jr.slaves_synced);
      EXPECT_EQ(rec.joint.precoder_scale, jr.precoder_scale);
      ASSERT_EQ(rec.joint.per_client.size(), jr.per_client.size());
      for (std::size_t c = 0; c < jr.per_client.size(); ++c) {
        EXPECT_EQ(rec.joint.per_client[c].ok, jr.per_client[c].ok);
        EXPECT_EQ(rec.joint.per_client[c].psdu, jr.per_client[c].psdu);
        EXPECT_EQ(rec.joint.per_client[c].evm_snr_db,
                  jr.per_client[c].evm_snr_db);
      }
    }
  }
}

TEST(StreamPipeline, TinyRingsBackpressureStillCompletes) {
  StreamPipeline pipe(two_lanes(), {.ring_depth = 2,
                                    .n_threads = 5,
                                    .rt_factor = 0.0,
                                    .n_epochs = 1,
                                    .frames_per_epoch = 3});
  const StreamReport rep = pipe.run();
  EXPECT_EQ(rep.items, 2u * (1 + 3));
  EXPECT_EQ(rep.deadline_misses, 0u);  // free-run: no deadlines
  EXPECT_GT(rep.total_samples, 0u);
  EXPECT_GT(rep.msamples_per_s, 0.0);
}

TEST(StreamPipeline, ImpossibleClockRecordsMissesWithoutDropping) {
  // rt_factor 1e9 puts every deadline at ~nanoseconds after start: every
  // item must miss, yet all of them are still processed and retired.
  StreamPipeline pipe({lane_spec(7)}, {.ring_depth = 4,
                                       .n_threads = 2,
                                       .rt_factor = 1e9,
                                       .n_epochs = 1,
                                       .frames_per_epoch = 2});
  const StreamReport rep = pipe.run();
  EXPECT_EQ(rep.items, 3u);
  EXPECT_EQ(rep.deadline_misses, 3u);
  EXPECT_DOUBLE_EQ(rep.deadline_miss_rate, 1.0);
  EXPECT_EQ(pipe.lane_results()[0].frames.size(), 3u);
}

TEST(StreamPipeline, MergedMetricsCountFramesPerStage) {
  StreamPipeline pipe(two_lanes(), {.ring_depth = 8,
                                    .n_threads = 2,
                                    .rt_factor = 0.0,
                                    .n_epochs = 1,
                                    .frames_per_epoch = 2});
  (void)pipe.run();
  const engine::StageMetricsSet& m = pipe.metrics();
  // 2 lanes x 1 measurement epoch, 2 lanes x 2 data frames.
  EXPECT_EQ(m.snapshot(engine::kStageMeasure).frames, 2u);
  EXPECT_EQ(m.snapshot(engine::kStageSynthesis).frames, 4u);
  EXPECT_EQ(m.snapshot(engine::kStageDecode).frames, 4u);
  // Operator queue metrics landed in the merged registry as kTiming.
  EXPECT_NE(m.registry().find("stream/op0/items"), nullptr);
  EXPECT_NE(m.registry().find("stream/deadline_miss_count"), nullptr);
}

}  // namespace
}  // namespace jmb
