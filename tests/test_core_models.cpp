// Tests for the modeling layers added during calibration: the
// well-conditioned channel regime, effective-SNR calibration of the
// sample-level system, and the slave-correction ablation switch.
#include <gtest/gtest.h>

#include <cmath>

#include "core/link_model.h"
#include "core/system.h"
#include "dsp/stats.h"
#include "linalg/pinv.h"

namespace jmb::core {
namespace {

TEST(WellConditioned, RowsAreOrthogonalPerSubcarrier) {
  Rng rng(1);
  const std::vector<std::vector<double>> gains(
      4, std::vector<double>(4, from_db(15.0)));
  const ChannelMatrixSet h = well_conditioned_channel_set(gains, rng);
  for (std::size_t k = 0; k < h.n_subcarriers(); k += 9) {
    const CMatrix& m = h.at(k);
    for (std::size_t a = 0; a < 4; ++a) {
      for (std::size_t b = a + 1; b < 4; ++b) {
        cplx dot{};
        double na = 0.0, nb = 0.0;
        for (std::size_t t = 0; t < 4; ++t) {
          dot += std::conj(m(a, t)) * m(b, t);
          na += std::norm(m(a, t));
          nb += std::norm(m(b, t));
        }
        EXPECT_LT(std::abs(dot) / std::sqrt(na * nb), 1e-6)
            << "rows " << a << "," << b << " subcarrier " << k;
      }
    }
  }
}

TEST(WellConditioned, RowPowerTracksBestLink) {
  Rng rng(2);
  std::vector<std::vector<double>> gains{
      {from_db(20.0), from_db(10.0)},
      {from_db(8.0), from_db(14.0)},
  };
  const ChannelMatrixSet h = well_conditioned_channel_set(gains, rng);
  for (std::size_t c = 0; c < 2; ++c) {
    double acc = 0.0;
    for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
      acc += h.at(k).row_power(c);
    }
    acc /= static_cast<double>(h.n_subcarriers());
    const double best = c == 0 ? from_db(20.0) : from_db(14.0);
    EXPECT_NEAR(to_db(acc), to_db(best), 0.5) << c;
  }
}

TEST(WellConditioned, ConditioningIsMild) {
  // The whole point of the regime: even 8x8 sets stay well conditioned,
  // unlike i.i.d. draws.
  Rng rng(3);
  const std::vector<std::vector<double>> gains(
      8, std::vector<double>(8, 1.0));
  const ChannelMatrixSet h_wc = well_conditioned_channel_set(gains, rng);
  const ChannelMatrixSet h_iid = random_channel_set_with_gains(gains, rng);
  RunningStats cond_wc, cond_iid;
  for (std::size_t k = 0; k < h_wc.n_subcarriers(); k += 5) {
    cond_wc.add(to_db(condition_number(h_wc.at(k))));
    cond_iid.add(to_db(condition_number(h_iid.at(k))));
  }
  EXPECT_LT(cond_wc.mean(), 2.0);  // near-unitary up to row scaling
  EXPECT_GT(cond_iid.mean(), cond_wc.mean() + 6.0);
}

TEST(WellConditioned, ZfScaleNearBestGain) {
  // With orthogonal rows the per-antenna normalization costs only the
  // harmonic spread, so the delivered per-stream SNR sits within a few dB
  // of the best link — the property behind the paper's ~N gains.
  Rng rng(4);
  const double best = from_db(18.0);
  const std::vector<std::vector<double>> gains(
      6, std::vector<double>(6, best));
  const ChannelMatrixSet h = well_conditioned_channel_set(gains, rng);
  const auto p = ZfPrecoder::build(h);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(to_db(p->predicted_snr(1.0)), 18.0, 2.5);
}

TEST(WellConditioned, InputValidation) {
  Rng rng(5);
  EXPECT_THROW((void)well_conditioned_channel_set({}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)well_conditioned_channel_set(
                   {{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}}, rng),
               std::invalid_argument);  // more clients than antennas
}

TEST(Calibration, SetsPredictedEffectiveSnr) {
  SystemParams p;
  p.n_aps = 2;
  p.n_clients = 2;
  p.seed = 21;
  const double g = JmbSystem::gain_for_snr_db(26.0, 1.0);
  JmbSystem sys(p, {{g, g}, {g, g}});
  ASSERT_TRUE(sys.run_measurement());
  const double before = sys.predicted_beamforming_snr_db();
  const double delta = sys.calibrate_to_effective_snr(15.0);
  EXPECT_NEAR(delta, before - 15.0, 1e-9);
  // The prediction now reports the target (same H, adjusted noise).
  EXPECT_NEAR(sys.predicted_beamforming_snr_db(), 15.0, 1e-6);
}

TEST(Ablation, DisablingSlaveCorrectionBreaksNulls) {
  // The paper's core claim in one assertion: with phase sync the nulls
  // hold; without it (drifted oscillators, no correction) the nulled
  // client sees the other stream nearly full strength.
  rvec with_sync, without_sync;
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    for (bool disable : {false, true}) {
      SystemParams p;
      p.n_aps = 2;
      p.n_clients = 2;
      p.seed = seed;
      p.disable_slave_correction = disable;
      const double g = JmbSystem::gain_for_snr_db(25.0, 1.0);
      JmbSystem sys(p, {{g, g}, {g, g}});
      ASSERT_TRUE(sys.run_measurement());
      sys.calibrate_to_effective_snr(20.0);
      sys.advance_time(2e-3);
      ASSERT_TRUE(sys.run_measurement());
      // Let the oscillators drift well away from the snapshot.
      sys.advance_time(20e-3);
      (disable ? without_sync : with_sync).push_back(sys.measure_inr(0));
    }
  }
  // Without correction, the oscillator offsets (kHz-scale) rotate the
  // slave's signal arbitrarily: interference ~ the full stream power.
  EXPECT_GT(median(without_sync), median(with_sync) + 6.0);
  EXPECT_GT(median(without_sync), 10.0);
}

TEST(Oscillator, MemoConsistencyUnderMixedQueries) {
  // The last-query memo must never change values: interleave forward and
  // backward queries and compare against a fresh instance.
  chan::OscillatorParams p{.ppm = 0.0,
                           .carrier_hz = 2.4e9,
                           .sample_rate_hz = 10e6,
                           .phase_noise_linewidth_hz = 1.0,
                           .seed = 99};
  chan::Oscillator a(p), b(p);
  const std::uint64_t q[] = {50000, 10000, 50001, 49999, 120000, 10000, 120001};
  for (std::uint64_t n : q) {
    EXPECT_EQ(a.phase_noise_at(n), b.phase_noise_at(n)) << n;
  }
  // And against an instance that only ever saw the final query.
  chan::Oscillator c(p);
  EXPECT_EQ(c.phase_noise_at(120001), a.phase_noise_at(120001));
}

TEST(LinkModel, PrecoderCachedOverloadMatches) {
  Rng rng(6);
  const ChannelMatrixSet h = random_channel_set(3, 3, rng);
  const auto p = ZfPrecoder::build(h);
  ASSERT_TRUE(p.has_value());
  const rvec phase{0.0, 0.05, -0.03};
  const SinrReport a = beamforming_sinr(h, phase, 0.5);
  const SinrReport b = beamforming_sinr(h, *p, phase, 0.5);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(a.sinr[c], b.sinr[c], a.sinr[c] * 1e-12);
  }
}

}  // namespace
}  // namespace jmb::core
