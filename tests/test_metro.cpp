// Tests for the metro sharding layer: churn determinism and hand-off
// reconstruction, two-level (trial x cell) scheduling, and the
// shard-schedule independence of the merged scenario results.
#include <gtest/gtest.h>

#include <cstdlib>

#include "engine/trial_runner.h"
#include "metro/cell_shard.h"
#include "metro/churn.h"
#include "metro/metro_scenario.h"
#include "obs/export.h"

namespace jmb::metro {
namespace {

ChurnParams churny() {
  ChurnParams p;
  p.users_per_cell = 4;
  p.arrival_rate_hz = 6.0;
  p.departure_rate_hz = 6.0;
  p.handoff_fraction = 0.5;
  p.duration_s = 1.0;
  return p;
}

TEST(Churn, TimelineIsAPureFunctionOfItsArguments) {
  const chan::CellGridParams grid{.cols = 2, .pitch_m = 30.0};
  const ChurnParams p = churny();
  const auto a = churn_timeline(42, 1, 4, grid, p);
  const auto b = churn_timeline(42, 1, 4, grid, p);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_s, b[i].t_s);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].peer_cell, b[i].peer_cell);
  }
  // A different cell index decorrelates the stream.
  const auto c = churn_timeline(42, 2, 4, grid, p);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].t_s != c[i].t_s;
  }
  EXPECT_TRUE(differs);
}

TEST(Churn, DisabledChurnDrawsNothingAndKeepsEveryoneAttached) {
  const chan::CellGridParams grid{.cols = 2, .pitch_m = 30.0};
  ChurnParams p = churny();
  p.arrival_rate_hz = 0.0;
  p.departure_rate_hz = 0.0;
  EXPECT_TRUE(churn_timeline(1, 0, 4, grid, p).empty());
  const CellChurn churn(1, 0, 4, grid, p);
  for (double t : {0.0, 0.3, 0.99}) {
    EXPECT_EQ(churn.active_count(t), p.users_per_cell);
  }
  EXPECT_TRUE(churn.remeasure_times().empty());
  EXPECT_EQ(churn.stats().departures, 0u);
}

TEST(Churn, ActivityFollowsTheTimeline) {
  const chan::CellGridParams grid{.cols = 2, .pitch_m = 30.0};
  const ChurnParams p = churny();
  const auto events = churn_timeline(7, 0, 1, grid, p);
  ASSERT_FALSE(events.empty());
  // Single cell: no hand-off targets, so the cell's own timeline is the
  // whole story and activity must flip exactly at each event.
  const CellChurn churn(7, 0, 1, grid, p);
  for (const ChurnEvent& ev : events) {
    const bool attach = ev.type == ChurnEventType::kArrival;
    EXPECT_EQ(churn.active(ev.user, ev.t_s + 1e-9), attach)
        << "event at t=" << ev.t_s << " user " << ev.user;
  }
  EXPECT_EQ(churn.stats().handoffs_out, 0u);
  EXPECT_EQ(churn.stats().handoffs_in, 0u);
}

TEST(Churn, HandoffsReconcileAcrossTheGrid) {
  // Every hand-off emitted by some cell toward cell c must show up at c as
  // either an accepted hand-off-in or a blocked one — reconstructed purely
  // from regenerated timelines, no shared state.
  const chan::CellGridParams grid{.cols = 2, .pitch_m = 30.0};
  const ChurnParams p = churny();
  const std::size_t n_cells = 4;
  std::size_t outs = 0, ins = 0, blocked = 0;
  for (std::size_t c = 0; c < n_cells; ++c) {
    const CellChurn churn(99, c, n_cells, grid, p);
    outs += churn.stats().handoffs_out;
    ins += churn.stats().handoffs_in;
    blocked += churn.stats().blocked_handoffs;
    EXPECT_EQ(churn.remeasure_times().size(), churn.stats().handoffs_in);
  }
  EXPECT_GT(outs, 0u);
  EXPECT_EQ(outs, ins + blocked);
}

TEST(TrialRunnerSharded, FlatOrderAndSeedFormula) {
  engine::TrialRunner runner({.base_seed = 1000, .n_threads = 1});
  struct Item {
    std::size_t index, cell, n_cells;
    std::uint64_t seed;
  };
  const auto items =
      runner.run_sharded(2, 3, [](engine::TrialContext& ctx) {
        return Item{ctx.index, ctx.cell, ctx.n_cells, ctx.seed};
      });
  ASSERT_EQ(items.size(), 6u);
  EXPECT_EQ(runner.trials_run(), 2u);
  EXPECT_EQ(runner.cells_run(), 6u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].index, i / 3);
    EXPECT_EQ(items[i].cell, i % 3);
    EXPECT_EQ(items[i].n_cells, 3u);
    EXPECT_EQ(items[i].seed, 1000u ^ (i / 3) ^
                                 (static_cast<std::uint64_t>(i % 3) << 32));
  }
  // Cell 0 reproduces the classic per-trial seed bit-for-bit.
  EXPECT_EQ(items[0].seed, 1000u ^ 0u);
  EXPECT_EQ(items[3].seed, 1000u ^ 1u);
}

TEST(TrialRunnerSharded, FirstTrialOffsetsIndexAndSeed) {
  engine::TrialRunner runner({.base_seed = 5, .n_threads = 1});
  const auto seeds = runner.run_sharded(
      2, 2, [](engine::TrialContext& ctx) { return ctx.seed; },
      /*first_trial=*/10);
  ASSERT_EQ(seeds.size(), 4u);
  EXPECT_EQ(seeds[0], 5u ^ 10u);
  EXPECT_EQ(seeds[2], 5u ^ 11u);
}

TEST(TrialRunnerSharded, MergedMetricsAreScheduleIndependent) {
  const auto run_with = [](std::size_t n_threads) {
    engine::TrialRunner runner({.base_seed = 3, .n_threads = n_threads});
    (void)runner.run_sharded(3, 4, [](engine::TrialContext& ctx) {
      // Distinct per-cell streams feeding shared metric names: the merge
      // order, not the values, is what could differ across schedules.
      ctx.sink.count("t/items");
      ctx.sink.set_gauge("t/last_seed", static_cast<double>(ctx.seed));
      static constexpr double kCellBounds[] = {0.5, 1.5, 2.5, 3.5};
      ctx.sink.observe("t/cell", kCellBounds, static_cast<double>(ctx.cell));
      return 0;
    });
    return obs::registry_csv(runner.registry());
  };
  const std::string t1 = run_with(1);
  EXPECT_EQ(t1, run_with(4));
  EXPECT_EQ(t1, run_with(3));
}

TEST(MetroScenario, ResultIsIdenticalForAnyThreadCount) {
  MetroParams p;
  p.n_cells = 4;
  p.users_per_cell = 3;
  p.aps_per_cell = 3;
  p.n_trials = 2;
  p.duration_s = 0.05;
  p.churn_rate_hz = 8.0;
  p.normalize();

  const auto run_with = [&](std::size_t n_threads) {
    engine::TrialRunner runner({.base_seed = 77, .n_threads = n_threads});
    const MetroResult res = run_metro(runner, p);
    return std::make_pair(res, obs::registry_csv(runner.registry()));
  };
  const auto [r1, csv1] = run_with(1);
  const auto [r4, csv4] = run_with(4);
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(r1.aggregate_goodput_mbps, r4.aggregate_goodput_mbps);
  EXPECT_EQ(r1.p99_frame_latency_s, r4.p99_frame_latency_s);
  EXPECT_EQ(r1.handoffs_in, r4.handoffs_in);
  EXPECT_EQ(r1.blocked_handoffs, r4.blocked_handoffs);
  ASSERT_EQ(r1.per_cell.size(), r4.per_cell.size());
  for (std::size_t c = 0; c < r1.per_cell.size(); ++c) {
    EXPECT_EQ(r1.per_cell[c].goodput_mbps, r4.per_cell[c].goodput_mbps);
    EXPECT_EQ(r1.per_cell[c].handoffs_in, r4.per_cell[c].handoffs_in);
  }
  EXPECT_GT(r1.aggregate_goodput_mbps, 0.0);
  EXPECT_GT(r1.latency_samples, 0u);
}

TEST(MetroScenario, SingleCellShardMatchesTrialLevelSeeding) {
  // n_cells = 1 must ride the degenerate paths end to end: classic seed,
  // zero interference, no hand-off targets.
  MetroParams p;
  p.n_cells = 1;
  p.users_per_cell = 3;
  p.aps_per_cell = 3;
  p.n_trials = 2;
  p.duration_s = 0.05;
  p.churn_rate_hz = 0.0;
  p.normalize();
  engine::TrialRunner sharded({.base_seed = 21, .n_threads = 1});
  const MetroResult via_metro = run_metro(sharded, p);

  CellShardParams shard;
  shard.n_aps = p.aps_per_cell;
  shard.n_clients = p.users_per_cell;
  shard.duration_s = p.duration_s;
  shard.grid = p.grid;
  engine::TrialRunner plain({.base_seed = 21, .n_threads = 1});
  const auto reports = plain.run(2, [&shard](engine::TrialContext& ctx) {
    return run_cell_shard(ctx, shard);
  });
  double mean = 0.0;
  for (const CellShardReport& r : reports) {
    mean += r.mac.total_goodput_mbps;
    EXPECT_EQ(r.mean_interference, 0.0);
    EXPECT_EQ(r.churn.handoffs_out, 0u);
  }
  mean /= static_cast<double>(reports.size());
  EXPECT_EQ(via_metro.aggregate_goodput_mbps, mean);
  EXPECT_EQ(obs::registry_csv(sharded.registry()),
            obs::registry_csv(plain.registry()));
}

TEST(MetroScenario, ParamsFromEnvAppliesAndNormalizes) {
  ASSERT_EQ(setenv("JMB_CELLS", "6", 1), 0);
  ASSERT_EQ(setenv("JMB_USERS_PER_CELL", "5", 1), 0);
  ASSERT_EQ(setenv("JMB_CHURN_RATE", "2.5", 1), 0);
  MetroParams base;
  base.n_cells = 2;
  const MetroParams p = params_from_env(base);
  EXPECT_EQ(p.n_cells, 6u);
  EXPECT_EQ(p.users_per_cell, 5u);
  EXPECT_DOUBLE_EQ(p.churn_rate_hz, 2.5);
  EXPECT_EQ(p.grid.cols, 3u);  // ceil(sqrt(6))
  // Malformed values fall back (warn-once flags are process-static, so
  // only the value contract is checked here; env_u64/env_f64 warn-once
  // behaviour is covered in test_engine).
  ASSERT_EQ(setenv("JMB_CELLS", "6x", 1), 0);
  ASSERT_EQ(setenv("JMB_CHURN_RATE", "-1", 1), 0);
  const MetroParams q = params_from_env(base);
  EXPECT_EQ(q.n_cells, 2u);
  EXPECT_DOUBLE_EQ(q.churn_rate_hz, base.churn_rate_hz);
  ASSERT_EQ(unsetenv("JMB_CELLS"), 0);
  ASSERT_EQ(unsetenv("JMB_USERS_PER_CELL"), 0);
  ASSERT_EQ(unsetenv("JMB_CHURN_RATE"), 0);
}

}  // namespace
}  // namespace jmb::metro
