// Unit tests for the JMB core building blocks: types, precoders, the link
// model, phase-sync bookkeeping, and the naive-CFO strawman.
#include <gtest/gtest.h>

#include <cmath>

#include "core/link_model.h"
#include "core/naive_baseline.h"
#include "core/phase_sync.h"
#include "core/precoder.h"
#include "core/types.h"
#include "dsp/stats.h"
#include "phy/workspace.h"

namespace jmb::core {
namespace {

TEST(Types, UsedSubcarrierLayout) {
  const auto& used = used_subcarriers();
  ASSERT_EQ(used.size(), 52u);
  EXPECT_EQ(used.front(), -26);
  EXPECT_EQ(used.back(), 26);
  EXPECT_EQ(used_index(-26), 0u);
  EXPECT_EQ(used_index(-1), 25u);
  EXPECT_EQ(used_index(1), 26u);
  EXPECT_EQ(used_index(26), 51u);
  EXPECT_THROW((void)used_index(0), std::invalid_argument);
  EXPECT_THROW((void)used_index(27), std::invalid_argument);
  // used_index inverts the ordering of used_subcarriers().
  for (std::size_t i = 0; i < used.size(); ++i) {
    EXPECT_EQ(used_index(used[i]), i);
  }
}

TEST(Types, ChannelMatrixSetShape) {
  ChannelMatrixSet h(3, 5);
  EXPECT_EQ(h.n_clients(), 3u);
  EXPECT_EQ(h.n_tx(), 5u);
  EXPECT_EQ(h.n_subcarriers(), 52u);
  h.at(0)(1, 2) = cplx{2.0, 0.0};
  EXPECT_NEAR(h.mean_link_power(1, 2), 4.0 / 52.0, 1e-12);
}

TEST(ZfPrecoderTest, DiagonalizesRandomChannels) {
  Rng rng(1);
  for (std::size_t n : {2u, 4u, 8u}) {
    const ChannelMatrixSet h = random_channel_set(n, n, rng);
    const auto p = ZfPrecoder::build(h);
    ASSERT_TRUE(p.has_value());
    EXPECT_GT(p->scale(), 0.0);
    for (std::size_t k = 0; k < h.n_subcarriers(); k += 13) {
      const CMatrix g = h.at(k) * p->weights(k);
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t j = 0; j < n; ++j) {
          if (c == j) {
            EXPECT_NEAR(std::abs(g(c, j)), p->scale(), 1e-9);
          } else {
            EXPECT_NEAR(std::abs(g(c, j)), 0.0, 1e-9);
          }
        }
      }
    }
  }
}

TEST(ZfPrecoderTest, RespectsPerAntennaPower) {
  Rng rng(2);
  const double budget = 0.7;
  const ChannelMatrixSet h = random_channel_set(3, 6, rng);
  const auto p = ZfPrecoder::build(h, budget);
  ASSERT_TRUE(p.has_value());
  // No antenna's mean per-subcarrier power exceeds the budget; the
  // hungriest antenna uses it fully.
  double max_power = 0.0;
  for (std::size_t a = 0; a < 6; ++a) {
    double mean_row = 0.0;
    for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
      mean_row += p->weights(k).row_power(a);
    }
    mean_row /= static_cast<double>(h.n_subcarriers());
    EXPECT_LE(mean_row, budget * (1.0 + 1e-9));
    max_power = std::max(max_power, mean_row);
  }
  EXPECT_NEAR(max_power, budget, 1e-9);
}

TEST(ZfPrecoderTest, MoreAntennasThanClientsUsesPinv) {
  Rng rng(3);
  const ChannelMatrixSet h = random_channel_set(2, 5, rng);
  const auto p = ZfPrecoder::build(h);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->n_tx(), 5u);
  EXPECT_EQ(p->n_streams(), 2u);
  const CMatrix g = h.at(7) * p->weights(7);
  EXPECT_NEAR(std::abs(g(0, 1)), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(g(1, 0)), 0.0, 1e-9);
}

TEST(ZfPrecoderTest, RejectsUnderdetermined) {
  Rng rng(4);
  const ChannelMatrixSet h = random_channel_set(4, 2, rng);
  EXPECT_THROW((void)ZfPrecoder::build(h), std::invalid_argument);
}

TEST(ZfPrecoderTest, TransmitVectorMatchesWeights) {
  Rng rng(5);
  const ChannelMatrixSet h = random_channel_set(2, 3, rng);
  const auto p = ZfPrecoder::build(h);
  ASSERT_TRUE(p.has_value());
  const cvec x{cplx{1.0, 0.0}, cplx{0.0, -1.0}};
  const cvec tx = p->transmit_vector(11, x);
  const cvec expect = p->weights(11) * x;
  for (std::size_t i = 0; i < tx.size(); ++i) {
    EXPECT_NEAR(std::abs(tx[i] - expect[i]), 0.0, 1e-12);
  }
}

TEST(ZfPrecoderTest, WorkspaceBuildIsBitwiseIdentical) {
  Rng rng(6);
  const ChannelMatrixSet h = random_channel_set(3, 5, rng);
  const auto legacy = ZfPrecoder::build(h);
  Workspace ws;
  const auto reusing = ZfPrecoder::build(h, ws);
  ASSERT_TRUE(legacy.has_value());
  ASSERT_TRUE(reusing.has_value());
  EXPECT_EQ(legacy->scale(), reusing->scale());
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    const CMatrix& a = legacy->weights(k);
    const CMatrix& b = reusing->weights(k);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t c = 0; c < a.cols(); ++c) {
        EXPECT_EQ(a(r, c).real(), b(r, c).real());
        EXPECT_EQ(a(r, c).imag(), b(r, c).imag());
      }
    }
  }
  // transmit_vector_into matches the allocating wrapper bitwise.
  const cvec x{cplx{0.3, 0.1}, cplx{-0.2, 0.9}, cplx{0.5, -0.4}};
  cvec into(reusing->n_tx());
  reusing->transmit_vector_into(19, x, into);
  const cvec alloc = reusing->transmit_vector(19, x);
  for (std::size_t i = 0; i < into.size(); ++i) {
    EXPECT_EQ(alloc[i].real(), into[i].real());
    EXPECT_EQ(alloc[i].imag(), into[i].imag());
  }
}

TEST(MrtPrecoderTest, AlignsPhasesAtClient) {
  Rng rng(6);
  std::vector<cvec> h(52);
  for (auto& row : h) row = rng.cgaussian_vec(4);
  const MrtPrecoder mrt = MrtPrecoder::build(h);
  for (std::size_t k = 0; k < 52; k += 7) {
    const cplx g = mrt.combined_gain(k, h[k]);
    // Coherent combining: gain equals the sum of magnitudes, phase 0.
    double expect = 0.0;
    for (const cplx& v : h[k]) expect += std::abs(v);
    EXPECT_NEAR(g.real(), expect, 1e-9);
    EXPECT_NEAR(g.imag(), 0.0, 1e-9);
  }
}

TEST(MrtPrecoderTest, N2ScalingOfSnr) {
  // With equal-magnitude channels, MRT power gain scales as N^2.
  std::vector<cvec> h2(52, cvec(2, cplx{1.0, 0.0}));
  std::vector<cvec> h8(52, cvec(8, cplx{1.0, 0.0}));
  const auto g2 = MrtPrecoder::build(h2).combined_gain(0, h2[0]);
  const auto g8 = MrtPrecoder::build(h8).combined_gain(0, h8[0]);
  EXPECT_NEAR(std::norm(g8) / std::norm(g2), 16.0, 1e-9);
}

TEST(LinkModel, PerfectAlignmentHasNoInterference) {
  Rng rng(7);
  const ChannelMatrixSet h = random_channel_set(4, 4, rng);
  const SinrReport rep = beamforming_sinr(h, rvec(4, 0.0), 1e-3);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(rep.sinr[c], rep.snr_no_interference[c],
                rep.snr_no_interference[c] * 1e-6);
  }
}

TEST(LinkModel, MisalignmentCostGrowsWithPhaseError) {
  Rng rng(8);
  double prev = 0.0;
  for (double mis : {0.05, 0.15, 0.3, 0.5}) {
    const double red = snr_reduction_db(2, 2, mis, 20.0, 60, rng);
    EXPECT_GT(red, prev);
    prev = red;
  }
  // The paper's headline number: ~8 dB at 0.35 rad, 20 dB SNR (Fig. 6).
  const double at_035 = snr_reduction_db(2, 2, 0.35, 20.0, 200, rng);
  EXPECT_GT(at_035, 5.0);
  EXPECT_LT(at_035, 11.0);
}

TEST(LinkModel, HigherSnrSuffersMoreFromMisalignment) {
  Rng rng(9);
  const double red10 = snr_reduction_db(2, 2, 0.35, 10.0, 150, rng);
  const double red20 = snr_reduction_db(2, 2, 0.35, 20.0, 150, rng);
  EXPECT_GT(red20, red10 + 1.0);  // Fig. 6's key observation
}

TEST(LinkModel, InrGrowsWithApCount) {
  Rng rng(10);
  const double sigma = 0.02;
  rvec inr;
  for (std::size_t n : {2u, 6u, 10u}) {
    // Conference-room (LOS-ish, well conditioned) channels, as in Fig. 8.
    const ChannelMatrixSet h = random_channel_set_with_gains(
        std::vector<std::vector<double>>(n, std::vector<double>(n, 1.0)), rng,
        52, /*rice_k=*/2.0);
    const auto p = ZfPrecoder::build(h);
    ASSERT_TRUE(p.has_value());
    const double noise = p->scale() * p->scale() / from_db(20.0);
    inr.push_back(expected_inr_db(h, sigma, noise, 40, rng));
  }
  EXPECT_LT(inr[0], inr[2]);
  // Shape check (Fig. 8): stays modest even at 10 APs.
  EXPECT_LT(inr[2], 4.0);
  EXPECT_GT(inr[0], -0.5);
}

TEST(LinkModel, BaselinePicksBestAp) {
  Rng rng(11);
  std::vector<std::vector<double>> gains{{0.1, 9.0, 0.5}};
  const ChannelMatrixSet h = random_channel_set_with_gains(gains, rng);
  const auto snrs = baseline_subcarrier_snrs(h, 1.0);
  ASSERT_EQ(snrs.size(), 1u);
  // Mean SNR should reflect the strong AP's gain (Rayleigh draw around 9).
  EXPECT_GT(mean(snrs[0]), 1.0);
  double direct = 0.0;
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    direct += std::norm(h.at(k)(0, 1));
  }
  direct /= static_cast<double>(h.n_subcarriers());
  EXPECT_NEAR(mean(snrs[0]), direct, 1e-9);
}

TEST(LinkModel, DiversitySnrScalesQuadratically) {
  Rng rng(12);
  std::vector<cvec> h2(52, cvec(2, cplx{1.0, 0.0}));
  std::vector<cvec> h10(52, cvec(10, cplx{1.0, 0.0}));
  const rvec s2 = diversity_subcarrier_snrs(h2, 0.0, 1.0, rng);
  const rvec s10 = diversity_subcarrier_snrs(h10, 0.0, 1.0, rng);
  EXPECT_NEAR(s10[0] / s2[0], 25.0, 1e-9);
}

TEST(PhaseSync, RequiresReference) {
  SlavePhaseSync sync;
  EXPECT_FALSE(sync.has_reference());
  phy::ChannelEstimate est;
  EXPECT_THROW((void)sync.on_sync_header(est, 0.0, 1.0), std::logic_error);
}

TEST(PhaseSync, MeasuresRotationDirectly) {
  SlavePhaseSync sync;
  phy::ChannelEstimate ref;
  Rng rng(13);
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    ref.set(k, rng.cgaussian() + cplx{1.0, 0.0});
  }
  sync.set_reference(ref, 0.0);
  EXPECT_TRUE(sync.has_reference());

  phy::ChannelEstimate now = ref;
  const double phi = 1.234;
  now.rotate(phi);
  const SlaveCorrection corr = sync.on_sync_header(now, 100.0, 0.01);
  EXPECT_NEAR(std::arg(corr.phasor_at_header), phi, 1e-9);
  EXPECT_NEAR(std::abs(corr.phasor_at_header), 1.0, 1e-12);
  // Within-packet extrapolation uses the averaged CFO.
  EXPECT_NEAR(std::arg(corr.at(1e-4) * std::conj(corr.phasor_at_header)),
              kTwoPi * corr.cfo_hz * 1e-4, 1e-9);
}

TEST(PhaseSync, CfoAverageConvergesAndRefines) {
  // Feed sync headers generated by a true CFO of 1234.5 Hz with noisy
  // per-header estimates; the long-term estimate must converge well below
  // the single-shot noise.
  const double truth = 1234.5;
  SlavePhaseSync sync({.sample_rate_hz = 10e6, .cfo_alpha = 0.05});
  Rng rng(14);
  phy::ChannelEstimate ref;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    ref.set(k, rng.cgaussian() + cplx{2.0, 0.0});
  }
  sync.set_reference(ref, 0.0);
  double t = 0.0;
  for (int pkt = 0; pkt < 400; ++pkt) {
    t += 2e-3 + rng.uniform(0.0, 1e-3);
    phy::ChannelEstimate now = ref;
    now.rotate(wrap_phase(kTwoPi * truth * t) + rng.gaussian(0.01));
    const double noisy_est = truth + rng.gaussian(150.0);
    (void)sync.on_sync_header(now, noisy_est, t);
  }
  EXPECT_NEAR(sync.cfo_estimate_hz(), truth, 5.0);
}

TEST(NaiveBaseline, ErrorGrowsWithTime) {
  Rng rng(15);
  const NaiveSyncParams p{.cfo_estimation_error_hz = 10.0,
                          .phase_noise_linewidth_hz = 0.0};
  RunningStats early, late;
  for (int i = 0; i < 3000; ++i) {
    early.add(std::abs(naive_phase_error(1e-3, p, rng)));
    late.add(std::abs(naive_phase_error(5.5e-3, p, rng)));
  }
  // The paper's example: 10 Hz error -> ~0.35 rad within 5.5 ms.
  // E|N(0, s)| = s sqrt(2/pi); s = 2 pi * 10 * 5.5e-3 = 0.346.
  EXPECT_NEAR(late.mean(), 0.346 * std::sqrt(2.0 / kPi), 0.03);
  EXPECT_GT(late.mean(), 4.0 * early.mean());
}

TEST(NaiveBaseline, JmbErrorBoundedByPacket) {
  Rng rng(16);
  RunningStats naive_20ms, jmb_20ms;
  const NaiveSyncParams p{.cfo_estimation_error_hz = 100.0,
                          .phase_noise_linewidth_hz = 0.1};
  for (int i = 0; i < 3000; ++i) {
    naive_20ms.add(std::abs(naive_phase_error(20e-3, p, rng)));
    // JMB re-synced at the packet start 1 ms ago, residual CFO ~ 5 Hz.
    jmb_20ms.add(std::abs(jmb_phase_error(1e-3, 5.0, 0.017, 0.1, rng)));
  }
  // 100 Hz * 20 ms -> phase wraps ~ uniformly: mean |wrapped| ~ pi/2.
  EXPECT_GT(naive_20ms.mean(), 1.0);
  EXPECT_LT(jmb_20ms.mean(), 0.05);
}

}  // namespace
}  // namespace jmb::core
