// Tests for BER models, effective SNR, rate selection, airtime and PER.
#include <gtest/gtest.h>

#include <cmath>

#include "rate/airtime.h"
#include "rate/ber.h"
#include "rate/effective_snr.h"
#include "rate/per.h"

namespace jmb::rate {
namespace {

using phy::Modulation;

TEST(Ber, QFunctionKnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.158655, 1e-5);
  EXPECT_NEAR(q_function(3.0), 0.0013499, 1e-6);
  EXPECT_NEAR(q_function(-1.0), 1.0 - 0.158655, 1e-5);
}

TEST(Ber, BpskKnownValue) {
  // BPSK at 9.6 dB (Eb/N0) ~ 1e-5.
  EXPECT_NEAR(std::log10(ber(Modulation::kBpsk, from_db(9.6))), -5.0, 0.2);
  EXPECT_THROW((void)ber(Modulation::kBpsk, -1.0), std::invalid_argument);
}

TEST(Ber, MonotoneDecreasingInSnr) {
  for (Modulation m : {Modulation::kBpsk, Modulation::kQpsk,
                       Modulation::kQam16, Modulation::kQam64}) {
    double prev = 1.0;
    for (double db = -5.0; db <= 30.0; db += 1.0) {
      const double b = ber(m, from_db(db));
      EXPECT_LE(b, prev + 1e-15);
      prev = b;
    }
  }
}

TEST(Ber, HigherOrderNeedsMoreSnr) {
  const double snr = from_db(12.0);
  EXPECT_LT(ber(Modulation::kBpsk, snr), ber(Modulation::kQpsk, snr));
  EXPECT_LT(ber(Modulation::kQpsk, snr), ber(Modulation::kQam16, snr));
  EXPECT_LT(ber(Modulation::kQam16, snr), ber(Modulation::kQam64, snr));
}

TEST(Ber, InverseRoundTrip) {
  for (Modulation m : {Modulation::kBpsk, Modulation::kQpsk,
                       Modulation::kQam16, Modulation::kQam64}) {
    for (double target : {1e-2, 1e-3, 1e-5}) {
      const double snr = snr_for_ber(m, target);
      EXPECT_NEAR(std::log10(ber(m, snr)), std::log10(target), 0.02);
    }
  }
  EXPECT_THROW((void)snr_for_ber(Modulation::kBpsk, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)snr_for_ber(Modulation::kBpsk, 0.6),
               std::invalid_argument);
}

TEST(EffSnr, FlatChannelIsIdentity) {
  const rvec flat(48, from_db(15.0));
  for (Modulation m : {Modulation::kBpsk, Modulation::kQpsk,
                       Modulation::kQam16, Modulation::kQam64}) {
    EXPECT_NEAR(effective_snr_db(m, flat), 15.0, 0.05) << phy::to_string(m);
  }
}

TEST(EffSnr, SelectiveChannelBelowMean) {
  // Frequency selectivity always costs: effective SNR <= mean SNR, and the
  // penalty is worse for dense constellations.
  rvec snrs(48);
  for (std::size_t i = 0; i < 48; ++i) {
    snrs[i] = from_db(i % 2 == 0 ? 20.0 : 10.0);  // mean ~ 17.4 dB
  }
  const double mean_db = to_db((from_db(20.0) + from_db(10.0)) / 2.0);
  const double eff_bpsk = effective_snr_db(Modulation::kBpsk, snrs);
  const double eff_q64 = effective_snr_db(Modulation::kQam64, snrs);
  EXPECT_LT(eff_bpsk, mean_db);
  EXPECT_LT(eff_q64, mean_db);
  // For BPSK the deep subcarriers dominate errors harder than for 64-QAM
  // relative to its own scale, but both must stay above the min.
  EXPECT_GT(eff_bpsk, 10.0);
  EXPECT_GT(eff_q64, 10.0);
  EXPECT_THROW((void)effective_snr(Modulation::kBpsk, {}),
               std::invalid_argument);
}

TEST(EffSnr, ThresholdsStrictlyIncreasing) {
  const rvec& thr = rate_thresholds_db();
  ASSERT_EQ(thr.size(), phy::rate_set().size());
  for (std::size_t i = 1; i < thr.size(); ++i) EXPECT_GT(thr[i], thr[i - 1]);
}

TEST(EffSnr, RateSelectionLadder) {
  // Sweep SNR: the selected rate must be monotone nondecreasing, reach the
  // top rate at high SNR, and be empty below the base threshold.
  EXPECT_FALSE(select_rate_flat(0.0).has_value());
  std::size_t prev = 0;
  for (double db = 4.0; db <= 30.0; db += 0.5) {
    const auto r = select_rate_flat(db);
    ASSERT_TRUE(r.has_value()) << db;
    EXPECT_GE(*r, prev);
    prev = *r;
  }
  EXPECT_EQ(prev, phy::rate_set().size() - 1);
}

TEST(EffSnr, SelectionMatchesThresholdEdges) {
  const rvec& thr = rate_thresholds_db();
  for (std::size_t i = 0; i < thr.size(); ++i) {
    const auto just_above = select_rate_flat(thr[i] + 0.1);
    ASSERT_TRUE(just_above.has_value());
    EXPECT_GE(*just_above, i);
    const auto just_below = select_rate_flat(thr[i] - 0.1);
    if (i == 0) {
      EXPECT_FALSE(just_below.has_value());
    } else {
      ASSERT_TRUE(just_below.has_value());
      EXPECT_LT(*just_below, i);
    }
  }
}

TEST(Airtime, FrameAirtimeScalesWithLengthAndRate) {
  const double fs = 10e6;
  const phy::Mcs slow{Modulation::kBpsk, phy::CodeRate::kHalf};
  const phy::Mcs fast{Modulation::kQam64, phy::CodeRate::kThreeQuarters};
  const double t_slow = frame_airtime_s(1500, slow, fs);
  const double t_fast = frame_airtime_s(1500, fast, fs);
  EXPECT_GT(t_slow, 8.0 * t_fast);  // 24 vs 216 bits/symbol
  EXPECT_GT(frame_airtime_s(3000, fast, fs), frame_airtime_s(1500, fast, fs));
  // Hand check: 1500B at BPSK 1/2 = ceil(12022/24) = 501 syms + SIGNAL.
  EXPECT_NEAR(t_slow, (320.0 + 80.0 * 502.0) / fs, 1e-12);
}

TEST(Airtime, JointFrameAddsHeaderAndTurnaround) {
  AirtimeParams p;
  const phy::Mcs mcs{Modulation::kQam16, phy::CodeRate::kHalf};
  const double plain = frame_airtime_s(1500, mcs, p.sample_rate_hz);
  const double joint = joint_frame_airtime_s(1500, mcs, p);
  EXPECT_NEAR(joint - plain, p.turnaround_s + 160.0 / p.sample_rate_hz, 1e-12);
}

TEST(Airtime, MeasurementScalesWithApsAndClients) {
  AirtimeParams p;
  const double m22 = measurement_airtime_s(2, 2, p);
  const double m10 = measurement_airtime_s(10, 10, p);
  EXPECT_GT(m10, m22);
  // Amortized over a 250 ms coherence time, even the 10x10 measurement
  // must stay a small fraction of the medium (the paper's overhead story).
  EXPECT_LT(m10 / 0.25, 0.10);
}

TEST(Per, WaterfallShape) {
  // Well above threshold: essentially error-free; below: lost.
  EXPECT_LT(frame_error_prob_flat(30.0, 0), 1e-6);
  EXPECT_GT(frame_error_prob_flat(1.0, 0), 0.5);
  // At threshold: ~10%.
  const double thr = rate_thresholds_db()[3];
  EXPECT_NEAR(frame_error_prob_flat(thr, 3), 0.1, 0.02);
  // Monotone in SNR.
  double prev = 1.0;
  for (double db = 0.0; db < 30.0; db += 0.5) {
    const double per = frame_error_prob_flat(db, 4);
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
  }
}

TEST(Per, LongerFramesFailMore) {
  EXPECT_GT(frame_error_prob_flat(15.0, 4, 3000),
            frame_error_prob_flat(15.0, 4, 500));
  EXPECT_THROW((void)frame_error_prob_flat(15.0, 99), std::invalid_argument);
}

}  // namespace
}  // namespace jmb::rate
