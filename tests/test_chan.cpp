// Tests for the channel substrate: oscillator model, fading, topology,
// and the sample-level Medium — including an end-to-end packet through the
// medium into the standard receiver.
#include <gtest/gtest.h>

#include <cmath>

#include "chan/fading.h"
#include "chan/medium.h"
#include "chan/oscillator.h"
#include "chan/topology.h"
#include "dsp/stats.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

namespace jmb::chan {
namespace {

TEST(Oscillator, CfoFromPpm) {
  Oscillator osc({.ppm = 2.0, .carrier_hz = 2.4e9, .sample_rate_hz = 10e6,
                  .phase_noise_linewidth_hz = 0.0, .seed = 1});
  EXPECT_NEAR(osc.cfo_hz(), 4800.0, 1e-9);
  EXPECT_NEAR(osc.clock_ratio(), 1.000002, 1e-12);
  EXPECT_NEAR(osc.sample_rate_hz(), 10e6 * 1.000002, 1e-3);
}

TEST(Oscillator, RotationWithoutNoiseIsPureCfo) {
  Oscillator osc({.ppm = 1.0, .carrier_hz = 2.4e9, .sample_rate_hz = 10e6,
                  .phase_noise_linewidth_hz = 0.0, .seed = 1});
  const double t = 1e-3;
  const cplx r = osc.rotation_at(t);
  EXPECT_NEAR(std::arg(r), wrap_phase(kTwoPi * 2400.0 * t), 1e-9);
}

TEST(Oscillator, PhaseNoiseIsDeterministic) {
  const OscillatorParams p{.ppm = 0.0, .carrier_hz = 2.4e9,
                           .sample_rate_hz = 10e6,
                           .phase_noise_linewidth_hz = 0.5, .seed = 42};
  Oscillator a(p), b(p);
  // Query in different orders; same values must come back.
  const double v1 = a.phase_noise_at(100000);
  const double v2 = a.phase_noise_at(50000);
  EXPECT_EQ(b.phase_noise_at(50000), v2);
  EXPECT_EQ(b.phase_noise_at(100000), v1);
}

TEST(Oscillator, PhaseNoiseVarianceGrowsLinearly) {
  // Wiener process: Var[theta(n)] = (2 pi B / fs) * n. Check the ensemble
  // across seeds at two horizons.
  const double fs = 10e6, B = 1.0;
  RunningStats s_short, s_long;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Oscillator osc({.ppm = 0.0, .carrier_hz = 2.4e9, .sample_rate_hz = fs,
                    .phase_noise_linewidth_hz = B, .seed = seed});
    s_short.add(osc.phase_noise_at(10000));
    s_long.add(osc.phase_noise_at(40000));
  }
  const double expect_short = kTwoPi * B / fs * 10000;
  const double expect_long = kTwoPi * B / fs * 40000;
  EXPECT_NEAR(s_short.variance(), expect_short, expect_short * 0.35);
  EXPECT_NEAR(s_long.variance(), expect_long, expect_long * 0.35);
}

TEST(Fading, MeanPowerMatchesGain) {
  RunningStats power;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    FadingChannel ch({.gain = 2.5, .n_taps = 4, .tap_decay = 0.5,
                      .rice_k = 0.0, .delay_s = 0.0, .coherence_time_s = 0.25,
                      .sample_rate_hz = 10e6, .seed = seed});
    double p = 0.0;
    for (const cplx& t : ch.taps()) p += std::norm(t);
    power.add(p);
  }
  EXPECT_NEAR(power.mean(), 2.5, 0.25);
}

TEST(Fading, ExponentialProfileDecays) {
  RunningStats t0, t1, t2;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    FadingChannel ch({.gain = 1.0, .n_taps = 3, .tap_decay = 0.4,
                      .rice_k = 0.0, .delay_s = 0.0, .coherence_time_s = 0.25,
                      .sample_rate_hz = 10e6, .seed = seed});
    t0.add(std::norm(ch.taps()[0]));
    t1.add(std::norm(ch.taps()[1]));
    t2.add(std::norm(ch.taps()[2]));
  }
  EXPECT_NEAR(t1.mean() / t0.mean(), 0.4, 0.1);
  EXPECT_NEAR(t2.mean() / t1.mean(), 0.4, 0.15);
}

TEST(Fading, CoherenceTimeDecorrelation) {
  // Jakes model: autocorrelation ~ J0(2 pi f_D dt) with f_D picked so the
  // 50% point lands at the configured coherence time. Short lags must be
  // essentially unchanged (quadratic rolloff) — the property that lets JMB
  // amortize one measurement over the coherence time.
  const double tc = 0.25;
  RunningStats corr_tc, corr_tiny, err_tiny;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    FadingChannel ch({.gain = 1.0, .n_taps = 1, .tap_decay = 0.5,
                      .rice_k = 0.0, .delay_s = 0.0, .coherence_time_s = tc,
                      .sample_rate_hz = 10e6, .seed = seed});
    const cplx h0 = ch.taps()[0];
    ch.evolve_to(3e-3);  // << Tc: essentially unchanged
    corr_tiny.add((std::conj(h0) * ch.taps()[0]).real() / std::norm(h0));
    err_tiny.add(std::norm(ch.taps()[0] - h0) / std::norm(h0));
    ch.evolve_to(3e-3 + tc);
    corr_tc.add((std::conj(h0) * ch.taps()[0]).real());
  }
  EXPECT_GT(corr_tiny.mean(), 0.999);
  // The 3 ms innovation must be far below -25 dB relative to the tap —
  // Gauss-Markov (linear rolloff) would fail this at ~ -16 dB.
  EXPECT_LT(to_db(err_tiny.mean()), -25.0);
  EXPECT_NEAR(corr_tc.mean(), 0.5, 0.15);
}

TEST(Fading, EvolveBackwardsThrows) {
  FadingChannel ch({.gain = 1.0, .n_taps = 1, .tap_decay = 0.5, .rice_k = 0.0,
                    .delay_s = 0.0, .coherence_time_s = 0.25,
                    .sample_rate_hz = 10e6, .seed = 1});
  ch.evolve_to(1.0);
  EXPECT_THROW(ch.evolve_to(0.5), std::invalid_argument);
}

TEST(Fading, RicianKConcentratesFirstTap) {
  RunningStats mag;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    FadingChannel ch({.gain = 1.0, .n_taps = 1, .tap_decay = 1.0,
                      .rice_k = 20.0, .delay_s = 0.0, .coherence_time_s = 0.25,
                      .sample_rate_hz = 10e6, .seed = seed});
    mag.add(std::abs(ch.taps()[0]));
  }
  // Strong LOS: magnitude tightly clustered near 1.
  EXPECT_NEAR(mag.mean(), 1.0, 0.05);
  EXPECT_LT(mag.stddev(), 0.2);
}

TEST(Fading, ApplyIsLinearConvolution) {
  FadingChannel ch({.gain = 1.0, .n_taps = 3, .tap_decay = 0.5, .rice_k = 0.0,
                    .delay_s = 0.0, .coherence_time_s = 0.25,
                    .sample_rate_hz = 10e6, .seed = 7});
  const cvec x{cplx{1, 0}, cplx{0, 1}};
  const cvec y = ch.apply(x);
  ASSERT_EQ(y.size(), 4u);
  const auto& h = ch.taps();
  EXPECT_NEAR(std::abs(y[0] - h[0] * x[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1] - (h[1] * x[0] + h[0] * x[1])), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[3] - h[2] * x[1]), 0.0, 1e-12);
}

TEST(Topology, PlacementRespectsRoom) {
  Rng rng(1);
  const RoomParams room;
  const Topology t = sample_topology(10, 10, room, rng);
  EXPECT_EQ(t.aps.size(), 10u);
  EXPECT_EQ(t.clients.size(), 10u);
  ASSERT_EQ(t.links.size(), 10u);
  for (const auto& row : t.links) EXPECT_EQ(row.size(), 10u);
  for (const Position& p : t.aps) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, room.width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, room.height_m);
    // On a ledge: within 0.5 m of some wall.
    const double wall = std::min(std::min(p.x, room.width_m - p.x),
                                 std::min(p.y, room.height_m - p.y));
    EXPECT_LE(wall, 0.5);
  }
}

TEST(Topology, CloserIsStrongerOnAverage) {
  Rng rng(2);
  const RoomParams room;
  RunningStats near_snr, far_snr;
  for (int trial = 0; trial < 60; ++trial) {
    const Topology t = sample_topology(4, 4, room, rng);
    for (std::size_t c = 0; c < t.clients.size(); ++c) {
      for (std::size_t a = 0; a < t.aps.size(); ++a) {
        (t.links[c][a].distance_m < 5.0 ? near_snr : far_snr)
            .add(t.links[c][a].snr_db);
      }
    }
  }
  EXPECT_GT(near_snr.mean(), far_snr.mean() + 3.0);
}

TEST(Topology, BandSamplerHitsBand) {
  Rng rng(3);
  const RoomParams room;
  for (const auto& [lo, hi] :
       {std::pair{6.0, 12.0}, {12.0, 18.0}, {18.0, 30.0}}) {
    const Topology t = sample_topology_in_band(6, 6, room, rng, lo, hi);
    for (std::size_t c = 0; c < t.clients.size(); ++c) {
      double best = -1e18;
      for (const Link& l : t.links[c]) best = std::max(best, l.snr_db);
      EXPECT_GE(best, lo - 1e-9);
      EXPECT_LE(best, hi + 1e-9);
    }
  }
}

TEST(Topology, PropagationDelayScale) {
  // 15 m across a conference room: 50 ns, i.e. half a sample at 10 MHz —
  // comfortably inside the 1.6 us cyclic prefix, as the paper argues.
  EXPECT_NEAR(propagation_delay_s(15.0), 50e-9, 1e-9);
}

TEST(Medium, SingleLinkSnrMatchesBudget) {
  MediumParams mp;
  Medium medium(mp);
  const NodeId tx = medium.add_node({.ppm = 0.0, .carrier_hz = 2.4e9,
                                     .sample_rate_hz = 10e6,
                                     .phase_noise_linewidth_hz = 0.0,
                                     .seed = 1},
                                    /*noise_var=*/1e-3);
  const NodeId rx = medium.add_node({.ppm = 0.0, .carrier_hz = 2.4e9,
                                     .sample_rate_hz = 10e6,
                                     .phase_noise_linewidth_hz = 0.0,
                                     .seed = 2},
                                    1e-3);
  medium.set_link(tx, rx, {.gain = 1.0, .n_taps = 1, .tap_decay = 1.0,
                           .rice_k = 100.0, .delay_s = 0.0,
                           .coherence_time_s = 0.25, .sample_rate_hz = 10e6,
                           .seed = 3});
  Rng rng(4);
  const cvec burst = rng.cgaussian_vec(5000, 1.0);  // unit power
  medium.transmit(tx, 0.0, burst);
  const cvec heard = medium.receive(rx, 0.0, 5000);
  // SNR = gain * power / noise_var = 1 / 1e-3 = 30 dB.
  const double p = mean_power(heard);
  EXPECT_NEAR(to_db((p - 1e-3) / 1e-3), 30.0, 1.0);
}

TEST(MetroGeometry, GridPlacementIsRowMajor) {
  const CellGridParams g{.cols = 3, .pitch_m = 30.0};
  EXPECT_DOUBLE_EQ(cell_center(0, g).x, 0.0);
  EXPECT_DOUBLE_EQ(cell_center(0, g).y, 0.0);
  EXPECT_DOUBLE_EQ(cell_center(4, g).x, 30.0);  // (4 % 3, 4 / 3) = (1, 1)
  EXPECT_DOUBLE_EQ(cell_center(4, g).y, 30.0);
  EXPECT_DOUBLE_EQ(cell_distance_m(0, 1, g), 30.0);
  EXPECT_DOUBLE_EQ(cell_distance_m(0, 4, g), 30.0 * std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(cell_distance_m(2, 5, g), cell_distance_m(5, 2, g));
}

TEST(MetroGeometry, LeakageGainIsMonotoneInDistance) {
  const InterCellParams p;
  // Clamped below ref_distance_m; strictly decreasing beyond it.
  EXPECT_DOUBLE_EQ(inter_cell_leakage_gain(0.0, p),
                   inter_cell_leakage_gain(p.ref_distance_m, p));
  double prev = inter_cell_leakage_gain(p.ref_distance_m, p);
  EXPECT_GT(prev, 0.0);
  for (double d = p.ref_distance_m * 1.5; d < 400.0; d *= 1.5) {
    const double g = inter_cell_leakage_gain(d, p);
    EXPECT_LT(g, prev) << "at d=" << d;
    prev = g;
  }
}

TEST(MetroGeometry, InterferenceIsSymmetricForACellPair) {
  // Two cells, saturated duty: the fade is drawn from the unordered pair,
  // so each side sees the identical per-subcarrier profile no matter
  // which shard computes first.
  const CellGridParams grid{.cols = 2, .pitch_m = 30.0};
  const InterCellParams p;
  const auto at0 = inter_cell_interference(0, 2, grid, p, 48, 1234, {});
  const auto at1 = inter_cell_interference(1, 2, grid, p, 48, 1234, {});
  ASSERT_EQ(at0.size(), 48u);
  double total = 0.0;
  for (std::size_t k = 0; k < at0.size(); ++k) {
    EXPECT_DOUBLE_EQ(at0[k], at1[k]);
    total += at0[k];
  }
  EXPECT_GT(total, 0.0);
  // And regenerating the same shard's view is bit-stable.
  const auto again = inter_cell_interference(0, 2, grid, p, 48, 1234, {});
  EXPECT_EQ(at0, again);
  // A different trial seed redraws the fades.
  const auto other = inter_cell_interference(0, 2, grid, p, 48, 1235, {});
  EXPECT_NE(at0, other);
}

TEST(MetroGeometry, ZeroCouplingIsExactlyZero) {
  const CellGridParams grid{.cols = 3, .pitch_m = 30.0};
  InterCellParams p;
  p.coupling_scale = 0.0;
  EXPECT_EQ(inter_cell_leakage_gain(10.0, p), 0.0);
  const auto psd = inter_cell_interference(4, 9, grid, p, 48, 77, {});
  for (const double v : psd) EXPECT_EQ(v, 0.0);
  // Single-cell grids have no neighbors regardless of coupling.
  const auto lone =
      inter_cell_interference(0, 1, grid, InterCellParams{}, 48, 77, {});
  for (const double v : lone) EXPECT_EQ(v, 0.0);
}

TEST(Medium, InterferencePsdRaisesTheNoiseFloor) {
  // A flat interference profile of variance v per subcarrier must raise
  // the received power by exactly v on top of the thermal floor.
  Medium medium({});
  const NodeId rx = medium.add_node({.ppm = 0.0, .carrier_hz = 2.4e9,
                                     .sample_rate_hz = 10e6,
                                     .phase_noise_linewidth_hz = 0.0,
                                     .seed = 5},
                                    /*noise_var=*/1e-3);
  const std::size_t n = 64 * 512;
  const cvec quiet = medium.receive(rx, 0.0, n);
  EXPECT_NEAR(mean_power(quiet), 1e-3, 2e-4);

  medium.set_interference(rx, std::vector<double>(64, 2e-3));
  ASSERT_EQ(medium.interference(rx).size(), 64u);
  const cvec noisy = medium.receive(rx, 0.0, n);
  EXPECT_NEAR(mean_power(noisy), 3e-3, 4e-4);
}

TEST(Medium, HalfDuplexAndMissingLinksAreSilent) {
  Medium medium({});
  const NodeId a = medium.add_node({.ppm = 0.0, .carrier_hz = 2.4e9,
                                    .sample_rate_hz = 10e6,
                                    .phase_noise_linewidth_hz = 0.0, .seed = 1},
                                   1e-6);
  const NodeId b = medium.add_node({.ppm = 0.0, .carrier_hz = 2.4e9,
                                    .sample_rate_hz = 10e6,
                                    .phase_noise_linewidth_hz = 0.0, .seed = 2},
                                   1e-6);
  Rng rng(5);
  medium.transmit(a, 0.0, rng.cgaussian_vec(1000, 1.0));
  // a doesn't hear itself; b has no link from a.
  EXPECT_NEAR(mean_power(medium.receive(a, 0.0, 1000)), 1e-6, 5e-7);
  EXPECT_NEAR(mean_power(medium.receive(b, 0.0, 1000)), 1e-6, 5e-7);
}

TEST(Medium, CfoAppearsAsExpectedRotation) {
  Medium medium({});
  // tx at +2 ppm, rx at -1 ppm: relative CFO = 3e-6 * 2.4 GHz = 7.2 kHz.
  const NodeId tx = medium.add_node({.ppm = 2.0, .carrier_hz = 2.4e9,
                                     .sample_rate_hz = 10e6,
                                     .phase_noise_linewidth_hz = 0.0,
                                     .seed = 1},
                                    1e-12);
  const NodeId rx = medium.add_node({.ppm = -1.0, .carrier_hz = 2.4e9,
                                     .sample_rate_hz = 10e6,
                                     .phase_noise_linewidth_hz = 0.0,
                                     .seed = 2},
                                    1e-12);
  medium.set_link(tx, rx, {.gain = 1.0, .n_taps = 1, .tap_decay = 1.0,
                           .rice_k = 1e9, .delay_s = 0.0,
                           .coherence_time_s = 0.25, .sample_rate_hz = 10e6,
                           .seed = 3});
  const cvec ones(4000, cplx{1.0, 0.0});
  medium.transmit(tx, 0.0, ones);
  const cvec heard = medium.receive(rx, 0.0, 4000);
  // Measure the rotation rate over the middle of the burst.
  cplx acc{};
  for (std::size_t n = 1000; n < 3000; ++n) {
    acc += std::conj(heard[n]) * heard[n + 1];
  }
  const double f = std::arg(acc) * 10e6 / kTwoPi;
  EXPECT_NEAR(f, 7200.0, 50.0);
}

TEST(Medium, TrueChannelIncludesDelayRamp) {
  Medium medium({});
  const NodeId tx = medium.add_node({.ppm = 0.0, .carrier_hz = 2.4e9,
                                     .sample_rate_hz = 10e6,
                                     .phase_noise_linewidth_hz = 0.0,
                                     .seed = 1});
  const NodeId rx = medium.add_node({.ppm = 0.0, .carrier_hz = 2.4e9,
                                     .sample_rate_hz = 10e6,
                                     .phase_noise_linewidth_hz = 0.0,
                                     .seed = 2});
  const double delay_s = 2.5e-7;  // 2.5 samples
  medium.set_link(tx, rx, {.gain = 1.0, .n_taps = 1, .tap_decay = 1.0,
                           .rice_k = 1e9, .delay_s = delay_s,
                           .coherence_time_s = 0.25, .sample_rate_hz = 10e6,
                           .seed = 3});
  const cvec h = medium.true_channel(tx, rx);
  // |H| flat; phase slope across bins = -2 pi k * 2.5 / 64.
  const double mag0 = std::abs(h[1]);
  EXPECT_NEAR(std::abs(h[10]) / mag0, 1.0, 1e-6);
  const double slope = std::arg(h[2] * std::conj(h[1]));
  EXPECT_NEAR(slope, -kTwoPi * 2.5 / 64.0, 1e-6);
  EXPECT_THROW((void)medium.true_channel(rx, tx), std::invalid_argument);
}

TEST(Medium, EndToEndPacketThroughMediumDecodes) {
  // A real 802.11 frame from a +1.5 ppm AP to a -1.2 ppm client across a
  // fading link at ~25 dB SNR, with phase noise — the standard receiver
  // must decode it.
  Medium medium({});
  const NodeId ap = medium.add_node({.ppm = 1.5, .carrier_hz = 2.4e9,
                                     .sample_rate_hz = 10e6,
                                     .phase_noise_linewidth_hz = 0.1,
                                     .seed = 11},
                                    1e-12);
  const double noise = 1e-3;
  const NodeId client = medium.add_node({.ppm = -1.2, .carrier_hz = 2.4e9,
                                         .sample_rate_hz = 10e6,
                                         .phase_noise_linewidth_hz = 0.1,
                                         .seed = 12},
                                        noise);

  const phy::PhyConfig cfg;
  const phy::Transmitter tx(cfg);
  const phy::Receiver rx(cfg);
  Rng rng(14);
  phy::ByteVec psdu(500);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const phy::TxFrame frame =
      tx.build_frame(psdu, {phy::Modulation::kQam16, phy::CodeRate::kHalf});

  // Gain such that mean received signal power sits 25 dB above the noise.
  const double gain = noise * from_db(25.0) / mean_power(frame.samples);
  medium.set_link(ap, client,
                  {.gain = gain, .n_taps = 3, .tap_decay = 0.4,
                   .rice_k = 5.0, .delay_s = 40e-9, .coherence_time_s = 0.25,
                   .sample_rate_hz = 10e6, .seed = 13});

  medium.transmit(ap, 100e-6, frame.samples);
  const cvec heard = medium.receive(client, 0.0, 4000 + frame.samples.size());
  const phy::RxResult res = rx.receive(heard);
  ASSERT_TRUE(res.ok) << res.fail_reason;
  EXPECT_EQ(res.psdu, psdu);
  // CFO estimate should land near 2.7 ppm * 2.4 GHz = 6.48 kHz.
  EXPECT_NEAR(res.preamble.cfo_hz, 6480.0, 300.0);
  EXPECT_NEAR(res.preamble.snr_db, 25.0, 6.0);
}

}  // namespace
}  // namespace jmb::chan
