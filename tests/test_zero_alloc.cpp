// Zero-allocation contract for the steady-state frame loop.
//
// This binary links jmb_alloc_count, which replaces the global operator
// new/delete with counting versions (armed via set_alloc_counting or the
// JMB_COUNT_ALLOCS environment variable). A few warm-up frames let every
// workspace buffer reach steady-state capacity; after that, one full
// tx->rx->precode frame's worth of span kernels must not touch the heap.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/precoder.h"
#include "core/types.h"
#include "dsp/fft_plan.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/alloc_count.h"
#include "obs/flight/recorder.h"
#include "phy/convcode.h"
#include "phy/interleaver.h"
#include "phy/modulation.h"
#include "phy/ofdm.h"
#include "phy/viterbi.h"
#include "phy/workspace.h"
#include "simd/aligned.h"
#include "simd/backend.h"
#include "simd/kernels.h"

namespace jmb {
namespace {

using phy::kNfft;
using phy::kNumDataCarriers;
using phy::kSymbolLen;

TEST(ZeroAlloc, CountersObserveAnExplicitAllocation) {
  obs::reset_alloc_counts();
  obs::set_alloc_counting(true);
  {
    std::vector<double> v(1024, 0.0);
    ASSERT_EQ(v.size(), 1024u);
  }
  obs::set_alloc_counting(false);
  const obs::AllocCounts c = obs::alloc_counts();
  EXPECT_GE(c.allocs, 1u);
  EXPECT_GE(c.deallocs, 1u);
  EXPECT_GE(c.bytes, 1024u * sizeof(double));
}

TEST(ZeroAlloc, SteadyStateFrameKernelsDoNotAllocate) {
  const phy::Mcs mcs{phy::Modulation::kQpsk, phy::CodeRate::kHalf};
  Workspace ws;

  // Deterministic channel set: well conditioned, full rank everywhere.
  core::ChannelMatrixSet h(2, 2);
  const std::size_t n_sc = h.n_subcarriers();
  for (std::size_t k = 0; k < n_sc; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(n_sc);
    h.at(k) = CMatrix{{cplx{1.2, 0.1 * t}, cplx{0.3, -0.2}},
                      {cplx{-0.25, 0.4}, cplx{0.9 + 0.1 * t, -0.05}}};
  }
  const auto precoder = core::ZfPrecoder::build(h, ws);
  ASSERT_TRUE(precoder.has_value());

  // Preallocated frame buffers (what SystemState/Workspace own in the
  // engine; plain locals here so the test pins down the kernel contract).
  cvec data_in(kNumDataCarriers), freq(kNfft), sym(kSymbolLen), freq2(kNfft);
  cvec data_out(kNumDataCarriers), pilots(phy::kNumPilots);
  cvec remod(kNumDataCarriers);
  rvec noise48(kNumDataCarriers, 1e-2);
  CMatrix w_scratch;
  cvec x{cplx{0.7, -0.7}, cplx{-0.7, 0.7}};
  cvec txv(2);
  for (std::size_t i = 0; i < data_in.size(); ++i) {
    const double re = (i % 2 == 0) ? 0.7071 : -0.7071;
    const double im = (i % 3 == 0) ? 0.7071 : -0.7071;
    data_in[i] = cplx{re, im};
  }

  // An attached-but-idle fault session: the plan's only event lies far
  // beyond the simulated horizon, so pumping it every frame exercises the
  // hot-path timeline advance (and the window queries) without ever
  // crossing an edge. None of it may touch the heap.
  const fault::FaultPlan plan =
      fault::FaultPlan::single_crash(/*ap=*/1, /*t_s=*/1e9, /*outage_s=*/1.0,
                                     /*seed=*/7);
  fault::FaultSession fault_session(plan, /*n_aps=*/2, /*trial_seed=*/11);

  bool all_ok = true;
  const auto frame_iter = [&](std::size_t it) {
    fault_session.advance_to(static_cast<double>(it) * 1e-3);
    all_ok &= !fault_session.ap_down(0) && !fault_session.ap_down(1);
    all_ok &= !fault_session.sync_header_lost(1);
    all_ok &= !fault_session.stale_channel();
    all_ok &= fault_session.backhaul_delay_s() == 0.0;
    // Transmit side: map + modulate one OFDM symbol.
    phy::map_subcarriers_into(data_in, it % 7, freq);
    phy::ofdm_modulate_into(freq, sym);
    // Receive side: demodulate, extract, soft/hard demap, EVM re-modulate.
    phy::ofdm_demodulate_into(sym, freq2);
    phy::extract_data_into(freq2, data_out);
    phy::extract_pilots_into(freq2, pilots);
    phy::demodulate_soft_into(data_out, mcs.modulation, noise48, ws.llr_concat);
    phy::demodulate_hard_into(data_out, mcs.modulation, ws.hard_bits);
    phy::modulate_into(ws.hard_bits, mcs.modulation, remod);
    // Decode chain: deinterleave, depuncture, Viterbi.
    phy::deinterleave_soft_into(ws.llr_concat, mcs, ws.llr_dei);
    phy::depuncture_into(ws.llr_dei, kNumDataCarriers, mcs.code_rate,
                         ws.llr_mother);
    phy::viterbi_decode_into(ws.llr_mother, kNumDataCarriers,
                             /*terminated=*/false, ws.viterbi, ws.decoded_bits);
    // Precode path: per-subcarrier pseudo-inverse + transmit vector.
    all_ok &= pinv_into(h.at(it % n_sc), 0.0, ws.pinv, w_scratch);
    precoder->transmit_vector_into(it % n_sc, x, txv);
    (void)ws.fft_plan(kNfft);
  };

  // Warm-up: builds interleaver tables, FFT plans and buffer capacities.
  for (std::size_t it = 0; it < 3; ++it) frame_iter(it);
  ASSERT_TRUE(all_ok);

  obs::reset_alloc_counts();
  obs::set_alloc_counting(true);
  for (std::size_t it = 3; it < 200; ++it) frame_iter(it);
  obs::set_alloc_counting(false);

  const obs::AllocCounts c = obs::alloc_counts();
  EXPECT_EQ(c.allocs, 0u)
      << "steady-state frame kernels allocated " << c.allocs << " times ("
      << c.bytes << " bytes)";
  EXPECT_EQ(c.deallocs, 0u);
  EXPECT_TRUE(all_ok);

  // The counters ride along in timing exports via the PR 2 registry.
  obs::MetricRegistry reg;
  obs::export_alloc_metrics(reg);
  const obs::MetricRegistry::Entry* e = reg.find("alloc/new_calls");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->cls, obs::MetricClass::kTiming);
  EXPECT_EQ(std::get<obs::Gauge>(e->metric).value(), 0.0);
}

TEST(ZeroAlloc, FlightRecorderHotPathDoesNotAllocate) {
  // The flight recorder's steady-state cost — a record write and a span
  // scope, with recording *enabled* — must never touch the heap. Warm-up
  // leases this thread's ring and interns the names; after that, writes
  // are four relaxed stores into preallocated slots.
  namespace flight = obs::flight;
  auto& rec = flight::FlightRecorder::instance();
  rec.set_enabled_for_test(true);
  flight::FlightRing* ring = rec.local_ring();
  ASSERT_NE(ring, nullptr);
  const std::uint32_t span_name = rec.intern("zero_alloc/span");
  const std::uint32_t inst_name = rec.intern("zero_alloc/instant");
  // Warm the string_view lookup path too (the intern itself may allocate
  // on first sight; lookups afterwards must not).
  {
    flight::SpanScope warm(std::string_view("zero_alloc/span"));
  }

  obs::reset_alloc_counts();
  obs::set_alloc_counting(true);
  for (std::uint64_t it = 0; it < 4096; ++it) {
    const std::uint64_t flow = flight::make_flow(1, it);
    {
      flight::SpanScope span(span_name, flow);
      flight::record(flight::EventType::kRingWait, inst_name,
                     flight::now_ticks(), flow, it);
    }
    flight::instant(inst_name, flow, it);
    {
      // Interned-name lookup by string: lock-free scan, no allocation.
      flight::SpanScope span(std::string_view("zero_alloc/span"), flow);
    }
  }
  obs::set_alloc_counting(false);

  const obs::AllocCounts c = obs::alloc_counts();
  EXPECT_EQ(c.allocs, 0u)
      << "flight hot path allocated " << c.allocs << " times (" << c.bytes
      << " bytes)";
  EXPECT_EQ(c.deallocs, 0u);
  EXPECT_GE(ring->written(), 4096u * 4);
}

TEST(ZeroAlloc, SimdDispatchPathDoesNotAllocate) {
  // The dispatched kernel table and the batched kernels themselves must
  // stay heap-free in steady state — including the first active_kernels()
  // resolution, which only reads cpuid/getenv and a couple of atomics.
  constexpr std::size_t kN = phy::kNfft;
  const FftPlan plan(kN);
  simd::acvec spec(kN), scratch(kN);
  simd::acvec w0(kN), w1(kN), x0(kN), x1(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double t = static_cast<double>(i) / kN;
    spec[i] = cplx{0.5 - t, t};
    w0[i] = cplx{1.0, -t};
    w1[i] = cplx{-0.5 + t, 0.25};
    x0[i] = cplx{t, 1.0 - t};
    x1[i] = cplx{-t, 0.5};
  }
  const double* wrows[2] = {reinterpret_cast<const double*>(w0.data()),
                            reinterpret_cast<const double*>(w1.data())};
  const double* xrows[2] = {reinterpret_cast<const double*>(x0.data()),
                            reinterpret_cast<const double*>(x1.data())};

  const auto iter = [&] {
    const simd::Kernels& kern = simd::active_kernels();
    scratch = spec;  // same capacity: assignment copies, no reallocation
    kern.cmacn(reinterpret_cast<double*>(scratch.data()), wrows, xrows, 2,
               kN);
    plan.forward(std::span<cplx>(scratch.data(), kN));
    plan.inverse(std::span<cplx>(scratch.data(), kN));
  };

  simd::reset_backend_cache();  // make the first iter resolve the backend
  obs::reset_alloc_counts();
  obs::set_alloc_counting(true);
  for (int it = 0; it < 50; ++it) iter();
  obs::set_alloc_counting(false);

  const obs::AllocCounts c = obs::alloc_counts();
  EXPECT_EQ(c.allocs, 0u)
      << "SIMD dispatch path allocated " << c.allocs << " times (" << c.bytes
      << " bytes)";
  EXPECT_EQ(c.deallocs, 0u);
}

TEST(ZeroAlloc, PrecoderRebuildKindDoesNotAllocate) {
  // The every-coherence-interval path of the precoder zoo: after the
  // first build of a given shape, rebuild_kind() must reuse the weight
  // and packed-SoA capacity for EVERY kind — the PrecodeStage emplace-
  // once + rebuild pattern depends on it. obs stays nullptr here: the
  // conditioning probes are allowed to allocate, the rebuild is not.
  Workspace ws;
  core::ChannelMatrixSet h_a(3, 3);
  core::ChannelMatrixSet h_b(3, 3);
  for (std::size_t k = 0; k < h_a.n_subcarriers(); ++k) {
    const double t = static_cast<double>(k + 1);
    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t c = 0; c < 3; ++c) {
        const double base = r == c ? 1.5 : 0.2;
        h_a.at(k)(r, c) = cplx{base + 0.01 * t * (r + 1.0), 0.1 * (c + 1.0)};
        h_b.at(k)(r, c) = cplx{base - 0.01 * t * (c + 1.0), -0.1 * (r + 1.0)};
      }
    }
  }

  core::PrecoderConfig cfgs[3];
  cfgs[0].kind = phy::PrecoderKind::kZf;
  cfgs[1].kind = phy::PrecoderKind::kRzf;
  cfgs[1].ridge = 0.25;
  cfgs[2].kind = phy::PrecoderKind::kConj;

  for (const core::PrecoderConfig& cfg : cfgs) {
    auto p = core::Precoder::build_kind(h_a, cfg, ws);
    ASSERT_TRUE(p.has_value());

    obs::reset_alloc_counts();
    obs::set_alloc_counting(true);
    bool ok = true;
    for (int it = 0; it < 32; ++it) {
      ok &= p->rebuild_kind(it % 2 == 0 ? h_b : h_a, cfg, ws.pinv);
    }
    obs::set_alloc_counting(false);

    const obs::AllocCounts c = obs::alloc_counts();
    EXPECT_TRUE(ok);
    EXPECT_EQ(c.allocs, 0u)
        << phy::precoder_kind_name(cfg.kind) << " rebuild allocated "
        << c.allocs << " times (" << c.bytes << " bytes)";
    EXPECT_EQ(c.deallocs, 0u);
  }
}

}  // namespace
}  // namespace jmb
