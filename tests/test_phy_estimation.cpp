// Tests for the estimation refinements: time-support channel denoising,
// the validated low-SNR preamble locator, and the LTF disambiguation
// helpers — the pieces that push JMB's channel snapshots to the accuracy
// distributed nulling needs.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.h"
#include "dsp/rng.h"
#include "phy/chanest.h"
#include "phy/preamble.h"
#include "phy/receiver.h"
#include "phy/sync.h"
#include "phy/transmitter.h"
#include "phy/workspace.h"

namespace jmb::phy {
namespace {

ChannelEstimate from_taps(const cvec& taps) {
  ChannelEstimate est;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    cplx acc{};
    for (std::size_t l = 0; l < taps.size(); ++l) {
      acc += taps[l] * phasor(-kTwoPi * k * static_cast<double>(l) / 64.0);
    }
    est.set(k, acc);
  }
  return est;
}

TEST(Denoise, PreservesInSupportChannels) {
  // A channel whose impulse response fits the support must pass through
  // unchanged (the projection is idempotent on its own subspace).
  Rng rng(1);
  const cvec taps = rng.cgaussian_vec(6);
  const ChannelEstimate est = from_taps(taps);
  const ChannelEstimate out = denoise_time_support(est, 20);
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    EXPECT_NEAR(std::abs(out.at(k) - est.at(k)), 0.0, 1e-9) << k;
  }
}

TEST(Denoise, RemovesOutOfSupportNoise) {
  Rng rng(2);
  const cvec taps = rng.cgaussian_vec(4);
  const ChannelEstimate clean = from_taps(taps);
  const double nvar = 0.05;
  double err_before = 0.0, err_after = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    ChannelEstimate noisy = clean;
    for (int k = -26; k <= 26; ++k) {
      if (k == 0) continue;
      noisy.set(k, noisy.at(k) + rng.cgaussian(nvar));
    }
    const ChannelEstimate den = denoise_time_support(noisy, 16);
    for (int k = -26; k <= 26; ++k) {
      if (k == 0) continue;
      err_before += std::norm(noisy.at(k) - clean.at(k));
      err_after += std::norm(den.at(k) - clean.at(k));
    }
  }
  // Noise power should drop roughly by support/52 ~ -5 dB; require 2 dB.
  EXPECT_LT(err_after, err_before * 0.63);
}

TEST(Denoise, IsIdempotent) {
  Rng rng(3);
  ChannelEstimate est;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    est.set(k, rng.cgaussian());
  }
  const ChannelEstimate once = denoise_time_support(est, 12);
  const ChannelEstimate twice = denoise_time_support(once, 12);
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    EXPECT_NEAR(std::abs(twice.at(k) - once.at(k)), 0.0, 1e-9);
  }
}

TEST(Denoise, InputValidation) {
  ChannelEstimate est;
  EXPECT_THROW((void)denoise_time_support(est, 0), std::invalid_argument);
  EXPECT_THROW((void)denoise_time_support(est, 53), std::invalid_argument);
  // Full support = no-op projection (basis spans everything).
  (void)denoise_time_support(est, 52);
}

TEST(LtfMetric, PeaksAtLtfPosition) {
  Rng rng(4);
  cvec buf = rng.cgaussian_vec(600, 1e-4);
  const cvec& sym = ltf_symbol_time();
  for (std::size_t i = 0; i < sym.size(); ++i) buf[250 + i] += sym[i];
  EXPECT_GT(ltf_metric_at(buf, 250), 0.8);
  EXPECT_LT(ltf_metric_at(buf, 100), 0.3);
  // Out of range: 0, no crash.
  EXPECT_EQ(ltf_metric_at(buf, buf.size()), 0.0);
}

TEST(LocateEarliest, PrefersFirstValidHeaderOverLaterSymbols) {
  // A preamble at 150 followed by lone LTF-shaped measurement symbols
  // later (stronger!): the earliest *validated* header must win.
  Rng rng(5);
  cvec buf = rng.cgaussian_vec(2000, 1e-3);
  const cvec pre = preamble_time();
  for (std::size_t i = 0; i < pre.size(); ++i) buf[150 + i] += pre[i];
  const cvec& sym = ltf_symbol_time();
  for (std::size_t i = 0; i < sym.size(); ++i) {
    buf[900 + i] += 3.0 * sym[i];  // much stronger lone symbol
    buf[1200 + i] += 3.0 * sym[i];
  }
  const auto pos = locate_ltf_earliest(buf, 0, buf.size());
  ASSERT_TRUE(pos.has_value());
  // LTF symbol 1 of the preamble sits at 150 + 192 = 342.
  EXPECT_NEAR(static_cast<double>(*pos), 342.0, 4.0);
}

TEST(LocateEarliest, NoFalsePositiveInNoise) {
  Rng rng(6);
  const cvec buf = rng.cgaussian_vec(3000, 1.0);
  EXPECT_FALSE(locate_ltf_earliest(buf, 0, buf.size()).has_value());
}

TEST(LowSnrFallback, MeasuresPreambleBelowStfThreshold) {
  // At ~4 dB waveform SNR the STF autocorrelation detector becomes
  // unreliable, but the coherent LTF fallback must still lock on.
  Rng rng(7);
  const cvec pre = preamble_time();
  const double sig_power = mean_power(pre);
  const double nvar = sig_power / from_db(4.0);
  int found = 0;
  const Receiver rx;
  for (int trial = 0; trial < 10; ++trial) {
    cvec buf(1500);
    for (auto& v : buf) v = rng.cgaussian(nvar);
    const std::size_t at = 400;
    const double cfo = rng.uniform(-8e3, 8e3);
    for (std::size_t i = 0; i < pre.size(); ++i) {
      buf[at + i] +=
          pre[i] * phasor(kTwoPi * cfo * static_cast<double>(i) / 10e6);
    }
    const auto pm = rx.measure_preamble(buf);
    if (pm && std::abs(static_cast<double>(pm->ltf_start) -
                       static_cast<double>(at + 192)) < 6.0) {
      ++found;
      // 128 samples at 4 dB bound the CFO std to ~3 kHz; timing is the
      // hard part, and it locked.
      EXPECT_NEAR(pm->cfo_hz, cfo, 9e3);
    }
  }
  EXPECT_GE(found, 7);
}

TEST(LowSnrFallback, FullReceiveAtLowSnrBpsk) {
  // End-to-end at ~5 dB: BPSK 1/2 should still deliver most frames.
  Rng rng(8);
  const Transmitter tx;
  const Receiver rx;
  ByteVec psdu(100);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const TxFrame frame =
      tx.build_frame(psdu, {Modulation::kBpsk, CodeRate::kHalf});
  const double nvar = mean_power(frame.samples) / from_db(5.0);
  int ok = 0;
  for (int trial = 0; trial < 10; ++trial) {
    cvec buf(500 + frame.samples.size());
    for (auto& v : buf) v = rng.cgaussian(nvar);
    for (std::size_t i = 0; i < frame.samples.size(); ++i) {
      buf[250 + i] += frame.samples[i];
    }
    const RxResult res = rx.receive(buf);
    if (res.ok && res.psdu == psdu) ++ok;
  }
  EXPECT_GE(ok, 6);
}

// ---- Workspace parity: attaching a workspace only changes where the
// intermediates live; every output must be bitwise identical.

TEST(WorkspaceParity, ReceiveIsBitwiseIdenticalWithWorkspace) {
  Rng rng(21);
  const Transmitter tx;
  const Receiver legacy;
  Receiver reusing;
  Workspace ws;
  reusing.set_workspace(&ws);

  ByteVec psdu(80);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const TxFrame frame =
      tx.build_frame(psdu, {Modulation::kQpsk, CodeRate::kHalf});
  const double nvar = mean_power(frame.samples) / from_db(15.0);
  for (int trial = 0; trial < 5; ++trial) {
    cvec buf(400 + frame.samples.size());
    for (auto& v : buf) v = rng.cgaussian(nvar);
    for (std::size_t i = 0; i < frame.samples.size(); ++i) {
      buf[200 + i] += frame.samples[i];
    }
    const RxResult a = legacy.receive(buf);
    const RxResult b = reusing.receive(buf);  // workspace-backed, reused
    ASSERT_EQ(a.ok, b.ok);
    ASSERT_EQ(a.header_ok, b.header_ok);
    EXPECT_EQ(a.psdu, b.psdu);
    EXPECT_EQ(a.evm_snr_db, b.evm_snr_db);
    EXPECT_EQ(a.preamble.cfo_hz, b.preamble.cfo_hz);
    EXPECT_EQ(a.preamble.ltf_start, b.preamble.ltf_start);
    EXPECT_EQ(a.preamble.noise_var, b.preamble.noise_var);
  }
}

TEST(WorkspaceParity, DenoiseMatchesLegacyMutexCache) {
  Rng rng(22);
  Workspace ws;
  for (int trial = 0; trial < 3; ++trial) {
    cvec taps{rng.cgaussian(), 0.4 * rng.cgaussian(), 0.1 * rng.cgaussian()};
    ChannelEstimate est = from_taps(taps);
    for (int k = -26; k <= 26; ++k) {
      if (k == 0) continue;
      est.set(k, est.at(k) + rng.cgaussian(1e-3));
    }
    const ChannelEstimate a = denoise_time_support(est);
    const ChannelEstimate b = denoise_time_support(est, ws);
    for (int k = -26; k <= 26; ++k) {
      if (k == 0) continue;
      EXPECT_EQ(a.at(k).real(), b.at(k).real()) << "k=" << k;
      EXPECT_EQ(a.at(k).imag(), b.at(k).imag()) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace jmb::phy
