// Tests for the bit-level PHY pipeline: scrambler, CRC, convolutional
// code + puncturing, Viterbi, interleaver, constellation mapping.
#include <gtest/gtest.h>

#include <algorithm>

#include "dsp/rng.h"
#include "phy/bits.h"
#include "phy/convcode.h"
#include "phy/crc32.h"
#include "phy/interleaver.h"
#include "phy/modulation.h"
#include "phy/scrambler.h"
#include "phy/viterbi.h"

namespace jmb::phy {
namespace {

BitVec random_bits(Rng& rng, std::size_t n) {
  BitVec b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  return b;
}

TEST(Scrambler, IsItsOwnInverse) {
  Rng rng(1);
  const BitVec bits = random_bits(rng, 500);
  const BitVec once = scramble_bits(bits, 0x5D);
  EXPECT_NE(once, bits);
  EXPECT_EQ(scramble_bits(once, 0x5D), bits);
}

TEST(Scrambler, RejectsZeroSeed) {
  EXPECT_THROW(Scrambler(0), std::invalid_argument);
  EXPECT_THROW(Scrambler(0x80), std::invalid_argument);  // masked to 0
}

TEST(Scrambler, SequencePeriod127) {
  Scrambler a(0x7F);
  BitVec first(127), second(127);
  for (auto& b : first) b = a.next_bit();
  for (auto& b : second) b = a.next_bit();
  EXPECT_EQ(first, second);
  // Balanced: a maximal-length 7-bit LFSR emits 64 ones and 63 zeros.
  EXPECT_EQ(std::count(first.begin(), first.end(), 1), 64);
}

TEST(Scrambler, PilotPolarityMatchesStandardPrefix) {
  // 802.11a 17.3.5.9: p starts 1,1,1,1,-1,-1,-1,1 ...
  const double expect[8] = {1, 1, 1, 1, -1, -1, -1, 1};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(pilot_polarity(i), expect[i]) << i;
  }
  EXPECT_EQ(pilot_polarity(0), pilot_polarity(127));  // period 127
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  const ByteVec data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, AppendCheckStripRoundTrip) {
  Rng rng(2);
  ByteVec data(100);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const ByteVec framed = append_crc32(data);
  EXPECT_EQ(framed.size(), data.size() + 4);
  EXPECT_TRUE(check_crc32(framed));
  EXPECT_EQ(strip_crc32(framed), data);
}

TEST(Crc32, DetectsSingleBitFlip) {
  Rng rng(3);
  ByteVec data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  ByteVec framed = append_crc32(data);
  for (int trial = 0; trial < 50; ++trial) {
    ByteVec corrupted = framed;
    const std::size_t byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(framed.size()) - 1));
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    EXPECT_FALSE(check_crc32(corrupted));
  }
  EXPECT_FALSE(check_crc32(ByteVec{1, 2, 3}));  // too short
}

TEST(Bits, BytesToBitsLsbFirst) {
  const ByteVec bytes{0x01, 0x80};
  const BitVec bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 16u);
  EXPECT_EQ(bits[0], 1);  // LSB of 0x01 first
  EXPECT_EQ(bits[7], 0);
  EXPECT_EQ(bits[8], 0);
  EXPECT_EQ(bits[15], 1);  // MSB of 0x80 last
  EXPECT_EQ(bits_to_bytes(bits), bytes);
  EXPECT_THROW((void)bits_to_bytes(BitVec(7, 0)), std::invalid_argument);
}

TEST(Bits, HammingDistance) {
  EXPECT_EQ(hamming_distance({0, 1, 1}, {0, 1, 1}), 0u);
  EXPECT_EQ(hamming_distance({0, 1, 1}, {1, 1, 0}), 2u);
  EXPECT_EQ(hamming_distance({0, 1}, {0, 1, 1, 1}), 2u);  // length mismatch
}

TEST(ConvCode, KnownImpulseResponse) {
  // A single 1 followed by zeros produces the generator taps.
  const BitVec coded = conv_encode({1, 0, 0, 0, 0, 0, 0});
  ASSERT_EQ(coded.size(), 14u);
  // First output pair: both generators tap the current bit -> (1,1).
  EXPECT_EQ(coded[0], 1);
  EXPECT_EQ(coded[1], 1);
}

TEST(ConvCode, RateHalfDoubles) {
  Rng rng(4);
  const BitVec bits = random_bits(rng, 100);
  EXPECT_EQ(conv_encode(bits).size(), 200u);
}

TEST(ConvCode, PunctureLengths) {
  EXPECT_EQ(punctured_length(100, CodeRate::kHalf), 200u);
  EXPECT_EQ(punctured_length(100, CodeRate::kTwoThirds), 150u);
  EXPECT_EQ(punctured_length(99, CodeRate::kThreeQuarters), 132u);
  EXPECT_THROW((void)punctured_length(99, CodeRate::kTwoThirds),
               std::invalid_argument);
  EXPECT_THROW((void)punctured_length(100, CodeRate::kThreeQuarters),
               std::invalid_argument);
}

TEST(ConvCode, DepunctureInsertsErasures) {
  Rng rng(5);
  const BitVec bits = random_bits(rng, 12);
  const BitVec coded = conv_encode(bits);
  const BitVec punct = puncture(coded, CodeRate::kThreeQuarters);
  EXPECT_EQ(punct.size(), 16u);
  std::vector<double> llr(punct.size());
  for (std::size_t i = 0; i < punct.size(); ++i) llr[i] = punct[i] ? -1.0 : 1.0;
  const std::vector<double> dep = depuncture(llr, 12, CodeRate::kThreeQuarters);
  ASSERT_EQ(dep.size(), 24u);
  // Non-erased positions must carry the original coded bits.
  std::size_t erasures = 0;
  for (std::size_t i = 0; i < dep.size(); ++i) {
    if (dep[i] == 0.0) {
      ++erasures;
    } else {
      EXPECT_EQ(dep[i] < 0, coded[i] == 1);
    }
  }
  EXPECT_EQ(erasures, 8u);
}

class ViterbiRoundTrip : public ::testing::TestWithParam<CodeRate> {};

TEST_P(ViterbiRoundTrip, CleanChannelRecoversBits) {
  const CodeRate rate = GetParam();
  Rng rng(6);
  // n_info divisible by 6 keeps all puncturing patterns happy.
  for (int trial = 0; trial < 10; ++trial) {
    BitVec info = random_bits(rng, 120);
    // Terminate the trellis.
    for (int i = 0; i < 6; ++i) {
      info[info.size() - 1 - static_cast<std::size_t>(i)] = 0;
    }
    const BitVec punct = puncture(conv_encode(info), rate);
    std::vector<double> llr(punct.size());
    for (std::size_t i = 0; i < punct.size(); ++i) {
      llr[i] = punct[i] ? -4.0 : 4.0;
    }
    const std::vector<double> dep = depuncture(llr, info.size(), rate);
    EXPECT_EQ(viterbi_decode(dep, info.size()), info);
  }
}

TEST_P(ViterbiRoundTrip, CorrectsNoisySoftBits) {
  const CodeRate rate = GetParam();
  Rng rng(7);
  int failures = 0;
  for (int trial = 0; trial < 20; ++trial) {
    BitVec info = random_bits(rng, 120);
    for (int i = 0; i < 6; ++i) {
      info[info.size() - 1 - static_cast<std::size_t>(i)] = 0;
    }
    const BitVec punct = puncture(conv_encode(info), rate);
    // BPSK over AWGN at ~5 dB Eb/N0 equivalent.
    std::vector<double> llr(punct.size());
    for (std::size_t i = 0; i < punct.size(); ++i) {
      const double tx = punct[i] ? -1.0 : 1.0;
      llr[i] = 2.0 * (tx + rng.gaussian(0.45));
    }
    const std::vector<double> dep = depuncture(llr, info.size(), rate);
    if (viterbi_decode(dep, info.size()) != info) ++failures;
  }
  // Rate 1/2 should essentially never fail here; punctured rates rarely.
  EXPECT_LE(failures, rate == CodeRate::kHalf ? 0 : 4);
}

INSTANTIATE_TEST_SUITE_P(Rates, ViterbiRoundTrip,
                         ::testing::Values(CodeRate::kHalf,
                                           CodeRate::kTwoThirds,
                                           CodeRate::kThreeQuarters));

TEST(Viterbi, HardDecisionCorrectsErrors) {
  Rng rng(8);
  BitVec info = random_bits(rng, 60);
  for (int i = 0; i < 6; ++i) {
    info[info.size() - 1 - static_cast<std::size_t>(i)] = 0;
  }
  BitVec coded = conv_encode(info);
  // Flip 6 well-separated coded bits: free distance 10 handles these.
  for (std::size_t pos : {3u, 23u, 43u, 63u, 83u, 103u}) coded[pos] ^= 1u;
  EXPECT_EQ(viterbi_decode_hard(coded, info.size()), info);
}

TEST(Viterbi, InputValidation) {
  EXPECT_THROW((void)viterbi_decode(std::vector<double>(10), 6),
               std::invalid_argument);
}

class InterleaverRoundTrip : public ::testing::TestWithParam<Mcs> {};

TEST_P(InterleaverRoundTrip, Bijective) {
  const Mcs mcs = GetParam();
  Rng rng(9);
  const BitVec bits = random_bits(rng, mcs.n_cbps());
  const BitVec inter = interleave(bits, mcs);
  EXPECT_EQ(deinterleave(inter, mcs), bits);
  // Permutation property: sorted indices are 0..n-1.
  auto perm = interleave_permutation(mcs);
  std::sort(perm.begin(), perm.end());
  for (std::size_t i = 0; i < perm.size(); ++i) EXPECT_EQ(perm[i], i);
}

TEST_P(InterleaverRoundTrip, SoftMatchesHard) {
  const Mcs mcs = GetParam();
  Rng rng(10);
  const BitVec bits = random_bits(rng, mcs.n_cbps());
  const BitVec inter = interleave(bits, mcs);
  std::vector<double> llr(inter.size());
  for (std::size_t i = 0; i < inter.size(); ++i) llr[i] = inter[i] ? -1.0 : 1.0;
  const auto soft = deinterleave_soft(llr, mcs);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(soft[i] < 0, bits[i] == 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRates, InterleaverRoundTrip,
    ::testing::ValuesIn(rate_set()),
    [](const ::testing::TestParamInfo<Mcs>& info) {
      return "mcs" + std::to_string(info.index);
    });

TEST(Interleaver, AdjacentBitsSpread) {
  // The point of the interleaver: adjacent coded bits land on
  // non-adjacent subcarriers.
  const Mcs mcs{Modulation::kQam16, CodeRate::kHalf};
  const auto perm = interleave_permutation(mcs);
  for (std::size_t k = 0; k + 1 < perm.size(); ++k) {
    const auto sub_a = perm[k] / mcs.n_bpsc();
    const auto sub_b = perm[k + 1] / mcs.n_bpsc();
    EXPECT_NE(sub_a, sub_b);
  }
}

class ModulationRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModulationRoundTrip, HardDecisionRecovers) {
  const Modulation m = GetParam();
  Rng rng(11);
  const BitVec bits = random_bits(rng, bits_per_symbol(m) * 96);
  const cvec syms = modulate(bits, m);
  EXPECT_EQ(syms.size(), 96u);
  EXPECT_EQ(demodulate_hard(syms, m), bits);
}

TEST_P(ModulationRoundTrip, UnitAveragePower) {
  const Modulation m = GetParam();
  const cvec& pts = constellation(m);
  double p = 0.0;
  for (const cplx& v : pts) p += std::norm(v);
  EXPECT_NEAR(p / static_cast<double>(pts.size()), 1.0, 1e-12);
}

TEST_P(ModulationRoundTrip, SoftSignsMatchHardBits) {
  const Modulation m = GetParam();
  Rng rng(12);
  const BitVec bits = random_bits(rng, bits_per_symbol(m) * 48);
  const cvec syms = modulate(bits, m);
  const auto llr = demodulate_soft(syms, m, 0.1);
  ASSERT_EQ(llr.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) {
      EXPECT_LT(llr[i], 0.0) << i;
    } else {
      EXPECT_GT(llr[i], 0.0) << i;
    }
  }
}

TEST_P(ModulationRoundTrip, GrayNeighborsDifferInOneBit) {
  // Gray property: horizontally/vertically adjacent constellation points
  // differ in exactly one bit.
  const Modulation m = GetParam();
  if (m == Modulation::kBpsk) GTEST_SKIP() << "trivial for BPSK";
  const cvec& pts = constellation(m);
  const std::size_t nbits = bits_per_symbol(m);
  const double step = 2.0 * kmod(m);
  for (std::size_t a = 0; a < pts.size(); ++a) {
    for (std::size_t b = 0; b < pts.size(); ++b) {
      const double d = std::abs(pts[a] - pts[b]);
      if (std::abs(d - step) < 1e-9) {
        int diff = 0;
        for (std::size_t k = 0; k < nbits; ++k) {
          if (((a >> k) ^ (b >> k)) & 1u) ++diff;
        }
        EXPECT_EQ(diff, 1) << "points " << a << "," << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMods, ModulationRoundTrip,
                         ::testing::Values(Modulation::kBpsk,
                                           Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Modulation, InputValidation) {
  EXPECT_THROW((void)modulate(BitVec(3, 0), Modulation::kQpsk),
               std::invalid_argument);
  EXPECT_THROW((void)demodulate_soft(cvec(4), Modulation::kBpsk, rvec(3)),
               std::invalid_argument);
}

TEST(Params, RateSetValues) {
  const auto& rates = rate_set();
  ASSERT_EQ(rates.size(), 8u);
  // 20 MHz: the classic 6..54 Mb/s ladder.
  const double expect20[8] = {6, 9, 12, 18, 24, 36, 48, 54};
  // 10 MHz (the paper's USRP channel): everything halves.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(rates[i].rate_mbps(20e6), expect20[i], 1e-9) << i;
    EXPECT_NEAR(rates[i].rate_mbps(10e6), expect20[i] / 2, 1e-9) << i;
  }
}

TEST(Params, RateFieldRoundTrip) {
  for (std::size_t i = 0; i < rate_set().size(); ++i) {
    EXPECT_EQ(rate_index_from_field(rate_field_bits(i)), i);
  }
  EXPECT_THROW((void)rate_index_from_field(0b0000), std::invalid_argument);
  EXPECT_THROW((void)rate_field_bits(8), std::invalid_argument);
}

TEST(Params, CarrierLayout) {
  EXPECT_EQ(data_carriers().size(), 48u);
  EXPECT_EQ(pilot_carriers().size(), 4u);
  // No overlap between data and pilot carriers, none at DC.
  for (int d : data_carriers()) {
    EXPECT_NE(d, 0);
    for (int p : pilot_carriers()) EXPECT_NE(d, p);
  }
  EXPECT_EQ(bin_of(-1), 63u);
  EXPECT_EQ(bin_of(1), 1u);
  EXPECT_EQ(bin_of(-26), 38u);
}

TEST(Params, NdbpsTable) {
  EXPECT_EQ((Mcs{Modulation::kBpsk, CodeRate::kHalf}).n_dbps(), 24u);
  EXPECT_EQ((Mcs{Modulation::kQam64, CodeRate::kThreeQuarters}).n_dbps(), 216u);
  EXPECT_EQ((Mcs{Modulation::kQam64, CodeRate::kTwoThirds}).n_dbps(), 192u);
  EXPECT_EQ((Mcs{Modulation::kQam16, CodeRate::kHalf}).n_cbps(), 192u);
}

}  // namespace
}  // namespace jmb::phy
