// Observability layer: registry semantics, merge determinism across
// thread counts, histogram bucketing, JSON round-trips, the schema
// validator, and the bounded trace ring.
#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "engine/trial_runner.h"
#include "obs/bounds.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "obs/trace.h"

namespace jmb {
namespace {

TEST(ObsHistogram, BucketsAreLowerExclusiveUpperInclusive) {
  const double bounds[] = {1.0, 2.0};
  obs::Histogram h(bounds);
  h.observe(0.5);  // <= bounds[0] -> bucket 0
  h.observe(1.0);  // boundary lands in bucket 0 ((-inf, 1])
  h.observe(1.5);  // (1, 2] -> bucket 1
  h.observe(2.0);  // boundary lands in bucket 1
  h.observe(3.0);  // overflow bucket
  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(ObsHistogram, QuantilesAreOrderedAndBoundedByObservations) {
  obs::Histogram h(obs::kTimeUsBounds);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  // 100 uniform samples: the median interpolates somewhere near 50.
  EXPECT_GT(p50, 20.0);
  EXPECT_LT(p50, 100.0);
}

TEST(ObsHistogram, MergeSumsAndMismatchThrows) {
  const double bounds[] = {1.0, 2.0};
  obs::Histogram a(bounds), b(bounds);
  a.observe(0.5);
  b.observe(1.5);
  b.observe(9.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_EQ(a.counts()[0], 1u);
  EXPECT_EQ(a.counts()[1], 1u);
  EXPECT_EQ(a.counts()[2], 1u);

  const double other[] = {1.0, 3.0};
  obs::Histogram c(other);
  EXPECT_THROW(a.merge(c), std::logic_error);
}

TEST(ObsRegistry, GetOrCreateAndKindMismatch) {
  obs::MetricRegistry reg;
  obs::Counter& c1 = reg.counter("x");
  c1.add(2.0);
  EXPECT_DOUBLE_EQ(reg.counter("x").value(), 2.0);  // same object
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  (void)reg.histogram("h", obs::kHzBounds);
  EXPECT_THROW(reg.histogram("h", obs::kDbBounds), std::logic_error);
  // First-registration order is the export order.
  ASSERT_EQ(reg.entries().size(), 2u);
  EXPECT_EQ(reg.entries()[0].name, "x");
  EXPECT_EQ(reg.entries()[1].name, "h");
}

TEST(ObsRegistry, MergeAppendsNewNamesInOtherOrder) {
  obs::MetricRegistry a, b;
  a.counter("shared").add(1.0);
  b.counter("b_only").add(5.0);
  b.counter("shared").add(2.0);
  a.merge(b);
  ASSERT_EQ(a.entries().size(), 2u);
  // "shared" keeps a's slot; "b_only" appends after it.
  EXPECT_EQ(a.entries()[0].name, "shared");
  EXPECT_EQ(a.entries()[1].name, "b_only");
  EXPECT_DOUBLE_EQ(a.counter("shared").value(), 3.0);
  EXPECT_DOUBLE_EQ(a.counter("b_only").value(), 5.0);
}

TEST(ObsBounds, LiteralTablesAreStableAndAscending) {
  EXPECT_EQ(std::size(obs::kTimeUsBounds), 21u);
  EXPECT_DOUBLE_EQ(obs::kTimeUsBounds[0], 1.0);
  EXPECT_DOUBLE_EQ(obs::kTimeUsBounds[20], 5e6);
  EXPECT_EQ(std::size(obs::kPhaseRadBounds), 15u);
  EXPECT_DOUBLE_EQ(obs::kPhaseRadBounds[14], 3.15);
  EXPECT_EQ(std::size(obs::kHzBounds), 11u);
  EXPECT_EQ(std::size(obs::kDbBounds), 22u);
  EXPECT_DOUBLE_EQ(obs::kDbBounds[0], -320.0);
  EXPECT_EQ(std::size(obs::kCondBounds), 13u);
  EXPECT_EQ(std::size(obs::kQueueDepthBounds), 18u);
  EXPECT_DOUBLE_EQ(obs::kQueueDepthBounds[0], 0.0);
  EXPECT_DOUBLE_EQ(obs::kQueueDepthBounds[17], 512.0);
  const auto ascending = [](const double* t, std::size_t n) {
    for (std::size_t i = 1; i < n; ++i) {
      if (t[i - 1] >= t[i]) return false;
    }
    return true;
  };
  EXPECT_TRUE(ascending(obs::kTimeUsBounds, std::size(obs::kTimeUsBounds)));
  EXPECT_TRUE(ascending(obs::kPhaseRadBounds, std::size(obs::kPhaseRadBounds)));
  EXPECT_TRUE(ascending(obs::kHzBounds, std::size(obs::kHzBounds)));
  EXPECT_TRUE(ascending(obs::kDbBounds, std::size(obs::kDbBounds)));
  EXPECT_TRUE(ascending(obs::kCondBounds, std::size(obs::kCondBounds)));
  EXPECT_TRUE(
      ascending(obs::kQueueDepthBounds, std::size(obs::kQueueDepthBounds)));
}

TEST(ObsSink, NullRegistryIsNoOp) {
  const obs::ObsSink sink;
  sink.count("x");
  sink.set_gauge("y", 1.0);
  sink.observe("z", obs::kHzBounds, 1.0);
  EXPECT_EQ(sink.registry(), nullptr);
}

// The determinism contract behind ISSUE acceptance: a run whose trials
// register different metric names in different orders, plus wall-clock
// stage timers, exports byte-identically for any worker-thread count.
std::string run_and_export(std::size_t n_threads) {
  engine::TrialRunner runner({.base_seed = 17, .n_threads = n_threads});
  (void)runner.run(12, [](engine::TrialContext& ctx) {
    const auto timer = ctx.time_stage(engine::kStageDecode);
    ctx.metrics->stage(engine::kStagePrecode)
        .add_condition(1.0 + static_cast<double>(ctx.index));
    ctx.sink.count("probe/common");
    ctx.sink.observe("probe/phase", obs::kPhaseRadBounds,
                     1e-3 * static_cast<double>(ctx.index + 1));
    if (ctx.index % 3 == 0) ctx.sink.count("probe/only_mod3");
    ctx.sink.set_gauge("probe/last_index", static_cast<double>(ctx.index));
    return 0;
  });
  obs::BenchRunInfo info;
  info.figure = "test_fixture";
  info.seed = 17;
  info.params.emplace_back("trials", 12.0);
  return obs::bench_result_json(info, runner.registry());
}

TEST(ObsDeterminism, ExportIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = run_and_export(1);
  const std::string parallel = run_and_export(8);
  EXPECT_EQ(serial, parallel);
  // Physics made it out; wall-clock did not (kTiming is opt-in).
  EXPECT_NE(serial.find("probe/phase"), std::string::npos);
  EXPECT_NE(serial.find("probe/only_mod3"), std::string::npos);
  EXPECT_EQ(serial.find("wall_s"), std::string::npos);
  EXPECT_EQ(serial.find("frame_us"), std::string::npos);
}

TEST(ObsJson, DumpParseRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,true,null,"s\"x"],"b":{"c":-3},"d":0.015625})";
  std::string err;
  const obs::JsonValue v = obs::parse_json(text, &err);
  ASSERT_TRUE(v.is_object()) << err;
  EXPECT_EQ(v.dump(), text);
  const obs::JsonValue* a = v.get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 5u);
  EXPECT_EQ(a->as_array()[4].as_string(), "s\"x");
}

TEST(ObsJson, ParseFailureReportsError) {
  std::string err;
  const obs::JsonValue v = obs::parse_json("{\"a\": ", &err);
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(err.empty());
  std::string err2;
  const obs::JsonValue trailing = obs::parse_json("1 x", &err2);
  EXPECT_TRUE(trailing.is_null());
  EXPECT_FALSE(err2.empty());
}

TEST(ObsSchema, ValidatorAcceptsAndRejects) {
  const obs::JsonValue schema = obs::parse_json(R"({
    "type": "object",
    "required": ["schema", "metrics"],
    "properties": {
      "schema": {"const": "jmb.bench_result.v1"},
      "metrics": {"type": "array", "items": {"type": "object",
                  "required": ["name"],
                  "properties": {"kind": {"enum": ["counter", "gauge"]}}}}
    }
  })");
  ASSERT_TRUE(schema.is_object());

  const obs::JsonValue good = obs::parse_json(
      R"({"schema":"jmb.bench_result.v1",)"
      R"("metrics":[{"name":"x","kind":"counter"}]})");
  EXPECT_TRUE(obs::validate_schema(schema, good).empty());

  const obs::JsonValue bad_const =
      obs::parse_json(R"({"schema":"nope","metrics":[]})");
  EXPECT_FALSE(obs::validate_schema(schema, bad_const).empty());

  const obs::JsonValue missing = obs::parse_json(R"({"metrics":[]})");
  EXPECT_FALSE(obs::validate_schema(schema, missing).empty());

  const obs::JsonValue bad_enum = obs::parse_json(
      R"({"schema":"jmb.bench_result.v1",)"
      R"("metrics":[{"name":"x","kind":"bogus"}]})");
  EXPECT_FALSE(obs::validate_schema(schema, bad_enum).empty());
}

TEST(ObsSchema, MinimumMaximumBoundNumericMembers) {
  const obs::JsonValue schema = obs::parse_json(R"({
    "type": "object",
    "properties": {
      "rate": {"type": "number", "minimum": 0, "maximum": 1},
      "depth": {"type": "integer", "minimum": 2}
    }
  })");
  ASSERT_TRUE(schema.is_object());
  EXPECT_TRUE(
      obs::validate_schema(schema, obs::parse_json(R"({"rate":0.5,"depth":8})"))
          .empty());
  EXPECT_TRUE(  // boundary values are inclusive
      obs::validate_schema(schema, obs::parse_json(R"({"rate":1,"depth":2})"))
          .empty());
  EXPECT_FALSE(
      obs::validate_schema(schema, obs::parse_json(R"({"rate":-0.1})"))
          .empty());
  EXPECT_FALSE(
      obs::validate_schema(schema, obs::parse_json(R"({"rate":1.5})")).empty());
  EXPECT_FALSE(
      obs::validate_schema(schema, obs::parse_json(R"({"depth":1})")).empty());
}

TEST(ObsSchema, StreamingObjectEmittedOnlyWhenSet) {
  obs::MetricRegistry reg;
  reg.counter("c").add(1.0);
  obs::BenchRunInfo info;
  info.figure = "streaming_throughput";
  info.seed = 3;

  // Without the flag the artifact stays byte-identical to pre-streaming
  // exports: no "streaming" member at all.
  const obs::JsonValue plain = obs::bench_result_doc(info, reg);
  EXPECT_EQ(plain.get("streaming"), nullptr);

  info.has_streaming = true;
  info.streaming.msamples_per_s = 12.5;
  info.streaming.deadline_miss_rate = 0.25;
  info.streaming.items = 40;
  info.streaming.deadline_misses = 10;
  info.streaming.total_msamples = 3.2;
  info.streaming.wall_s = 0.256;
  info.streaming.ring_depth = 8;
  info.streaming.stage_threads = 5;
  info.streaming.rt_factor = 0.0;
  const obs::JsonValue doc = obs::bench_result_doc(info, reg);
  const obs::JsonValue* streaming = doc.get("streaming");
  ASSERT_NE(streaming, nullptr);
  ASSERT_TRUE(streaming->is_object());
  ASSERT_NE(streaming->get("msamples_per_s"), nullptr);
  EXPECT_DOUBLE_EQ(streaming->get("msamples_per_s")->as_number(), 12.5);
  ASSERT_NE(streaming->get("deadline_miss_rate"), nullptr);
  EXPECT_DOUBLE_EQ(streaming->get("deadline_miss_rate")->as_number(), 0.25);

  // The emitted object satisfies the checked-in "streaming" schema shape.
  const obs::JsonValue schema = obs::parse_json(R"({
    "type": "object",
    "required": ["msamples_per_s", "deadline_miss_rate"],
    "properties": {
      "msamples_per_s": {"type": "number", "minimum": 0},
      "deadline_miss_rate": {"type": "number", "minimum": 0, "maximum": 1},
      "items": {"type": "integer", "minimum": 0},
      "deadline_misses": {"type": "integer", "minimum": 0},
      "ring_depth": {"type": "integer", "minimum": 2},
      "stage_threads": {"type": "integer", "minimum": 1, "maximum": 5}
    }
  })");
  const auto errors = obs::validate_schema(schema, *streaming);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(ObsStreaming, OpObsAndSummaryRegisterTimingMetrics) {
  obs::MetricRegistry reg;
  obs::StreamOpObs op(reg, 2);
  op.on_pop(3);
  op.on_pop(5);
  op.on_push_stall();
  const obs::MetricRegistry::Entry* depth = reg.find("stream/op2/queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->cls, obs::MetricClass::kTiming);
  EXPECT_DOUBLE_EQ(std::get<obs::Gauge>(depth->metric).value(), 5.0);
  const obs::MetricRegistry::Entry* hist =
      reg.find("stream/op2/queue_depth_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(std::get<obs::Histogram>(hist->metric).count(), 2u);
  const obs::MetricRegistry::Entry* stalls = reg.find("stream/op2/push_stalls");
  ASSERT_NE(stalls, nullptr);
  EXPECT_DOUBLE_EQ(std::get<obs::Counter>(stalls->metric).value(), 1.0);

  obs::StreamingStats s;
  s.msamples_per_s = 9.0;
  s.deadline_miss_rate = 0.5;
  obs::register_stream_summary(reg, s);
  const obs::MetricRegistry::Entry* ms = reg.find("stream/msamples_per_s");
  ASSERT_NE(ms, nullptr);
  EXPECT_EQ(ms->cls, obs::MetricClass::kTiming);
  EXPECT_DOUBLE_EQ(std::get<obs::Gauge>(ms->metric).value(), 9.0);
}

TEST(ObsSchema, BenchResultDocConformsToCheckedInShape) {
  obs::MetricRegistry reg;
  reg.counter("c").add(2.0);
  reg.gauge("g").set(1.5);
  reg.histogram("h", obs::kTimeUsBounds, obs::MetricClass::kTiming)
      .observe(3.0);
  obs::BenchRunInfo info;
  info.figure = "fig_test";
  info.seed = 1;
  info.params.emplace_back("n", 4.0);
  const obs::JsonValue doc = obs::bench_result_doc(info, reg, true);

  // Mirror of schemas/bench_result.schema.json (the smoke ctest runs the
  // real file through tools/validate_bench_result).
  const obs::JsonValue schema = obs::parse_json(R"({
    "type": "object",
    "required": ["schema", "figure", "seed", "params", "metrics"],
    "properties": {
      "schema": {"const": "jmb.bench_result.v1"},
      "figure": {"type": "string"},
      "seed": {"type": "integer"},
      "params": {"type": "object"},
      "metrics": {"type": "array", "minItems": 3, "items": {
        "type": "object",
        "required": ["name", "kind", "class"],
        "properties": {
          "kind": {"enum": ["counter", "gauge", "histogram"]},
          "class": {"enum": ["physics", "timing"]},
          "count": {"type": "integer"},
          "bounds": {"type": "array", "minItems": 1,
                     "items": {"type": "number"}},
          "counts": {"type": "array", "minItems": 2,
                     "items": {"type": "integer"}}
        }}}
    }
  })");
  ASSERT_TRUE(schema.is_object());
  const auto errors = obs::validate_schema(schema, doc);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(ObsExport, CsvHasHeaderAndSkipsTimingByDefault) {
  obs::MetricRegistry reg;
  reg.counter("a").add(3.0);
  reg.counter("t", obs::MetricClass::kTiming).add(1.0);
  const std::string csv = obs::registry_csv(reg);
  EXPECT_NE(csv.find("name,kind,class,count,sum,min,max,mean,p50,p90,p99\n"),
            std::string::npos);
  EXPECT_NE(csv.find("a,counter,physics"), std::string::npos);
  EXPECT_EQ(csv.find("t,counter,timing"), std::string::npos);
  const std::string with_timing = obs::registry_csv(reg, true);
  EXPECT_NE(with_timing.find("t,counter,timing"), std::string::npos);
}

TEST(ObsTrace, RingIsBoundedAndSnapshotsOldestFirst) {
  obs::TraceRecorder rec(4);
  for (std::uint64_t frame = 0; frame < 6; ++frame) {
    rec.record("stage", 0, frame, static_cast<double>(frame) * 10.0, 5.0);
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  const std::vector<obs::TraceSpan> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().frame, 2u);  // frames 0,1 were evicted
  EXPECT_EQ(spans.back().frame, 5u);
}

TEST(ObsTrace, ChromeTraceDumpParsesAndCarriesSpans) {
  obs::TraceRecorder rec(8);
  rec.record("precode", 3, 7, 100.0, 25.0);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  rec.write_chrome_trace(f);
  std::rewind(f);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::string err;
  const obs::JsonValue doc = obs::parse_json(text, &err);
  ASSERT_TRUE(doc.is_object()) << err;
  const obs::JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 1u);
  const obs::JsonValue& e = events->as_array()[0];
  ASSERT_NE(e.get("name"), nullptr);
  EXPECT_EQ(e.get("name")->as_string(), "precode");
  EXPECT_EQ(e.get("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(e.get("ts")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(e.get("dur")->as_number(), 25.0);
  EXPECT_DOUBLE_EQ(e.get("tid")->as_number(), 3.0);
}

// Evicting the oldest spans must be loud: the counter exports into a
// registry (kTiming, so default exports stay unchanged) and the Chrome
// dump carries a trailing "C" event with the same total.
TEST(ObsTrace, DroppedEventsExportWhenBoundIsHit) {
  obs::TraceRecorder rec(4);
  for (std::uint64_t frame = 0; frame < 6; ++frame) {
    rec.record("stage", 0, frame, static_cast<double>(frame) * 10.0, 5.0);
  }
  obs::MetricRegistry reg;
  rec.export_metrics(reg);
  const auto* recorded = reg.find("trace/recorded_events");
  ASSERT_NE(recorded, nullptr);
  EXPECT_EQ(std::get<obs::Gauge>(recorded->metric).value(), 6.0);
  const auto* dropped = reg.find("trace/dropped_events");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->cls, obs::MetricClass::kTiming);
  EXPECT_EQ(std::get<obs::Gauge>(dropped->metric).value(), 2.0);

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  rec.write_chrome_trace(f);
  std::rewind(f);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  EXPECT_NE(text.find("\"trace/dropped_events\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
}

// A recorder that never overflowed exports no dropped counter at all —
// the metric appears exactly when there is loss to report.
TEST(ObsTrace, NoDroppedEventsMetricWithoutLoss) {
  obs::TraceRecorder rec(8);
  rec.record("stage", 0, 0, 0.0, 1.0);
  obs::MetricRegistry reg;
  rec.export_metrics(reg);
  EXPECT_NE(reg.find("trace/recorded_events"), nullptr);
  EXPECT_EQ(reg.find("trace/dropped_events"), nullptr);
}

TEST(ObsTrace, ScopedStageTimerRecordsFlightSpanAndMetrics) {
  auto& flight = obs::flight::FlightRecorder::instance();
  if (!flight.enabled()) GTEST_SKIP() << "JMB_FLIGHT=0";
  obs::flight::FlightRing* ring = flight.local_ring();
  ASSERT_NE(ring, nullptr);
  const std::uint64_t written0 = ring->written();

  engine::StageMetricsSet set;
  const obs::ObsSink sink(&set.registry(), 3);
  { const engine::ScopedStageTimer timer(&set, "x", &sink, 7); }
  const engine::StageSnapshot snap = set.snapshot("x");
  EXPECT_EQ(snap.frames, 1u);
  ASSERT_NE(snap.frame_us, nullptr);
  EXPECT_EQ(snap.frame_us->count(), 1u);

  ASSERT_EQ(ring->written(), written0 + 1);
  const auto records = ring->snapshot(1);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, obs::flight::EventType::kSpan);
  EXPECT_EQ(flight.name_of(records[0].name), "x");
  // Without an explicit flow the batch identity (trial, frame) is used.
  EXPECT_EQ(records[0].flow, obs::flight::make_flow(3, 7));
}

}  // namespace
}  // namespace jmb
