// Tests for the waveform-level PHY: preambles, OFDM mod/demod, sync,
// channel estimation, and the full TX -> RX loopback chain.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.h"
#include "dsp/rng.h"
#include "phy/chanest.h"
#include "phy/frame.h"
#include "phy/modulation.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "phy/receiver.h"
#include "phy/sync.h"
#include "phy/transmitter.h"

namespace jmb::phy {
namespace {

ByteVec random_psdu(Rng& rng, std::size_t n) {
  ByteVec p(n);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

cvec add_noise(const cvec& x, double snr_db, Rng& rng, double signal_power) {
  const double nvar = signal_power / from_db(snr_db);
  cvec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] + rng.cgaussian(nvar);
  }
  return out;
}

TEST(Preamble, StfIsPeriodic16) {
  const cvec& s = stf_time();
  ASSERT_EQ(s.size(), kStfLen);
  for (std::size_t i = 0; i + 16 < s.size(); ++i) {
    EXPECT_NEAR(std::abs(s[i] - s[i + 16]), 0.0, 1e-12);
  }
}

TEST(Preamble, LtfGuardIsCyclic) {
  const cvec& l = ltf_time();
  ASSERT_EQ(l.size(), kLtfLen);
  // Guard = last 32 samples of the symbol; symbols repeat.
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(std::abs(l[i] - l[i + kNfft]), 0.0, 1e-12);
  }
  for (std::size_t i = 0; i < kNfft; ++i) {
    EXPECT_NEAR(std::abs(l[32 + i] - l[32 + kNfft + i]), 0.0, 1e-12);
  }
}

TEST(Preamble, LtfSpectrumIsPlusMinusOne) {
  const cvec& lf = ltf_freq();
  int used = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) {
      EXPECT_EQ(std::abs(lf[bin_of(k)]), 0.0);
      continue;
    }
    EXPECT_NEAR(std::abs(lf[bin_of(k)]), 1.0, 1e-12);
    ++used;
  }
  EXPECT_EQ(used, 52);
}

TEST(Ofdm, MapExtractRoundTrip) {
  Rng rng(1);
  const cvec data = rng.cgaussian_vec(kNumDataCarriers);
  const cvec freq = map_subcarriers(data, 3);
  const cvec back = extract_data(freq);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(back[i] - data[i]), 0.0, 1e-12);
  }
  // Pilots carry the polarity of symbol 3.
  const cvec pilots = extract_pilots(freq);
  const double pol = pilot_polarity(3);
  EXPECT_NEAR(pilots[0].real(), pol * 1.0, 1e-12);
  EXPECT_NEAR(pilots[3].real(), pol * -1.0, 1e-12);
}

TEST(Ofdm, ModulateDemodulateRoundTrip) {
  Rng rng(2);
  const cvec data = rng.cgaussian_vec(kNumDataCarriers);
  const cvec freq = map_subcarriers(data, 0);
  const cvec time = ofdm_modulate(freq);
  ASSERT_EQ(time.size(), kSymbolLen);
  // CP really is a cyclic prefix.
  for (std::size_t i = 0; i < kCpLen; ++i) {
    EXPECT_NEAR(std::abs(time[i] - time[i + kNfft]), 0.0, 1e-12);
  }
  const cvec rt = ofdm_demodulate(time);
  for (std::size_t b = 0; b < kNfft; ++b) {
    EXPECT_NEAR(std::abs(rt[b] - freq[b]), 0.0, 1e-9);
  }
}

TEST(Ofdm, CpSkipIntroducesKnownPhaseRamp) {
  Rng rng(3);
  const cvec freq = map_subcarriers(rng.cgaussian_vec(kNumDataCarriers), 0);
  const cvec time = ofdm_modulate(freq);
  const std::size_t skip = kCpLen - 4;  // window starts 4 samples early
  const cvec shifted = ofdm_demodulate(time, skip);
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    const std::size_t b = bin_of(k);
    // 4-sample early window rotates bin k by e^{-j 2 pi k 4/64}... verify
    // magnitude preserved and the ramp matches.
    EXPECT_NEAR(std::abs(shifted[b]), std::abs(freq[b]), 1e-9);
    const cplx expected = freq[b] * phasor(-kTwoPi * k * 4.0 / 64.0);
    EXPECT_NEAR(std::abs(shifted[b] - expected), 0.0, 1e-9) << k;
  }
}

TEST(Sync, DetectsPreambleInNoise) {
  Rng rng(4);
  cvec buf = rng.cgaussian_vec(500, 1e-4);  // noise floor
  const cvec pre = preamble_time();
  const std::size_t at = 137;
  for (std::size_t i = 0; i < pre.size(); ++i) buf[at + i] += pre[i];
  const auto det = detect_packet(buf);
  ASSERT_TRUE(det.has_value());
  EXPECT_NEAR(static_cast<double>(det->stf_start), static_cast<double>(at),
              16.0);
}

TEST(Sync, NoFalseDetectInPureNoise) {
  Rng rng(5);
  const cvec buf = rng.cgaussian_vec(2000, 1.0);
  const auto det = detect_packet(buf);
  EXPECT_FALSE(det.has_value());
}

TEST(Sync, CoarseCfoAccuracy) {
  Rng rng(6);
  const double fs = 10e6;
  for (double f : {-50e3, -8e3, 0.0, 3e3, 40e3}) {
    cvec stf = stf_time();
    for (std::size_t n = 0; n < stf.size(); ++n) {
      stf[n] *= phasor(kTwoPi * f * static_cast<double>(n) / fs);
      stf[n] += rng.cgaussian(1e-7);
    }
    EXPECT_NEAR(coarse_cfo_hz(stf, fs), f, 30.0) << f;
  }
}

TEST(Sync, FineCfoAccuracy) {
  Rng rng(7);
  const double fs = 10e6;
  const cvec& sym = ltf_symbol_time();
  for (double f : {-20e3, -1e3, 0.0, 2e3, 30e3}) {
    cvec two;
    two.insert(two.end(), sym.begin(), sym.end());
    two.insert(two.end(), sym.begin(), sym.end());
    for (std::size_t n = 0; n < two.size(); ++n) {
      two[n] *= phasor(kTwoPi * f * static_cast<double>(n) / fs);
      two[n] += rng.cgaussian(1e-7);
    }
    EXPECT_NEAR(fine_cfo_hz(two, fs), f, 25.0) << f;
  }
}

TEST(Sync, LocateLtfFindsSymbolStart) {
  Rng rng(8);
  cvec buf = rng.cgaussian_vec(600, 1e-4);
  const cvec& l = ltf_time();
  const std::size_t at = 200;  // guard starts here; symbol 1 at at+32
  for (std::size_t i = 0; i < l.size(); ++i) buf[at + i] += l[i];
  const auto pos = locate_ltf(buf, 150, 350);
  ASSERT_TRUE(pos.has_value());
  // Correlation peaks at symbol 1 or (identical) symbol 2.
  EXPECT_TRUE(*pos == at + 32 || *pos == at + 32 + kNfft) << *pos;
}

TEST(Sync, CorrectCfoInvertsRotation) {
  Rng rng(9);
  const double fs = 10e6, f = 12.5e3;
  const cvec x = rng.cgaussian_vec(256);
  cvec rotated(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    rotated[n] = x[n] * phasor(kTwoPi * f * static_cast<double>(n) / fs);
  }
  const cvec fixed = correct_cfo(rotated, f, fs);
  for (std::size_t n = 0; n < x.size(); ++n) {
    EXPECT_NEAR(std::abs(fixed[n] - x[n]), 0.0, 1e-9);
  }
}

TEST(ChanEst, FlatChannelEstimatesGain) {
  const cplx g{0.8, -0.6};
  cvec rx = ltf_freq();
  for (cplx& v : rx) v *= g;
  const ChannelEstimate est = estimate_from_ltf(rx);
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    EXPECT_NEAR(std::abs(est.at(k) - g), 0.0, 1e-12);
  }
  EXPECT_NEAR(est.mean_gain_power(), std::norm(g), 1e-12);
  EXPECT_NEAR(est.mean_phase(), std::arg(g), 1e-12);
}

TEST(ChanEst, MeanRatioRecoversRotation) {
  Rng rng(10);
  ChannelEstimate a;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    a.set(k, rng.cgaussian());
  }
  ChannelEstimate b = a;
  const double phi = 0.42;
  b.rotate(phi);
  const cplx ratio = b.mean_ratio(a);
  EXPECT_NEAR(std::arg(ratio), phi, 1e-12);
  EXPECT_NEAR(std::abs(ratio), 1.0, 1e-12);
}

TEST(ChanEst, AveragingReducesNoise) {
  Rng rng(11);
  ChannelEstimate truth;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    truth.set(k, cplx{1.0, 0.0});
  }
  const double nvar = 0.01;
  auto noisy = [&] {
    ChannelEstimate e = truth;
    for (int k = -26; k <= 26; ++k) {
      if (k == 0) continue;
      e.set(k, e.at(k) + rng.cgaussian(nvar));
    }
    return e;
  };
  double err1 = 0.0, err8 = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    err1 += std::norm(noisy().at(1) - truth.at(1));
    std::vector<ChannelEstimate> es;
    for (int i = 0; i < 8; ++i) es.push_back(noisy());
    err8 += std::norm(average_estimates(es).at(1) - truth.at(1));
  }
  EXPECT_LT(err8, err1 / 4.0);  // expect ~ err1/8
}

TEST(ChanEst, PilotTrackerMeasuresCommonPhase) {
  Rng rng(12);
  ChannelEstimate chan;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    chan.set(k, rng.cgaussian() + cplx{1.5, 0.0});
  }
  const double phi = 0.2, slope = 0.005;
  cvec freq = map_subcarriers(cvec(kNumDataCarriers, cplx{1.0, 0.0}), 4);
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    const std::size_t b = bin_of(k);
    freq[b] *= chan.h[b] * phasor(phi + slope * k);
  }
  const PilotPhase pp = track_pilots(freq, chan, 4);
  EXPECT_NEAR(pp.common, phi, 1e-9);
  EXPECT_NEAR(pp.slope, slope, 1e-9);

  cvec data = extract_data(freq);
  const auto& dc = data_carriers();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] /= chan.h[bin_of(dc[i])];
  }
  apply_phase_correction(data, pp);
  for (const cplx& d : data) {
    EXPECT_NEAR(std::abs(d - cplx{1.0, 0.0}), 0.0, 1e-9);
  }
}

TEST(Frame, SignalSymbolRoundTrip) {
  for (std::size_t rate = 0; rate < rate_set().size(); ++rate) {
    for (std::size_t len : {1u, 64u, 1500u, 4095u}) {
      const cvec sym = build_signal_symbol({rate, len});
      const auto dec = decode_signal_symbol(sym, 0.01);
      ASSERT_TRUE(dec.has_value());
      EXPECT_EQ(dec->rate_index, rate);
      EXPECT_EQ(dec->length, len);
    }
  }
  EXPECT_THROW((void)build_signal_symbol({0, 0}), std::invalid_argument);
  EXPECT_THROW((void)build_signal_symbol({0, 4096}), std::invalid_argument);
}

TEST(Frame, NDataSymbols) {
  const Mcs bpsk_half{Modulation::kBpsk, CodeRate::kHalf};
  // 16 + 8 + 6 = 30 bits at 24 dbps -> 2 symbols.
  EXPECT_EQ(n_data_symbols(1, bpsk_half), 2u);
  const Mcs q64{Modulation::kQam64, CodeRate::kThreeQuarters};
  // 16 + 12000 + 6 = 12022 bits at 216 dbps -> 56 symbols.
  EXPECT_EQ(n_data_symbols(1500, q64), 56u);
}

class PsduRoundTrip : public ::testing::TestWithParam<Mcs> {};

TEST_P(PsduRoundTrip, CleanChannel) {
  const Mcs mcs = GetParam();
  Rng rng(13);
  for (std::size_t len : {1u, 100u, 1500u}) {
    const ByteVec psdu = random_psdu(rng, len);
    const auto symbols = encode_psdu(psdu, mcs);
    EXPECT_EQ(symbols.size(), n_data_symbols(len, mcs));
    std::vector<std::vector<double>> llr;
    for (const cvec& s : symbols) {
      llr.push_back(demodulate_soft(s, mcs.modulation, 0.05));
    }
    const auto decoded = decode_psdu(llr, {rate_index(mcs), len});
    ASSERT_TRUE(decoded.has_value()) << mcs.name() << " len " << len;
    EXPECT_EQ(*decoded, psdu);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRates, PsduRoundTrip, ::testing::ValuesIn(rate_set()),
    [](const ::testing::TestParamInfo<Mcs>& info) {
      return "mcs" + std::to_string(info.index);
    });

TEST(Frame, ScramblerSeedRecovered) {
  // Different seeds must all decode (the receiver self-recovers the seed).
  const Mcs mcs{Modulation::kQpsk, CodeRate::kHalf};
  Rng rng(14);
  const ByteVec psdu = random_psdu(rng, 200);
  for (unsigned seed : {1u, 0x5Du, 0x7Fu, 0x2Au}) {
    const auto symbols = encode_psdu(psdu, mcs, seed);
    std::vector<std::vector<double>> llr;
    for (const cvec& s : symbols) {
      llr.push_back(demodulate_soft(s, mcs.modulation, 0.05));
    }
    const auto decoded = decode_psdu(llr, {rate_index(mcs), psdu.size()});
    ASSERT_TRUE(decoded.has_value()) << seed;
    EXPECT_EQ(*decoded, psdu);
  }
}

// Full loopback: TX waveform -> (delay + attenuation + CFO + noise) -> RX.
class LoopbackTest : public ::testing::TestWithParam<Mcs> {};

TEST_P(LoopbackTest, DecodesThroughImpairedChannel) {
  const Mcs mcs = GetParam();
  Rng rng(15 + rate_index(mcs));
  const PhyConfig cfg;
  const Transmitter tx(cfg);
  const Receiver rx(cfg);

  const ByteVec psdu = random_psdu(rng, 300);
  const TxFrame frame = tx.build_frame(psdu, mcs);
  const double sig_power = mean_power(frame.samples);

  // 30 dB SNR, 4.7 kHz CFO, flat channel with gain/phase, 50-sample delay.
  const cplx g{0.6, 0.45};
  const double cfo = 4.7e3;
  cvec buf(1200 + frame.samples.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = rng.cgaussian(sig_power / from_db(30.0));
  }
  for (std::size_t i = 0; i < frame.samples.size(); ++i) {
    const double t = static_cast<double>(i);
    buf[50 + i] +=
        frame.samples[i] * g * phasor(kTwoPi * cfo * t / cfg.sample_rate_hz);
  }

  const RxResult res = rx.receive(buf);
  ASSERT_TRUE(res.ok) << res.fail_reason << " (" << mcs.name() << ")";
  EXPECT_EQ(res.psdu, psdu);
  EXPECT_NEAR(res.preamble.cfo_hz, cfo, 200.0);
  EXPECT_GT(res.evm_snr_db, 15.0);
  EXPECT_NEAR(res.preamble.snr_db, 30.0, 6.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllRates, LoopbackTest, ::testing::ValuesIn(rate_set()),
    [](const ::testing::TestParamInfo<Mcs>& info) {
      return "mcs" + std::to_string(info.index);
    });

TEST(Loopback, FailsGracefullyAtVeryLowSnr) {
  Rng rng(16);
  const PhyConfig cfg;
  const Transmitter tx(cfg);
  const Receiver rx(cfg);
  const Mcs mcs{Modulation::kQam64, CodeRate::kThreeQuarters};
  const ByteVec psdu = random_psdu(rng, 500);
  const TxFrame frame = tx.build_frame(psdu, mcs);
  const cvec noisy =
      add_noise(frame.samples, -5.0, rng, mean_power(frame.samples));
  const RxResult res = rx.receive(noisy);
  // At -5 dB SNR 64-QAM 3/4 must not decode; and must not crash.
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.fail_reason.empty());
}

TEST(Loopback, MultipathChannelWithinCp) {
  Rng rng(17);
  const PhyConfig cfg;
  const Transmitter tx(cfg);
  const Receiver rx(cfg);
  const Mcs mcs{Modulation::kQam16, CodeRate::kHalf};
  const ByteVec psdu = random_psdu(rng, 400);
  const TxFrame frame = tx.build_frame(psdu, mcs);

  // Two-tap channel: direct + echo at 6 samples, well inside the 16-sample CP.
  const cplx h0{1.0, 0.0}, h1{0.35, -0.2};
  cvec buf(200 + frame.samples.size() + 10, cplx{});
  for (std::size_t i = 0; i < frame.samples.size(); ++i) {
    buf[100 + i] += frame.samples[i] * h0;
    buf[106 + i] += frame.samples[i] * h1;
  }
  const double sp = mean_power(frame.samples);
  for (auto& v : buf) v += rng.cgaussian(sp / from_db(25.0));

  const RxResult res = rx.receive(buf);
  ASSERT_TRUE(res.ok) << res.fail_reason;
  EXPECT_EQ(res.psdu, psdu);
}

}  // namespace
}  // namespace jmb::phy
