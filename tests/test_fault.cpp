// Fault-injection & resilience subsystem: plan parsing and round-trips,
// session timelines and trial-scoped determinism, the controller's health
// state machine, masked precoding, and end-to-end detection/failover
// through the sample-level engine and the resilient MAC variants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/link_model.h"
#include "core/precoder.h"
#include "engine/pipeline.h"
#include "engine/system.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "fault/resilience.h"
#include "net/mac.h"
#include "obs/json.h"
#include "phy/workspace.h"
#include "rate/effective_snr.h"

namespace jmb {
namespace {

// ---------------------------------------------------------------- plans

TEST(FaultPlan, KindNamesRoundTrip) {
  const fault::FaultKind kinds[] = {
      fault::FaultKind::kApCrash,       fault::FaultKind::kApRestart,
      fault::FaultKind::kSyncLoss,      fault::FaultKind::kSyncCorrupt,
      fault::FaultKind::kPhaseJump,     fault::FaultKind::kCfoStep,
      fault::FaultKind::kStaleChannel,  fault::FaultKind::kBackhaulLoss,
      fault::FaultKind::kBackhaulDelay,
  };
  for (const fault::FaultKind k : kinds) {
    fault::FaultKind back{};
    ASSERT_TRUE(fault::fault_kind_from_name(fault_kind_name(k), back));
    EXPECT_EQ(back, k);
  }
  fault::FaultKind out{};
  EXPECT_FALSE(fault::fault_kind_from_name("flux_capacitor", out));
}

TEST(FaultPlan, JsonRoundTrip) {
  std::vector<fault::FaultEvent> events;
  events.push_back({fault::FaultKind::kSyncLoss, 0.5, 1, 0.25, 0.0, 0.4});
  events.push_back({fault::FaultKind::kApCrash, 0.1, 2, 1.5, 0.0, 1.0});
  events.push_back({fault::FaultKind::kPhaseJump, 0.9, 3, 0.0, 1.25, 1.0});
  const fault::FaultPlan plan(std::move(events), /*seed=*/42);

  std::string err;
  const obs::JsonValue doc = obs::parse_json(plan.to_json(), &err);
  ASSERT_TRUE(err.empty()) << err;
  const fault::FaultPlan back = fault::FaultPlan::from_json(doc, &err);
  ASSERT_TRUE(err.empty()) << err;

  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.seed(), 42u);
  // Sorted by time on construction; the round-trip preserves that order.
  EXPECT_EQ(back.events()[0].kind, fault::FaultKind::kApCrash);
  EXPECT_DOUBLE_EQ(back.events()[0].t_s, 0.1);
  EXPECT_EQ(back.events()[0].ap, 2u);
  EXPECT_DOUBLE_EQ(back.events()[0].duration_s, 1.5);
  EXPECT_EQ(back.events()[1].kind, fault::FaultKind::kSyncLoss);
  EXPECT_DOUBLE_EQ(back.events()[1].probability, 0.4);
  EXPECT_EQ(back.events()[2].kind, fault::FaultKind::kPhaseJump);
  EXPECT_DOUBLE_EQ(back.events()[2].magnitude, 1.25);
}

TEST(FaultPlan, ParseRejectsMalformedDocuments) {
  const char* bad[] = {
      R"(42)",                                                  // not an object
      R"({"schema": "jmb.other.v9", "events": []})",            // wrong schema
      R"({"schema": "jmb.fault_plan.v1"})",                     // no events
      R"({"events": [{"kind": "warp_core", "t": 0}]})",         // unknown kind
      R"({"events": [{"kind": "ap_crash", "t": -1}]})",         // negative t
      R"({"events": [{"kind": "ap_crash"}]})",                  // missing t
      R"({"events": [{"kind": "sync_loss", "t": 0, "probability": 1.5}]})",
  };
  for (const char* text : bad) {
    std::string parse_err;
    const obs::JsonValue doc = obs::parse_json(text, &parse_err);
    std::string err;
    const fault::FaultPlan plan = fault::FaultPlan::from_json(doc, &err);
    EXPECT_TRUE(plan.empty()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(FaultPlan, WindowEndSemantics) {
  const fault::FaultPlan open = fault::FaultPlan::single_crash(1, 2.0);
  EXPECT_EQ(open.events()[0].end_s(), std::numeric_limits<double>::infinity());
  const fault::FaultPlan timed =
      fault::FaultPlan::single_crash(1, 2.0, /*outage_s=*/0.5);
  EXPECT_DOUBLE_EQ(timed.events()[0].end_s(), 2.5);
  // Point events never deactivate on their own.
  const fault::FaultEvent jump{fault::FaultKind::kPhaseJump, 1.0, 0, 3.0, 0.1,
                               1.0};
  EXPECT_EQ(jump.end_s(), std::numeric_limits<double>::infinity());
}

TEST(FaultPlan, RandomCrashesAreSeedDeterministic) {
  const auto a = fault::FaultPlan::random_crashes(20.0, 1.0, 4, 0.1, 7);
  const auto b = fault::FaultPlan::random_crashes(20.0, 1.0, 4, 0.1, 7);
  const auto c = fault::FaultPlan::random_crashes(20.0, 1.0, 4, 0.1, 8);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 5u);  // ~20 expected
  bool all_equal_c = a.size() == c.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, fault::FaultKind::kApCrash);
    EXPECT_DOUBLE_EQ(a.events()[i].t_s, b.events()[i].t_s);
    EXPECT_EQ(a.events()[i].ap, b.events()[i].ap);
    EXPECT_LT(a.events()[i].t_s, 1.0);
    EXPECT_LT(a.events()[i].ap, 4u);
    if (all_equal_c && a.events()[i].t_s != c.events()[i].t_s) {
      all_equal_c = false;
    }
  }
  EXPECT_FALSE(all_equal_c) << "different seeds produced identical schedules";
  EXPECT_TRUE(fault::FaultPlan::random_crashes(0.0, 1.0, 4, 0.1, 7).empty());
}

// -------------------------------------------------------------- sessions

TEST(FaultSession, CrashWindowTimeline) {
  const fault::FaultPlan plan =
      fault::FaultPlan::single_crash(1, 1.0, /*outage_s=*/2.0);
  fault::FaultSession s(plan, 3, /*trial_seed=*/1);
  s.advance_to(0.5);
  EXPECT_FALSE(s.ap_down(1));
  EXPECT_EQ(s.events_applied(), 0u);
  s.advance_to(1.0);
  EXPECT_TRUE(s.ap_down(1));
  EXPECT_FALSE(s.ap_down(0));
  EXPECT_EQ(s.n_aps_down(), 1u);
  EXPECT_EQ(s.events_applied(), 1u);
  EXPECT_DOUBLE_EQ(s.last_fault_t(), 1.0);
  s.advance_to(2.9);
  EXPECT_TRUE(s.ap_down(1));
  s.advance_to(3.0);
  EXPECT_FALSE(s.ap_down(1));
  EXPECT_EQ(s.n_aps_down(), 0u);
}

TEST(FaultSession, RestartPointEventRevivesCrashedAp) {
  std::vector<fault::FaultEvent> events;
  events.push_back({fault::FaultKind::kApCrash, 1.0, 0, 0.0, 0.0, 1.0});
  events.push_back({fault::FaultKind::kApRestart, 2.0, 0, 0.0, 0.0, 1.0});
  const fault::FaultPlan plan(std::move(events), 1);
  fault::FaultSession s(plan, 2, 1);
  s.advance_to(1.5);
  EXPECT_TRUE(s.ap_down(0));
  s.advance_to(2.5);
  EXPECT_FALSE(s.ap_down(0));
}

TEST(FaultSession, ClockIsMonotone) {
  const fault::FaultPlan plan = fault::FaultPlan::single_crash(0, 1.0);
  fault::FaultSession s(plan, 2, 1);
  s.advance_to(2.0);
  EXPECT_TRUE(s.ap_down(0));
  s.advance_to(0.5);  // going backwards must be a no-op
  EXPECT_GE(s.now(), 2.0);
  EXPECT_TRUE(s.ap_down(0));
}

TEST(FaultSession, SyncLossDrawsAreTrialScoped) {
  std::vector<fault::FaultEvent> events;
  events.push_back({fault::FaultKind::kSyncLoss, 0.0, 1, 10.0, 0.0, 0.5});
  const fault::FaultPlan plan(std::move(events), 3);

  const auto draws = [&plan](std::uint64_t trial) {
    fault::FaultSession s(plan, 2, trial);
    s.advance_to(1.0);
    std::vector<bool> out;
    out.reserve(128);
    for (int i = 0; i < 128; ++i) out.push_back(s.sync_header_lost(1));
    return out;
  };
  const auto a = draws(5), b = draws(5), c = draws(6);
  EXPECT_EQ(a, b);  // same (plan, trial) -> identical decision stream
  EXPECT_NE(a, c);  // different trials decorrelate (P[equal] = 2^-128)
  // The p = 0.5 coin actually flips both ways.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultSession, QuietPlanNeverDrawsOrImpairs) {
  // A crash-only plan must leave every probabilistic query inert: no loss,
  // no corruption, no backhaul trouble, regardless of how often asked.
  const fault::FaultPlan plan = fault::FaultPlan::single_crash(1, 0.5);
  fault::FaultSession s(plan, 3, 9);
  for (int i = 0; i < 50; ++i) {
    s.advance_to(static_cast<double>(i) * 0.05);
    EXPECT_FALSE(s.sync_header_lost(2));
    EXPECT_EQ(s.sync_header_phase_error(2), 0.0);
    EXPECT_FALSE(s.backhaul_packet_lost());
    EXPECT_EQ(s.backhaul_delay_s(), 0.0);
    EXPECT_FALSE(s.stale_channel());
  }
}

TEST(FaultSession, PointEventsReachTheHost) {
  struct Recorder : fault::FaultHost {
    std::vector<std::pair<std::size_t, double>> jumps, steps;
    std::vector<std::size_t> crashes, restarts;
    void on_ap_crash(std::size_t ap) override { crashes.push_back(ap); }
    void on_ap_restart(std::size_t ap) override { restarts.push_back(ap); }
    void on_phase_jump(std::size_t ap, double rad) override {
      jumps.emplace_back(ap, rad);
    }
    void on_cfo_step(std::size_t ap, double hz) override {
      steps.emplace_back(ap, hz);
    }
  };
  std::vector<fault::FaultEvent> events;
  events.push_back({fault::FaultKind::kPhaseJump, 0.1, 1, 0.0, 0.7, 1.0});
  events.push_back({fault::FaultKind::kCfoStep, 0.2, 2, 0.0, 150.0, 1.0});
  events.push_back({fault::FaultKind::kApCrash, 0.3, 0, 0.1, 0.0, 1.0});
  const fault::FaultPlan plan(std::move(events), 1);
  fault::FaultSession s(plan, 3, 1);
  Recorder host;
  s.advance_to(1.0, host);
  ASSERT_EQ(host.jumps.size(), 1u);
  EXPECT_EQ(host.jumps[0].first, 1u);
  EXPECT_DOUBLE_EQ(host.jumps[0].second, 0.7);
  ASSERT_EQ(host.steps.size(), 1u);
  EXPECT_EQ(host.steps[0].first, 2u);
  EXPECT_DOUBLE_EQ(host.steps[0].second, 150.0);
  EXPECT_EQ(host.crashes, (std::vector<std::size_t>{0}));
  EXPECT_EQ(host.restarts, (std::vector<std::size_t>{0}));  // window end
}

// ------------------------------------------------------------ controller

TEST(Resilience, MissesQuarantineAndStampDetectLatency) {
  fault::ResilienceController ctrl(4);
  ctrl.note_fault(1.0);
  ctrl.on_sync_result(2, false, 0.0, 0.0, 1.01);
  ctrl.on_sync_result(2, false, 0.0, 0.0, 1.02);
  EXPECT_FALSE(ctrl.quarantined(2));
  ctrl.on_sync_result(2, false, 0.0, 0.0, 1.03);
  EXPECT_TRUE(ctrl.quarantined(2));
  EXPECT_EQ(ctrl.health(2), fault::ApHealth::kQuarantined);
  EXPECT_EQ(ctrl.active()[2], 0);
  EXPECT_EQ(ctrl.active_count(), 3u);
  EXPECT_TRUE(ctrl.any_quarantined());
  EXPECT_TRUE(ctrl.needs_remeasure());
  EXPECT_EQ(ctrl.quarantine_events(), 1u);
  EXPECT_NEAR(ctrl.last_detect_latency_s(), 0.03, 1e-12);
}

TEST(Resilience, ResidualStrikesQuarantine) {
  fault::ResilienceController ctrl(3);
  for (int i = 0; i < 3; ++i) {
    ctrl.on_sync_result(1, true, /*residual_rad=*/0.9, 0.0, 0.1 * i);
  }
  EXPECT_TRUE(ctrl.quarantined(1));
  // A clean header in between resets the streak.
  fault::ResilienceController ctrl2(3);
  ctrl2.on_sync_result(1, true, 0.9, 0.0, 0.0);
  ctrl2.on_sync_result(1, true, 0.9, 0.0, 0.1);
  ctrl2.on_sync_result(1, true, 0.01, 0.0, 0.2);
  ctrl2.on_sync_result(1, true, 0.9, 0.0, 0.3);
  ctrl2.on_sync_result(1, true, 0.9, 0.0, 0.4);
  EXPECT_FALSE(ctrl2.quarantined(1));
}

TEST(Resilience, ProbationReadmissionNeedsRemeasure) {
  fault::ResilienceController ctrl(3);
  for (int i = 0; i < 3; ++i) ctrl.on_sync_result(1, false, 0.0, 0.0, 0.1);
  ASSERT_TRUE(ctrl.quarantined(1));
  ctrl.on_remeasure(0.2);  // quarantined (not probation): stays out
  EXPECT_TRUE(ctrl.quarantined(1));
  // Evidence returns: two clean headers move it to probation...
  ctrl.on_sync_result(1, true, 0.0, 0.0, 0.3);
  ctrl.on_sync_result(1, true, 0.0, 0.0, 0.4);
  EXPECT_EQ(ctrl.health(1), fault::ApHealth::kProbation);
  EXPECT_EQ(ctrl.active()[1], 0);  // probation still sits out
  EXPECT_TRUE(ctrl.needs_remeasure());
  // ...and the next re-measurement epoch readmits it.
  ctrl.on_remeasure(0.5);
  EXPECT_EQ(ctrl.health(1), fault::ApHealth::kHealthy);
  EXPECT_EQ(ctrl.active()[1], 1);
  EXPECT_FALSE(ctrl.needs_remeasure());
}

TEST(Resilience, RecoveryLatencyStampsOncePerQuarantine) {
  fault::ResilienceController ctrl(3);
  ctrl.note_fault(1.0);
  for (int i = 0; i < 3; ++i) ctrl.on_sync_result(2, false, 0.0, 0.0, 1.05);
  ctrl.on_recovered(1.25);
  EXPECT_EQ(ctrl.recoveries(), 1u);
  EXPECT_NEAR(ctrl.last_recover_latency_s(), 0.25, 1e-12);
  ctrl.on_recovered(2.0);  // idempotent until the next quarantine
  EXPECT_EQ(ctrl.recoveries(), 1u);
  EXPECT_NEAR(ctrl.last_recover_latency_s(), 0.25, 1e-12);
}

TEST(Resilience, LeadEvidenceIsIgnored) {
  fault::ResilienceController ctrl(3);
  for (int i = 0; i < 10; ++i) ctrl.on_sync_result(0, false, 0.0, 0.0, 0.1);
  EXPECT_FALSE(ctrl.quarantined(0));
  // Out-of-range APs are ignored too, not UB.
  ctrl.on_sync_result(17, false, 0.0, 0.0, 0.1);
}

TEST(Resilience, MarkDownAndLeadElection) {
  fault::ResilienceController ctrl(4);
  EXPECT_EQ(ctrl.elect_lead(0), 0u);
  ctrl.mark_down(0, 1.0);
  EXPECT_TRUE(ctrl.quarantined(0));
  EXPECT_EQ(ctrl.quarantine_events(), 1u);
  ctrl.mark_down(0, 2.0);  // only healthy APs can be quarantined again
  EXPECT_EQ(ctrl.quarantine_events(), 1u);
  EXPECT_EQ(ctrl.elect_lead(0), 1u);
  EXPECT_EQ(ctrl.elect_lead(2), 2u);  // preferred survivor keeps the role
  ctrl.mark_down(1, 3.0);
  ctrl.mark_down(2, 3.0);
  ctrl.mark_down(3, 3.0);
  EXPECT_EQ(ctrl.elect_lead(0), 4u);  // no survivors
}

// -------------------------------------------------------- masked precoder

TEST(MaskedPrecoder, FullMaskIsBitwiseIdenticalToBuild) {
  Rng rng(11);
  const auto h = core::random_channel_set(3, 4, rng);
  Workspace ws;
  const auto full = core::ZfPrecoder::build(h, ws);
  const std::vector<std::uint8_t> mask(4, 1);
  const auto masked = core::ZfPrecoder::build_masked(h, mask, ws);
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(masked.has_value());
  EXPECT_EQ(full->scale(), masked->scale());  // bitwise, not approximate
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    const CMatrix& a = full->weights(k);
    const CMatrix& b = masked->weights(k);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t c = 0; c < a.cols(); ++c) {
        EXPECT_EQ(a(r, c), b(r, c)) << "k=" << k;
      }
    }
  }
}

TEST(MaskedPrecoder, ExcludedApsGetZeroRows) {
  Rng rng(12);
  const auto h = core::random_channel_set(3, 5, rng);
  Workspace ws;
  const std::vector<std::uint8_t> mask{1, 0, 1, 1, 0};
  const auto p = core::ZfPrecoder::build_masked(h, mask, ws);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->n_tx(), 5u);
  EXPECT_EQ(p->n_streams(), 3u);
  EXPECT_GT(p->scale(), 0.0);
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    const CMatrix& w = p->weights(k);
    for (std::size_t c = 0; c < w.cols(); ++c) {
      EXPECT_EQ(w(1, c), cplx{}) << "k=" << k;
      EXPECT_EQ(w(4, c), cplx{}) << "k=" << k;
    }
  }
  // The active rows are exactly a reduced-H build, expanded back.
  core::ChannelMatrixSet reduced(3, 3);
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    std::size_t out = 0;
    for (std::size_t a = 0; a < 5; ++a) {
      if (!mask[a]) continue;
      for (std::size_t c = 0; c < 3; ++c) reduced.at(k)(c, out) = h.at(k)(c, a);
      ++out;
    }
  }
  const auto small = core::ZfPrecoder::build(reduced, ws);
  ASSERT_TRUE(small.has_value());
  EXPECT_EQ(p->scale(), small->scale());
  const std::size_t active_rows[] = {0, 2, 3};
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(p->weights(k)(active_rows[r], c), small->weights(k)(r, c));
      }
    }
  }
}

TEST(MaskedPrecoder, TooFewSurvivorsReturnsNullopt) {
  Rng rng(13);
  const auto h = core::random_channel_set(3, 4, rng);
  Workspace ws;
  const std::vector<std::uint8_t> mask{1, 0, 1, 0};  // 2 antennas, 3 streams
  EXPECT_FALSE(core::ZfPrecoder::build_masked(h, mask, ws).has_value());
}

// ----------------------------------------------------- engine integration

core::JointResult engine_joint_once(bool with_idle_fault) {
  core::SystemParams p;
  p.n_aps = 2;
  p.n_clients = 2;
  p.seed = 123;
  const double gain = core::JmbSystem::gain_for_snr_db(25.0, 1.0);
  core::JmbSystem sys(p, {{gain, gain}, {gain, gain}});

  const fault::FaultPlan plan =
      fault::FaultPlan::single_crash(1, /*t_s=*/1e9);  // beyond the horizon
  fault::FaultSession session(plan, 2, 55);
  fault::ResilienceController ctrl(2);
  if (with_idle_fault) {
    sys.attach_fault(&session);
    sys.attach_resilience(&ctrl);
  }
  if (!sys.run_measurement()) return {};
  sys.advance_time(5e-3);
  phy::ByteVec a(180, 0x5A), b(180, 0xC3);
  return sys.transmit_joint({a, b},
                            {phy::Modulation::kQpsk, phy::CodeRate::kHalf});
}

TEST(EngineFaults, IdlePlanIsBitIdenticalToNoPlan) {
  const core::JointResult plain = engine_joint_once(false);
  const core::JointResult faulted = engine_joint_once(true);
  ASSERT_EQ(plain.per_client.size(), faulted.per_client.size());
  EXPECT_EQ(plain.slaves_synced, faulted.slaves_synced);
  EXPECT_EQ(plain.precoder_scale, faulted.precoder_scale);  // bitwise
  for (std::size_t c = 0; c < plain.per_client.size(); ++c) {
    EXPECT_EQ(plain.per_client[c].ok, faulted.per_client[c].ok);
    EXPECT_EQ(plain.per_client[c].psdu, faulted.per_client[c].psdu);
    EXPECT_EQ(plain.per_client[c].evm_snr_db, faulted.per_client[c].evm_snr_db);
  }
}

TEST(EngineFaults, CrashQuarantineRemeasureRecover) {
  core::SystemParams p;
  p.n_aps = 4;
  p.n_clients = 3;
  p.seed = 77;
  const double gain = core::JmbSystem::gain_for_snr_db(25.0, 1.0);
  core::JmbSystem sys(
      p, std::vector<std::vector<double>>(3, std::vector<double>(4, gain)));
  ASSERT_TRUE(sys.run_measurement());
  sys.advance_time(2e-3);

  // Crash slave AP 2 just ahead of the next joint transmission.
  const fault::FaultPlan plan =
      fault::FaultPlan::single_crash(2, sys.now() + 1e-4);
  fault::FaultSession session(plan, 4, 5);
  fault::ResilienceParams rp;
  rp.sync_miss_threshold = 1;  // quarantine on the first missed header
  fault::ResilienceController ctrl(4, rp);
  sys.attach_fault(&session);
  sys.attach_resilience(&ctrl);
  sys.advance_time(1e-3);

  phy::ByteVec pa(150, 0x11), pb(150, 0x22), pc(150, 0x33);
  const phy::Mcs mcs{phy::Modulation::kQpsk, phy::CodeRate::kHalf};
  const core::JointResult r1 = sys.transmit_joint({pa, pb, pc}, mcs);
  // The crashed slave sent no sync header: only 2 of 3 slaves synced, and
  // the controller quarantined it from the missing-evidence stream.
  EXPECT_EQ(r1.slaves_synced, 2u);
  EXPECT_TRUE(ctrl.quarantined(2));
  EXPECT_TRUE(ctrl.needs_remeasure());

  // Re-measure on the surviving set: the masked precoder carries zero
  // weight on the dead AP, and joint service continues 3-on-3.
  ASSERT_TRUE(sys.run_measurement());
  EXPECT_FALSE(ctrl.needs_remeasure());
  sys.advance_time(2e-3);
  const core::JointResult r2 = sys.transmit_joint({pa, pb, pc}, mcs);
  EXPECT_EQ(r2.slaves_synced, 2u);
  ASSERT_EQ(r2.per_client.size(), 3u);
  for (const auto& c : r2.per_client) {
    EXPECT_TRUE(c.ok);
    // 3 surviving APs zero-forcing 3 streams leaves no array-gain margin,
    // so the post-beamforming SNR is modest — but frames must decode.
    EXPECT_GT(c.evm_snr_db, 0.0);
  }
  EXPECT_GE(ctrl.recoveries(), 1u);
  EXPECT_GT(ctrl.last_detect_latency_s(), 0.0);
}

// ------------------------------------------------------------ MAC layer

net::MaskedLinkStateFn graded_links(double full_db, double reduced_db) {
  return [=](std::size_t, const std::vector<std::uint8_t>& mask) {
    std::size_t active = 0;
    for (const std::uint8_t m : mask) active += m;
    const double snr_db = active >= mask.size() ? full_db : reduced_db;
    return net::LinkState{rvec(phy::kNumDataCarriers, from_db(snr_db))};
  };
}

TEST(ResilientMac, MatchesPlainJmbMacWithoutFaults) {
  net::MacParams p;
  p.duration_s = 0.3;
  p.seed = 11;
  const net::MacReport plain = net::run_jmb_mac(
      4, 4, 4,
      [](std::size_t) {
        return net::LinkState{rvec(phy::kNumDataCarriers, from_db(25.0))};
      },
      p);
  const net::MacReport res = net::run_jmb_mac_resilient(
      4, 4, 4, graded_links(25.0, 25.0), p, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(plain.total_goodput_mbps, res.total_goodput_mbps);
  EXPECT_EQ(plain.joint_transmissions, res.joint_transmissions);
  EXPECT_EQ(res.quarantines, 0u);
  EXPECT_EQ(res.lead_elections, 0u);
}

TEST(ResilientMac, DetectsSlaveCrashAndRecovers) {
  net::MacParams p;
  p.duration_s = 1.0;
  p.seed = 21;
  const net::MacReport clean = net::run_jmb_mac_resilient(
      4, 4, 4, graded_links(25.0, 20.0), p, nullptr, nullptr);

  const fault::FaultPlan plan = fault::FaultPlan::single_crash(2, 0.3);
  fault::FaultSession session(plan, 4, 21);
  fault::ResilienceController ctrl(4);
  const net::MacReport r = net::run_jmb_mac_resilient(
      4, 4, 4, graded_links(25.0, 20.0), p, &session, &ctrl);

  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.quarantines, 1u);
  EXPECT_TRUE(ctrl.quarantined(2));
  // Detection is a few sync-header slots: fast on the MAC timescale.
  EXPECT_GT(r.mean_time_to_detect_s, 0.0);
  EXPECT_LT(r.mean_time_to_detect_s, 0.1);
  EXPECT_GE(r.mean_time_to_recover_s, r.mean_time_to_detect_s);
  // Degraded but nowhere near an outage: service continued on 3 APs.
  EXPECT_LT(r.total_goodput_mbps, clean.total_goodput_mbps);
  EXPECT_GT(r.total_goodput_mbps, 0.5 * clean.total_goodput_mbps);
}

TEST(ResilientMac, DeadLeadTriggersElection) {
  net::MacParams p;
  p.duration_s = 1.0;
  p.seed = 31;
  const fault::FaultPlan plan = fault::FaultPlan::single_crash(0, 0.3);
  fault::FaultSession session(plan, 4, 31);
  fault::ResilienceController ctrl(4);
  const net::MacReport r = net::run_jmb_mac_resilient(
      4, 4, 4, graded_links(25.0, 20.0), p, &session, &ctrl);
  EXPECT_GE(r.lead_elections, 1u);
  EXPECT_TRUE(ctrl.quarantined(0));
  EXPECT_GT(r.total_goodput_mbps, 0.0);  // service survived the lead
}

TEST(ResilientMac, RestartReadmitsAfterProbation) {
  net::MacParams p;
  p.duration_s = 1.2;
  p.seed = 41;
  p.coherence_time_s = 0.1;
  const fault::FaultPlan plan =
      fault::FaultPlan::single_crash(1, 0.3, /*outage_s=*/0.3);
  fault::FaultSession session(plan, 4, 41);
  fault::ResilienceController ctrl(4);
  const net::MacReport r = net::run_jmb_mac_resilient(
      4, 4, 4, graded_links(25.0, 20.0), p, &session, &ctrl);
  EXPECT_EQ(r.quarantines, 1u);
  // The AP restarted at t = 0.6; clean evidence walked it through
  // probation and a re-measurement epoch readmitted it.
  EXPECT_EQ(ctrl.health(1), fault::ApHealth::kHealthy);
  EXPECT_EQ(ctrl.active_count(), 4u);
  EXPECT_GE(ctrl.recoveries(), 1u);
}

TEST(ResilientMac, BaselineReassociatesWithSurvivingAp) {
  // Client 0's best AP crashes; it falls back to the weaker survivor
  // instead of going dark — 802.11's per-AP independence.
  const std::vector<std::vector<double>> gains{{from_db(30.0), from_db(15.0)},
                                               {from_db(15.0), from_db(30.0)}};
  const auto links = [&gains](std::size_t c,
                              const std::vector<std::uint8_t>& up) {
    double best = 0.0;
    for (std::size_t a = 0; a < gains[c].size(); ++a) {
      if (up[a]) best = std::max(best, gains[c][a]);
    }
    return net::LinkState{rvec(phy::kNumDataCarriers, best)};
  };
  net::MacParams p;
  p.duration_s = 0.4;
  p.seed = 51;
  const net::MacReport clean =
      net::run_baseline_mac_resilient(2, 2, links, p, nullptr);
  const fault::FaultPlan plan = fault::FaultPlan::single_crash(0, 0.0);
  fault::FaultSession session(plan, 2, 51);
  const net::MacReport r =
      net::run_baseline_mac_resilient(2, 2, links, p, &session);
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_GT(r.per_client[0].delivered, 0u);
  EXPECT_GT(r.per_client[1].delivered, 0u);
  // The equal-share scheduler keeps packet counts level, but client 0's
  // 15 dB fallback link runs a slower rate, so total throughput drops.
  EXPECT_LT(r.total_goodput_mbps, clean.total_goodput_mbps);
}

TEST(ResilientMac, TotalBackhaulLossStarvesWithoutHanging) {
  std::vector<fault::FaultEvent> events;
  events.push_back({fault::FaultKind::kBackhaulLoss, 0.0, 0, 0.0, 0.0, 1.0});
  const fault::FaultPlan plan(std::move(events), 1);
  fault::FaultSession session(plan, 4, 61);
  net::MacParams p;
  p.duration_s = 0.2;
  p.seed = 61;
  const net::MacReport r = net::run_jmb_mac_resilient(
      4, 4, 4, graded_links(25.0, 20.0), p, &session, nullptr);
  // Every downlink packet died on the wire; the run still terminates.
  EXPECT_GT(r.backhaul_drops, 0u);
  EXPECT_DOUBLE_EQ(r.total_goodput_mbps, 0.0);
  EXPECT_EQ(r.joint_transmissions, 0u);
}

}  // namespace
}  // namespace jmb
