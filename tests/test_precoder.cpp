// Precoder zoo unit tests (PR 10): greedy user selection, the regularized
// solve on ill-conditioned channels, bitwise ZF parity with the legacy
// build path, and the CSI impairment model.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/link_model.h"
#include "core/precoder.h"
#include "core/types.h"
#include "dsp/rng.h"
#include "phy/precoding.h"
#include "phy/workspace.h"

namespace jmb {
namespace {

using core::ChannelMatrixSet;
using core::Precoder;
using core::PrecoderConfig;
using core::ZfPrecoder;
using phy::CsiImpairment;
using phy::PrecoderKind;

bool same_weights(const Precoder& a, const Precoder& b) {
  if (a.n_tx() != b.n_tx() || a.n_streams() != b.n_streams()) return false;
  const double sa = a.scale();
  const double sb = b.scale();
  if (std::memcmp(&sa, &sb, sizeof(double)) != 0) return false;
  const std::size_t n_sc = ChannelMatrixSet(1, 1).n_subcarriers();
  for (std::size_t k = 0; k < n_sc; ++k) {
    const CMatrix& wa = a.weights(k);
    const CMatrix& wb = b.weights(k);
    for (std::size_t r = 0; r < wa.rows(); ++r) {
      for (std::size_t c = 0; c < wa.cols(); ++c) {
        if (std::memcmp(&wa(r, c), &wb(r, c), sizeof(cplx)) != 0) {
          return false;
        }
      }
    }
  }
  return true;
}

double mean_sinr(const ChannelMatrixSet& h, const Precoder& p,
                 double noise) {
  const rvec no_phase_err(h.n_tx(), 0.0);
  const core::SinrReport rep =
      core::beamforming_sinr(h, p, no_phase_err, noise);
  double acc = 0.0;
  for (const double s : rep.sinr) acc += s;
  return acc / static_cast<double>(rep.sinr.size());
}

// ---------------------------------------------------------------- greedy

TEST(GreedySelect, DeterministicAscendingAndBounded) {
  Rng rng(42);
  const ChannelMatrixSet h = core::random_channel_set(6, 4, rng);
  const std::vector<std::size_t> sel = Precoder::greedy_select(h, 4);
  ASSERT_EQ(sel.size(), 4u);
  for (std::size_t i = 1; i < sel.size(); ++i) {
    EXPECT_LT(sel[i - 1], sel[i]);  // strictly ascending
  }
  for (const std::size_t u : sel) EXPECT_LT(u, 6u);
  // Bit-for-bit repeatable: no hidden RNG or iteration-order dependence.
  EXPECT_EQ(sel, Precoder::greedy_select(h, 4));
}

TEST(GreedySelect, KeepsEveryoneWhenStreamsSuffice) {
  Rng rng(7);
  const ChannelMatrixSet h = core::random_channel_set(3, 4, rng);
  const std::vector<std::size_t> sel = Precoder::greedy_select(h, 4);
  EXPECT_EQ(sel, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(GreedySelect, SkipsDuplicateRowPreferringLowerIndex) {
  // Client 2 is an exact copy of client 0: its residual against the span
  // of client 0 is numerically zero, so it must never be picked while a
  // linearly independent user remains.
  Rng rng(9);
  ChannelMatrixSet h = core::random_channel_set(4, 2, rng);
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    for (std::size_t a = 0; a < h.n_tx(); ++a) {
      h.at(k)(2, a) = h.at(k)(0, a);
    }
  }
  const std::vector<std::size_t> sel = Precoder::greedy_select(h, 2);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_TRUE(sel[0] != 2 && sel[1] != 2) << sel[0] << "," << sel[1];
}

TEST(GreedySelect, BuildKindDownselectsAndMatchesSubsetBuild) {
  Rng rng(11);
  const ChannelMatrixSet h = core::random_channel_set(6, 4, rng);
  const PrecoderConfig cfg;  // kZf
  const auto p = Precoder::build_kind(h, cfg);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->n_tx(), 4u);
  EXPECT_EQ(p->n_streams(), 4u);

  const std::vector<std::size_t> sel = Precoder::greedy_select(h, 4);
  ASSERT_EQ(std::vector<std::size_t>(p->selected_users().begin(),
                                     p->selected_users().end()),
            sel);
  // The down-selected build equals a direct build on the client subset.
  const ChannelMatrixSet sub = core::client_subset(h, sel);
  const auto direct = Precoder::build_kind(sub, cfg);
  ASSERT_TRUE(direct.has_value());
  EXPECT_TRUE(same_weights(*p, *direct));
}

TEST(ClientSubset, RejectsBadIndices) {
  Rng rng(13);
  const ChannelMatrixSet h = core::random_channel_set(3, 3, rng);
  const std::vector<std::size_t> out_of_range{0, 7};
  EXPECT_THROW((void)core::client_subset(h, out_of_range),
               std::invalid_argument);
  const std::vector<std::size_t> empty;
  EXPECT_THROW((void)core::client_subset(h, empty), std::invalid_argument);
}

// ------------------------------------------------- regularized vs plain ZF

TEST(PrecoderZoo, RegularizedBeatsZfOnIllConditionedChannel) {
  // Highly correlated user rows: the joint channel is near rank deficient,
  // so the ZF inverse needs huge weights and the global power scale
  // collapses. The regularized solve gives up perfect nulling for orders
  // of magnitude more delivered power.
  Rng rng(17);
  const std::vector<std::vector<double>> gains(4,
                                               std::vector<double>(4, 10.0));
  const ChannelMatrixSet h =
      core::correlated_channel_set(gains, /*corr=*/0.98, rng);

  const auto zf = Precoder::build_kind(h, PrecoderConfig{});
  PrecoderConfig rcfg;
  rcfg.kind = PrecoderKind::kRzf;
  rcfg.ridge = PrecoderConfig::mmse_ridge(4, 1.0);
  const auto rzf = Precoder::build_kind(h, rcfg);
  ASSERT_TRUE(zf.has_value());
  ASSERT_TRUE(rzf.has_value());
  EXPECT_EQ(zf->kind(), PrecoderKind::kZf);
  EXPECT_EQ(rzf->kind(), PrecoderKind::kRzf);

  // The power story: the regularized weights are dramatically cheaper.
  EXPECT_GT(rzf->scale(), 3.0 * zf->scale());
  // And it wins end-to-end: mean post-beamforming SINR at unit noise.
  EXPECT_GT(mean_sinr(h, *rzf, 1.0), 2.0 * mean_sinr(h, *zf, 1.0));
}

TEST(PrecoderZoo, ZfLeakageExplodesUnderCsiErrorWhereRzfHoldsUp) {
  // Build from impaired CSI, evaluate against the true channel: the
  // plain inverse amplifies the feedback error on an ill-conditioned
  // channel; the ridge caps the amplification.
  Rng rng(19);
  const std::vector<std::vector<double>> gains(4,
                                               std::vector<double>(4, 10.0));
  const ChannelMatrixSet h_true =
      core::correlated_channel_set(gains, /*corr=*/0.95, rng);
  ChannelMatrixSet h_csi = h_true;
  const CsiImpairment imp{/*staleness=*/0.02, /*feedback_bits=*/0};
  Rng csi_rng(23);
  for (std::size_t k = 0; k < h_csi.n_subcarriers(); ++k) {
    phy::impair_csi(h_csi.at(k), imp, csi_rng);
  }

  const auto zf = Precoder::build_kind(h_csi, PrecoderConfig{});
  PrecoderConfig rcfg;
  rcfg.kind = PrecoderKind::kRzf;
  rcfg.ridge = PrecoderConfig::mmse_ridge(
      4, 1.0 + phy::csi_error_power(imp) * 10.0);
  const auto rzf = Precoder::build_kind(h_csi, rcfg);
  ASSERT_TRUE(zf.has_value());
  ASSERT_TRUE(rzf.has_value());
  EXPECT_GT(mean_sinr(h_true, *rzf, 1.0), mean_sinr(h_true, *zf, 1.0));
}

TEST(PrecoderZoo, ConjugateIsHermitianTransposeTimesScale) {
  Rng rng(29);
  const ChannelMatrixSet h = core::random_channel_set(2, 3, rng);
  PrecoderConfig cfg;
  cfg.kind = PrecoderKind::kConj;
  const auto p = Precoder::build_kind(h, cfg);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind(), PrecoderKind::kConj);
  const double s = p->scale();
  ASSERT_GT(s, 0.0);
  for (std::size_t k = 0; k < h.n_subcarriers(); k += 17) {
    const CMatrix& w = p->weights(k);
    for (std::size_t a = 0; a < h.n_tx(); ++a) {
      for (std::size_t c = 0; c < h.n_clients(); ++c) {
        const cplx expect = std::conj(h.at(k)(c, a)) * s;
        EXPECT_NEAR(std::abs(w(a, c) - expect), 0.0, 1e-12);
      }
    }
  }
}

// --------------------------------------------------------- bitwise parity

TEST(PrecoderZoo, DefaultConfigBitwiseMatchesLegacyBuild) {
  Rng rng(31);
  const ChannelMatrixSet h = core::random_channel_set(3, 3, rng);
  const auto legacy = ZfPrecoder::build(h);
  const auto zoo = Precoder::build_kind(h, PrecoderConfig{});
  ASSERT_TRUE(legacy.has_value());
  ASSERT_TRUE(zoo.has_value());
  EXPECT_TRUE(same_weights(*legacy, *zoo));
  EXPECT_TRUE(zoo->selected_users().empty());

  Workspace ws;
  const auto ws_zoo = Precoder::build_kind(h, PrecoderConfig{}, ws);
  ASSERT_TRUE(ws_zoo.has_value());
  EXPECT_TRUE(same_weights(*legacy, *ws_zoo));

  // Full-mask masked build is the same bits too.
  const std::vector<std::uint8_t> all_active(h.n_tx(), 1);
  const auto masked =
      Precoder::build_masked(h, PrecoderConfig{}, all_active, ws);
  ASSERT_TRUE(masked.has_value());
  EXPECT_TRUE(same_weights(*legacy, *masked));
}

TEST(PrecoderZoo, RebuildKindMatchesFreshBuild) {
  Rng rng(37);
  const ChannelMatrixSet h1 = core::random_channel_set(3, 3, rng);
  const ChannelMatrixSet h2 = core::random_channel_set(3, 3, rng);
  PrecoderConfig cfg;
  cfg.kind = PrecoderKind::kRzf;
  cfg.ridge = 0.5;

  Workspace ws;
  auto p = Precoder::build_kind(h1, cfg, ws);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->rebuild_kind(h2, cfg, ws.pinv));
  const auto fresh = Precoder::build_kind(h2, cfg, ws);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_TRUE(same_weights(*p, *fresh));
}

// ------------------------------------------------------------- CSI model

TEST(CsiImpairment, NullImpairmentIsBitwiseNoOpAndLeavesRngUntouched) {
  Rng rng(41);
  const ChannelMatrixSet h = core::random_channel_set(2, 2, rng);
  CMatrix m = h.at(0);
  Rng imp_rng(5);
  Rng ref_rng(5);
  phy::impair_csi(m, CsiImpairment{}, imp_rng);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(std::memcmp(&m(r, c), &h.at(0)(r, c), sizeof(cplx)), 0);
    }
  }
  EXPECT_EQ(imp_rng.next_u64(), ref_rng.next_u64());
}

TEST(CsiImpairment, AgingIsDeterministicAndPowerPreservingOnAverage) {
  Rng rng(43);
  const ChannelMatrixSet h = core::random_channel_set(4, 4, rng);
  const CsiImpairment imp{/*staleness=*/0.5, /*feedback_bits=*/0};

  CMatrix a = h.at(0);
  CMatrix b = h.at(0);
  Rng ra(77);
  Rng rb(77);
  phy::impair_csi(a, imp, ra);
  phy::impair_csi(b, imp, rb);
  double p_in = 0.0;
  double p_out = 0.0;
  bool changed = false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(std::memcmp(&a(r, c), &b(r, c), sizeof(cplx)), 0);
      changed |= std::memcmp(&a(r, c), &h.at(0)(r, c), sizeof(cplx)) != 0;
      p_in += std::norm(h.at(0)(r, c));
      p_out += std::norm(a(r, c));
    }
  }
  EXPECT_TRUE(changed);
  // AR(1) with innovation variance matched per entry: power is conserved
  // in expectation (loose bound; 16 entries of one matrix).
  EXPECT_NEAR(p_out / p_in, 1.0, 0.75);
}

TEST(CsiImpairment, QuantizationErrorShrinksWithBits) {
  Rng rng(47);
  const ChannelMatrixSet h = core::random_channel_set(4, 4, rng);
  const auto err_at = [&](unsigned bits) {
    CMatrix m = h.at(0);
    phy::quantize_csi(m, bits);
    double e = 0.0;
    double p = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        e += std::norm(m(r, c) - h.at(0)(r, c));
        p += std::norm(h.at(0)(r, c));
      }
    }
    return e / p;
  };
  const double e4 = err_at(4);
  const double e6 = err_at(6);
  const double e8 = err_at(8);
  EXPECT_GT(e4, e6);
  EXPECT_GT(e6, e8);
  EXPECT_LT(e8, 1e-3);
  EXPECT_THROW(
      {
        CMatrix m = h.at(0);
        phy::quantize_csi(m, 1);  // a sign bit alone cannot code magnitude
      },
      std::invalid_argument);
}

TEST(CsiImpairment, ErrorPowerModelIsMonotone) {
  const CsiImpairment fresh{0.0, 0};
  EXPECT_EQ(phy::csi_error_power(fresh), 0.0);
  const CsiImpairment mild{0.01, 0};
  const CsiImpairment stale{0.1, 0};
  EXPECT_GT(phy::csi_error_power(stale), phy::csi_error_power(mild));
  const CsiImpairment coarse{0.0, 4};
  const CsiImpairment fine{0.0, 8};
  EXPECT_GT(phy::csi_error_power(coarse), phy::csi_error_power(fine));
  const CsiImpairment both{0.1, 4};
  EXPECT_GT(phy::csi_error_power(both), phy::csi_error_power(stale));
}

TEST(PrecoderKindNames, RoundTripAndAliases) {
  EXPECT_EQ(phy::parse_precoder_kind("zf"), PrecoderKind::kZf);
  EXPECT_EQ(phy::parse_precoder_kind("rzf"), PrecoderKind::kRzf);
  EXPECT_EQ(phy::parse_precoder_kind("mmse"), PrecoderKind::kRzf);
  EXPECT_EQ(phy::parse_precoder_kind("conj"), PrecoderKind::kConj);
  EXPECT_FALSE(phy::parse_precoder_kind("dirty-paper").has_value());
}

}  // namespace
}  // namespace jmb
