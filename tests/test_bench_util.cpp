// Strict seed/count parsing in bench_util.h: strtoull alone accepts
// leading whitespace, signs, and trailing garbage, and silently wraps
// "-1" to 2^64-1 — parse_u64 must reject all of that, and the *_or_die
// wrappers must exit(2) with a usage message instead of running a whole
// figure sweep on a garbled seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>

#include "bench_util.h"

namespace jmb::bench {
namespace {

TEST(ParseU64, AcceptsPlainDecimal) {
  std::uint64_t v = 99;
  ASSERT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(parse_u64("42", v));
  EXPECT_EQ(v, 42u);
  ASSERT_TRUE(parse_u64("18446744073709551615", v));  // 2^64 - 1
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsTrailingGarbage) {
  std::uint64_t v = 99;
  EXPECT_FALSE(parse_u64("5x", v));
  EXPECT_FALSE(parse_u64("5 ", v));
  EXPECT_FALSE(parse_u64("12.0", v));
  EXPECT_FALSE(parse_u64("1e3", v));
  EXPECT_EQ(v, 99u);  // failed parses leave the output untouched
}

TEST(ParseU64, RejectsSignsWhitespaceAndEmpty) {
  std::uint64_t v = 99;
  EXPECT_FALSE(parse_u64(nullptr, v));
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64(" 5", v));
  EXPECT_FALSE(parse_u64("+5", v));
  EXPECT_FALSE(parse_u64("-1", v));  // the strtoull 2^64-1 wrap case
  EXPECT_FALSE(parse_u64("0x10", v));
  EXPECT_EQ(v, 99u);
}

TEST(ParseU64, RejectsOverflow) {
  std::uint64_t v = 99;
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // 2^64
  EXPECT_FALSE(parse_u64("99999999999999999999999", v));
  EXPECT_EQ(v, 99u);
}

using BenchUtilDeathTest = ::testing::Test;

TEST(BenchUtilDeathTest, SeedOrDieExitsWithUsageOnGarbage) {
  EXPECT_EXIT(parse_seed_or_die("7fff", "argv[1]", "fig07"),
              ::testing::ExitedWithCode(2), "invalid seed '7fff'");
  EXPECT_EXIT(parse_seed_or_die("-3", "JMB_SEED", "fig07"),
              ::testing::ExitedWithCode(2), "usage: fig07");
}

TEST(BenchUtilDeathTest, SeedOrDieReturnsParsedValue) {
  EXPECT_EQ(parse_seed_or_die("123", "argv[1]", "fig07"), 123u);
}

TEST(BenchUtilDeathTest, CountOrDieExitsOnGarbage) {
  EXPECT_EXIT(parse_count_or_die("8q", "client count", "conference_room"),
              ::testing::ExitedWithCode(2), "invalid client count '8q'");
  EXPECT_EQ(parse_count_or_die("8", "client count", "conference_room"), 8u);
}

TEST(BenchUtilDeathTest, SeedFromRejectsBadArgvAndEnv) {
  {
    char a0[] = "bench";
    char a1[] = "5x";
    char* argv[] = {a0, a1, nullptr};
    EXPECT_EXIT(seed_from(2, argv), ::testing::ExitedWithCode(2),
                "invalid seed '5x' \\(from argv\\[1\\]\\)");
  }
  {
    char a0[] = "bench";
    char* argv[] = {a0, nullptr};
    ASSERT_EQ(setenv("JMB_SEED", "abc", 1), 0);
    EXPECT_EXIT(seed_from(1, argv), ::testing::ExitedWithCode(2),
                "invalid seed 'abc' \\(from JMB_SEED\\)");
    ASSERT_EQ(setenv("JMB_SEED", "77", 1), 0);
    EXPECT_EQ(seed_from(1, argv), 77u);
    ASSERT_EQ(unsetenv("JMB_SEED"), 0);
    EXPECT_EQ(seed_from(1, argv), 1u);  // documented default
  }
}

}  // namespace
}  // namespace jmb::bench
