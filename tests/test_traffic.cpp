// Tests for the traffic subsystem: deterministic flow generators,
// A-MPDU-style aggregation bounds, the scheduling policies (FIFO / PF /
// EDF), and the traffic-mode MAC end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "net/mac.h"
#include "net/queue.h"
#include "rate/effective_snr.h"
#include "traffic/flow.h"
#include "traffic/policy.h"

namespace jmb::traffic {
namespace {

using net::AggFrame;
using net::AggLimits;
using net::DownlinkQueue;
using net::Packet;

// ---- flow generators ----------------------------------------------------

TEST(Profile, NamedMixesScaleToPerUserRate) {
  const Profile poisson = make_profile("poisson", 12.0);
  ASSERT_EQ(poisson.flows.size(), 1u);
  EXPECT_EQ(poisson.flows[0].kind, FlowKind::kPoisson);
  EXPECT_NEAR(poisson.flows[0].rate_mbps, 12.0, 1e-12);

  const Profile video = make_profile("video", 6.0);
  ASSERT_EQ(video.flows.size(), 1u);
  EXPECT_EQ(video.flows[0].kind, FlowKind::kCbr);
  EXPECT_GT(video.flows[0].deadline_s, 0.0);

  const Profile mixed = make_profile("mixed", 10.0);
  ASSERT_EQ(mixed.flows.size(), 2u);
  double total = 0.0;
  for (const auto& f : mixed.flows) total += f.rate_mbps;
  EXPECT_NEAR(total, 10.0, 1e-12);

  EXPECT_THROW(make_profile("voip", 1.0), std::invalid_argument);
}

// Drain a source completely and return the arrival sequence as
// comparable tuples (time, user, flow, bytes).
std::vector<std::tuple<double, std::size_t, std::uint32_t, std::size_t>>
arrival_sequence(PacketSource& src, double horizon_s) {
  DownlinkQueue q;
  src.drain_until(horizon_s, q);
  std::vector<std::tuple<double, std::size_t, std::uint32_t, std::size_t>> out;
  while (auto p = q.pop()) {
    out.emplace_back(p->enqueue_s, p->client, p->flow, p->bytes);
  }
  return out;
}

TEST(PacketSource, SameSeedSameArrivals) {
  const Profile profile = make_profile("mixed", 8.0);
  PacketSource a(42, 3, profile, 0.5);
  PacketSource b(42, 3, profile, 0.5);
  const auto sa = arrival_sequence(a, 0.5);
  const auto sb = arrival_sequence(b, 0.5);
  EXPECT_FALSE(sa.empty());
  EXPECT_EQ(sa, sb);

  PacketSource c(43, 3, profile, 0.5);
  EXPECT_NE(sa, arrival_sequence(c, 0.5));
}

TEST(PacketSource, PerUserStreamsIndependentOfUserCount) {
  // Flow RNGs are seeded base ^ user ^ (flow << 16), so user u's arrival
  // process must not change when more users join the cell — that is what
  // keeps sharded/threaded runs byte-identical.
  const Profile profile = make_profile("web", 5.0);
  PacketSource two(7, 2, profile, 0.25);
  PacketSource three(7, 3, profile, 0.25);
  auto s2 = arrival_sequence(two, 0.25);
  auto s3 = arrival_sequence(three, 0.25);
  // Keep only users 0 and 1 from the 3-user run.
  std::erase_if(s3, [](const auto& t) { return std::get<1>(t) >= 2; });
  EXPECT_EQ(s2, s3);
}

TEST(PacketSource, IncrementalDrainMatchesOneShot) {
  const Profile profile = make_profile("poisson", 10.0);
  PacketSource one(9, 2, profile, 0.4);
  PacketSource many(9, 2, profile, 0.4);
  const auto whole = arrival_sequence(one, 0.4);

  DownlinkQueue q;
  for (double t = 0.0; t <= 0.4 + 1e-9; t += 0.01) many.drain_until(t, q);
  std::vector<std::tuple<double, std::size_t, std::uint32_t, std::size_t>> inc;
  while (auto p = q.pop()) {
    inc.emplace_back(p->enqueue_s, p->client, p->flow, p->bytes);
  }
  EXPECT_EQ(whole, inc);
  EXPECT_EQ(many.offered_packets(), whole.size());
}

TEST(PacketSource, ArrivalsOrderedAndPastDrainPoint) {
  const Profile profile = make_profile("mixed", 20.0);
  PacketSource src(11, 4, profile, 0.3);
  DownlinkQueue q;
  src.drain_until(0.1, q);
  double prev = 0.0;
  while (auto p = q.pop()) {
    EXPECT_GE(p->enqueue_s, prev);
    EXPECT_LE(p->enqueue_s, 0.1);
    prev = p->enqueue_s;
  }
  // The next pending arrival is strictly in the future...
  EXPECT_GT(src.next_arrival_s(), 0.1);
  // ...and the horizon exhausts the process.
  src.drain_until(10.0, q);
  EXPECT_EQ(src.next_arrival_s(), std::numeric_limits<double>::infinity());
}

TEST(PacketSource, OfferedRateTracksProfile) {
  // Long-run offered load should land near rate_mbps for every kind.
  for (const char* name : {"poisson", "web", "video"}) {
    const double rate = 16.0;
    PacketSource src(21, 1, make_profile(name, rate), 4.0);
    DownlinkQueue q;
    src.drain_until(4.0, q);
    const double mbps =
        static_cast<double>(src.offered_bytes()) * 8.0 / 4.0 / 1e6;
    EXPECT_NEAR(mbps, rate, rate * 0.25) << name;
  }
}

// ---- aggregation --------------------------------------------------------

TEST(Aggregation, FrameAndByteBoundsHold) {
  DownlinkQueue q;
  for (std::size_t i = 0; i < 8; ++i) {
    q.push({0, 1500, 0, 0.0, 0, i});
  }
  // Frame cap.
  AggFrame f = q.pop_aggregate(0, AggLimits{3, static_cast<std::size_t>(-1)});
  ASSERT_EQ(f.mpdus.size(), 3u);
  EXPECT_EQ(f.total_bytes, 4500u);
  EXPECT_EQ(f.mpdus[0].id, 0u);  // arrival order preserved
  EXPECT_EQ(f.mpdus[2].id, 2u);
  // Byte cap: 4000 bytes fits two 1500 B packets, not three.
  f = q.pop_aggregate(0, AggLimits{8, 4000});
  EXPECT_EQ(f.mpdus.size(), 2u);
  EXPECT_EQ(f.total_bytes, 3000u);
  // Head always taken, even when it alone exceeds the byte budget.
  f = q.pop_aggregate(0, AggLimits{8, 100});
  EXPECT_EQ(f.mpdus.size(), 1u);
  // Empty subqueue -> empty frame; other clients untouched.
  EXPECT_EQ(q.backlog(0), 2u);
  EXPECT_TRUE(q.pop_aggregate(5, AggLimits{4, 8000}).mpdus.empty());
}

TEST(Aggregation, DefaultLimitsReproduceSinglePacketPop) {
  DownlinkQueue q;
  q.push({2, 700, 0, 0.0, 0, 1});
  q.push({2, 900, 0, 0.0, 0, 2});
  const AggFrame f = q.pop_aggregate(2, AggLimits{});
  ASSERT_EQ(f.mpdus.size(), 1u);
  EXPECT_EQ(f.mpdus[0].id, 1u);
  EXPECT_EQ(f.total_bytes, 700u);
}

// ---- scheduling policies ------------------------------------------------

TEST(Policy, FifoMatchesPopJointOrder) {
  // The FIFO policy must reproduce pop_joint's client order bit-for-bit:
  // that is what keeps the null-scheduler and FifoScheduler paths
  // byte-identical. Exercise several rounds over a scrambled queue.
  Rng rng(5);
  DownlinkQueue a, b;
  for (std::size_t i = 0; i < 64; ++i) {
    const Packet p{static_cast<std::size_t>(rng.uniform_int(0, 7)), 1500, 0,
                   0.0, 0, i};
    a.push(p);
    b.push(p);
  }
  FifoScheduler fifo;
  while (!a.empty()) {
    const auto picks = fifo.select(b, 4, 0.0, nullptr);
    const auto batch = a.pop_joint(4);
    ASSERT_EQ(picks.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(picks[i], batch[i].client);
      const AggFrame f = b.pop_aggregate(picks[i], AggLimits{});
      ASSERT_EQ(f.mpdus.size(), 1u);
      EXPECT_EQ(f.mpdus[0].id, batch[i].id);
    }
  }
  EXPECT_TRUE(b.empty());
}

TEST(Policy, PfConvergesToEqualRatesForSymmetricUsers) {
  // Two always-backlogged clients with identical achievable rates, one
  // stream per slot: PF must alternate, giving equal long-run service.
  DownlinkQueue q;
  for (std::size_t i = 0; i < 4096; ++i) {
    q.push({i % 2, 1500, 0, 0.0, 0, i});
  }
  PfScheduler pf(0.05);
  const net::RateHintFn hint = [](std::size_t) { return 24.0; };
  std::size_t served[2] = {0, 0};
  const double slot_s = 1e-3;
  for (int s = 0; s < 1000 && !q.empty(); ++s) {
    const auto picks = pf.select(q, 1, s * slot_s, &hint);
    ASSERT_EQ(picks.size(), 1u);
    const AggFrame f = q.pop_aggregate(picks[0], AggLimits{});
    ++served[picks[0]];
    pf.on_served(picks[0], static_cast<double>(f.total_bytes), slot_s);
    pf.on_slot(slot_s);
  }
  EXPECT_NEAR(static_cast<double>(served[0]), static_cast<double>(served[1]),
              1.0);
  EXPECT_NEAR(pf.ewma_mbps(0), pf.ewma_mbps(1), 0.25);
  EXPECT_GT(pf.ewma_mbps(0), 1.0);  // filter actually charged
}

TEST(Policy, PfPrioritizesStarvedClient) {
  DownlinkQueue q;
  q.push({0, 1500, 0, 0.0, 0, 1});
  q.push({1, 1500, 0, 0.0, 0, 2});
  PfScheduler pf(0.05);
  // Serve client 0 heavily without ever serving client 1.
  for (int s = 0; s < 50; ++s) {
    pf.on_served(0, 1500.0, 1e-3);
    pf.on_slot(1e-3);
  }
  const auto picks = pf.select(q, 2, 0.05, nullptr);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 1u);  // starved client outranks the well-served one
  EXPECT_EQ(picks[1], 0u);
}

TEST(Policy, EdfNeverInvertsReadyDeadlines) {
  // Head-of-line deadlines scrambled across clients: the selection must
  // come out in non-decreasing deadline order, deadline-free (0) last,
  // and ties must keep FIFO order. Randomized rounds to cover shuffles.
  Rng rng(13);
  EdfScheduler edf;
  for (int round = 0; round < 20; ++round) {
    DownlinkQueue q;
    const std::size_t n = 8;
    for (std::size_t c = 0; c < n; ++c) {
      Packet p{c, 1500, 0, 0.0, 0, c};
      // ~1 in 4 packets best-effort, the rest with deadlines in [10,110] ms.
      const int roll = rng.uniform_int(0, 3);
      p.deadline_s = roll == 0 ? 0.0 : 0.01 + 0.1 * rng.uniform();
      q.push(p);
    }
    const auto picks = edf.select(q, n, 0.0, nullptr);
    ASSERT_EQ(picks.size(), n);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    double prev = -1.0;
    for (const std::size_t c : picks) {
      const double d = q.front_of(c)->deadline_s;
      const double eff = d <= 0.0 ? kInf : d;
      EXPECT_GE(eff, prev);
      prev = eff;
    }
  }
}

TEST(Policy, FactoryMapsNamesAndRejectsUnknown) {
  EXPECT_EQ(make_scheduler("fifo")->name(), "fifo");
  EXPECT_EQ(make_scheduler("pf")->name(), "pf");
  EXPECT_EQ(make_scheduler("edf")->name(), "edf");
  EXPECT_THROW(make_scheduler("round-robin"), std::invalid_argument);
}

// ---- traffic-mode MAC end to end ----------------------------------------

net::LinkStateFn flat_links(double snr_db) {
  return [snr_db](std::size_t) {
    return net::LinkState{rvec(phy::kNumDataCarriers, from_db(snr_db))};
  };
}

net::MacParams base_traffic_params() {
  net::MacParams p;
  p.duration_s = 0.2;
  p.saturated = false;
  p.record_latency = true;
  p.agg = AggLimits{4, 8000};
  return p;
}

TEST(TrafficMac, FlowsAccountedAndDeterministic) {
  const Profile profile = make_profile("mixed", 10.0);
  const auto run = [&](net::Scheduler* sched) {
    PacketSource src(99, 4, profile, 0.2);
    net::MacParams p = base_traffic_params();
    p.traffic = &src;
    p.scheduler = sched;
    return net::run_jmb_mac(4, 4, 4, flat_links(25.0), p);
  };
  PfScheduler pf_a, pf_b;
  const net::MacReport a = run(&pf_a);
  const net::MacReport b = run(&pf_b);

  EXPECT_FALSE(a.flows.empty());
  EXPECT_GT(a.offered_packets, 0u);
  std::size_t delivered = 0, dropped = 0;
  for (const auto& f : a.flows) {
    delivered += f.delivered;
    dropped += f.dropped;
  }
  EXPECT_LE(delivered + dropped, a.offered_packets);
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(a.aggregated_mpdus, 0u);  // deep arrivals actually aggregate
  EXPECT_GT(a.total_goodput_mbps, 0.0);

  // Same seed, fresh scheduler state: bit-identical accounting.
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].delivered, b.flows[i].delivered);
    EXPECT_EQ(a.flows[i].delivered_bytes, b.flows[i].delivered_bytes);
    EXPECT_EQ(a.flows[i].deadline_misses, b.flows[i].deadline_misses);
    EXPECT_DOUBLE_EQ(a.flows[i].mean_latency_s, b.flows[i].mean_latency_s);
  }
  EXPECT_DOUBLE_EQ(a.total_goodput_mbps, b.total_goodput_mbps);
}

TEST(TrafficMac, NullSchedulerMatchesFifoPolicy) {
  // MacParams::scheduler == nullptr is documented as "FIFO"; running the
  // explicit FifoScheduler must reproduce it exactly.
  const Profile profile = make_profile("poisson", 12.0);
  const auto run = [&](net::Scheduler* sched) {
    PacketSource src(123, 3, profile, 0.2);
    net::MacParams p = base_traffic_params();
    p.traffic = &src;
    p.scheduler = sched;
    return net::run_jmb_mac(4, 3, 3, flat_links(22.0), p);
  };
  FifoScheduler fifo;
  const net::MacReport implicit = run(nullptr);
  const net::MacReport explicit_fifo = run(&fifo);
  ASSERT_EQ(implicit.flows.size(), explicit_fifo.flows.size());
  for (std::size_t i = 0; i < implicit.flows.size(); ++i) {
    EXPECT_EQ(implicit.flows[i].delivered, explicit_fifo.flows[i].delivered);
    EXPECT_EQ(implicit.flows[i].delivered_bytes,
              explicit_fifo.flows[i].delivered_bytes);
    EXPECT_DOUBLE_EQ(implicit.flows[i].mean_latency_s,
                     explicit_fifo.flows[i].mean_latency_s);
  }
  EXPECT_DOUBLE_EQ(implicit.total_goodput_mbps,
                   explicit_fifo.total_goodput_mbps);
  EXPECT_EQ(implicit.joint_transmissions, explicit_fifo.joint_transmissions);
}

TEST(TrafficMac, BaselineTrafficModeRuns) {
  const Profile profile = make_profile("video", 4.0);
  PacketSource src(55, 2, profile, 0.2);
  net::MacParams p = base_traffic_params();
  p.traffic = &src;
  const net::MacReport r = net::run_baseline_mac(2, flat_links(20.0), p);
  EXPECT_FALSE(r.flows.empty());
  EXPECT_EQ(r.joint_transmissions, 0u);
  std::size_t delivered = 0;
  for (const auto& f : r.flows) delivered += f.delivered;
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace jmb::traffic
