// Effective SNR (Halperin et al.): collapse a frequency-selective set of
// per-subcarrier SNRs into the single flat-channel SNR that would produce
// the same average uncoded BER, per constellation. Rate selection then
// compares the effective SNR against per-rate thresholds.
#pragma once

#include <optional>

#include "dsp/types.h"
#include "phy/params.h"

namespace jmb::rate {

/// Effective SNR (linear) for a constellation given per-subcarrier SNRs.
[[nodiscard]] double effective_snr(phy::Modulation m,
                                   const rvec& subcarrier_snr);

/// Effective SNR in dB from per-subcarrier SNRs in linear units.
[[nodiscard]] double effective_snr_db(phy::Modulation m,
                                      const rvec& subcarrier_snr);

/// Minimum effective SNR (dB) required to run each entry of
/// phy::rate_set() at high delivery probability. Derived from the uncoded
/// BER the 802.11 convolutional code needs at each coding rate; matches
/// our PHY's measured waterfall within ~1 dB.
[[nodiscard]] const rvec& rate_thresholds_db();

/// Highest rate_set() index whose threshold is met, or nullopt if even the
/// base rate won't decode.
[[nodiscard]] std::optional<std::size_t> select_rate(
    const rvec& subcarrier_snr);

/// Same, from a single flat SNR in dB.
[[nodiscard]] std::optional<std::size_t> select_rate_flat(double snr_db);

}  // namespace jmb::rate
