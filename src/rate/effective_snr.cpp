#include "rate/effective_snr.h"

#include <algorithm>
#include <stdexcept>

#include "rate/ber.h"

namespace jmb::rate {

double effective_snr(phy::Modulation m, const rvec& subcarrier_snr) {
  if (subcarrier_snr.empty()) {
    throw std::invalid_argument("effective_snr: no subcarriers");
  }
  double mean_ber = 0.0;
  for (double s : subcarrier_snr) {
    mean_ber += ber(m, std::max(s, 0.0));
  }
  mean_ber /= static_cast<double>(subcarrier_snr.size());
  // Clamp away from the solver's domain edges.
  mean_ber = std::clamp(mean_ber, 1e-15, 0.499);
  return snr_for_ber(m, mean_ber);
}

double effective_snr_db(phy::Modulation m, const rvec& subcarrier_snr) {
  return to_db(effective_snr(m, subcarrier_snr));
}

const rvec& rate_thresholds_db() {
  // Required effective SNR per rate_set() entry, anchored to 802.11a
  // receiver-sensitivity spacing and validated against this repo's PHY
  // waterfalls (tests/test_rate.cpp crosschecks the ordering and spacing).
  static const rvec kThresholds{4.0, 6.0, 7.0, 9.5, 12.5, 16.0, 19.5, 21.0};
  return kThresholds;
}

std::optional<std::size_t> select_rate(const rvec& subcarrier_snr) {
  const auto& rates = phy::rate_set();
  const auto& thr = rate_thresholds_db();
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double eff = effective_snr_db(rates[i].modulation, subcarrier_snr);
    if (eff >= thr[i]) best = i;
  }
  return best;
}

std::optional<std::size_t> select_rate_flat(double snr_db) {
  return select_rate(rvec(phy::kNumDataCarriers, from_db(snr_db)));
}

}  // namespace jmb::rate
