// Airtime accounting: how long frames, sync headers, channel-measurement
// exchanges and feedback occupy the medium. Feeds throughput computations
// for both the 802.11 baseline and JMB (including JMB's measurement
// overhead, amortized over the channel coherence time as in Section 5).
#pragma once

#include "phy/params.h"

namespace jmb::rate {

struct AirtimeParams {
  double sample_rate_hz = 10e6;
  /// Software/hardware turnaround between the lead's sync header and the
  /// joint transmission (the paper used 150 us on USRP2s).
  double turnaround_s = 150e-6;
  /// Interleaved channel-measurement rounds (repetitions for averaging).
  std::size_t measurement_rounds = 2;
  /// Rate-set index used to send channel feedback frames.
  std::size_t feedback_rate_index = 2;  // QPSK 1/2
  /// Bytes to encode one complex channel coefficient in feedback.
  // 8-bit I + 8-bit Q, as CSI feedback compresses
  std::size_t bytes_per_coefficient = 2;
};

/// Airtime of one standard frame: preamble + SIGNAL + data symbols.
[[nodiscard]] double frame_airtime_s(std::size_t psdu_bytes,
                                     const phy::Mcs& mcs,
                                     double sample_rate_hz);

/// Airtime of a JMB joint data transmission: lead sync header + turnaround
/// + joint LTF + SIGNAL + data symbols.
[[nodiscard]] double joint_frame_airtime_s(std::size_t psdu_bytes,
                                           const phy::Mcs& mcs,
                                           const AirtimeParams& p);

/// Airtime of one JMB channel-measurement phase with `n_aps` APs and
/// `n_clients` clients: sync header + interleaved measurement symbols +
/// per-client feedback frames.
[[nodiscard]] double measurement_airtime_s(std::size_t n_aps,
                                           std::size_t n_clients,
                                           const AirtimeParams& p);

}  // namespace jmb::rate
