#include "rate/per.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jmb::rate {

double frame_error_prob(const rvec& subcarrier_snr, std::size_t rate_index,
                        std::size_t psdu_bytes) {
  if (rate_index >= phy::rate_set().size()) {
    throw std::invalid_argument("frame_error_prob: bad rate index");
  }
  const phy::Modulation m = phy::rate_set()[rate_index].modulation;
  const double eff_db = effective_snr_db(m, subcarrier_snr);
  const double margin = eff_db - rate_thresholds_db()[rate_index];
  // Waterfall anchored at 10% PER for 1500 bytes, one decade per dB.
  double per = 0.1 * std::pow(10.0, -margin);
  // Longer frames expose more bits; shorter ones fewer (linear in length
  // for small PER).
  per *= static_cast<double>(psdu_bytes) / 1500.0;
  return std::clamp(per, 0.0, 1.0);
}

double frame_error_prob_flat(double snr_db, std::size_t rate_index,
                             std::size_t psdu_bytes) {
  return frame_error_prob(rvec(phy::kNumDataCarriers, from_db(snr_db)),
                          rate_index, psdu_bytes);
}

}  // namespace jmb::rate
