#include "rate/airtime.h"

#include "phy/frame.h"

namespace jmb::rate {

double frame_airtime_s(std::size_t psdu_bytes, const phy::Mcs& mcs,
                       double sample_rate_hz) {
  const std::size_t samples =
      phy::kPreambleLen +
      (1 + phy::n_data_symbols(psdu_bytes, mcs)) * phy::kSymbolLen;
  return static_cast<double>(samples) / sample_rate_hz;
}

double joint_frame_airtime_s(std::size_t psdu_bytes, const phy::Mcs& mcs,
                             const AirtimeParams& p) {
  const std::size_t samples =
      phy::kPreambleLen +  // lead sync header
      phy::kLtfLen +       // jointly precoded LTF
      (1 + phy::n_data_symbols(psdu_bytes, mcs)) * phy::kSymbolLen;
  return static_cast<double>(samples) / p.sample_rate_hz + p.turnaround_s;
}

double measurement_airtime_s(std::size_t n_aps, std::size_t n_clients,
                             const AirtimeParams& p) {
  // Over-the-air measurement: sync header, then `rounds` interleaved sweeps
  // of one 80-sample measurement symbol per AP.
  const std::size_t meas_samples =
      phy::kPreambleLen +
      p.measurement_rounds * n_aps * phy::kSymbolLen;
  double t = static_cast<double>(meas_samples) / p.sample_rate_hz;

  // Feedback: each client reports n_aps * 52 coefficients plus its noise
  // floor; sent as one frame per client at the feedback rate.
  const std::size_t bytes =
      n_aps * 52 * p.bytes_per_coefficient + 8;
  const phy::Mcs& fb = phy::rate_set()[p.feedback_rate_index];
  for (std::size_t c = 0; c < n_clients; ++c) {
    t += frame_airtime_s(bytes, fb, p.sample_rate_hz);
  }
  return t;
}

}  // namespace jmb::rate
