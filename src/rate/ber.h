// AWGN bit-error-rate models per constellation — the basis of effective-SNR
// rate selection (Halperin et al., SIGCOMM'10), which the paper adopts for
// JMB ("MegaMIMO uses the effective SNR algorithm", Section 9).
#pragma once

#include "phy/params.h"

namespace jmb::rate {

/// Gaussian tail Q(x) = P(N(0,1) > x).
[[nodiscard]] double q_function(double x);

/// Uncoded bit error probability at symbol SNR `snr` (linear, Es/N0) for
/// one constellation, using the standard Gray-mapping approximations.
[[nodiscard]] double ber(phy::Modulation m, double snr);

/// Inverse of ber() in SNR: the symbol SNR at which the constellation hits
/// `target_ber`. Solved by bisection; clamped to [1e-6, 1e9].
[[nodiscard]] double snr_for_ber(phy::Modulation m, double target_ber);

}  // namespace jmb::rate
