#include "rate/ber.h"

#include <cmath>
#include <stdexcept>

namespace jmb::rate {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double ber(phy::Modulation m, double snr) {
  if (snr < 0) throw std::invalid_argument("ber: negative SNR");
  using phy::Modulation;
  switch (m) {
    case Modulation::kBpsk:
      return q_function(std::sqrt(2.0 * snr));
    case Modulation::kQpsk:
      return q_function(std::sqrt(snr));
    case Modulation::kQam16: {
      // (4/log2 M)(1 - 1/sqrt M) Q(sqrt(3 snr/(M-1))), M = 16.
      return 0.75 * q_function(std::sqrt(snr / 5.0));
    }
    case Modulation::kQam64: {
      // M = 64.
      return (7.0 / 12.0) * q_function(std::sqrt(snr / 21.0));
    }
  }
  throw std::logic_error("ber: bad modulation");
}

double snr_for_ber(phy::Modulation m, double target_ber) {
  if (target_ber <= 0.0 || target_ber >= 0.5) {
    throw std::invalid_argument("snr_for_ber: target must be in (0, 0.5)");
  }
  double lo = 1e-6, hi = 1e9;
  for (int it = 0; it < 200; ++it) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    if (ber(m, mid) > target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

}  // namespace jmb::rate
