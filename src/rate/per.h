// Packet-error-rate model: maps effective SNR margin over the rate
// threshold to a frame delivery probability with the steep waterfall
// characteristic of convolutionally-coded OFDM.
#pragma once

#include "rate/effective_snr.h"

namespace jmb::rate {

/// Frame error probability for a given rate at the given per-subcarrier
/// SNRs. At threshold: ~10% PER; each dB of margin cuts PER by ~10x; PER
/// saturates at 1 a little below threshold. Length scales the error
/// exposure relative to the 1500-byte reference.
[[nodiscard]] double frame_error_prob(const rvec& subcarrier_snr,
                                      std::size_t rate_index,
                                      std::size_t psdu_bytes = 1500);

/// Flat-channel convenience.
[[nodiscard]] double frame_error_prob_flat(
    double snr_db, std::size_t rate_index, std::size_t psdu_bytes = 1500);

}  // namespace jmb::rate
