#include "core/system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "phy/sync.h"

namespace jmb::core {

namespace {

/// Samples of slack kept before scheduled frames in receive buffers.
constexpr std::size_t kMargin = 100;

}  // namespace

double JmbSystem::gain_for_snr_db(double snr_db, double noise_var) {
  return noise_var * from_db(snr_db) / kOfdmTimePower;
}

JmbSystem::JmbSystem(SystemParams params,
                     const std::vector<std::vector<double>>& link_gains)
    : params_(params),
      medium_({params.phy.sample_rate_hz}, params.seed ^ 0xfeedbeef),
      rng_(params.seed),
      h_(params.n_clients, params.n_aps),
      tx_(params.phy),
      rx_(params.phy) {
  if (link_gains.size() != params.n_clients) {
    throw std::invalid_argument("JmbSystem: link_gains rows != n_clients");
  }
  client_noise_var_ = params.noise_var;
  // Register APs, then clients.
  for (std::size_t a = 0; a < params.n_aps; ++a) {
    ap_nodes_.push_back(medium_.add_node(
        {.ppm = rng_.uniform(-params.ap_ppm_range, params.ap_ppm_range),
         .carrier_hz = params.phy.carrier_hz,
         .sample_rate_hz = params.phy.sample_rate_hz,
         .phase_noise_linewidth_hz = params.phase_noise_linewidth_hz,
         .seed = rng_.next_u64()},
        params.noise_var));
    // Deterministic per-AP transmit timing skew: the lead anchors t = 0.
    ap_tx_offset_s_.push_back(
        a == 0 ? 0.0
               : rng_.uniform(-params.fixed_timing_offset_s,
                              params.fixed_timing_offset_s));
  }
  for (std::size_t c = 0; c < params.n_clients; ++c) {
    client_nodes_.push_back(medium_.add_node(
        {.ppm = rng_.uniform(-params.client_ppm_range, params.client_ppm_range),
         .carrier_hz = params.phy.carrier_hz,
         .sample_rate_hz = params.phy.sample_rate_hz,
         .phase_noise_linewidth_hz = params.phase_noise_linewidth_hz,
         .seed = rng_.next_u64()},
        params.noise_var));
  }
  // AP -> client links.
  for (std::size_t c = 0; c < params.n_clients; ++c) {
    if (link_gains[c].size() != params.n_aps) {
      throw std::invalid_argument("JmbSystem: link_gains cols != n_aps");
    }
    for (std::size_t a = 0; a < params.n_aps; ++a) {
      medium_.set_link(ap_nodes_[a], client_nodes_[c],
                       {.gain = link_gains[c][a],
                        .n_taps = params.n_taps,
                        .tap_decay = params.tap_decay,
                        .rice_k = params.rice_k,
                        .delay_s = rng_.uniform(params.prop_delay_min_s,
                                                params.prop_delay_max_s),
                        .coherence_time_s = params.coherence_time_s,
                        .sample_rate_hz = params.phy.sample_rate_hz,
                        .seed = rng_.next_u64()});
    }
  }
  // Lead -> slave links (strong: APs share the ceiling ledges). Rician
  // with a hefty LOS term keeps the sync-header SNR predictably high.
  const double ap_gain =
      gain_for_snr_db(params.ap_ap_snr_db, params.noise_var);
  for (std::size_t a = 1; a < params.n_aps; ++a) {
    medium_.set_link(ap_nodes_[0], ap_nodes_[a],
                     {.gain = ap_gain,
                      .n_taps = 2,
                      .tap_decay = 0.2,
                      .rice_k = 10.0,
                      .delay_s = rng_.uniform(5e-9, 40e-9),
                      .coherence_time_s = params.coherence_time_s,
                      .sample_rate_hz = params.phy.sample_rate_hz,
                      .seed = rng_.next_u64()});
    slave_sync_.emplace_back(PhaseSyncParams{params.phy.sample_rate_hz, 0.05});
  }
}

void JmbSystem::advance_time(double dt_seconds) {
  if (dt_seconds < 0) throw std::invalid_argument("advance_time: negative dt");
  now_ += dt_seconds;
}

double JmbSystem::predicted_beamforming_snr_db() const {
  if (!precoder_) throw std::logic_error("predicted_beamforming_snr_db: not ready");
  // Subcarrier symbols of unit power arrive with amplitude scale; the
  // client-side per-subcarrier noise is flat. Frequency-domain noise after
  // an unnormalized 64-point FFT is 64x the per-sample noise power.
  return to_db(precoder_->predicted_snr(client_noise_var_ * 64.0));
}

double JmbSystem::calibrate_to_effective_snr(double target_db) {
  const double delta_db = predicted_beamforming_snr_db() - target_db;
  client_noise_var_ *= from_db(delta_db);
  for (chan::NodeId id : client_nodes_) {
    medium_.set_noise_var(id, client_noise_var_);
  }
  return delta_db;
}

bool JmbSystem::run_measurement() {
  medium_.clear_transmissions();
  medium_.evolve_links_to(now_);
  const double fs = params_.phy.sample_rate_hz;
  const MeasurementSchedule sched{params_.n_aps, params_.measurement_rounds};
  const double frame_t = now_;

  medium_.transmit(ap_nodes_[0], frame_t, sched.ap_waveform(0));
  for (std::size_t a = 1; a < params_.n_aps; ++a) {
    const double jitter = rng_.gaussian(params_.trigger_jitter_s);
    medium_.transmit(ap_nodes_[a], frame_t + ap_tx_offset_s_[a] + jitter,
                     sched.ap_waveform(a));
  }

  // Slaves capture their reference channel from the lead's sync header and
  // extrapolate it to the snapshot time the clients use (the center of the
  // interleaved block) with their CFO estimate. The AP-AP link is strong,
  // so the per-header CFO estimate already makes this extrapolation error
  // negligible, and the long-term average tightens it further.
  const double ref_dt = static_cast<double>(sched.reference_offset()) / fs;
  for (std::size_t a = 1; a < params_.n_aps; ++a) {
    const cvec buf = medium_.receive(ap_nodes_[a], frame_t - kMargin / fs,
                                     kMargin + sched.frame_len() + 200);
    const auto pm = rx_.measure_preamble(buf);
    if (!pm) return false;
    slave_sync_[a - 1].observe_cfo(pm->cfo_hz);
    // The slave overhears the whole interleaved frame; processing the
    // lead's symbols like a client yields a far finer CFO estimate (the
    // LS fit spans the whole block) than a single preamble correlation —
    // this is what bounds the within-packet phase drift (Section 5.3).
    if (const auto own = process_measurement_frame(buf, sched, params_.phy)) {
      slave_sync_[a - 1].set_cfo_estimate(own->per_ap[0].cfo_hz);
    }
    phy::ChannelEstimate ref = pm->chan;
    ref.rotate(kTwoPi * slave_sync_[a - 1].cfo_estimate_hz() * ref_dt);
    slave_sync_[a - 1].set_reference(ref, frame_t + ref_dt);
  }

  // Clients measure all AP channels, referenced to the sync header.
  bool all_ok = true;
  ChannelMatrixSet h(params_.n_clients, params_.n_aps);
  for (std::size_t c = 0; c < params_.n_clients; ++c) {
    const cvec buf =
        medium_.receive(client_nodes_[c], frame_t - kMargin / fs,
                        kMargin + sched.frame_len() + 200);
    const auto cm = process_measurement_frame(buf, sched, params_.phy);
    if (!cm) {
      all_ok = false;
      break;
    }
    const auto& used = used_subcarriers();
    for (std::size_t a = 0; a < params_.n_aps; ++a) {
      for (std::size_t k = 0; k < used.size(); ++k) {
        h.at(k)(c, a) = cm->per_ap[a].channel.at(used[k]);
      }
    }
  }
  now_ = frame_t + static_cast<double>(sched.frame_len() + 400) / fs;
  if (!all_ok) return false;
  h_ = std::move(h);
  precoder_ = ZfPrecoder::build(h_);
  return precoder_.has_value();
}

JmbSystem::SyncOutcome JmbSystem::run_sync_header() {
  const double fs = params_.phy.sample_rate_hz;
  SyncOutcome out;
  out.header_t = now_;
  medium_.transmit(ap_nodes_[0], out.header_t, phy::preamble_time());
  out.per_slave.resize(params_.n_aps - 1);
  for (std::size_t a = 1; a < params_.n_aps; ++a) {
    const cvec buf = medium_.receive(ap_nodes_[a], out.header_t - kMargin / fs,
                                     kMargin + phy::kPreambleLen + 180);
    const auto pm = rx_.measure_preamble(buf);
    if (pm && slave_sync_[a - 1].has_reference()) {
      out.per_slave[a - 1] =
          slave_sync_[a - 1].on_sync_header(pm->chan, pm->cfo_hz, out.header_t);
    }
  }
  out.tx_start = out.header_t +
                 static_cast<double>(phy::kPreambleLen) / fs +
                 params_.turnaround_s;
  return out;
}

void JmbSystem::apply_correction(cvec& wave, const SlaveCorrection& corr,
                                 double tx_start, double header_t) const {
  const double fs = params_.phy.sample_rate_hz;
  const double base_dt = tx_start - header_t;
  for (std::size_t n = 0; n < wave.size(); ++n) {
    wave[n] *= corr.at(base_dt + static_cast<double>(n) / fs);
  }
}

JointResult JmbSystem::run_joint(
    const std::vector<std::vector<cvec>>& streams,
    const std::vector<CMatrix>* weights_override) {
  if (!precoder_ && weights_override == nullptr) {
    throw std::logic_error("run_joint: no precoder");
  }
  const std::size_t n_streams = streams.size();
  const std::size_t n_sym = streams.empty() ? 0 : streams[0].size();
  for (const auto& s : streams) {
    if (s.size() != n_sym) throw std::invalid_argument("run_joint: ragged streams");
  }
  const double fs = params_.phy.sample_rate_hz;
  const auto& used = used_subcarriers();

  medium_.clear_transmissions();
  medium_.evolve_links_to(now_);
  const SyncOutcome sync = run_sync_header();

  JointResult result;
  result.precoder_scale = precoder_ ? precoder_->scale() : 0.0;

  const auto weight_at = [&](std::size_t k) -> const CMatrix& {
    return weights_override ? (*weights_override)[k] : precoder_->weights(k);
  };

  // Build each AP's waveform: jointly precoded LTF (double guard + 2
  // symbols) followed by the precoded stream symbols.
  const std::size_t wave_len = phy::kLtfLen + n_sym * phy::kSymbolLen;
  for (std::size_t a = 0; a < params_.n_aps; ++a) {
    // Precoded LTF spectrum for this AP: sum over streams of W(a, j) * L.
    cvec ltf_spec(phy::kNfft, cplx{});
    const cvec& l = phy::ltf_freq();
    for (std::size_t k = 0; k < used.size(); ++k) {
      const std::size_t bin = phy::bin_of(used[k]);
      cplx w_sum{};
      for (std::size_t j = 0; j < n_streams; ++j) w_sum += weight_at(k)(a, j);
      ltf_spec[bin] = w_sum * l[bin];
    }
    cvec ltf_time = ifft(ltf_spec);
    cvec wave;
    wave.reserve(wave_len);
    for (std::size_t i = 0; i < 32; ++i) {
      wave.push_back(ltf_time[phy::kNfft - 32 + i]);
    }
    wave.insert(wave.end(), ltf_time.begin(), ltf_time.end());
    wave.insert(wave.end(), ltf_time.begin(), ltf_time.end());

    for (std::size_t s = 0; s < n_sym; ++s) {
      cvec spec(phy::kNfft, cplx{});
      for (std::size_t k = 0; k < used.size(); ++k) {
        const std::size_t bin = phy::bin_of(used[k]);
        cplx acc{};
        for (std::size_t j = 0; j < n_streams; ++j) {
          acc += weight_at(k)(a, j) * streams[j][s][bin];
        }
        spec[bin] = acc;
      }
      const cvec t = phy::ofdm_modulate(spec);
      wave.insert(wave.end(), t.begin(), t.end());
    }

    if (a == 0) {
      medium_.transmit(ap_nodes_[0], sync.tx_start, std::move(wave));
      continue;
    }
    const auto& corr = sync.per_slave[a - 1];
    if (!corr) continue;  // slave failed to sync: it sits this one out
    ++result.slaves_synced;
    if (!params_.disable_slave_correction) {
      apply_correction(wave, *corr, sync.tx_start, sync.header_t);
    }
    const double jitter = rng_.gaussian(params_.trigger_jitter_s);
    medium_.transmit(ap_nodes_[a], sync.tx_start + ap_tx_offset_s_[a] + jitter,
                     std::move(wave));
  }

  // Clients receive and decode with the standard chain: CFO from the
  // lead's sync header, channel from the jointly precoded LTF.
  const std::size_t total =
      kMargin + phy::kPreambleLen +
      static_cast<std::size_t>(params_.turnaround_s * fs) + wave_len + 300;
  result.per_client.resize(params_.n_clients);
  for (std::size_t c = 0; c < params_.n_clients; ++c) {
    const cvec buf =
        medium_.receive(client_nodes_[c], sync.header_t - kMargin / fs, total);
    const auto pm = rx_.measure_preamble(buf);
    if (!pm) {
      result.per_client[c].fail_reason = "sync header not detected";
      continue;
    }
    const std::size_t header_pos =
        pm->ltf_start >= 192 ? pm->ltf_start - 192 : pm->stf_start;
    const std::size_t payload_start =
        header_pos + phy::kPreambleLen +
        static_cast<std::size_t>(params_.turnaround_s * fs);
    result.per_client[c] = rx_.receive_payload(buf, payload_start, pm->cfo_hz);
  }
  now_ = sync.tx_start + static_cast<double>(wave_len + 400) / fs;
  return result;
}

JointResult JmbSystem::transmit_joint(const std::vector<phy::ByteVec>& psdus,
                                      const phy::Mcs& mcs) {
  if (!precoder_) throw std::logic_error("transmit_joint: run_measurement first");
  if (psdus.size() != params_.n_clients) {
    throw std::invalid_argument("transmit_joint: need one PSDU per client");
  }
  std::vector<std::vector<cvec>> streams;
  streams.reserve(psdus.size());
  std::size_t n_sym = 0;
  for (const auto& psdu : psdus) {
    streams.push_back(tx_.build_freq_symbols(psdu, mcs));
    n_sym = std::max(n_sym, streams.back().size());
  }
  for (auto& s : streams) {
    // Equalize stream lengths with silent symbols (pilot-only padding
    // would also work; zero is simplest and decodes identically since the
    // SIGNAL field bounds the payload).
    while (s.size() < n_sym) s.emplace_back(phy::kNfft, cplx{});
  }
  return run_joint(streams, nullptr);
}

phy::RxResult JmbSystem::transmit_diversity(std::size_t client,
                                            const phy::ByteVec& psdu,
                                            const phy::Mcs& mcs) {
  if (client >= params_.n_clients) {
    throw std::invalid_argument("transmit_diversity: bad client");
  }
  if (h_.n_subcarriers() == 0) {
    throw std::logic_error("transmit_diversity: run_measurement first");
  }
  // MRT weights from the measured row of H.
  const auto& used = used_subcarriers();
  std::vector<cvec> row(used.size());
  for (std::size_t k = 0; k < used.size(); ++k) row[k] = h_.at(k).row(client);
  const MrtPrecoder mrt = MrtPrecoder::build(row);

  std::vector<CMatrix> weights(used.size(), CMatrix(params_.n_aps, 1));
  for (std::size_t k = 0; k < used.size(); ++k) {
    weights[k].set_col(0, mrt.weights(k));
  }
  std::vector<std::vector<cvec>> streams{tx_.build_freq_symbols(psdu, mcs)};
  JointResult jr = run_joint(streams, &weights);
  return jr.per_client[client];
}

double JmbSystem::measure_inr(std::size_t nulled_client) {
  if (!precoder_) throw std::logic_error("measure_inr: run_measurement first");
  if (nulled_client >= params_.n_clients) {
    throw std::invalid_argument("measure_inr: bad client");
  }
  // Random unit-power QPSK payloads on every stream except the nulled one.
  constexpr std::size_t kProbeSymbols = 24;
  std::vector<std::vector<cvec>> streams(params_.n_clients);
  for (std::size_t j = 0; j < params_.n_clients; ++j) {
    for (std::size_t s = 0; s < kProbeSymbols; ++s) {
      if (j == nulled_client) {
        streams[j].emplace_back(phy::kNfft, cplx{});
        continue;
      }
      cvec data(phy::kNumDataCarriers);
      const double amp = 1.0 / std::sqrt(2.0);
      for (cplx& v : data) {
        v = cplx{rng_.bernoulli() ? amp : -amp, rng_.bernoulli() ? amp : -amp};
      }
      streams[j].push_back(phy::map_subcarriers(data, s));
    }
  }
  const double fs = params_.phy.sample_rate_hz;
  const double header_t = now_;
  const JointResult jr = run_joint(streams, nullptr);
  (void)jr;

  // Measure power at the nulled client strictly inside the symbol portion
  // of the joint waveform (skip the LTF which is also nulled, but avoid
  // edge transients).
  const double tx_start = header_t + static_cast<double>(phy::kPreambleLen) / fs +
                          params_.turnaround_s;
  const double probe_at = tx_start + static_cast<double>(phy::kLtfLen + 80) / fs;
  const std::size_t n = (kProbeSymbols - 2) * phy::kSymbolLen;
  // NOTE: run_joint cleared and re-scheduled transmissions; they are still
  // registered with the medium, so re-rendering this window is valid.
  const cvec heard = medium_.receive(client_nodes_[nulled_client], probe_at, n);
  const double p = mean_power(heard);
  return to_db(std::max(p, 1e-12) / client_noise_var_);
}

rvec JmbSystem::measure_alignment_series(std::size_t n_rounds, double gap_s) {
  if (params_.n_aps < 2 || params_.n_clients < 1) {
    throw std::logic_error("measure_alignment_series: need >= 2 APs and a client");
  }
  if (!slave_sync_[0].has_reference()) {
    throw std::logic_error("measure_alignment_series: run_measurement first");
  }
  const double fs = params_.phy.sample_rate_hz;
  const cvec sym = phy::ofdm_modulate(phy::ltf_freq());  // CP + LTF
  constexpr std::size_t kPairs = 2;

  rvec deviations;
  std::optional<double> reference_delta;
  for (std::size_t round = 0; round < n_rounds; ++round) {
    medium_.clear_transmissions();
    medium_.evolve_links_to(now_);
    const SyncOutcome sync = run_sync_header();
    if (!sync.per_slave[0]) {
      advance_time(gap_s);
      continue;
    }
    // Alternating symbols: lead at even slots, slave at odd slots.
    cvec lead_wave, slave_wave;
    for (std::size_t p = 0; p < kPairs; ++p) {
      lead_wave.insert(lead_wave.end(), sym.begin(), sym.end());
      lead_wave.insert(lead_wave.end(), phy::kSymbolLen, cplx{});
      slave_wave.insert(slave_wave.end(), phy::kSymbolLen, cplx{});
      slave_wave.insert(slave_wave.end(), sym.begin(), sym.end());
    }
    apply_correction(slave_wave, *sync.per_slave[0], sync.tx_start, sync.header_t);
    medium_.transmit(ap_nodes_[0], sync.tx_start, lead_wave);
    const double jitter = rng_.gaussian(params_.trigger_jitter_s);
    medium_.transmit(ap_nodes_[1], sync.tx_start + ap_tx_offset_s_[1] + jitter,
                     slave_wave);

    // Client: estimate both channels per pair and form the relative phase.
    const std::size_t total = kMargin + phy::kPreambleLen +
                              static_cast<std::size_t>(params_.turnaround_s * fs) +
                              lead_wave.size() + 200;
    const cvec buf = medium_.receive(client_nodes_[0],
                                     sync.header_t - kMargin / fs, total);
    const auto pm = rx_.measure_preamble(buf);
    if (!pm) {
      now_ = sync.tx_start + static_cast<double>(lead_wave.size()) / fs;
      advance_time(gap_s);
      continue;
    }
    const std::size_t header_pos =
        pm->ltf_start >= 192 ? pm->ltf_start - 192 : pm->stf_start;
    const std::size_t wave_at =
        header_pos + phy::kPreambleLen +
        static_cast<std::size_t>(params_.turnaround_s * fs);
    const cvec corrected = phy::correct_cfo(buf, pm->cfo_hz, fs);

    cplx delta_acc{};
    for (std::size_t p = 0; p < kPairs; ++p) {
      const std::size_t lead_at = wave_at + 2 * p * phy::kSymbolLen + phy::kCpLen;
      const std::size_t slave_at = lead_at + phy::kSymbolLen;
      if (corrected.size() < slave_at + phy::kNfft) break;
      cvec fl(corrected.begin() + static_cast<std::ptrdiff_t>(lead_at),
              corrected.begin() + static_cast<std::ptrdiff_t>(lead_at + phy::kNfft));
      cvec fsv(corrected.begin() + static_cast<std::ptrdiff_t>(slave_at),
               corrected.begin() + static_cast<std::ptrdiff_t>(slave_at + phy::kNfft));
      fft_inplace(fl);
      fft_inplace(fsv);
      const phy::ChannelEstimate el = phy::estimate_from_ltf(fl);
      const phy::ChannelEstimate es = phy::estimate_from_ltf(fsv);
      delta_acc += es.mean_ratio(el);
    }
    const double delta = std::arg(delta_acc);
    if (!reference_delta) {
      reference_delta = delta;
    } else {
      deviations.push_back(std::abs(wrap_phase(delta - *reference_delta)));
    }
    now_ = sync.tx_start + static_cast<double>(lead_wave.size() + 200) / fs;
    advance_time(gap_s);
  }
  return deviations;
}

}  // namespace jmb::core
