#include "core/phase_sync.h"

#include <cmath>
#include <stdexcept>

#include "obs/bounds.h"

namespace jmb::core {

SlavePhaseSync::SlavePhaseSync(PhaseSyncParams p)
    : params_(p), cfo_avg_(p.cfo_alpha) {}

void SlavePhaseSync::set_reference(const phy::ChannelEstimate& h_lead_at_t0,
                                   double t0_seconds) {
  reference_ = h_lead_at_t0;
  t0_ = t0_seconds;
  last_header_phase_.reset();
  last_residual_rad_ = 0.0;
}

void SlavePhaseSync::observe_cfo(double preamble_cfo_hz) {
  cfo_avg_.add(preamble_cfo_hz);
}

void SlavePhaseSync::set_cfo_estimate(double cfo_hz) {
  cfo_avg_.reset();
  cfo_avg_.add(cfo_hz);
}

double SlavePhaseSync::cfo_estimate_hz() const {
  return cfo_avg_.empty() ? 0.0 : cfo_avg_.value();
}

SlaveCorrection SlavePhaseSync::on_sync_header(
    const phy::ChannelEstimate& h_lead_now, double preamble_cfo_hz,
    double t1_seconds) {
  if (!reference_) {
    throw std::logic_error("SlavePhaseSync: no reference channel installed");
  }
  // Direct phase measurement (Section 5.2): the ratio of the two channel
  // observations is e^{j(omega_L - omega_S)(t1 - t0)} including phase
  // noise — exactly the rotation the slave's signal must carry so the
  // client-side channel looks frozen at t0.
  const cplx ratio = h_lead_now.mean_ratio(*reference_);
  SlaveCorrection corr;
  const double mag = std::abs(ratio);
  corr.phasor_at_header = (mag > 1e-15) ? ratio / mag : cplx{1.0, 0.0};

  // Long-term CFO refinement. The preamble correlator gives an unbiased
  // but noisy estimate (hundreds of Hz per shot); the phase progression
  // between consecutive sync headers gives a far finer one once the 2-pi
  // ambiguity is resolved with the current average — the same trick GPS
  // disciplining uses, and what "continuously averaged ... across multiple
  // transmissions" amounts to in practice.
  last_innovation_hz_ =
      cfo_avg_.empty() ? 0.0 : std::abs(preamble_cfo_hz - cfo_avg_.value());
  if (obs_ && !cfo_avg_.empty()) {
    obs_->observe("phase_sync/cfo_innovation_hz", obs::kHzBounds,
                  last_innovation_hz_);
  }
  cfo_avg_.add(preamble_cfo_hz);
  const double phase_now = std::arg(corr.phasor_at_header);
  if (last_header_phase_) {
    const double dt = t1_seconds - last_header_t_;
    if (dt > 1e-9) {
      const double coarse = cfo_avg_.value();
      // Residual phase error: how far the header-to-header phase walk
      // strays from the averaged-CFO prediction — the quantity whose
      // distribution the paper's Fig. 7 tracks, and the resilience
      // controller's per-AP health evidence.
      last_residual_rad_ = std::abs(std::remainder(
          phase_now - *last_header_phase_ - kTwoPi * coarse * dt, kTwoPi));
      if (obs_) {
        obs_->observe("phase_sync/residual_phase_rad", obs::kPhaseRadBounds,
                      last_residual_rad_);
      }
      // Expected whole turns between headers at the coarse estimate.
      const double pred_cycles = coarse * dt;
      const double frac = (phase_now - *last_header_phase_) / kTwoPi;
      const double cycles = std::round(pred_cycles - frac) + frac;
      const double refined = cycles / dt;
      // Only trust the refinement when the ambiguity is safely resolved:
      // the coarse error must be well under half a cycle across dt.
      if (std::abs(refined - coarse) * dt < 0.25) {
        cfo_avg_.add(refined);
        cfo_avg_.add(refined);  // weight fine estimates over coarse ones
        if (obs_) obs_->count("phase_sync/refinement_accepted");
      }
    }
  }
  last_header_phase_ = phase_now;
  last_header_t_ = t1_seconds;

  corr.cfo_hz = cfo_avg_.value();
  if (obs_) {
    obs_->count("phase_sync/headers");
    obs_->set_gauge("phase_sync/cfo_estimate_hz", corr.cfo_hz);
  }
  return corr;
}

}  // namespace jmb::core
