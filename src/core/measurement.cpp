#include "core/measurement.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fft_plan.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "phy/sync.h"
#include "phy/workspace.h"

namespace jmb::core {

namespace {

/// Shared 64-point plan for the per-round channel-symbol FFTs. Immutable
/// after construction, so sharing across threads is safe; bitwise-identical
/// to fft_inplace().
const FftPlan& plan64() {
  static const FftPlan plan(phy::kNfft);
  return plan;
}

}  // namespace

std::size_t MeasurementSchedule::cfo_block_offset(std::size_t ap) const {
  if (ap >= n_aps) throw std::invalid_argument("cfo_block_offset: bad ap");
  return phy::kPreambleLen + ap * kCfoSlotLen;
}

std::size_t MeasurementSchedule::chan_symbol_offset(std::size_t ap,
                                                    std::size_t r) const {
  if (ap >= n_aps || r >= rounds) {
    throw std::invalid_argument("chan_symbol_offset: bad slot");
  }
  const std::size_t base = phy::kPreambleLen + n_aps * kCfoSlotLen;
  return base + (r * n_aps + ap) * kChanSymLen;
}

std::size_t MeasurementSchedule::frame_len() const {
  return phy::kPreambleLen + n_aps * kCfoSlotLen + rounds * n_aps * kChanSymLen;
}

std::size_t MeasurementSchedule::reference_offset() const {
  const std::size_t base = phy::kPreambleLen + n_aps * kCfoSlotLen;
  return base + rounds * n_aps * kChanSymLen / 2;
}

cvec MeasurementSchedule::ap_waveform(std::size_t ap) const {
  if (ap >= n_aps) throw std::invalid_argument("ap_waveform: bad ap");
  cvec out(frame_len(), cplx{});
  if (ap == 0) {
    const cvec pre = phy::preamble_time();
    std::copy(pre.begin(), pre.end(), out.begin());
  }
  // CFO block: two bare LTF symbols back to back.
  const cvec& sym = phy::ltf_symbol_time();
  const std::size_t cfo_at = cfo_block_offset(ap);
  std::copy(sym.begin(), sym.end(),
            out.begin() + static_cast<std::ptrdiff_t>(cfo_at));
  std::copy(sym.begin(), sym.end(),
            out.begin() + static_cast<std::ptrdiff_t>(cfo_at + phy::kNfft));
  // Channel symbols: CP + LTF per round.
  const cvec cp_sym = phy::ofdm_modulate(phy::ltf_freq());
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t at = chan_symbol_offset(ap, r);
    std::copy(cp_sym.begin(), cp_sym.end(),
              out.begin() + static_cast<std::ptrdiff_t>(at));
  }
  return out;
}

namespace {

std::optional<ClientMeasurement> process_measurement_frame_impl(
    const cvec& rx, const MeasurementSchedule& sched, const phy::PhyConfig& cfg,
    Workspace* ws) {
  phy::Receiver receiver(cfg);
  receiver.set_workspace(ws);
  const auto pm = receiver.measure_preamble(rx);
  if (!pm) return std::nullopt;
  // Reference time = sync-header start. The LTF correlator pinned the
  // header precisely: stf = ltf_start - 192 is more reliable than the
  // detection edge.
  const std::size_t header =
      pm->ltf_start >= 192 ? pm->ltf_start - 192 : pm->stf_start;
  if (rx.size() < header + sched.frame_len()) return std::nullopt;

  constexpr std::size_t kBackoff = 4;  // FFT window back-off into the CP
  const double fs = cfg.sample_rate_hz;

  ClientMeasurement out;
  out.header_start = header;
  out.reference_sample = header + sched.reference_offset();
  out.noise_var = pm->noise_var;
  out.per_ap.resize(sched.n_aps);

  // Scratch windows: drawn from the workspace when one is attached so the
  // per-AP/per-round loops below stay off the heap once capacities are warm.
  cvec local_win, local_freq;
  cvec& win = ws ? ws->meas_win : local_win;
  cvec& freq = ws ? ws->meas_freq : local_freq;

  for (std::size_t ap = 0; ap < sched.n_aps; ++ap) {
    // --- Coarse CFO from the AP's dedicated block (lag-64 correlation).
    const std::size_t cfo_at = header + sched.cfo_block_offset(ap);
    win.assign(rx.begin() + static_cast<std::ptrdiff_t>(cfo_at),
               rx.begin() + static_cast<std::ptrdiff_t>(
                                cfo_at + MeasurementSchedule::kCfoBlockLen));
    double cfo = phy::fine_cfo_hz(win, fs);
    // The lead's preamble supplies an independent estimate; fuse them.
    if (ap == 0) cfo = 0.5 * (cfo + pm->cfo_hz);

    // --- Per-round raw channel estimates, CFO-corrected with phase zero
    // at the snapshot reference (block center), so each estimate lands
    // near the reference phase, off only by residual-CFO * span — and the
    // span from the block center is at most half a block.
    const double ref = static_cast<double>(sched.reference_offset());
    std::vector<phy::ChannelEstimate> raw(sched.rounds);
    std::vector<double> rel_offset(sched.rounds);  // window minus reference
    for (std::size_t r = 0; r < sched.rounds; ++r) {
      const std::size_t at =
          header + sched.chan_symbol_offset(ap, r) + phy::kCpLen - kBackoff;
      rel_offset[r] = static_cast<double>(at - header) - ref;
      win.assign(rx.begin() + static_cast<std::ptrdiff_t>(at),
                 rx.begin() + static_cast<std::ptrdiff_t>(at + phy::kNfft));
      phy::correct_cfo_into(win, cfo, fs, rel_offset[r], win);
      freq.assign(win.begin(), win.end());
      plan64().forward(freq);
      raw[r] = phy::estimate_from_ltf(freq);
    }

    // --- Refine the CFO by a least-squares fit of the per-round phases
    // (relative to round 0) against their window offsets. The residual
    // after coarse correction is small enough that sequential unwrapping
    // of adjacent differences is unambiguous (|residual * P / fs| << 1/2).
    if (sched.rounds >= 2) {
      rvec psi(sched.rounds, 0.0);
      for (std::size_t r = 1; r < sched.rounds; ++r) {
        const double dphi = std::arg(raw[r].mean_ratio(raw[r - 1]));
        psi[r] = psi[r - 1] + dphi;
      }
      double sx = 0, sy = 0, sxx = 0, sxy = 0;
      for (std::size_t r = 0; r < sched.rounds; ++r) {
        const double x = (rel_offset[r] - rel_offset[0]) / fs;
        sx += x;
        sy += psi[r];
        sxx += x * x;
        sxy += x * psi[r];
      }
      const double nr = static_cast<double>(sched.rounds);
      const double den = nr * sxx - sx * sx;
      const double residual =
          den > 1e-30 ? (nr * sxy - sx * sy) / (kTwoPi * den) : 0.0;
      cfo += residual;
      for (std::size_t r = 0; r < sched.rounds; ++r) {
        raw[r].rotate(-kTwoPi * residual * rel_offset[r] / fs);
      }
    }
    const phy::ChannelEstimate avg = phy::average_estimates(raw);
    out.per_ap[ap].channel = ws ? phy::denoise_time_support(avg, *ws)
                                : phy::denoise_time_support(avg);
    out.per_ap[ap].cfo_hz = cfo;
  }
  return out;
}

}  // namespace

std::optional<ClientMeasurement> process_measurement_frame(
    const cvec& rx, const MeasurementSchedule& sched,
    const phy::PhyConfig& cfg) {
  return process_measurement_frame_impl(rx, sched, cfg, nullptr);
}

std::optional<ClientMeasurement> process_measurement_frame(
    const cvec& rx, const MeasurementSchedule& sched, const phy::PhyConfig& cfg,
    Workspace& ws) {
  return process_measurement_frame_impl(rx, sched, cfg, &ws);
}

}  // namespace jmb::core
