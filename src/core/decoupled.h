// Decoupled per-client channel measurement (Section 7 + Appendix A).
//
// When a client joins late, its channels are measured at a different time
// than everyone else's, and there is no client-side shared reference.
// JMB instead uses the lead->slave channels as the shared reference: each
// slave rotates its column entry for the late client by its own measured
// lead-phase accumulated between the two measurement times, producing a
// time-invariant composite H that still zero-forces cleanly once each
// slave applies its usual sync-header correction relative to the *first*
// measurement time.
#pragma once

#include "chan/oscillator.h"
#include "core/link_model.h"

namespace jmb {
class Workspace;
}

namespace jmb::core {

struct DecoupledParams {
  std::size_t n_nodes = 2;            ///< APs == clients == n (single antenna)
  double measurement_spacing_s = 50e-3;  ///< t_c - t_{c-1}
  double tx_delay_s = 20e-3;  ///< transmit time after the last measurement
  double measure_snr_db = 25.0;
  double ppm_range = 2.0;
  double carrier_hz = 2.4e9;
  double phase_noise_linewidth_hz = 0.1;
  double tx_phase_err_sigma = 0.02;   ///< slave sync residual at transmit
  /// Operating point: the noise floor is set so the oracle (simultaneous
  /// measurement) system would deliver this post-beamforming SNR — the
  /// paper's method of placing clients by effective SNR. Set <= 0 to use
  /// `noise_power` directly instead.
  double effective_snr_db = 20.0;
  double noise_power = 1.0;
  double link_gain = 100.0;
};

struct DecoupledResult {
  /// Mean post-ZF SINR per client (dB) with the decoupled-composite H.
  rvec sinr_db;
  /// Same transmission precoded from the *naively stitched* H (rows taken
  /// at their own times, no lead-reference correction): the failure mode
  /// the appendix fixes.
  rvec naive_sinr_db;
  /// SINR if all rows had been measured simultaneously (upper bound).
  rvec oracle_sinr_db;
};

/// A non-null `ws` routes every internal ZF build through the workspace's
/// pinv scratch; results are bitwise-identical either way.
[[nodiscard]] DecoupledResult run_decoupled(const DecoupledParams& p, Rng& rng,
                                            Workspace* ws = nullptr);

}  // namespace jmb::core
