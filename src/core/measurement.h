// The channel-measurement phase (Section 5.1): the lead AP sends a sync
// header; every AP then sends a per-AP CFO block and interleaved channel
// measurement symbols. Each client measures, per AP, its CFO and channel,
// then rotates all channel estimates back to one reference time (the sync
// header) so the whole H snapshot is phase-consistent.
#pragma once

#include <optional>
#include <vector>

#include "phy/receiver.h"

namespace jmb {
class Workspace;
}

namespace jmb::core {

/// Sample-level schedule of one measurement frame for n_aps APs (AP 0 is
/// the lead). All offsets are relative to the frame (sync header) start.
struct MeasurementSchedule {
  std::size_t n_aps = 0;
  std::size_t rounds = 4;  ///< interleaved repetitions (averaging)

  /// Slot layout constants.
  // two LTF symbols
  static constexpr std::size_t kCfoBlockLen = 2 * phy::kNfft;
  static constexpr std::size_t kCfoSlotLen = kCfoBlockLen + 32;
  static constexpr std::size_t kChanSymLen = phy::kSymbolLen;  // CP + LTF

  /// Start of AP i's CFO block.
  [[nodiscard]] std::size_t cfo_block_offset(std::size_t ap) const;
  /// Start of AP i's channel symbol in round r (CP included).
  [[nodiscard]] std::size_t chan_symbol_offset(std::size_t ap,
                                               std::size_t r) const;
  /// Total frame length in samples.
  [[nodiscard]] std::size_t frame_len() const;

  /// The common snapshot reference time, in samples after the frame start:
  /// the center of the interleaved channel-symbol block. Referencing the
  /// snapshot here (rather than at the header) keeps every rotation span
  /// within half a block, so residual-CFO rotation errors stay tiny.
  [[nodiscard]] std::size_t reference_offset() const;

  /// The waveform AP `ap` contributes (zeros outside its slots, so the
  /// whole frame can be scheduled at one start time per AP).
  [[nodiscard]] cvec ap_waveform(std::size_t ap) const;
};

/// One client's measurement of one AP, referenced to the sync-header time.
struct PerApMeasurement {
  phy::ChannelEstimate channel;  ///< rotated back to the reference time
  double cfo_hz = 0.0;           ///< f_AP - f_client (refined)
};

/// Everything a client extracts from one measurement frame.
struct ClientMeasurement {
  std::vector<PerApMeasurement> per_ap;
  double noise_var = 0.0;
  std::size_t header_start = 0;  ///< detected sync-header sample index
  /// Snapshot time of all channel estimates: header_start +
  /// schedule.reference_offset() samples.
  std::size_t reference_sample = 0;
};

/// Client-side processing of a received measurement frame.
/// `rx` is the client's baseband buffer; the sync header is detected
/// inside. Returns nullopt if the header isn't found.
[[nodiscard]] std::optional<ClientMeasurement> process_measurement_frame(
    const cvec& rx, const MeasurementSchedule& sched,
    const phy::PhyConfig& cfg);

/// Workspace-backed variant: the receiver's preamble buffers, the per-round
/// CFO/channel FFT windows, and the denoising projection all come from `ws`
/// instead of the heap. Bitwise-identical to the 3-argument overload.
[[nodiscard]] std::optional<ClientMeasurement> process_measurement_frame(
    const cvec& rx, const MeasurementSchedule& sched, const phy::PhyConfig& cfg,
    Workspace& ws);

}  // namespace jmb::core
