// Joint beamforming precoders (Section 4 and Section 8).
//
// Multiplexing: per-subcarrier zero-forcing, W_k = pinv(H_k), scaled by a
// single scalar so no AP antenna exceeds its power budget ("the APs also
// need to normalize H^{-1} to respect power constraints"). The effective
// channel every client sees is scale * I.
//
// Diversity: distributed maximum-ratio transmission to one client,
// w_i = h_i* / |h_i| per AP — SNR grows ~ N^2 with coherent combining.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/types.h"
#include "obs/sink.h"
#include "simd/aligned.h"

namespace jmb {
struct PinvScratch;
class Workspace;
}

namespace jmb::core {

/// Zero-forcing precoder across all used subcarriers.
class ZfPrecoder {
 public:
  /// Build from the measured channel set. `per_antenna_power` is each AP
  /// antenna's average transmit power budget per subcarrier. Returns
  /// nullopt if any subcarrier's channel is (numerically) rank deficient.
  /// A non-null `obs` receives conditioning and zero-forcing-leakage
  /// distributions sampled over a few strided subcarriers.
  [[nodiscard]] static std::optional<ZfPrecoder> build(
      const ChannelMatrixSet& h, double per_antenna_power = 1.0,
      const obs::ObsSink* obs = nullptr);

  /// Workspace-backed build: the per-subcarrier pseudo-inverses run through
  /// `ws.pinv` scratch, so a warm workspace makes the build allocation-free
  /// apart from first-time growth of `w_`. Bitwise-identical to build().
  [[nodiscard]] static std::optional<ZfPrecoder> build(
      const ChannelMatrixSet& h, Workspace& ws, double per_antenna_power = 1.0,
      const obs::ObsSink* obs = nullptr);

  /// Resilience build: zero-force from the *reduced* H formed by the
  /// transmit antennas with a nonzero entry in `active_tx` (1 per AP), the
  /// re-derivation a quarantine triggers. Weight matrices keep full n_tx
  /// rows — excluded APs get zero rows — so downstream synthesis indexing
  /// is unchanged. Requires active count >= n_clients; with every antenna
  /// active this is bitwise-identical to build().
  [[nodiscard]] static std::optional<ZfPrecoder> build_masked(
      const ChannelMatrixSet& h, std::span<const std::uint8_t> active_tx,
      Workspace& ws, double per_antenna_power = 1.0,
      const obs::ObsSink* obs = nullptr);

  /// W for one used subcarrier (n_tx x n_clients), scale included.
  [[nodiscard]] const CMatrix& weights(std::size_t used_idx) const {
    return w_[used_idx];
  }

  /// Packed SoA view of the scaled weights for one (AP antenna, stream)
  /// pair: element k is weights(k)(a, j), contiguous across all used
  /// subcarriers. This is the layout the subcarrier-batched SIMD
  /// synthesis kernels consume — same values as weights(), just
  /// transposed into cache-line-aligned runs.
  [[nodiscard]] std::span<const cplx> weight_row(std::size_t a,
                                                 std::size_t j) const {
    const std::size_t n_sc = w_.size();
    return {packed_.data() + (a * n_streams() + j) * n_sc, n_sc};
  }

  /// The common effective gain: clients receive scale * x (per subcarrier).
  [[nodiscard]] double scale() const { return scale_; }

  /// Predicted post-beamforming SNR (linear) at every client for a given
  /// noise power — scale^2 / noise, identical across clients by design
  /// ("each client in a MegaMIMO joint transmission gets the same rate").
  [[nodiscard]] double predicted_snr(double noise_power) const {
    return scale_ * scale_ / noise_power;
  }

  /// Per-subcarrier transmit vector for stream symbols x (one per client).
  [[nodiscard]] cvec transmit_vector(std::size_t used_idx,
                                     const cvec& x) const {
    cvec out(w_[used_idx].rows());
    transmit_vector_into(used_idx, x, out);
    return out;
  }

  /// transmit_vector() into a caller-owned span of exactly n_tx() entries.
  /// Bitwise-identical to the allocating API, which wraps this kernel.
  void transmit_vector_into(std::size_t used_idx, std::span<const cplx> x,
                            std::span<cplx> out) const {
    multiply_into(w_[used_idx], x, out);
  }

  [[nodiscard]] std::size_t n_tx() const {
    return w_.empty() ? 0 : w_[0].rows();
  }
  [[nodiscard]] std::size_t n_streams() const {
    return w_.empty() ? 0 : w_[0].cols();
  }

 private:
  /// Single implementation behind both build() overloads.
  [[nodiscard]] static std::optional<ZfPrecoder> build_impl(
      const ChannelMatrixSet& h, PinvScratch& scratch,
      double per_antenna_power, const obs::ObsSink* obs);

  /// Re-fill packed_ from w_ (call whenever w_ changes).
  void pack();

  std::vector<CMatrix> w_;
  simd::acvec packed_;  ///< SoA copy behind weight_row()
  double scale_ = 0.0;
};

/// Distributed MRT weights for a single client: w_k[i] =
/// conj(h_k[i]) / max_i(rms |h[i]|), normalized so each AP antenna
/// respects the per-antenna budget while transmitting at full gain.
class MrtPrecoder {
 public:
  /// h: one row of channels, h[used_idx][tx antenna].
  [[nodiscard]] static MrtPrecoder build(const std::vector<cvec>& h_per_sc,
                                         double per_antenna_power = 1.0);

  [[nodiscard]] const cvec& weights(std::size_t used_idx) const {
    return w_[used_idx];
  }

  /// Post-combining signal amplitude gain per subcarrier: sum_i h_i w_i.
  [[nodiscard]] cplx combined_gain(std::size_t used_idx,
                                   const cvec& h_subcarrier) const;

 private:
  std::vector<cvec> w_;
};

}  // namespace jmb::core
