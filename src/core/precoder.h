// Joint beamforming precoders (Section 4 and Section 8).
//
// Multiplexing: per-subcarrier zero-forcing, W_k = pinv(H_k), scaled by a
// single scalar so no AP antenna exceeds its power budget ("the APs also
// need to normalize H^{-1} to respect power constraints"). The effective
// channel every client sees is scale * I.
//
// The precoder zoo (ROADMAP item 2) generalizes the same build/apply
// interface across three weight rules selected by phy::PrecoderKind:
//
//   kZf   W_k = pinv(H_k)            — the paper's choice; bit-identical
//                                      to the original ZfPrecoder path.
//   kRzf  W_k = H^H (H H^H + a I)^-1 — regularized ZF; with the ridge `a`
//                                      matched to noise + CSI-error power
//                                      this is the MMSE transmit filter.
//   kConj W_k = H_k^H                — conjugate beamforming, the
//                                      multi-stream generalization of the
//                                      Section 8 diversity mode.
//
// All kinds share the single global power scale and the packed SoA layout,
// so synthesis, link evaluation, and the SIMD apply kernels are oblivious
// to which rule built the weights.
//
// Diversity: distributed maximum-ratio transmission to one client,
// w_i = h_i* / |h_i| per AP — SNR grows ~ N^2 with coherent combining.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/types.h"
#include "obs/sink.h"
#include "phy/precoding.h"
#include "simd/aligned.h"

namespace jmb {
struct PinvScratch;
class Workspace;
}

namespace jmb::core {

/// How to build the weights. Default-constructed = the legacy ZF path.
struct PrecoderConfig {
  phy::PrecoderKind kind = phy::PrecoderKind::kZf;
  /// Each AP antenna's average transmit power budget per subcarrier.
  double per_antenna_power = 1.0;
  /// Tikhonov ridge for kRzf (ignored by the other kinds).
  double ridge = 0.0;

  /// The MMSE-matched ridge: n_streams * effective_noise / power, where
  /// effective_noise should include receiver noise plus the residual
  /// CSI-error power (phy::csi_error_power) times the mean link power.
  [[nodiscard]] static double mmse_ridge(std::size_t n_streams,
                                         double effective_noise,
                                         double per_antenna_power = 1.0) {
    return static_cast<double>(n_streams) * effective_noise /
           per_antenna_power;
  }
};

/// Precoder across all used subcarriers (zoo of weight rules; see above).
class Precoder {
 public:
  /// Build from the measured channel set. `per_antenna_power` is each AP
  /// antenna's average transmit power budget per subcarrier. Returns
  /// nullopt if any subcarrier's channel is (numerically) rank deficient.
  /// A non-null `obs` receives conditioning and zero-forcing-leakage
  /// distributions sampled over a few strided subcarriers.
  [[nodiscard]] static std::optional<Precoder> build(
      const ChannelMatrixSet& h, double per_antenna_power = 1.0,
      const obs::ObsSink* obs = nullptr);

  /// Workspace-backed build: the per-subcarrier pseudo-inverses run through
  /// `ws.pinv` scratch, so a warm workspace makes the build allocation-free
  /// apart from first-time growth of `w_`. Bitwise-identical to build().
  [[nodiscard]] static std::optional<Precoder> build(
      const ChannelMatrixSet& h, Workspace& ws, double per_antenna_power = 1.0,
      const obs::ObsSink* obs = nullptr);

  /// Zoo entry point: build weights for `cfg.kind`. When the channel has
  /// more clients than AP antennas the spatially most separable n_tx users
  /// are greedy-selected first (see greedy_select); selected_users() then
  /// reports who made the cut. With cfg.kind == kZf and n_clients <= n_tx
  /// this is bitwise-identical to build().
  [[nodiscard]] static std::optional<Precoder> build_kind(
      const ChannelMatrixSet& h, const PrecoderConfig& cfg, Workspace& ws,
      const obs::ObsSink* obs = nullptr);

  /// build_kind with its own scratch (the non-workspace twin of build()).
  [[nodiscard]] static std::optional<Precoder> build_kind(
      const ChannelMatrixSet& h, const PrecoderConfig& cfg,
      const obs::ObsSink* obs = nullptr);

  /// Resilience build: derive weights from the *reduced* H formed by the
  /// transmit antennas with a nonzero entry in `active_tx` (1 per AP), the
  /// re-derivation a quarantine triggers. Weight matrices keep full n_tx
  /// rows — excluded APs get zero rows — so downstream synthesis indexing
  /// is unchanged. Requires active count >= n_clients; with every antenna
  /// active this is bitwise-identical to build().
  [[nodiscard]] static std::optional<Precoder> build_masked(
      const ChannelMatrixSet& h, std::span<const std::uint8_t> active_tx,
      Workspace& ws, double per_antenna_power = 1.0,
      const obs::ObsSink* obs = nullptr);

  /// build_masked for any precoder kind.
  [[nodiscard]] static std::optional<Precoder> build_masked(
      const ChannelMatrixSet& h, const PrecoderConfig& cfg,
      std::span<const std::uint8_t> active_tx, Workspace& ws,
      const obs::ObsSink* obs = nullptr);

  /// In-place rebuild reusing this object's weight/packed capacity: after
  /// the first build of a given shape, rebuilding every coherence interval
  /// allocates nothing (pass obs == nullptr; the conditioning probes
  /// allocate). Values are bitwise-identical to a fresh build_kind() with
  /// the same inputs. Returns false on a rank-deficient channel, in which
  /// case the previous weights are no longer valid. Requires
  /// n_clients <= n_tx (no user selection on this path).
  [[nodiscard]] bool rebuild_kind(const ChannelMatrixSet& h,
                                  const PrecoderConfig& cfg,
                                  PinvScratch& scratch,
                                  const obs::ObsSink* obs = nullptr);

  /// Deterministic greedy user selection (semi-orthogonal style): seed
  /// with the strongest wideband user signature, then repeatedly add the
  /// user with the largest channel component orthogonal to the span of
  /// those already picked. Ties break to the lower client index; users
  /// whose residual is numerically inside the span are skipped. Returns
  /// at most max_streams client indices in ascending order.
  [[nodiscard]] static std::vector<std::size_t> greedy_select(
      const ChannelMatrixSet& h, std::size_t max_streams);

  /// Which weight rule built the current weights.
  [[nodiscard]] phy::PrecoderKind kind() const { return kind_; }

  /// Client indices serving the current streams when build_kind() had to
  /// down-select (K > n_tx); empty means every client is served in order.
  [[nodiscard]] std::span<const std::size_t> selected_users() const {
    return selected_;
  }

  /// W for one used subcarrier (n_tx x n_streams), scale included.
  [[nodiscard]] const CMatrix& weights(std::size_t used_idx) const {
    return w_[used_idx];
  }

  /// Packed SoA view of the scaled weights for one (AP antenna, stream)
  /// pair: element k is weights(k)(a, j), contiguous across all used
  /// subcarriers. This is the layout the subcarrier-batched SIMD
  /// synthesis kernels consume — same values as weights(), just
  /// transposed into cache-line-aligned runs.
  [[nodiscard]] std::span<const cplx> weight_row(std::size_t a,
                                                 std::size_t j) const {
    const std::size_t n_sc = w_.size();
    return {packed_.data() + (a * n_streams() + j) * n_sc, n_sc};
  }

  /// The common effective gain: clients receive scale * x (per subcarrier).
  [[nodiscard]] double scale() const { return scale_; }

  /// Predicted post-beamforming SNR (linear) at every client for a given
  /// noise power — scale^2 / noise, identical across clients by design
  /// ("each client in a MegaMIMO joint transmission gets the same rate").
  /// Exact for kZf; for kRzf/kConj the residual leakage makes this the
  /// interference-free upper bound.
  [[nodiscard]] double predicted_snr(double noise_power) const {
    return scale_ * scale_ / noise_power;
  }

  /// Per-subcarrier transmit vector for stream symbols x (one per client).
  [[nodiscard]] cvec transmit_vector(std::size_t used_idx,
                                     const cvec& x) const {
    cvec out(w_[used_idx].rows());
    transmit_vector_into(used_idx, x, out);
    return out;
  }

  /// transmit_vector() into a caller-owned span of exactly n_tx() entries.
  /// Bitwise-identical to the allocating API, which wraps this kernel.
  void transmit_vector_into(std::size_t used_idx, std::span<const cplx> x,
                            std::span<cplx> out) const {
    multiply_into(w_[used_idx], x, out);
  }

  [[nodiscard]] std::size_t n_tx() const {
    return w_.empty() ? 0 : w_[0].rows();
  }
  [[nodiscard]] std::size_t n_streams() const {
    return w_.empty() ? 0 : w_[0].cols();
  }

 private:
  /// Single implementation behind both legacy build() overloads.
  [[nodiscard]] static std::optional<Precoder> build_impl(
      const ChannelMatrixSet& h, PinvScratch& scratch,
      double per_antenna_power, const obs::ObsSink* obs);

  /// Single implementation behind both build_kind() overloads.
  [[nodiscard]] static std::optional<Precoder> build_kind_impl(
      const ChannelMatrixSet& h, const PrecoderConfig& cfg,
      PinvScratch& scratch, const obs::ObsSink* obs);

  /// Shared reduce/expand masked build for any kind.
  [[nodiscard]] static std::optional<Precoder> build_masked_impl(
      const ChannelMatrixSet& h, const PrecoderConfig& cfg,
      std::span<const std::uint8_t> active_tx, Workspace& ws,
      const obs::ObsSink* obs);

  /// Re-fill packed_ from w_ (call whenever w_ changes).
  void pack();

  std::vector<CMatrix> w_;
  simd::acvec packed_;  ///< SoA copy behind weight_row()
  std::vector<std::size_t> selected_;
  double scale_ = 0.0;
  phy::PrecoderKind kind_ = phy::PrecoderKind::kZf;
};

/// Original name of the ZF-only precoder; every legacy call site keeps
/// compiling (and the ZF build path stays byte-for-byte the same code).
using ZfPrecoder = Precoder;

/// Reduced channel set keeping only the given client rows (ascending
/// caller-chosen order) — the companion of Precoder::greedy_select.
[[nodiscard]] ChannelMatrixSet client_subset(
    const ChannelMatrixSet& h, std::span<const std::size_t> users);

/// Distributed MRT weights for a single client: w_k[i] =
/// conj(h_k[i]) / max_i(rms |h[i]|), normalized so each AP antenna
/// respects the per-antenna budget while transmitting at full gain.
class MrtPrecoder {
 public:
  /// h: one row of channels, h[used_idx][tx antenna].
  [[nodiscard]] static MrtPrecoder build(const std::vector<cvec>& h_per_sc,
                                         double per_antenna_power = 1.0);

  [[nodiscard]] const cvec& weights(std::size_t used_idx) const {
    return w_[used_idx];
  }

  /// Post-combining signal amplitude gain per subcarrier: sum_i h_i w_i.
  [[nodiscard]] cplx combined_gain(std::size_t used_idx,
                                   const cvec& h_subcarrier) const;

 private:
  std::vector<cvec> w_;
};

}  // namespace jmb::core
