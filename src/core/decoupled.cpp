#include "core/decoupled.h"

#include <cmath>
#include <stdexcept>

#include "phy/workspace.h"

namespace jmb::core {

namespace {

struct NodeOsc {
  double cfo_hz = 0.0;
  chan::Oscillator osc;

  NodeOsc(double ppm, double carrier_hz, double linewidth, std::uint64_t seed)
      : cfo_hz(ppm * 1e-6 * carrier_hz),
        osc({.ppm = 0.0,
             .carrier_hz = carrier_hz,
             .sample_rate_hz = 10e6,
             .phase_noise_linewidth_hz = linewidth,
             .seed = seed}) {}

  [[nodiscard]] double phase_at(double t) const {
    return kTwoPi * cfo_hz * t +
           osc.phase_noise_at(
               static_cast<std::uint64_t>(std::max(0.0, t * 10e6)));
  }
};

rvec mean_sinr_db(const ChannelMatrixSet& h_snapshot,
                  const std::vector<CMatrix>& h_eff,
                  double noise_power, Workspace* ws) {
  const auto precoder = ws ? ZfPrecoder::build(h_snapshot, *ws)
                           : ZfPrecoder::build(h_snapshot);
  const std::size_t nc = h_snapshot.n_clients();
  rvec out(nc, -100.0);
  if (!precoder) return out;
  rvec acc(nc, 0.0);
  CMatrix g;
  for (std::size_t k = 0; k < h_snapshot.n_subcarriers(); ++k) {
    multiply_into(h_eff[k], precoder->weights(k), g);
    for (std::size_t c = 0; c < nc; ++c) {
      const double sig = std::norm(g(c, c));
      double interf = 0.0;
      for (std::size_t j = 0; j < nc; ++j) {
        if (j != c) interf += std::norm(g(c, j));
      }
      acc[c] += sig / (interf + noise_power);
    }
  }
  for (std::size_t c = 0; c < nc; ++c) {
    out[c] = to_db(acc[c] / static_cast<double>(h_snapshot.n_subcarriers()));
  }
  return out;
}

}  // namespace

DecoupledResult run_decoupled(const DecoupledParams& p, Rng& rng,
                              Workspace* ws) {
  const std::size_t n = p.n_nodes;
  if (n < 2) throw std::invalid_argument("run_decoupled: need >= 2 nodes");

  const ChannelMatrixSet h_true = random_channel_set_with_gains(
      std::vector<std::vector<double>>(n, std::vector<double>(n, p.link_gain)),
      rng);
  const std::size_t n_sc = h_true.n_subcarriers();

  std::vector<NodeOsc> ap_osc, cl_osc;
  for (std::size_t i = 0; i < n; ++i) {
    ap_osc.emplace_back(rng.uniform(-p.ppm_range, p.ppm_range), p.carrier_hz,
                        p.phase_noise_linewidth_hz, rng.next_u64());
    cl_osc.emplace_back(rng.uniform(-p.ppm_range, p.ppm_range), p.carrier_hz,
                        p.phase_noise_linewidth_hz, rng.next_u64());
  }
  const double est_nvar = p.link_gain / from_db(p.measure_snr_db);

  // Client c's interleaved measurement of AP a at time t_c.
  const auto measure = [&](std::size_t c, std::size_t a, std::size_t k,
                           double t) {
    const double phi = ap_osc[a].phase_at(t) - cl_osc[c].phase_at(t);
    return h_true.at(k)(c, a) * phasor(phi) + rng.cgaussian(est_nvar);
  };
  // Slave a's measured lead rotation accumulated between two times.
  const auto slave_rotation = [&](std::size_t a, double from, double to) {
    const double phi = (ap_osc[0].phase_at(to) - ap_osc[a].phase_at(to)) -
                       (ap_osc[0].phase_at(from) - ap_osc[a].phase_at(from));
    return phasor(phi + rng.gaussian(0.005));
  };

  // Measurement times: client c at t_c.
  std::vector<double> t_of(n);
  for (std::size_t c = 0; c < n; ++c) {
    t_of[c] = 1e-3 + static_cast<double>(c) * p.measurement_spacing_s;
  }
  const double t1 = t_of[0];

  // Composite H-bar (Appendix A): entry (c, a) = m_ca * rho_a(t1 -> t_c);
  // naive variant omits the rho correction.
  ChannelMatrixSet h_bar(n, n), h_naive(n, n), h_oracle(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t a = 0; a < n; ++a) {
      const cplx rho = (a == 0) ? cplx{1.0, 0.0}
                                : slave_rotation(a, t1, t_of[c]);
      for (std::size_t k = 0; k < n_sc; ++k) {
        const cplx m = measure(c, a, k, t_of[c]);
        h_bar.at(k)(c, a) = m * rho;
        h_naive.at(k)(c, a) = m;
        h_oracle.at(k)(c, a) = measure(c, a, k, t1);
      }
    }
  }

  // Effective channel at transmit time: slaves apply their sync-header
  // correction relative to t1 (with residual error); the row-common
  // client rotation is absorbed by receive processing, so it is omitted.
  rvec slave_err(n, 0.0);
  for (std::size_t a = 1; a < n; ++a) {
    slave_err[a] = rng.gaussian(p.tx_phase_err_sigma);
  }
  std::vector<CMatrix> h_eff(n_sc, CMatrix(n, n));
  for (std::size_t k = 0; k < n_sc; ++k) {
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t a = 0; a < n; ++a) {
        const double phi = (ap_osc[a].phase_at(t1) - ap_osc[0].phase_at(t1)) +
                           slave_err[a];
        h_eff[k](c, a) = h_true.at(k)(c, a) * phasor(phi);
      }
    }
  }
  // The oracle snapshot carries the same t1 reference but also each
  // client's t1 rotation; align h_eff rows for a fair oracle comparison.
  std::vector<CMatrix> h_eff_oracle(n_sc, CMatrix(n, n));
  for (std::size_t k = 0; k < n_sc; ++k) {
    for (std::size_t c = 0; c < n; ++c) {
      const double row_phi = -cl_osc[c].phase_at(t1) + ap_osc[0].phase_at(t1);
      for (std::size_t a = 0; a < n; ++a) {
        h_eff_oracle[k](c, a) = h_eff[k](c, a) * phasor(row_phi);
      }
    }
  }

  // Calibrate the noise floor to the oracle system's achieved scale so the
  // operating point matches the requested effective SNR.
  double noise = p.noise_power;
  if (p.effective_snr_db > 0.0) {
    if (const auto pre = ws ? ZfPrecoder::build(h_oracle, *ws)
                            : ZfPrecoder::build(h_oracle)) {
      noise = pre->scale() * pre->scale() / from_db(p.effective_snr_db);
    }
  }

  DecoupledResult out;
  out.sinr_db = mean_sinr_db(h_bar, h_eff_oracle, noise, ws);
  out.naive_sinr_db = mean_sinr_db(h_naive, h_eff_oracle, noise, ws);
  out.oracle_sinr_db = mean_sinr_db(h_oracle, h_eff_oracle, noise, ws);
  return out;
}

}  // namespace jmb::core
