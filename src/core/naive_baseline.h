// The strawman the paper argues against (Sections 1 and 5.2): estimate the
// lead-slave frequency offset once, then *predict* phase as
// delta_phi = delta_omega_hat * t. Any estimation error accumulates
// linearly in elapsed time — 10 Hz of error is 0.35 rad after 5.5 ms —
// while JMB's per-packet direct measurement bounds the error to the
// within-packet drift.
#pragma once

#include "dsp/rng.h"

namespace jmb::core {

struct NaiveSyncParams {
  double cfo_estimation_error_hz = 10.0;  ///< std dev of the one-shot estimate
  double phase_noise_linewidth_hz = 0.1;  ///< Wiener linewidth of the pair
};

/// Phase error (radians) of naive CFO-prediction synchronization after
/// `elapsed_s` seconds since the one-time calibration, for one realization
/// of estimation error + accumulated phase noise.
[[nodiscard]] double naive_phase_error(double elapsed_s,
                                       const NaiveSyncParams& p, Rng& rng);

/// Phase error of JMB's scheme at the same elapsed time: error resets at
/// every packet's sync header (direct measurement with `resync_error_rad`
/// jitter) and only the within-packet residual-CFO drift accumulates,
/// bounded by `time_since_header_s`.
[[nodiscard]] double jmb_phase_error(double time_since_header_s,
                                     double residual_cfo_hz,
                                     double resync_error_rad,
                                     double phase_noise_linewidth_hz, Rng& rng);

}  // namespace jmb::core
