// The full JMB system at complex-baseband sample level: a lead AP, slave
// APs and clients on a shared Medium, running the paper's two-phase
// protocol — channel measurement (Section 5.1), then joint data
// transmissions with distributed phase synchronization (Section 5.2) —
// plus the diversity mode (Section 8) and the nulling experiment used to
// quantify residual interference (Section 11.1c).
#pragma once

#include <optional>
#include <vector>

#include "chan/medium.h"
#include "core/measurement.h"
#include "core/phase_sync.h"
#include "core/precoder.h"
#include "core/types.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

namespace jmb::core {

struct SystemParams {
  std::size_t n_aps = 2;
  std::size_t n_clients = 2;
  phy::PhyConfig phy{};

  /// Oscillator spread: each node's ppm ~ U(-range, range).
  double ap_ppm_range = 2.0;
  double client_ppm_range = 5.0;
  double phase_noise_linewidth_hz = 0.1;

  /// Fixed per-AP transmit timing offset range (cabling/pipeline skew,
  /// drawn once per AP). Constant offsets are absorbed into the measured
  /// channels, exactly as the paper argues for propagation delays.
  double fixed_timing_offset_s = 20e-9;
  /// Per-transmission timing repeatability jitter (std dev). Timestamped
  /// USRP transmissions repeat to a fraction of a sample; SourceSync
  /// absolute error is constant and lands in the fixed offset above.
  double trigger_jitter_s = 1e-9;

  /// Turnaround between lead sync header and the joint transmission
  /// (software latency on the paper's USRPs: 150 us).
  double turnaround_s = 150e-6;

  /// Client noise floor (linear power per sample); link gains are relative.
  double noise_var = 1.0;

  /// AP-to-AP link SNR in dB (APs share ledges; links are strong).
  double ap_ap_snr_db = 35.0;

  /// Interleaved measurement rounds.
  std::size_t measurement_rounds = 4;

  /// Propagation delay range for AP-client links (fractional samples ok).
  double prop_delay_min_s = 10e-9;
  double prop_delay_max_s = 60e-9;

  /// Multipath shape for every link. At 10 MHz a conference room's
  /// 30-100 ns delay spread is sub-sample: one dominant tap plus a weak
  /// echo. (Long tails would also break nulling at symbol boundaries,
  /// where circular convolution does not hold — a real effect, but not
  /// one this deployment scenario exhibits.)
  std::size_t n_taps = 2;
  double tap_decay = 0.15;
  double rice_k = 4.0;
  double coherence_time_s = 0.25;

  /// Ablation switch: when true, slaves transmit without any phase
  /// correction (no sync-header ratio, no CFO ramp) — the "distributed
  /// MIMO without phase synchronization" strawman.
  bool disable_slave_correction = false;

  std::uint64_t seed = 1;
};

/// Outcome of one joint transmission.
struct JointResult {
  std::vector<phy::RxResult> per_client;
  double precoder_scale = 0.0;  ///< effective diagonal gain (amplitude)
  std::size_t slaves_synced = 0;
};

class JmbSystem {
 public:
  /// Build with explicit per-(client, ap) mean link power gains (linear,
  /// relative to noise_var = 1). gains[client][ap].
  JmbSystem(SystemParams params,
            const std::vector<std::vector<double>>& link_gains);

  /// Mean signal-to-noise of a client's *waveform* given a mean link power
  /// gain: OFDM time samples carry kOfdmTimePower of per-subcarrier unit
  /// power, which the gain multiplies.
  [[nodiscard]] static double gain_for_snr_db(double snr_db, double noise_var);

  /// Run the channel-measurement phase at the current time. Returns false
  /// if any client failed to detect the frame (no H update then).
  bool run_measurement();

  /// Has a usable precoder (measurement succeeded and H invertible)?
  [[nodiscard]] bool ready() const { return precoder_.has_value(); }

  /// Calibrate the operating point: scale every client's noise floor so
  /// the predicted post-beamforming SNR equals `target_db` (how the paper
  /// places clients "such that all clients obtain an effective SNR in the
  /// desired range"). Requires ready(); re-run run_measurement() after so
  /// the measurement noise matches the new operating point. Returns the
  /// applied shift in dB.
  double calibrate_to_effective_snr(double target_db);

  /// Jointly deliver one PSDU per client (all at the same MCS, as the
  /// paper's rate selection yields). Requires ready().
  [[nodiscard]] JointResult transmit_joint(const std::vector<phy::ByteVec>& psdus,
                                           const phy::Mcs& mcs);

  /// Diversity mode: all APs beamform the same PSDU to `client`.
  [[nodiscard]] phy::RxResult transmit_diversity(std::size_t client,
                                                 const phy::ByteVec& psdu,
                                                 const phy::Mcs& mcs);

  /// Nulling experiment (Fig. 8): transmit a joint frame whose stream for
  /// `nulled_client` is silence; report the interference-to-noise ratio
  /// (dB) observed at that client over the payload. Requires ready().
  [[nodiscard]] double measure_inr(std::size_t nulled_client);

  /// Phase-alignment probe (Fig. 7): after sync, the lead and slave 0
  /// transmit alternating OFDM symbols; the client reports the deviation
  /// of the slave-vs-lead relative phase from its first observation, one
  /// sample per round, advancing time by `gap_s` between rounds.
  [[nodiscard]] rvec measure_alignment_series(std::size_t n_rounds, double gap_s);

  /// Advance simulated time (lets oscillators drift / channels age
  /// between operations).
  void advance_time(double dt_seconds);
  [[nodiscard]] double now() const { return now_; }

  /// The H snapshot from the last measurement (client-side estimates).
  [[nodiscard]] const ChannelMatrixSet& measured_channels() const { return h_; }
  /// Post-beamforming SNR prediction per client (dB), from the precoder.
  [[nodiscard]] double predicted_beamforming_snr_db() const;

  /// Average power the OFDM waveform carries per time-domain sample when
  /// subcarriers hold unit-power symbols (52 used / 64^2 * 64).
  static constexpr double kOfdmTimePower = 52.0 / 4096.0;

  /// Diagnostics: the underlying medium and node handles (read-only use).
  [[nodiscard]] chan::Medium& medium() { return medium_; }
  [[nodiscard]] chan::NodeId ap_node(std::size_t a) const { return ap_nodes_.at(a); }
  [[nodiscard]] chan::NodeId client_node(std::size_t c) const { return client_nodes_.at(c); }
  [[nodiscard]] double ap_tx_offset_s(std::size_t a) const { return ap_tx_offset_s_.at(a); }

 private:
  SystemParams params_;
  chan::Medium medium_;
  Rng rng_;
  double now_ = 1e-3;

  std::vector<chan::NodeId> ap_nodes_;      // [0] is the lead
  std::vector<chan::NodeId> client_nodes_;
  std::vector<double> ap_tx_offset_s_;      // fixed per-AP timing offset
  double client_noise_var_ = 1.0;
  std::vector<SlavePhaseSync> slave_sync_;  // index 0 <-> ap 1

  ChannelMatrixSet h_;
  std::optional<ZfPrecoder> precoder_;

  phy::Transmitter tx_;
  phy::Receiver rx_;

  /// Lead sync header + per-slave corrections; returns per-slave
  /// corrections (nullopt where sync failed) and the time the header went
  /// out. Advances now_ past the header + turnaround.
  struct SyncOutcome {
    double header_t = 0.0;
    double tx_start = 0.0;
    std::vector<std::optional<SlaveCorrection>> per_slave;
  };
  SyncOutcome run_sync_header();

  /// Apply a slave correction to a waveform starting at tx_start.
  void apply_correction(cvec& wave, const SlaveCorrection& corr,
                        double tx_start, double header_t) const;

  [[nodiscard]] JointResult run_joint(const std::vector<std::vector<cvec>>& streams,
                                      const std::vector<CMatrix>* weights_override);
};

}  // namespace jmb::core
