// Compatibility shim: JmbSystem moved to the engine layer, where it is a
// thin facade over the staged frame pipeline. Existing includes of
// "core/system.h" keep working; new code should include "engine/system.h"
// (and "engine/trial_runner.h" for parallel Monte-Carlo trials).
#pragma once

#include "engine/system.h"
