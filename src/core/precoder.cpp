#include "core/precoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/pinv.h"
#include "obs/bounds.h"
#include "phy/workspace.h"

namespace jmb::core {

namespace {

/// 2-norm condition of one (possibly wide) channel matrix: for wide
/// matrices condition over the nonzero singular values via the small Gram
/// matrix A A^H.
double channel_condition(const CMatrix& a) {
  if (a.rows() < a.cols()) {
    return std::sqrt(condition_number(a * a.hermitian()));
  }
  return condition_number(a);
}

/// Residual inter-client interference of the built precoder on one
/// subcarrier: off-diagonal power of H W relative to its diagonal, in dB.
/// Ideal zero forcing is -inf; floor at -320 dB (below double epsilon^2).
double zf_leakage_db(const CMatrix& h, const CMatrix& w) {
  const CMatrix e = h * w;  // n_clients x n_clients, ideally diag
  double diag = 0.0;
  double off = 0.0;
  for (std::size_t r = 0; r < e.rows(); ++r) {
    for (std::size_t c = 0; c < e.cols(); ++c) {
      const double p = std::norm(e(r, c));
      if (r == c) diag += p;
      else off += p;
    }
  }
  if (diag <= 0.0) return 0.0;
  const double ratio = off / diag;
  if (ratio < 1e-32) return -320.0;
  return 10.0 * std::log10(ratio);
}

}  // namespace

std::optional<Precoder> Precoder::build(const ChannelMatrixSet& h,
                                        double per_antenna_power,
                                        const obs::ObsSink* obs) {
  PinvScratch scratch;
  return build_impl(h, scratch, per_antenna_power, obs);
}

std::optional<Precoder> Precoder::build(const ChannelMatrixSet& h,
                                        Workspace& ws,
                                        double per_antenna_power,
                                        const obs::ObsSink* obs) {
  return build_impl(h, ws.pinv, per_antenna_power, obs);
}

std::optional<Precoder> Precoder::build_kind(const ChannelMatrixSet& h,
                                             const PrecoderConfig& cfg,
                                             Workspace& ws,
                                             const obs::ObsSink* obs) {
  return build_kind_impl(h, cfg, ws.pinv, obs);
}

std::optional<Precoder> Precoder::build_kind(const ChannelMatrixSet& h,
                                             const PrecoderConfig& cfg,
                                             const obs::ObsSink* obs) {
  PinvScratch scratch;
  return build_kind_impl(h, cfg, scratch, obs);
}

std::optional<Precoder> Precoder::build_kind_impl(const ChannelMatrixSet& h,
                                                  const PrecoderConfig& cfg,
                                                  PinvScratch& scratch,
                                                  const obs::ObsSink* obs) {
  Precoder p;
  if (h.n_clients() > h.n_tx()) {
    // More users than streams: serve the greedy semi-orthogonal subset.
    std::vector<std::size_t> sel = greedy_select(h, h.n_tx());
    if (sel.size() < h.n_tx()) {
      // Could not find n_tx separable users; serve what we found.
      if (sel.empty()) return std::nullopt;
    }
    const ChannelMatrixSet sub = client_subset(h, sel);
    if (!p.rebuild_kind(sub, cfg, scratch, obs)) return std::nullopt;
    p.selected_ = std::move(sel);
    return p;
  }
  if (!p.rebuild_kind(h, cfg, scratch, obs)) return std::nullopt;
  return p;
}

std::optional<Precoder> Precoder::build_masked(
    const ChannelMatrixSet& h, std::span<const std::uint8_t> active_tx,
    Workspace& ws, double per_antenna_power, const obs::ObsSink* obs) {
  PrecoderConfig cfg;
  cfg.per_antenna_power = per_antenna_power;
  return build_masked_impl(h, cfg, active_tx, ws, obs);
}

std::optional<Precoder> Precoder::build_masked(
    const ChannelMatrixSet& h, const PrecoderConfig& cfg,
    std::span<const std::uint8_t> active_tx, Workspace& ws,
    const obs::ObsSink* obs) {
  return build_masked_impl(h, cfg, active_tx, ws, obs);
}

std::optional<Precoder> Precoder::build_masked_impl(
    const ChannelMatrixSet& h, const PrecoderConfig& cfg,
    std::span<const std::uint8_t> active_tx, Workspace& ws,
    const obs::ObsSink* obs) {
  if (active_tx.size() != h.n_tx()) {
    throw std::invalid_argument("Precoder::build_masked: mask size mismatch");
  }
  std::size_t n_active = 0;
  for (const std::uint8_t a : active_tx) n_active += (a != 0) ? 1 : 0;
  if (n_active == h.n_tx()) {
    // Full set active: take the ordinary path so results stay bitwise
    // identical to build() (no reduce/expand round trip).
    Precoder full;
    if (!full.rebuild_kind(h, cfg, ws.pinv, obs)) return std::nullopt;
    return full;
  }
  if (n_active < h.n_clients()) return std::nullopt;

  ChannelMatrixSet reduced(h.n_clients(), n_active);
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    const CMatrix& full = h.at(k);
    CMatrix& r = reduced.at(k);
    for (std::size_t c = 0; c < h.n_clients(); ++c) {
      std::size_t j = 0;
      for (std::size_t i = 0; i < h.n_tx(); ++i) {
        if (active_tx[i] != 0) r(c, j++) = full(c, i);
      }
    }
  }
  Precoder small;
  if (!small.rebuild_kind(reduced, cfg, ws.pinv, obs)) return std::nullopt;

  // Re-expand to full n_tx rows: excluded APs transmit exactly zero, so
  // synthesis can keep indexing weights by absolute AP id.
  Precoder p;
  p.scale_ = small.scale_;
  p.kind_ = small.kind_;
  p.w_.resize(h.n_subcarriers());
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    CMatrix& w = p.w_[k];
    w.resize(h.n_tx(), h.n_clients());
    std::size_t j = 0;
    for (std::size_t i = 0; i < h.n_tx(); ++i) {
      if (active_tx[i] == 0) continue;
      for (std::size_t c = 0; c < h.n_clients(); ++c) {
        w(i, c) = small.w_[k](j, c);
      }
      ++j;
    }
  }
  p.pack();
  return p;
}

void Precoder::pack() {
  const std::size_t n_sc = w_.size();
  const std::size_t nt = n_tx();
  const std::size_t ns = n_streams();
  packed_.resize(nt * ns * n_sc);
  for (std::size_t a = 0; a < nt; ++a) {
    for (std::size_t j = 0; j < ns; ++j) {
      cplx* const row = packed_.data() + (a * ns + j) * n_sc;
      for (std::size_t k = 0; k < n_sc; ++k) row[k] = w_[k](a, j);
    }
  }
}

std::optional<Precoder> Precoder::build_impl(const ChannelMatrixSet& h,
                                             PinvScratch& scratch,
                                             double per_antenna_power,
                                             const obs::ObsSink* obs) {
  PrecoderConfig cfg;
  cfg.per_antenna_power = per_antenna_power;
  Precoder p;
  if (!p.rebuild_kind(h, cfg, scratch, obs)) return std::nullopt;
  return p;
}

bool Precoder::rebuild_kind(const ChannelMatrixSet& h,
                            const PrecoderConfig& cfg, PinvScratch& scratch,
                            const obs::ObsSink* obs) {
  if (h.n_subcarriers() == 0 || h.n_clients() == 0 || h.n_tx() == 0) {
    throw std::invalid_argument("Precoder: empty channel set");
  }
  if (h.n_tx() < h.n_clients()) {
    throw std::invalid_argument(
        "Precoder: need at least as many AP antennas as clients");
  }
  kind_ = cfg.kind;
  selected_.clear();
  w_.resize(h.n_subcarriers());
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    switch (cfg.kind) {
      case phy::PrecoderKind::kZf:
        if (!pinv_into(h.at(k), 0.0, scratch, w_[k])) return false;
        break;
      case phy::PrecoderKind::kRzf:
        if (!pinv_into(h.at(k), cfg.ridge, scratch, w_[k])) return false;
        break;
      case phy::PrecoderKind::kConj:
        hermitian_into(h.at(k), w_[k]);
        break;
    }
  }
  // One global scale: with unit-power stream symbols, AP antenna i spends
  // mean_k row_power(W_k, i) per subcarrier. Scale so the hungriest
  // antenna hits its budget exactly.
  double worst = 0.0;
  for (std::size_t i = 0; i < h.n_tx(); ++i) {
    double mean_row = 0.0;
    for (const CMatrix& w : w_) mean_row += w.row_power(i);
    mean_row /= static_cast<double>(w_.size());
    worst = std::max(worst, mean_row);
  }
  if (worst <= 0.0) return false;
  scale_ = std::sqrt(cfg.per_antenna_power / worst);
  for (CMatrix& w : w_) w *= cplx{scale_, 0.0};
  pack();

  if (obs) {
    // Probe a handful of strided subcarriers — cheap relative to the
    // n_subcarriers pinv calls above, and enough for the distributions.
    constexpr std::size_t kMaxProbes = 8;
    const std::size_t stride =
        std::max<std::size_t>(1, h.n_subcarriers() / kMaxProbes);
    const char* const leakage_metric = cfg.kind == phy::PrecoderKind::kZf
                                           ? "precoder/zf_leakage_db"
                                           : "precoder/leakage_db";
    for (std::size_t k = 0; k < h.n_subcarriers(); k += stride) {
      obs->observe("precoder/cond", obs::kCondBounds,
                   channel_condition(h.at(k)));
      obs->observe(leakage_metric, obs::kDbBounds,
                   zf_leakage_db(h.at(k), w_[k]));
    }
    obs->count("precoder/builds");
  }
  return true;
}

std::vector<std::size_t> Precoder::greedy_select(const ChannelMatrixSet& h,
                                                 std::size_t max_streams) {
  const std::size_t n_users = h.n_clients();
  const std::size_t want = std::min(max_streams, n_users);
  if (want == 0 || h.n_subcarriers() == 0) return {};

  // Wideband user signatures live in the concatenated space of a few
  // strided probe subcarriers' channel rows; all the norms and inner
  // products the greedy pass needs are captured by the K x K Gram matrix,
  // so the Gram-Schmidt runs in "kernel" form on G alone.
  constexpr std::size_t kMaxProbes = 8;
  const std::size_t stride =
      std::max<std::size_t>(1, h.n_subcarriers() / kMaxProbes);
  std::vector<cplx> gram(n_users * n_users);
  for (std::size_t k = 0; k < h.n_subcarriers(); k += stride) {
    const CMatrix& hk = h.at(k);
    for (std::size_t u = 0; u < n_users; ++u) {
      for (std::size_t v = 0; v < n_users; ++v) {
        gram[u * n_users + v] += row_hdot(hk, u, hk, v);
      }
    }
  }

  std::vector<double> resid(n_users);       // squared residual norms
  std::vector<cplx> coef(n_users * want);   // coef[u][i] = <q_i, g_u>
  std::vector<char> taken(n_users, 0);
  for (std::size_t u = 0; u < n_users; ++u) {
    resid[u] = gram[u * n_users + u].real();
  }

  std::vector<std::size_t> sel;
  sel.reserve(want);
  while (sel.size() < want) {
    // Strict > with ascending scan: ties break to the lower client index.
    std::size_t best = n_users;
    double best_r2 = 0.0;
    for (std::size_t u = 0; u < n_users; ++u) {
      if (taken[u] == 0 && resid[u] > best_r2) {
        best = u;
        best_r2 = resid[u];
      }
    }
    if (best == n_users) break;
    // Skip users numerically inside the selected span — a ZF solve on
    // them would be rank deficient anyway.
    if (best_r2 <= 1e-12 * gram[best * n_users + best].real()) break;
    const std::size_t step = sel.size();
    sel.push_back(best);
    taken[best] = 1;
    if (sel.size() == want) break;
    // New orthonormal direction q_step = resid(g_best) / |resid(g_best)|;
    // fold its coefficient into every user and shrink their residuals.
    const double rnorm = std::sqrt(best_r2);
    for (std::size_t u = 0; u < n_users; ++u) {
      cplx c = gram[best * n_users + u];
      for (std::size_t i = 0; i < step; ++i) {
        c -= std::conj(coef[best * want + i]) * coef[u * want + i];
      }
      c /= rnorm;
      coef[u * want + step] = c;
      resid[u] = std::max(0.0, resid[u] - std::norm(c));
    }
  }
  std::sort(sel.begin(), sel.end());
  return sel;
}

ChannelMatrixSet client_subset(const ChannelMatrixSet& h,
                               std::span<const std::size_t> users) {
  if (users.empty()) {
    throw std::invalid_argument("client_subset: empty selection");
  }
  ChannelMatrixSet sub(users.size(), h.n_tx());
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    const CMatrix& full = h.at(k);
    CMatrix& r = sub.at(k);
    for (std::size_t c = 0; c < users.size(); ++c) {
      if (users[c] >= h.n_clients()) {
        throw std::invalid_argument("client_subset: user index out of range");
      }
      for (std::size_t i = 0; i < h.n_tx(); ++i) {
        r(c, i) = full(users[c], i);
      }
    }
  }
  return sub;
}

MrtPrecoder MrtPrecoder::build(const std::vector<cvec>& h_per_sc,
                               double per_antenna_power) {
  if (h_per_sc.empty() || h_per_sc[0].empty()) {
    throw std::invalid_argument("MrtPrecoder: empty channel");
  }
  const std::size_t n_tx = h_per_sc[0].size();
  // Each AP transmits conj(h_i)/|h_i| per subcarrier (paper Section 8:
  // h*_{1i}/||h_{1i}|| x_1) — full per-antenna power, phase-aligned at the
  // client. Guard the degenerate zero-channel case.
  MrtPrecoder p;
  p.w_.reserve(h_per_sc.size());
  const double amp = std::sqrt(per_antenna_power);
  for (const cvec& h : h_per_sc) {
    if (h.size() != n_tx) {
      throw std::invalid_argument("MrtPrecoder: ragged channel set");
    }
    cvec w(n_tx);
    for (std::size_t i = 0; i < n_tx; ++i) {
      const double mag = std::abs(h[i]);
      w[i] = (mag > 1e-15) ? std::conj(h[i]) / mag * amp : cplx{amp, 0.0};
    }
    p.w_.push_back(std::move(w));
  }
  return p;
}

cplx MrtPrecoder::combined_gain(std::size_t used_idx,
                                const cvec& h_subcarrier) const {
  const cvec& w = w_.at(used_idx);
  if (w.size() != h_subcarrier.size()) {
    throw std::invalid_argument("MrtPrecoder::combined_gain: size mismatch");
  }
  cplx acc{};
  for (std::size_t i = 0; i < w.size(); ++i) acc += h_subcarrier[i] * w[i];
  return acc;
}

}  // namespace jmb::core
