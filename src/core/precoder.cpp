#include "core/precoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/pinv.h"
#include "obs/bounds.h"
#include "phy/workspace.h"

namespace jmb::core {

namespace {

/// 2-norm condition of one (possibly wide) channel matrix: for wide
/// matrices condition over the nonzero singular values via the small Gram
/// matrix A A^H.
double channel_condition(const CMatrix& a) {
  if (a.rows() < a.cols()) {
    return std::sqrt(condition_number(a * a.hermitian()));
  }
  return condition_number(a);
}

/// Residual inter-client interference of the built precoder on one
/// subcarrier: off-diagonal power of H W relative to its diagonal, in dB.
/// Ideal zero forcing is -inf; floor at -320 dB (below double epsilon^2).
double zf_leakage_db(const CMatrix& h, const CMatrix& w) {
  const CMatrix e = h * w;  // n_clients x n_clients, ideally diag
  double diag = 0.0;
  double off = 0.0;
  for (std::size_t r = 0; r < e.rows(); ++r) {
    for (std::size_t c = 0; c < e.cols(); ++c) {
      const double p = std::norm(e(r, c));
      if (r == c) diag += p;
      else off += p;
    }
  }
  if (diag <= 0.0) return 0.0;
  const double ratio = off / diag;
  if (ratio < 1e-32) return -320.0;
  return 10.0 * std::log10(ratio);
}

}  // namespace

std::optional<ZfPrecoder> ZfPrecoder::build(const ChannelMatrixSet& h,
                                            double per_antenna_power,
                                            const obs::ObsSink* obs) {
  PinvScratch scratch;
  return build_impl(h, scratch, per_antenna_power, obs);
}

std::optional<ZfPrecoder> ZfPrecoder::build(const ChannelMatrixSet& h,
                                            Workspace& ws,
                                            double per_antenna_power,
                                            const obs::ObsSink* obs) {
  return build_impl(h, ws.pinv, per_antenna_power, obs);
}

std::optional<ZfPrecoder> ZfPrecoder::build_masked(
    const ChannelMatrixSet& h, std::span<const std::uint8_t> active_tx,
    Workspace& ws, double per_antenna_power, const obs::ObsSink* obs) {
  if (active_tx.size() != h.n_tx()) {
    throw std::invalid_argument("ZfPrecoder::build_masked: mask size mismatch");
  }
  std::size_t n_active = 0;
  for (const std::uint8_t a : active_tx) n_active += (a != 0) ? 1 : 0;
  if (n_active == h.n_tx()) {
    // Full set active: take the ordinary path so results stay bitwise
    // identical to build() (no reduce/expand round trip).
    return build_impl(h, ws.pinv, per_antenna_power, obs);
  }
  if (n_active < h.n_clients()) return std::nullopt;

  ChannelMatrixSet reduced(h.n_clients(), n_active);
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    const CMatrix& full = h.at(k);
    CMatrix& r = reduced.at(k);
    for (std::size_t c = 0; c < h.n_clients(); ++c) {
      std::size_t j = 0;
      for (std::size_t i = 0; i < h.n_tx(); ++i) {
        if (active_tx[i] != 0) r(c, j++) = full(c, i);
      }
    }
  }
  std::optional<ZfPrecoder> small =
      build_impl(reduced, ws.pinv, per_antenna_power, obs);
  if (!small) return std::nullopt;

  // Re-expand to full n_tx rows: excluded APs transmit exactly zero, so
  // synthesis can keep indexing weights by absolute AP id.
  ZfPrecoder p;
  p.scale_ = small->scale_;
  p.w_.resize(h.n_subcarriers());
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    CMatrix& w = p.w_[k];
    w.resize(h.n_tx(), h.n_clients());
    std::size_t j = 0;
    for (std::size_t i = 0; i < h.n_tx(); ++i) {
      if (active_tx[i] == 0) continue;
      for (std::size_t c = 0; c < h.n_clients(); ++c) {
        w(i, c) = small->w_[k](j, c);
      }
      ++j;
    }
  }
  p.pack();
  return p;
}

void ZfPrecoder::pack() {
  const std::size_t n_sc = w_.size();
  const std::size_t nt = n_tx();
  const std::size_t ns = n_streams();
  packed_.resize(nt * ns * n_sc);
  for (std::size_t a = 0; a < nt; ++a) {
    for (std::size_t j = 0; j < ns; ++j) {
      cplx* const row = packed_.data() + (a * ns + j) * n_sc;
      for (std::size_t k = 0; k < n_sc; ++k) row[k] = w_[k](a, j);
    }
  }
}

std::optional<ZfPrecoder> ZfPrecoder::build_impl(const ChannelMatrixSet& h,
                                                 PinvScratch& scratch,
                                                 double per_antenna_power,
                                                 const obs::ObsSink* obs) {
  if (h.n_subcarriers() == 0 || h.n_clients() == 0 || h.n_tx() == 0) {
    throw std::invalid_argument("ZfPrecoder: empty channel set");
  }
  if (h.n_tx() < h.n_clients()) {
    throw std::invalid_argument(
        "ZfPrecoder: need at least as many AP antennas as clients");
  }
  ZfPrecoder p;
  p.w_.resize(h.n_subcarriers());
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    if (!pinv_into(h.at(k), 0.0, scratch, p.w_[k])) return std::nullopt;
  }
  // One global scale: with unit-power stream symbols, AP antenna i spends
  // mean_k row_power(W_k, i) per subcarrier. Scale so the hungriest
  // antenna hits its budget exactly.
  double worst = 0.0;
  for (std::size_t i = 0; i < h.n_tx(); ++i) {
    double mean_row = 0.0;
    for (const CMatrix& w : p.w_) mean_row += w.row_power(i);
    mean_row /= static_cast<double>(p.w_.size());
    worst = std::max(worst, mean_row);
  }
  if (worst <= 0.0) return std::nullopt;
  p.scale_ = std::sqrt(per_antenna_power / worst);
  for (CMatrix& w : p.w_) w *= cplx{p.scale_, 0.0};
  p.pack();

  if (obs) {
    // Probe a handful of strided subcarriers — cheap relative to the
    // n_subcarriers pinv calls above, and enough for the distributions.
    constexpr std::size_t kMaxProbes = 8;
    const std::size_t stride =
        std::max<std::size_t>(1, h.n_subcarriers() / kMaxProbes);
    for (std::size_t k = 0; k < h.n_subcarriers(); k += stride) {
      obs->observe("precoder/cond", obs::kCondBounds,
                   channel_condition(h.at(k)));
      obs->observe("precoder/zf_leakage_db", obs::kDbBounds,
                   zf_leakage_db(h.at(k), p.w_[k]));
    }
    obs->count("precoder/builds");
  }
  return p;
}

MrtPrecoder MrtPrecoder::build(const std::vector<cvec>& h_per_sc,
                               double per_antenna_power) {
  if (h_per_sc.empty() || h_per_sc[0].empty()) {
    throw std::invalid_argument("MrtPrecoder: empty channel");
  }
  const std::size_t n_tx = h_per_sc[0].size();
  // Each AP transmits conj(h_i)/|h_i| per subcarrier (paper Section 8:
  // h*_{1i}/||h_{1i}|| x_1) — full per-antenna power, phase-aligned at the
  // client. Guard the degenerate zero-channel case.
  MrtPrecoder p;
  p.w_.reserve(h_per_sc.size());
  const double amp = std::sqrt(per_antenna_power);
  for (const cvec& h : h_per_sc) {
    if (h.size() != n_tx) {
      throw std::invalid_argument("MrtPrecoder: ragged channel set");
    }
    cvec w(n_tx);
    for (std::size_t i = 0; i < n_tx; ++i) {
      const double mag = std::abs(h[i]);
      w[i] = (mag > 1e-15) ? std::conj(h[i]) / mag * amp : cplx{amp, 0.0};
    }
    p.w_.push_back(std::move(w));
  }
  return p;
}

cplx MrtPrecoder::combined_gain(std::size_t used_idx,
                                const cvec& h_subcarrier) const {
  const cvec& w = w_.at(used_idx);
  if (w.size() != h_subcarrier.size()) {
    throw std::invalid_argument("MrtPrecoder::combined_gain: size mismatch");
  }
  cplx acc{};
  for (std::size_t i = 0; i < w.size(); ++i) acc += h_subcarrier[i] * w[i];
  return acc;
}

}  // namespace jmb::core
