#include "core/precoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/pinv.h"

namespace jmb::core {

std::optional<ZfPrecoder> ZfPrecoder::build(const ChannelMatrixSet& h,
                                            double per_antenna_power) {
  if (h.n_subcarriers() == 0 || h.n_clients() == 0 || h.n_tx() == 0) {
    throw std::invalid_argument("ZfPrecoder: empty channel set");
  }
  if (h.n_tx() < h.n_clients()) {
    throw std::invalid_argument(
        "ZfPrecoder: need at least as many AP antennas as clients");
  }
  ZfPrecoder p;
  p.w_.reserve(h.n_subcarriers());
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    auto w = pinv(h.at(k));
    if (!w) return std::nullopt;
    p.w_.push_back(std::move(*w));
  }
  // One global scale: with unit-power stream symbols, AP antenna i spends
  // mean_k row_power(W_k, i) per subcarrier. Scale so the hungriest
  // antenna hits its budget exactly.
  double worst = 0.0;
  for (std::size_t i = 0; i < h.n_tx(); ++i) {
    double mean_row = 0.0;
    for (const CMatrix& w : p.w_) mean_row += w.row_power(i);
    mean_row /= static_cast<double>(p.w_.size());
    worst = std::max(worst, mean_row);
  }
  if (worst <= 0.0) return std::nullopt;
  p.scale_ = std::sqrt(per_antenna_power / worst);
  for (CMatrix& w : p.w_) w *= cplx{p.scale_, 0.0};
  return p;
}

MrtPrecoder MrtPrecoder::build(const std::vector<cvec>& h_per_sc,
                               double per_antenna_power) {
  if (h_per_sc.empty() || h_per_sc[0].empty()) {
    throw std::invalid_argument("MrtPrecoder: empty channel");
  }
  const std::size_t n_tx = h_per_sc[0].size();
  // Each AP transmits conj(h_i)/|h_i| per subcarrier (paper Section 8:
  // h*_{1i}/||h_{1i}|| x_1) — full per-antenna power, phase-aligned at the
  // client. Guard the degenerate zero-channel case.
  MrtPrecoder p;
  p.w_.reserve(h_per_sc.size());
  const double amp = std::sqrt(per_antenna_power);
  for (const cvec& h : h_per_sc) {
    if (h.size() != n_tx) {
      throw std::invalid_argument("MrtPrecoder: ragged channel set");
    }
    cvec w(n_tx);
    for (std::size_t i = 0; i < n_tx; ++i) {
      const double mag = std::abs(h[i]);
      w[i] = (mag > 1e-15) ? std::conj(h[i]) / mag * amp : cplx{amp, 0.0};
    }
    p.w_.push_back(std::move(w));
  }
  return p;
}

cplx MrtPrecoder::combined_gain(std::size_t used_idx,
                                const cvec& h_subcarrier) const {
  const cvec& w = w_.at(used_idx);
  if (w.size() != h_subcarrier.size()) {
    throw std::invalid_argument("MrtPrecoder::combined_gain: size mismatch");
  }
  cplx acc{};
  for (std::size_t i = 0; i < w.size(); ++i) acc += h_subcarrier[i] * w[i];
  return acc;
}

}  // namespace jmb::core
