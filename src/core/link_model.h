// Closed-form / Monte-Carlo link-level model of joint beamforming under
// phase misalignment.
//
// Given a channel snapshot H and a per-AP phase error vector phi, the
// actual channel at transmit time is H' = H * diag(e^{j phi_i}); with the
// zero-forcing weights W computed from H, client c sees
//   y_c = [H' W x]_c = g_cc x_c + sum_{j != c} g_cj x_j + n,
// and the leakage terms g_cj are what misalignment costs. This is the
// engine behind Fig. 6 (SNR reduction vs misalignment) and the fast path
// for the throughput sweeps (Figs. 9-13), with the phase-error scale
// calibrated against the sample-level system (Fig. 7).
#pragma once

#include <functional>
#include <optional>

#include "core/precoder.h"
#include "dsp/rng.h"

namespace jmb::core {

/// Random i.i.d. Rayleigh channel set (unit mean power per link), the
/// "100 different random channel matrices" of the paper's Fig. 6 method.
[[nodiscard]] ChannelMatrixSet random_channel_set(
    std::size_t n_clients, std::size_t n_tx, Rng& rng,
    std::size_t n_subcarriers = 52);

/// Channel set with per-link mean power gains: gains[client][tx].
/// `rice_k` adds a Rician line-of-sight component per link (K-factor);
/// conference-room channels are LOS-ish and well conditioned (the paper
/// treats K in N log(SNR/K) as constant for "natural channel matrices").
[[nodiscard]] ChannelMatrixSet random_channel_set_with_gains(
    const std::vector<std::vector<double>>& gains, Rng& rng,
    std::size_t n_subcarriers = 52, double rice_k = 0.0);

/// Channel set in the paper's "well conditioned" regime: per subcarrier,
/// client rows are orthogonalized (Gram-Schmidt on an i.i.d. draw) and
/// scaled so row c's total power equals sum_a gains[c][a]. The paper's
/// evaluation leans on this regime explicitly — "natural channel matrices
/// can be considered random and well conditioned, and hence K can
/// essentially be treated as constant" — and its measured linear scaling
/// implies the conditioning term stayed bounded in its testbed. Use this
/// for throughput-scaling sweeps; use random_channel_set_with_gains for
/// conditioning-sensitive studies.
[[nodiscard]] ChannelMatrixSet well_conditioned_channel_set(
    const std::vector<std::vector<double>>& gains, Rng& rng);

/// Spatially correlated (ill-conditioned) channel set: each client row is
/// the mix sqrt(1-corr) * own + sqrt(corr) * shared of the client's own
/// random draw and one common random row, preserving per-link mean power
/// gains[client][tx]. corr in [0, 1); corr -> 1 drives every subcarrier's
/// H toward rank one — the regime where plain zero forcing's power
/// normalization and leakage explode while regularized solves stay
/// bounded. Use for conditioning-robustness studies.
[[nodiscard]] ChannelMatrixSet correlated_channel_set(
    const std::vector<std::vector<double>>& gains, double corr, Rng& rng);

/// Per-client post-beamforming SINR given per-AP phase errors.
struct SinrReport {
  rvec sinr;                ///< linear, per client (mean over subcarriers)
  rvec snr_no_interference; ///< signal power / noise only
  /// Per-client, per-subcarrier SINR (linear): [client][used subcarrier].
  std::vector<rvec> sinr_per_subcarrier;
};

/// Evaluate joint ZF beamforming from channel snapshot `h` when the APs'
/// actual phases differ from the snapshot by `phase_err` (radians, one per
/// transmit antenna; the lead's entry is conventionally 0).
[[nodiscard]] SinrReport beamforming_sinr(const ChannelMatrixSet& h,
                                          const rvec& phase_err,
                                          double noise_power);

/// Same, with a precomputed precoder (avoids re-inverting H per call —
/// use this inside MAC simulations that query SINRs per transmission).
[[nodiscard]] SinrReport beamforming_sinr(const ChannelMatrixSet& h,
                                          const ZfPrecoder& precoder,
                                          const rvec& phase_err,
                                          double noise_power);

/// Average SNR reduction (dB) caused by a fixed misalignment at every
/// slave, versus perfect alignment — one point of Fig. 6. Averages over
/// `trials` random channels.
[[nodiscard]] double snr_reduction_db(std::size_t n_clients, std::size_t n_tx,
                                      double misalignment_rad, double snr_db,
                                      std::size_t trials, Rng& rng);

/// Interference-to-noise ratio (dB) at a nulled client when each slave
/// carries N(0, sigma^2) phase error — the fast-path analogue of Fig. 8.
[[nodiscard]] double expected_inr_db(const ChannelMatrixSet& h,
                                     double phase_err_sigma, double noise_power,
                                     std::size_t trials, Rng& rng);

/// Per-client subcarrier SINRs under random phase errors, for feeding the
/// MAC simulations: draws one phase-error vector per call.
[[nodiscard]] std::vector<rvec> jmb_subcarrier_sinrs(const ChannelMatrixSet& h,
                                                     double phase_err_sigma,
                                                     double noise_power,
                                                     Rng& rng);
[[nodiscard]] std::vector<rvec> jmb_subcarrier_sinrs(const ChannelMatrixSet& h,
                                                     const ZfPrecoder& precoder,
                                                     double phase_err_sigma,
                                                     double noise_power,
                                                     Rng& rng);

/// Baseline: client's per-subcarrier SNRs from its best AP alone.
[[nodiscard]] std::vector<rvec> baseline_subcarrier_snrs(
    const ChannelMatrixSet& h, double noise_power);

/// Diversity (Section 8): post-MRT per-subcarrier SNRs at one client when
/// every AP phase-aligns with error sigma.
[[nodiscard]] rvec diversity_subcarrier_snrs(const std::vector<cvec>& h_row,
                                             double phase_err_sigma,
                                             double noise_power, Rng& rng);

}  // namespace jmb::core
