// Shared types for the JMB core: per-subcarrier channel matrices between
// the joint set of AP antennas and client antennas.
#pragma once

#include <vector>

#include "linalg/cmatrix.h"
#include "phy/params.h"

namespace jmb::core {

/// The 52 used logical subcarriers in ascending order (-26..-1, 1..26).
[[nodiscard]] const std::vector<int>& used_subcarriers();

/// Index of a logical subcarrier within used_subcarriers(); throws for
/// DC / out-of-band.
[[nodiscard]] std::size_t used_index(int logical);

/// One channel matrix per used subcarrier: H[k](client, ap_antenna).
/// Invariant: size() == used_subcarriers().size() and all matrices share
/// one shape.
class ChannelMatrixSet {
 public:
  ChannelMatrixSet() = default;
  ChannelMatrixSet(std::size_t n_clients, std::size_t n_tx);

  [[nodiscard]] std::size_t n_clients() const { return n_clients_; }
  [[nodiscard]] std::size_t n_tx() const { return n_tx_; }
  [[nodiscard]] std::size_t n_subcarriers() const { return per_sc_.size(); }

  [[nodiscard]] CMatrix& at(std::size_t used_idx) { return per_sc_[used_idx]; }
  [[nodiscard]] const CMatrix& at(std::size_t used_idx) const {
    return per_sc_[used_idx];
  }

  /// Average |h|^2 over subcarriers for one (client, tx) pair.
  [[nodiscard]] double mean_link_power(std::size_t client,
                                       std::size_t tx) const;

 private:
  std::size_t n_clients_ = 0;
  std::size_t n_tx_ = 0;
  std::vector<CMatrix> per_sc_;
};

}  // namespace jmb::core
