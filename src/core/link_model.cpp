#include "core/link_model.h"

#include <cmath>
#include <stdexcept>

namespace jmb::core {

ChannelMatrixSet random_channel_set(std::size_t n_clients, std::size_t n_tx,
                                    Rng& rng, std::size_t n_subcarriers) {
  return random_channel_set_with_gains(
      std::vector<std::vector<double>>(n_clients,
                                       std::vector<double>(n_tx, 1.0)),
      rng, n_subcarriers);
}

ChannelMatrixSet random_channel_set_with_gains(
    const std::vector<std::vector<double>>& gains, Rng& rng,
    std::size_t n_subcarriers, double rice_k) {
  const std::size_t n_clients = gains.size();
  if (n_clients == 0 || gains[0].empty()) {
    throw std::invalid_argument("random_channel_set: empty gain matrix");
  }
  const std::size_t n_tx = gains[0].size();
  if (n_subcarriers != used_subcarriers().size()) {
    // ChannelMatrixSet is sized by the OFDM layout; other sizes are only
    // used by scalar experiments and map onto the first n entries.
    if (n_subcarriers > used_subcarriers().size()) {
      throw std::invalid_argument("random_channel_set: too many subcarriers");
    }
  }
  ChannelMatrixSet h(n_clients, n_tx);
  // Draw one flat response per link (block-fading across the band keeps
  // Fig. 6's "random channel matrix" semantics), with light frequency
  // selectivity from a second tap.
  for (std::size_t c = 0; c < n_clients; ++c) {
    if (gains[c].size() != n_tx) {
      throw std::invalid_argument("random_channel_set: ragged gains");
    }
    for (std::size_t a = 0; a < n_tx; ++a) {
      // Rician split on the dominant tap: |los|^2 = K/(K+1) of its power.
      const double p0 = 0.8 * gains[c][a];
      const cplx los = phasor(rng.uniform_phase()) *
                       std::sqrt(p0 * rice_k / (rice_k + 1.0));
      const cplx tap0 = los + rng.cgaussian(p0 / (rice_k + 1.0));
      const cplx tap1 = rng.cgaussian(0.2 * gains[c][a]);
      const auto& used = used_subcarriers();
      for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
        const double ang = -kTwoPi * static_cast<double>(used[k]) / 64.0;
        h.at(k)(c, a) = tap0 + tap1 * phasor(ang);
      }
    }
  }
  return h;
}

ChannelMatrixSet correlated_channel_set(
    const std::vector<std::vector<double>>& gains, double corr, Rng& rng) {
  if (corr < 0.0 || corr >= 1.0) {
    throw std::invalid_argument("correlated_channel_set: corr must be [0,1)");
  }
  ChannelMatrixSet own = random_channel_set_with_gains(gains, rng);
  if (corr == 0.0) return own;
  // One unit-power shared row; every client leans on it by sqrt(corr),
  // scaled to the client's own link gain so mean power is unchanged.
  const ChannelMatrixSet shared = random_channel_set(1, own.n_tx(), rng);
  const double w_own = std::sqrt(1.0 - corr);
  const double w_shared = std::sqrt(corr);
  for (std::size_t k = 0; k < own.n_subcarriers(); ++k) {
    CMatrix& m = own.at(k);
    const CMatrix& s = shared.at(k);
    for (std::size_t c = 0; c < own.n_clients(); ++c) {
      for (std::size_t a = 0; a < own.n_tx(); ++a) {
        m(c, a) = w_own * m(c, a) +
                  w_shared * std::sqrt(gains[c][a]) * s(0, a);
      }
    }
  }
  return own;
}

ChannelMatrixSet well_conditioned_channel_set(
    const std::vector<std::vector<double>>& gains, Rng& rng) {
  const std::size_t nc = gains.size();
  if (nc == 0 || gains[0].empty()) {
    throw std::invalid_argument("well_conditioned_channel_set: empty gains");
  }
  const std::size_t nt = gains[0].size();
  if (nt < nc) {
    throw std::invalid_argument(
        "well_conditioned_channel_set: need n_tx >= n_clients");
  }
  ChannelMatrixSet h = random_channel_set_with_gains(
      std::vector<std::vector<double>>(nc, std::vector<double>(nt, 1.0)), rng);
  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    CMatrix& m = h.at(k);
    // Gram-Schmidt on client rows.
    for (std::size_t c = 0; c < nc; ++c) {
      cvec row = m.row(c);
      for (std::size_t p = 0; p < c; ++p) {
        const cvec prev = m.row(p);
        cplx proj{};
        for (std::size_t a = 0; a < nt; ++a) {
          proj += std::conj(prev[a]) * row[a];
        }
        for (std::size_t a = 0; a < nt; ++a) row[a] -= proj * prev[a];
      }
      double norm2 = 0.0;
      for (const cplx& v : row) norm2 += std::norm(v);
      // Row power anchored to the client's best link: joint beamforming
      // delivers "the same rate ... similar to traditional 802.11" per
      // client (Section 9), not an aggregated-power bonus.
      double target = 0.0;
      for (std::size_t a = 0; a < nt && a < gains[c].size(); ++a) {
        target = std::max(target, gains[c][a]);
      }
      const double s = norm2 > 1e-30 ? std::sqrt(target / norm2) : 0.0;
      for (cplx& v : row) v *= s;
      m.set_row(c, row);
      // Re-normalize to unit for the next projections, then restore: keep
      // a unit copy via scaling bookkeeping — simpler: orthogonalize on
      // unit rows first. Store unit row back for projection purposes.
      if (c + 1 < nc) {
        cvec unit = row;
        const double inv =
            std::sqrt(target) > 1e-30 ? 1.0 / std::sqrt(target) : 0.0;
        for (cplx& v : unit) v *= inv;
        m.set_row(c, unit);
      }
    }
    // Second pass: restore the target row powers (rows are currently unit
    // except the last).
    for (std::size_t c = 0; c < nc; ++c) {
      double target = 0.0;
      for (std::size_t a = 0; a < nt && a < gains[c].size(); ++a) {
        target = std::max(target, gains[c][a]);
      }
      cvec row = m.row(c);
      double norm2 = 0.0;
      for (const cplx& v : row) norm2 += std::norm(v);
      const double s = norm2 > 1e-30 ? std::sqrt(target / norm2) : 0.0;
      for (cplx& v : row) v *= s;
      m.set_row(c, row);
    }
  }
  return h;
}

SinrReport beamforming_sinr(const ChannelMatrixSet& h, const rvec& phase_err,
                            double noise_power) {
  const auto precoder = ZfPrecoder::build(h);
  if (!precoder) {
    throw std::invalid_argument("beamforming_sinr: singular channel");
  }
  return beamforming_sinr(h, *precoder, phase_err, noise_power);
}

SinrReport beamforming_sinr(const ChannelMatrixSet& h,
                            const ZfPrecoder& precoder_ref,
                            const rvec& phase_err, double noise_power) {
  if (phase_err.size() != h.n_tx()) {
    throw std::invalid_argument("beamforming_sinr: phase_err size != n_tx");
  }
  const ZfPrecoder* precoder = &precoder_ref;
  const std::size_t nc = h.n_clients();

  SinrReport rep;
  rep.sinr.assign(nc, 0.0);
  rep.snr_no_interference.assign(nc, 0.0);
  rep.sinr_per_subcarrier.assign(nc, rvec(h.n_subcarriers(), 0.0));

  for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
    // Effective matrix G = H_err * W where H_err = H diag(e^{j phi}).
    CMatrix h_err = h.at(k);
    for (std::size_t c = 0; c < nc; ++c) {
      for (std::size_t a = 0; a < h.n_tx(); ++a) {
        h_err(c, a) *= phasor(phase_err[a]);
      }
    }
    const CMatrix g = h_err * precoder->weights(k);
    for (std::size_t c = 0; c < nc; ++c) {
      const double sig = std::norm(g(c, c));
      double interf = 0.0;
      for (std::size_t j = 0; j < nc; ++j) {
        if (j != c) interf += std::norm(g(c, j));
      }
      const double sinr = sig / (interf + noise_power);
      rep.sinr_per_subcarrier[c][k] = sinr;
      rep.sinr[c] += sinr;
      rep.snr_no_interference[c] += sig / noise_power;
    }
  }
  const double inv = 1.0 / static_cast<double>(h.n_subcarriers());
  for (std::size_t c = 0; c < nc; ++c) {
    rep.sinr[c] *= inv;
    rep.snr_no_interference[c] *= inv;
  }
  return rep;
}

double snr_reduction_db(std::size_t n_clients, std::size_t n_tx,
                        double misalignment_rad, double snr_db,
                        std::size_t trials, Rng& rng) {
  // Noise chosen so the aligned system sits at snr_db on average (the
  // paper's "system in which the average SNR is X dB").
  double acc_reduction = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const ChannelMatrixSet h = random_channel_set(n_clients, n_tx, rng);
    rvec aligned(n_tx, 0.0);
    rvec misaligned(n_tx, 0.0);
    for (std::size_t a = 1; a < n_tx; ++a) misaligned[a] = misalignment_rad;

    const auto precoder = ZfPrecoder::build(h);
    if (!precoder) continue;
    const double noise =
        precoder->scale() * precoder->scale() / from_db(snr_db);

    const SinrReport base = beamforming_sinr(h, aligned, noise);
    const SinrReport err = beamforming_sinr(h, misaligned, noise);
    for (std::size_t c = 0; c < h.n_clients(); ++c) {
      acc_reduction += to_db(base.sinr[c]) - to_db(err.sinr[c]);
      ++counted;
    }
  }
  return counted ? acc_reduction / static_cast<double>(counted) : 0.0;
}

double expected_inr_db(const ChannelMatrixSet& h, double phase_err_sigma,
                       double noise_power, std::size_t trials, Rng& rng) {
  const auto precoder = ZfPrecoder::build(h);
  if (!precoder) {
    throw std::invalid_argument("expected_inr_db: singular channel");
  }
  // INR at client 0 when its stream is silent: leakage of the other
  // streams plus the noise floor, relative to the noise floor (the
  // quantity Fig. 8 plots).
  double acc = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    rvec phase(h.n_tx(), 0.0);
    for (std::size_t a = 1; a < h.n_tx(); ++a) {
      phase[a] = rng.gaussian(phase_err_sigma);
    }
    double leak = 0.0;
    for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
      CMatrix h_err = h.at(k);
      for (std::size_t c = 0; c < h.n_clients(); ++c) {
        for (std::size_t a = 0; a < h.n_tx(); ++a) {
          h_err(c, a) *= phasor(phase[a]);
        }
      }
      const CMatrix g = h_err * precoder->weights(k);
      for (std::size_t j = 1; j < h.n_clients(); ++j) {
        leak += std::norm(g(0, j));
      }
    }
    leak /= static_cast<double>(h.n_subcarriers());
    acc += (leak + noise_power) / noise_power;
  }
  return to_db(acc / static_cast<double>(trials));
}

std::vector<rvec> jmb_subcarrier_sinrs(const ChannelMatrixSet& h,
                                       double phase_err_sigma,
                                       double noise_power, Rng& rng) {
  const auto precoder = ZfPrecoder::build(h);
  if (!precoder) {
    throw std::invalid_argument("jmb_subcarrier_sinrs: singular channel");
  }
  return jmb_subcarrier_sinrs(h, *precoder, phase_err_sigma, noise_power, rng);
}

std::vector<rvec> jmb_subcarrier_sinrs(const ChannelMatrixSet& h,
                                       const ZfPrecoder& precoder,
                                       double phase_err_sigma,
                                       double noise_power, Rng& rng) {
  rvec phase(h.n_tx(), 0.0);
  for (std::size_t a = 1; a < h.n_tx(); ++a) {
    phase[a] = rng.gaussian(phase_err_sigma);
  }
  const SinrReport rep = beamforming_sinr(h, precoder, phase, noise_power);
  return rep.sinr_per_subcarrier;
}

std::vector<rvec> baseline_subcarrier_snrs(const ChannelMatrixSet& h,
                                           double noise_power) {
  std::vector<rvec> out(h.n_clients(), rvec(h.n_subcarriers(), 0.0));
  for (std::size_t c = 0; c < h.n_clients(); ++c) {
    // Best AP by mean power across the band.
    std::size_t best = 0;
    double best_p = -1.0;
    for (std::size_t a = 0; a < h.n_tx(); ++a) {
      const double p = h.mean_link_power(c, a);
      if (p > best_p) {
        best_p = p;
        best = a;
      }
    }
    for (std::size_t k = 0; k < h.n_subcarriers(); ++k) {
      out[c][k] = std::norm(h.at(k)(c, best)) / noise_power;
    }
  }
  return out;
}

rvec diversity_subcarrier_snrs(const std::vector<cvec>& h_row,
                               double phase_err_sigma, double noise_power,
                               Rng& rng) {
  if (h_row.empty()) {
    throw std::invalid_argument("diversity_subcarrier_snrs: empty channel");
  }
  const std::size_t n_tx = h_row[0].size();
  rvec phase(n_tx, 0.0);
  for (std::size_t a = 1; a < n_tx; ++a) {
    phase[a] = rng.gaussian(phase_err_sigma);
  }

  rvec out(h_row.size(), 0.0);
  for (std::size_t k = 0; k < h_row.size(); ++k) {
    // MRT: every AP contributes |h| coherently (up to its phase error).
    cplx acc{};
    for (std::size_t a = 0; a < n_tx; ++a) {
      acc += std::abs(h_row[k][a]) * phasor(phase[a]);
    }
    out[k] = std::norm(acc) / noise_power;
  }
  return out;
}

}  // namespace jmb::core
