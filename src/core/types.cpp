#include "core/types.h"

#include <stdexcept>

namespace jmb::core {

const std::vector<int>& used_subcarriers() {
  static const std::vector<int> kUsed = [] {
    std::vector<int> v;
    for (int k = -26; k <= 26; ++k) {
      if (k != 0) v.push_back(k);
    }
    return v;
  }();
  return kUsed;
}

std::size_t used_index(int logical) {
  if (logical >= -26 && logical <= -1) {
    return static_cast<std::size_t>(logical + 26);
  }
  if (logical >= 1 && logical <= 26) {
    return static_cast<std::size_t>(logical + 25);
  }
  throw std::invalid_argument("used_index: subcarrier not in use");
}

ChannelMatrixSet::ChannelMatrixSet(std::size_t n_clients, std::size_t n_tx)
    : n_clients_(n_clients),
      n_tx_(n_tx),
      per_sc_(used_subcarriers().size(), CMatrix(n_clients, n_tx)) {}

double ChannelMatrixSet::mean_link_power(std::size_t client,
                                         std::size_t tx) const {
  double acc = 0.0;
  for (const CMatrix& h : per_sc_) acc += std::norm(h(client, tx));
  return per_sc_.empty() ? 0.0 : acc / static_cast<double>(per_sc_.size());
}

}  // namespace jmb::core
