// Distributed phase synchronization — the paper's core contribution
// (Sections 4 and 5.2).
//
// Each slave AP keeps:
//  * a *reference* measurement of the lead->slave channel taken at the
//    channel-measurement time t0, and
//  * a long-term averaged estimate of its frequency offset to the lead,
//    refined on every sync header ("MegaMIMO APs maintain a continuously
//    averaged estimate of their offset with the lead transmitter across
//    multiple transmissions").
//
// Before every joint data transmission the slave re-measures the lead
// channel from the sync header and corrects its transmission by the
// *directly measured* phase ratio h_lead(t)/h_lead(0) — no accumulated
// error — then tracks phase through the packet with the averaged CFO.
#pragma once

#include <optional>

#include "dsp/stats.h"
#include "obs/sink.h"
#include "phy/receiver.h"

namespace jmb::core {

struct PhaseSyncParams {
  double sample_rate_hz = 10e6;
  /// EWMA weight for the long-term CFO average (small = long memory;
  /// infrastructure CFOs are stable, per Section 5.3).
  double cfo_alpha = 0.05;
};

/// Correction a slave applies to its transmit baseband.
struct SlaveCorrection {
  cplx phasor_at_header{1.0, 0.0};  ///< e^{j (omega_L - omega_S)(t1 - t0)}
  double cfo_hz = 0.0;  ///< averaged f_L - f_S for in-packet tracking

  /// Rotation to apply at `dt` seconds after the sync-header measurement.
  [[nodiscard]] cplx at(double dt_seconds) const {
    return phasor_at_header * phasor(kTwoPi * cfo_hz * dt_seconds);
  }
};

class SlavePhaseSync {
 public:
  explicit SlavePhaseSync(PhaseSyncParams p = {});

  /// Install the reference channel captured during the channel-measurement
  /// phase (time t0). Clears nothing else: the CFO average persists, as it
  /// should for infrastructure nodes.
  void set_reference(const phy::ChannelEstimate& h_lead_at_t0,
                     double t0_seconds);

  [[nodiscard]] bool has_reference() const { return reference_.has_value(); }

  /// Feed one sync-header observation (channel + the preamble's CFO
  /// estimate) at time t1. Updates the long-term CFO average — including
  /// the cross-header phase-ratio refinement (resolving the 2-pi ambiguity
  /// with the current average) — and returns the correction to apply to
  /// the upcoming joint transmission. Requires a reference.
  [[nodiscard]] SlaveCorrection on_sync_header(
      const phy::ChannelEstimate& h_lead_now, double preamble_cfo_hz,
      double t1_seconds);

  /// Feed a CFO observation without transmitting (e.g. overheard lead
  /// traffic) to warm up the average.
  void observe_cfo(double preamble_cfo_hz);

  /// Seed the average with a high-precision estimate (the slave processes
  /// the lead's interleaved measurement symbols exactly like a client,
  /// giving ~10 Hz accuracy from the long time span). Re-initializes the
  /// long-term average; later sync headers refine from there.
  void set_cfo_estimate(double cfo_hz);

  /// Current long-term CFO estimate (f_lead - f_slave as seen at the
  /// slave's downconverter), 0 before any observation.
  [[nodiscard]] double cfo_estimate_hz() const;

  /// Publish per-header telemetry (CFO innovation, residual phase error)
  /// into `sink`'s registry (null detaches). Caller keeps ownership.
  void attach_obs(const obs::ObsSink* sink) { obs_ = sink; }

  /// Telemetry from the most recent on_sync_header(): how far the
  /// header-to-header phase walk strayed from the averaged-CFO prediction
  /// (0 until two headers have been seen) and the preamble CFO innovation
  /// against the long-term average. The resilience controller consumes
  /// these as per-AP sync-health evidence.
  [[nodiscard]] double last_residual_rad() const { return last_residual_rad_; }
  [[nodiscard]] double last_cfo_innovation_hz() const {
    return last_innovation_hz_;
  }

 private:
  const obs::ObsSink* obs_ = nullptr;
  PhaseSyncParams params_;
  std::optional<phy::ChannelEstimate> reference_;
  double t0_ = 0.0;
  Ewma cfo_avg_;

  /// Previous sync-header phase sample for the ratio-based refinement.
  std::optional<double> last_header_phase_;
  double last_header_t_ = 0.0;

  double last_residual_rad_ = 0.0;
  double last_innovation_hz_ = 0.0;
};

}  // namespace jmb::core
