#include "core/naive_baseline.h"

#include <cmath>

namespace jmb::core {

double naive_phase_error(double elapsed_s, const NaiveSyncParams& p, Rng& rng) {
  // One-shot CFO estimate error rotates linearly; Wiener phase noise adds
  // a random walk with variance 2 pi B t.
  const double cfo_err = rng.gaussian(p.cfo_estimation_error_hz);
  const double drift = kTwoPi * cfo_err * elapsed_s;
  const double pn =
      rng.gaussian(std::sqrt(kTwoPi * p.phase_noise_linewidth_hz * elapsed_s));
  return wrap_phase(drift + pn);
}

double jmb_phase_error(double time_since_header_s, double residual_cfo_hz,
                       double resync_error_rad,
                       double phase_noise_linewidth_hz, Rng& rng) {
  const double resync = rng.gaussian(resync_error_rad);
  const double drift =
      kTwoPi * rng.gaussian(residual_cfo_hz) * time_since_header_s;
  const double pn = rng.gaussian(
      std::sqrt(kTwoPi * phase_noise_linewidth_hz * time_since_header_s));
  return wrap_phase(resync + drift + pn);
}

}  // namespace jmb::core
