#include "core/compat11n.h"

#include <cmath>
#include <stdexcept>

#include "linalg/lu.h"
#include "linalg/pinv.h"
#include "phy/workspace.h"

namespace jmb::core {

rvec rx_zf_stream_snrs(const CMatrix& h, double power, double noise_power) {
  // Stream j's post-ZF noise enhancement is [(H^H H)^{-1}]_jj.
  const CMatrix gram = h.hermitian() * h;
  const auto inv = inverse(gram);
  if (!inv) return rvec(h.cols(), 0.0);  // rank-deficient: streams unusable
  rvec out(h.cols());
  for (std::size_t j = 0; j < h.cols(); ++j) {
    const double enh = std::max((*inv)(j, j).real(), 1e-15);
    out[j] = power / (enh * noise_power);
  }
  return out;
}

namespace {

/// Scalar per-node oscillator: deterministic CFO plus Wiener phase noise.
struct NodeOsc {
  double cfo_hz = 0.0;
  chan::Oscillator osc;

  NodeOsc(double ppm, double carrier_hz, double linewidth, std::uint64_t seed)
      : cfo_hz(ppm * 1e-6 * carrier_hz),
        osc({.ppm = 0.0,  // CFO handled here; osc supplies phase noise only
             .carrier_hz = carrier_hz,
             .sample_rate_hz = 10e6,
             .phase_noise_linewidth_hz = linewidth,
             .seed = seed}) {}

  [[nodiscard]] double phase_at(double t) const {
    return kTwoPi * cfo_hz * t +
           osc.phase_noise_at(
               static_cast<std::uint64_t>(std::max(0.0, t * 10e6)));
  }
};

}  // namespace

Compat11nResult run_compat11n(const Compat11nParams& p, Rng& rng,
                              Workspace* ws) {
  const std::size_t n_tx = p.n_aps * p.ants_per_node;
  const std::size_t n_rx = p.n_clients * p.ants_per_node;
  if (n_tx < 2) {
    throw std::invalid_argument("run_compat11n: need >= 2 tx antennas");
  }

  // True channels (time-invariant within the experiment) with link gain.
  const ChannelMatrixSet h_true = random_channel_set_with_gains(
      std::vector<std::vector<double>>(n_rx,
                                       std::vector<double>(n_tx, p.link_gain)),
      rng, 52, p.rice_k);
  const std::size_t n_sc = h_true.n_subcarriers();

  // One oscillator per AP (both antennas share it) and per client.
  std::vector<NodeOsc> ap_osc, cl_osc;
  for (std::size_t a = 0; a < p.n_aps; ++a) {
    ap_osc.emplace_back(rng.uniform(-p.ppm_range, p.ppm_range), p.carrier_hz,
                        p.phase_noise_linewidth_hz, rng.next_u64());
  }
  for (std::size_t c = 0; c < p.n_clients; ++c) {
    cl_osc.emplace_back(rng.uniform(-p.ppm_range, p.ppm_range), p.carrier_hz,
                        p.phase_noise_linewidth_hz, rng.next_u64());
  }
  const auto ap_of_ant = [&](std::size_t tx) { return tx / p.ants_per_node; };
  const auto client_of_rx = [&](std::size_t r) { return r / p.ants_per_node; };

  const double est_nvar = p.link_gain / from_db(p.measure_snr_db);

  // CSI a stock client reports for tx antenna `a` sounded at time t:
  // the true channel rotated by the pair's oscillator offset, plus noise.
  const auto sound_entry = [&](std::size_t r, std::size_t a, std::size_t k,
                               double t) {
    const double phi = ap_osc[ap_of_ant(a)].phase_at(t) -
                       cl_osc[client_of_rx(r)].phase_at(t);
    return h_true.at(k)(r, a) * phasor(phi) + rng.cgaussian(est_nvar);
  };
  // The slave's own measurement of the lead channel (sync header) at t,
  // reduced to the unit rotation it implies relative to phase 0 truth.
  const auto slave_lead_rotation = [&](std::size_t ap, double t) {
    const double phi = ap_osc[0].phase_at(t) - ap_osc[ap].phase_at(t);
    // A real slave averages 52 subcarriers of a strong AP-AP link; model
    // the residual as a small phase jitter.
    const double jitter = rng.gaussian(0.005);
    return phasor(phi + jitter);
  };

  // ---- Sounding schedule: t0 sounds (ant0 = L1, ant1 = L2); sounding s
  // (s >= 1) sounds (L1, antenna s+1).
  const std::size_t n_soundings = n_tx - 1;
  std::vector<double> t_of(n_soundings);
  for (std::size_t s = 0; s < n_soundings; ++s) {
    t_of[s] = 1e-3 + static_cast<double>(s) * p.sounding_interval_s;
  }
  const double t0 = t_of[0];

  // Measurements: per sounding, per rx antenna, per subcarrier, the two
  // sounded columns; plus the slave's lead-rotation at each sounding time.
  // Reconstruct directly.
  std::vector<CMatrix> h_hat(n_sc, CMatrix(n_rx, n_tx));
  std::vector<CMatrix> h_naive(n_sc, CMatrix(n_rx, n_tx));

  // Reference-antenna (L1) measurements at t0 per (rx, subcarrier), reused
  // for every later ratio.
  std::vector<std::vector<cplx>> l1_at_t0(n_rx, std::vector<cplx>(n_sc));
  for (std::size_t r = 0; r < n_rx; ++r) {
    for (std::size_t k = 0; k < n_sc; ++k) {
      l1_at_t0[r][k] = sound_entry(r, 0, k, t0);
      h_hat[k](r, 0) = l1_at_t0[r][k];
      h_naive[k](r, 0) = l1_at_t0[r][k];
      const cplx l2 = sound_entry(r, 1, k, t0);
      h_hat[k](r, 1) = l2;
      h_naive[k](r, 1) = l2;
    }
  }
  for (std::size_t s = 1; s < n_soundings; ++s) {
    const std::size_t ant = s + 1;
    const std::size_t ap = ap_of_ant(ant);
    const double ts = t_of[s];
    // Slave-side accumulated lead rotation between t0 and ts.
    const cplx rho_s =
        slave_lead_rotation(ap, ts) * std::conj(slave_lead_rotation(ap, t0));
    for (std::size_t r = 0; r < n_rx; ++r) {
      // Client-side accumulated lead rotation from the repeated L1 column,
      // averaged over subcarriers for robustness.
      cplx rho_r_acc{};
      std::vector<cplx> meas(n_sc);
      for (std::size_t k = 0; k < n_sc; ++k) {
        const cplx l1_now = sound_entry(r, 0, k, ts);
        rho_r_acc += l1_now * std::conj(l1_at_t0[r][k]);
        meas[k] = sound_entry(r, ant, k, ts);
      }
      const double mag = std::abs(rho_r_acc);
      const cplx rho_r = mag > 1e-15 ? rho_r_acc / mag : cplx{1.0, 0.0};
      // Rotate the slave antenna's measurement back to t0:
      // accumulated (S - R) phase = (L - R) - (L - S) = rho_r / rho_s.
      const cplx corr = std::conj(rho_r) * rho_s;
      for (std::size_t k = 0; k < n_sc; ++k) {
        h_hat[k](r, ant) = meas[k] * corr;
        h_naive[k](r, ant) = meas[k];  // no correction: stale phases
      }
    }
  }

  // ---- Reconstruction error vs the oracle H(t0) (rows have a free
  // client-common phase; align each row by its L1 entry before comparing).
  Compat11nResult result;
  const auto rel_err = [&](const std::vector<CMatrix>& est) {
    double num = 0.0, den = 0.0;
    for (std::size_t k = 0; k < n_sc; ++k) {
      for (std::size_t r = 0; r < n_rx; ++r) {
        // Oracle row at t0, with the same row-common rotation as the
        // estimate (anchored on the L1 entry).
        const double phi_row = cl_osc[client_of_rx(r)].phase_at(t0);
        (void)phi_row;
        for (std::size_t a = 0; a < n_tx; ++a) {
          const double phi = ap_osc[ap_of_ant(a)].phase_at(t0) -
                             cl_osc[client_of_rx(r)].phase_at(t0);
          const cplx truth = h_true.at(k)(r, a) * phasor(phi);
          num += std::norm(est[k](r, a) - truth);
          den += std::norm(truth);
        }
      }
    }
    return std::sqrt(num / den);
  };
  result.reconstruction_rel_err = rel_err(h_hat);
  result.naive_rel_err = rel_err(h_naive);

  // ---- Joint transmission at t0 + tx_delay: ZF from h_hat; true channel
  // at transmit time has rotated, slaves correct via sync header with a
  // small residual (one error per slave AP, shared by its antennas).
  ChannelMatrixSet h_for_zf(n_rx, n_tx);
  for (std::size_t k = 0; k < n_sc; ++k) h_for_zf.at(k) = h_hat[k];
  const auto precoder = ws ? ZfPrecoder::build(h_for_zf, *ws)
                           : ZfPrecoder::build(h_for_zf);
  result.jmb_stream_sinr.assign(n_rx, rvec(n_sc, 0.0));
  double noise = p.noise_power;
  if (precoder && p.effective_snr_db > 0.0) {
    noise = precoder->scale() * precoder->scale() / from_db(p.effective_snr_db);
  }
  if (precoder) {
    rvec slave_err(p.n_aps, 0.0);
    for (std::size_t a = 1; a < p.n_aps; ++a) {
      slave_err[a] = rng.gaussian(p.tx_phase_err_sigma);
    }
    CMatrix h_now, g;
    for (std::size_t k = 0; k < n_sc; ++k) {
      h_now.resize(n_rx, n_tx);
      for (std::size_t r = 0; r < n_rx; ++r) {
        for (std::size_t a = 0; a < n_tx; ++a) {
          const std::size_t ap = ap_of_ant(a);
          // After the slave's sync-header correction, the channel matches
          // the t0 snapshot up to the residual error (and a row-common
          // client rotation, which receive processing absorbs).
          const double phi = ap_osc[ap].phase_at(t0) -
                             cl_osc[client_of_rx(r)].phase_at(t0) +
                             slave_err[ap];
          h_now(r, a) = h_true.at(k)(r, a) * phasor(phi);
        }
      }
      multiply_into(h_now, precoder->weights(k), g);
      for (std::size_t r = 0; r < n_rx; ++r) {
        const double sig = std::norm(g(r, r));
        double interf = 0.0;
        for (std::size_t j = 0; j < n_rx; ++j) {
          if (j != r) interf += std::norm(g(r, j));
        }
        result.jmb_stream_sinr[r][k] = sig / (interf + noise);
      }
    }
  }

  // ---- 802.11n baseline: each client receives 2 streams from the lead
  // AP alone, receiver-side ZF. Like the JMB side, the operating point is
  // pinned to the band (the paper places clients by SNR; both systems see
  // the same placements), so normalize each client's mean stream SNR to
  // the effective target while keeping the per-stream/subcarrier shape.
  result.baseline_stream_snr.assign(n_rx, rvec(n_sc, 0.0));
  for (std::size_t c = 0; c < p.n_clients; ++c) {
    for (std::size_t k = 0; k < n_sc; ++k) {
      CMatrix h2(p.ants_per_node, p.ants_per_node);
      for (std::size_t i = 0; i < p.ants_per_node; ++i) {
        for (std::size_t j = 0; j < p.ants_per_node; ++j) {
          h2(i, j) = h_true.at(k)(c * p.ants_per_node + i, j);
        }
      }
      const rvec snrs = rx_zf_stream_snrs(h2, 1.0, noise);
      for (std::size_t j = 0; j < p.ants_per_node; ++j) {
        result.baseline_stream_snr[c * p.ants_per_node + j][k] = snrs[j];
      }
    }
    if (p.effective_snr_db > 0.0) {
      // Harmonic mean: rx-ZF noise-enhancement valleys dominate the coded
      // error rate, so anchoring the harmonic mean to the target tracks
      // the effective-SNR placement far better than the arithmetic mean.
      double inv_acc = 0.0;
      for (std::size_t j = 0; j < p.ants_per_node; ++j) {
        for (double v : result.baseline_stream_snr[c * p.ants_per_node + j]) {
          inv_acc += 1.0 / std::max(v, 1e-12);
        }
      }
      const double hmean =
          static_cast<double>(p.ants_per_node * n_sc) / inv_acc;
      const double fix = from_db(p.effective_snr_db) / std::max(hmean, 1e-12);
      for (std::size_t j = 0; j < p.ants_per_node; ++j) {
        for (double& v : result.baseline_stream_snr[c * p.ants_per_node + j]) {
          v *= fix;
        }
      }
    }
  }
  return result;
}

}  // namespace jmb::core
