// 802.11n compatibility (Section 6): off-the-shelf clients cannot receive
// JMB's interleaved measurement frames and can only sound as many transmit
// antennas at once as they have receive chains. MegaMIMO "tricks" them by
// sending a series of standard two-stream soundings that always include
// one fixed *reference antenna* (L1). Between soundings, the accumulated
// lead-client phase (from the repeated L1 measurements) and the
// accumulated lead-slave phase (from the slave's own sync-header
// measurements) are both observable; their difference rotates every
// slave-antenna measurement back to the reference time t0 (Section 6.2).
//
// This module simulates that protocol at channel-matrix level: true
// channels, per-node oscillators with phase noise, per-sounding estimation
// noise — exercising exactly the bookkeeping the paper introduces, and
// reporting both reconstruction accuracy and the post-beamforming SINRs
// that drive the Fig. 12/13 throughput results.
#pragma once

#include "chan/oscillator.h"
#include "core/link_model.h"

namespace jmb {
class Workspace;
}

namespace jmb::core {

struct Compat11nParams {
  std::size_t n_aps = 2;          ///< 2-antenna APs; AP 0 is the lead
  std::size_t n_clients = 2;      ///< 2-antenna 802.11n clients
  std::size_t ants_per_node = 2;

  double sounding_interval_s = 2e-3;  ///< spacing between soundings
  double tx_delay_s = 10e-3;          ///< data transmission time after t0
  double measure_snr_db = 35.0;       ///< per-sounding estimation SNR
  double ppm_range = 2.0;             ///< oscillator spread (APs and clients)
  double carrier_hz = 2.4e9;
  double phase_noise_linewidth_hz = 0.1;
  /// Residual per-slave phase error of the sync-header correction at
  /// transmit time (calibrated from the sample-level Fig. 7 result).
  double tx_phase_err_sigma = 0.02;
  /// Operating point: noise floor set so joint ZF would deliver this
  /// post-beamforming SNR with a perfect snapshot; <= 0 uses noise_power.
  double effective_snr_db = 20.0;
  double noise_power = 1.0;
  /// Mean link power gain (flat across clients here; benches scale it to
  /// hit the paper's SNR bands).
  double link_gain = 100.0;
  /// Rician K of each link (ceiling APs in a conference room are LOS-ish;
  /// keeps the 4x4 joint channel well conditioned, as the paper observes).
  double rice_k = 5.0;
};

struct Compat11nResult {
  /// Max relative error |H_hat - H(t0)|/|H(t0)| over subcarriers after
  /// row-phase alignment (rows carry an arbitrary client-common phase).
  double reconstruction_rel_err = 0.0;
  /// Same protocol *without* the reference-antenna correction (naive
  /// stitching of soundings taken at different times) — shows why the
  /// trick is needed.
  double naive_rel_err = 0.0;
  /// Post-joint-ZF per-subcarrier SINRs per receive antenna (streams map
  /// 1:1 onto receive antennas): [rx_antenna][subcarrier], linear.
  std::vector<rvec> jmb_stream_sinr;
  /// Baseline 802.11n: per-stream post-receiver-ZF SNRs when the client's
  /// best AP sends it 2 streams: [rx_antenna][subcarrier].
  std::vector<rvec> baseline_stream_snr;
};

/// Run one end-to-end compat measurement + joint transmission evaluation.
/// A non-null `ws` routes the joint ZF build through the workspace's pinv
/// scratch; results are bitwise-identical either way.
[[nodiscard]] Compat11nResult run_compat11n(const Compat11nParams& p, Rng& rng,
                                            Workspace* ws = nullptr);

/// Receiver-side zero-forcing stream SNRs for an n_rx x n_streams MIMO
/// channel with per-stream transmit power `power`: stream j gets
/// power / ([ (H^H H)^{-1} ]_jj * noise). Exposed for tests and for the
/// 802.11n baseline model.
[[nodiscard]] rvec rx_zf_stream_snrs(const CMatrix& h, double power,
                                     double noise_power);

}  // namespace jmb::core
