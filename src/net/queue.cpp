#include "net/queue.h"

#include <algorithm>
#include <stdexcept>

namespace jmb::net {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

void DownlinkQueue::enqueue(std::int64_t seq, Packet p) {
  if (p.client >= subs_.size()) subs_.resize(p.client + 1);
  std::deque<Entry>& sub = subs_[p.client];
  if (sub.empty() || seq > sub.back().seq) {
    sub.push_back({seq, p});
  } else {
    // Front sequences descend, so a push_front lands at its subqueue's
    // front; the general insert keeps the deque seq-sorted regardless.
    auto it = std::lower_bound(
        sub.begin(), sub.end(), seq,
        [](const Entry& e, std::int64_t s) { return e.seq < s; });
    sub.insert(it, {seq, p});
  }
  ++size_;
}

void DownlinkQueue::push(Packet p) { enqueue(back_seq_++, p); }

void DownlinkQueue::push_front(Packet p) {
  ++p.retries;
  enqueue(front_seq_--, p);
}

std::size_t DownlinkQueue::head_client() const {
  std::size_t best = kNpos;
  std::int64_t best_seq = 0;
  for (std::size_t c = 0; c < subs_.size(); ++c) {
    if (subs_[c].empty()) continue;
    const std::int64_t seq = subs_[c].front().seq;
    if (best == kNpos || seq < best_seq) {
      best = c;
      best_seq = seq;
    }
  }
  return best;
}

const Packet& DownlinkQueue::head() const {
  const std::size_t c = head_client();
  if (c == kNpos) throw std::logic_error("DownlinkQueue::head: empty");
  return subs_[c].front().pkt;
}

std::vector<Packet> DownlinkQueue::pop_joint(std::size_t max_streams) {
  std::vector<Packet> out;
  if (size_ == 0 || max_streams == 0) return out;
  // First packet per distinct client, taken in global arrival order ==
  // the max_streams clients with the smallest front sequence numbers.
  std::vector<std::pair<std::int64_t, std::size_t>> fronts;
  fronts.reserve(subs_.size());
  for (std::size_t c = 0; c < subs_.size(); ++c) {
    if (!subs_[c].empty()) fronts.emplace_back(subs_[c].front().seq, c);
  }
  if (fronts.size() > max_streams) {
    std::nth_element(fronts.begin(), fronts.begin() + (max_streams - 1),
                     fronts.end());
    fronts.resize(max_streams);
  }
  std::sort(fronts.begin(), fronts.end());
  out.reserve(fronts.size());
  for (const auto& [seq, c] : fronts) {
    out.push_back(subs_[c].front().pkt);
    subs_[c].pop_front();
    --size_;
  }
  return out;
}

std::optional<Packet> DownlinkQueue::pop() {
  const std::size_t c = head_client();
  if (c == kNpos) return std::nullopt;
  Packet p = subs_[c].front().pkt;
  subs_[c].pop_front();
  --size_;
  return p;
}

std::vector<std::size_t> DownlinkQueue::clients_fifo() const {
  std::vector<std::pair<std::int64_t, std::size_t>> fronts;
  fronts.reserve(subs_.size());
  for (std::size_t c = 0; c < subs_.size(); ++c) {
    if (!subs_[c].empty()) fronts.emplace_back(subs_[c].front().seq, c);
  }
  std::sort(fronts.begin(), fronts.end());
  std::vector<std::size_t> out;
  out.reserve(fronts.size());
  for (const auto& [seq, c] : fronts) out.push_back(c);
  return out;
}

const Packet* DownlinkQueue::front_of(std::size_t client) const {
  if (client >= subs_.size() || subs_[client].empty()) return nullptr;
  return &subs_[client].front().pkt;
}

std::size_t DownlinkQueue::backlog(std::size_t client) const {
  return client < subs_.size() ? subs_[client].size() : 0;
}

AggFrame DownlinkQueue::pop_aggregate(std::size_t client,
                                      const AggLimits& lim) {
  AggFrame frame;
  frame.client = client;
  if (client >= subs_.size()) return frame;
  std::deque<Entry>& sub = subs_[client];
  const std::size_t max_frames = std::max<std::size_t>(lim.max_frames, 1);
  while (!sub.empty() && frame.mpdus.size() < max_frames) {
    const Packet& p = sub.front().pkt;
    // The head packet always ships (a frame must carry something); later
    // packets only join while the byte budget holds.
    if (!frame.mpdus.empty() && frame.total_bytes + p.bytes > lim.max_bytes) {
      break;
    }
    frame.total_bytes += p.bytes;
    frame.mpdus.push_back(p);
    sub.pop_front();
    --size_;
  }
  return frame;
}

}  // namespace jmb::net
