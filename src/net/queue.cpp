#include "net/queue.h"

#include <algorithm>
#include <stdexcept>

namespace jmb::net {

void DownlinkQueue::push(Packet p) { q_.push_back(p); }

void DownlinkQueue::push_front(Packet p) { q_.push_front(p); }

const Packet& DownlinkQueue::head() const {
  if (q_.empty()) throw std::logic_error("DownlinkQueue::head: empty");
  return q_.front();
}

std::vector<Packet> DownlinkQueue::pop_joint(std::size_t max_streams) {
  std::vector<Packet> out;
  if (q_.empty() || max_streams == 0) return out;
  std::vector<std::size_t> taken_clients;
  for (auto it = q_.begin(); it != q_.end() && out.size() < max_streams;) {
    const bool seen = std::find(taken_clients.begin(), taken_clients.end(),
                                it->client) != taken_clients.end();
    if (!seen) {
      taken_clients.push_back(it->client);
      out.push_back(*it);
      it = q_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::optional<Packet> DownlinkQueue::pop() {
  if (q_.empty()) return std::nullopt;
  Packet p = q_.front();
  q_.pop_front();
  return p;
}

}  // namespace jmb::net
