// The shared downlink queue of Section 9: all downlink packets reach every
// AP over the Ethernet backhaul, so all APs see one queue. Each packet has
// a designated AP (the strongest to its client), which becomes the lead for
// the transmission that carries it; the lead then picks extra packets for
// joint transmission, one per additional client.
//
// Internally the queue keeps one subqueue per client, ordered by a global
// arrival sequence number, so the legacy single-deque FIFO semantics are
// reproduced exactly (head = globally oldest packet; pop_joint = first
// packet per distinct client in arrival order) while joint selection costs
// O(active clients) instead of a full-queue scan, and scheduling policies
// (traffic_api.h) can pick clients and aggregate multiple packets per
// client without disturbing other subqueues.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace jmb::net {

struct Packet {
  std::size_t client = 0;        ///< destination client index
  std::size_t bytes = 1500;
  std::size_t designated_ap = 0; ///< strongest AP to this client
  double enqueue_s = 0.0;
  int retries = 0;
  std::uint64_t id = 0;
  // --- traffic-subsystem fields (defaults keep legacy callers as-is) ---
  std::uint32_t flow = 0;   ///< flow index within the client (0 = default)
  double deadline_s = 0.0;  ///< absolute delivery deadline; 0 = none
};

/// A-MPDU-style aggregation limits: how many packets one client may pack
/// into its stream of a single joint transmission, and the byte budget
/// they must fit in. The head packet is always taken, so max_frames = 1
/// reproduces the one-packet-per-client legacy behaviour.
struct AggLimits {
  std::size_t max_frames = 1;
  std::size_t max_bytes = static_cast<std::size_t>(-1);
};

/// One client's aggregated allocation within a (joint) transmission: a
/// front run of its subqueue, in arrival order.
struct AggFrame {
  std::size_t client = 0;
  std::vector<Packet> mpdus;
  std::size_t total_bytes = 0;  ///< sum of mpdu payload bytes
};

class DownlinkQueue {
 public:
  void push(Packet p);
  /// Failed packets return to the front (they keep their place, as in
  /// "APs keep packets in the queue until they are ACKed"). The re-queue
  /// IS the retry: push_front increments Packet::retries itself, so a
  /// retransmitted packet can never be re-queued with a stale count.
  void push_front(Packet p);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Globally oldest packet. Throws std::logic_error on an empty queue
  /// (reading a dangling reference would be UB).
  [[nodiscard]] const Packet& head() const;

  /// Pop the head packet plus up to max_streams-1 further packets for
  /// *distinct other clients* (first match per client, preserving order) —
  /// the joint-transmission selection of Section 9. The head's designated
  /// AP leads the transmission.
  [[nodiscard]] std::vector<Packet> pop_joint(std::size_t max_streams);

  /// Pop just the head (baseline 802.11 behaviour).
  [[nodiscard]] std::optional<Packet> pop();

  // --- scheduler/aggregation interface (traffic subsystem) ---

  /// Clients with a non-empty subqueue, ordered by their oldest packet's
  /// arrival (the order pop_joint serves them). O(active clients).
  [[nodiscard]] std::vector<std::size_t> clients_fifo() const;

  /// Oldest queued packet for `client`, or nullptr when it has none.
  [[nodiscard]] const Packet* front_of(std::size_t client) const;

  /// Queued packets for `client`.
  [[nodiscard]] std::size_t backlog(std::size_t client) const;

  /// Pop a front run of `client`'s subqueue: up to lim.max_frames packets
  /// whose payload bytes fit lim.max_bytes (the first packet is always
  /// taken). Empty subqueue yields an empty frame.
  [[nodiscard]] AggFrame pop_aggregate(std::size_t client,
                                       const AggLimits& lim);

 private:
  /// Per-client subqueue; packets kept in ascending seq order, so front()
  /// is the client's oldest packet.
  struct Entry {
    std::int64_t seq;
    Packet pkt;
  };

  void enqueue(std::int64_t seq, Packet p);
  /// Index of the client owning the globally oldest packet, or npos.
  [[nodiscard]] std::size_t head_client() const;

  std::vector<std::deque<Entry>> subs_;
  std::size_t size_ = 0;
  std::int64_t back_seq_ = 0;    ///< next push() sequence (ascending)
  std::int64_t front_seq_ = -1;  ///< next push_front() sequence (descending)
};

}  // namespace jmb::net
