// The shared downlink queue of Section 9: all downlink packets reach every
// AP over the Ethernet backhaul, so all APs see one queue. Each packet has
// a designated AP (the strongest to its client), which becomes the lead for
// the transmission that carries it; the lead then picks extra packets for
// joint transmission, one per additional client.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace jmb::net {

struct Packet {
  std::size_t client = 0;        ///< destination client index
  std::size_t bytes = 1500;
  std::size_t designated_ap = 0; ///< strongest AP to this client
  double enqueue_s = 0.0;
  int retries = 0;
  std::uint64_t id = 0;
};

class DownlinkQueue {
 public:
  void push(Packet p);
  /// Failed packets return to the front (they keep their place, as in
  /// "APs keep packets in the queue until they are ACKed").
  void push_front(Packet p);

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] const Packet& head() const;

  /// Pop the head packet plus up to max_streams-1 further packets for
  /// *distinct other clients* (first match per client, preserving order) —
  /// the joint-transmission selection of Section 9. The head's designated
  /// AP leads the transmission.
  [[nodiscard]] std::vector<Packet> pop_joint(std::size_t max_streams);

  /// Pop just the head (baseline 802.11 behaviour).
  [[nodiscard]] std::optional<Packet> pop();

 private:
  std::deque<Packet> q_;
};

}  // namespace jmb::net
