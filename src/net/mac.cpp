#include "net/mac.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "fault/injector.h"
#include "fault/resilience.h"
#include "net/scheduler.h"
#include "rate/effective_snr.h"
#include "rate/per.h"

namespace jmb::net {

namespace {

/// Airtime of a slot that carries no data (sync preamble + turnaround):
/// what an idle or headerless slot costs.
double idle_slot_s(const MacParams& params) {
  return static_cast<double>(phy::kPreambleLen) /
             params.airtime.sample_rate_hz +
         params.airtime.turnaround_s;
}

/// Latency sample on delivery, when the caller asked for them.
void note_delivery(MacReport& report, const MacParams& params, const Packet& p,
                   double t) {
  if (params.record_latency) report.frame_latency_s.push_back(t - p.enqueue_s);
}

void finalize(MacReport& report, const MacParams& params) {
  report.duration_s = params.duration_s;
  report.total_goodput_mbps = 0.0;
  for (ClientStats& c : report.per_client) {
    c.goodput_mbps = static_cast<double>(c.delivered) *
                     static_cast<double>(params.psdu_bytes) * 8.0 /
                     params.duration_s / 1e6;
    report.total_goodput_mbps += c.goodput_mbps;
  }
}

/// Advance the fault timeline to virtual time t and forward new injection
/// edges to the controller's latency bookkeeping.
void pump_mac_faults(fault::FaultSession* fault,
                     fault::ResilienceController* ctrl, double t) {
  if (!fault) return;
  const std::size_t before = fault->events_applied();
  fault->advance_to(t);
  if (ctrl && fault->events_applied() != before) {
    ctrl->note_fault(fault->last_fault_t());
  }
}

/// Tracks the controller's quarantine / recovery counters across the run
/// and folds each new latency sample into running means.
struct LatencyAccumulator {
  std::size_t seen_quarantines = 0;
  std::size_t seen_recoveries = 0;
  double detect_sum = 0.0;
  double recover_sum = 0.0;

  void sample(const fault::ResilienceController& ctrl) {
    if (ctrl.quarantine_events() > seen_quarantines) {
      seen_quarantines = ctrl.quarantine_events();
      detect_sum += ctrl.last_detect_latency_s();
    }
    if (ctrl.recoveries() > seen_recoveries) {
      seen_recoveries = ctrl.recoveries();
      recover_sum += ctrl.last_recover_latency_s();
    }
  }
  void fold_into(MacReport& report) const {
    report.quarantines = seen_quarantines;
    if (seen_quarantines > 0) {
      report.mean_time_to_detect_s =
          detect_sum / static_cast<double>(seen_quarantines);
    }
    if (seen_recoveries > 0) {
      report.mean_time_to_recover_s =
          recover_sum / static_cast<double>(seen_recoveries);
    }
  }
};

/// A-MPDU delimiter overhead charged per aggregated subframe.
constexpr std::size_t kMpduDelimiterBytes = 4;

/// Accumulates per-(client, flow) delivery statistics for traffic-mode
/// runs. std::map keys keep the export order deterministic.
class FlowTracker {
 public:
  void deliver(const Packet& p, double t) {
    Accum& a = acc_[{p.client, p.flow}];
    ++a.delivered;
    a.bytes += p.bytes;
    const double lat = t - p.enqueue_s;
    a.lat_sum += lat;
    a.lat_sumsq += lat * lat;
    a.lat_max = std::max(a.lat_max, lat);
    if (p.deadline_s > 0.0 && t > p.deadline_s) ++a.misses;
  }
  void drop(const Packet& p) { ++acc_[{p.client, p.flow}].dropped; }

  void fold_into(MacReport& report, double duration_s) const {
    report.flows.reserve(acc_.size());
    for (const auto& [key, a] : acc_) {
      FlowStats f;
      f.client = key.first;
      f.flow = key.second;
      f.delivered = a.delivered;
      f.dropped = a.dropped;
      f.deadline_misses = a.misses;
      f.delivered_bytes = a.bytes;
      f.goodput_mbps =
          static_cast<double>(a.bytes) * 8.0 / duration_s / 1e6;
      if (a.delivered > 0) {
        const double n = static_cast<double>(a.delivered);
        f.mean_latency_s = a.lat_sum / n;
        f.max_latency_s = a.lat_max;
        const double var =
            a.lat_sumsq / n - f.mean_latency_s * f.mean_latency_s;
        f.jitter_s = var > 0.0 ? std::sqrt(var) : 0.0;
      }
      report.flows.push_back(f);
    }
  }

 private:
  struct Accum {
    std::size_t delivered = 0;
    std::size_t dropped = 0;
    std::size_t misses = 0;
    std::size_t bytes = 0;
    double lat_sum = 0.0;
    double lat_sumsq = 0.0;
    double lat_max = 0.0;
  };
  std::map<std::pair<std::size_t, std::uint32_t>, Accum> acc_;
};

/// Goodput from actual delivered bytes — traffic-mode packets are not all
/// params.psdu_bytes, so the legacy delivered-count finalize() would lie.
void finalize_traffic(MacReport& report, const MacParams& params,
                      const std::vector<double>& client_bytes) {
  report.duration_s = params.duration_s;
  report.total_goodput_mbps = 0.0;
  for (std::size_t c = 0; c < report.per_client.size(); ++c) {
    report.per_client[c].goodput_mbps =
        client_bytes[c] * 8.0 / params.duration_s / 1e6;
    report.total_goodput_mbps += report.per_client[c].goodput_mbps;
  }
}

/// Traffic-mode MAC: arrivals come from params.traffic instead of the
/// synthetic saturated fill, a Scheduler (null = FIFO) picks which clients
/// each slot serves, and each selected client may aggregate several queued
/// packets into its stream (params.agg). `jmb` toggles joint transmissions
/// plus measurement epochs versus one-client-at-a-time 802.11.
MacReport run_traffic_mac(std::size_t n_aps, std::size_t n_clients,
                          std::size_t n_streams,
                          const LinkStateFn& link_state,
                          const MacParams& params, bool jmb) {
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  DownlinkQueue queue;
  TrafficSource& src = *params.traffic;
  FlowTracker flows;
  std::vector<double> client_bytes(n_clients, 0.0);

  // Achievable-rate hint for rate-aware policies: the PHY rate the client
  // would get right now, in Mb/s.
  const RateHintFn rate_hint = [&](std::size_t client) {
    const LinkState ls = link_state(client);
    const auto r = rate::select_rate(ls.subcarrier_snr);
    if (!r) return 0.0;
    return static_cast<double>(phy::rate_set()[*r].n_dbps()) *
           params.airtime.sample_rate_hz /
           static_cast<double>(phy::kSymbolLen) / 1e6;
  };

  double t = 0.0;
  double next_measurement = 0.0;  // JMB only
  std::size_t next_forced = 0;    // cursor into params.remeasure_at

  std::vector<std::size_t> picked;
  std::vector<std::uint8_t> taken(n_clients, 0);

  while (t < params.duration_s) {
    report.offered_packets += src.drain_until(t, queue);
    report.max_queue_depth =
        std::max(report.max_queue_depth, static_cast<double>(queue.size()));

    if (jmb) {
      const bool forced = next_forced < params.remeasure_at.size() &&
                          params.remeasure_at[next_forced] <= t;
      if (t >= next_measurement || forced) {
        while (next_forced < params.remeasure_at.size() &&
               params.remeasure_at[next_forced] <= t) {
          ++next_forced;
        }
        const double meas =
            rate::measurement_airtime_s(n_aps, n_clients, params.airtime);
        t += meas;
        report.measurement_airtime_s += meas;
        ++report.measurement_epochs;
        next_measurement = t + params.coherence_time_s;
        if (params.on_measure) params.on_measure(report.measurement_epochs, t);
        continue;
      }
    }

    if (queue.empty()) {
      // Idle: jump the clock to the next event. drain_until guarantees
      // next_arrival_s() > t, so this always makes progress.
      double next_t = src.next_arrival_s();
      if (jmb) next_t = std::min(next_t, next_measurement);
      if (!(next_t > t)) next_t = t + idle_slot_s(params);
      if (next_t >= params.duration_s) break;
      t = next_t;
      continue;
    }

    // --- user selection (Scheduler policy; null = FIFO order) ---
    std::vector<std::size_t> selected;
    if (params.scheduler) {
      selected = params.scheduler->select(queue, n_streams, t, &rate_hint);
    } else {
      selected = queue.clients_fifo();
    }
    picked.clear();
    std::fill(taken.begin(), taken.end(), 0);
    for (std::size_t c : selected) {
      if (picked.size() >= n_streams) break;
      if (c >= n_clients || taken[c] || queue.front_of(c) == nullptr) continue;
      taken[c] = 1;
      picked.push_back(c);
    }
    if (picked.empty()) {
      // A misbehaving policy must not stall a backlogged queue.
      for (std::size_t c : queue.clients_fifo()) {
        if (picked.size() >= n_streams) break;
        picked.push_back(c);
      }
    }

    std::vector<AggFrame> frames;
    frames.reserve(picked.size());
    std::size_t frame_bytes = 0;  // largest stream incl. delimiters
    for (std::size_t c : picked) {
      AggFrame f = queue.pop_aggregate(c, params.agg);
      if (f.mpdus.empty()) continue;
      report.aggregated_mpdus += f.mpdus.size() - 1;
      frame_bytes =
          std::max(frame_bytes,
                   f.total_bytes + kMpduDelimiterBytes * f.mpdus.size());
      frames.push_back(std::move(f));
    }
    if (frames.empty()) continue;
    if (jmb) ++report.joint_transmissions;

    // Worst-client common rate, exactly as the legacy joint path: the
    // effective channel is k*I, so all streams run one rate.
    std::vector<LinkState> states;
    states.reserve(frames.size());
    std::size_t rate_idx = 0;
    bool reachable = true;
    bool first = true;
    for (const AggFrame& f : frames) {
      states.push_back(link_state(f.client));
      const auto r = rate::select_rate(states.back().subcarrier_snr);
      if (!r) {
        reachable = false;
        break;
      }
      if (first || *r < rate_idx) rate_idx = *r;
      first = false;
    }

    // Unreachable member: the attempt burns base-rate airtime, all fail.
    const phy::Mcs& mcs = phy::rate_set()[reachable ? rate_idx : 0];
    const double airtime =
        jmb ? rate::joint_frame_airtime_s(frame_bytes, mcs, params.airtime)
            : rate::frame_airtime_s(frame_bytes, mcs,
                                    params.airtime.sample_rate_hz);
    t += airtime;
    report.data_airtime_s += airtime;

    // Losses decoupled per stream; within a stream each MPDU gets its own
    // delivery draw (block-ACK semantics: an A-MPDU can partially fail).
    std::vector<Packet> requeue;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      AggFrame& f = frames[i];
      double served_bytes = 0.0;
      for (Packet& p : f.mpdus) {
        const bool ok =
            reachable &&
            rng.uniform() >= rate::frame_error_prob(
                                 states[i].subcarrier_snr, rate_idx, p.bytes);
        if (ok) {
          ++report.per_client[p.client].delivered;
          client_bytes[p.client] += static_cast<double>(p.bytes);
          served_bytes += static_cast<double>(p.bytes);
          flows.deliver(p, t);
          note_delivery(report, params, p, t);
        } else {
          ++report.per_client[p.client].failed_attempts;
          if (p.retries < params.max_retries) {
            requeue.push_back(p);
          } else {
            ++report.per_client[p.client].dropped;
            flows.drop(p);
          }
        }
      }
      if (params.scheduler) {
        params.scheduler->on_served(f.client, served_bytes, airtime);
      }
    }
    if (params.scheduler) params.scheduler->on_slot(airtime);
    // push_front in reverse batch order keeps each client's failed MPDUs
    // in their original arrival order at the front of its subqueue.
    for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
      queue.push_front(*it);
    }
  }
  flows.fold_into(report, params.duration_s);
  finalize_traffic(report, params, client_bytes);
  return report;
}

}  // namespace

MacReport run_baseline_mac(std::size_t n_clients, const LinkStateFn& link_state,
                           const MacParams& params) {
  if (params.traffic) {
    return run_traffic_mac(1, n_clients, 1, link_state, params,
                           /*jmb=*/false);
  }
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  double t = 0.0;
  std::size_t turn = 0;  // equal medium share: round-robin over clients

  DownlinkQueue queue;
  std::uint64_t next_id = 0;

  while (t < params.duration_s) {
    if (params.saturated) {
      // With churn, skip clients currently detached from the cell; the
      // scan is bounded by one full round-robin sweep.
      std::size_t scanned = 0;
      if (params.activity) {
        while (scanned < n_clients && !params.activity(turn % n_clients, t)) {
          ++turn;
          ++scanned;
        }
      }
      if (scanned < n_clients) {
        queue.push({turn % n_clients, params.psdu_bytes, 0, t, 0, next_id++});
        ++turn;
      }
    }
    auto pkt = queue.pop();
    if (!pkt) {
      if (params.saturated && params.activity) {
        // Cell momentarily empty: idle the slot, users may arrive later.
        t += idle_slot_s(params);
        continue;
      }
      break;  // non-saturated mode with an empty queue: done
    }

    const LinkState ls = link_state(pkt->client);
    const auto rate_idx = rate::select_rate(ls.subcarrier_snr);
    if (!rate_idx) {
      // Client out of range: attempt at base rate fails; count and move on.
      t += rate::frame_airtime_s(pkt->bytes, phy::rate_set()[0],
                                 params.airtime.sample_rate_hz);
      ++report.per_client[pkt->client].failed_attempts;
      ++report.per_client[pkt->client].dropped;
      continue;
    }
    const phy::Mcs& mcs = phy::rate_set()[*rate_idx];
    const double airtime =
        rate::frame_airtime_s(pkt->bytes, mcs, params.airtime.sample_rate_hz);
    t += airtime;
    report.data_airtime_s += airtime;

    const double per =
        rate::frame_error_prob(ls.subcarrier_snr, *rate_idx, pkt->bytes);
    if (rng.uniform() >= per) {
      ++report.per_client[pkt->client].delivered;
      note_delivery(report, params, *pkt, t);
    } else {
      ++report.per_client[pkt->client].failed_attempts;
      if (pkt->retries < params.max_retries) {
        queue.push_front(*pkt);
      } else {
        ++report.per_client[pkt->client].dropped;
      }
    }
  }
  finalize(report, params);
  return report;
}

MacReport run_jmb_mac(std::size_t n_aps, std::size_t n_clients,
                      std::size_t n_streams, const LinkStateFn& link_state,
                      const MacParams& params) {
  if (params.traffic) {
    return run_traffic_mac(n_aps, n_clients, n_streams, link_state, params,
                           /*jmb=*/true);
  }
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  DownlinkQueue queue;
  std::uint64_t next_id = 0;
  std::size_t rr = 0;

  double t = 0.0;
  double next_measurement = 0.0;
  std::size_t next_forced = 0;  // cursor into params.remeasure_at

  while (t < params.duration_s) {
    const bool forced = next_forced < params.remeasure_at.size() &&
                        params.remeasure_at[next_forced] <= t;
    if (t >= next_measurement || forced) {
      while (next_forced < params.remeasure_at.size() &&
             params.remeasure_at[next_forced] <= t) {
        ++next_forced;
      }
      const double meas =
          rate::measurement_airtime_s(n_aps, n_clients, params.airtime);
      t += meas;
      report.measurement_airtime_s += meas;
      ++report.measurement_epochs;
      next_measurement = t + params.coherence_time_s;
      if (params.on_measure) params.on_measure(report.measurement_epochs, t);
      continue;
    }
    if (params.saturated) {
      // Keep the queue deep enough for a full joint transmission. With
      // churn, detached clients are skipped and the scan is bounded by a
      // full round-robin sweep on top of the fill budget.
      const std::size_t max_scans =
          n_streams + (params.activity ? n_clients : 0);
      std::size_t scans = 0;
      while (queue.size() < n_streams && scans < max_scans) {
        ++scans;
        const std::size_t client = rr % n_clients;
        ++rr;
        if (params.activity && !params.activity(client, t)) continue;
        queue.push({client, params.psdu_bytes, 0, t, 0, next_id++});
      }
    }
    std::vector<Packet> batch = queue.pop_joint(n_streams);
    if (batch.empty()) {
      if (params.saturated && params.activity) {
        // Cell momentarily empty: idle the slot, users may arrive later.
        t += idle_slot_s(params);
        continue;
      }
      break;
    }
    ++report.joint_transmissions;

    // Rate selection per Section 9: the APs know the full channel, the
    // effective channel is k*I, so every client in the joint transmission
    // runs at the same rate, chosen from the worst client's effective SNR.
    std::vector<LinkState> states;
    states.reserve(batch.size());
    std::optional<std::size_t> rate_idx;
    for (const Packet& p : batch) {
      states.push_back(link_state(p.client));
      const auto r = rate::select_rate(states.back().subcarrier_snr);
      if (!rate_idx || (r && *r < *rate_idx)) rate_idx = r;
      if (!r) rate_idx = std::nullopt;
      if (!rate_idx) break;
    }
    if (!rate_idx) {
      // Someone unreachable: attempt costs base-rate airtime; all fail.
      t += rate::joint_frame_airtime_s(params.psdu_bytes, phy::rate_set()[0],
                                       params.airtime);
      for (Packet& p : batch) {
        ++report.per_client[p.client].failed_attempts;
        if (p.retries < params.max_retries) {
          queue.push_front(p);
        } else {
          ++report.per_client[p.client].dropped;
        }
      }
      continue;
    }

    const phy::Mcs& mcs = phy::rate_set()[*rate_idx];
    const double airtime =
        rate::joint_frame_airtime_s(params.psdu_bytes, mcs, params.airtime);
    t += airtime;
    report.data_airtime_s += airtime;

    // Losses are decoupled across clients (Section 9): each stream succeeds
    // or fails on its own effective SNR.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Packet& p = batch[i];
      const double per = rate::frame_error_prob(states[i].subcarrier_snr,
                                                *rate_idx, p.bytes);
      if (rng.uniform() >= per) {
        ++report.per_client[p.client].delivered;
        note_delivery(report, params, p, t);
      } else {
        ++report.per_client[p.client].failed_attempts;
        if (p.retries < params.max_retries) {
          queue.push_front(p);
        } else {
          ++report.per_client[p.client].dropped;
        }
      }
    }
  }
  finalize(report, params);
  return report;
}

MacReport run_baseline_mac_resilient(std::size_t n_aps, std::size_t n_clients,
                                     const MaskedLinkStateFn& link_state,
                                     const MacParams& params,
                                     fault::FaultSession* fault) {
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  double t = 0.0;
  std::size_t turn = 0;

  DownlinkQueue queue;
  std::uint64_t next_id = 0;
  std::vector<std::uint8_t> up(n_aps, 1);

  while (t < params.duration_s) {
    pump_mac_faults(fault, nullptr, t);
    for (std::size_t a = 0; a < n_aps; ++a) {
      up[a] = (fault && fault->ap_down(a)) ? 0 : 1;
    }
    if (params.saturated) {
      std::size_t scanned = 0;
      if (params.activity) {
        while (scanned < n_clients && !params.activity(turn % n_clients, t)) {
          ++turn;
          ++scanned;
        }
      }
      if (scanned < n_clients) {
        queue.push({turn % n_clients, params.psdu_bytes, 0, t, 0, next_id++});
        ++turn;
      }
    }
    auto pkt = queue.pop();
    if (!pkt) {
      if (params.saturated && params.activity) {
        t += idle_slot_s(params);
        continue;
      }
      break;
    }

    // Each client transmits from its best *surviving* AP — the mask makes
    // the link model re-associate instantly, the per-AP independence that
    // 802.11 keeps and joint transmission gives up.
    const LinkState ls = link_state(pkt->client, up);
    const auto rate_idx = rate::select_rate(ls.subcarrier_snr);
    if (!rate_idx) {
      t += rate::frame_airtime_s(pkt->bytes, phy::rate_set()[0],
                                 params.airtime.sample_rate_hz);
      ++report.per_client[pkt->client].failed_attempts;
      ++report.per_client[pkt->client].dropped;
      continue;
    }
    const phy::Mcs& mcs = phy::rate_set()[*rate_idx];
    const double airtime =
        rate::frame_airtime_s(pkt->bytes, mcs, params.airtime.sample_rate_hz);
    t += airtime;
    report.data_airtime_s += airtime;

    const double per =
        rate::frame_error_prob(ls.subcarrier_snr, *rate_idx, pkt->bytes);
    if (rng.uniform() >= per) {
      ++report.per_client[pkt->client].delivered;
      note_delivery(report, params, *pkt, t);
    } else {
      ++report.per_client[pkt->client].failed_attempts;
      if (pkt->retries < params.max_retries) {
        queue.push_front(*pkt);
      } else {
        ++report.per_client[pkt->client].dropped;
      }
    }
  }
  if (fault) report.faults_injected = fault->events_applied();
  finalize(report, params);
  return report;
}

MacReport run_jmb_mac_resilient(std::size_t n_aps, std::size_t n_clients,
                                std::size_t n_streams,
                                const MaskedLinkStateFn& link_state,
                                const MacParams& params,
                                fault::FaultSession* fault,
                                fault::ResilienceController* resilience) {
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  DownlinkQueue queue;
  std::uint64_t next_id = 0;
  std::size_t rr = 0;

  double t = 0.0;
  double next_measurement = 0.0;
  std::size_t lead = 0;
  std::size_t lead_misses = 0;
  LatencyAccumulator latency;
  std::vector<std::uint8_t> all_active(n_aps, 1);

  // The joint set the MAC *believes* in: the controller's surviving APs,
  // or everyone when no controller is attached.
  const auto believed = [&]() -> const std::vector<std::uint8_t>& {
    return resilience ? resilience->active() : all_active;
  };

  std::size_t next_forced = 0;  // cursor into params.remeasure_at

  while (t < params.duration_s) {
    pump_mac_faults(fault, resilience, t);

    const bool forced = next_forced < params.remeasure_at.size() &&
                        params.remeasure_at[next_forced] <= t;
    if (t >= next_measurement || forced ||
        (resilience && resilience->needs_remeasure())) {
      while (next_forced < params.remeasure_at.size() &&
             params.remeasure_at[next_forced] <= t) {
        ++next_forced;
      }
      const double meas =
          rate::measurement_airtime_s(n_aps, n_clients, params.airtime);
      t += meas;
      report.measurement_airtime_s += meas;
      ++report.measurement_epochs;
      next_measurement = t + params.coherence_time_s;
      if (params.on_measure) params.on_measure(report.measurement_epochs, t);
      if (resilience) resilience->on_remeasure(t);
      continue;
    }

    // Lead liveness: a dead lead means no sync headers at all. After
    // lead_miss_threshold headerless slots the MAC declares it down and
    // elects the lowest-indexed surviving AP.
    const bool lead_down = fault && fault->ap_down(lead);
    if (lead_down) {
      // A headerless slot costs the sync-header + turnaround airtime the
      // slaves spent waiting for a transmission that never came.
      t += static_cast<double>(phy::kPreambleLen) /
               params.airtime.sample_rate_hz +
           params.airtime.turnaround_s;
      if (++lead_misses >= params.lead_miss_threshold) {
        if (resilience) {
          resilience->mark_down(lead, t);
          latency.sample(*resilience);
          const std::size_t next_lead = resilience->elect_lead(lead);
          if (next_lead < n_aps && next_lead != lead) {
            lead = next_lead;
            ++report.lead_elections;
          }
        } else {
          // No controller: naive failover to the next AP index.
          lead = (lead + 1) % n_aps;
          ++report.lead_elections;
        }
        lead_misses = 0;
      }
      continue;
    }
    lead_misses = 0;

    // Per-slave sync-header evidence for this slot.
    if (resilience) {
      for (std::size_t a = 0; a < n_aps; ++a) {
        if (a == lead) continue;
        const bool down = fault && fault->ap_down(a);
        const bool lost = !down && fault && fault->sync_header_lost(a);
        const double residual =
            (!down && !lost && fault)
                ? std::abs(fault->sync_header_phase_error(a))
                : 0.0;
        resilience->on_sync_result(a, !down && !lost, residual, 0.0, t);
      }
      latency.sample(*resilience);
      if (resilience->needs_remeasure()) continue;  // epoch first
    }

    if (params.saturated) {
      const std::size_t max_attempts =
          4 * n_streams + (params.activity ? n_clients : 0);
      std::size_t attempts = 0;
      while (queue.size() < n_streams && attempts < max_attempts) {
        ++attempts;
        const std::size_t client = rr % n_clients;
        ++rr;
        if (params.activity && !params.activity(client, t)) continue;
        if (fault && fault->backhaul_packet_lost()) {
          // Lost on the wire between gateway and APs; counted, not queued.
          ++report.backhaul_drops;
          ++report.per_client[client].dropped;
          continue;
        }
        queue.push({client, params.psdu_bytes, 0, t, 0, next_id++});
      }
    }
    if (fault) t += fault->backhaul_delay_s();  // distribution stall

    std::vector<Packet> batch = queue.pop_joint(n_streams);
    if (batch.empty()) {
      if (params.saturated) {
        // The backhaul ate every candidate packet: the slot idles while
        // the queue refills. Charge the idle slot so time always advances
        // (a 100%-loss window must not hang the simulation).
        t += static_cast<double>(phy::kPreambleLen) /
                 params.airtime.sample_rate_hz +
             params.airtime.turnaround_s;
        continue;
      }
      break;
    }
    ++report.joint_transmissions;

    // Detection lag is where joint transmission pays: an AP that crashed
    // but is still believed active leaves a dead row in the precoder and
    // the whole joint frame is ruined.
    bool stale_member = false;
    if (fault) {
      for (std::size_t a = 0; a < n_aps; ++a) {
        if (believed()[a] && fault->ap_down(a)) stale_member = true;
      }
    }

    std::vector<LinkState> states;
    std::optional<std::size_t> rate_idx;
    if (!stale_member) {
      states.reserve(batch.size());
      for (const Packet& p : batch) {
        states.push_back(link_state(p.client, believed()));
        const auto r = rate::select_rate(states.back().subcarrier_snr);
        if (!rate_idx || (r && *r < *rate_idx)) rate_idx = r;
        if (!r) rate_idx = std::nullopt;
        if (!rate_idx) break;
      }
    }
    if (stale_member || !rate_idx) {
      t += rate::joint_frame_airtime_s(params.psdu_bytes, phy::rate_set()[0],
                                       params.airtime);
      for (Packet& p : batch) {
        ++report.per_client[p.client].failed_attempts;
        if (p.retries < params.max_retries) {
          queue.push_front(p);
        } else {
          ++report.per_client[p.client].dropped;
        }
      }
      continue;
    }

    const phy::Mcs& mcs = phy::rate_set()[*rate_idx];
    const double airtime =
        rate::joint_frame_airtime_s(params.psdu_bytes, mcs, params.airtime);
    t += airtime;
    report.data_airtime_s += airtime;

    bool all_delivered = true;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Packet& p = batch[i];
      const double per = rate::frame_error_prob(states[i].subcarrier_snr,
                                                *rate_idx, p.bytes);
      if (rng.uniform() >= per) {
        ++report.per_client[p.client].delivered;
        note_delivery(report, params, p, t);
      } else {
        all_delivered = false;
        ++report.per_client[p.client].failed_attempts;
        if (p.retries < params.max_retries) {
          queue.push_front(p);
        } else {
          ++report.per_client[p.client].dropped;
        }
      }
    }
    if (resilience && all_delivered) {
      resilience->on_recovered(t);
      latency.sample(*resilience);
    }
  }
  if (fault) report.faults_injected = fault->events_applied();
  if (resilience) latency.sample(*resilience);
  latency.fold_into(report);
  finalize(report, params);
  return report;
}

}  // namespace jmb::net
