#include "net/mac.h"

#include <algorithm>
#include <cmath>

#include "fault/injector.h"
#include "fault/resilience.h"
#include "net/scheduler.h"
#include "rate/effective_snr.h"
#include "rate/per.h"

namespace jmb::net {

namespace {

/// Airtime of a slot that carries no data (sync preamble + turnaround):
/// what an idle or headerless slot costs.
double idle_slot_s(const MacParams& params) {
  return static_cast<double>(phy::kPreambleLen) /
             params.airtime.sample_rate_hz +
         params.airtime.turnaround_s;
}

/// Latency sample on delivery, when the caller asked for them.
void note_delivery(MacReport& report, const MacParams& params, const Packet& p,
                   double t) {
  if (params.record_latency) report.frame_latency_s.push_back(t - p.enqueue_s);
}

void finalize(MacReport& report, const MacParams& params) {
  report.duration_s = params.duration_s;
  report.total_goodput_mbps = 0.0;
  for (ClientStats& c : report.per_client) {
    c.goodput_mbps = static_cast<double>(c.delivered) *
                     static_cast<double>(params.psdu_bytes) * 8.0 /
                     params.duration_s / 1e6;
    report.total_goodput_mbps += c.goodput_mbps;
  }
}

/// Advance the fault timeline to virtual time t and forward new injection
/// edges to the controller's latency bookkeeping.
void pump_mac_faults(fault::FaultSession* fault,
                     fault::ResilienceController* ctrl, double t) {
  if (!fault) return;
  const std::size_t before = fault->events_applied();
  fault->advance_to(t);
  if (ctrl && fault->events_applied() != before) {
    ctrl->note_fault(fault->last_fault_t());
  }
}

/// Tracks the controller's quarantine / recovery counters across the run
/// and folds each new latency sample into running means.
struct LatencyAccumulator {
  std::size_t seen_quarantines = 0;
  std::size_t seen_recoveries = 0;
  double detect_sum = 0.0;
  double recover_sum = 0.0;

  void sample(const fault::ResilienceController& ctrl) {
    if (ctrl.quarantine_events() > seen_quarantines) {
      seen_quarantines = ctrl.quarantine_events();
      detect_sum += ctrl.last_detect_latency_s();
    }
    if (ctrl.recoveries() > seen_recoveries) {
      seen_recoveries = ctrl.recoveries();
      recover_sum += ctrl.last_recover_latency_s();
    }
  }
  void fold_into(MacReport& report) const {
    report.quarantines = seen_quarantines;
    if (seen_quarantines > 0) {
      report.mean_time_to_detect_s =
          detect_sum / static_cast<double>(seen_quarantines);
    }
    if (seen_recoveries > 0) {
      report.mean_time_to_recover_s =
          recover_sum / static_cast<double>(seen_recoveries);
    }
  }
};

}  // namespace

MacReport run_baseline_mac(std::size_t n_clients, const LinkStateFn& link_state,
                           const MacParams& params) {
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  double t = 0.0;
  std::size_t turn = 0;  // equal medium share: round-robin over clients

  DownlinkQueue queue;
  std::uint64_t next_id = 0;

  while (t < params.duration_s) {
    if (params.saturated) {
      // With churn, skip clients currently detached from the cell; the
      // scan is bounded by one full round-robin sweep.
      std::size_t scanned = 0;
      if (params.activity) {
        while (scanned < n_clients && !params.activity(turn % n_clients, t)) {
          ++turn;
          ++scanned;
        }
      }
      if (scanned < n_clients) {
        queue.push({turn % n_clients, params.psdu_bytes, 0, t, 0, next_id++});
        ++turn;
      }
    }
    auto pkt = queue.pop();
    if (!pkt) {
      if (params.saturated && params.activity) {
        // Cell momentarily empty: idle the slot, users may arrive later.
        t += idle_slot_s(params);
        continue;
      }
      break;  // non-saturated mode with an empty queue: done
    }

    const LinkState ls = link_state(pkt->client);
    const auto rate_idx = rate::select_rate(ls.subcarrier_snr);
    if (!rate_idx) {
      // Client out of range: attempt at base rate fails; count and move on.
      t += rate::frame_airtime_s(pkt->bytes, phy::rate_set()[0],
                                 params.airtime.sample_rate_hz);
      ++report.per_client[pkt->client].failed_attempts;
      ++report.per_client[pkt->client].dropped;
      continue;
    }
    const phy::Mcs& mcs = phy::rate_set()[*rate_idx];
    const double airtime =
        rate::frame_airtime_s(pkt->bytes, mcs, params.airtime.sample_rate_hz);
    t += airtime;
    report.data_airtime_s += airtime;

    const double per =
        rate::frame_error_prob(ls.subcarrier_snr, *rate_idx, pkt->bytes);
    if (rng.uniform() >= per) {
      ++report.per_client[pkt->client].delivered;
      note_delivery(report, params, *pkt, t);
    } else {
      ++report.per_client[pkt->client].failed_attempts;
      if (++pkt->retries <= params.max_retries) {
        queue.push_front(*pkt);
      } else {
        ++report.per_client[pkt->client].dropped;
      }
    }
  }
  finalize(report, params);
  return report;
}

MacReport run_jmb_mac(std::size_t n_aps, std::size_t n_clients,
                      std::size_t n_streams, const LinkStateFn& link_state,
                      const MacParams& params) {
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  DownlinkQueue queue;
  std::uint64_t next_id = 0;
  std::size_t rr = 0;

  double t = 0.0;
  double next_measurement = 0.0;
  std::size_t next_forced = 0;  // cursor into params.remeasure_at

  while (t < params.duration_s) {
    const bool forced = next_forced < params.remeasure_at.size() &&
                        params.remeasure_at[next_forced] <= t;
    if (t >= next_measurement || forced) {
      while (next_forced < params.remeasure_at.size() &&
             params.remeasure_at[next_forced] <= t) {
        ++next_forced;
      }
      const double meas =
          rate::measurement_airtime_s(n_aps, n_clients, params.airtime);
      t += meas;
      report.measurement_airtime_s += meas;
      ++report.measurement_epochs;
      next_measurement = t + params.coherence_time_s;
      continue;
    }
    if (params.saturated) {
      // Keep the queue deep enough for a full joint transmission. With
      // churn, detached clients are skipped and the scan is bounded by a
      // full round-robin sweep on top of the fill budget.
      const std::size_t max_scans =
          n_streams + (params.activity ? n_clients : 0);
      std::size_t scans = 0;
      while (queue.size() < n_streams && scans < max_scans) {
        ++scans;
        const std::size_t client = rr % n_clients;
        ++rr;
        if (params.activity && !params.activity(client, t)) continue;
        queue.push({client, params.psdu_bytes, 0, t, 0, next_id++});
      }
    }
    std::vector<Packet> batch = queue.pop_joint(n_streams);
    if (batch.empty()) {
      if (params.saturated && params.activity) {
        // Cell momentarily empty: idle the slot, users may arrive later.
        t += idle_slot_s(params);
        continue;
      }
      break;
    }
    ++report.joint_transmissions;

    // Rate selection per Section 9: the APs know the full channel, the
    // effective channel is k*I, so every client in the joint transmission
    // runs at the same rate, chosen from the worst client's effective SNR.
    std::vector<LinkState> states;
    states.reserve(batch.size());
    std::optional<std::size_t> rate_idx;
    for (const Packet& p : batch) {
      states.push_back(link_state(p.client));
      const auto r = rate::select_rate(states.back().subcarrier_snr);
      if (!rate_idx || (r && *r < *rate_idx)) rate_idx = r;
      if (!r) rate_idx = std::nullopt;
      if (!rate_idx) break;
    }
    if (!rate_idx) {
      // Someone unreachable: attempt costs base-rate airtime; all fail.
      t += rate::joint_frame_airtime_s(params.psdu_bytes, phy::rate_set()[0],
                                       params.airtime);
      for (Packet& p : batch) {
        ++report.per_client[p.client].failed_attempts;
        if (++p.retries <= params.max_retries) {
          queue.push_front(p);
        } else {
          ++report.per_client[p.client].dropped;
        }
      }
      continue;
    }

    const phy::Mcs& mcs = phy::rate_set()[*rate_idx];
    const double airtime =
        rate::joint_frame_airtime_s(params.psdu_bytes, mcs, params.airtime);
    t += airtime;
    report.data_airtime_s += airtime;

    // Losses are decoupled across clients (Section 9): each stream succeeds
    // or fails on its own effective SNR.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Packet& p = batch[i];
      const double per = rate::frame_error_prob(states[i].subcarrier_snr,
                                                *rate_idx, p.bytes);
      if (rng.uniform() >= per) {
        ++report.per_client[p.client].delivered;
        note_delivery(report, params, p, t);
      } else {
        ++report.per_client[p.client].failed_attempts;
        if (++p.retries <= params.max_retries) {
          queue.push_front(p);
        } else {
          ++report.per_client[p.client].dropped;
        }
      }
    }
  }
  finalize(report, params);
  return report;
}

MacReport run_baseline_mac_resilient(std::size_t n_aps, std::size_t n_clients,
                                     const MaskedLinkStateFn& link_state,
                                     const MacParams& params,
                                     fault::FaultSession* fault) {
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  double t = 0.0;
  std::size_t turn = 0;

  DownlinkQueue queue;
  std::uint64_t next_id = 0;
  std::vector<std::uint8_t> up(n_aps, 1);

  while (t < params.duration_s) {
    pump_mac_faults(fault, nullptr, t);
    for (std::size_t a = 0; a < n_aps; ++a) {
      up[a] = (fault && fault->ap_down(a)) ? 0 : 1;
    }
    if (params.saturated) {
      std::size_t scanned = 0;
      if (params.activity) {
        while (scanned < n_clients && !params.activity(turn % n_clients, t)) {
          ++turn;
          ++scanned;
        }
      }
      if (scanned < n_clients) {
        queue.push({turn % n_clients, params.psdu_bytes, 0, t, 0, next_id++});
        ++turn;
      }
    }
    auto pkt = queue.pop();
    if (!pkt) {
      if (params.saturated && params.activity) {
        t += idle_slot_s(params);
        continue;
      }
      break;
    }

    // Each client transmits from its best *surviving* AP — the mask makes
    // the link model re-associate instantly, the per-AP independence that
    // 802.11 keeps and joint transmission gives up.
    const LinkState ls = link_state(pkt->client, up);
    const auto rate_idx = rate::select_rate(ls.subcarrier_snr);
    if (!rate_idx) {
      t += rate::frame_airtime_s(pkt->bytes, phy::rate_set()[0],
                                 params.airtime.sample_rate_hz);
      ++report.per_client[pkt->client].failed_attempts;
      ++report.per_client[pkt->client].dropped;
      continue;
    }
    const phy::Mcs& mcs = phy::rate_set()[*rate_idx];
    const double airtime =
        rate::frame_airtime_s(pkt->bytes, mcs, params.airtime.sample_rate_hz);
    t += airtime;
    report.data_airtime_s += airtime;

    const double per =
        rate::frame_error_prob(ls.subcarrier_snr, *rate_idx, pkt->bytes);
    if (rng.uniform() >= per) {
      ++report.per_client[pkt->client].delivered;
      note_delivery(report, params, *pkt, t);
    } else {
      ++report.per_client[pkt->client].failed_attempts;
      if (++pkt->retries <= params.max_retries) {
        queue.push_front(*pkt);
      } else {
        ++report.per_client[pkt->client].dropped;
      }
    }
  }
  if (fault) report.faults_injected = fault->events_applied();
  finalize(report, params);
  return report;
}

MacReport run_jmb_mac_resilient(std::size_t n_aps, std::size_t n_clients,
                                std::size_t n_streams,
                                const MaskedLinkStateFn& link_state,
                                const MacParams& params,
                                fault::FaultSession* fault,
                                fault::ResilienceController* resilience) {
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  DownlinkQueue queue;
  std::uint64_t next_id = 0;
  std::size_t rr = 0;

  double t = 0.0;
  double next_measurement = 0.0;
  std::size_t lead = 0;
  std::size_t lead_misses = 0;
  LatencyAccumulator latency;
  std::vector<std::uint8_t> all_active(n_aps, 1);

  // The joint set the MAC *believes* in: the controller's surviving APs,
  // or everyone when no controller is attached.
  const auto believed = [&]() -> const std::vector<std::uint8_t>& {
    return resilience ? resilience->active() : all_active;
  };

  std::size_t next_forced = 0;  // cursor into params.remeasure_at

  while (t < params.duration_s) {
    pump_mac_faults(fault, resilience, t);

    const bool forced = next_forced < params.remeasure_at.size() &&
                        params.remeasure_at[next_forced] <= t;
    if (t >= next_measurement || forced ||
        (resilience && resilience->needs_remeasure())) {
      while (next_forced < params.remeasure_at.size() &&
             params.remeasure_at[next_forced] <= t) {
        ++next_forced;
      }
      const double meas =
          rate::measurement_airtime_s(n_aps, n_clients, params.airtime);
      t += meas;
      report.measurement_airtime_s += meas;
      ++report.measurement_epochs;
      next_measurement = t + params.coherence_time_s;
      if (resilience) resilience->on_remeasure(t);
      continue;
    }

    // Lead liveness: a dead lead means no sync headers at all. After
    // lead_miss_threshold headerless slots the MAC declares it down and
    // elects the lowest-indexed surviving AP.
    const bool lead_down = fault && fault->ap_down(lead);
    if (lead_down) {
      // A headerless slot costs the sync-header + turnaround airtime the
      // slaves spent waiting for a transmission that never came.
      t += static_cast<double>(phy::kPreambleLen) /
               params.airtime.sample_rate_hz +
           params.airtime.turnaround_s;
      if (++lead_misses >= params.lead_miss_threshold) {
        if (resilience) {
          resilience->mark_down(lead, t);
          latency.sample(*resilience);
          const std::size_t next_lead = resilience->elect_lead(lead);
          if (next_lead < n_aps && next_lead != lead) {
            lead = next_lead;
            ++report.lead_elections;
          }
        } else {
          // No controller: naive failover to the next AP index.
          lead = (lead + 1) % n_aps;
          ++report.lead_elections;
        }
        lead_misses = 0;
      }
      continue;
    }
    lead_misses = 0;

    // Per-slave sync-header evidence for this slot.
    if (resilience) {
      for (std::size_t a = 0; a < n_aps; ++a) {
        if (a == lead) continue;
        const bool down = fault && fault->ap_down(a);
        const bool lost = !down && fault && fault->sync_header_lost(a);
        const double residual =
            (!down && !lost && fault)
                ? std::abs(fault->sync_header_phase_error(a))
                : 0.0;
        resilience->on_sync_result(a, !down && !lost, residual, 0.0, t);
      }
      latency.sample(*resilience);
      if (resilience->needs_remeasure()) continue;  // epoch first
    }

    if (params.saturated) {
      const std::size_t max_attempts =
          4 * n_streams + (params.activity ? n_clients : 0);
      std::size_t attempts = 0;
      while (queue.size() < n_streams && attempts < max_attempts) {
        ++attempts;
        const std::size_t client = rr % n_clients;
        ++rr;
        if (params.activity && !params.activity(client, t)) continue;
        if (fault && fault->backhaul_packet_lost()) {
          // Lost on the wire between gateway and APs; counted, not queued.
          ++report.backhaul_drops;
          ++report.per_client[client].dropped;
          continue;
        }
        queue.push({client, params.psdu_bytes, 0, t, 0, next_id++});
      }
    }
    if (fault) t += fault->backhaul_delay_s();  // distribution stall

    std::vector<Packet> batch = queue.pop_joint(n_streams);
    if (batch.empty()) {
      if (params.saturated) {
        // The backhaul ate every candidate packet: the slot idles while
        // the queue refills. Charge the idle slot so time always advances
        // (a 100%-loss window must not hang the simulation).
        t += static_cast<double>(phy::kPreambleLen) /
                 params.airtime.sample_rate_hz +
             params.airtime.turnaround_s;
        continue;
      }
      break;
    }
    ++report.joint_transmissions;

    // Detection lag is where joint transmission pays: an AP that crashed
    // but is still believed active leaves a dead row in the precoder and
    // the whole joint frame is ruined.
    bool stale_member = false;
    if (fault) {
      for (std::size_t a = 0; a < n_aps; ++a) {
        if (believed()[a] && fault->ap_down(a)) stale_member = true;
      }
    }

    std::vector<LinkState> states;
    std::optional<std::size_t> rate_idx;
    if (!stale_member) {
      states.reserve(batch.size());
      for (const Packet& p : batch) {
        states.push_back(link_state(p.client, believed()));
        const auto r = rate::select_rate(states.back().subcarrier_snr);
        if (!rate_idx || (r && *r < *rate_idx)) rate_idx = r;
        if (!r) rate_idx = std::nullopt;
        if (!rate_idx) break;
      }
    }
    if (stale_member || !rate_idx) {
      t += rate::joint_frame_airtime_s(params.psdu_bytes, phy::rate_set()[0],
                                       params.airtime);
      for (Packet& p : batch) {
        ++report.per_client[p.client].failed_attempts;
        if (++p.retries <= params.max_retries) {
          queue.push_front(p);
        } else {
          ++report.per_client[p.client].dropped;
        }
      }
      continue;
    }

    const phy::Mcs& mcs = phy::rate_set()[*rate_idx];
    const double airtime =
        rate::joint_frame_airtime_s(params.psdu_bytes, mcs, params.airtime);
    t += airtime;
    report.data_airtime_s += airtime;

    bool all_delivered = true;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Packet& p = batch[i];
      const double per = rate::frame_error_prob(states[i].subcarrier_snr,
                                                *rate_idx, p.bytes);
      if (rng.uniform() >= per) {
        ++report.per_client[p.client].delivered;
        note_delivery(report, params, p, t);
      } else {
        all_delivered = false;
        ++report.per_client[p.client].failed_attempts;
        if (++p.retries <= params.max_retries) {
          queue.push_front(p);
        } else {
          ++report.per_client[p.client].dropped;
        }
      }
    }
    if (resilience && all_delivered) {
      resilience->on_recovered(t);
      latency.sample(*resilience);
    }
  }
  if (fault) report.faults_injected = fault->events_applied();
  if (resilience) latency.sample(*resilience);
  latency.fold_into(report);
  finalize(report, params);
  return report;
}

}  // namespace jmb::net
