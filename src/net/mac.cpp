#include "net/mac.h"

#include <algorithm>

#include "net/scheduler.h"
#include "rate/effective_snr.h"
#include "rate/per.h"

namespace jmb::net {

namespace {

void finalize(MacReport& report, const MacParams& params) {
  report.duration_s = params.duration_s;
  report.total_goodput_mbps = 0.0;
  for (ClientStats& c : report.per_client) {
    c.goodput_mbps = static_cast<double>(c.delivered) *
                     static_cast<double>(params.psdu_bytes) * 8.0 /
                     params.duration_s / 1e6;
    report.total_goodput_mbps += c.goodput_mbps;
  }
}

}  // namespace

MacReport run_baseline_mac(std::size_t n_clients, const LinkStateFn& link_state,
                           const MacParams& params) {
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  double t = 0.0;
  std::size_t turn = 0;  // equal medium share: round-robin over clients

  DownlinkQueue queue;
  std::uint64_t next_id = 0;

  while (t < params.duration_s) {
    const std::size_t client = turn % n_clients;
    ++turn;
    if (params.saturated) {
      queue.push({client, params.psdu_bytes, 0, t, 0, next_id++});
    }
    auto pkt = queue.pop();
    if (!pkt) break;  // non-saturated mode with an empty queue: done

    const LinkState ls = link_state(pkt->client);
    const auto rate_idx = rate::select_rate(ls.subcarrier_snr);
    if (!rate_idx) {
      // Client out of range: attempt at base rate fails; count and move on.
      t += rate::frame_airtime_s(pkt->bytes, phy::rate_set()[0],
                                 params.airtime.sample_rate_hz);
      ++report.per_client[pkt->client].failed_attempts;
      ++report.per_client[pkt->client].dropped;
      continue;
    }
    const phy::Mcs& mcs = phy::rate_set()[*rate_idx];
    const double airtime =
        rate::frame_airtime_s(pkt->bytes, mcs, params.airtime.sample_rate_hz);
    t += airtime;
    report.data_airtime_s += airtime;

    const double per =
        rate::frame_error_prob(ls.subcarrier_snr, *rate_idx, pkt->bytes);
    if (rng.uniform() >= per) {
      ++report.per_client[pkt->client].delivered;
    } else {
      ++report.per_client[pkt->client].failed_attempts;
      if (++pkt->retries <= params.max_retries) {
        queue.push_front(*pkt);
      } else {
        ++report.per_client[pkt->client].dropped;
      }
    }
  }
  finalize(report, params);
  return report;
}

MacReport run_jmb_mac(std::size_t n_aps, std::size_t n_clients,
                      std::size_t n_streams, const LinkStateFn& link_state,
                      const MacParams& params) {
  MacReport report;
  report.per_client.resize(n_clients);
  Rng rng(params.seed);
  DownlinkQueue queue;
  std::uint64_t next_id = 0;
  std::size_t rr = 0;

  double t = 0.0;
  double next_measurement = 0.0;

  while (t < params.duration_s) {
    if (t >= next_measurement) {
      const double meas =
          rate::measurement_airtime_s(n_aps, n_clients, params.airtime);
      t += meas;
      report.measurement_airtime_s += meas;
      next_measurement = t + params.coherence_time_s;
      continue;
    }
    if (params.saturated) {
      // Keep the queue deep enough for a full joint transmission.
      while (queue.size() < n_streams) {
        queue.push({rr % n_clients, params.psdu_bytes, 0, t, 0, next_id++});
        ++rr;
      }
    }
    std::vector<Packet> batch = queue.pop_joint(n_streams);
    if (batch.empty()) break;
    ++report.joint_transmissions;

    // Rate selection per Section 9: the APs know the full channel, the
    // effective channel is k*I, so every client in the joint transmission
    // runs at the same rate, chosen from the worst client's effective SNR.
    std::vector<LinkState> states;
    states.reserve(batch.size());
    std::optional<std::size_t> rate_idx;
    for (const Packet& p : batch) {
      states.push_back(link_state(p.client));
      const auto r = rate::select_rate(states.back().subcarrier_snr);
      if (!rate_idx || (r && *r < *rate_idx)) rate_idx = r;
      if (!r) rate_idx = std::nullopt;
      if (!rate_idx) break;
    }
    if (!rate_idx) {
      // Someone unreachable: attempt costs base-rate airtime; all fail.
      t += rate::joint_frame_airtime_s(params.psdu_bytes, phy::rate_set()[0],
                                       params.airtime);
      for (Packet& p : batch) {
        ++report.per_client[p.client].failed_attempts;
        if (++p.retries <= params.max_retries) {
          queue.push_front(p);
        } else {
          ++report.per_client[p.client].dropped;
        }
      }
      continue;
    }

    const phy::Mcs& mcs = phy::rate_set()[*rate_idx];
    const double airtime =
        rate::joint_frame_airtime_s(params.psdu_bytes, mcs, params.airtime);
    t += airtime;
    report.data_airtime_s += airtime;

    // Losses are decoupled across clients (Section 9): each stream succeeds
    // or fails on its own effective SNR.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Packet& p = batch[i];
      const double per = rate::frame_error_prob(states[i].subcarrier_snr,
                                                *rate_idx, p.bytes);
      if (rng.uniform() >= per) {
        ++report.per_client[p.client].delivered;
      } else {
        ++report.per_client[p.client].failed_attempts;
        if (++p.retries <= params.max_retries) {
          queue.push_front(p);
        } else {
          ++report.per_client[p.client].dropped;
        }
      }
    }
  }
  finalize(report, params);
  return report;
}

}  // namespace jmb::net
