// Abstract traffic interfaces the MAC simulations accept: a TrafficSource
// that feeds the shared downlink queue with bursty per-flow arrivals, and
// a Scheduler that picks which clients a (joint) transmission serves.
//
// The interfaces live in net/ (they speak only net:: vocabulary) so the
// MAC stays independent of any particular traffic model; the concrete
// flow generators and scheduling policies live in src/traffic/. A null
// TrafficSource keeps the MAC on the legacy saturated round-robin path,
// and a null Scheduler keeps the legacy FIFO pop_joint selection — both
// bit-exact with the pre-traffic behaviour.
#pragma once

#include <cstddef>
#include <functional>
#include <string_view>
#include <vector>

#include "net/queue.h"

namespace jmb::net {

/// Achievable PHY rate hint (Mb/s) for a client at the current instant,
/// derived from its link state. Rate-aware policies (proportional fair)
/// use it; deadline/FIFO policies ignore it. May be null.
using RateHintFn = std::function<double(std::size_t client)>;

/// User-selection policy for one transmission slot. Implementations must
/// be deterministic functions of their inputs and feedback history —
/// exports are byte-compared across thread counts and backends.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Pick up to max_streams distinct backlogged clients, in stream order.
  /// `q` exposes the candidates via clients_fifo()/front_of()/backlog();
  /// selections of unqueued clients are ignored by the caller.
  [[nodiscard]] virtual std::vector<std::size_t> select(
      const DownlinkQueue& q, std::size_t max_streams, double now,
      const RateHintFn* rate_hint) = 0;

  /// Feedback after a data slot: `bytes` of `client`'s traffic were
  /// delivered in a slot that occupied the medium for slot_s seconds.
  virtual void on_served(std::size_t client, double bytes, double slot_s) {
    (void)client;
    (void)bytes;
    (void)slot_s;
  }

  /// Called once per data slot after all on_served() feedback, so
  /// rate-tracking policies can age every client's average (served or
  /// not) by the slot airtime.
  virtual void on_slot(double slot_s) { (void)slot_s; }
};

/// Per-user packet arrival process feeding the shared downlink queue.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Enqueue every packet arriving at or before virtual time t (each with
  /// its true arrival time in Packet::enqueue_s). Returns packets pushed.
  virtual std::size_t drain_until(double t, DownlinkQueue& q) = 0;

  /// Earliest pending arrival; +infinity when the source is exhausted.
  /// After drain_until(t) this is strictly greater than t, so an idling
  /// MAC can jump its clock forward without risking a stall.
  [[nodiscard]] virtual double next_arrival_s() const = 0;
};

}  // namespace jmb::net
