// Minimal discrete-event scheduler for link-layer simulations.
#pragma once

#include <cstdint>
#include <limits>
#include <functional>
#include <queue>
#include <vector>

namespace jmb::net {

/// Virtual-time event loop. Events fire in timestamp order; ties break by
/// insertion order (FIFO), which keeps simulations deterministic.
class EventScheduler {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute virtual time t (seconds). Times in the
  /// past are clamped to now() — the event fires as soon as possible, in
  /// FIFO order after events already due. NaN times throw.
  void at(double t, Handler fn);

  /// Schedule `fn` after a delay from now.
  void after(double delay, Handler fn) { at(now_ + delay, std::move(fn)); }

  /// Current virtual time.
  [[nodiscard]] double now() const { return now_; }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Run events until the queue empties or virtual time would exceed
  /// `until` (events after `until` stay queued). Returns events fired.
  std::size_t run_until(double until);

  /// Run everything (leaves the clock at the last event fired).
  std::size_t run() {
    return run_until(std::numeric_limits<double>::infinity());
  }

 private:
  struct Event {
    double t;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace jmb::net
