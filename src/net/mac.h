// Link-layer simulations: the 802.11 equal-share baseline and the JMB MAC
// (shared queue, lead election, joint transmissions, channel-measurement
// epochs, asynchronous ACKs with retransmission).
//
// Channel state enters through a callback so these simulations compose
// with either the closed-form LinkModel or measurements from the
// sample-level system.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dsp/rng.h"
#include "net/queue.h"
#include "net/traffic_api.h"
#include "rate/airtime.h"

namespace jmb::fault {
class FaultSession;
class ResilienceController;
}  // namespace jmb::fault

namespace jmb::net {

/// Per-client link state for one upcoming transmission.
struct LinkState {
  /// post-equalization (baseline) or post-beamforming (JMB)
  rvec subcarrier_snr;
};

/// client index -> link state at the current instant.
using LinkStateFn = std::function<LinkState(std::size_t client)>;

/// client index + the set of APs currently participating (1 = active) ->
/// link state. Lets the closed-form link model price in the SNR drop when
/// the joint set shrinks after a crash or quarantine.
using MaskedLinkStateFn = std::function<LinkState(
    std::size_t client, const std::vector<std::uint8_t>& active_aps)>;

/// Churn/mobility hook: is `client` attached to this cell at virtual time
/// t? The scheduler skips detached clients (no traffic is generated for
/// them) and idles when the cell is momentarily empty. A null ActivityFn
/// means "everyone, always" and leaves every MAC variant on the exact
/// legacy code path.
using ActivityFn = std::function<bool(std::size_t client, double t)>;

struct MacParams {
  double duration_s = 1.0;
  std::size_t psdu_bytes = 1500;
  double coherence_time_s = 0.25;  ///< measurement epoch spacing for JMB
  int max_retries = 10;
  rate::AirtimeParams airtime;
  std::uint64_t seed = 1;
  bool saturated = true;  ///< backlogged traffic to every client
  /// Consecutive joint transmissions without the lead's sync header before
  /// the MAC declares the lead dead and re-elects (resilient variant).
  std::size_t lead_miss_threshold = 3;

  // --- metro churn/mobility knobs (defaults keep the legacy path) ---
  /// Null = every client always attached (legacy behaviour, bit-exact).
  ActivityFn activity;
  /// Forced re-measurement instants (sorted ascending): a hand-off into
  /// the cell requires measuring the newcomer's channel outside the
  /// regular coherence cadence. JMB variants only; empty = none.
  std::vector<double> remeasure_at;
  /// Record per-frame delivery latency (enqueue -> ACK) samples into
  /// MacReport::frame_latency_s.
  bool record_latency = false;

  // --- traffic-subsystem knobs (defaults keep the legacy path) ---
  /// Packet arrival process replacing the synthetic saturated fill. Null
  /// keeps the legacy always-backlogged behaviour, bit-exact. Non-owning;
  /// must outlive the run and is mutated by it (arrivals are consumed).
  TrafficSource* traffic = nullptr;
  /// User-selection policy for traffic-mode runs. Null = FIFO (the exact
  /// pop_joint order). Non-owning; mutated by per-slot feedback.
  Scheduler* scheduler = nullptr;
  /// A-MPDU-style aggregation budget per client per joint transmission.
  /// The default (1 frame) is the legacy one-packet-per-client MAC.
  AggLimits agg;

  // --- precoder/CSI knobs (defaults keep the legacy path) ---
  /// Called at every measurement epoch (regular cadence and forced
  /// remeasures alike) with the running epoch count and the virtual time,
  /// right as the fresh snapshot lands. The CSI-impairment sweeps use it
  /// to reset channel staleness in step with the MAC's own coherence
  /// cadence. Null = legacy behaviour, bit-exact.
  std::function<void(std::size_t epoch, double t)> on_measure;
};

struct ClientStats {
  std::size_t delivered = 0;
  std::size_t failed_attempts = 0;
  std::size_t dropped = 0;
  double goodput_mbps = 0.0;
};

/// Per-flow delivery accounting for traffic-mode runs (one entry per
/// (client, flow) pair that generated at least one packet, ordered by
/// client then flow so exports are deterministic).
struct FlowStats {
  std::size_t client = 0;
  std::uint32_t flow = 0;
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  std::size_t deadline_misses = 0;  ///< delivered after Packet::deadline_s
  std::size_t delivered_bytes = 0;
  double goodput_mbps = 0.0;       ///< delivered_bytes over the run duration
  double mean_latency_s = 0.0;     ///< enqueue -> ACK, delivered packets
  double max_latency_s = 0.0;
  double jitter_s = 0.0;  ///< stddev of delivery latency
};

struct MacReport {
  std::vector<ClientStats> per_client;
  double total_goodput_mbps = 0.0;
  double data_airtime_s = 0.0;
  double measurement_airtime_s = 0.0;
  double duration_s = 0.0;
  std::size_t joint_transmissions = 0;  ///< 0 for the baseline
  std::size_t measurement_epochs = 0;   ///< JMB variants; includes forced ones
  /// Delivery latencies, one sample per delivered frame, in delivery
  /// order (only populated when MacParams::record_latency is set).
  std::vector<double> frame_latency_s;
  /// Per-flow accounting; only populated when MacParams::traffic is set.
  std::vector<FlowStats> flows;
  std::size_t offered_packets = 0;    ///< arrivals drained from the source
  std::size_t aggregated_mpdus = 0;   ///< packets carried via aggregation
  double max_queue_depth = 0.0;       ///< peak shared-queue occupancy

  // --- resilience accounting (run_*_resilient variants; zero elsewhere) ---
  std::size_t lead_elections = 0;   ///< times the MAC re-elected a lead
  std::size_t faults_injected = 0;  ///< plan events whose begin edge fired
  std::size_t quarantines = 0;      ///< controller quarantine events
  std::size_t backhaul_drops = 0;   ///< downlink packets lost on the backhaul
  double mean_time_to_detect_s = 0.0;   ///< fault -> quarantine latency
  double mean_time_to_recover_s = 0.0;  ///< fault -> first clean joint tx
};

/// Baseline 802.11: one AP talks at a time; each client gets an equal
/// share of the medium (the paper's USRP baseline methodology). Rate per
/// client is picked by effective SNR from its best AP.
[[nodiscard]] MacReport run_baseline_mac(std::size_t n_clients,
                                         const LinkStateFn& link_state,
                                         const MacParams& params);

/// JMB: every transmission serves up to `n_streams` clients jointly.
/// A channel-measurement phase (airtime from measurement_airtime_s) runs
/// once per coherence interval. Lead election follows the head packet's
/// designated AP (tracked for reporting; it does not change airtime).
[[nodiscard]] MacReport run_jmb_mac(std::size_t n_aps, std::size_t n_clients,
                                    std::size_t n_streams,
                                    const LinkStateFn& link_state,
                                    const MacParams& params);

/// Baseline 802.11 under faults: each client associates with its best
/// *up* AP (the mask handed to `link_state` carries the session's up/down
/// state), so a crash only strands clients with no surviving AP —
/// per-AP independence is exactly what JMB's joint transmission gives up.
/// `fault` may be null, which reduces to run_baseline_mac semantics.
[[nodiscard]] MacReport run_baseline_mac_resilient(
    std::size_t n_aps, std::size_t n_clients,
    const MaskedLinkStateFn& link_state, const MacParams& params,
    fault::FaultSession* fault);

/// JMB under faults with detection and failover. The session's timeline
/// is pumped as virtual time advances; every joint transmission feeds the
/// controller per-slave sync-header evidence. While a crashed AP is still
/// *believed* active (detection lag) the stale precoder ruins the whole
/// joint transmission; once quarantined, the MAC triggers an immediate
/// re-measurement epoch and continues on the surviving set (the mask
/// passed to `link_state`). A dead lead is declared after
/// `params.lead_miss_threshold` headerless slots and a new lead elected
/// from the surviving set. `fault` and `resilience` may be null (either
/// reduces that mechanism to a no-op); with both null this is
/// run_jmb_mac with a MaskedLinkStateFn.
[[nodiscard]] MacReport run_jmb_mac_resilient(
    std::size_t n_aps, std::size_t n_clients, std::size_t n_streams,
    const MaskedLinkStateFn& link_state, const MacParams& params,
    fault::FaultSession* fault, fault::ResilienceController* resilience);

}  // namespace jmb::net
