// Link-layer simulations: the 802.11 equal-share baseline and the JMB MAC
// (shared queue, lead election, joint transmissions, channel-measurement
// epochs, asynchronous ACKs with retransmission).
//
// Channel state enters through a callback so these simulations compose
// with either the closed-form LinkModel or measurements from the
// sample-level system.
#pragma once

#include <functional>
#include <vector>

#include "dsp/rng.h"
#include "net/queue.h"
#include "rate/airtime.h"

namespace jmb::net {

/// Per-client link state for one upcoming transmission.
struct LinkState {
  rvec subcarrier_snr;  ///< post-equalization (baseline) or post-beamforming (JMB)
};

/// client index -> link state at the current instant.
using LinkStateFn = std::function<LinkState(std::size_t client)>;

struct MacParams {
  double duration_s = 1.0;
  std::size_t psdu_bytes = 1500;
  double coherence_time_s = 0.25;  ///< measurement epoch spacing for JMB
  int max_retries = 10;
  rate::AirtimeParams airtime;
  std::uint64_t seed = 1;
  bool saturated = true;  ///< backlogged traffic to every client
};

struct ClientStats {
  std::size_t delivered = 0;
  std::size_t failed_attempts = 0;
  std::size_t dropped = 0;
  double goodput_mbps = 0.0;
};

struct MacReport {
  std::vector<ClientStats> per_client;
  double total_goodput_mbps = 0.0;
  double data_airtime_s = 0.0;
  double measurement_airtime_s = 0.0;
  double duration_s = 0.0;
  std::size_t joint_transmissions = 0;  ///< 0 for the baseline
};

/// Baseline 802.11: one AP talks at a time; each client gets an equal
/// share of the medium (the paper's USRP baseline methodology). Rate per
/// client is picked by effective SNR from its best AP.
[[nodiscard]] MacReport run_baseline_mac(std::size_t n_clients,
                                         const LinkStateFn& link_state,
                                         const MacParams& params);

/// JMB: every transmission serves up to `n_streams` clients jointly.
/// A channel-measurement phase (airtime from measurement_airtime_s) runs
/// once per coherence interval. Lead election follows the head packet's
/// designated AP (tracked for reporting; it does not change airtime).
[[nodiscard]] MacReport run_jmb_mac(std::size_t n_aps, std::size_t n_clients,
                                    std::size_t n_streams,
                                    const LinkStateFn& link_state,
                                    const MacParams& params);

}  // namespace jmb::net
