#include "net/scheduler.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace jmb::net {

void EventScheduler::at(double t, Handler fn) {
  if (std::isnan(t)) {
    throw std::invalid_argument("EventScheduler::at: NaN time");
  }
  // Clamp past timestamps to the current clock instead of rejecting them:
  // a handler that computes "fire at rx_time - guard" can legitimately
  // land epsilon behind now(), and the intent is "as soon as possible".
  // The event still runs in FIFO order after everything already due.
  if (t < now_) t = now_;
  queue_.push(Event{t, seq_++, std::move(fn)});
}

std::size_t EventScheduler::run_until(double until) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().t <= until) {
    // Copy out before pop: the handler may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ev.fn();
    ++fired;
  }
  if (queue_.empty() && now_ < until && std::isfinite(until)) now_ = until;
  return fired;
}

}  // namespace jmb::net
