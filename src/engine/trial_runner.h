// Parallel Monte-Carlo trial runner with deterministic per-trial RNG
// streams and two-level (trial × cell) work scheduling.
//
// Every trial gets its own seed (base_seed ^ trial index) and its own
// StageMetricsSet, so results and metrics are bit-identical no matter how
// many worker threads execute the trials or in what order they finish:
// results land in a vector indexed by trial, and metrics are merged in
// trial order after the fan-out completes.
//
// run_sharded() generalizes this to metro-scale scenarios where one trial
// simulates a grid of cells: each (trial, cell) pair is an independent
// work item with its own seed (base_seed ^ trial ^ (cell << 32) — cell 0
// degenerates to the classic per-trial seed, so single-cell configs are
// bitwise identical to the pre-sharding path) and its own metrics set,
// and the deterministic merge runs in (trial, cell) lexicographic order.
// Aggregate exports are therefore byte-identical for any JMB_THREADS and
// any shard schedule.
//
// Thread count comes from TrialRunnerOptions::n_threads, or — when left
// at 0 — the JMB_THREADS environment variable, falling back to
// std::thread::hardware_concurrency().
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "dsp/rng.h"
#include "engine/metrics.h"
#include "engine/thread_pool.h"
#include "obs/sink.h"

namespace jmb::engine {

/// Threads to use when the caller does not pin a count: JMB_THREADS if
/// set (>= 1), else std::thread::hardware_concurrency(), else 1.
[[nodiscard]] std::size_t default_thread_count();

/// Handed to each trial body: its index, its deterministic seed, a ready
/// Rng on that seed, a per-trial metrics sink, and an ObsSink bound to
/// the same trial's registry for physics probes. Sharded runs
/// (run_sharded) additionally carry the cell index within the trial;
/// plain run() leaves cell = 0 and n_cells = 1.
struct TrialContext {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::size_t cell = 0;     ///< shard index within the trial
  std::size_t n_cells = 1;  ///< shards per trial in this run
  Rng rng;
  StageMetricsSet* metrics = nullptr;
  obs::ObsSink sink;

  /// RAII wall-time sample attributed to `stage` in this trial's metrics
  /// (and a flight-recorder span carrying the (trial, cell, frame) flow
  /// id — for cell 0 identical to the classic (trial, frame) id).
  [[nodiscard]] ScopedStageTimer time_stage(std::string_view stage,
                                            std::uint64_t frame = 0) const {
    return ScopedStageTimer(
        metrics, stage, &sink, frame,
        obs::flight::make_cell_flow(index, cell, frame));
  }
};

struct TrialRunnerOptions {
  std::uint64_t base_seed = 1;
  /// 0 = auto (JMB_THREADS env, else hardware concurrency).
  std::size_t n_threads = 0;
};

class TrialRunner {
 public:
  explicit TrialRunner(TrialRunnerOptions opts)
      : opts_(opts),
        n_threads_(opts.n_threads > 0 ? opts.n_threads
                                      : default_thread_count()) {}

  [[nodiscard]] std::size_t n_threads() const { return n_threads_; }
  [[nodiscard]] std::uint64_t base_seed() const { return opts_.base_seed; }

  /// Run `n_trials` invocations of `fn(TrialContext&)` and return their
  /// results in trial order. Deterministic: trial i always sees
  /// seed = base_seed ^ i regardless of thread count. Exceptions thrown
  /// by a trial are rethrown here (first trial index wins).
  template <typename Fn>
  auto run(std::size_t n_trials, Fn&& fn)
      -> std::vector<decltype(fn(std::declval<TrialContext&>()))> {
    return run_sharded(n_trials, 1, std::forward<Fn>(fn));
  }

  /// Two-level fan-out: `n_trials` trials of `n_cells` cell shards each.
  /// Every (trial, cell) pair is one independent work item scheduled over
  /// the pool; item results land in a vector indexed by
  /// trial * n_cells + cell, and per-item metric sets merge in that flat
  /// order — (trial, cell) lexicographic — so the aggregate registry is
  /// independent of thread count and shard schedule. Seeds follow
  /// base_seed ^ (first_trial + trial) ^ (cell << 32): the cell occupies
  /// high bits so distinct (trial, cell) pairs never collide, and cell 0
  /// reproduces the classic per-trial seed bit-for-bit. `first_trial`
  /// offsets ctx.index so a bench sweeping configurations of different
  /// shard counts can give every grid point a distinct RNG stream across
  /// multiple run_sharded calls.
  template <typename Fn>
  auto run_sharded(std::size_t n_trials, std::size_t n_cells, Fn&& fn,
                   std::size_t first_trial = 0)
      -> std::vector<decltype(fn(std::declval<TrialContext&>()))> {
    using Result = decltype(fn(std::declval<TrialContext&>()));
    const auto t0 = Clock::now();
    const std::size_t n_items = n_trials * n_cells;
    std::vector<Result> results(n_items);
    std::vector<StageMetricsSet> per_item(n_items);

    auto one = [&](std::size_t i) {
      const std::size_t trial = first_trial + i / n_cells;
      const std::size_t cell = i % n_cells;
      TrialContext ctx;
      ctx.index = trial;
      ctx.cell = cell;
      ctx.n_cells = n_cells;
      ctx.seed = opts_.base_seed ^ static_cast<std::uint64_t>(trial) ^
                 (static_cast<std::uint64_t>(cell) << 32);
      ctx.rng = Rng(ctx.seed);
      ctx.metrics = &per_item[i];
      ctx.sink = obs::ObsSink(&per_item[i].registry(),
                              static_cast<std::uint32_t>(trial),
                              static_cast<std::uint32_t>(cell));
      results[i] = fn(ctx);
    };

    if (n_threads_ <= 1 || n_items <= 1) {
      for (std::size_t i = 0; i < n_items; ++i) one(i);
    } else {
      ThreadPool pool(std::min(n_threads_, n_items));
      std::exception_ptr first_error;
      std::size_t first_error_index = 0;
      std::mutex err_mu;
      for (std::size_t i = 0; i < n_items; ++i) {
        pool.submit([&, i] {
          try {
            one(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(err_mu);
            if (!first_error || i < first_error_index) {
              first_error = std::current_exception();
              first_error_index = i;
            }
          }
        });
      }
      pool.wait();
      if (first_error) std::rethrow_exception(first_error);
    }

    // Merge in (trial, cell) order so the aggregate is independent of
    // scheduling.
    for (const StageMetricsSet& m : per_item) metrics_.merge(m);
    trials_run_ += n_trials;
    cells_run_ += n_items;
    wall_s_ += std::chrono::duration<double>(Clock::now() - t0).count();
    return results;
  }

  /// Metrics aggregated across every trial run so far, in trial order.
  [[nodiscard]] const StageMetricsSet& metrics() const { return metrics_; }
  /// The merged metric registry (stage counters + physics probes).
  [[nodiscard]] const obs::MetricRegistry& registry() const {
    return metrics_.registry();
  }
  /// Wall time spent inside run() so far (seconds).
  [[nodiscard]] double wall_s() const { return wall_s_; }
  [[nodiscard]] std::size_t trials_run() const { return trials_run_; }
  /// Total (trial, cell) work items run so far; equals trials_run() for
  /// unsharded runs.
  [[nodiscard]] std::size_t cells_run() const { return cells_run_; }

  /// Print the shared per-stage report: thread count, trials, total wall
  /// time, then the stage table. Defaults to stderr so bench stdout
  /// carries only figure data.
  void print_report(std::FILE* out = stderr) const;

 private:
  using Clock = std::chrono::steady_clock;

  TrialRunnerOptions opts_;
  std::size_t n_threads_ = 1;
  StageMetricsSet metrics_;
  double wall_s_ = 0.0;
  std::size_t trials_run_ = 0;
  std::size_t cells_run_ = 0;
};

}  // namespace jmb::engine
