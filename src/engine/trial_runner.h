// Parallel Monte-Carlo trial runner with deterministic per-trial RNG
// streams.
//
// Every trial gets its own seed (base_seed ^ trial index) and its own
// StageMetricsSet, so results and metrics are bit-identical no matter how
// many worker threads execute the trials or in what order they finish:
// results land in a vector indexed by trial, and metrics are merged in
// trial order after the fan-out completes.
//
// Thread count comes from TrialRunnerOptions::n_threads, or — when left
// at 0 — the JMB_THREADS environment variable, falling back to
// std::thread::hardware_concurrency().
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "dsp/rng.h"
#include "engine/metrics.h"
#include "engine/thread_pool.h"
#include "obs/sink.h"

namespace jmb::engine {

/// Threads to use when the caller does not pin a count: JMB_THREADS if
/// set (>= 1), else std::thread::hardware_concurrency(), else 1.
[[nodiscard]] std::size_t default_thread_count();

/// Handed to each trial body: its index, its deterministic seed, a ready
/// Rng on that seed, a per-trial metrics sink, and an ObsSink bound to
/// the same trial's registry for physics probes.
struct TrialContext {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  Rng rng;
  StageMetricsSet* metrics = nullptr;
  obs::ObsSink sink;

  /// RAII wall-time sample attributed to `stage` in this trial's metrics
  /// (and a flight-recorder span carrying the (trial, frame) flow id).
  [[nodiscard]] ScopedStageTimer time_stage(std::string_view stage,
                                            std::uint64_t frame = 0) const {
    return ScopedStageTimer(metrics, stage, &sink, frame);
  }
};

struct TrialRunnerOptions {
  std::uint64_t base_seed = 1;
  /// 0 = auto (JMB_THREADS env, else hardware concurrency).
  std::size_t n_threads = 0;
};

class TrialRunner {
 public:
  explicit TrialRunner(TrialRunnerOptions opts)
      : opts_(opts),
        n_threads_(opts.n_threads > 0 ? opts.n_threads
                                      : default_thread_count()) {}

  [[nodiscard]] std::size_t n_threads() const { return n_threads_; }
  [[nodiscard]] std::uint64_t base_seed() const { return opts_.base_seed; }

  /// Run `n_trials` invocations of `fn(TrialContext&)` and return their
  /// results in trial order. Deterministic: trial i always sees
  /// seed = base_seed ^ i regardless of thread count. Exceptions thrown
  /// by a trial are rethrown here (first trial index wins).
  template <typename Fn>
  auto run(std::size_t n_trials, Fn&& fn)
      -> std::vector<decltype(fn(std::declval<TrialContext&>()))> {
    using Result = decltype(fn(std::declval<TrialContext&>()));
    const auto t0 = Clock::now();
    std::vector<Result> results(n_trials);
    std::vector<StageMetricsSet> per_trial(n_trials);

    auto one = [&](std::size_t i) {
      TrialContext ctx;
      ctx.index = i;
      ctx.seed = opts_.base_seed ^ static_cast<std::uint64_t>(i);
      ctx.rng = Rng(ctx.seed);
      ctx.metrics = &per_trial[i];
      ctx.sink = obs::ObsSink(&per_trial[i].registry(),
                              static_cast<std::uint32_t>(i));
      results[i] = fn(ctx);
    };

    if (n_threads_ <= 1 || n_trials <= 1) {
      for (std::size_t i = 0; i < n_trials; ++i) one(i);
    } else {
      ThreadPool pool(std::min(n_threads_, n_trials));
      std::exception_ptr first_error;
      std::size_t first_error_index = 0;
      std::mutex err_mu;
      for (std::size_t i = 0; i < n_trials; ++i) {
        pool.submit([&, i] {
          try {
            one(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(err_mu);
            if (!first_error || i < first_error_index) {
              first_error = std::current_exception();
              first_error_index = i;
            }
          }
        });
      }
      pool.wait();
      if (first_error) std::rethrow_exception(first_error);
    }

    // Merge in trial order so the aggregate is independent of scheduling.
    for (const StageMetricsSet& m : per_trial) metrics_.merge(m);
    trials_run_ += n_trials;
    wall_s_ += std::chrono::duration<double>(Clock::now() - t0).count();
    return results;
  }

  /// Metrics aggregated across every trial run so far, in trial order.
  [[nodiscard]] const StageMetricsSet& metrics() const { return metrics_; }
  /// The merged metric registry (stage counters + physics probes).
  [[nodiscard]] const obs::MetricRegistry& registry() const {
    return metrics_.registry();
  }
  /// Wall time spent inside run() so far (seconds).
  [[nodiscard]] double wall_s() const { return wall_s_; }
  [[nodiscard]] std::size_t trials_run() const { return trials_run_; }

  /// Print the shared per-stage report: thread count, trials, total wall
  /// time, then the stage table. Defaults to stderr so bench stdout
  /// carries only figure data.
  void print_report(std::FILE* out = stderr) const;

 private:
  using Clock = std::chrono::steady_clock;

  TrialRunnerOptions opts_;
  std::size_t n_threads_ = 1;
  StageMetricsSet metrics_;
  double wall_s_ = 0.0;
  std::size_t trials_run_ = 0;
};

}  // namespace jmb::engine
