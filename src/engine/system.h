// The full JMB system at complex-baseband sample level: a lead AP, slave
// APs and clients on a shared Medium, running the paper's two-phase
// protocol — channel measurement (Section 5.1), then joint data
// transmissions with distributed phase synchronization (Section 5.2) —
// plus the diversity mode (Section 8) and the nulling experiment used to
// quantify residual interference (Section 11.1c).
//
// JmbSystem is a thin facade over the staged frame pipeline in
// engine/pipeline.h: it owns the SystemState, validates inputs, and
// delegates frame processing to MeasurementStage/PrecodeStage (the
// measurement path) and SynthesisStage/PropagationStage/DecodeStage (the
// joint-transmission path). Attach a StageMetricsSet to get per-stage
// wall-time/failure/conditioning metrics for every frame it processes.
#pragma once

#include <optional>
#include <vector>

#include "engine/pipeline.h"

namespace jmb::core {

class JmbSystem {
 public:
  /// Build with explicit per-(client, ap) mean link power gains (linear,
  /// relative to noise_var = 1). gains[client][ap].
  JmbSystem(SystemParams params,
            const std::vector<std::vector<double>>& link_gains);

  /// Mean signal-to-noise of a client's *waveform* given a mean link power
  /// gain: OFDM time samples carry kOfdmTimePower of per-subcarrier unit
  /// power, which the gain multiplies.
  [[nodiscard]] static double gain_for_snr_db(double snr_db, double noise_var);

  /// Run the channel-measurement phase at the current time. Returns false
  /// if any client failed to detect the frame (no H update then).
  bool run_measurement();

  /// Has a usable precoder (measurement succeeded and H invertible)?
  [[nodiscard]] bool ready() const { return state_.precoder.has_value(); }

  /// Calibrate the operating point: scale every client's noise floor so
  /// the predicted post-beamforming SNR equals `target_db` (how the paper
  /// places clients "such that all clients obtain an effective SNR in the
  /// desired range"). Requires ready(); re-run run_measurement() after so
  /// the measurement noise matches the new operating point. Returns the
  /// applied shift in dB.
  double calibrate_to_effective_snr(double target_db);

  /// Jointly deliver one PSDU per client (all at the same MCS, as the
  /// paper's rate selection yields). Requires ready().
  [[nodiscard]] JointResult transmit_joint(
      const std::vector<phy::ByteVec>& psdus, const phy::Mcs& mcs);

  /// Diversity mode: all APs beamform the same PSDU to `client`.
  [[nodiscard]] phy::RxResult transmit_diversity(std::size_t client,
                                                 const phy::ByteVec& psdu,
                                                 const phy::Mcs& mcs);

  /// Nulling experiment (Fig. 8): transmit a joint frame whose stream for
  /// `nulled_client` is silence; report the interference-to-noise ratio
  /// (dB) observed at that client over the payload. Requires ready().
  [[nodiscard]] double measure_inr(std::size_t nulled_client);

  /// Phase-alignment probe (Fig. 7): after sync, the lead and slave 0
  /// transmit alternating OFDM symbols; the client reports the deviation
  /// of the slave-vs-lead relative phase from its first observation, one
  /// sample per round, advancing time by `gap_s` between rounds.
  [[nodiscard]] rvec measure_alignment_series(std::size_t n_rounds,
                                              double gap_s);

  /// Advance simulated time (lets oscillators drift / channels age
  /// between operations).
  void advance_time(double dt_seconds);
  [[nodiscard]] double now() const { return state_.now; }

  /// The H snapshot from the last measurement (client-side estimates).
  [[nodiscard]] const ChannelMatrixSet& measured_channels() const {
    return state_.h;
  }
  /// Post-beamforming SNR prediction per client (dB), from the precoder.
  [[nodiscard]] double predicted_beamforming_snr_db() const;

  /// Average power the OFDM waveform carries per time-domain sample when
  /// subcarriers hold unit-power symbols (52 used / 64^2 * 64).
  static constexpr double kOfdmTimePower = 52.0 / 4096.0;

  /// Record per-stage metrics for every subsequent frame into `metrics`
  /// (null detaches). The caller keeps ownership; the set must outlive the
  /// frames it observes.
  void attach_metrics(engine::StageMetricsSet* metrics) {
    state_.metrics = metrics;
  }

  /// Attach a physics-probe sink: the precoder, phase sync, and decode
  /// stage publish conditioning / residual-phase / EVM distributions into
  /// its registry (null detaches). Caller keeps ownership.
  void attach_obs(obs::ObsSink* sink) {
    state_.obs = sink;
    for (auto& s : state_.slave_sync) s.attach_obs(sink);
  }

  /// Attach a per-trial fault session: the stages pump its timeline and
  /// poll its impairment windows (null detaches — and a null or
  /// empty-plan session leaves every output bit-identical to a run
  /// without one). Caller keeps ownership.
  void attach_fault(fault::FaultSession* session) { state_.fault = session; }

  /// Attach a resilience controller: run_sync_header feeds it per-slave
  /// sync evidence and the precode stage shrinks the joint set to its
  /// surviving APs (null detaches). Caller keeps ownership.
  void attach_resilience(fault::ResilienceController* ctrl) {
    state_.resilience = ctrl;
  }

  /// The shared world the pipeline stages operate on — for driving the
  /// stages directly (tests, custom probes) and read-only diagnostics.
  [[nodiscard]] engine::SystemState& state() { return state_; }
  [[nodiscard]] const engine::SystemState& state() const { return state_; }

  /// Diagnostics: the underlying medium and node handles (read-only use).
  [[nodiscard]] chan::Medium& medium() { return state_.medium; }
  [[nodiscard]] chan::NodeId ap_node(std::size_t a) const {
    return state_.ap_nodes.at(a);
  }
  [[nodiscard]] chan::NodeId client_node(std::size_t c) const {
    return state_.client_nodes.at(c);
  }
  [[nodiscard]] double ap_tx_offset_s(std::size_t a) const {
    return state_.ap_tx_offset_s.at(a);
  }

 private:
  engine::SystemState state_;
  engine::FramePipeline pipeline_;
};

}  // namespace jmb::core
