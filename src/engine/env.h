// Strict environment-variable parsing for engine knobs.
//
// Same rules PR 5 applied to bench seeds (bench/bench_util.h): digits
// only — no sign, no leading whitespace, no trailing garbage, no
// overflow. A malformed value must not silently become "some" number; it
// falls back to the caller's default with a single warning per variable,
// so a typo'd JMB_THREADS=4x is loud but does not spam once per trial.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "phy/precoding.h"

namespace jmb::engine {

/// Strict decimal parse: digits only, no leading whitespace or sign
/// (strtoull alone would silently wrap "-1" to 2^64-1), no trailing
/// garbage, no overflow. Returns false on any violation.
inline bool parse_u64_strict(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text < '0' || *text > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (*end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

/// Read an unsigned env knob. Unset -> `fallback`. Set but malformed or
/// zero when `min_one` -> `fallback`, with a warning printed once per
/// (name, warned) pair — the caller supplies the warn-once flag so tests
/// can reset it.
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                             bool min_one, bool& warned) {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  std::uint64_t v = 0;
  if (parse_u64_strict(text, v) && (!min_one || v >= 1)) return v;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "[engine] ignoring %s='%s' (expected a positive decimal "
                 "integer); using %llu\n",
                 name, text, static_cast<unsigned long long>(fallback));
  }
  return fallback;
}

/// Strict non-negative decimal parse for rate-style knobs: digits with at
/// most one '.' (e.g. "0.5", "2", "1.25"). No sign, no whitespace, no
/// exponent, no trailing garbage, and the value must be finite. Returns
/// false on any violation.
inline bool parse_f64_strict(const char* text, double& out) {
  if (text == nullptr || *text < '0' || *text > '9') return false;
  bool seen_dot = false;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '.') {
      // Exactly one dot, and it must sit between digits ("1." and the
      // leading-dot case are rejected; the loop entry handled ".5").
      if (seen_dot || p[1] < '0' || p[1] > '9') return false;
      seen_dot = true;
    } else if (*p < '0' || *p > '9') {
      return false;
    }
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (*end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

/// Read a non-negative real env knob (churn rates, scale factors).
/// Unset -> `fallback`; malformed -> `fallback` with a once-per-flag
/// warning, same contract as env_u64.
inline double env_f64(const char* name, double fallback, bool& warned) {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  double v = 0.0;
  if (parse_f64_strict(text, v)) return v;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "[engine] ignoring %s='%s' (expected a non-negative decimal "
                 "number); using %g\n",
                 name, text, fallback);
  }
  return fallback;
}

/// Read a string-enum env knob (scheduling policy, traffic profile).
/// `allowed` is a null-terminated array of accepted values. Unset ->
/// `fallback`; set to anything not in `allowed` -> `fallback` with a
/// once-per-flag warning listing the choices, same contract as env_u64.
inline const char* env_choice(const char* name, const char* const* allowed,
                              const char* fallback, bool& warned) {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  for (const char* const* a = allowed; *a != nullptr; ++a) {
    if (std::strcmp(text, *a) == 0) return *a;
  }
  if (!warned) {
    warned = true;
    std::fprintf(stderr, "[engine] ignoring %s='%s' (expected one of:", name,
                 text);
    for (const char* const* a = allowed; *a != nullptr; ++a) {
      std::fprintf(stderr, " %s", *a);
    }
    std::fprintf(stderr, "); using %s\n", fallback);
  }
  return fallback;
}

/// Read the JMB_PRECODER knob ("zf", "rzf", "mmse", "conj"; "mmse" is an
/// alias for "rzf"). Unset -> kZf; any other spelling falls back to kZf
/// with a once-per-flag warning, same contract as env_choice.
inline phy::PrecoderKind env_precoder_kind(bool& warned) {
  const char* const choice =
      env_choice("JMB_PRECODER", phy::kPrecoderKindNames, "zf", warned);
  return *phy::parse_precoder_kind(choice);
}

}  // namespace jmb::engine
