#include "engine/trial_runner.h"

#include <cstdlib>
#include <thread>

namespace jmb::engine {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("JMB_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void TrialRunner::print_report(std::FILE* out) const {
  std::fprintf(out,
               "\n[trial-runner] %zu trial(s), %zu thread(s), %.3f s wall\n",
               trials_run_, n_threads_, wall_s_);
  print_stage_metrics(metrics_, out);
}

}  // namespace jmb::engine
