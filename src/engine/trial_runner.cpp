#include "engine/trial_runner.h"

#include <thread>

#include "engine/env.h"

namespace jmb::engine {

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::uint64_t fallback = hw > 0 ? hw : 1;
  static bool warned = false;
  return static_cast<std::size_t>(
      env_u64("JMB_THREADS", fallback, /*min_one=*/true, warned));
}

void TrialRunner::print_report(std::FILE* out) const {
  if (cells_run_ != trials_run_) {
    std::fprintf(out,
                 "\n[trial-runner] %zu trial(s), %zu cell shard(s), "
                 "%zu thread(s), %.3f s wall\n",
                 trials_run_, cells_run_, n_threads_, wall_s_);
  } else {
    std::fprintf(out,
                 "\n[trial-runner] %zu trial(s), %zu thread(s), %.3f s wall\n",
                 trials_run_, n_threads_, wall_s_);
  }
  print_stage_metrics(metrics_, out);
}

}  // namespace jmb::engine
