// Streaming execution mode: the five pipeline stages as dataflow
// operators on their own threads, connected by bounded SPSC rings, paced
// by a virtual sample clock.
//
// Topology (T operator threads, stages packed contiguously):
//
//   source ──ring──▶ op0[stages…] ──ring──▶ … ──ring──▶ opT-1 ──ring──▶ sink
//
// The source and sink share the caller's thread: the source admits work
// items, the sink retires them off the final ring, records deadline
// misses and frees the item's lane for the next admission.
//
// Determinism contract. Each *lane* is an independent JmbSystem (its own
// SystemState, Workspace, RNG, StageMetricsSet); a work item carries the
// lane's FrameContext through the operator chain, and at most one item
// per lane is in flight at a time. Ownership of the lane's mutable state
// therefore travels WITH the item: every hand-off is an SPSC push/pop
// whose release/acquire pair orders the upstream operator's writes before
// the downstream operator's reads, so a lane's state is only ever touched
// by one thread at a time, with happens-before edges between touches.
// Consequently each lane executes exactly the batch call sequence
// (run_measurement, then transmit_joint per data frame) and its physics
// outputs are bit-identical to batch mode — for ANY ring depth and ANY
// thread placement. Parallelism comes from pipelining across lanes, not
// from splitting a lane. Only the timing metrics (queue depths, stalls,
// deadline misses, Msamples/s) vary with configuration; they are all
// MetricClass::kTiming and excluded from default exports.
//
// Backpressure is explicit: rings are bounded, a full downstream ring
// stalls the operator (counted per operator), and a full first ring
// stalls admission. Deadlines come from the virtual sample clock — each
// item occupies a known number of air samples, the lane's cumulative
// sample count maps to a wall deadline, and the sink records misses and
// their latency; late items are processed, never dropped.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "engine/metrics.h"
#include "engine/pipeline.h"
#include "engine/stream/sample_clock.h"
#include "engine/stream/spsc_ring.h"
#include "engine/system.h"
#include "obs/streaming.h"

namespace jmb::engine::stream {

/// The canonical stage chain: measure, precode, synthesis, propagate,
/// decode.
inline constexpr std::size_t kNumStages = 5;

enum class ItemKind {
  kMeasure,  ///< channel-measurement epoch: stages measure + precode
  kData,     ///< joint data frame: synthesis + propagate + decode
};

/// One unit of work flowing through the rings. Owns the frame context
/// (and with it, exclusive access to the lane's SystemState) from
/// admission to retirement.
struct StreamItem {
  std::size_t lane = 0;
  std::uint64_t seq = 0;  ///< admission order within the lane
  ItemKind kind = ItemKind::kMeasure;
  std::uint64_t n_samples = 0;  ///< virtual airtime this item occupies
  double deadline_s = 0.0;      ///< from the virtual sample clock
  bool aborted = false;         ///< data item with no usable precoder
  /// Flight-recorder causal id, obs::flight::make_flow(lane, seq): every
  /// stage span and ring wait of this item carries it, so the journey
  /// reconstructs as one chain across operator threads.
  std::uint64_t flow = 0;
  /// TSC stamp of the last ring push (0 when recording is disabled);
  /// the popping side turns it into a kRingWait span.
  std::uint64_t enq_tsc = 0;
  std::unique_ptr<FrameContext> frame;
};

/// One independent air interface: its own system, payload and schedule.
struct StreamLaneSpec {
  core::SystemParams params;
  std::vector<std::vector<double>> link_gains;  ///< [client][ap]
  std::vector<phy::ByteVec> psdus;              ///< one per client
  phy::Mcs mcs{};
};

struct StreamConfig {
  std::size_t ring_depth = 8;          ///< per-edge SPSC capacity (>= 2)
  std::size_t n_threads = kNumStages;  ///< operators; clamped to [1, 5]
  double rt_factor = 0.0;              ///< clock speedup; <= 0 free-runs
  std::size_t n_epochs = 1;            ///< measurement epochs per lane
  std::size_t frames_per_epoch = 8;    ///< data frames after each epoch
};

/// What the sink recorded for one retired item. The deadline fields are
/// wall-clock derived; everything else is deterministic physics.
struct StreamFrameRecord {
  std::uint64_t seq = 0;
  ItemKind kind = ItemKind::kMeasure;
  bool aborted = false;
  bool measurement_ok = false;  ///< measure items
  core::JointResult joint;      ///< data items (empty when aborted)
  bool deadline_missed = false;
  double miss_latency_s = 0.0;
};

struct StreamLaneResult {
  std::vector<StreamFrameRecord> frames;  ///< in admission (= seq) order
};

/// Run-level throughput summary.
struct StreamReport {
  double wall_s = 0.0;
  std::uint64_t total_samples = 0;  ///< virtual air samples retired
  double msamples_per_s = 0.0;
  std::uint64_t items = 0;
  std::uint64_t deadline_misses = 0;
  double deadline_miss_rate = 0.0;
};

/// Contiguous [first, last) stage ranges for packing `n_stages` stages
/// onto `n_threads` operators (earlier operators take the extra stage
/// when it does not divide evenly). Exposed for tests.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
partition_stages(std::size_t n_stages, std::size_t n_threads);

class StreamPipeline {
 public:
  StreamPipeline(std::vector<StreamLaneSpec> specs, StreamConfig cfg);
  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  /// Execute the whole schedule: spawns the operator threads, runs
  /// source + sink on the calling thread, joins. Call exactly once.
  StreamReport run();

  /// Per-lane retired frames, in lane order (valid after run()).
  [[nodiscard]] const std::vector<StreamLaneResult>& lane_results() const {
    return results_;
  }

  /// Merged metrics (valid after run()): per-lane stage sets in lane
  /// order — deterministic physics — then per-operator streaming
  /// registries in operator order and the sink's deadline metrics, all
  /// kTiming.
  [[nodiscard]] const StageMetricsSet& metrics() const { return merged_; }

  [[nodiscard]] const StreamConfig& config() const { return cfg_; }

 private:
  struct Lane {
    std::size_t index = 0;
    std::unique_ptr<core::JmbSystem> sys;
    StageMetricsSet metrics;
    /// Prebuilt frequency-domain symbol streams (immutable after setup;
    /// every data item of this lane points at them).
    std::vector<std::vector<cvec>> payload;
    std::uint64_t measure_samples = 0;  ///< airtime of a measurement epoch
    std::uint64_t data_samples = 0;     ///< airtime of one data frame
    std::uint64_t cum_samples = 0;
    std::uint64_t next_index = 0;  ///< items admitted so far
    std::uint64_t total_items = 0;
    bool busy = false;  ///< an item is in flight (source/sink thread only)
  };

  struct Operator {
    std::size_t first_stage = 0;
    std::size_t last_stage = 0;
    obs::MetricRegistry reg;
    obs::StreamOpObs obs;
    /// Pre-interned flight-record names (hot path stays lookup-free).
    std::uint32_t wait_name = 0;   ///< "ring/op<k>" kRingWait spans
    std::uint32_t depth_name = 0;  ///< "stream/op<k>/depth" counter
    Operator(std::size_t first, std::size_t last, std::size_t index)
        : first_stage(first), last_stage(last), obs(reg, index) {}
  };

  [[nodiscard]] StreamItem make_item(Lane& lane);
  void retire(StreamItem& item, StreamReport& rep);
  void process_item(Operator& op, StreamItem& item);
  void operator_loop(std::size_t k);
  void source_sink_loop(StreamReport& rep);

  StreamConfig cfg_;
  VirtualSampleClock clock_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<Operator>> ops_;
  /// rings_[k] feeds operator k; rings_.back() is the done ring.
  std::vector<std::unique_ptr<SpscRing<StreamItem>>> rings_;
  std::uint64_t total_items_ = 0;
  bool ran_ = false;

  MeasurementStage measure_;
  PrecodeStage precode_;
  SynthesisStage synthesis_;
  PropagationStage propagate_;
  DecodeStage decode_;
  std::array<Stage*, kNumStages> stages_{};

  obs::MetricRegistry sink_reg_;
  obs::Counter* miss_count_ = nullptr;
  obs::Histogram* miss_us_ = nullptr;

  /// Flight-recorder wiring, resolved once at construction.
  bool flight_on_ = false;
  std::uint32_t admit_name_ = 0;      ///< "stream/admit" instants
  std::uint32_t done_wait_name_ = 0;  ///< "ring/done" kRingWait spans
  std::uint32_t miss_name_ = 0;       ///< "stream/deadline_miss" instants

  std::vector<StreamLaneResult> results_;
  StageMetricsSet merged_;
};

}  // namespace jmb::engine::stream
