// Bounded lock-free single-producer/single-consumer ring buffer — the
// edge connecting two pipeline operators in streaming mode.
//
// The design is the classic cache-friendly SPSC queue used by streaming
// SDR receivers: monotonic 64-bit head/tail counters (slot = counter &
// mask, so full/empty never alias), release/acquire publication so the
// consumer observes a slot's contents before it observes the index that
// covers it, and each side keeping a plain-field cache of the other
// side's index so the hot path usually touches only its own cache line.
//
// Thread roles are fixed: exactly one thread may call try_push()/close()
// (the producer) and exactly one may call try_pop() (the consumer).
// size() is racy-but-monotone and safe from any thread — it feeds the
// queue-depth gauges, nothing load-bearing.
//
// Backpressure is explicit and belongs to the caller: try_push/try_pop
// return false instead of blocking, and the operator loop decides how to
// wait (see stream_pipeline.cpp). close() marks end-of-stream; a consumer
// that sees closed() AND a failed pop has drained everything the producer
// will ever publish.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace jmb::engine::stream {

/// Destructive-interference padding: keep the producer index, consumer
/// index, and the index caches on separate cache lines.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2) so the
  /// index arithmetic stays a mask, never a modulo.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer only. Moves from `v` and returns true when a slot was
  /// free; leaves `v` untouched and returns false when the ring is full
  /// (the caller owns the retry/backoff policy).
  [[nodiscard]] bool try_push(T& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Moves the oldest element into `out`; false when the
  /// ring is currently empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer only: no further pushes will follow. Ordered after every
  /// preceding push, so a consumer that observes closed() and then fails
  /// a pop has seen every element.
  void close() { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy, safe from any thread (gauge fodder only).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::uint64_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // consumer index
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // producer index
  alignas(kCacheLine) std::atomic<bool> closed_{false};
  /// Producer's cached view of head_ (owner-thread only).
  alignas(kCacheLine) std::uint64_t head_cache_ = 0;
  /// Consumer's cached view of tail_ (owner-thread only).
  alignas(kCacheLine) std::uint64_t tail_cache_ = 0;
};

}  // namespace jmb::engine::stream
