// Virtual sample clock for streaming mode.
//
// The paper's system is paced by the radio front-end: samples leave the
// DAC at a fixed rate, so every frame has a hard deadline — the moment
// its last sample must exist. The simulator has no DAC, so this clock
// maps a cumulative sample count onto wall-clock deadlines:
//
//   deadline_s(cum_samples) = cum_samples / (sample_rate_hz * rt_factor)
//
// measured from start(). rt_factor = 1 is real time (10 Msamples/s means
// 10 M samples per wall second); rt_factor = 100 demands the pipeline
// run 100x faster than the air interface; rt_factor <= 0 is free-run —
// every deadline is +inf and the pipeline just measures sustained
// throughput. Deadlines are *observed*, never enforced: a late frame is
// still processed (the metrics record the miss and its latency), exactly
// like a software radio that falls behind its hardware and drops its
// timing budget rather than its data.
#pragma once

#include <chrono>
#include <limits>

namespace jmb::engine::stream {

class VirtualSampleClock {
 public:
  VirtualSampleClock(double sample_rate_hz, double rt_factor)
      : rate_hz_(sample_rate_hz), rt_factor_(rt_factor) {}

  /// Free-running clocks impose no deadlines (throughput-measurement
  /// mode).
  [[nodiscard]] bool free_run() const { return rt_factor_ <= 0.0; }

  /// Anchor t = 0. Call once, before the first deadline comparison.
  void start() { t0_ = std::chrono::steady_clock::now(); }

  /// Wall seconds elapsed since start().
  [[nodiscard]] double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

  /// Deadline (seconds since start()) by which sample number
  /// `cum_samples` must have been produced. +inf when free-running.
  [[nodiscard]] double deadline_s(std::uint64_t cum_samples) const {
    if (free_run()) return std::numeric_limits<double>::infinity();
    return static_cast<double>(cum_samples) / (rate_hz_ * rt_factor_);
  }

  [[nodiscard]] double sample_rate_hz() const { return rate_hz_; }
  [[nodiscard]] double rt_factor() const { return rt_factor_; }

 private:
  double rate_hz_;
  double rt_factor_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace jmb::engine::stream
