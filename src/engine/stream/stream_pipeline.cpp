#include "engine/stream/stream_pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "core/measurement.h"
#include "obs/bounds.h"
#include "obs/flight/export.h"
#include "obs/flight/recorder.h"
#include "phy/params.h"

namespace jmb::engine::stream {

std::vector<std::pair<std::size_t, std::size_t>> partition_stages(
    std::size_t n_stages, std::size_t n_threads) {
  n_threads = std::clamp<std::size_t>(n_threads, 1, n_stages);
  const std::size_t base = n_stages / n_threads;
  const std::size_t rem = n_stages % n_threads;
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  parts.reserve(n_threads);
  std::size_t at = 0;
  for (std::size_t k = 0; k < n_threads; ++k) {
    const std::size_t len = base + (k < rem ? 1 : 0);
    parts.emplace_back(at, at + len);
    at += len;
  }
  return parts;
}

StreamPipeline::StreamPipeline(std::vector<StreamLaneSpec> specs,
                               StreamConfig cfg)
    : cfg_(cfg),
      clock_(specs.empty() ? 0.0 : specs[0].params.phy.sample_rate_hz,
             cfg.rt_factor) {
  if (specs.empty()) {
    throw std::invalid_argument("StreamPipeline: no lanes");
  }
  if (cfg_.n_epochs == 0) {
    throw std::invalid_argument("StreamPipeline: n_epochs must be >= 1");
  }
  cfg_.n_threads = std::clamp<std::size_t>(cfg_.n_threads, 1, kNumStages);
  cfg_.ring_depth = std::max<std::size_t>(cfg_.ring_depth, 2);

  stages_ = {&measure_, &precode_, &synthesis_, &propagate_, &decode_};

  for (std::size_t i = 0; i < specs.size(); ++i) {
    StreamLaneSpec& spec = specs[i];
    if (spec.psdus.size() != spec.params.n_clients) {
      throw std::invalid_argument("StreamPipeline: need one PSDU per client");
    }
    auto lane = std::make_unique<Lane>();
    lane->index = i;
    lane->sys = std::make_unique<core::JmbSystem>(spec.params, spec.link_gains);
    lane->sys->attach_metrics(&lane->metrics);

    // Prebuild the frequency-domain payload exactly as
    // JmbSystem::transmit_joint does: per-client symbol streams, padded
    // to a common length with silent symbols.
    SystemState& sys = lane->sys->state();
    std::size_t n_sym = 0;
    for (const auto& psdu : spec.psdus) {
      lane->payload.push_back(sys.tx.build_freq_symbols(psdu, spec.mcs));
      n_sym = std::max(n_sym, lane->payload.back().size());
    }
    for (auto& s : lane->payload) {
      while (s.size() < n_sym) s.emplace_back(phy::kNfft, cplx{});
    }

    // Virtual airtime per item, mirroring how the stages advance sys.now:
    // a measurement epoch is the interleaved frame plus guard; a data
    // frame is sync header + turnaround + joint waveform plus guard.
    const double fs = spec.params.phy.sample_rate_hz;
    const core::MeasurementSchedule sched{spec.params.n_aps,
                                          spec.params.measurement_rounds};
    lane->measure_samples = sched.frame_len() + 400;
    const std::size_t wave_len = phy::kLtfLen + n_sym * phy::kSymbolLen;
    lane->data_samples =
        phy::kPreambleLen +
        static_cast<std::uint64_t>(spec.params.turnaround_s * fs) + wave_len +
        400;

    lane->total_items = cfg_.n_epochs * (1 + cfg_.frames_per_epoch);
    total_items_ += lane->total_items;
    lanes_.push_back(std::move(lane));
  }
  results_.resize(lanes_.size());

  obs::flight::FlightRecorder& flight = obs::flight::FlightRecorder::instance();
  flight_on_ = flight.enabled();
  admit_name_ = flight.intern("stream/admit");
  done_wait_name_ = flight.intern("ring/done");
  miss_name_ = flight.intern("stream/deadline_miss");

  const auto parts = partition_stages(kNumStages, cfg_.n_threads);
  for (std::size_t k = 0; k < parts.size(); ++k) {
    ops_.push_back(
        std::make_unique<Operator>(parts[k].first, parts[k].second, k));
    ops_.back()->wait_name = flight.intern("ring/op" + std::to_string(k));
    ops_.back()->depth_name =
        flight.intern("stream/op" + std::to_string(k) + "/depth");
  }
  for (std::size_t k = 0; k <= ops_.size(); ++k) {
    rings_.push_back(std::make_unique<SpscRing<StreamItem>>(cfg_.ring_depth));
  }

  miss_count_ = &sink_reg_.counter("stream/deadline_miss_count",
                                   obs::MetricClass::kTiming);
  miss_us_ = &sink_reg_.histogram("stream/miss_latency_us", obs::kTimeUsBounds,
                                  obs::MetricClass::kTiming);
}

StreamItem StreamPipeline::make_item(Lane& lane) {
  StreamItem it;
  it.lane = lane.index;
  it.seq = lane.next_index;
  it.kind = lane.next_index % (cfg_.frames_per_epoch + 1) == 0
                ? ItemKind::kMeasure
                : ItemKind::kData;
  it.n_samples = it.kind == ItemKind::kMeasure ? lane.measure_samples
                                               : lane.data_samples;
  lane.cum_samples += it.n_samples;
  it.deadline_s = clock_.deadline_s(lane.cum_samples);
  it.frame = std::make_unique<FrameContext>(lane.sys->state());
  if (it.kind == ItemKind::kData) it.frame->streams = &lane.payload;
  it.flow = obs::flight::make_flow(lane.index, it.seq);
  if (flight_on_) {
    // Admission opens the item's causal chain; enq_tsc covers the whole
    // time-to-first-pop (including a stalled admission retry, which IS
    // queueing delay from the item's point of view).
    it.enq_tsc = obs::flight::now_ticks();
    obs::flight::record(obs::flight::EventType::kInstant, admit_name_,
                        it.enq_tsc, it.flow, it.seq);
  }
  ++lane.next_index;
  lane.busy = true;
  return it;
}

void StreamPipeline::retire(StreamItem& item, StreamReport& rep) {
  Lane& lane = *lanes_[item.lane];
  StreamFrameRecord rec;
  rec.seq = item.seq;
  rec.kind = item.kind;
  rec.aborted = item.aborted;
  rec.measurement_ok = item.frame->measurement_ok;
  if (item.kind == ItemKind::kData && !item.aborted) {
    rec.joint = std::move(item.frame->result);
  }
  if (!clock_.free_run()) {
    const double now = clock_.now_s();
    if (now > item.deadline_s) {
      rec.deadline_missed = true;
      rec.miss_latency_s = now - item.deadline_s;
      ++rep.deadline_misses;
      miss_count_->add(1.0);
      miss_us_->observe(rec.miss_latency_s * 1e6);
      if (flight_on_) {
        obs::flight::instant(
            miss_name_, item.flow,
            static_cast<std::uint64_t>(rec.miss_latency_s * 1e6));
        obs::flight::trigger_dump("deadline_miss");
      }
    }
  }
  ++rep.items;
  rep.total_samples += item.n_samples;
  results_[item.lane].frames.push_back(std::move(rec));
  item.frame.reset();
  lane.busy = false;
}

void StreamPipeline::process_item(Operator& op, StreamItem& item) {
  SystemState& sys = lanes_[item.lane]->sys->state();
  StageContext sctx(*item.frame);
  sctx.stream_id = item.lane;
  sctx.item_seq = item.seq;
  sctx.deadline_s = item.deadline_s;
  const bool is_measure = item.kind == ItemKind::kMeasure;
  for (std::size_t s = op.first_stage; s < op.last_stage; ++s) {
    // Mirror FramePipeline's sequencing exactly: frame_seq bumps at each
    // path's entry stage, precode is skipped after a failed measurement,
    // and a data frame with no usable precoder aborts (batch mode never
    // reaches run_joint in that state).
    bool applies = false;
    switch (s) {
      case 0:
        applies = is_measure;
        if (applies) ++sys.frame_seq;
        break;
      case 1:
        applies = is_measure && item.frame->measurement_ok;
        break;
      case 2:
        if (!is_measure) {
          ++sys.frame_seq;
          if (!sys.precoder) item.aborted = true;
          applies = !item.aborted;
        }
        break;
      default:
        applies = !is_measure && !item.aborted;
        break;
    }
    if (!applies) continue;
    const ScopedStageTimer timer(&lanes_[item.lane]->metrics,
                                 stages_[s]->name(), nullptr, sys.frame_seq,
                                 item.flow);
    stages_[s]->run(sctx);
  }
}

void StreamPipeline::operator_loop(std::size_t k) {
  Operator& op = *ops_[k];
  SpscRing<StreamItem>& in = *rings_[k];
  SpscRing<StreamItem>& out = *rings_[k + 1];
  StreamItem item;
  for (;;) {
    if (!in.try_pop(item)) {
      if (in.closed()) {
        // closed() is release-published after the final push, so one more
        // pop after observing it sees any still-buffered item.
        if (!in.try_pop(item)) break;
      } else {
        std::this_thread::yield();
        continue;
      }
    }
    const std::size_t depth = in.size();
    op.obs.on_pop(depth);
    if (item.enq_tsc != 0) {
      // The pop closes the item's ring residency: one kRingWait span
      // from the upstream push to now, on this operator's timeline.
      const std::uint64_t now = obs::flight::now_ticks();
      obs::flight::record(obs::flight::EventType::kRingWait, op.wait_name,
                          item.enq_tsc, item.flow, now - item.enq_tsc);
      double d = static_cast<double>(depth);
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof bits);
      obs::flight::record(obs::flight::EventType::kCounter, op.depth_name,
                          now, obs::flight::kNoFlow, bits);
    }
    process_item(op, item);
    item.enq_tsc = flight_on_ ? obs::flight::now_ticks() : 0;
    while (!out.try_push(item)) {
      op.obs.on_push_stall();
      std::this_thread::yield();
    }
  }
  out.close();
}

void StreamPipeline::source_sink_loop(StreamReport& rep) {
  SpscRing<StreamItem>& first = *rings_.front();
  SpscRing<StreamItem>& done = *rings_.back();
  std::uint64_t retired = 0;
  bool closed = false;
  std::size_t rr = 0;  // round-robin admission cursor
  // At most one admission blocked on a full first ring at a time (its
  // lane is already marked busy and its samples counted).
  StreamItem pending;
  bool has_pending = false;
  while (retired < total_items_) {
    bool progress = false;
    StreamItem item;
    while (done.try_pop(item)) {
      if (item.enq_tsc != 0) {
        obs::flight::record(obs::flight::EventType::kRingWait,
                            done_wait_name_, item.enq_tsc, item.flow,
                            obs::flight::now_ticks() - item.enq_tsc);
      }
      retire(item, rep);
      ++retired;
      progress = true;
    }
    if (!closed) {
      if (has_pending && first.try_push(pending)) {
        has_pending = false;
        progress = true;
      }
      while (!has_pending) {
        Lane* next = nullptr;
        for (std::size_t i = 0; i < lanes_.size() && !next; ++i) {
          Lane& lane = *lanes_[(rr + i) % lanes_.size()];
          if (!lane.busy && lane.next_index < lane.total_items) next = &lane;
        }
        if (!next) break;
        rr = (next->index + 1) % lanes_.size();
        StreamItem it = make_item(*next);
        if (first.try_push(it)) {
          progress = true;
        } else {
          pending = std::move(it);
          has_pending = true;
        }
      }
      if (!has_pending) {
        bool exhausted = true;
        for (const auto& lane : lanes_) {
          if (lane->next_index < lane->total_items) exhausted = false;
        }
        if (exhausted) {
          first.close();
          closed = true;
        }
      }
    }
    if (!progress) std::this_thread::yield();
  }
}

StreamReport StreamPipeline::run() {
  if (ran_) throw std::logic_error("StreamPipeline::run: already ran");
  ran_ = true;
  StreamReport rep;
  clock_.start();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(ops_.size());
  for (std::size_t k = 0; k < ops_.size(); ++k) {
    workers.emplace_back([this, k] { operator_loop(k); });
  }
  source_sink_loop(rep);
  for (std::thread& t : workers) t.join();
  rep.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (rep.wall_s > 0.0) {
    rep.msamples_per_s =
        static_cast<double>(rep.total_samples) / rep.wall_s / 1e6;
  }
  if (rep.items > 0) {
    rep.deadline_miss_rate = static_cast<double>(rep.deadline_misses) /
                             static_cast<double>(rep.items);
  }

  // Deterministic merge: per-lane physics/stage metrics in lane order,
  // then the timing-only operator registries in operator order, then the
  // sink's deadline metrics.
  for (const auto& lane : lanes_) merged_.merge(lane->metrics);
  for (const auto& op : ops_) merged_.registry().merge(op->reg);
  merged_.registry().merge(sink_reg_);
  return rep;
}

}  // namespace jmb::engine::stream
