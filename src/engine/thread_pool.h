// A small fixed-size worker pool for fanning independent Monte-Carlo
// trials across cores. Determinism is the caller's job (the TrialRunner
// gives every trial its own RNG stream); the pool only promises that every
// submitted task runs exactly once and that wait() blocks until the queue
// drains.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jmb::engine {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (at least 1).
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Never blocks; tasks may run on any worker.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait();

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;   // workers wait for work
  std::condition_variable cv_done_;   // wait() waits for the drain
  std::size_t in_flight_ = 0;         // queued + currently running
  bool stop_ = false;
};

}  // namespace jmb::engine
