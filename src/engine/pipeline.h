// The staged frame pipeline behind JmbSystem.
//
// The monolithic frame path is decomposed into composable stages with a
// uniform Stage::run(StageContext&) interface, mirroring how AirSync and
// the Rogalin et al. scalable-synchronization systems structure their
// distributed-MIMO stacks:
//
//   measurement path:  MeasurementStage -> PrecodeStage
//   joint-tx path:     SynthesisStage -> PropagationStage -> DecodeStage
//
// SystemState is the shared world (medium, nodes, oscillator sync state,
// measured channels, precoder); a FrameContext carries one frame's inputs,
// intermediates and outputs through the stages. FramePipeline sequences
// the stages and records per-stage wall time into the attached
// StageMetricsSet, which the TrialRunner aggregates across trials.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "chan/medium.h"
#include "core/measurement.h"
#include "core/phase_sync.h"
#include "core/precoder.h"
#include "core/types.h"
#include "engine/metrics.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"
#include "phy/workspace.h"

namespace jmb::core {

struct SystemParams {
  std::size_t n_aps = 2;
  std::size_t n_clients = 2;
  phy::PhyConfig phy{};

  /// Oscillator spread: each node's ppm ~ U(-range, range).
  double ap_ppm_range = 2.0;
  double client_ppm_range = 5.0;
  double phase_noise_linewidth_hz = 0.1;

  /// Fixed per-AP transmit timing offset range (cabling/pipeline skew,
  /// drawn once per AP). Constant offsets are absorbed into the measured
  /// channels, exactly as the paper argues for propagation delays.
  double fixed_timing_offset_s = 20e-9;
  /// Per-transmission timing repeatability jitter (std dev). Timestamped
  /// USRP transmissions repeat to a fraction of a sample; SourceSync
  /// absolute error is constant and lands in the fixed offset above.
  double trigger_jitter_s = 1e-9;

  /// Turnaround between lead sync header and the joint transmission
  /// (software latency on the paper's USRPs: 150 us).
  double turnaround_s = 150e-6;

  /// Client noise floor (linear power per sample); link gains are relative.
  double noise_var = 1.0;

  /// AP-to-AP link SNR in dB (APs share ledges; links are strong).
  double ap_ap_snr_db = 35.0;

  /// Interleaved measurement rounds.
  std::size_t measurement_rounds = 4;

  /// Propagation delay range for AP-client links (fractional samples ok).
  double prop_delay_min_s = 10e-9;
  double prop_delay_max_s = 60e-9;

  /// Multipath shape for every link. At 10 MHz a conference room's
  /// 30-100 ns delay spread is sub-sample: one dominant tap plus a weak
  /// echo. (Long tails would also break nulling at symbol boundaries,
  /// where circular convolution does not hold — a real effect, but not
  /// one this deployment scenario exhibits.)
  std::size_t n_taps = 2;
  double tap_decay = 0.15;
  double rice_k = 4.0;
  double coherence_time_s = 0.25;

  /// Ablation switch: when true, slaves transmit without any phase
  /// correction (no sync-header ratio, no CFO ramp) — the "distributed
  /// MIMO without phase synchronization" strawman.
  bool disable_slave_correction = false;

  /// Which precoder PrecodeStage builds each measurement epoch. The
  /// default (kZf, ridge 0) is bitwise-identical to the original
  /// ZF-only pipeline; see engine::env_precoder_kind for the JMB_PRECODER
  /// knob benches feed through here.
  PrecoderConfig precoder{};

  std::uint64_t seed = 1;
};

/// Outcome of one joint transmission.
struct JointResult {
  std::vector<phy::RxResult> per_client;
  double precoder_scale = 0.0;  ///< effective diagonal gain (amplitude)
  std::size_t slaves_synced = 0;
};

}  // namespace jmb::core

namespace jmb::fault {
class FaultSession;
class ResilienceController;
}  // namespace jmb::fault

namespace jmb::engine {

/// Samples of slack kept before scheduled frames in receive buffers.
inline constexpr std::size_t kRxMargin = 100;

/// Everything the stages share between frames: the medium, node handles,
/// per-slave sync state, the measured channel snapshot and the precoder.
/// JmbSystem owns one SystemState and is a thin facade over the stages.
struct SystemState {
  explicit SystemState(core::SystemParams p)
      : params(p),
        medium({p.phy.sample_rate_hz}, p.seed ^ 0xfeedbeef),
        rng(p.seed),
        h(p.n_clients, p.n_aps),
        tx(p.phy),
        rx(p.phy) {
    rx.set_workspace(&ws);
  }

  core::SystemParams params;
  chan::Medium medium;
  Rng rng;
  double now = 1e-3;

  std::vector<chan::NodeId> ap_nodes;      // [0] is the lead
  std::vector<chan::NodeId> client_nodes;
  std::vector<double> ap_tx_offset_s;      // fixed per-AP timing offset
  double client_noise_var = 1.0;
  std::vector<core::SlavePhaseSync> slave_sync;  // index 0 <-> ap 1

  core::ChannelMatrixSet h;
  std::optional<core::ZfPrecoder> precoder;

  /// Per-trial scratch arena: FFT plans, pinv scratch, receive buffers and
  /// the denoising-projection cache. One per SystemState (one per
  /// TrialRunner worker), so every stage runs lock-free off it. Declared
  /// before tx/rx so `rx` can bind to it during construction; Workspace is
  /// non-copyable, which also pins SystemState in place (rx holds &ws).
  Workspace ws;

  phy::Transmitter tx;
  phy::Receiver rx;

  /// Per-stage metrics sink; null disables instrumentation.
  StageMetricsSet* metrics = nullptr;
  /// Physics-probe sink (registry + optional trace); null = probes off.
  obs::ObsSink* obs = nullptr;
  /// Fault-injection session for this trial (null = no impairments). The
  /// stages pump its timeline to sys.now and poll its windows at the
  /// natural hook points; owned by the caller (see fault/injector.h).
  fault::FaultSession* fault = nullptr;
  /// Sync-loss detection / quarantine state machine (null = disabled).
  /// When attached, run_sync_header feeds it per-slave evidence and
  /// PrecodeStage re-derives the precoder from the surviving set.
  fault::ResilienceController* resilience = nullptr;
  /// Frames pushed through the pipeline; labels trace spans.
  std::uint64_t frame_seq = 0;
};

/// Lead sync header + per-slave corrections; `header_t` is the time the
/// header went out and `tx_start` when the joint waveform follows.
struct SyncOutcome {
  double header_t = 0.0;
  double tx_start = 0.0;
  std::vector<std::optional<core::SlaveCorrection>> per_slave;
};

/// Transmit the lead's sync header and collect every slave's correction
/// (nullopt where sync failed). Shared by SynthesisStage and the
/// phase-alignment probe.
[[nodiscard]] SyncOutcome run_sync_header(SystemState& sys);

/// Apply a slave correction to a waveform starting at tx_start.
void apply_slave_correction(const SystemState& sys, cvec& wave,
                            const core::SlaveCorrection& corr, double tx_start,
                            double header_t);

/// Mean 2-norm condition number over a spread of subcarriers (at most
/// `max_samples`, evenly strided) — the conditioning term K in the paper's
/// N log(SNR/K) beamforming rate, cheap enough to record per precoder.
[[nodiscard]] double mean_condition_number(const core::ChannelMatrixSet& h,
                                           std::size_t max_samples = 8);

/// One frame's worth of inputs, intermediates and outputs flowing through
/// the stages.
struct FrameContext {
  explicit FrameContext(SystemState& s) : sys(s) {}

  SystemState& sys;

  // --- measurement path ---
  std::optional<core::MeasurementSchedule> sched;
  std::optional<core::ChannelMatrixSet> h_measured;
  bool measurement_ok = false;

  // --- joint-transmission path ---
  /// One frequency-domain symbol stream per client (or a single stream for
  /// diversity mode): streams[j][symbol] is a kNfft-bin spectrum.
  const std::vector<std::vector<cvec>>* streams = nullptr;
  /// Per-subcarrier weight override (diversity MRT); null uses the ZF
  /// precoder from SystemState.
  const std::vector<CMatrix>* weights_override = nullptr;

  SyncOutcome sync;
  std::vector<std::optional<cvec>> ap_waves;  ///< nullopt: AP sits this one out
  std::vector<double> ap_tx_time;
  std::size_t wave_len = 0;
  std::vector<cvec> client_bufs;

  core::JointResult result;
};

/// The scheduling envelope a stage body receives: the frame flowing
/// through the stages plus the identity the execution mode attached to
/// it. Batch mode (FramePipeline) wraps each FrameContext on the stack
/// with the defaults below; streaming mode (engine/stream/) fills the
/// stream/deadline fields from the work item, so the same stage bodies
/// serve both modes without knowing which one is driving them.
struct StageContext {
  explicit StageContext(FrameContext& f) : frame(f) {}

  FrameContext& frame;
  /// Owning stream when pipelined (0 in batch mode).
  std::size_t stream_id = 0;
  /// Work-item sequence number within the stream (0 in batch mode).
  std::uint64_t item_seq = 0;
  /// Virtual-sample-clock deadline in wall seconds since pipeline start;
  /// +inf (or 0 in batch mode) means no deadline applies.
  double deadline_s = 0.0;
};

/// A composable pipeline stage. Stages communicate only through the
/// FrameContext inside the StageContext; the execution mode (batch
/// FramePipeline or streaming StreamPipeline) owns sequencing and timing.
class Stage {
 public:
  virtual ~Stage() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void run(StageContext& ctx) = 0;
};

/// Channel-measurement phase (Section 5.1): interleaved per-AP symbols;
/// slaves capture their lead reference, clients estimate the full H.
class MeasurementStage final : public Stage {
 public:
  [[nodiscard]] const char* name() const override { return kStageMeasure; }
  void run(StageContext& ctx) override;
};

/// Build the zero-forcing precoder from the measured snapshot.
class PrecodeStage final : public Stage {
 public:
  [[nodiscard]] const char* name() const override { return kStagePrecode; }
  void run(StageContext& ctx) override;
};

/// Sync header + per-AP waveform synthesis: jointly precoded LTF and data
/// symbols, with each synced slave's phase correction applied
/// (Section 5.2).
class SynthesisStage final : public Stage {
 public:
  [[nodiscard]] const char* name() const override { return kStageSynthesis; }
  void run(StageContext& ctx) override;
};

/// Schedule the waveforms on the shared medium and render every client's
/// receive buffer (multipath, CFO/SFO, phase noise, AWGN).
class PropagationStage final : public Stage {
 public:
  [[nodiscard]] const char* name() const override { return kStagePropagate; }
  void run(StageContext& ctx) override;
};

/// Standard receive chain at every client: CFO from the lead's sync
/// header, channel from the jointly precoded LTF, then decode.
class DecodeStage final : public Stage {
 public:
  [[nodiscard]] const char* name() const override { return kStageDecode; }
  void run(StageContext& ctx) override;
};

/// Sequences the stages for the two frame paths and records per-stage
/// wall time into SystemState::metrics when attached.
class FramePipeline {
 public:
  /// measure -> precode. Returns true when the snapshot was captured and
  /// the precoder is usable (what JmbSystem::run_measurement reports).
  bool run_measurement(FrameContext& ctx);

  /// synthesis -> propagate -> decode. Requires ctx.streams; validates
  /// exactly like the monolithic path did.
  [[nodiscard]] core::JointResult run_joint(FrameContext& ctx);

 private:
  void run_stage(Stage& stage, FrameContext& ctx);

  MeasurementStage measure_;
  PrecodeStage precode_;
  SynthesisStage synthesis_;
  PropagationStage propagate_;
  DecodeStage decode_;
};

}  // namespace jmb::engine
