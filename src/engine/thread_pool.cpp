#include "engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace jmb::engine {

ThreadPool::ThreadPool(std::size_t n_threads) {
  const std::size_t n = std::max<std::size_t>(n_threads, 1);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace jmb::engine
