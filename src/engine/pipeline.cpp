#include "engine/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "fault/injector.h"
#include "fault/resilience.h"
#include "linalg/pinv.h"
#include "obs/bounds.h"
#include "obs/flight/recorder.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "simd/kernels.h"

namespace jmb::engine {

namespace {

/// Maximal runs of used-subcarrier indices whose FFT bins are contiguous
/// (for the 802.11 grid: k 0..25 -> bins 38..63, k 26..51 -> bins 1..26).
/// The subcarrier-batched synthesis kernels run once per run, over
/// contiguous weight-row and spectrum memory.
struct UsedRun {
  std::size_t k0;   ///< first used-subcarrier index
  std::size_t bin0; ///< its FFT bin; bins advance by 1 within the run
  std::size_t len;
};

/// Stack bound for the fused per-run stream-pointer arrays handed to
/// cmacn; larger systems fall back to the scalar per-bin loop.
constexpr std::size_t kMaxFusedStreams = 32;

const std::vector<UsedRun>& used_bin_runs() {
  static const std::vector<UsedRun> kRuns = [] {
    std::vector<UsedRun> runs;
    const auto& used = core::used_subcarriers();
    std::size_t k0 = 0;
    for (std::size_t k = 1; k <= used.size(); ++k) {
      if (k == used.size() ||
          phy::bin_of(used[k]) != phy::bin_of(used[k - 1]) + 1) {
        runs.push_back({k0, phy::bin_of(used[k0]), k - k0});
        k0 = k;
      }
    }
    return runs;
  }();
  return kRuns;
}

/// Routes fault-session point events into the physical world: oscillator
/// phase jumps / drift-rate steps land on the owning medium node. Crash
/// and restart edges need no physical action here — the session's own
/// up/down mask gates transmissions at the stage hook points.
class EngineFaultHost final : public fault::FaultHost {
 public:
  explicit EngineFaultHost(SystemState& sys) : sys_(sys) {}

  void on_phase_jump(std::size_t ap, double rad) override {
    if (ap < sys_.ap_nodes.size()) {
      sys_.medium.oscillator_mutable(sys_.ap_nodes[ap]).inject_phase_jump(rad);
    }
  }
  void on_cfo_step(std::size_t ap, double hz) override {
    if (ap < sys_.ap_nodes.size()) {
      sys_.medium.oscillator_mutable(sys_.ap_nodes[ap]).inject_cfo_step(hz);
    }
  }

 private:
  SystemState& sys_;
};

/// Advance the fault timeline to the current simulated time. With no
/// pending edges this is two comparisons — cheap enough for every frame —
/// and it never allocates (the host is a stack object).
void pump_faults(SystemState& sys) {
  if (!sys.fault) return;
  const std::size_t before = sys.fault->events_applied();
  EngineFaultHost host(sys);
  sys.fault->advance_to(sys.now, host);
  if (sys.fault->events_applied() != before) {
    // Rare (only on a fault edge), so the interning lookup is fine here.
    obs::flight::instant("fault/injected", obs::flight::kNoFlow,
                         sys.fault->events_applied());
    if (sys.resilience) {
      sys.resilience->note_fault(sys.fault->last_fault_t());
    }
  }
}

}  // namespace

SyncOutcome run_sync_header(SystemState& sys) {
  pump_faults(sys);
  const double fs = sys.params.phy.sample_rate_hz;
  SyncOutcome out;
  out.header_t = sys.now;
  out.per_slave.resize(sys.params.n_aps - 1);
  const bool lead_down = sys.fault && sys.fault->ap_down(0);
  if (!lead_down) {
    sys.medium.transmit(sys.ap_nodes[0], out.header_t, phy::preamble_time());
  }
  for (std::size_t a = 1; a < sys.params.n_aps; ++a) {
    // A crashed slave neither listens nor reports; with the lead down
    // there is no header on the air to measure.
    const bool slave_down = sys.fault && sys.fault->ap_down(a);
    if (!lead_down && !slave_down) {
      const cvec buf = sys.medium.receive(sys.ap_nodes[a],
                                          out.header_t - kRxMargin / fs,
                                          kRxMargin + phy::kPreambleLen + 180);
      auto pm = sys.rx.measure_preamble(buf);
      if (pm && sys.fault && sys.fault->sync_header_lost(a)) pm.reset();
      if (pm && sys.fault) {
        // Corruption window: the header decodes, but the channel
        // observation carries an extra phase error.
        const double err = sys.fault->sync_header_phase_error(a);
        if (err != 0.0) pm->chan.rotate(err);
      }
      if (pm && sys.slave_sync[a - 1].has_reference()) {
        out.per_slave[a - 1] = sys.slave_sync[a - 1].on_sync_header(
            pm->chan, pm->cfo_hz, out.header_t);
      }
    }
    if (sys.resilience) {
      const bool ok = out.per_slave[a - 1].has_value();
      sys.resilience->on_sync_result(
          a, ok, ok ? sys.slave_sync[a - 1].last_residual_rad() : 0.0,
          ok ? sys.slave_sync[a - 1].last_cfo_innovation_hz() : 0.0,
          out.header_t);
    }
  }
  out.tx_start = out.header_t + static_cast<double>(phy::kPreambleLen) / fs +
                 sys.params.turnaround_s;
  return out;
}

void apply_slave_correction(const SystemState& sys, cvec& wave,
                            const core::SlaveCorrection& corr, double tx_start,
                            double header_t) {
  const double fs = sys.params.phy.sample_rate_hz;
  const double base_dt = tx_start - header_t;
  for (std::size_t n = 0; n < wave.size(); ++n) {
    wave[n] *= corr.at(base_dt + static_cast<double>(n) / fs);
  }
}

double mean_condition_number(const core::ChannelMatrixSet& h,
                             std::size_t max_samples) {
  if (h.n_subcarriers() == 0 || max_samples == 0) return 0.0;
  const std::size_t stride =
      std::max<std::size_t>(1, h.n_subcarriers() / max_samples);
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t k = 0; k < h.n_subcarriers(); k += stride) {
    const CMatrix& a = h.at(k);
    if (a.rows() < a.cols()) {
      // Wide matrix (fewer clients than APs): condition over the nonzero
      // singular values, via the small Gram matrix A A^H.
      sum += std::sqrt(condition_number(a * a.hermitian()));
    } else {
      sum += condition_number(a);
    }
    ++n;
  }
  return sum / static_cast<double>(n);
}

void MeasurementStage::run(StageContext& stage_ctx) {
  FrameContext& ctx = stage_ctx.frame;
  SystemState& sys = ctx.sys;
  pump_faults(sys);
  sys.medium.clear_transmissions();
  sys.medium.evolve_links_to(sys.now);
  const double fs = sys.params.phy.sample_rate_hz;
  ctx.sched = core::MeasurementSchedule{sys.params.n_aps,
                                        sys.params.measurement_rounds};
  const core::MeasurementSchedule& sched = *ctx.sched;
  const double frame_t = sys.now;

  // With the lead crashed there is no reference transmitter: the epoch is
  // lost, but simulated time still advances so the world keeps moving.
  if (sys.fault && sys.fault->ap_down(0)) {
    if (sys.metrics) sys.metrics->stage(kStageMeasure).add_detect_failure();
    sys.now = frame_t + static_cast<double>(sched.frame_len() + 400) / fs;
    return;
  }

  sys.medium.transmit(sys.ap_nodes[0], frame_t, sched.ap_waveform(0));
  for (std::size_t a = 1; a < sys.params.n_aps; ++a) {
    if (sys.fault && sys.fault->ap_down(a)) continue;  // crashed: silent
    const double jitter = sys.rng.gaussian(sys.params.trigger_jitter_s);
    sys.medium.transmit(sys.ap_nodes[a],
                        frame_t + sys.ap_tx_offset_s[a] + jitter,
                        sched.ap_waveform(a));
  }

  // Slaves capture their reference channel from the lead's sync header and
  // extrapolate it to the snapshot time the clients use (the center of the
  // interleaved block) with their CFO estimate. The AP-AP link is strong,
  // so the per-header CFO estimate already makes this extrapolation error
  // negligible, and the long-term average tightens it further.
  const double ref_dt = static_cast<double>(sched.reference_offset()) / fs;
  for (std::size_t a = 1; a < sys.params.n_aps; ++a) {
    if (sys.fault && sys.fault->ap_down(a)) continue;  // crashed: no capture
    const cvec buf =
        sys.medium.receive(sys.ap_nodes[a], frame_t - kRxMargin / fs,
                           kRxMargin + sched.frame_len() + 200);
    const auto pm = sys.rx.measure_preamble(buf);
    if (!pm) {
      if (sys.metrics) sys.metrics->stage(kStageMeasure).add_detect_failure();
      return;  // measurement_ok stays false; time does not advance
    }
    sys.slave_sync[a - 1].observe_cfo(pm->cfo_hz);
    // The slave overhears the whole interleaved frame; processing the
    // lead's symbols like a client yields a far finer CFO estimate (the
    // LS fit spans the whole block) than a single preamble correlation —
    // this is what bounds the within-packet phase drift (Section 5.3).
    if (const auto own =
            process_measurement_frame(buf, sched, sys.params.phy, sys.ws)) {
      sys.slave_sync[a - 1].set_cfo_estimate(own->per_ap[0].cfo_hz);
    }
    phy::ChannelEstimate ref = pm->chan;
    ref.rotate(kTwoPi * sys.slave_sync[a - 1].cfo_estimate_hz() * ref_dt);
    sys.slave_sync[a - 1].set_reference(ref, frame_t + ref_dt);
  }

  // Clients measure all AP channels, referenced to the sync header.
  bool all_ok = true;
  core::ChannelMatrixSet h(sys.params.n_clients, sys.params.n_aps);
  for (std::size_t c = 0; c < sys.params.n_clients; ++c) {
    const cvec buf =
        sys.medium.receive(sys.client_nodes[c], frame_t - kRxMargin / fs,
                           kRxMargin + sched.frame_len() + 200);
    const auto cm =
        process_measurement_frame(buf, sched, sys.params.phy, sys.ws);
    if (!cm) {
      if (sys.metrics) sys.metrics->stage(kStageMeasure).add_detect_failure();
      all_ok = false;
      break;
    }
    const auto& used = core::used_subcarriers();
    for (std::size_t a = 0; a < sys.params.n_aps; ++a) {
      for (std::size_t k = 0; k < used.size(); ++k) {
        h.at(k)(c, a) = cm->per_ap[a].channel.at(used[k]);
      }
    }
  }
  sys.now = frame_t + static_cast<double>(sched.frame_len() + 400) / fs;
  if (!all_ok) return;
  if (sys.fault && sys.fault->stale_channel() && sys.h.n_subcarriers() > 0) {
    // Stale-channel window: the epoch physically ran (time advanced, RNG
    // streams evolved) but the distribution system re-delivers the
    // previous snapshot — the precoder ages while the world moves on.
    ctx.h_measured = sys.h;
  } else {
    ctx.h_measured = std::move(h);
  }
  ctx.measurement_ok = true;
}

void PrecodeStage::run(StageContext& stage_ctx) {
  FrameContext& ctx = stage_ctx.frame;
  SystemState& sys = ctx.sys;
  if (!ctx.measurement_ok || !ctx.h_measured) return;
  sys.h = std::move(*ctx.h_measured);
  ctx.h_measured.reset();
  if (sys.resilience) {
    // This measurement epoch re-anchored every participating reference:
    // probation APs rejoin here with trustworthy state.
    sys.resilience->on_remeasure(sys.now);
  }
  if (sys.resilience && sys.resilience->any_quarantined()) {
    // Shrink the joint transmission to the surviving set: derive weights
    // from the reduced H so quarantined APs carry exactly zero weight.
    sys.precoder = core::Precoder::build_masked(
        sys.h, sys.params.precoder, sys.resilience->active(), sys.ws,
        sys.obs);
  } else {
    // Rebuild in place: after the first epoch the weight matrices and the
    // packed SoA view reuse their capacity, keeping the per-coherence
    // rebuild allocation-free (values bitwise-identical to a fresh build).
    if (!sys.precoder) sys.precoder.emplace();
    if (!sys.precoder->rebuild_kind(sys.h, sys.params.precoder, sys.ws.pinv,
                                    sys.obs)) {
      sys.precoder.reset();
    }
  }
  if (sys.metrics && sys.precoder) {
    sys.metrics->stage(kStagePrecode).add_condition(
        mean_condition_number(sys.h));
  }
}

void SynthesisStage::run(StageContext& stage_ctx) {
  FrameContext& ctx = stage_ctx.frame;
  SystemState& sys = ctx.sys;
  const std::vector<std::vector<cvec>>& streams = *ctx.streams;
  const std::size_t n_streams = streams.size();
  const std::size_t n_sym = streams.empty() ? 0 : streams[0].size();
  const auto& used = core::used_subcarriers();

  sys.medium.clear_transmissions();
  sys.medium.evolve_links_to(sys.now);
  ctx.sync = run_sync_header(sys);

  ctx.result.precoder_scale = sys.precoder ? sys.precoder->scale() : 0.0;

  const auto weight_at = [&](std::size_t k) -> const CMatrix& {
    return ctx.weights_override ? (*ctx.weights_override)[k]
                                : sys.precoder->weights(k);
  };

  // Build each AP's waveform: jointly precoded LTF (double guard + 2
  // symbols) followed by the precoded stream symbols.
  ctx.wave_len = phy::kLtfLen + n_sym * phy::kSymbolLen;
  ctx.ap_waves.assign(sys.params.n_aps, std::nullopt);
  ctx.ap_tx_time.assign(sys.params.n_aps, 0.0);
  // Spectrum / LTF-time scratch from the per-trial workspace; the waveform
  // itself must be a fresh vector (it is moved onto the medium).
  auto& spec = sys.ws.spec;
  auto& ltf_time = sys.ws.sym_time;
  // Fast path: the ZF precoder exposes packed per-(antenna, stream)
  // weight rows, so the per-bin stream sums run through the dispatched
  // subcarrier-batched kernels over the two contiguous used-bin runs.
  // The per-bin accumulation order over j is unchanged (j is the outer
  // loop, each bin's partial sum lives in spec), so the spectrum is
  // bitwise identical to the scalar per-bin loop below, which remains
  // the reference for weight overrides (transmit-diversity MRT).
  const bool packed = !ctx.weights_override && sys.precoder.has_value() &&
                      n_streams <= kMaxFusedStreams;
  const auto& runs = used_bin_runs();
  const simd::Kernels& kern = simd::active_kernels();
  for (std::size_t a = 0; a < sys.params.n_aps; ++a) {
    // Precoded LTF spectrum for this AP: sum over streams of W(a, j) * L.
    spec.assign(phy::kNfft, cplx{});
    const cvec& l = phy::ltf_freq();
    if (packed) {
      double* const spec_d = reinterpret_cast<double*>(spec.data());
      const double* const l_d = reinterpret_cast<const double*>(l.data());
      for (std::size_t j = 0; j < n_streams; ++j) {
        const double* const wrow = reinterpret_cast<const double*>(
            sys.precoder->weight_row(a, j).data());
        for (const UsedRun& r : runs) {
          kern.cacc(spec_d + 2 * r.bin0, wrow + 2 * r.k0, r.len);
        }
      }
      for (const UsedRun& r : runs) {
        kern.cmul_ew(spec_d + 2 * r.bin0, spec_d + 2 * r.bin0,
                     l_d + 2 * r.bin0, r.len);
      }
    } else {
      for (std::size_t k = 0; k < used.size(); ++k) {
        const std::size_t bin = phy::bin_of(used[k]);
        cplx w_sum{};
        for (std::size_t j = 0; j < n_streams; ++j) w_sum += weight_at(k)(a, j);
        spec[bin] = w_sum * l[bin];
      }
    }
    ltf_time.assign(spec.begin(), spec.end());
    sys.ws.fft_plan(phy::kNfft).inverse(ltf_time);
    cvec wave(ctx.wave_len);
    for (std::size_t i = 0; i < 32; ++i) {
      wave[i] = ltf_time[phy::kNfft - 32 + i];
    }
    std::copy(ltf_time.begin(), ltf_time.end(), wave.begin() + 32);
    std::copy(ltf_time.begin(), ltf_time.end(), wave.begin() + 32 + phy::kNfft);

    for (std::size_t s = 0; s < n_sym; ++s) {
      spec.assign(phy::kNfft, cplx{});
      if (packed) {
        double* const spec_d = reinterpret_cast<double*>(spec.data());
        for (const UsedRun& r : runs) {
          const double* wrows[kMaxFusedStreams];
          const double* xrows[kMaxFusedStreams];
          for (std::size_t j = 0; j < n_streams; ++j) {
            wrows[j] = reinterpret_cast<const double*>(
                           sys.precoder->weight_row(a, j).data()) +
                       2 * r.k0;
            xrows[j] = reinterpret_cast<const double*>(streams[j][s].data()) +
                       2 * r.bin0;
          }
          kern.cmacn(spec_d + 2 * r.bin0, wrows, xrows, n_streams, r.len);
        }
      } else {
        for (std::size_t k = 0; k < used.size(); ++k) {
          const std::size_t bin = phy::bin_of(used[k]);
          cplx acc{};
          for (std::size_t j = 0; j < n_streams; ++j) {
            acc += weight_at(k)(a, j) * streams[j][s][bin];
          }
          spec[bin] = acc;
        }
      }
      phy::ofdm_modulate_into(
          spec,
          std::span<cplx>(wave).subspan(phy::kLtfLen + s * phy::kSymbolLen,
                                        phy::kSymbolLen));
    }

    if (a == 0) {
      if (sys.fault && sys.fault->ap_down(0)) continue;  // lead crashed
      ctx.ap_tx_time[0] = ctx.sync.tx_start;
      ctx.ap_waves[0] = std::move(wave);
      continue;
    }
    const auto& corr = ctx.sync.per_slave[a - 1];
    if (!corr) continue;  // slave failed to sync: it sits this one out
    if (sys.resilience && sys.resilience->quarantined(a)) {
      continue;  // quarantined: excluded from the joint set until readmitted
    }
    ++ctx.result.slaves_synced;
    if (!sys.params.disable_slave_correction) {
      apply_slave_correction(sys, wave, *corr, ctx.sync.tx_start,
                             ctx.sync.header_t);
    }
    const double jitter = sys.rng.gaussian(sys.params.trigger_jitter_s);
    ctx.ap_tx_time[a] = ctx.sync.tx_start + sys.ap_tx_offset_s[a] + jitter;
    ctx.ap_waves[a] = std::move(wave);
  }
}

void PropagationStage::run(StageContext& stage_ctx) {
  FrameContext& ctx = stage_ctx.frame;
  SystemState& sys = ctx.sys;
  const double fs = sys.params.phy.sample_rate_hz;
  for (std::size_t a = 0; a < sys.params.n_aps; ++a) {
    if (!ctx.ap_waves[a]) continue;
    sys.medium.transmit(sys.ap_nodes[a], ctx.ap_tx_time[a],
                        std::move(*ctx.ap_waves[a]));
    ctx.ap_waves[a].reset();
  }
  const std::size_t total =
      kRxMargin + phy::kPreambleLen +
      static_cast<std::size_t>(sys.params.turnaround_s * fs) + ctx.wave_len +
      300;
  ctx.client_bufs.resize(sys.params.n_clients);
  for (std::size_t c = 0; c < sys.params.n_clients; ++c) {
    ctx.client_bufs[c] = sys.medium.receive(
        sys.client_nodes[c], ctx.sync.header_t - kRxMargin / fs, total);
  }
  sys.now = ctx.sync.tx_start + static_cast<double>(ctx.wave_len + 400) / fs;
}

void DecodeStage::run(StageContext& stage_ctx) {
  FrameContext& ctx = stage_ctx.frame;
  SystemState& sys = ctx.sys;
  const double fs = sys.params.phy.sample_rate_hz;
  ctx.result.per_client.resize(sys.params.n_clients);
  bool all_ok = true;
  for (std::size_t c = 0; c < sys.params.n_clients; ++c) {
    const cvec& buf = ctx.client_bufs[c];
    const auto pm = sys.rx.measure_preamble(buf);
    if (!pm) {
      ctx.result.per_client[c].fail_reason = "sync header not detected";
      all_ok = false;
      if (sys.metrics) sys.metrics->stage(kStageDecode).add_detect_failure();
      if (sys.obs) sys.obs->count("decode/preamble_miss");
      continue;
    }
    const std::size_t header_pos =
        pm->ltf_start >= 192 ? pm->ltf_start - 192 : pm->stf_start;
    const std::size_t payload_start =
        header_pos + phy::kPreambleLen +
        static_cast<std::size_t>(sys.params.turnaround_s * fs);
    ctx.result.per_client[c] = sys.rx.receive_payload(buf, payload_start,
                                                      pm->cfo_hz);
    const phy::RxResult& r = ctx.result.per_client[c];
    if (!r.ok) all_ok = false;
    if (sys.metrics && !r.ok) {
      sys.metrics->stage(kStageDecode).add_detect_failure();
    }
    if (sys.obs) {
      sys.obs->count(r.ok ? "decode/frames_ok" : "decode/frames_bad");
      if (r.header_ok) {
        sys.obs->observe("decode/evm_snr_db", obs::kDbBounds, r.evm_snr_db);
      }
    }
  }
  if (sys.resilience && all_ok && ctx.result.per_client.size() > 0) {
    // First fully-delivered joint transmission after a quarantine stamps
    // the recovery latency (idempotent until the next quarantine).
    sys.resilience->on_recovered(sys.now);
  }
}

void FramePipeline::run_stage(Stage& stage, FrameContext& ctx) {
  StageContext sctx(ctx);
  StageMetricsSet* m = ctx.sys.metrics;
  if (!m) {
    stage.run(sctx);
    return;
  }
  const ScopedStageTimer timer(m, stage.name(), ctx.sys.obs,
                               ctx.sys.frame_seq);
  stage.run(sctx);
}

bool FramePipeline::run_measurement(FrameContext& ctx) {
  ++ctx.sys.frame_seq;
  run_stage(measure_, ctx);
  if (!ctx.measurement_ok) return false;
  run_stage(precode_, ctx);
  return ctx.sys.precoder.has_value();
}

core::JointResult FramePipeline::run_joint(FrameContext& ctx) {
  SystemState& sys = ctx.sys;
  ++sys.frame_seq;
  if (!sys.precoder && ctx.weights_override == nullptr) {
    throw std::logic_error("run_joint: no precoder");
  }
  if (ctx.streams == nullptr) {
    throw std::logic_error("run_joint: no streams");
  }
  const std::size_t n_sym =
      ctx.streams->empty() ? 0 : (*ctx.streams)[0].size();
  for (const auto& s : *ctx.streams) {
    if (s.size() != n_sym) {
      throw std::invalid_argument("run_joint: ragged streams");
    }
  }
  run_stage(synthesis_, ctx);
  run_stage(propagate_, ctx);
  run_stage(decode_, ctx);
  return std::move(ctx.result);
}

}  // namespace jmb::engine
