#include "engine/metrics.h"

namespace jmb::engine {

void StageMetrics::merge(const StageMetrics& other) {
  wall_s += other.wall_s;
  frames += other.frames;
  detect_failures += other.detect_failures;
  cond_sum += other.cond_sum;
  cond_count += other.cond_count;
}

StageMetrics& StageMetricsSet::stage(std::string_view name) {
  for (auto& [n, m] : stages_) {
    if (n == name) return m;
  }
  stages_.emplace_back(std::string(name), StageMetrics{});
  return stages_.back().second;
}

void StageMetricsSet::merge(const StageMetricsSet& other) {
  for (const auto& [name, m] : other.stages_) stage(name).merge(m);
}

ScopedStageTimer::~ScopedStageTimer() {
  if (!set_) return;
  const auto dt = std::chrono::steady_clock::now() - t0_;
  StageMetrics& m = set_->stage(name_);
  m.wall_s += std::chrono::duration<double>(dt).count();
  ++m.frames;
}

void print_stage_metrics(const StageMetricsSet& metrics, std::FILE* out) {
  if (metrics.empty()) return;
  std::fprintf(out, "%-12s %-10s %-8s %-12s %-10s\n", "stage", "wall (s)",
               "frames", "detect-fail", "mean-cond");
  for (const auto& [name, m] : metrics.stages()) {
    std::fprintf(out, "%-12s %-10.3f %-8zu %-12zu ", name.c_str(), m.wall_s,
                 m.frames, m.detect_failures);
    if (m.cond_count > 0) {
      std::fprintf(out, "%-10.2f\n", m.mean_condition());
    } else {
      std::fprintf(out, "%-10s\n", "-");
    }
  }
}

}  // namespace jmb::engine
