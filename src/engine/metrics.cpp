#include "engine/metrics.h"

#include "obs/bounds.h"
#include "obs/flight/recorder.h"

namespace jmb::engine {

namespace {

std::string stage_key(std::string_view stage, const char* leaf) {
  std::string key = "stage/";
  key += stage;
  key += '/';
  key += leaf;
  return key;
}

double counter_value(const obs::MetricRegistry& reg, const std::string& name) {
  const auto* e = reg.find(name);
  if (!e) return 0.0;
  const auto* c = std::get_if<obs::Counter>(&e->metric);
  return c ? c->value() : 0.0;
}

}  // namespace

StageMetricsSet::StageMetricsSet()
    : reg_(std::make_unique<obs::MetricRegistry>()) {}

StageMetrics& StageMetricsSet::stage(std::string_view name) {
  for (auto& [n, m] : cache_) {
    if (n == name) return m;
  }
  using obs::MetricClass;
  StageMetrics m;
  m.wall_s_ = &reg_->counter(stage_key(name, "wall_s"), MetricClass::kTiming);
  m.frame_us_ = &reg_->histogram(stage_key(name, "frame_us"),
                                 obs::kTimeUsBounds, MetricClass::kTiming);
  m.frames_ = &reg_->counter(stage_key(name, "frames"));
  m.detect_failures_ = &reg_->counter(stage_key(name, "detect_failures"));
  m.cond_sum_ = &reg_->counter(stage_key(name, "cond_sum"));
  m.cond_count_ = &reg_->counter(stage_key(name, "cond_count"));
  cache_.emplace_back(std::string(name), m);
  return cache_.back().second;
}

std::vector<std::string_view> StageMetricsSet::stage_names() const {
  std::vector<std::string_view> names;
  names.reserve(cache_.size());
  for (const auto& entry : cache_) names.push_back(entry.first);
  return names;
}

StageSnapshot StageMetricsSet::snapshot(std::string_view name) const {
  StageSnapshot s;
  s.wall_s = counter_value(*reg_, stage_key(name, "wall_s"));
  s.frames = static_cast<std::uint64_t>(
      counter_value(*reg_, stage_key(name, "frames")));
  s.detect_failures = static_cast<std::uint64_t>(
      counter_value(*reg_, stage_key(name, "detect_failures")));
  s.cond_sum = counter_value(*reg_, stage_key(name, "cond_sum"));
  s.cond_count = static_cast<std::uint64_t>(
      counter_value(*reg_, stage_key(name, "cond_count")));
  if (const auto* e = reg_->find(stage_key(name, "frame_us"))) {
    s.frame_us = std::get_if<obs::Histogram>(&e->metric);
  }
  return s;
}

void StageMetricsSet::merge(const StageMetricsSet& other) {
  reg_->merge(*other.reg_);
  // Re-resolve handles for any stage first seen in `other` so
  // stage_names() covers the union.
  for (const auto& entry : other.cache_) (void)stage(entry.first);
}

ScopedStageTimer::ScopedStageTimer(StageMetricsSet* set, std::string_view name,
                                   const obs::ObsSink* sink,
                                   std::uint64_t frame, std::uint64_t flow)
    : set_(set),
      name_(name),
      ring_(obs::flight::FlightRecorder::instance().local_ring()),
      flow_(flow),
      t0_(std::chrono::steady_clock::now()) {
  if (ring_) {
    name_id_ = obs::flight::FlightRecorder::instance().intern(name);
    if (flow_ == obs::flight::kNoFlow && sink != nullptr) {
      // Batch identity: the trial is the "stream", the frame the item.
      flow_ = obs::flight::make_flow(sink->trial(), frame);
    }
    t0_ticks_ = obs::flight::now_ticks();
  }
}

ScopedStageTimer::~ScopedStageTimer() {
  const auto dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  if (set_) set_->stage(name_).add_frame_time(dt);
  if (ring_) {
    ring_->write(obs::flight::EventType::kSpan, name_id_, t0_ticks_, flow_,
                 obs::flight::now_ticks() - t0_ticks_);
  }
}

void print_stage_metrics(const StageMetricsSet& metrics, std::FILE* out) {
  if (metrics.empty()) return;
  std::fprintf(out, "%-12s %-10s %-8s %-12s %-10s %-27s\n", "stage",
               "wall (s)", "frames", "detect-fail", "mean-cond",
               "frame us p50/p90/p99");
  for (const std::string_view name : metrics.stage_names()) {
    const StageSnapshot s = metrics.snapshot(name);
    std::fprintf(out, "%-12.*s %-10.3f %-8llu %-12llu ",
                 static_cast<int>(name.size()), name.data(), s.wall_s,
                 static_cast<unsigned long long>(s.frames),
                 static_cast<unsigned long long>(s.detect_failures));
    if (s.cond_count > 0) {
      std::fprintf(out, "%-10.2f ", s.mean_condition());
    } else {
      std::fprintf(out, "%-10s ", "-");
    }
    if (s.frame_us && s.frame_us->count() > 0) {
      std::fprintf(out, "%.1f / %.1f / %.1f\n", s.frame_us->quantile(0.50),
                   s.frame_us->quantile(0.90), s.frame_us->quantile(0.99));
    } else {
      std::fprintf(out, "-\n");
    }
  }
}

}  // namespace jmb::engine
