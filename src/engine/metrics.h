// Per-stage instrumentation for the frame pipeline and the trial runner:
// each pipeline stage (measure, precode, synthesis, propagate, decode)
// accumulates wall time, frame counts, detection failures and precoder
// conditioning, and a shared reporter prints one table per run.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jmb::engine {

/// Canonical stage names. The pipeline uses them; benches that run the
/// closed-form link model reuse them for the analogous work so every
/// report reads the same way.
inline constexpr const char* kStageMeasure = "measure";
inline constexpr const char* kStagePrecode = "precode";
inline constexpr const char* kStageSynthesis = "synthesis";
inline constexpr const char* kStagePropagate = "propagate";
inline constexpr const char* kStageDecode = "decode";

/// Counters for one pipeline stage.
struct StageMetrics {
  double wall_s = 0.0;               ///< accumulated wall-clock time
  std::size_t frames = 0;            ///< stage invocations (frames processed)
  std::size_t detect_failures = 0;   ///< preamble misses / failed decodes
  double cond_sum = 0.0;             ///< precoder condition-number sum
  std::size_t cond_count = 0;

  void add_condition(double cond) {
    cond_sum += cond;
    ++cond_count;
  }
  [[nodiscard]] double mean_condition() const {
    return cond_count ? cond_sum / static_cast<double>(cond_count) : 0.0;
  }
  void merge(const StageMetrics& other);
};

/// Named stage metrics in first-seen order. One set per trial keeps the
/// hot path lock-free; the runner merges sets in trial order afterwards so
/// aggregates are independent of the thread count.
class StageMetricsSet {
 public:
  /// Get-or-create a stage's counters.
  [[nodiscard]] StageMetrics& stage(std::string_view name);

  [[nodiscard]] const std::vector<std::pair<std::string, StageMetrics>>&
  stages() const {
    return stages_;
  }
  [[nodiscard]] bool empty() const { return stages_.empty(); }

  void merge(const StageMetricsSet& other);

 private:
  std::vector<std::pair<std::string, StageMetrics>> stages_;
};

/// RAII timer: on destruction adds the elapsed wall time and one frame to
/// the named stage. Null `set` makes it a no-op.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageMetricsSet* set, std::string_view name)
      : set_(set), name_(name), t0_(std::chrono::steady_clock::now()) {}
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;
  ~ScopedStageTimer();

 private:
  StageMetricsSet* set_;
  std::string name_;
  std::chrono::steady_clock::time_point t0_;
};

/// Shared reporter: one aligned row per stage.
void print_stage_metrics(const StageMetricsSet& metrics, std::FILE* out = stdout);

}  // namespace jmb::engine
