// Per-stage instrumentation for the frame pipeline and the trial runner.
//
// Since PR 2 this is a *view* over obs::MetricRegistry — the single
// metrics spine. Each stage's counters live in the registry under
// "stage/<name>/..." and StageMetrics is a handle of resolved pointers,
// so the hot path stays a few pointer-chasing adds with no name lookup.
// Wall-clock values are registered as MetricClass::kTiming and therefore
// excluded from default exports; frame counts, detection failures and
// conditioning sums are kPhysics (deterministic given the seed).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/flight/recorder.h"
#include "obs/registry.h"
#include "obs/sink.h"

namespace jmb::engine {

/// Canonical stage names. The pipeline uses them; benches that run the
/// closed-form link model reuse them for the analogous work so every
/// report reads the same way.
inline constexpr const char* kStageMeasure = "measure";
inline constexpr const char* kStagePrecode = "precode";
inline constexpr const char* kStageSynthesis = "synthesis";
inline constexpr const char* kStagePropagate = "propagate";
inline constexpr const char* kStageDecode = "decode";

/// Handle over one stage's registry metrics. Obtained from
/// StageMetricsSet::stage(); stays valid for the set's lifetime.
class StageMetrics {
 public:
  /// One frame processed in `dt_s` seconds: bumps the frame counter and
  /// feeds the wall-time counter + per-frame latency histogram.
  void add_frame_time(double dt_s) {
    frames_->add(1.0);
    wall_s_->add(dt_s);
    frame_us_->observe(dt_s * 1e6);
  }
  /// A frame processed without timing (closed-form benches).
  void add_frame() { frames_->add(1.0); }
  void add_detect_failure() { detect_failures_->add(1.0); }
  void add_condition(double cond) {
    cond_sum_->add(cond);
    cond_count_->add(1.0);
  }

 private:
  friend class StageMetricsSet;
  obs::Counter* wall_s_ = nullptr;           // timing
  obs::Histogram* frame_us_ = nullptr;       // timing
  obs::Counter* frames_ = nullptr;           // physics
  obs::Counter* detect_failures_ = nullptr;  // physics
  obs::Counter* cond_sum_ = nullptr;         // physics
  obs::Counter* cond_count_ = nullptr;       // physics
};

/// Read-only copy of one stage's counters, for reports and tests.
struct StageSnapshot {
  double wall_s = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t detect_failures = 0;
  double cond_sum = 0.0;
  std::uint64_t cond_count = 0;
  const obs::Histogram* frame_us = nullptr;  ///< null if never timed

  [[nodiscard]] double mean_condition() const {
    return cond_count ? cond_sum / static_cast<double>(cond_count) : 0.0;
  }
};

/// Named stage metrics in first-seen order, backed by an owned
/// MetricRegistry that probe sinks share. One set per trial keeps the hot
/// path lock-free; the runner merges sets in trial order afterwards so
/// aggregates are independent of the thread count.
class StageMetricsSet {
 public:
  StageMetricsSet();
  StageMetricsSet(StageMetricsSet&&) = default;
  StageMetricsSet& operator=(StageMetricsSet&&) = default;
  StageMetricsSet(const StageMetricsSet&) = delete;
  StageMetricsSet& operator=(const StageMetricsSet&) = delete;

  /// Get-or-create a stage's counters (registers all of the stage's
  /// metrics on first touch so registry layout doesn't depend on which
  /// event happens first).
  [[nodiscard]] StageMetrics& stage(std::string_view name);

  /// Stage names in first-seen order.
  [[nodiscard]] std::vector<std::string_view> stage_names() const;
  [[nodiscard]] StageSnapshot snapshot(std::string_view name) const;
  [[nodiscard]] bool empty() const { return cache_.empty(); }

  /// The backing registry — probe sinks write here too, so merged sets
  /// aggregate probes along with stage counters.
  [[nodiscard]] obs::MetricRegistry& registry() { return *reg_; }
  [[nodiscard]] const obs::MetricRegistry& registry() const { return *reg_; }

  void merge(const StageMetricsSet& other);

 private:
  std::unique_ptr<obs::MetricRegistry> reg_;
  std::vector<std::pair<std::string, StageMetrics>> cache_;
};

/// RAII timer: on destruction adds the elapsed wall time and one frame to
/// the named stage, and — when the flight recorder is enabled — writes a
/// TSC-stamped span record to the calling thread's flight ring. The span
/// carries `flow` (an obs::flight::make_flow id) so one item's stage
/// chain reconstructs causally; when no explicit flow is given and a
/// sink is present, the batch identity (trial, frame) is used. Null
/// `set` still records the flight span. `name` is held by reference
/// (string_view), so pass the kStage* constants or another string that
/// outlives the timer; per-frame construction allocates nothing.
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(StageMetricsSet* set, std::string_view name,
                            const obs::ObsSink* sink = nullptr,
                            std::uint64_t frame = 0,
                            std::uint64_t flow = obs::flight::kNoFlow);
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;
  ~ScopedStageTimer();

 private:
  StageMetricsSet* set_;
  std::string_view name_;
  obs::flight::FlightRing* ring_;  ///< null when recording is disabled
  std::uint32_t name_id_ = 0;
  std::uint64_t flow_;
  std::uint64_t t0_ticks_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

/// Shared reporter: one aligned row per stage, with per-frame latency
/// percentiles. Defaults to stderr so bench stdout stays parseable data.
void print_stage_metrics(const StageMetricsSet& metrics,
                         std::FILE* out = stderr);

}  // namespace jmb::engine
