#include "engine/system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "phy/sync.h"

namespace jmb::core {

using engine::kRxMargin;

double JmbSystem::gain_for_snr_db(double snr_db, double noise_var) {
  return noise_var * from_db(snr_db) / kOfdmTimePower;
}

JmbSystem::JmbSystem(SystemParams params,
                     const std::vector<std::vector<double>>& link_gains)
    : state_(params) {
  if (link_gains.size() != params.n_clients) {
    throw std::invalid_argument("JmbSystem: link_gains rows != n_clients");
  }
  state_.client_noise_var = params.noise_var;
  // Register APs, then clients.
  for (std::size_t a = 0; a < params.n_aps; ++a) {
    state_.ap_nodes.push_back(state_.medium.add_node(
        {.ppm = state_.rng.uniform(-params.ap_ppm_range, params.ap_ppm_range),
         .carrier_hz = params.phy.carrier_hz,
         .sample_rate_hz = params.phy.sample_rate_hz,
         .phase_noise_linewidth_hz = params.phase_noise_linewidth_hz,
         .seed = state_.rng.next_u64()},
        params.noise_var));
    // Deterministic per-AP transmit timing skew: the lead anchors t = 0.
    state_.ap_tx_offset_s.push_back(
        a == 0 ? 0.0
               : state_.rng.uniform(-params.fixed_timing_offset_s,
                                    params.fixed_timing_offset_s));
  }
  for (std::size_t c = 0; c < params.n_clients; ++c) {
    state_.client_nodes.push_back(state_.medium.add_node(
        {.ppm = state_.rng.uniform(-params.client_ppm_range,
                                   params.client_ppm_range),
         .carrier_hz = params.phy.carrier_hz,
         .sample_rate_hz = params.phy.sample_rate_hz,
         .phase_noise_linewidth_hz = params.phase_noise_linewidth_hz,
         .seed = state_.rng.next_u64()},
        params.noise_var));
  }
  // AP -> client links.
  for (std::size_t c = 0; c < params.n_clients; ++c) {
    if (link_gains[c].size() != params.n_aps) {
      throw std::invalid_argument("JmbSystem: link_gains cols != n_aps");
    }
    for (std::size_t a = 0; a < params.n_aps; ++a) {
      state_.medium.set_link(
          state_.ap_nodes[a], state_.client_nodes[c],
          {.gain = link_gains[c][a],
           .n_taps = params.n_taps,
           .tap_decay = params.tap_decay,
           .rice_k = params.rice_k,
           .delay_s = state_.rng.uniform(params.prop_delay_min_s,
                                         params.prop_delay_max_s),
           .coherence_time_s = params.coherence_time_s,
           .sample_rate_hz = params.phy.sample_rate_hz,
           .seed = state_.rng.next_u64()});
    }
  }
  // Lead -> slave links (strong: APs share the ceiling ledges). Rician
  // with a hefty LOS term keeps the sync-header SNR predictably high.
  const double ap_gain = gain_for_snr_db(params.ap_ap_snr_db, params.noise_var);
  for (std::size_t a = 1; a < params.n_aps; ++a) {
    state_.medium.set_link(state_.ap_nodes[0], state_.ap_nodes[a],
                           {.gain = ap_gain,
                            .n_taps = 2,
                            .tap_decay = 0.2,
                            .rice_k = 10.0,
                            .delay_s = state_.rng.uniform(5e-9, 40e-9),
                            .coherence_time_s = params.coherence_time_s,
                            .sample_rate_hz = params.phy.sample_rate_hz,
                            .seed = state_.rng.next_u64()});
    state_.slave_sync.emplace_back(
        PhaseSyncParams{params.phy.sample_rate_hz, 0.05});
  }
}

void JmbSystem::advance_time(double dt_seconds) {
  if (dt_seconds < 0) throw std::invalid_argument("advance_time: negative dt");
  state_.now += dt_seconds;
}

double JmbSystem::predicted_beamforming_snr_db() const {
  if (!state_.precoder) {
    throw std::logic_error("predicted_beamforming_snr_db: not ready");
  }
  // Subcarrier symbols of unit power arrive with amplitude scale; the
  // client-side per-subcarrier noise is flat. Frequency-domain noise after
  // an unnormalized 64-point FFT is 64x the per-sample noise power.
  return to_db(state_.precoder->predicted_snr(state_.client_noise_var * 64.0));
}

double JmbSystem::calibrate_to_effective_snr(double target_db) {
  const double delta_db = predicted_beamforming_snr_db() - target_db;
  state_.client_noise_var *= from_db(delta_db);
  for (chan::NodeId id : state_.client_nodes) {
    state_.medium.set_noise_var(id, state_.client_noise_var);
  }
  return delta_db;
}

bool JmbSystem::run_measurement() {
  engine::FrameContext ctx(state_);
  return pipeline_.run_measurement(ctx);
}

JointResult JmbSystem::transmit_joint(const std::vector<phy::ByteVec>& psdus,
                                      const phy::Mcs& mcs) {
  if (!state_.precoder) {
    throw std::logic_error("transmit_joint: run_measurement first");
  }
  if (psdus.size() != state_.params.n_clients) {
    throw std::invalid_argument("transmit_joint: need one PSDU per client");
  }
  std::vector<std::vector<cvec>> streams;
  streams.reserve(psdus.size());
  std::size_t n_sym = 0;
  for (const auto& psdu : psdus) {
    streams.push_back(state_.tx.build_freq_symbols(psdu, mcs));
    n_sym = std::max(n_sym, streams.back().size());
  }
  for (auto& s : streams) {
    // Equalize stream lengths with silent symbols (pilot-only padding
    // would also work; zero is simplest and decodes identically since the
    // SIGNAL field bounds the payload).
    while (s.size() < n_sym) s.emplace_back(phy::kNfft, cplx{});
  }
  engine::FrameContext ctx(state_);
  ctx.streams = &streams;
  return pipeline_.run_joint(ctx);
}

phy::RxResult JmbSystem::transmit_diversity(std::size_t client,
                                            const phy::ByteVec& psdu,
                                            const phy::Mcs& mcs) {
  if (client >= state_.params.n_clients) {
    throw std::invalid_argument("transmit_diversity: bad client");
  }
  if (state_.h.n_subcarriers() == 0) {
    throw std::logic_error("transmit_diversity: run_measurement first");
  }
  // MRT weights from the measured row of H.
  const auto& used = used_subcarriers();
  std::vector<cvec> row(used.size());
  for (std::size_t k = 0; k < used.size(); ++k) {
    row[k] = state_.h.at(k).row(client);
  }
  const MrtPrecoder mrt = MrtPrecoder::build(row);

  std::vector<CMatrix> weights(used.size(), CMatrix(state_.params.n_aps, 1));
  for (std::size_t k = 0; k < used.size(); ++k) {
    weights[k].set_col(0, mrt.weights(k));
  }
  std::vector<std::vector<cvec>> streams{
      state_.tx.build_freq_symbols(psdu, mcs)};
  engine::FrameContext ctx(state_);
  ctx.streams = &streams;
  ctx.weights_override = &weights;
  JointResult jr = pipeline_.run_joint(ctx);
  return jr.per_client[client];
}

double JmbSystem::measure_inr(std::size_t nulled_client) {
  if (!state_.precoder) {
    throw std::logic_error("measure_inr: run_measurement first");
  }
  if (nulled_client >= state_.params.n_clients) {
    throw std::invalid_argument("measure_inr: bad client");
  }
  // Random unit-power QPSK payloads on every stream except the nulled one.
  constexpr std::size_t kProbeSymbols = 24;
  std::vector<std::vector<cvec>> streams(state_.params.n_clients);
  for (std::size_t j = 0; j < state_.params.n_clients; ++j) {
    for (std::size_t s = 0; s < kProbeSymbols; ++s) {
      if (j == nulled_client) {
        streams[j].emplace_back(phy::kNfft, cplx{});
        continue;
      }
      cvec data(phy::kNumDataCarriers);
      const double amp = 1.0 / std::sqrt(2.0);
      for (cplx& v : data) {
        v = cplx{state_.rng.bernoulli() ? amp : -amp,
                 state_.rng.bernoulli() ? amp : -amp};
      }
      streams[j].push_back(phy::map_subcarriers(data, s));
    }
  }
  const double fs = state_.params.phy.sample_rate_hz;
  const double header_t = state_.now;
  engine::FrameContext ctx(state_);
  ctx.streams = &streams;
  const JointResult jr = pipeline_.run_joint(ctx);
  (void)jr;

  // Measure power at the nulled client strictly inside the symbol portion
  // of the joint waveform (skip the LTF which is also nulled, but avoid
  // edge transients).
  const double tx_start = header_t +
                          static_cast<double>(phy::kPreambleLen) / fs +
                          state_.params.turnaround_s;
  const double probe_at =
      tx_start + static_cast<double>(phy::kLtfLen + 80) / fs;
  const std::size_t n = (kProbeSymbols - 2) * phy::kSymbolLen;
  // NOTE: the pipeline cleared and re-scheduled transmissions; they are
  // still registered with the medium, so re-rendering this window is valid.
  const cvec heard =
      state_.medium.receive(state_.client_nodes[nulled_client], probe_at, n);
  const double p = mean_power(heard);
  return to_db(std::max(p, 1e-12) / state_.client_noise_var);
}

rvec JmbSystem::measure_alignment_series(std::size_t n_rounds, double gap_s) {
  if (state_.params.n_aps < 2 || state_.params.n_clients < 1) {
    throw std::logic_error(
        "measure_alignment_series: need >= 2 APs and a client");
  }
  if (!state_.slave_sync[0].has_reference()) {
    throw std::logic_error("measure_alignment_series: run_measurement first");
  }
  const double fs = state_.params.phy.sample_rate_hz;
  const cvec sym = phy::ofdm_modulate(phy::ltf_freq());  // CP + LTF
  constexpr std::size_t kPairs = 2;

  rvec deviations;
  std::optional<double> reference_delta;
  for (std::size_t round = 0; round < n_rounds; ++round) {
    state_.medium.clear_transmissions();
    state_.medium.evolve_links_to(state_.now);
    const engine::SyncOutcome sync = engine::run_sync_header(state_);
    if (!sync.per_slave[0]) {
      advance_time(gap_s);
      continue;
    }
    // Alternating symbols: lead at even slots, slave at odd slots.
    cvec lead_wave, slave_wave;
    for (std::size_t p = 0; p < kPairs; ++p) {
      lead_wave.insert(lead_wave.end(), sym.begin(), sym.end());
      lead_wave.insert(lead_wave.end(), phy::kSymbolLen, cplx{});
      slave_wave.insert(slave_wave.end(), phy::kSymbolLen, cplx{});
      slave_wave.insert(slave_wave.end(), sym.begin(), sym.end());
    }
    engine::apply_slave_correction(state_, slave_wave, *sync.per_slave[0],
                                   sync.tx_start, sync.header_t);
    state_.medium.transmit(state_.ap_nodes[0], sync.tx_start, lead_wave);
    const double jitter = state_.rng.gaussian(state_.params.trigger_jitter_s);
    state_.medium.transmit(state_.ap_nodes[1],
                           sync.tx_start + state_.ap_tx_offset_s[1] + jitter,
                           slave_wave);

    // Client: estimate both channels per pair and form the relative phase.
    const std::size_t total =
        kRxMargin + phy::kPreambleLen +
        static_cast<std::size_t>(state_.params.turnaround_s * fs) +
        lead_wave.size() + 200;
    const cvec buf = state_.medium.receive(state_.client_nodes[0],
                                           sync.header_t - kRxMargin / fs,
                                           total);
    const auto pm = state_.rx.measure_preamble(buf);
    if (!pm) {
      state_.now = sync.tx_start + static_cast<double>(lead_wave.size()) / fs;
      advance_time(gap_s);
      continue;
    }
    const std::size_t header_pos =
        pm->ltf_start >= 192 ? pm->ltf_start - 192 : pm->stf_start;
    const std::size_t wave_at =
        header_pos + phy::kPreambleLen +
        static_cast<std::size_t>(state_.params.turnaround_s * fs);
    // Workspace-backed scratch: full-buffer CFO correction plus the two
    // per-pair FFT windows (measure_preamble is finished with these).
    cvec& corrected = state_.ws.corrected;
    corrected.resize(buf.size());
    phy::correct_cfo_into(buf, pm->cfo_hz, fs, 0.0, corrected);

    cplx delta_acc{};
    for (std::size_t p = 0; p < kPairs; ++p) {
      const std::size_t lead_at =
          wave_at + 2 * p * phy::kSymbolLen + phy::kCpLen;
      const std::size_t slave_at = lead_at + phy::kSymbolLen;
      if (corrected.size() < slave_at + phy::kNfft) break;
      cvec& fl = state_.ws.meas_win;
      cvec& fsv = state_.ws.meas_freq;
      fl.assign(corrected.begin() + static_cast<std::ptrdiff_t>(lead_at),
                corrected.begin() +
                    static_cast<std::ptrdiff_t>(lead_at + phy::kNfft));
      fsv.assign(corrected.begin() + static_cast<std::ptrdiff_t>(slave_at),
                 corrected.begin() +
                     static_cast<std::ptrdiff_t>(slave_at + phy::kNfft));
      const FftPlan& plan = state_.ws.fft_plan(phy::kNfft);
      plan.forward(fl);
      plan.forward(fsv);
      const phy::ChannelEstimate el = phy::estimate_from_ltf(fl);
      const phy::ChannelEstimate es = phy::estimate_from_ltf(fsv);
      delta_acc += es.mean_ratio(el);
    }
    const double delta = std::arg(delta_acc);
    if (!reference_delta) {
      reference_delta = delta;
    } else {
      deviations.push_back(std::abs(wrap_phase(delta - *reference_delta)));
    }
    state_.now =
        sync.tx_start + static_cast<double>(lead_wave.size() + 200) / fs;
    advance_time(gap_s);
  }
  return deviations;
}

}  // namespace jmb::core
