#include "phy/preamble.h"

#include <cmath>

#include "dsp/fft.h"

namespace jmb::phy {

namespace {

// 802.11a 17.3.3: S_{-26..26}, nonzero every 4th subcarrier.
cvec build_stf_freq() {
  cvec s(kNfft);
  const double scale = std::sqrt(13.0 / 6.0);
  const cplx p{scale, scale};    // (1+j) * sqrt(13/6)
  const cplx n = -p;             // (-1-j) * sqrt(13/6)
  s[bin_of(-24)] = p;
  s[bin_of(-20)] = n;
  s[bin_of(-16)] = p;
  s[bin_of(-12)] = n;
  s[bin_of(-8)] = n;
  s[bin_of(-4)] = p;
  s[bin_of(4)] = n;
  s[bin_of(8)] = n;
  s[bin_of(12)] = p;
  s[bin_of(16)] = p;
  s[bin_of(20)] = p;
  s[bin_of(24)] = p;
  return s;
}

// 802.11a 17.3.3: L_{-26..26}.
cvec build_ltf_freq() {
  static const int kL[53] = {
      1, 1,  -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  1, 1, -1, -1, 1,
      1, -1, 1,  -1, 1,  1,  1,  1,  0,  1,  -1, -1, 1,  1, -1, 1, -1, 1,
      -1, -1, -1, -1, -1, 1,  1,  -1, -1, 1,  -1, 1,  -1, 1, 1,  1,  1};
  cvec l(kNfft);
  for (int k = -26; k <= 26; ++k) {
    l[bin_of(k)] = static_cast<double>(kL[k + 26]);
  }
  return l;
}

}  // namespace

const cvec& stf_freq() {
  static const cvec kS = build_stf_freq();
  return kS;
}

const cvec& ltf_freq() {
  static const cvec kL = build_ltf_freq();
  return kL;
}

const cvec& stf_time() {
  static const cvec kStf = [] {
    // IFFT of the sparse STF spectrum is periodic with period 16; tile the
    // first 16 samples ten times. No standard power normalization beyond
    // the sqrt(13/6) already in the spectrum.
    const cvec full = ifft(stf_freq());
    cvec out(kStfLen);
    for (std::size_t i = 0; i < kStfLen; ++i) out[i] = full[i % 16];
    return out;
  }();
  return kStf;
}

const cvec& ltf_symbol_time() {
  static const cvec kSym = ifft(ltf_freq());
  return kSym;
}

const cvec& ltf_time() {
  static const cvec kLtf = [] {
    const cvec& sym = ltf_symbol_time();
    cvec out(kLtfLen);
    // Double-length guard: the last 32 samples of the symbol.
    for (std::size_t i = 0; i < 32; ++i) out[i] = sym[kNfft - 32 + i];
    for (std::size_t i = 0; i < kNfft; ++i) {
      out[32 + i] = sym[i];
      out[32 + kNfft + i] = sym[i];
    }
    return out;
  }();
  return kLtf;
}

cvec preamble_time() {
  cvec out;
  out.reserve(kPreambleLen);
  const cvec& s = stf_time();
  const cvec& l = ltf_time();
  out.insert(out.end(), s.begin(), s.end());
  out.insert(out.end(), l.begin(), l.end());
  return out;
}

}  // namespace jmb::phy
