// 802.11a preamble (17.3.3): the short training field used for packet
// detection and coarse CFO, and the long training field used for fine CFO
// and channel estimation. The LTF symbol doubles as JMB's "channel
// measurement symbol" — slave APs interleave time-shifted copies of it so
// clients can measure every AP's channel against one reference time.
#pragma once

#include "dsp/types.h"
#include "phy/params.h"

namespace jmb::phy {

/// Frequency-domain STF values on logical subcarriers -32..31 (bin order
/// 0..63 after bin_of mapping), including the sqrt(13/6) scaling.
[[nodiscard]] const cvec& stf_freq();

/// Frequency-domain LTF values (+-1 on -26..26 except DC).
[[nodiscard]] const cvec& ltf_freq();

/// 160-sample time-domain STF (10 repetitions of a 16-sample pattern).
[[nodiscard]] const cvec& stf_time();

/// 160-sample time-domain LTF (32-sample guard + 2 x 64-sample symbols).
[[nodiscard]] const cvec& ltf_time();

/// One bare 64-sample LTF symbol (no guard) — the unit JMB interleaves
/// during channel measurement.
[[nodiscard]] const cvec& ltf_symbol_time();

/// Full 320-sample preamble (STF then LTF).
[[nodiscard]] cvec preamble_time();

}  // namespace jmb::phy
