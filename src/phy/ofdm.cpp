#include "phy/ofdm.h"

#include <algorithm>
#include <stdexcept>

#include "dsp/fft_plan.h"

namespace jmb::phy {

namespace {

// One immutable plan for the OFDM transform size, shared by every thread
// (FftPlan is read-only after construction).
const FftPlan& plan64() {
  static const FftPlan kPlan(kNfft);
  return kPlan;
}

}  // namespace

void map_subcarriers_into(std::span<const cplx> data48,
                          std::size_t symbol_index, std::span<cplx> freq) {
  if (data48.size() != kNumDataCarriers) {
    throw std::invalid_argument("map_subcarriers: need 48 data symbols");
  }
  if (freq.size() != kNfft) {
    throw std::invalid_argument("map_subcarriers: need a kNfft output");
  }
  std::fill(freq.begin(), freq.end(), cplx{});
  const auto& dc = data_carriers();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    freq[bin_of(dc[i])] = data48[i];
  }
  const double pol = pilot_polarity(symbol_index);
  const auto& pc = pilot_carriers();
  const auto& pb = pilot_base();
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    freq[bin_of(pc[i])] = pol * pb[i];
  }
}

cvec map_subcarriers(const cvec& data48, std::size_t symbol_index) {
  cvec freq(kNfft);
  map_subcarriers_into(data48, symbol_index, freq);
  return freq;
}

void ofdm_modulate_into(std::span<const cplx> freq_symbol,
                        std::span<cplx> out) {
  if (freq_symbol.size() != kNfft) {
    throw std::invalid_argument("ofdm_modulate: need kNfft frequency values");
  }
  if (out.size() != kSymbolLen) {
    throw std::invalid_argument("ofdm_modulate: need a kSymbolLen output");
  }
  // IFFT in place in the payload slot of the output, then copy the tail
  // forward as the cyclic prefix — same transform, no scratch buffer.
  const std::span<cplx> time = out.subspan(kCpLen, kNfft);
  std::copy(freq_symbol.begin(), freq_symbol.end(), time.begin());
  plan64().inverse(time);
  for (std::size_t i = 0; i < kCpLen; ++i) out[i] = time[kNfft - kCpLen + i];
}

cvec ofdm_modulate(const cvec& freq_symbol) {
  cvec out(kSymbolLen);
  ofdm_modulate_into(freq_symbol, out);
  return out;
}

void ofdm_demodulate_into(std::span<const cplx> time_symbol,
                          std::span<cplx> freq, std::size_t cp_skip) {
  if (time_symbol.size() < kSymbolLen) {
    throw std::invalid_argument("ofdm_demodulate: need kSymbolLen samples");
  }
  if (cp_skip > kCpLen) {
    throw std::invalid_argument("ofdm_demodulate: cp_skip beyond the CP");
  }
  if (freq.size() != kNfft) {
    throw std::invalid_argument("ofdm_demodulate: need a kNfft output");
  }
  std::copy(time_symbol.begin() + static_cast<std::ptrdiff_t>(cp_skip),
            time_symbol.begin() + static_cast<std::ptrdiff_t>(cp_skip + kNfft),
            freq.begin());
  plan64().forward(freq);
}

cvec ofdm_demodulate(const cvec& time_symbol, std::size_t cp_skip) {
  cvec freq(kNfft);
  ofdm_demodulate_into(time_symbol, freq, cp_skip);
  return freq;
}

void extract_data_into(std::span<const cplx> freq_symbol,
                       std::span<cplx> out) {
  if (freq_symbol.size() != kNfft) {
    throw std::invalid_argument("extract_data: need kNfft values");
  }
  if (out.size() != kNumDataCarriers) {
    throw std::invalid_argument("extract_data: need a 48-entry output");
  }
  const auto& dc = data_carriers();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    out[i] = freq_symbol[bin_of(dc[i])];
  }
}

cvec extract_data(const cvec& freq_symbol) {
  cvec out(kNumDataCarriers);
  extract_data_into(freq_symbol, out);
  return out;
}

void extract_pilots_into(std::span<const cplx> freq_symbol,
                         std::span<cplx> out) {
  if (freq_symbol.size() != kNfft) {
    throw std::invalid_argument("extract_pilots: need kNfft values");
  }
  if (out.size() != kNumPilots) {
    throw std::invalid_argument("extract_pilots: need a 4-entry output");
  }
  const auto& pc = pilot_carriers();
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    out[i] = freq_symbol[bin_of(pc[i])];
  }
}

cvec extract_pilots(const cvec& freq_symbol) {
  cvec out(kNumPilots);
  extract_pilots_into(freq_symbol, out);
  return out;
}

}  // namespace jmb::phy
