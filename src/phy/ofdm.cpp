#include "phy/ofdm.h"

#include <stdexcept>

#include "dsp/fft.h"

namespace jmb::phy {

cvec map_subcarriers(const cvec& data48, std::size_t symbol_index) {
  if (data48.size() != kNumDataCarriers) {
    throw std::invalid_argument("map_subcarriers: need 48 data symbols");
  }
  cvec freq(kNfft);
  const auto& dc = data_carriers();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    freq[bin_of(dc[i])] = data48[i];
  }
  const double pol = pilot_polarity(symbol_index);
  const auto& pc = pilot_carriers();
  const auto& pb = pilot_base();
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    freq[bin_of(pc[i])] = pol * pb[i];
  }
  return freq;
}

cvec ofdm_modulate(const cvec& freq_symbol) {
  if (freq_symbol.size() != kNfft) {
    throw std::invalid_argument("ofdm_modulate: need kNfft frequency values");
  }
  const cvec time = ifft(freq_symbol);
  cvec out(kSymbolLen);
  for (std::size_t i = 0; i < kCpLen; ++i) out[i] = time[kNfft - kCpLen + i];
  for (std::size_t i = 0; i < kNfft; ++i) out[kCpLen + i] = time[i];
  return out;
}

cvec ofdm_demodulate(const cvec& time_symbol, std::size_t cp_skip) {
  if (time_symbol.size() < kSymbolLen) {
    throw std::invalid_argument("ofdm_demodulate: need kSymbolLen samples");
  }
  if (cp_skip > kCpLen) {
    throw std::invalid_argument("ofdm_demodulate: cp_skip beyond the CP");
  }
  cvec window(time_symbol.begin() + static_cast<std::ptrdiff_t>(cp_skip),
              time_symbol.begin() + static_cast<std::ptrdiff_t>(cp_skip + kNfft));
  fft_inplace(window);
  return window;
}

cvec extract_data(const cvec& freq_symbol) {
  if (freq_symbol.size() != kNfft) {
    throw std::invalid_argument("extract_data: need kNfft values");
  }
  cvec out(kNumDataCarriers);
  const auto& dc = data_carriers();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    out[i] = freq_symbol[bin_of(dc[i])];
  }
  return out;
}

cvec extract_pilots(const cvec& freq_symbol) {
  if (freq_symbol.size() != kNfft) {
    throw std::invalid_argument("extract_pilots: need kNfft values");
  }
  cvec out(kNumPilots);
  const auto& pc = pilot_carriers();
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    out[i] = freq_symbol[bin_of(pc[i])];
  }
  return out;
}

}  // namespace jmb::phy
