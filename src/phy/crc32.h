// IEEE 802.3 CRC-32, the FCS appended to every MPDU so the receiver (and
// the link layer's retransmission logic) can tell good packets from bad.
#pragma once

#include <cstdint>
#include <vector>

namespace jmb::phy {

using ByteVec = std::vector<std::uint8_t>;

/// CRC-32 (reflected, poly 0xEDB88320, init/final 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(const ByteVec& data);

/// data + 4-byte little-endian FCS.
[[nodiscard]] ByteVec append_crc32(ByteVec data);

/// True iff the trailing 4 bytes are a valid FCS for the preceding bytes.
[[nodiscard]] bool check_crc32(const ByteVec& data_with_fcs);

/// Strip a verified FCS; call only after check_crc32 returned true.
[[nodiscard]] ByteVec strip_crc32(ByteVec data_with_fcs);

}  // namespace jmb::phy
