// Packet detection, symbol timing and carrier-frequency-offset estimation.
//
// These are the "standard techniques" the paper's clients use (Section 5.1)
// plus the machinery slave APs use on the lead's sync header. CFO estimates
// here carry exactly the noise the paper discusses: good enough to track
// phase *within* a packet, never good enough to predict phase *across*
// packets — which is why JMB re-measures phase per packet.
#pragma once

#include <optional>
#include <span>

#include "dsp/types.h"
#include "phy/params.h"

namespace jmb::phy {

/// Result of STF-based packet detection.
struct Detection {
  std::size_t stf_start = 0;   ///< approximate first sample of the STF
  double metric = 0.0;         ///< normalized autocorrelation at the peak
};

/// Scan `rx` from `search_from` for the STF's 16-sample periodicity using
/// a normalized sliding autocorrelation. Returns nullopt if no plateau
/// exceeds `threshold`.
[[nodiscard]] std::optional<Detection> detect_packet(
    const cvec& rx, std::size_t search_from = 0, double threshold = 0.6);

/// Coarse CFO from the STF's 16-sample repetition. `stf` must hold at
/// least 96 samples of STF. Range: +-fs/32.
[[nodiscard]] double coarse_cfo_hz(const cvec& stf, double sample_rate_hz);

/// Fine CFO from the LTF's 64-sample repetition. `ltf64x2` must hold the
/// two repeated 64-sample LTF symbols (no guard). Range: +-fs/128.
[[nodiscard]] double fine_cfo_hz(const cvec& ltf64x2, double sample_rate_hz);

/// Locate the start of the first 64-sample LTF symbol by cross-correlating
/// with the known LTF within [from, to). Returns the sample index of the
/// correlation peak (start of LTF symbol 1).
[[nodiscard]] std::optional<std::size_t> locate_ltf(const cvec& rx,
                                                    std::size_t from,
                                                    std::size_t to);

/// Like locate_ltf, but returns the EARLIEST qualifying correlation peak
/// (>= 55% of the window's best) rather than the global maximum — needed
/// when the buffer holds several LTF-shaped symbols (e.g. JMB's
/// interleaved measurement frame) and the first one is the sync header.
[[nodiscard]] std::optional<std::size_t> locate_ltf_earliest(const cvec& rx,
                                                             std::size_t from,
                                                             std::size_t to);

/// Normalized LTF cross-correlation metric at one position (0..1-ish);
/// used to disambiguate the two identical LTF repetitions.
[[nodiscard]] double ltf_metric_at(const cvec& rx, std::size_t pos);

/// Remove a frequency offset: y[n] = x[n] * e^{-j 2 pi f (n + n0) / fs}.
[[nodiscard]] cvec correct_cfo(const cvec& x, double cfo_hz,
                               double sample_rate_hz, double n0 = 0.0);

/// correct_cfo() into a caller-owned span of exactly x.size() entries.
/// `out` may alias `x` (the transform is elementwise). The allocating API
/// wraps this kernel, so results are bitwise identical.
void correct_cfo_into(std::span<const cplx> x, double cfo_hz,
                      double sample_rate_hz, double n0, std::span<cplx> out);

}  // namespace jmb::phy
