// Precoder-kind vocabulary and the CSI impairment axis shared by the
// precoder zoo (core/precoder.h builds weights; this header owns the
// matrix-level primitives that do not need core::ChannelMatrixSet).
//
// The paper commits to zero forcing; ROADMAP item 2 asks "which precoder
// survives stale or quantized CSI at scale". The two impairments modeled
// here are exactly the ones a deployed MegaMIMO-style system sees:
//
//  - Staleness: the channel keeps fading after the measurement epoch.
//    Gauss-innovations AR(1) aging per entry, h' = rho h + sqrt(1-rho^2) e
//    with e ~ CN(0, E|h|^2); rho = 2^-staleness halves the correlation per
//    coherence interval, so `staleness` reads directly in the units the
//    MAC's coherence_time_s cadence is quoted in.
//  - Quantized feedback: clients report B bits per real component on a
//    per-matrix max-abs grid (the classic limited-feedback model); B = 0
//    means full-precision CSI and is bit-exact to no quantization at all.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "dsp/rng.h"
#include "linalg/cmatrix.h"

namespace jmb::phy {

/// The precoder zoo. kZf is the paper's choice (and the bit-exact legacy
/// path); kRzf regularizes the per-subcarrier solve (MMSE when the ridge
/// is matched to noise + CSI-error power); kConj is conjugate
/// beamforming, the multi-stream generalization of Section 8's diversity
/// MRT — no nulling at all, so it only wins when CSI is near-useless.
enum class PrecoderKind { kZf, kRzf, kConj };

/// Canonical knob spelling for each kind ("zf", "rzf", "conj").
[[nodiscard]] const char* precoder_kind_name(PrecoderKind kind);

/// Parse a JMB_PRECODER spelling; accepts "mmse" as an alias for "rzf".
[[nodiscard]] std::optional<PrecoderKind> parse_precoder_kind(
    std::string_view text);

/// Null-terminated spelling list for engine::env_choice.
inline constexpr const char* kPrecoderKindNames[] = {"zf", "rzf", "mmse",
                                                     "conj", nullptr};

/// One point on the CSI-quality axis. Default-constructed = perfect CSI,
/// and impair_csi() with a null impairment is a guaranteed no-op (bitwise:
/// it never touches the matrix or the RNG), so perfect-CSI runs stay
/// byte-identical to pre-zoo exports.
struct CsiImpairment {
  /// Age of the snapshot in coherence intervals at use time.
  double staleness = 0.0;
  /// Feedback resolution in bits per real component; 0 = full precision.
  unsigned feedback_bits = 0;

  [[nodiscard]] bool is_null() const {
    return staleness <= 0.0 && feedback_bits == 0;
  }
  /// AR(1) correlation left after `staleness` coherence intervals.
  [[nodiscard]] double correlation() const;
};

/// Age one channel matrix in place: h <- rho h + sqrt(1-rho^2) e with
/// per-entry innovation power matched to the entry's own power, so the
/// mean link budget is preserved while the realization decorrelates.
/// Draws exactly rows*cols complex Gaussians from `rng` (deterministic).
void age_csi(CMatrix& h, double rho, Rng& rng);

/// Quantize every real component to a `bits`-bit uniform grid over
/// [-m, m] where m is the matrix max-abs (per-matrix scaling, the
/// standard limited-feedback model). bits >= 2; bits == 0 is a no-op.
void quantize_csi(CMatrix& h, unsigned bits);

/// Apply a full impairment (staleness first — the channel fades before
/// the client quantizes what it measured). No-op, RNG untouched, when
/// `imp.is_null()`.
void impair_csi(CMatrix& h, const CsiImpairment& imp, Rng& rng);

/// Residual CSI error power per unit link power for an impairment — the
/// deterministic estimate an MMSE ridge should price in: (1 - rho^2)
/// from aging plus the uniform-quantizer noise 2^-2(B-1)/6 per component.
[[nodiscard]] double csi_error_power(const CsiImpairment& imp);

}  // namespace jmb::phy
