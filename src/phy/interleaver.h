// 802.11a block interleaver (17.3.5.7): two permutations over one OFDM
// symbol's worth of coded bits, spreading adjacent bits across subcarriers
// and across constellation bit positions.
#pragma once

#include <span>
#include <vector>

#include "phy/params.h"
#include "phy/scrambler.h"  // BitVec

namespace jmb::phy {

/// Interleave one OFDM symbol of coded bits (size must equal n_cbps).
[[nodiscard]] BitVec interleave(const BitVec& bits, const Mcs& mcs);

/// Inverse permutation on hard bits.
[[nodiscard]] BitVec deinterleave(const BitVec& bits, const Mcs& mcs);

/// Inverse permutation on soft values (LLRs), same indices.
[[nodiscard]] std::vector<double> deinterleave_soft(
    const std::vector<double>& llr, const Mcs& mcs);

/// The composite permutation: out[perm[k]] = in[k] for interleave.
[[nodiscard]] std::vector<std::size_t> interleave_permutation(const Mcs& mcs);

/// Shared immutable permutation table (one per modulation order — the
/// permutation does not depend on the code rate). Built once, so per-symbol
/// interleaving never allocates.
[[nodiscard]] const std::vector<std::size_t>& cached_interleave_permutation(
    const Mcs& mcs);

/// deinterleave_soft() into a reused vector (cleared first; allocation-free
/// once the buffer is warm).
void deinterleave_soft_into(std::span<const double> llr, const Mcs& mcs,
                            std::vector<double>& out);

}  // namespace jmb::phy
