// Full 802.11a-style transmit chain: PSDU -> preamble + SIGNAL + DATA
// waveform. Also exposes the frequency-domain symbol stream so the JMB core
// can precode symbols across APs before waveform synthesis.
#pragma once

#include "phy/frame.h"
#include "phy/params.h"

namespace jmb::phy {

/// A fully built frame.
struct TxFrame {
  /// preamble + SIGNAL + data, kSymbolLen-aligned
  cvec samples;
  /// 64-pt symbols incl. pilots; [0] is SIGNAL
  std::vector<cvec> freq_symbols;
  Mcs mcs;
  std::size_t psdu_len = 0;

  [[nodiscard]] std::size_t n_samples() const { return samples.size(); }
  /// Airtime in seconds at the given sample rate.
  [[nodiscard]] double duration_s(double sample_rate_hz) const {
    return static_cast<double>(samples.size()) / sample_rate_hz;
  }
};

class Transmitter {
 public:
  explicit Transmitter(PhyConfig cfg = {}) : cfg_(cfg) {}

  /// Build a complete frame for one PSDU.
  [[nodiscard]] TxFrame build_frame(
      const ByteVec& psdu, const Mcs& mcs,
      unsigned scrambler_seed = kDefaultScramblerSeed) const;

  /// Frequency-domain symbols only (pilots included; [0] = SIGNAL). The JMB
  /// joint transmitter stacks these across streams and precodes them.
  [[nodiscard]] std::vector<cvec> build_freq_symbols(
      const ByteVec& psdu, const Mcs& mcs,
      unsigned scrambler_seed = kDefaultScramblerSeed) const;

  /// Synthesize the time-domain payload (no preamble) from frequency-domain
  /// symbols: IFFT + CP per symbol.
  [[nodiscard]] static cvec synthesize(const std::vector<cvec>& freq_symbols);

  [[nodiscard]] const PhyConfig& config() const { return cfg_; }

 private:
  PhyConfig cfg_;
};

}  // namespace jmb::phy
