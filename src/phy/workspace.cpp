#include "phy/workspace.h"

#include "phy/chanest.h"

namespace jmb {

const FftPlan& Workspace::fft_plan(std::size_t n) {
  auto it = plans_.find(n);
  if (it == plans_.end()) it = plans_.try_emplace(n, n).first;
  return it->second;
}

const CMatrix& Workspace::denoise_projection(std::size_t support) {
  auto it = projections_.find(support);
  if (it == projections_.end()) {
    it = projections_.emplace(support, phy::make_denoise_projection(support))
             .first;
  }
  return it->second;
}

}  // namespace jmb
