// Soft-decision Viterbi decoder for the 802.11 K=7 convolutional code.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "phy/convcode.h"
#include "simd/aligned.h"

namespace jmb::phy {

/// Reusable trellis buffers for viterbi_decode_into(). One per workspace;
/// sized on first use and reused across frames without reallocation.
/// Path metrics are cache-line aligned for the batched ACS kernel.
struct ViterbiScratch {
  simd::advec metric;
  simd::advec next_metric;
  /// survivor[step][state] = predecessor state; survivor_bit = input bit.
  std::vector<std::array<std::uint8_t, kNumStates>> survivor;
  std::vector<std::array<std::uint8_t, kNumStates>> survivor_bit;
};

/// Decode `2*n_info` mother-rate soft bits into `n_info` information bits.
///
/// LLR convention: llr[i] = log P(bit=0)/P(bit=1); 0 is an erasure (as
/// produced by depuncture()). If `terminated` is true the trellis is forced
/// to end in the all-zero state (the framer always appends 6 zero tail
/// bits), otherwise the best end state wins.
[[nodiscard]] BitVec viterbi_decode(const std::vector<double>& llr,
                                    std::size_t n_info,
                                    bool terminated = true);

/// viterbi_decode() with caller-owned scratch and output — allocation-free
/// once the scratch is warm. Bitwise-identical to the allocating API
/// (which wraps this kernel).
void viterbi_decode_into(std::span<const double> llr, std::size_t n_info,
                         bool terminated, ViterbiScratch& scratch,
                         BitVec& out);

/// Hard-decision convenience wrapper: bits -> +-1 LLRs -> decode.
[[nodiscard]] BitVec viterbi_decode_hard(const BitVec& coded,
                                         std::size_t n_info,
                                         bool terminated = true);

}  // namespace jmb::phy
