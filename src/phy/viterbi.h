// Soft-decision Viterbi decoder for the 802.11 K=7 convolutional code.
#pragma once

#include <vector>

#include "phy/convcode.h"

namespace jmb::phy {

/// Decode `2*n_info` mother-rate soft bits into `n_info` information bits.
///
/// LLR convention: llr[i] = log P(bit=0)/P(bit=1); 0 is an erasure (as
/// produced by depuncture()). If `terminated` is true the trellis is forced
/// to end in the all-zero state (the framer always appends 6 zero tail
/// bits), otherwise the best end state wins.
[[nodiscard]] BitVec viterbi_decode(const std::vector<double>& llr,
                                    std::size_t n_info,
                                    bool terminated = true);

/// Hard-decision convenience wrapper: bits -> +-1 LLRs -> decode.
[[nodiscard]] BitVec viterbi_decode_hard(const BitVec& coded,
                                         std::size_t n_info,
                                         bool terminated = true);

}  // namespace jmb::phy
