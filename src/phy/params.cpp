#include "phy/params.h"

#include <stdexcept>

#include "phy/scrambler.h"

namespace jmb::phy {

const std::array<int, kNumDataCarriers>& data_carriers() {
  static const std::array<int, kNumDataCarriers> kCarriers = [] {
    std::array<int, kNumDataCarriers> c{};
    std::size_t i = 0;
    for (int k = -26; k <= 26; ++k) {
      if (k == 0 || k == -21 || k == -7 || k == 7 || k == 21) continue;
      c[i++] = k;
    }
    return c;
  }();
  return kCarriers;
}

const std::array<int, kNumPilots>& pilot_carriers() {
  static const std::array<int, kNumPilots> kPilots{-21, -7, 7, 21};
  return kPilots;
}

const std::array<double, kNumPilots>& pilot_base() {
  // 802.11a 17.3.5.9: pilots are {1, 1, 1, -1} on {-21, -7, 7, 21}.
  static const std::array<double, kNumPilots> kBase{1.0, 1.0, 1.0, -1.0};
  return kBase;
}

double pilot_polarity(std::size_t symbol_index) {
  // p_n is the scrambler sequence for the all-ones seed, mapped 0 -> +1,
  // 1 -> -1, with period 127 (802.11a 17.3.5.9).
  static const std::array<double, 127> kP = [] {
    std::array<double, 127> p{};
    Scrambler s(0x7F);
    for (double& v : p) v = s.next_bit() ? -1.0 : 1.0;
    return p;
  }();
  return kP[symbol_index % 127];
}

std::size_t bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  throw std::logic_error("bits_per_symbol: bad modulation");
}

std::string to_string(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

double code_rate_value(CodeRate r) {
  switch (r) {
    case CodeRate::kHalf: return 0.5;
    case CodeRate::kTwoThirds: return 2.0 / 3.0;
    case CodeRate::kThreeQuarters: return 0.75;
  }
  throw std::logic_error("code_rate_value: bad rate");
}

std::string to_string(CodeRate r) {
  switch (r) {
    case CodeRate::kHalf: return "1/2";
    case CodeRate::kTwoThirds: return "2/3";
    case CodeRate::kThreeQuarters: return "3/4";
  }
  return "?";
}

std::size_t Mcs::n_dbps() const {
  // N_CBPS * code rate; all combinations used by 802.11 divide exactly.
  const std::size_t cbps = n_cbps();
  switch (code_rate) {
    case CodeRate::kHalf: return cbps / 2;
    case CodeRate::kTwoThirds: return cbps * 2 / 3;
    case CodeRate::kThreeQuarters: return cbps * 3 / 4;
  }
  throw std::logic_error("n_dbps: bad rate");
}

double Mcs::rate_mbps(double bandwidth_hz) const {
  // Symbol duration scales inversely with bandwidth: 4us at 20 MHz,
  // 8us at 10 MHz.
  const double sym_s = static_cast<double>(kSymbolLen) / bandwidth_hz;
  return static_cast<double>(n_dbps()) / sym_s / 1e6;
}

std::string Mcs::name() const {
  return to_string(modulation) + " " + to_string(code_rate);
}

const std::vector<Mcs>& rate_set() {
  static const std::vector<Mcs> kRates{
      {Modulation::kBpsk, CodeRate::kHalf},
      {Modulation::kBpsk, CodeRate::kThreeQuarters},
      {Modulation::kQpsk, CodeRate::kHalf},
      {Modulation::kQpsk, CodeRate::kThreeQuarters},
      {Modulation::kQam16, CodeRate::kHalf},
      {Modulation::kQam16, CodeRate::kThreeQuarters},
      {Modulation::kQam64, CodeRate::kTwoThirds},
      {Modulation::kQam64, CodeRate::kThreeQuarters},
  };
  return kRates;
}

std::size_t rate_index(const Mcs& mcs) {
  const auto& rates = rate_set();
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] == mcs) return i;
  }
  throw std::invalid_argument("rate_index: MCS not in the 802.11 rate set");
}

unsigned rate_field_bits(std::size_t rate_set_index) {
  // 802.11a Table 17-6 (R1-R4), indexed by our rate_set() order.
  static const std::array<unsigned, 8> kField{0b1101, 0b1111, 0b0101, 0b0111,
                                              0b1001, 0b1011, 0b0001, 0b0011};
  if (rate_set_index >= kField.size()) {
    throw std::invalid_argument("rate_field_bits: index out of range");
  }
  return kField[rate_set_index];
}

std::size_t rate_index_from_field(unsigned bits) {
  static const std::array<unsigned, 8> kField{0b1101, 0b1111, 0b0101, 0b0111,
                                              0b1001, 0b1011, 0b0001, 0b0011};
  for (std::size_t i = 0; i < kField.size(); ++i) {
    if (kField[i] == bits) return i;
  }
  throw std::invalid_argument("rate_index_from_field: invalid RATE bits");
}

}  // namespace jmb::phy
