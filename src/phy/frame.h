// PPDU framing (802.11a 17.3.2): SIGNAL field encode/decode and the
// scramble/encode/interleave pipeline that turns a PSDU into per-symbol
// frequency-domain OFDM symbols — kept separate from waveform synthesis so
// JMB can precode the frequency-domain symbols across APs before IFFT.
#pragma once

#include <optional>

#include "phy/bits.h"
#include "phy/params.h"

namespace jmb {
class Workspace;
}

namespace jmb::phy {

/// Default scrambler seed used by the transmitter (any nonzero 7-bit value;
/// receivers recover it from the SERVICE field).
constexpr unsigned kDefaultScramblerSeed = 0x5D;

/// Decoded SIGNAL field contents.
struct SignalField {
  std::size_t rate_index = 0;  ///< index into rate_set()
  std::size_t length = 0;      ///< PSDU length in bytes
};

/// Number of OFDM data symbols needed for a PSDU of `length` bytes at `mcs`
/// (16 SERVICE bits + 8*length + 6 tail, padded to a whole symbol).
[[nodiscard]] std::size_t n_data_symbols(std::size_t length, const Mcs& mcs);

/// Build the 48 BPSK symbols of the SIGNAL OFDM symbol.
[[nodiscard]] cvec build_signal_symbol(const SignalField& sig);

/// Decode a received (equalized) SIGNAL symbol; nullopt on parity failure
/// or invalid RATE bits. `noise_var` feeds the soft demapper.
[[nodiscard]] std::optional<SignalField> decode_signal_symbol(
    const cvec& data48, double noise_var);

/// Scramble + encode + interleave + map a PSDU into per-symbol groups of 48
/// constellation points (frequency-domain, pilots NOT included).
[[nodiscard]] std::vector<cvec> encode_psdu(
    const ByteVec& psdu, const Mcs& mcs,
    unsigned scrambler_seed = kDefaultScramblerSeed);

/// Inverse of encode_psdu from per-symbol soft LLR groups: deinterleave,
/// depuncture, Viterbi-decode, descramble (seed recovered from SERVICE),
/// strip padding. `llr_per_symbol[i]` holds n_cbps LLRs for data symbol i.
/// Returns nullopt if the symbol count mismatches the SIGNAL length.
[[nodiscard]] std::optional<ByteVec> decode_psdu(
    const std::vector<std::vector<double>>& llr_per_symbol,
    const SignalField& sig);

/// decode_psdu() with the per-symbol deinterleave, depuncture and Viterbi
/// buffers drawn from the per-trial workspace — no per-symbol heap churn.
/// Bitwise-identical to the overload above (which wraps this kernel with a
/// throwaway workspace).
[[nodiscard]] std::optional<ByteVec> decode_psdu(
    const std::vector<std::vector<double>>& llr_per_symbol,
    const SignalField& sig, Workspace& ws);

}  // namespace jmb::phy
