#include "phy/receiver.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft_plan.h"
#include "phy/modulation.h"
#include "phy/ofdm.h"
#include "phy/sync.h"
#include "phy/workspace.h"

namespace jmb::phy {

namespace {

// Every helper takes the (possibly null) per-trial workspace and binds
// each buffer it needs via `cvec local; cvec& buf = ws ? ws->x : local;`
// — one implementation, so the workspace path cannot diverge from the
// allocating path.

const FftPlan& plan64() {
  static const FftPlan kPlan(kNfft);
  return kPlan;
}

// FFT of a bare 64-sample window starting at `pos` (no CP handling),
// written into `out`.
void fft_window_into(const cvec& x, std::size_t pos, cvec& out) {
  out.resize(kNfft);
  std::copy(x.begin() + static_cast<std::ptrdiff_t>(pos),
            x.begin() + static_cast<std::ptrdiff_t>(pos + kNfft), out.begin());
  plan64().forward(out);
}

// Noise variance estimate from the two (ideally identical) LTF symbols.
double ltf_noise_var(const cvec& f1, const cvec& f2) {
  double acc = 0.0;
  int n = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    const std::size_t b = bin_of(k);
    acc += std::norm(f1[b] - f2[b]);
    ++n;
  }
  // Var(f1 - f2) = 2 * noise_var per subcarrier.
  return std::max(acc / (2.0 * n), 1e-12);
}

// Demodulate/equalize one OFDM symbol whose 80 samples start at
// `sym_start`, leaving the equalized data and per-carrier noise variances
// in `freq`/`data48`/`noise48`.
void decode_symbol(const cvec& corrected, std::size_t sym_start,
                   std::size_t backoff, const ChannelEstimate& chan,
                   double noise_var, std::size_t symbol_index, cvec& freq,
                   cvec& data48, rvec& noise48) {
  const std::size_t win = sym_start + kCpLen - backoff;
  fft_window_into(corrected, win, freq);
  const PilotPhase pp = track_pilots(freq, chan, symbol_index);

  data48.resize(kNumDataCarriers);
  noise48.resize(kNumDataCarriers);
  const auto& dc = data_carriers();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    const std::size_t b = bin_of(dc[i]);
    const cplx h = chan.h[b];
    const double hp = std::max(std::norm(h), 1e-12);
    data48[i] = freq[b] / h;
    noise48[i] = noise_var / hp;
  }
  apply_phase_correction(data48, pp);
}

// Shared back half of reception: channel-estimate in pm, symbols start
// right after the two LTF repetitions at pm.ltf_start.
RxResult decode_after_ltf(const cvec& corrected, const PreambleMeasurement& pm,
                          std::size_t timing_backoff, Workspace* ws) {
  RxResult res;
  res.preamble = pm;
  const std::size_t backoff = std::min(pm.ltf_start, timing_backoff);
  const std::size_t payload = pm.ltf_start + 2 * kNfft;

  cvec local_freq;
  cvec& freq = ws ? ws->sym_freq : local_freq;
  cvec local_data48;
  cvec& data48 = ws ? ws->data48 : local_data48;
  rvec local_noise48;
  rvec& noise48 = ws ? ws->noise48 : local_noise48;

  if (corrected.size() < payload + kSymbolLen) {
    res.fail_reason = "buffer too short for SIGNAL";
    return res;
  }
  decode_symbol(corrected, payload, backoff, pm.chan, pm.noise_var, 0, freq,
                data48, noise48);
  const auto sig = decode_signal_symbol(
      data48,
      std::max(pm.noise_var / std::max(pm.chan.mean_gain_power(), 1e-12),
               1e-12));
  if (!sig) {
    res.fail_reason = "SIGNAL decode failed";
    return res;
  }
  res.sig = *sig;
  res.header_ok = true;

  const Mcs& mcs = rate_set()[sig->rate_index];
  const std::size_t n_sym = n_data_symbols(sig->length, mcs);
  if (corrected.size() < payload + (1 + n_sym) * kSymbolLen) {
    res.fail_reason = "buffer too short for payload";
    return res;
  }

  std::vector<std::vector<double>> local_llr;
  std::vector<std::vector<double>>& llr_per_symbol =
      ws ? ws->llr_per_symbol : local_llr;
  llr_per_symbol.resize(n_sym);
  BitVec local_hard;
  BitVec& hard = ws ? ws->hard_bits : local_hard;
  cvec local_nearest;
  cvec& nearest = ws ? ws->nearest : local_nearest;

  double evm_err = 0.0, evm_sig = 0.0;
  for (std::size_t s = 0; s < n_sym; ++s) {
    const std::size_t sym_start = payload + (1 + s) * kSymbolLen;
    decode_symbol(corrected, sym_start, backoff, pm.chan, pm.noise_var, s + 1,
                  freq, data48, noise48);
    demodulate_soft_into(data48, mcs.modulation, noise48, llr_per_symbol[s]);
    // EVM against the nearest constellation points.
    demodulate_hard_into(data48, mcs.modulation, hard);
    nearest.resize(data48.size());
    modulate_into(hard, mcs.modulation, nearest);
    for (std::size_t i = 0; i < data48.size(); ++i) {
      evm_err += std::norm(data48[i] - nearest[i]);
      evm_sig += std::norm(nearest[i]);
    }
  }
  res.evm_snr_db = to_db(evm_sig / std::max(evm_err, 1e-12));

  const auto psdu = ws ? decode_psdu(llr_per_symbol, *sig, *ws)
                       : decode_psdu(llr_per_symbol, *sig);
  if (!psdu) {
    res.fail_reason = "payload decode failed";
    return res;
  }
  res.psdu = *psdu;
  res.ok = true;
  return res;
}

// correct_cfo over the whole buffer into a reusable destination.
void correct_cfo_buf(const cvec& rx, double cfo_hz, double fs, cvec& out) {
  out.resize(rx.size());
  correct_cfo_into(rx, cfo_hz, fs, 0.0, out);
}

}  // namespace

std::optional<PreambleMeasurement> Receiver::measure_preamble(
    const cvec& rx, std::size_t search_from) const {
  cvec local_corrected;
  cvec& corrected = ws_ ? ws_->corrected : local_corrected;
  cvec local_a;
  cvec& win_a = ws_ ? ws_->win_a : local_a;
  cvec local_b;
  cvec& win_b = ws_ ? ws_->win_b : local_b;
  cvec local_freq;
  cvec& freq_scratch = ws_ ? ws_->sym_freq : local_freq;

  const auto det = detect_packet(rx, search_from);
  std::size_t stf = 0;
  double coarse = 0.0;
  std::optional<std::size_t> ltf;
  if (det) {
    stf = det->stf_start;
    if (rx.size() < stf + kPreambleLen + kSymbolLen) return std::nullopt;
    // Coarse CFO from the STF body (skip the detection edge).
    win_a.assign(rx.begin() + static_cast<std::ptrdiff_t>(stf + 8),
                 rx.begin() + static_cast<std::ptrdiff_t>(stf + 152));
    coarse = coarse_cfo_hz(win_a, cfg_.sample_rate_hz);
    correct_cfo_buf(rx, coarse, cfg_.sample_rate_hz, corrected);
    // The first LTF symbol nominally starts at stf + 192; search around it.
    ltf = locate_ltf(corrected, stf + 150, std::min(rx.size(), stf + 240));
  } else {
    // Low-SNR fallback: the STF autocorrelation plateau drowns near the
    // detection threshold, but a coherent cross-correlation against the
    // known 64-sample LTF has ~18 dB of processing gain. Locate the LTF
    // anywhere in the buffer, then estimate CFO from its repetition.
    auto raw_ltf = locate_ltf_earliest(rx, search_from, rx.size());
    if (!raw_ltf || *raw_ltf < 192 + kNfft) return std::nullopt;
    // The correlator may have locked onto the (identical) second
    // repetition: if the position 64 samples earlier also looks like an
    // LTF while 64 later does not, shift back.
    if (ltf_metric_at(rx, *raw_ltf - kNfft) >
        ltf_metric_at(rx, *raw_ltf + kNfft)) {
      *raw_ltf -= kNfft;
    }
    if (rx.size() < *raw_ltf + 2 * kNfft + kSymbolLen) return std::nullopt;
    win_b.assign(rx.begin() + static_cast<std::ptrdiff_t>(*raw_ltf),
                 rx.begin() +
                     static_cast<std::ptrdiff_t>(*raw_ltf + 2 * kNfft));
    coarse = fine_cfo_hz(win_b, cfg_.sample_rate_hz);
    correct_cfo_buf(rx, coarse, cfg_.sample_rate_hz, corrected);
    // Refine the location post-correction; it may land on the (identical)
    // second repetition, which the symmetric +-window below tolerates.
    ltf = locate_ltf(corrected, *raw_ltf - std::min<std::size_t>(*raw_ltf, 8),
                     std::min(rx.size(), *raw_ltf + 8));
    if (!ltf) ltf = raw_ltf;
    stf = *ltf - 192;
  }
  if (!ltf) return std::nullopt;
  const std::size_t ltf_start = *ltf;
  if (rx.size() < ltf_start + 2 * kNfft) return std::nullopt;

  freq_scratch.assign(
      corrected.begin() + static_cast<std::ptrdiff_t>(ltf_start),
      corrected.begin() + static_cast<std::ptrdiff_t>(ltf_start + 2 * kNfft));
  const double fine = fine_cfo_hz(freq_scratch, cfg_.sample_rate_hz);
  const double total_cfo = coarse + fine;

  correct_cfo_buf(rx, total_cfo, cfg_.sample_rate_hz, corrected);

  const std::size_t w1 = ltf_start - std::min(ltf_start, kTimingBackoff);
  fft_window_into(corrected, w1, win_a);
  fft_window_into(corrected, w1 + kNfft, win_b);

  PreambleMeasurement pm;
  pm.stf_start = stf;
  pm.ltf_start = ltf_start;
  pm.cfo_hz = total_cfo;
  pm.noise_var = ltf_noise_var(win_a, win_b);
  pm.chan =
      average_estimates({estimate_from_ltf(win_a), estimate_from_ltf(win_b)});
  pm.snr_db = to_db(std::max(pm.chan.mean_gain_power(), 1e-12) / pm.noise_var);
  return pm;
}

RxResult Receiver::receive(const cvec& rx, std::size_t search_from) const {
  const auto pm = measure_preamble(rx, search_from);
  if (!pm) {
    RxResult res;
    res.fail_reason = "no preamble detected";
    return res;
  }
  cvec local_corrected;
  cvec& corrected = ws_ ? ws_->corrected : local_corrected;
  correct_cfo_buf(rx, pm->cfo_hz, cfg_.sample_rate_hz, corrected);
  // Payload symbols start right after the second LTF repetition; the FFT
  // windows inside use the same back-off as the channel-estimate windows.
  return decode_after_ltf(corrected, *pm, kTimingBackoff, ws_);
}

RxResult Receiver::receive_payload(const cvec& rx, std::size_t payload_start,
                                   double cfo_hz) const {
  RxResult res;
  cvec local_corrected;
  cvec& corrected = ws_ ? ws_->corrected : local_corrected;
  correct_cfo_buf(rx, cfo_hz, cfg_.sample_rate_hz, corrected);
  cvec local_a;
  cvec& win_a = ws_ ? ws_->win_a : local_a;
  cvec local_b;
  cvec& win_b = ws_ ? ws_->win_b : local_b;

  // The payload begins with its own double-guard LTF: 32-sample GI2 then
  // two 64-sample symbols. Search a window wide enough for a few samples
  // of timing slop but short enough that the identical second repetition
  // (at +96) can never win the correlation.
  const auto ltf = locate_ltf(corrected, payload_start,
                              std::min(rx.size(), payload_start + kNfft));
  if (!ltf) {
    res.fail_reason = "payload LTF not found";
    return res;
  }
  const std::size_t ltf_start = *ltf;
  if (corrected.size() < ltf_start + 2 * kNfft + kSymbolLen) {
    res.fail_reason = "buffer too short for payload LTF";
    return res;
  }
  const std::size_t backoff = std::min(ltf_start, kTimingBackoff);
  const std::size_t w1 = ltf_start - backoff;
  fft_window_into(corrected, w1, win_a);
  fft_window_into(corrected, w1 + kNfft, win_b);

  PreambleMeasurement pm;
  pm.stf_start = payload_start;
  pm.ltf_start = ltf_start;
  pm.cfo_hz = cfo_hz;
  pm.noise_var = ltf_noise_var(win_a, win_b);
  pm.chan =
      average_estimates({estimate_from_ltf(win_a), estimate_from_ltf(win_b)});
  pm.snr_db = to_db(std::max(pm.chan.mean_gain_power(), 1e-12) / pm.noise_var);
  return decode_after_ltf(corrected, pm, kTimingBackoff, ws_);
}

}  // namespace jmb::phy
