#include "phy/receiver.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"
#include "phy/modulation.h"
#include "phy/ofdm.h"
#include "phy/sync.h"

namespace jmb::phy {

namespace {

// FFT of a bare 64-sample window starting at `pos` (no CP handling).
cvec fft_window(const cvec& x, std::size_t pos) {
  cvec w(x.begin() + static_cast<std::ptrdiff_t>(pos),
         x.begin() + static_cast<std::ptrdiff_t>(pos + kNfft));
  fft_inplace(w);
  return w;
}

// Noise variance estimate from the two (ideally identical) LTF symbols.
double ltf_noise_var(const cvec& f1, const cvec& f2) {
  double acc = 0.0;
  int n = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    const std::size_t b = bin_of(k);
    acc += std::norm(f1[b] - f2[b]);
    ++n;
  }
  // Var(f1 - f2) = 2 * noise_var per subcarrier.
  return std::max(acc / (2.0 * n), 1e-12);
}

struct SymbolDecode {
  cvec data48;         // equalized, phase-corrected data symbols
  rvec noise48;        // post-equalization noise variance per data carrier
};

// Demodulate/equalize one OFDM symbol whose 80 samples start at `sym_start`.
SymbolDecode decode_symbol(const cvec& corrected, std::size_t sym_start,
                           std::size_t backoff, const ChannelEstimate& chan,
                           double noise_var, std::size_t symbol_index) {
  const std::size_t win = sym_start + kCpLen - backoff;
  const cvec f = fft_window(corrected, win);
  const PilotPhase pp = track_pilots(f, chan, symbol_index);

  SymbolDecode out;
  out.data48.resize(kNumDataCarriers);
  out.noise48.resize(kNumDataCarriers);
  const auto& dc = data_carriers();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    const std::size_t b = bin_of(dc[i]);
    const cplx h = chan.h[b];
    const double hp = std::max(std::norm(h), 1e-12);
    out.data48[i] = f[b] / h;
    out.noise48[i] = noise_var / hp;
  }
  apply_phase_correction(out.data48, pp);
  return out;
}

// Shared back half of reception: channel-estimate in pm, symbols start
// right after the two LTF repetitions at pm.ltf_start.
RxResult decode_after_ltf(const cvec& corrected, const PreambleMeasurement& pm,
                          std::size_t timing_backoff) {
  RxResult res;
  res.preamble = pm;
  const std::size_t backoff = std::min(pm.ltf_start, timing_backoff);
  const std::size_t payload = pm.ltf_start + 2 * kNfft;

  if (corrected.size() < payload + kSymbolLen) {
    res.fail_reason = "buffer too short for SIGNAL";
    return res;
  }
  const SymbolDecode sig_sym =
      decode_symbol(corrected, payload, backoff, pm.chan, pm.noise_var, 0);
  const auto sig = decode_signal_symbol(
      sig_sym.data48,
      std::max(pm.noise_var / std::max(pm.chan.mean_gain_power(), 1e-12), 1e-12));
  if (!sig) {
    res.fail_reason = "SIGNAL decode failed";
    return res;
  }
  res.sig = *sig;
  res.header_ok = true;

  const Mcs& mcs = rate_set()[sig->rate_index];
  const std::size_t n_sym = n_data_symbols(sig->length, mcs);
  if (corrected.size() < payload + (1 + n_sym) * kSymbolLen) {
    res.fail_reason = "buffer too short for payload";
    return res;
  }

  std::vector<std::vector<double>> llr_per_symbol;
  llr_per_symbol.reserve(n_sym);
  double evm_err = 0.0, evm_sig = 0.0;
  for (std::size_t s = 0; s < n_sym; ++s) {
    const std::size_t sym_start = payload + (1 + s) * kSymbolLen;
    const SymbolDecode d = decode_symbol(corrected, sym_start, backoff,
                                         pm.chan, pm.noise_var, s + 1);
    llr_per_symbol.push_back(
        demodulate_soft(d.data48, mcs.modulation, d.noise48));
    // EVM against the nearest constellation points.
    const BitVec hard = demodulate_hard(d.data48, mcs.modulation);
    const cvec nearest = modulate(hard, mcs.modulation);
    for (std::size_t i = 0; i < d.data48.size(); ++i) {
      evm_err += std::norm(d.data48[i] - nearest[i]);
      evm_sig += std::norm(nearest[i]);
    }
  }
  res.evm_snr_db = to_db(evm_sig / std::max(evm_err, 1e-12));

  const auto psdu = decode_psdu(llr_per_symbol, *sig);
  if (!psdu) {
    res.fail_reason = "payload decode failed";
    return res;
  }
  res.psdu = *psdu;
  res.ok = true;
  return res;
}

}  // namespace

std::optional<PreambleMeasurement> Receiver::measure_preamble(
    const cvec& rx, std::size_t search_from) const {
  const auto det = detect_packet(rx, search_from);
  std::size_t stf = 0;
  double coarse = 0.0;
  cvec corrected;
  std::optional<std::size_t> ltf;
  if (det) {
    stf = det->stf_start;
    if (rx.size() < stf + kPreambleLen + kSymbolLen) return std::nullopt;
    // Coarse CFO from the STF body (skip the detection edge).
    cvec stf_win(rx.begin() + static_cast<std::ptrdiff_t>(stf + 8),
                 rx.begin() + static_cast<std::ptrdiff_t>(stf + 152));
    coarse = coarse_cfo_hz(stf_win, cfg_.sample_rate_hz);
    corrected = correct_cfo(rx, coarse, cfg_.sample_rate_hz);
    // The first LTF symbol nominally starts at stf + 192; search around it.
    ltf = locate_ltf(corrected, stf + 150, std::min(rx.size(), stf + 240));
  } else {
    // Low-SNR fallback: the STF autocorrelation plateau drowns near the
    // detection threshold, but a coherent cross-correlation against the
    // known 64-sample LTF has ~18 dB of processing gain. Locate the LTF
    // anywhere in the buffer, then estimate CFO from its repetition.
    auto raw_ltf = locate_ltf_earliest(rx, search_from, rx.size());
    if (!raw_ltf || *raw_ltf < 192 + kNfft) return std::nullopt;
    // The correlator may have locked onto the (identical) second
    // repetition: if the position 64 samples earlier also looks like an
    // LTF while 64 later does not, shift back.
    if (ltf_metric_at(rx, *raw_ltf - kNfft) >
        ltf_metric_at(rx, *raw_ltf + kNfft)) {
      *raw_ltf -= kNfft;
    }
    if (rx.size() < *raw_ltf + 2 * kNfft + kSymbolLen) return std::nullopt;
    cvec two(rx.begin() + static_cast<std::ptrdiff_t>(*raw_ltf),
             rx.begin() + static_cast<std::ptrdiff_t>(*raw_ltf + 2 * kNfft));
    coarse = fine_cfo_hz(two, cfg_.sample_rate_hz);
    corrected = correct_cfo(rx, coarse, cfg_.sample_rate_hz);
    // Refine the location post-correction; it may land on the (identical)
    // second repetition, which the symmetric +-window below tolerates.
    ltf = locate_ltf(corrected, *raw_ltf - std::min<std::size_t>(*raw_ltf, 8),
                     std::min(rx.size(), *raw_ltf + 8));
    if (!ltf) ltf = raw_ltf;
    stf = *ltf - 192;
  }
  if (!ltf) return std::nullopt;
  const std::size_t ltf_start = *ltf;
  if (rx.size() < ltf_start + 2 * kNfft) return std::nullopt;

  cvec ltf_win(corrected.begin() + static_cast<std::ptrdiff_t>(ltf_start),
               corrected.begin() + static_cast<std::ptrdiff_t>(ltf_start + 2 * kNfft));
  const double fine = fine_cfo_hz(ltf_win, cfg_.sample_rate_hz);
  const double total_cfo = coarse + fine;

  corrected = correct_cfo(rx, total_cfo, cfg_.sample_rate_hz);

  const std::size_t w1 = ltf_start - std::min(ltf_start, kTimingBackoff);
  const cvec f1 = fft_window(corrected, w1);
  const cvec f2 = fft_window(corrected, w1 + kNfft);

  PreambleMeasurement pm;
  pm.stf_start = stf;
  pm.ltf_start = ltf_start;
  pm.cfo_hz = total_cfo;
  pm.noise_var = ltf_noise_var(f1, f2);
  pm.chan = average_estimates({estimate_from_ltf(f1), estimate_from_ltf(f2)});
  pm.snr_db = to_db(std::max(pm.chan.mean_gain_power(), 1e-12) / pm.noise_var);
  return pm;
}

RxResult Receiver::receive(const cvec& rx, std::size_t search_from) const {
  const auto pm = measure_preamble(rx, search_from);
  if (!pm) {
    RxResult res;
    res.fail_reason = "no preamble detected";
    return res;
  }
  const cvec corrected = correct_cfo(rx, pm->cfo_hz, cfg_.sample_rate_hz);
  // Payload symbols start right after the second LTF repetition; the FFT
  // windows inside use the same back-off as the channel-estimate windows.
  return decode_after_ltf(corrected, *pm, kTimingBackoff);
}

RxResult Receiver::receive_payload(const cvec& rx, std::size_t payload_start,
                                   double cfo_hz) const {
  RxResult res;
  const cvec corrected = correct_cfo(rx, cfo_hz, cfg_.sample_rate_hz);

  // The payload begins with its own double-guard LTF: 32-sample GI2 then
  // two 64-sample symbols. Search a window wide enough for a few samples
  // of timing slop but short enough that the identical second repetition
  // (at +96) can never win the correlation.
  const auto ltf = locate_ltf(corrected, payload_start,
                              std::min(rx.size(), payload_start + kNfft));
  if (!ltf) {
    res.fail_reason = "payload LTF not found";
    return res;
  }
  const std::size_t ltf_start = *ltf;
  if (corrected.size() < ltf_start + 2 * kNfft + kSymbolLen) {
    res.fail_reason = "buffer too short for payload LTF";
    return res;
  }
  const std::size_t backoff = std::min(ltf_start, kTimingBackoff);
  const std::size_t w1 = ltf_start - backoff;
  const cvec f1 = fft_window(corrected, w1);
  const cvec f2 = fft_window(corrected, w1 + kNfft);

  PreambleMeasurement pm;
  pm.stf_start = payload_start;
  pm.ltf_start = ltf_start;
  pm.cfo_hz = cfo_hz;
  pm.noise_var = ltf_noise_var(f1, f2);
  pm.chan = average_estimates({estimate_from_ltf(f1), estimate_from_ltf(f2)});
  pm.snr_db = to_db(std::max(pm.chan.mean_gain_power(), 1e-12) / pm.noise_var);
  return decode_after_ltf(corrected, pm, kTimingBackoff);
}

}  // namespace jmb::phy
