// Byte/bit conversions (802.11 serializes bytes LSB-first).
#pragma once

#include "phy/crc32.h"      // ByteVec
#include "phy/scrambler.h"  // BitVec

namespace jmb::phy {

/// Bytes -> bits, LSB of each byte first.
[[nodiscard]] BitVec bytes_to_bits(const ByteVec& bytes);

/// Bits -> bytes; size must be a multiple of 8.
[[nodiscard]] ByteVec bits_to_bytes(const BitVec& bits);

/// Number of differing bits (diagnostics / BER counting).
[[nodiscard]] std::size_t hamming_distance(const BitVec& a, const BitVec& b);

}  // namespace jmb::phy
