#include "phy/precoding.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jmb::phy {

const char* precoder_kind_name(PrecoderKind kind) {
  switch (kind) {
    case PrecoderKind::kZf: return "zf";
    case PrecoderKind::kRzf: return "rzf";
    default: return "conj";
  }
}

std::optional<PrecoderKind> parse_precoder_kind(std::string_view text) {
  if (text == "zf") return PrecoderKind::kZf;
  if (text == "rzf" || text == "mmse") return PrecoderKind::kRzf;
  if (text == "conj") return PrecoderKind::kConj;
  return std::nullopt;
}

double CsiImpairment::correlation() const {
  if (staleness <= 0.0) return 1.0;
  return std::exp2(-staleness);
}

void age_csi(CMatrix& h, double rho, Rng& rng) {
  if (rho >= 1.0) return;
  if (rho < 0.0) {
    throw std::invalid_argument("age_csi: correlation must be in [0, 1]");
  }
  const double innov = std::sqrt(1.0 - rho * rho);
  for (std::size_t r = 0; r < h.rows(); ++r) {
    for (std::size_t c = 0; c < h.cols(); ++c) {
      cplx& v = h(r, c);
      // Innovation power matched to the entry's own power: the link
      // budget (mean |h|^2) is preserved while the realization drifts.
      const cplx e = rng.cgaussian(std::norm(v));
      v = rho * v + innov * e;
    }
  }
}

void quantize_csi(CMatrix& h, unsigned bits) {
  if (bits == 0) return;
  if (bits < 2) {
    throw std::invalid_argument("quantize_csi: need >= 2 bits (or 0 = off)");
  }
  const double m = h.max_abs();
  if (m <= 0.0) return;
  const double levels = std::ldexp(1.0, static_cast<int>(bits) - 1) - 1.0;
  const double step = m / levels;
  for (std::size_t r = 0; r < h.rows(); ++r) {
    for (std::size_t c = 0; c < h.cols(); ++c) {
      const cplx v = h(r, c);
      const double re =
          std::clamp(std::round(v.real() / step), -levels, levels) * step;
      const double im =
          std::clamp(std::round(v.imag() / step), -levels, levels) * step;
      h(r, c) = cplx{re, im};
    }
  }
}

void impair_csi(CMatrix& h, const CsiImpairment& imp, Rng& rng) {
  if (imp.is_null()) return;
  if (imp.staleness > 0.0) age_csi(h, imp.correlation(), rng);
  quantize_csi(h, imp.feedback_bits);
}

double csi_error_power(const CsiImpairment& imp) {
  double err = 0.0;
  if (imp.staleness > 0.0) {
    const double rho = imp.correlation();
    err += 1.0 - rho * rho;
  }
  if (imp.feedback_bits >= 2) {
    const double step =
        std::ldexp(1.0, 1 - static_cast<int>(imp.feedback_bits));
    err += step * step / 6.0;  // uniform quantizer, both real components
  }
  return err;
}

}  // namespace jmb::phy
