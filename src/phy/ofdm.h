// OFDM symbol assembly: subcarrier mapping, IFFT + cyclic prefix on the
// transmit side; FFT + subcarrier extraction on the receive side.
//
// Each operation exists twice: an allocating convenience API (below) and a
// `_into` span kernel that writes caller-owned buffers (typically from the
// per-trial jmb::Workspace) without touching the heap. The convenience
// APIs are thin wrappers over the kernels, so there is a single
// implementation of the arithmetic and results are bitwise identical.
#pragma once

#include <span>

#include "dsp/types.h"
#include "phy/params.h"

namespace jmb::phy {

/// Place 48 data symbols and the 4 pilots (with per-symbol polarity) onto
/// logical subcarriers, returning the kNfft-point frequency-domain symbol.
[[nodiscard]] cvec map_subcarriers(const cvec& data48,
                                   std::size_t symbol_index);

/// IFFT + cyclic prefix: kNfft-point frequency symbol -> kSymbolLen samples.
[[nodiscard]] cvec ofdm_modulate(const cvec& freq_symbol);

/// Strip CP and FFT: kSymbolLen samples -> kNfft frequency-domain values.
/// `cp_skip` positions the FFT window inside the CP (a small back-off makes
/// the receiver robust to +-few-sample timing error at the cost of a phase
/// ramp the channel estimate absorbs).
[[nodiscard]] cvec ofdm_demodulate(const cvec& time_symbol,
                                   std::size_t cp_skip = kCpLen);

/// Extract the 48 data subcarriers from a frequency-domain symbol.
[[nodiscard]] cvec extract_data(const cvec& freq_symbol);

/// Extract the 4 pilot subcarriers.
[[nodiscard]] cvec extract_pilots(const cvec& freq_symbol);

// ---- Allocation-free span kernels ----------------------------------------

/// map_subcarriers() into a caller-owned kNfft span (zeroed here first).
void map_subcarriers_into(std::span<const cplx> data48,
                          std::size_t symbol_index, std::span<cplx> freq);

/// ofdm_modulate() into a caller-owned kSymbolLen span. The IFFT runs in
/// place inside `out`, so no scratch buffer is needed. `out` must not
/// alias `freq_symbol`.
void ofdm_modulate_into(std::span<const cplx> freq_symbol,
                        std::span<cplx> out);

/// ofdm_demodulate() into a caller-owned kNfft span. `freq` must not
/// alias `time_symbol`.
void ofdm_demodulate_into(std::span<const cplx> time_symbol,
                          std::span<cplx> freq, std::size_t cp_skip = kCpLen);

/// extract_data() into a caller-owned kNumDataCarriers span.
void extract_data_into(std::span<const cplx> freq_symbol,
                       std::span<cplx> out);

/// extract_pilots() into a caller-owned kNumPilots span.
void extract_pilots_into(std::span<const cplx> freq_symbol,
                         std::span<cplx> out);

}  // namespace jmb::phy
