// OFDM symbol assembly: subcarrier mapping, IFFT + cyclic prefix on the
// transmit side; FFT + subcarrier extraction on the receive side.
#pragma once

#include "dsp/types.h"
#include "phy/params.h"

namespace jmb::phy {

/// Place 48 data symbols and the 4 pilots (with per-symbol polarity) onto
/// logical subcarriers, returning the kNfft-point frequency-domain symbol.
[[nodiscard]] cvec map_subcarriers(const cvec& data48, std::size_t symbol_index);

/// IFFT + cyclic prefix: kNfft-point frequency symbol -> kSymbolLen samples.
[[nodiscard]] cvec ofdm_modulate(const cvec& freq_symbol);

/// Strip CP and FFT: kSymbolLen samples -> kNfft frequency-domain values.
/// `cp_skip` positions the FFT window inside the CP (a small back-off makes
/// the receiver robust to +-few-sample timing error at the cost of a phase
/// ramp the channel estimate absorbs).
[[nodiscard]] cvec ofdm_demodulate(const cvec& time_symbol, std::size_t cp_skip = kCpLen);

/// Extract the 48 data subcarriers from a frequency-domain symbol.
[[nodiscard]] cvec extract_data(const cvec& freq_symbol);

/// Extract the 4 pilot subcarriers.
[[nodiscard]] cvec extract_pilots(const cvec& freq_symbol);

}  // namespace jmb::phy
