#include "phy/chanest.h"

#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "linalg/pinv.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "phy/workspace.h"

namespace jmb::phy {

namespace {

// Iterate the 52 used logical subcarriers.
template <typename F>
void for_used(F&& f) {
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    f(k);
  }
}

}  // namespace

double ChannelEstimate::mean_gain_power() const {
  double acc = 0.0;
  int n = 0;
  for_used([&](int k) {
    acc += std::norm(h[bin_of(k)]);
    ++n;
  });
  return n ? acc / n : 0.0;
}

double ChannelEstimate::mean_phase() const {
  cplx acc{};
  for_used([&](int k) { acc += h[bin_of(k)]; });
  return std::arg(acc);
}

void ChannelEstimate::rotate(double phi) {
  const cplx r = phasor(phi);
  for (cplx& v : h) v *= r;
}

cplx ChannelEstimate::mean_ratio(const ChannelEstimate& other) const {
  // Power-weighted mean of h_this / h_other over used subcarriers:
  // sum(h_this * conj(h_other)) / sum(|h_other|^2). Robust to per-
  // subcarrier noise, exact when the true ratio is a common rotation.
  cplx num{};
  double den = 0.0;
  for_used([&](int k) {
    num += h[bin_of(k)] * std::conj(other.h[bin_of(k)]);
    den += std::norm(other.h[bin_of(k)]);
  });
  if (den < 1e-18) return {0.0, 0.0};
  return num / den;
}

ChannelEstimate estimate_from_ltf(const cvec& freq_symbol) {
  if (freq_symbol.size() != kNfft) {
    throw std::invalid_argument("estimate_from_ltf: need kNfft values");
  }
  const cvec& l = ltf_freq();
  ChannelEstimate est;
  for_used([&](int k) {
    const std::size_t b = bin_of(k);
    est.h[b] = freq_symbol[b] / l[b];  // LTF entries are +-1
  });
  return est;
}

ChannelEstimate average_estimates(
    const std::vector<ChannelEstimate>& estimates) {
  if (estimates.empty()) {
    throw std::invalid_argument("average_estimates: empty input");
  }
  ChannelEstimate avg;
  for (const auto& e : estimates) {
    for (std::size_t b = 0; b < kNfft; ++b) avg.h[b] += e.h[b];
  }
  const double inv = 1.0 / static_cast<double>(estimates.size());
  for (cplx& v : avg.h) v *= inv;
  return avg;
}

CMatrix make_denoise_projection(std::size_t support) {
  if (support == 0 || support > 52) {
    throw std::invalid_argument("denoise_time_support: support must be 1..52");
  }
  // Basis: B(row k, col l) = e^{-j 2 pi k l / 64} over the 52 used
  // subcarriers; projection matrix P = B (B^H B)^{-1} B^H.
  CMatrix b(52, support);
  std::size_t row = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    for (std::size_t l = 0; l < support; ++l) {
      b(row, l) = phasor(-kTwoPi * static_cast<double>(k) *
                         static_cast<double>(l) / 64.0);
    }
    ++row;
  }
  const auto b_pinv = pinv(b);
  if (!b_pinv) throw std::logic_error("denoise_time_support: basis singular");
  return b * (*b_pinv);
}

namespace {

// Gather the 52 used gains, project, and scatter the result back — the
// shared back half of both denoise_time_support overloads.
ChannelEstimate project_estimate(const ChannelEstimate& est,
                                 const CMatrix& projection, cvec& v,
                                 cvec& smooth) {
  v.resize(52);
  std::size_t row = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    v[row++] = est.h[bin_of(k)];
  }
  smooth.resize(52);
  multiply_into(projection, v, smooth);
  ChannelEstimate out;
  row = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    out.h[bin_of(k)] = smooth[row++];
  }
  return out;
}

}  // namespace

ChannelEstimate denoise_time_support(const ChannelEstimate& est,
                                     std::size_t support) {
  // Process-wide cache for workspace-less callers, guarded by a mutex:
  // trials run concurrently under engine::TrialRunner. std::map nodes are
  // stable, so the reference stays valid after the lock is released. The
  // hot path passes a Workspace instead and never takes this lock.
  static std::mutex cache_mu;
  static std::map<std::size_t, CMatrix> cache;
  const CMatrix* projection = nullptr;
  {
    std::lock_guard<std::mutex> lock(cache_mu);
    auto it = cache.find(support);
    if (it == cache.end()) {
      it = cache.emplace(support, make_denoise_projection(support)).first;
    }
    projection = &it->second;
  }
  cvec v;
  cvec smooth;
  return project_estimate(est, *projection, v, smooth);
}

ChannelEstimate denoise_time_support(const ChannelEstimate& est, Workspace& ws,
                                     std::size_t support) {
  return project_estimate(est, ws.denoise_projection(support), ws.denoise_v,
                          ws.denoise_smooth);
}

PilotPhase track_pilots(const cvec& freq_symbol, const ChannelEstimate& chan,
                        std::size_t symbol_index) {
  const auto& pc = pilot_carriers();
  const auto& pb = pilot_base();
  const double pol = pilot_polarity(symbol_index);

  // For each pilot, the residual rotation r_i = y_i / (h_i * p_i).
  // Fit phase(r_i) ~ common + slope * k_i by weighted least squares with
  // weights |h_i|^2 (noisier pilots count less). Phases are extracted via
  // products to stay wrap-safe for the small residuals we track.
  std::array<cplx, kNumPilots> r{};
  std::array<double, kNumPilots> w{};
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    const std::size_t b = bin_of(pc[i]);
    const cplx href = chan.h[b] * (pol * pb[i]);
    w[i] = std::norm(chan.h[b]);
    r[i] = freq_symbol[b] * std::conj(href);  // |href|^2 * e^{j residual}
  }
  // Wrap-safe anchor: de-rotate by the circular mean, then jointly fit
  // psi_i ~ a + b*k_i by weighted least squares, and fold the anchor back.
  cplx acc{};
  for (std::size_t i = 0; i < kNumPilots; ++i) acc += r[i];
  const double theta0 = std::arg(acc);

  double sw = 0.0, sk = 0.0, skk = 0.0, sp = 0.0, skp = 0.0;
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    const double psi = std::arg(r[i] * phasor(-theta0));
    const double k = static_cast<double>(pc[i]);
    sw += w[i];
    sk += w[i] * k;
    skk += w[i] * k * k;
    sp += w[i] * psi;
    skp += w[i] * k * psi;
  }
  const double den = sw * skk - sk * sk;
  if (den < 1e-18) return {theta0, 0.0};
  const double slope = (sw * skp - sk * sp) / den;
  const double a = (sp * skk - sk * skp) / den;
  return {wrap_phase(theta0 + a), slope};
}

void apply_phase_correction(cvec& data48, const PilotPhase& pp) {
  if (data48.size() != kNumDataCarriers) {
    throw std::invalid_argument("apply_phase_correction: need 48 symbols");
  }
  const auto& dc = data_carriers();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    const double phi = pp.common + pp.slope * static_cast<double>(dc[i]);
    data48[i] *= phasor(-phi);
  }
}

}  // namespace jmb::phy
