// Rate-1/2 convolutional encoder (K=7, generators 133/171 octal) with the
// 802.11 puncturing patterns for rates 2/3 and 3/4.
#pragma once

#include <span>

#include "phy/params.h"
#include "phy/scrambler.h"  // BitVec

namespace jmb::phy {

/// Constraint length and state count of the 802.11 code.
constexpr unsigned kConstraintLen = 7;
constexpr unsigned kNumStates = 1u << (kConstraintLen - 1);  // 64

/// Generator polynomials (octal 133 and 171).
constexpr unsigned kGenA = 0b1011011;
constexpr unsigned kGenB = 0b1111001;

/// Encode at mother rate 1/2: two output bits (A then B) per input bit.
/// The encoder starts from the all-zero state; callers append 6 zero tail
/// bits to terminate the trellis (the framer does this).
[[nodiscard]] BitVec conv_encode(const BitVec& bits);

/// Puncture a rate-1/2 coded stream to the target rate.
/// 2/3 drops every second B bit; 3/4 drops B2 and A3 of each 6-bit group.
[[nodiscard]] BitVec puncture(const BitVec& coded, CodeRate rate);

/// Number of coded bits after puncturing `n_in` information bits.
[[nodiscard]] std::size_t punctured_length(std::size_t n_in, CodeRate rate);

/// Re-insert erasures (LLR 0) where puncturing removed bits, returning a
/// soft stream aligned with the mother code. `llr.size()` must equal
/// punctured_length(n_info, rate).
[[nodiscard]] std::vector<double> depuncture(const std::vector<double>& llr,
                                             std::size_t n_info, CodeRate rate);

/// depuncture() into a reused vector (resized/zeroed in place;
/// allocation-free once the buffer is warm).
void depuncture_into(std::span<const double> llr, std::size_t n_info,
                     CodeRate rate, std::vector<double>& out);

}  // namespace jmb::phy
