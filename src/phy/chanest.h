// Per-subcarrier least-squares channel estimation from LTF symbols, and the
// pilot-based phase tracker that follows residual CFO/SFO through a packet.
#pragma once

#include <array>
#include <optional>

#include "dsp/types.h"
#include "linalg/cmatrix.h"
#include "phy/params.h"

namespace jmb {
class Workspace;
}

namespace jmb::phy {

/// Frequency response on the 52 used subcarriers, indexed by FFT bin.
/// Unused bins are 0. Invariant: h.size() == kNfft.
struct ChannelEstimate {
  cvec h = cvec(kNfft);

  [[nodiscard]] cplx at(int logical) const { return h[bin_of(logical)]; }
  void set(int logical, cplx v) { h[bin_of(logical)] = v; }

  /// Mean gain power over the used subcarriers.
  [[nodiscard]] double mean_gain_power() const;

  /// Average phase (power-weighted) over used subcarriers — the scalar
  /// phase JMB slaves compare between h_lead(t) and h_lead(0).
  [[nodiscard]] double mean_phase() const;

  /// Rotate every subcarrier by e^{j phi}.
  void rotate(double phi);

  /// Per-subcarrier complex ratio (this / other) averaged over used
  /// subcarriers — the direct phase-offset measurement of Section 5.2.
  [[nodiscard]] cplx mean_ratio(const ChannelEstimate& other) const;
};

/// LS estimate from one 64-sample LTF FFT: divide by the known sequence.
[[nodiscard]] ChannelEstimate estimate_from_ltf(const cvec& freq_symbol);

/// Average of per-symbol estimates (reduces noise ~ 1/sqrt(n)).
[[nodiscard]] ChannelEstimate average_estimates(
    const std::vector<ChannelEstimate>& estimates);

/// Denoise an estimate by least-squares projection onto a short
/// time-domain support: the true channel has only a few taps (plus the
/// FFT-window back-off and fractional delays), so restricting the
/// impulse response to `support` samples removes (52 - support)/52 of
/// the estimation noise without biasing real multipath.
[[nodiscard]] ChannelEstimate denoise_time_support(const ChannelEstimate& est,
                                                   std::size_t support = 20);

/// denoise_time_support() using the per-trial workspace: the projection
/// matrix comes from the workspace's lock-free cache and the intermediates
/// live in workspace buffers. Bitwise-identical to the overload above.
[[nodiscard]] ChannelEstimate denoise_time_support(const ChannelEstimate& est,
                                                   Workspace& ws,
                                                   std::size_t support = 20);

/// Build the least-squares projection matrix P = B (B^H B)^{-1} B^H that
/// restricts a 52-subcarrier estimate to `support` time-domain taps.
/// Shared by the legacy process-wide cache and Workspace's per-trial one.
[[nodiscard]] CMatrix make_denoise_projection(std::size_t support);

/// Pilot-based tracking of common phase error (residual CFO) and phase
/// slope across subcarriers (timing drift / SFO), per OFDM symbol.
struct PilotPhase {
  double common = 0.0;  ///< radians applied to all subcarriers
  double slope = 0.0;   ///< radians per subcarrier index
};

/// Estimate CPE + slope from the received pilots of one equalized symbol.
/// `freq_symbol` is the raw FFT output; `chan` the channel estimate;
/// `symbol_index` selects the pilot polarity.
[[nodiscard]] PilotPhase track_pilots(const cvec& freq_symbol,
                                      const ChannelEstimate& chan,
                                      std::size_t symbol_index);

/// Undo a PilotPhase on the 48 extracted data symbols (indexed in
/// data_carriers() order).
void apply_phase_correction(cvec& data48, const PilotPhase& pp);

}  // namespace jmb::phy
