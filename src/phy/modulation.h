// Gray-coded constellation mapping and soft demapping (802.11a 17.3.5.8).
#pragma once

#include <span>
#include <vector>

#include "dsp/types.h"
#include "phy/params.h"
#include "phy/scrambler.h"  // BitVec

namespace jmb::phy {

/// All points of a constellation (normalized to unit average energy),
/// indexed by the integer whose bits are the mapped bit group (MSB first).
[[nodiscard]] const cvec& constellation(Modulation m);

/// Per-constellation normalization factor K_mod (1, 1/sqrt2, 1/sqrt10,
/// 1/sqrt42).
[[nodiscard]] double kmod(Modulation m);

/// Map bits (size divisible by bits_per_symbol) to symbols, MSB first.
[[nodiscard]] cvec modulate(const BitVec& bits, Modulation m);

/// Nearest-point hard decision back to bits.
[[nodiscard]] BitVec demodulate_hard(const cvec& symbols, Modulation m);

/// Exact max-log LLRs: for each bit, llr = (min_{b=1} d^2 - min_{b=0} d^2)
/// / noise_var, positive when bit 0 is more likely — matching the Viterbi
/// decoder's convention. `noise_var` scales confidence; per-symbol noise
/// variances allow per-subcarrier weighting after equalization.
[[nodiscard]] std::vector<double> demodulate_soft(const cvec& symbols,
                                                  Modulation m,
                                                  double noise_var);
[[nodiscard]] std::vector<double> demodulate_soft(
    const cvec& symbols, Modulation m, const rvec& noise_var_per_symbol);

// ---- Allocation-free kernels (workspace-owned outputs) -------------------
// The allocating APIs above wrap these, so the arithmetic has a single
// implementation and results are bitwise identical.

/// modulate() into a span of exactly bits.size()/bits_per_symbol entries.
void modulate_into(std::span<const std::uint8_t> bits, Modulation m,
                   std::span<cplx> out);

/// demodulate_hard() into a reused vector (cleared first; capacity kept,
/// so the call is allocation-free once the buffer is warm).
void demodulate_hard_into(std::span<const cplx> symbols, Modulation m,
                          BitVec& out);

/// demodulate_soft() into a reused vector (cleared first).
void demodulate_soft_into(std::span<const cplx> symbols, Modulation m,
                          std::span<const double> noise_var_per_symbol,
                          std::vector<double>& out);

}  // namespace jmb::phy
