#include "phy/scrambler.h"

#include <stdexcept>

namespace jmb::phy {

Scrambler::Scrambler(unsigned seed) : state_(seed & 0x7F) {
  if (state_ == 0) {
    throw std::invalid_argument(
        "Scrambler: seed must be a nonzero 7-bit value");
  }
}

std::uint8_t Scrambler::next_bit() {
  // Feedback is x7 xor x4 (bit 6 xor bit 3 of the register).
  const unsigned fb = ((state_ >> 6) ^ (state_ >> 3)) & 1u;
  state_ = ((state_ << 1) | fb) & 0x7F;
  return static_cast<std::uint8_t>(fb);
}

BitVec Scrambler::scramble(const BitVec& bits) {
  BitVec out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((bits[i] ^ next_bit()) & 1u);
  }
  return out;
}

BitVec scramble_bits(const BitVec& bits, unsigned seed) {
  Scrambler s(seed);
  return s.scramble(bits);
}

}  // namespace jmb::phy
