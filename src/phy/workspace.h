// Per-trial scratch workspace: cached FFT plans plus every reusable buffer
// the frame hot path needs, so steady-state frames run without touching
// the heap.
//
// Ownership model (see DESIGN.md "Memory model"):
//  - One Workspace per engine::TrialRunner worker, owned by SystemState
//    and threaded through the pipeline stages — never shared across
//    threads, so access is lock-free by construction.
//  - Buffers are named for their hot-path role and reach steady-state
//    capacity after the first frame of a given shape; later frames reuse
//    the capacity (vectors are resized/cleared, never reallocated).
//  - Everything here is scratch: no buffer carries state between calls,
//    so using a workspace changes *where* intermediates live but never
//    their values — physics outputs are bitwise identical with or
//    without one, and for any JMB_THREADS.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "dsp/fft_plan.h"
#include "dsp/types.h"
#include "linalg/pinv.h"
#include "phy/viterbi.h"
#include "simd/aligned.h"

namespace jmb {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Cached FFT plan for size n (built on first use, then allocation-free).
  const FftPlan& fft_plan(std::size_t n);

  /// Per-workspace projection matrix for phy::denoise_time_support — the
  /// lock-free replacement for the old process-wide mutex-guarded cache.
  const CMatrix& denoise_projection(std::size_t support);

  // ---- linalg scratch ----------------------------------------------------
  PinvScratch pinv;

  // ---- receiver scratch (phy::Receiver::set_workspace) -------------------
  cvec corrected;    ///< CFO-corrected copy of the RX buffer
  cvec win_a;        ///< first LTF FFT window
  cvec win_b;        ///< second LTF FFT window
  cvec sym_freq;     ///< per-symbol FFT window
  cvec data48;       ///< equalized data subcarriers
  rvec noise48;      ///< post-equalization noise variance per carrier
  phy::BitVec hard_bits;  ///< EVM hard decisions
  cvec nearest;      ///< EVM re-modulated constellation points
  std::vector<std::vector<double>> llr_per_symbol;
  std::vector<double> llr_concat;  ///< deinterleaved LLRs, all symbols
  std::vector<double> llr_dei;     ///< one symbol's deinterleaved LLRs
  std::vector<double> llr_mother;  ///< depunctured mother-rate LLRs
  phy::ViterbiScratch viterbi;
  phy::BitVec decoded_bits;

  // ---- channel-estimation scratch ----------------------------------------
  cvec denoise_v;       ///< 52 used-subcarrier gains
  cvec denoise_smooth;  ///< projected (denoised) gains

  // ---- transmit / synthesis scratch --------------------------------------
  // Cache-line aligned: these are the buffers the subcarrier-batched SIMD
  // kernels stream through, so vector loads never split cache lines.
  simd::acvec spec;      ///< kNfft frequency-domain accumulation buffer
  simd::acvec sym_time;  ///< kSymbolLen modulated symbol

  // ---- measurement scratch ------------------------------------------------
  cvec meas_win;   ///< per-round CFO-corrected LTF window
  cvec meas_freq;  ///< its FFT

 private:
  std::map<std::size_t, FftPlan> plans_;
  std::map<std::size_t, CMatrix> projections_;
};

}  // namespace jmb
