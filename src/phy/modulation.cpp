#include "phy/modulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace jmb::phy {

namespace {

// Gray mapping of b bits to one PAM axis level, per 802.11a Table 17-* :
// 1 bit:  0 -> -1, 1 -> +1
// 2 bits: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3
// 3 bits: 000 -> -7, 001 -> -5, 011 -> -3, 010 -> -1,
//         110 -> +1, 111 -> +3, 101 -> +5, 100 -> +7
double gray_level(unsigned bits, unsigned nbits) {
  switch (nbits) {
    case 1:
      return bits ? 1.0 : -1.0;
    case 2: {
      static const double kMap[4] = {-3.0, -1.0, 3.0, 1.0};
      return kMap[bits & 3];
    }
    case 3: {
      static const double kMap[8] = {-7.0, -5.0, -1.0, -3.0,
                                     7.0,  5.0,  1.0,  3.0};
      return kMap[bits & 7];
    }
    default:
      throw std::logic_error("gray_level: unsupported width");
  }
}

cvec build_constellation(Modulation m) {
  const std::size_t nbits = bits_per_symbol(m);
  const std::size_t npoints = 1u << nbits;
  const double k = kmod(m);
  cvec pts(npoints);
  for (std::size_t v = 0; v < npoints; ++v) {
    if (m == Modulation::kBpsk) {
      pts[v] = cplx{gray_level(static_cast<unsigned>(v), 1) * k, 0.0};
      continue;
    }
    // First half of the bits select I, second half select Q (MSB first).
    const unsigned half = static_cast<unsigned>(nbits / 2);
    const unsigned i_bits = static_cast<unsigned>(v) >> half;
    const unsigned q_bits = static_cast<unsigned>(v) & ((1u << half) - 1);
    pts[v] = cplx{gray_level(i_bits, half) * k, gray_level(q_bits, half) * k};
  }
  return pts;
}

}  // namespace

double kmod(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1.0;
    case Modulation::kQpsk: return 1.0 / std::sqrt(2.0);
    case Modulation::kQam16: return 1.0 / std::sqrt(10.0);
    case Modulation::kQam64: return 1.0 / std::sqrt(42.0);
  }
  throw std::logic_error("kmod: bad modulation");
}

const cvec& constellation(Modulation m) {
  static const cvec kBpsk = build_constellation(Modulation::kBpsk);
  static const cvec kQpsk = build_constellation(Modulation::kQpsk);
  static const cvec kQam16 = build_constellation(Modulation::kQam16);
  static const cvec kQam64 = build_constellation(Modulation::kQam64);
  switch (m) {
    case Modulation::kBpsk: return kBpsk;
    case Modulation::kQpsk: return kQpsk;
    case Modulation::kQam16: return kQam16;
    case Modulation::kQam64: return kQam64;
  }
  throw std::logic_error("constellation: bad modulation");
}

void modulate_into(std::span<const std::uint8_t> bits, Modulation m,
                   std::span<cplx> out) {
  const std::size_t nbits = bits_per_symbol(m);
  if (bits.size() % nbits != 0) {
    throw std::invalid_argument(
        "modulate: bit count not a multiple of bits/symbol");
  }
  if (out.size() != bits.size() / nbits) {
    throw std::invalid_argument("modulate: output size mismatch");
  }
  const cvec& pts = constellation(m);
  for (std::size_t s = 0; s < out.size(); ++s) {
    unsigned v = 0;
    for (std::size_t b = 0; b < nbits; ++b) {
      v = (v << 1) | (bits[s * nbits + b] & 1u);
    }
    out[s] = pts[v];
  }
}

cvec modulate(const BitVec& bits, Modulation m) {
  cvec out(bits.size() / bits_per_symbol(m));
  modulate_into(bits, m, out);
  return out;
}

void demodulate_hard_into(std::span<const cplx> symbols, Modulation m,
                          BitVec& out) {
  const std::size_t nbits = bits_per_symbol(m);
  const cvec& pts = constellation(m);
  out.clear();
  out.reserve(symbols.size() * nbits);
  for (const cplx& y : symbols) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < pts.size(); ++v) {
      const double d = std::norm(y - pts[v]);
      if (d < best_d) {
        best_d = d;
        best = v;
      }
    }
    for (std::size_t b = nbits; b-- > 0;) {
      out.push_back(static_cast<std::uint8_t>((best >> b) & 1u));
    }
  }
}

BitVec demodulate_hard(const cvec& symbols, Modulation m) {
  BitVec out;
  demodulate_hard_into(symbols, m, out);
  return out;
}

void demodulate_soft_into(std::span<const cplx> symbols, Modulation m,
                          std::span<const double> noise_var_per_symbol,
                          std::vector<double>& out) {
  if (symbols.size() != noise_var_per_symbol.size()) {
    throw std::invalid_argument("demodulate_soft: noise vector size mismatch");
  }
  const std::size_t nbits = bits_per_symbol(m);
  const cvec& pts = constellation(m);
  out.clear();
  out.reserve(symbols.size() * nbits);
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const cplx y = symbols[s];
    const double nv = std::max(noise_var_per_symbol[s], 1e-12);
    for (std::size_t b = 0; b < nbits; ++b) {
      const std::size_t bit_pos = nbits - 1 - b;  // MSB first
      double d0 = std::numeric_limits<double>::infinity();
      double d1 = std::numeric_limits<double>::infinity();
      for (std::size_t v = 0; v < pts.size(); ++v) {
        const double d = std::norm(y - pts[v]);
        if ((v >> bit_pos) & 1u) {
          d1 = std::min(d1, d);
        } else {
          d0 = std::min(d0, d);
        }
      }
      out.push_back((d1 - d0) / nv);
    }
  }
}

std::vector<double> demodulate_soft(const cvec& symbols, Modulation m,
                                    const rvec& noise_var_per_symbol) {
  std::vector<double> llr;
  demodulate_soft_into(symbols, m, noise_var_per_symbol, llr);
  return llr;
}

std::vector<double> demodulate_soft(const cvec& symbols, Modulation m,
                                    double noise_var) {
  return demodulate_soft(symbols, m, rvec(symbols.size(), noise_var));
}

}  // namespace jmb::phy
