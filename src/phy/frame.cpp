#include "phy/frame.h"

#include <stdexcept>

#include "phy/convcode.h"
#include "phy/interleaver.h"
#include "phy/modulation.h"
#include "phy/viterbi.h"
#include "phy/workspace.h"

namespace jmb::phy {

namespace {

constexpr std::size_t kServiceBits = 16;
constexpr std::size_t kTailBits = 6;
constexpr Mcs kSignalMcs{Modulation::kBpsk, CodeRate::kHalf};

}  // namespace

std::size_t n_data_symbols(std::size_t length, const Mcs& mcs) {
  const std::size_t payload_bits = kServiceBits + 8 * length + kTailBits;
  const std::size_t dbps = mcs.n_dbps();
  return (payload_bits + dbps - 1) / dbps;
}

cvec build_signal_symbol(const SignalField& sig) {
  if (sig.length == 0 || sig.length > 4095) {
    throw std::invalid_argument("build_signal_symbol: length must be 1..4095");
  }
  BitVec bits(24, 0);
  const unsigned rate_bits = rate_field_bits(sig.rate_index);
  // RATE: R1..R4 transmitted first; R1 is the MSB of the field value.
  for (int b = 0; b < 4; ++b) {
    bits[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>((rate_bits >> (3 - b)) & 1u);
  }
  // bits[4] reserved = 0. LENGTH LSB first in bits 5..16.
  for (int b = 0; b < 12; ++b) {
    bits[5 + static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>((sig.length >> b) & 1u);
  }
  // Even parity over bits 0..16 into bit 17; bits 18..23 are zero tail.
  std::uint8_t parity = 0;
  for (std::size_t i = 0; i < 17; ++i) parity ^= bits[i];
  bits[17] = parity;

  const BitVec coded = conv_encode(bits);  // 48 bits, rate 1/2, no puncture
  const BitVec inter = interleave(coded, kSignalMcs);
  return modulate(inter, Modulation::kBpsk);
}

std::optional<SignalField> decode_signal_symbol(const cvec& data48,
                                                double noise_var) {
  if (data48.size() != kNumDataCarriers) {
    throw std::invalid_argument("decode_signal_symbol: need 48 symbols");
  }
  const std::vector<double> llr =
      demodulate_soft(data48, Modulation::kBpsk, noise_var);
  const std::vector<double> dei = deinterleave_soft(llr, kSignalMcs);
  const BitVec bits = viterbi_decode(dei, 24, /*terminated=*/true);

  std::uint8_t parity = 0;
  for (std::size_t i = 0; i < 17; ++i) parity ^= bits[i];
  if (parity != bits[17]) return std::nullopt;

  unsigned rate_bits = 0;
  for (int b = 0; b < 4; ++b) {
    rate_bits = (rate_bits << 1) | bits[static_cast<std::size_t>(b)];
  }
  std::size_t length = 0;
  for (int b = 0; b < 12; ++b) {
    length |=
        static_cast<std::size_t>(bits[5 + static_cast<std::size_t>(b)] & 1u)
        << b;
  }
  if (length == 0) return std::nullopt;
  try {
    return SignalField{rate_index_from_field(rate_bits), length};
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

std::vector<cvec> encode_psdu(const ByteVec& psdu, const Mcs& mcs,
                              unsigned scrambler_seed) {
  if (psdu.empty() || psdu.size() > 4095) {
    throw std::invalid_argument("encode_psdu: PSDU must be 1..4095 bytes");
  }
  const std::size_t n_sym = n_data_symbols(psdu.size(), mcs);
  const std::size_t total_bits = n_sym * mcs.n_dbps();

  // SERVICE (16 zero bits: 7 scrambler-init + 9 reserved) + PSDU + tail +
  // pad, then scramble; tail positions are forced back to zero so the
  // decoder's trellis terminates (17.3.5.2/17.3.5.3).
  BitVec data(total_bits, 0);
  const BitVec psdu_bits = bytes_to_bits(psdu);
  std::copy(psdu_bits.begin(), psdu_bits.end(), data.begin() + kServiceBits);
  BitVec scrambled = scramble_bits(data, scrambler_seed);
  const std::size_t tail_at = kServiceBits + psdu_bits.size();
  for (std::size_t i = 0; i < kTailBits; ++i) scrambled[tail_at + i] = 0;

  const BitVec coded = puncture(conv_encode(scrambled), mcs.code_rate);
  if (coded.size() != n_sym * mcs.n_cbps()) {
    throw std::logic_error("encode_psdu: coded size mismatch");
  }

  std::vector<cvec> symbols;
  symbols.reserve(n_sym);
  const std::size_t cbps = mcs.n_cbps();
  for (std::size_t s = 0; s < n_sym; ++s) {
    BitVec chunk(coded.begin() + static_cast<std::ptrdiff_t>(s * cbps),
                 coded.begin() + static_cast<std::ptrdiff_t>((s + 1) * cbps));
    symbols.push_back(modulate(interleave(chunk, mcs), mcs.modulation));
  }
  return symbols;
}

std::optional<ByteVec> decode_psdu(
    const std::vector<std::vector<double>>& llr_per_symbol,
    const SignalField& sig, Workspace& ws) {
  const Mcs& mcs = rate_set()[sig.rate_index];
  if (llr_per_symbol.size() != n_data_symbols(sig.length, mcs)) {
    return std::nullopt;
  }
  std::vector<double>& llr = ws.llr_concat;
  llr.clear();
  llr.reserve(llr_per_symbol.size() * mcs.n_cbps());
  for (const auto& sym : llr_per_symbol) {
    if (sym.size() != mcs.n_cbps()) return std::nullopt;
    deinterleave_soft_into(sym, mcs, ws.llr_dei);
    llr.insert(llr.end(), ws.llr_dei.begin(), ws.llr_dei.end());
  }

  const std::size_t total_bits = llr_per_symbol.size() * mcs.n_dbps();
  depuncture_into(llr, total_bits, mcs.code_rate, ws.llr_mother);
  // The scrambled tail was zeroed, but intermediate pad/tail handling means
  // the trellis terminates only at the very end of the padded stream; decode
  // unterminated-tolerant (terminated=true falls back internally if needed).
  viterbi_decode_into(ws.llr_mother, total_bits, /*terminated=*/false,
                      ws.viterbi, ws.decoded_bits);
  const BitVec& scrambled = ws.decoded_bits;

  // Recover the scrambler seed: SERVICE bits were zeros, so the first 7
  // scrambled bits equal the scrambling sequence. Search the 127 seeds.
  unsigned seed = 0;
  for (unsigned cand = 1; cand < 128; ++cand) {
    Scrambler s(cand);
    bool match = true;
    for (std::size_t i = 0; i < 7; ++i) {
      if (s.next_bit() != scrambled[i]) {
        match = false;
        break;
      }
    }
    if (match) {
      seed = cand;
      break;
    }
  }
  if (seed == 0) return std::nullopt;

  BitVec descrambled = scramble_bits(scrambled, seed);
  const std::size_t first = kServiceBits;
  const std::size_t last = first + 8 * sig.length;
  if (last > descrambled.size()) return std::nullopt;
  BitVec psdu_bits(descrambled.begin() + static_cast<std::ptrdiff_t>(first),
                   descrambled.begin() + static_cast<std::ptrdiff_t>(last));
  return bits_to_bytes(psdu_bits);
}

std::optional<ByteVec> decode_psdu(
    const std::vector<std::vector<double>>& llr_per_symbol,
    const SignalField& sig) {
  Workspace ws;
  return decode_psdu(llr_per_symbol, sig, ws);
}

}  // namespace jmb::phy
