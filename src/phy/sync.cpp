#include "phy/sync.h"

#include <algorithm>
#include <cmath>

#include "phy/preamble.h"

namespace jmb::phy {

std::optional<Detection> detect_packet(const cvec& rx, std::size_t search_from,
                                       double threshold) {
  // Schmidl&Cox-style metric over a 32-sample window at lag 16.
  constexpr std::size_t kLag = 16;
  constexpr std::size_t kWin = 32;
  if (rx.size() < search_from + kWin + kLag + 1) return std::nullopt;

  const std::size_t last = rx.size() - kWin - kLag;
  double best_metric = 0.0;
  std::size_t best_pos = 0;
  bool in_plateau = false;
  std::size_t plateau_start = 0;
  for (std::size_t d = search_from; d < last; ++d) {
    cplx corr{};
    double power = 0.0;
    for (std::size_t k = 0; k < kWin; ++k) {
      corr += std::conj(rx[d + k]) * rx[d + k + kLag];
      power += std::norm(rx[d + k + kLag]);
    }
    if (power < 1e-12) continue;
    const double m = std::abs(corr) / power;
    if (m > threshold && power > 1e-9) {
      if (!in_plateau) {
        in_plateau = true;
        plateau_start = d;
        best_metric = m;
        best_pos = d;
      } else if (m > best_metric) {
        best_metric = m;
        best_pos = d;
      }
      // A genuine STF plateau is ~128 samples; once we have seen 96 we can
      // report the plateau start as the packet start.
      if (d - plateau_start > 96) {
        return Detection{plateau_start, best_metric};
      }
    } else {
      in_plateau = false;
    }
  }
  if (in_plateau) return Detection{plateau_start, best_metric};
  (void)best_pos;
  return std::nullopt;
}

namespace {

double cfo_from_lag(const cvec& x, std::size_t lag, std::size_t n_terms,
                    double sample_rate_hz) {
  cplx acc{};
  for (std::size_t k = 0; k < n_terms; ++k) {
    acc += std::conj(x[k]) * x[k + lag];
  }
  // x[k+lag] = x[k] e^{j 2 pi f lag / fs}  =>  f = arg(acc) fs / (2 pi lag).
  return std::arg(acc) * sample_rate_hz / (kTwoPi * static_cast<double>(lag));
}

}  // namespace

double coarse_cfo_hz(const cvec& stf, double sample_rate_hz) {
  constexpr std::size_t kLag = 16;
  const std::size_t n = std::min<std::size_t>(stf.size() - kLag, 128);
  return cfo_from_lag(stf, kLag, n, sample_rate_hz);
}

double fine_cfo_hz(const cvec& ltf64x2, double sample_rate_hz) {
  constexpr std::size_t kLag = 64;
  if (ltf64x2.size() < 2 * kLag) return 0.0;
  return cfo_from_lag(ltf64x2, kLag, kLag, sample_rate_hz);
}

std::optional<std::size_t> locate_ltf(const cvec& rx, std::size_t from,
                                      std::size_t to) {
  const cvec& ref = ltf_symbol_time();
  if (rx.size() < ref.size() || from >= rx.size()) return std::nullopt;
  to = std::min(to, rx.size() - ref.size());
  if (from >= to) return std::nullopt;

  const double ref_energy = energy(ref);
  double best = 0.0;
  std::size_t best_pos = from;
  for (std::size_t d = from; d < to; ++d) {
    cplx corr{};
    double local = 0.0;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      corr += std::conj(ref[k]) * rx[d + k];
      local += std::norm(rx[d + k]);
    }
    if (local < 1e-12) continue;
    const double m = std::norm(corr) / (local * ref_energy);
    if (m > best) {
      best = m;
      best_pos = d;
    }
  }
  if (best < 0.2) return std::nullopt;  // nothing LTF-like in the window
  return best_pos;
}

namespace {

// STF periodicity (lag-16 autocorrelation magnitude) over [start, start+n).
double stf_periodicity(const cvec& rx, std::size_t start, std::size_t n) {
  if (start + n + 16 > rx.size()) return 0.0;
  cplx corr{};
  double power = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    corr += std::conj(rx[start + k]) * rx[start + k + 16];
    power += std::norm(rx[start + k + 16]);
  }
  return power > 1e-12 ? std::abs(corr) / power : 0.0;
}

}  // namespace

std::optional<std::size_t> locate_ltf_earliest(const cvec& rx,
                                               std::size_t from,
                                               std::size_t to) {
  const cvec& ref = ltf_symbol_time();
  if (rx.size() < ref.size() || from >= rx.size()) return std::nullopt;
  to = std::min(to, rx.size() - ref.size());
  if (from >= to) return std::nullopt;

  rvec metric(to - from, 0.0);
  double best = 0.0;
  for (std::size_t d = from; d < to; ++d) {
    metric[d - from] = ltf_metric_at(rx, d);
    best = std::max(best, metric[d - from]);
  }
  if (best < 0.2) return std::nullopt;
  const double thr = 0.35 * best;
  for (std::size_t i = 0; i < metric.size(); ++i) {
    if (metric[i] < thr) continue;
    // Ride the rising edge to the local peak.
    std::size_t j = i;
    while (j + 1 < metric.size() && metric[j + 1] >= metric[j]) ++j;
    const std::size_t cand = from + j;
    // Validate the sync-header signature: a second identical LTF right
    // after, and STF periodicity just before — lone channel-measurement
    // symbols and CFO blocks in JMB frames fail one of the two.
    const bool double_ltf =
        ltf_metric_at(rx, cand + 64) >= 0.5 * metric[j];
    const bool stf_before =
        cand >= 180 && stf_periodicity(rx, cand - 176, 128) > 0.35;
    if (double_ltf && stf_before) return cand;
    i = j + 32;  // skip past this peak's neighbourhood
  }
  return std::nullopt;
}

double ltf_metric_at(const cvec& rx, std::size_t pos) {
  const cvec& ref = ltf_symbol_time();
  if (pos + ref.size() > rx.size()) return 0.0;
  cplx corr{};
  double local = 0.0;
  for (std::size_t k = 0; k < ref.size(); ++k) {
    corr += std::conj(ref[k]) * rx[pos + k];
    local += std::norm(rx[pos + k]);
  }
  if (local < 1e-12) return 0.0;
  return std::norm(corr) / (local * energy(ref));
}

void correct_cfo_into(std::span<const cplx> x, double cfo_hz,
                      double sample_rate_hz, double n0, std::span<cplx> out) {
  if (out.size() != x.size()) {
    throw std::invalid_argument("correct_cfo: output size mismatch");
  }
  const double step = -kTwoPi * cfo_hz / sample_rate_hz;
  for (std::size_t n = 0; n < x.size(); ++n) {
    out[n] = x[n] * phasor(step * (static_cast<double>(n) + n0));
  }
}

cvec correct_cfo(const cvec& x, double cfo_hz, double sample_rate_hz,
                 double n0) {
  cvec out(x.size());
  correct_cfo_into(x, cfo_hz, sample_rate_hz, n0, out);
  return out;
}

}  // namespace jmb::phy
