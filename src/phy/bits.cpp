#include "phy/bits.h"

#include <algorithm>
#include <stdexcept>

namespace jmb::phy {

BitVec bytes_to_bits(const ByteVec& bytes) {
  BitVec bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t by : bytes) {
    for (int b = 0; b < 8; ++b) {
      bits.push_back(static_cast<std::uint8_t>((by >> b) & 1u));
    }
  }
  return bits;
}

ByteVec bits_to_bytes(const BitVec& bits) {
  if (bits.size() % 8 != 0) {
    throw std::invalid_argument("bits_to_bytes: size not a multiple of 8");
  }
  ByteVec bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1u) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return bytes;
}

std::size_t hamming_distance(const BitVec& a, const BitVec& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t d = (a.size() > b.size() ? a.size() : b.size()) - n;
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] ^ b[i]) & 1u) ++d;
  }
  return d;
}

}  // namespace jmb::phy
