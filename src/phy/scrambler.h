// 802.11 frame-synchronous scrambler, x^7 + x^4 + 1 (17.3.5.5).
// Also generates the pilot polarity sequence (all-ones seed).
#pragma once

#include <cstdint>
#include <vector>

namespace jmb::phy {

using BitVec = std::vector<std::uint8_t>;  ///< one bit per element, 0 or 1

class Scrambler {
 public:
  /// seed: 7-bit initial shift-register state, must be nonzero.
  explicit Scrambler(unsigned seed);

  /// Next bit of the scrambling sequence (also advances the state).
  [[nodiscard]] std::uint8_t next_bit();

  /// XOR the sequence into a copy of `bits`.
  [[nodiscard]] BitVec scramble(const BitVec& bits);

 private:
  unsigned state_;
};

/// Convenience: scramble/descramble (the operation is its own inverse).
[[nodiscard]] BitVec scramble_bits(const BitVec& bits, unsigned seed);

}  // namespace jmb::phy
