#include "phy/convcode.h"

#include <bit>
#include <stdexcept>

namespace jmb::phy {

namespace {

[[nodiscard]] std::uint8_t parity7(unsigned x) {
  return static_cast<std::uint8_t>(std::popcount(x & 0x7Fu) & 1);
}

// Puncturing keep-masks over one period of the mother-coded stream.
// Rate 1/2: keep everything. Rate 2/3: period 4 (A1 B1 A2 B2), drop B2.
// Rate 3/4: period 6 (A1 B1 A2 B2 A3 B3), drop B2 and A3 (802.11a 17.3.5.6).
struct PuncturePattern {
  std::size_t period;
  std::uint8_t keep[6];
};

[[nodiscard]] PuncturePattern pattern_for(CodeRate rate) {
  switch (rate) {
    case CodeRate::kHalf: return {2, {1, 1, 0, 0, 0, 0}};
    case CodeRate::kTwoThirds: return {4, {1, 1, 1, 0, 0, 0}};
    case CodeRate::kThreeQuarters: return {6, {1, 1, 1, 0, 0, 1}};
  }
  throw std::logic_error("pattern_for: bad rate");
}

}  // namespace

BitVec conv_encode(const BitVec& bits) {
  BitVec out;
  out.reserve(bits.size() * 2);
  unsigned state = 0;  // six most recent input bits
  for (std::uint8_t b : bits) {
    const unsigned window = ((b & 1u) << 6) | state;
    out.push_back(parity7(window & kGenA));
    out.push_back(parity7(window & kGenB));
    state = window >> 1;
  }
  return out;
}

BitVec puncture(const BitVec& coded, CodeRate rate) {
  if (coded.size() % 2 != 0) {
    throw std::invalid_argument("puncture: coded stream must be even length");
  }
  const PuncturePattern p = pattern_for(rate);
  BitVec out;
  out.reserve(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (p.keep[i % p.period]) out.push_back(coded[i]);
  }
  return out;
}

std::size_t punctured_length(std::size_t n_in, CodeRate rate) {
  switch (rate) {
    case CodeRate::kHalf: return n_in * 2;
    case CodeRate::kTwoThirds:
      if (n_in % 2 != 0) {
        throw std::invalid_argument("punctured_length: 2/3 needs even n_in");
      }
      return n_in * 3 / 2;
    case CodeRate::kThreeQuarters:
      if (n_in % 3 != 0) {
        throw std::invalid_argument(
            "punctured_length: 3/4 needs n_in % 3 == 0");
      }
      return n_in * 4 / 3;
  }
  throw std::logic_error("punctured_length: bad rate");
}

void depuncture_into(std::span<const double> llr, std::size_t n_info,
                     CodeRate rate, std::vector<double>& out) {
  if (llr.size() != punctured_length(n_info, rate)) {
    throw std::invalid_argument("depuncture: LLR length mismatch");
  }
  const PuncturePattern p = pattern_for(rate);
  out.assign(n_info * 2, 0.0);  // erasure = LLR 0
  std::size_t src = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (p.keep[i % p.period]) out[i] = llr[src++];
  }
}

std::vector<double> depuncture(const std::vector<double>& llr,
                               std::size_t n_info, CodeRate rate) {
  std::vector<double> out;
  depuncture_into(llr, n_info, rate, out);
  return out;
}

}  // namespace jmb::phy
