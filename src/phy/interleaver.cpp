#include "phy/interleaver.h"

#include <algorithm>
#include <stdexcept>

namespace jmb::phy {

std::vector<std::size_t> interleave_permutation(const Mcs& mcs) {
  const std::size_t n_cbps = mcs.n_cbps();
  const std::size_t n_bpsc = mcs.n_bpsc();
  const std::size_t s = std::max<std::size_t>(n_bpsc / 2, 1);
  std::vector<std::size_t> perm(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    // First permutation (17-17).
    const std::size_t i = (n_cbps / 16) * (k % 16) + k / 16;
    // Second permutation (17-18).
    const std::size_t j =
        s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
    perm[k] = j;
  }
  return perm;
}

BitVec interleave(const BitVec& bits, const Mcs& mcs) {
  if (bits.size() != mcs.n_cbps()) {
    throw std::invalid_argument("interleave: need exactly n_cbps bits");
  }
  const auto perm = interleave_permutation(mcs);
  BitVec out(bits.size());
  for (std::size_t k = 0; k < bits.size(); ++k) out[perm[k]] = bits[k];
  return out;
}

BitVec deinterleave(const BitVec& bits, const Mcs& mcs) {
  if (bits.size() != mcs.n_cbps()) {
    throw std::invalid_argument("deinterleave: need exactly n_cbps bits");
  }
  const auto perm = interleave_permutation(mcs);
  BitVec out(bits.size());
  for (std::size_t k = 0; k < bits.size(); ++k) out[k] = bits[perm[k]];
  return out;
}

std::vector<double> deinterleave_soft(const std::vector<double>& llr,
                                      const Mcs& mcs) {
  if (llr.size() != mcs.n_cbps()) {
    throw std::invalid_argument("deinterleave_soft: need exactly n_cbps values");
  }
  const auto perm = interleave_permutation(mcs);
  std::vector<double> out(llr.size());
  for (std::size_t k = 0; k < llr.size(); ++k) out[k] = llr[perm[k]];
  return out;
}

}  // namespace jmb::phy
