#include "phy/interleaver.h"

#include <algorithm>
#include <stdexcept>

namespace jmb::phy {

std::vector<std::size_t> interleave_permutation(const Mcs& mcs) {
  const std::size_t n_cbps = mcs.n_cbps();
  const std::size_t n_bpsc = mcs.n_bpsc();
  const std::size_t s = std::max<std::size_t>(n_bpsc / 2, 1);
  std::vector<std::size_t> perm(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    // First permutation (17-17).
    const std::size_t i = (n_cbps / 16) * (k % 16) + k / 16;
    // Second permutation (17-18).
    const std::size_t j =
        s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
    perm[k] = j;
  }
  return perm;
}

const std::vector<std::size_t>& cached_interleave_permutation(const Mcs& mcs) {
  // The permutation depends only on n_cbps/n_bpsc, i.e. the modulation.
  // Static initialization is thread-safe and the tables are immutable, so
  // concurrent trials share them without a lock.
  static const std::vector<std::size_t> kBpsk =
      interleave_permutation({Modulation::kBpsk, CodeRate::kHalf});
  static const std::vector<std::size_t> kQpsk =
      interleave_permutation({Modulation::kQpsk, CodeRate::kHalf});
  static const std::vector<std::size_t> kQam16 =
      interleave_permutation({Modulation::kQam16, CodeRate::kHalf});
  static const std::vector<std::size_t> kQam64 =
      interleave_permutation({Modulation::kQam64, CodeRate::kHalf});
  switch (mcs.modulation) {
    case Modulation::kBpsk: return kBpsk;
    case Modulation::kQpsk: return kQpsk;
    case Modulation::kQam16: return kQam16;
    case Modulation::kQam64: return kQam64;
  }
  throw std::invalid_argument("cached_interleave_permutation: bad modulation");
}

BitVec interleave(const BitVec& bits, const Mcs& mcs) {
  if (bits.size() != mcs.n_cbps()) {
    throw std::invalid_argument("interleave: need exactly n_cbps bits");
  }
  const auto& perm = cached_interleave_permutation(mcs);
  BitVec out(bits.size());
  for (std::size_t k = 0; k < bits.size(); ++k) out[perm[k]] = bits[k];
  return out;
}

BitVec deinterleave(const BitVec& bits, const Mcs& mcs) {
  if (bits.size() != mcs.n_cbps()) {
    throw std::invalid_argument("deinterleave: need exactly n_cbps bits");
  }
  const auto& perm = cached_interleave_permutation(mcs);
  BitVec out(bits.size());
  for (std::size_t k = 0; k < bits.size(); ++k) out[k] = bits[perm[k]];
  return out;
}

void deinterleave_soft_into(std::span<const double> llr, const Mcs& mcs,
                            std::vector<double>& out) {
  if (llr.size() != mcs.n_cbps()) {
    throw std::invalid_argument(
        "deinterleave_soft: need exactly n_cbps values");
  }
  const auto& perm = cached_interleave_permutation(mcs);
  out.assign(llr.size(), 0.0);
  for (std::size_t k = 0; k < llr.size(); ++k) out[k] = llr[perm[k]];
}

std::vector<double> deinterleave_soft(const std::vector<double>& llr,
                                      const Mcs& mcs) {
  std::vector<double> out;
  deinterleave_soft_into(llr, mcs, out);
  return out;
}

}  // namespace jmb::phy
