// Full 802.11a-style receive chain: detection, CFO, timing, channel
// estimation, pilot phase tracking, demodulation, decoding.
#pragma once

#include <optional>
#include <string>

#include "phy/chanest.h"
#include "phy/frame.h"
#include "phy/params.h"

namespace jmb {
class Workspace;
}

namespace jmb::phy {

/// Preamble measurements — the quantities a JMB slave AP extracts from the
/// lead's sync header, and the first half of a full receive.
struct PreambleMeasurement {
  std::size_t stf_start = 0;   ///< detected packet start
  std::size_t ltf_start = 0;   ///< start of the first 64-sample LTF symbol
  double cfo_hz = 0.0;         ///< coarse + fine CFO estimate
  ChannelEstimate chan;        ///< LS estimate from both LTF symbols
  double noise_var = 0.0;      ///< per-subcarrier noise variance estimate
  double snr_db = 0.0;         ///< mean channel power / noise variance
};

/// Outcome of a frame reception attempt.
struct RxResult {
  bool ok = false;
  ByteVec psdu;                ///< decoded PSDU (valid when ok)
  SignalField sig;             ///< decoded SIGNAL field (when header_ok)
  bool header_ok = false;
  PreambleMeasurement preamble;
  double evm_snr_db = 0.0;     ///< SNR inferred from data-symbol EVM
  std::string fail_reason;     ///< empty when ok
};

class Receiver {
 public:
  explicit Receiver(PhyConfig cfg = {}) : cfg_(cfg) {}

  /// Attach a per-trial workspace: every internal buffer (CFO-corrected
  /// copy, FFT windows, LLRs, Viterbi trellis) is drawn from it instead of
  /// the heap. The receiver never owns the workspace; the caller keeps it
  /// alive across calls and must not share one workspace between threads.
  /// Results are bitwise-identical with or without a workspace.
  void set_workspace(Workspace* ws) { ws_ = ws; }

  /// Detect and measure a preamble at/after `search_from`.
  [[nodiscard]] std::optional<PreambleMeasurement> measure_preamble(
      const cvec& rx, std::size_t search_from = 0) const;

  /// Attempt to receive one frame from the buffer.
  [[nodiscard]] RxResult receive(const cvec& rx,
                                 std::size_t search_from = 0) const;

  /// Receive when the payload's symbol boundary is already known (used by
  /// JMB clients after the lead's sync header has been consumed):
  /// `payload_start` is the first sample of the jointly-transmitted LTF.
  [[nodiscard]] RxResult receive_payload(const cvec& rx,
                                         std::size_t payload_start,
                                         double cfo_hz) const;

  [[nodiscard]] const PhyConfig& config() const { return cfg_; }

 private:
  /// FFT-window back-off into the CP: tolerates small timing error and
  /// pre-cursor multipath; the common phase ramp is absorbed by the channel
  /// estimate because the same back-off is applied to LTF and data.
  static constexpr std::size_t kTimingBackoff = 4;

  PhyConfig cfg_;
  Workspace* ws_ = nullptr;
};

}  // namespace jmb::phy
