#include "phy/transmitter.h"

#include "phy/ofdm.h"
#include "phy/preamble.h"

namespace jmb::phy {

std::vector<cvec> Transmitter::build_freq_symbols(const ByteVec& psdu,
                                                  const Mcs& mcs,
                                                  unsigned scrambler_seed) const {
  std::vector<cvec> out;
  const SignalField sig{rate_index(mcs), psdu.size()};
  out.push_back(map_subcarriers(build_signal_symbol(sig), 0));
  const std::vector<cvec> data = encode_psdu(psdu, mcs, scrambler_seed);
  for (std::size_t s = 0; s < data.size(); ++s) {
    out.push_back(map_subcarriers(data[s], s + 1));
  }
  return out;
}

cvec Transmitter::synthesize(const std::vector<cvec>& freq_symbols) {
  cvec out;
  out.reserve(freq_symbols.size() * kSymbolLen);
  for (const cvec& f : freq_symbols) {
    const cvec t = ofdm_modulate(f);
    out.insert(out.end(), t.begin(), t.end());
  }
  return out;
}

TxFrame Transmitter::build_frame(const ByteVec& psdu, const Mcs& mcs,
                                 unsigned scrambler_seed) const {
  TxFrame frame;
  frame.mcs = mcs;
  frame.psdu_len = psdu.size();
  frame.freq_symbols = build_freq_symbols(psdu, mcs, scrambler_seed);
  frame.samples = preamble_time();
  const cvec payload = synthesize(frame.freq_symbols);
  frame.samples.insert(frame.samples.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace jmb::phy
