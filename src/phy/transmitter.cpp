#include "phy/transmitter.h"

#include <span>

#include "phy/ofdm.h"
#include "phy/preamble.h"

namespace jmb::phy {

std::vector<cvec> Transmitter::build_freq_symbols(
    const ByteVec& psdu, const Mcs& mcs, unsigned scrambler_seed) const {
  const SignalField sig{rate_index(mcs), psdu.size()};
  const std::vector<cvec> data = encode_psdu(psdu, mcs, scrambler_seed);
  std::vector<cvec> out;
  out.reserve(1 + data.size());
  out.push_back(map_subcarriers(build_signal_symbol(sig), 0));
  for (std::size_t s = 0; s < data.size(); ++s) {
    out.push_back(map_subcarriers(data[s], s + 1));
  }
  return out;
}

cvec Transmitter::synthesize(const std::vector<cvec>& freq_symbols) {
  // Modulate each symbol directly into its kSymbolLen slot of the output —
  // one buffer, no per-symbol temporaries.
  cvec out(freq_symbols.size() * kSymbolLen);
  for (std::size_t s = 0; s < freq_symbols.size(); ++s) {
    ofdm_modulate_into(
        freq_symbols[s],
        std::span<cplx>(out).subspan(s * kSymbolLen, kSymbolLen));
  }
  return out;
}

TxFrame Transmitter::build_frame(const ByteVec& psdu, const Mcs& mcs,
                                 unsigned scrambler_seed) const {
  TxFrame frame;
  frame.mcs = mcs;
  frame.psdu_len = psdu.size();
  frame.freq_symbols = build_freq_symbols(psdu, mcs, scrambler_seed);
  frame.samples = preamble_time();
  const cvec payload = synthesize(frame.freq_symbols);
  frame.samples.insert(frame.samples.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace jmb::phy
