#include "phy/viterbi.h"

#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

namespace jmb::phy {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Static trellis: for each (state, input) the successor state and the two
// mother-code output bits, matching conv_encode()'s shift convention
// (current bit enters at the high end of the 7-bit window).
struct Trellis {
  // next[state][bit], outA[state][bit], outB[state][bit]
  std::array<std::array<std::uint8_t, 2>, kNumStates> next{};
  std::array<std::array<std::uint8_t, 2>, kNumStates> out_a{};
  std::array<std::array<std::uint8_t, 2>, kNumStates> out_b{};
};

std::uint8_t parity7(unsigned x) {
  return static_cast<std::uint8_t>(std::popcount(x & 0x7Fu) & 1);
}

const Trellis& trellis() {
  static const Trellis kT = [] {
    Trellis t;
    for (unsigned s = 0; s < kNumStates; ++s) {
      for (unsigned b = 0; b < 2; ++b) {
        const unsigned window = (b << 6) | s;
        t.next[s][b] = static_cast<std::uint8_t>(window >> 1);
        t.out_a[s][b] = parity7(window & kGenA);
        t.out_b[s][b] = parity7(window & kGenB);
      }
    }
    return t;
  }();
  return kT;
}

}  // namespace

void viterbi_decode_into(std::span<const double> llr, std::size_t n_info,
                         bool terminated, ViterbiScratch& scratch,
                         BitVec& out) {
  if (llr.size() != 2 * n_info) {
    throw std::invalid_argument("viterbi_decode: need 2*n_info soft bits");
  }
  const Trellis& t = trellis();

  scratch.metric.assign(kNumStates, kNegInf);
  scratch.metric[0] = 0.0;  // encoder starts in the all-zero state
  scratch.next_metric.resize(kNumStates);
  scratch.survivor.resize(n_info);
  scratch.survivor_bit.resize(n_info);
  std::vector<double>& metric = scratch.metric;
  std::vector<double>& next_metric = scratch.next_metric;
  auto& survivor = scratch.survivor;
  auto& survivor_bit = scratch.survivor_bit;

  for (std::size_t step = 0; step < n_info; ++step) {
    const double la = llr[2 * step];      // LLR for output bit A
    const double lb = llr[2 * step + 1];  // LLR for output bit B
    for (double& m : next_metric) m = kNegInf;
    auto& surv = survivor[step];
    auto& surv_bit = survivor_bit[step];
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] == kNegInf) continue;
      for (unsigned b = 0; b < 2; ++b) {
        // Branch metric: +llr/2 if the hypothesized coded bit is 0,
        // -llr/2 if it is 1 -> (1 - 2c) * llr / 2. Constants cancel, so
        // we use (1 - 2c) * llr directly.
        const double m = metric[s] +
                         (t.out_a[s][b] ? -la : la) +
                         (t.out_b[s][b] ? -lb : lb);
        const unsigned ns = t.next[s][b];
        if (m > next_metric[ns]) {
          next_metric[ns] = m;
          surv[ns] = static_cast<std::uint8_t>(s);
          surv_bit[ns] = static_cast<std::uint8_t>(b);
        }
      }
    }
    metric.swap(next_metric);
  }

  // Pick the final state.
  unsigned state = 0;
  if (!terminated) {
    double best = kNegInf;
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] > best) {
        best = metric[s];
        state = s;
      }
    }
  } else if (metric[0] == kNegInf) {
    // Terminated trellis unreachable (shouldn't happen with n_info >= 6);
    // fall back to best-state decoding.
    double best = kNegInf;
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] > best) {
        best = metric[s];
        state = s;
      }
    }
  }

  // Trace back.
  out.assign(n_info, 0);
  for (std::size_t step = n_info; step-- > 0;) {
    out[step] = survivor_bit[step][state];
    state = survivor[step][state];
  }
}

BitVec viterbi_decode(const std::vector<double>& llr, std::size_t n_info,
                      bool terminated) {
  ViterbiScratch scratch;
  BitVec bits;
  viterbi_decode_into(llr, n_info, terminated, scratch, bits);
  return bits;
}

BitVec viterbi_decode_hard(const BitVec& coded, std::size_t n_info,
                           bool terminated) {
  std::vector<double> llr(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llr[i] = coded[i] ? -1.0 : 1.0;
  }
  return viterbi_decode(llr, n_info, terminated);
}

}  // namespace jmb::phy
