#include "phy/viterbi.h"

#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

#include "simd/kernels.h"

namespace jmb::phy {

static_assert(kNumStates == simd::kViterbiStates);

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Static trellis: for each (state, input) the successor state and the two
// mother-code output bits, matching conv_encode()'s shift convention
// (current bit enters at the high end of the 7-bit window).
struct Trellis {
  // next[state][bit], outA[state][bit], outB[state][bit]
  std::array<std::array<std::uint8_t, 2>, kNumStates> next{};
  std::array<std::array<std::uint8_t, 2>, kNumStates> out_a{};
  std::array<std::array<std::uint8_t, 2>, kNumStates> out_b{};
};

std::uint8_t parity7(unsigned x) {
  return static_cast<std::uint8_t>(std::popcount(x & 0x7Fu) & 1);
}

const Trellis& trellis() {
  static const Trellis kT = [] {
    Trellis t;
    for (unsigned s = 0; s < kNumStates; ++s) {
      for (unsigned b = 0; b < 2; ++b) {
        const unsigned window = (b << 6) | s;
        t.next[s][b] = static_cast<std::uint8_t>(window >> 1);
        t.out_a[s][b] = parity7(window & kGenA);
        t.out_b[s][b] = parity7(window & kGenB);
      }
    }
    return t;
  }();
  return kT;
}

// Branch-metric sign table for the dispatched ACS kernel. Next state
// ns = (b << 5) | m has exactly two predecessors, 2m (even) and 2m + 1
// (odd), both hypothesizing input bit b; the branch metric contribution
// of coded output bit X is +llr when the trellis emits 0 and -llr when it
// emits 1, i.e. sign * llr with sign in {+1.0, -1.0}. Multiplying by
// ±1.0 is exact, so the kernel's sign-table form is bitwise the ternary
// `out ? -l : l` of the sequential reference. Layout: for b in {0, 1},
// four blocks of 32 — A-even, A-odd, B-even, B-odd.
const std::array<double, 4 * kNumStates>& acs_sign_table() {
  alignas(64) static const std::array<double, 4 * kNumStates> kS = [] {
    std::array<double, 4 * kNumStates> s{};
    const Trellis& t = trellis();
    constexpr std::size_t kHalf = kNumStates / 2;
    for (unsigned b = 0; b < 2; ++b) {
      const std::size_t base = b * 4 * kHalf;
      for (std::size_t m = 0; m < kHalf; ++m) {
        s[base + m] = t.out_a[2 * m][b] ? -1.0 : 1.0;
        s[base + kHalf + m] = t.out_a[2 * m + 1][b] ? -1.0 : 1.0;
        s[base + 2 * kHalf + m] = t.out_b[2 * m][b] ? -1.0 : 1.0;
        s[base + 3 * kHalf + m] = t.out_b[2 * m + 1][b] ? -1.0 : 1.0;
      }
    }
    return s;
  }();
  return kS;
}

}  // namespace

void viterbi_decode_into(std::span<const double> llr, std::size_t n_info,
                         bool terminated, ViterbiScratch& scratch,
                         BitVec& out) {
  if (llr.size() != 2 * n_info) {
    throw std::invalid_argument("viterbi_decode: need 2*n_info soft bits");
  }
  scratch.metric.assign(kNumStates, kNegInf);
  scratch.metric[0] = 0.0;  // encoder starts in the all-zero state
  scratch.next_metric.resize(kNumStates);
  scratch.survivor.resize(n_info);
  scratch.survivor_bit.resize(n_info);
  auto& metric = scratch.metric;
  auto& next_metric = scratch.next_metric;
  auto& survivor = scratch.survivor;
  auto& survivor_bit = scratch.survivor_bit;

  // Add-compare-select via the dispatched kernel, batched across the
  // independent next-states of the trellis butterfly. Branch metric:
  // +llr/2 if the hypothesized coded bit is 0, -llr/2 if it is 1
  // -> (1 - 2c) * llr / 2; constants cancel, so (1 - 2c) * llr directly
  // (realized as the ±1.0 sign table — see acs_sign_table()). Candidate
  // order, the tie-keeps-even strict compare, and -inf propagation all
  // match the sequential reference, so decodes are bitwise identical on
  // every backend.
  const double* const signs = acs_sign_table().data();
  const simd::Kernels& kern = simd::active_kernels();
  for (std::size_t step = 0; step < n_info; ++step) {
    kern.viterbi_acs(metric.data(), signs, llr[2 * step], llr[2 * step + 1],
                     next_metric.data(), survivor[step].data(),
                     survivor_bit[step].data());
    metric.swap(next_metric);
  }

  // Pick the final state.
  unsigned state = 0;
  if (!terminated) {
    double best = kNegInf;
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] > best) {
        best = metric[s];
        state = s;
      }
    }
  } else if (metric[0] == kNegInf) {
    // Terminated trellis unreachable (shouldn't happen with n_info >= 6);
    // fall back to best-state decoding.
    double best = kNegInf;
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] > best) {
        best = metric[s];
        state = s;
      }
    }
  }

  // Trace back.
  out.assign(n_info, 0);
  for (std::size_t step = n_info; step-- > 0;) {
    out[step] = survivor_bit[step][state];
    state = survivor[step][state];
  }
}

BitVec viterbi_decode(const std::vector<double>& llr, std::size_t n_info,
                      bool terminated) {
  ViterbiScratch scratch;
  BitVec bits;
  viterbi_decode_into(llr, n_info, terminated, scratch, bits);
  return bits;
}

BitVec viterbi_decode_hard(const BitVec& coded, std::size_t n_info,
                           bool terminated) {
  std::vector<double> llr(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llr[i] = coded[i] ? -1.0 : 1.0;
  }
  return viterbi_decode(llr, n_info, terminated);
}

}  // namespace jmb::phy
