// OFDM numerology and rate set for the 802.11a/g-style PHY the paper's
// USRP testbed runs: 64-point FFT, 48 data + 4 pilot subcarriers, 16-sample
// cyclic prefix, on a 10 MHz channel (the paper's USRP bandwidth) or 20 MHz
// (the 802.11n compatibility testbed).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "dsp/types.h"

namespace jmb::phy {

/// Core OFDM numerology (fixed by the 802.11 OFDM PHY).
constexpr std::size_t kNfft = 64;
constexpr std::size_t kCpLen = 16;
constexpr std::size_t kSymbolLen = kNfft + kCpLen;  // 80 samples
constexpr std::size_t kNumDataCarriers = 48;
constexpr std::size_t kNumPilots = 4;

/// Short training field: 10 repetitions of a 16-sample sequence.
constexpr std::size_t kStfLen = 160;
/// Long training field: 32-sample guard + two 64-sample symbols.
constexpr std::size_t kLtfLen = 160;
constexpr std::size_t kPreambleLen = kStfLen + kLtfLen;  // 320 samples

/// Logical subcarrier indices (-26..26, excluding 0 and pilots) of the 48
/// data subcarriers, in transmission order.
[[nodiscard]] const std::array<int, kNumDataCarriers>& data_carriers();

/// Pilot subcarrier indices {-21, -7, 7, 21}.
[[nodiscard]] const std::array<int, kNumPilots>& pilot_carriers();

/// Base pilot values on {-21,-7,7,21} before per-symbol polarity.
[[nodiscard]] const std::array<double, kNumPilots>& pilot_base();

/// Per-OFDM-symbol pilot polarity p_{n mod 127} (802.11a 17.3.5.9), derived
/// from the scrambler sequence with an all-ones seed.
[[nodiscard]] double pilot_polarity(std::size_t symbol_index);

/// Map a logical subcarrier index (-32..31) to an FFT bin (0..63).
[[nodiscard]] constexpr std::size_t bin_of(int logical) {
  return static_cast<std::size_t>((logical + static_cast<int>(kNfft)) %
                                  static_cast<int>(kNfft));
}

/// Constellations supported by the rate set.
enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

[[nodiscard]] std::size_t bits_per_symbol(Modulation m);
[[nodiscard]] std::string to_string(Modulation m);

/// Convolutional code rates after puncturing.
enum class CodeRate { kHalf, kTwoThirds, kThreeQuarters };

[[nodiscard]] double code_rate_value(CodeRate r);
[[nodiscard]] std::string to_string(CodeRate r);

/// One entry of the 802.11 OFDM rate set.
struct Mcs {
  Modulation modulation = Modulation::kBpsk;
  CodeRate code_rate = CodeRate::kHalf;

  /// Coded bits per subcarrier (N_BPSC).
  [[nodiscard]] std::size_t n_bpsc() const {
    return bits_per_symbol(modulation);
  }
  /// Coded bits per OFDM symbol (N_CBPS).
  [[nodiscard]] std::size_t n_cbps() const {
    return n_bpsc() * kNumDataCarriers;
  }
  /// Data bits per OFDM symbol (N_DBPS).
  [[nodiscard]] std::size_t n_dbps() const;

  /// PHY bit rate in Mb/s for the given channel bandwidth.
  [[nodiscard]] double rate_mbps(double bandwidth_hz) const;

  [[nodiscard]] std::string name() const;

  friend bool operator==(const Mcs&, const Mcs&) = default;
};

/// The eight 802.11a/g rates, slowest first.
[[nodiscard]] const std::vector<Mcs>& rate_set();

/// Index of an MCS in rate_set(); throws if not a member.
[[nodiscard]] std::size_t rate_index(const Mcs& mcs);

/// The 4-bit RATE field encoding used in the SIGNAL symbol (802.11a
/// Table 17-6), and its decoder. Returns rate_set() index.
[[nodiscard]] unsigned rate_field_bits(std::size_t rate_set_index);
[[nodiscard]] std::size_t rate_index_from_field(unsigned bits);

/// Channel/system-level configuration shared by TX and RX.
struct PhyConfig {
  double sample_rate_hz = 10e6;     ///< USRP testbed channel width
  double carrier_hz = 2.4e9;        ///< RF carrier (for ppm conversions)

  [[nodiscard]] double symbol_duration_s() const {
    return static_cast<double>(kSymbolLen) / sample_rate_hz;
  }
};

}  // namespace jmb::phy
