#include "phy/crc32.h"

#include <array>
#include <stdexcept>

namespace jmb::phy {

namespace {

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return kTable;
}

}  // namespace

std::uint32_t crc32(const ByteVec& data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = crc_table()[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

ByteVec append_crc32(ByteVec data) {
  const std::uint32_t c = crc32(data);
  data.push_back(static_cast<std::uint8_t>(c & 0xFF));
  data.push_back(static_cast<std::uint8_t>((c >> 8) & 0xFF));
  data.push_back(static_cast<std::uint8_t>((c >> 16) & 0xFF));
  data.push_back(static_cast<std::uint8_t>((c >> 24) & 0xFF));
  return data;
}

bool check_crc32(const ByteVec& data_with_fcs) {
  if (data_with_fcs.size() < 4) return false;
  ByteVec body(data_with_fcs.begin(), data_with_fcs.end() - 4);
  const std::uint32_t expect = crc32(body);
  const std::size_t n = data_with_fcs.size();
  const std::uint32_t got =
      static_cast<std::uint32_t>(data_with_fcs[n - 4]) |
      (static_cast<std::uint32_t>(data_with_fcs[n - 3]) << 8) |
      (static_cast<std::uint32_t>(data_with_fcs[n - 2]) << 16) |
      (static_cast<std::uint32_t>(data_with_fcs[n - 1]) << 24);
  return expect == got;
}

ByteVec strip_crc32(ByteVec data_with_fcs) {
  if (data_with_fcs.size() < 4) {
    throw std::invalid_argument("strip_crc32: too short");
  }
  data_with_fcs.resize(data_with_fcs.size() - 4);
  return data_with_fcs;
}

}  // namespace jmb::phy
