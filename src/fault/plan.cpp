#include "fault/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "dsp/rng.h"
#include "obs/json.h"

namespace jmb::fault {

namespace {

struct KindName {
  FaultKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kApCrash, "ap_crash"},
    {FaultKind::kApRestart, "ap_restart"},
    {FaultKind::kSyncLoss, "sync_loss"},
    {FaultKind::kSyncCorrupt, "sync_corrupt"},
    {FaultKind::kPhaseJump, "phase_jump"},
    {FaultKind::kCfoStep, "cfo_step"},
    {FaultKind::kStaleChannel, "stale_channel"},
    {FaultKind::kBackhaulLoss, "backhaul_loss"},
    {FaultKind::kBackhaulDelay, "backhaul_delay"},
};

bool set_error(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

}  // namespace

std::string_view fault_kind_name(FaultKind k) {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == k) return kn.name;
  }
  return "unknown";
}

bool fault_kind_from_name(std::string_view name, FaultKind& out) {
  for (const KindName& kn : kKindNames) {
    if (kn.name == name) {
      out = kn.kind;
      return true;
    }
  }
  return false;
}

bool fault_kind_is_window(FaultKind k) {
  switch (k) {
    case FaultKind::kApCrash:
    case FaultKind::kSyncLoss:
    case FaultKind::kSyncCorrupt:
    case FaultKind::kStaleChannel:
    case FaultKind::kBackhaulLoss:
    case FaultKind::kBackhaulDelay:
      return true;
    case FaultKind::kApRestart:
    case FaultKind::kPhaseJump:
    case FaultKind::kCfoStep:
      return false;
  }
  return false;
}

double FaultEvent::end_s() const {
  if (!fault_kind_is_window(kind) || duration_s <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return t_s + duration_s;
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events, std::uint64_t seed)
    : events_(std::move(events)), seed_(seed) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.t_s < b.t_s;
                   });
}

FaultPlan FaultPlan::from_json(const obs::JsonValue& doc, std::string* error) {
  if (error) error->clear();
  if (!doc.is_object()) {
    set_error(error, "fault plan: document is not an object");
    return {};
  }
  if (const obs::JsonValue* schema = doc.get("schema")) {
    if (!schema->is_string() ||
        schema->as_string() != "jmb.fault_plan.v1") {
      set_error(error, "fault plan: schema is not jmb.fault_plan.v1");
      return {};
    }
  }
  std::uint64_t seed = 1;
  if (const obs::JsonValue* s = doc.get("seed")) {
    if (!s->is_number() || s->as_number() < 0) {
      set_error(error, "fault plan: seed must be a non-negative number");
      return {};
    }
    seed = static_cast<std::uint64_t>(s->as_number());
  }
  const obs::JsonValue* events = doc.get("events");
  if (events == nullptr || !events->is_array()) {
    set_error(error, "fault plan: missing 'events' array");
    return {};
  }
  std::vector<FaultEvent> parsed;
  parsed.reserve(events->as_array().size());
  for (std::size_t i = 0; i < events->as_array().size(); ++i) {
    const obs::JsonValue& e = events->as_array()[i];
    const std::string at = "fault plan: events[" + std::to_string(i) + "]";
    if (!e.is_object()) {
      set_error(error, at + " is not an object");
      return {};
    }
    const obs::JsonValue* kind = e.get("kind");
    FaultEvent ev;
    if (kind == nullptr || !kind->is_string() ||
        !fault_kind_from_name(kind->as_string(), ev.kind)) {
      set_error(error, at + ": unknown or missing 'kind'");
      return {};
    }
    const obs::JsonValue* t = e.get("t");
    if (t == nullptr || !t->is_number() || t->as_number() < 0.0) {
      set_error(error, at + ": 't' must be a non-negative number");
      return {};
    }
    ev.t_s = t->as_number();
    if (const obs::JsonValue* ap = e.get("ap")) {
      if (!ap->is_number() || ap->as_number() < 0) {
        set_error(error, at + ": 'ap' must be a non-negative integer");
        return {};
      }
      ev.ap = static_cast<std::size_t>(ap->as_number());
    }
    if (const obs::JsonValue* d = e.get("duration")) {
      if (!d->is_number() || d->as_number() < 0.0) {
        set_error(error, at + ": 'duration' must be non-negative");
        return {};
      }
      ev.duration_s = d->as_number();
    }
    if (const obs::JsonValue* m = e.get("magnitude")) {
      if (!m->is_number()) {
        set_error(error, at + ": 'magnitude' must be a number");
        return {};
      }
      ev.magnitude = m->as_number();
    }
    if (const obs::JsonValue* p = e.get("probability")) {
      if (!p->is_number() || p->as_number() < 0.0 || p->as_number() > 1.0) {
        set_error(error, at + ": 'probability' must be in [0, 1]");
        return {};
      }
      ev.probability = p->as_number();
    }
    parsed.push_back(ev);
  }
  return FaultPlan(std::move(parsed), seed);
}

FaultPlan FaultPlan::load(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    set_error(error, "fault plan: cannot open '" + path + "'");
    return {};
  }
  std::string text;
  char buf[1 << 12];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    set_error(error, "fault plan: read failure on '" + path + "'");
    return {};
  }
  std::string parse_err;
  const obs::JsonValue doc = obs::parse_json(text, &parse_err);
  if (doc.is_null() && !parse_err.empty()) {
    set_error(error, "fault plan: " + path + ": " + parse_err);
    return {};
  }
  return from_json(doc, error);
}

std::string FaultPlan::to_json() const {
  obs::JsonArray events;
  events.reserve(events_.size());
  for (const FaultEvent& ev : events_) {
    obs::JsonObject e;
    e.emplace_back("kind", std::string(fault_kind_name(ev.kind)));
    e.emplace_back("t", ev.t_s);
    e.emplace_back("ap", static_cast<double>(ev.ap));
    if (ev.duration_s > 0.0) e.emplace_back("duration", ev.duration_s);
    if (ev.magnitude != 0.0) e.emplace_back("magnitude", ev.magnitude);
    if (ev.probability != 1.0) e.emplace_back("probability", ev.probability);
    events.emplace_back(std::move(e));
  }
  obs::JsonObject doc;
  doc.emplace_back("schema", "jmb.fault_plan.v1");
  doc.emplace_back("seed", static_cast<double>(seed_));
  doc.emplace_back("events", std::move(events));
  return obs::JsonValue(std::move(doc)).dump() + "\n";
}

FaultPlan FaultPlan::single_crash(std::size_t ap, double t_s, double outage_s,
                                  std::uint64_t seed) {
  std::vector<FaultEvent> events;
  events.push_back({FaultKind::kApCrash, t_s, ap, outage_s, 0.0, 1.0});
  return FaultPlan(std::move(events), seed);
}

FaultPlan FaultPlan::random_crashes(double rate_hz, double duration_s,
                                    std::size_t n_aps, double outage_s,
                                    std::uint64_t seed) {
  std::vector<FaultEvent> events;
  if (rate_hz > 0.0 && n_aps > 0) {
    Rng rng(seed ^ 0x66617578756c74ull);  // distinct stream from the session
    double t = 0.0;
    while (true) {
      // Exponential inter-arrival gap at rate_hz.
      t += -std::log(std::max(rng.uniform(), 1e-300)) / rate_hz;
      if (t >= duration_s) break;
      const auto ap = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(n_aps) - 1));
      events.push_back({FaultKind::kApCrash, t, ap, outage_s, 0.0, 1.0});
    }
  }
  return FaultPlan(std::move(events), seed);
}

FaultPlan FaultPlan::periodic_stale(double first_s, double period_s,
                                    double stale_s, double duration_s,
                                    std::uint64_t seed) {
  std::vector<FaultEvent> events;
  if (period_s > 0.0 && stale_s > 0.0) {
    for (double t = first_s; t < duration_s; t += period_s) {
      events.push_back({FaultKind::kStaleChannel, t, 0, stale_s, 0.0, 1.0});
    }
  }
  return FaultPlan(std::move(events), seed);
}

}  // namespace jmb::fault
