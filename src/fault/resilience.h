// ResilienceController — sync-loss detection, AP quarantine and recovery
// bookkeeping.
//
// The controller consumes exactly the signals a real deployment has at
// the lead: did each slave answer the last sync header, how far its
// header-to-header phase walk strayed from the averaged-CFO prediction
// (the phase-sync residual of Fig. 7), and how large the CFO innovation
// was. From those it runs a per-AP health state machine:
//
//        healthy --misses/residual strikes--> quarantined
//        quarantined --evidence returns--> probation --re-measure--> healthy
//
// Quarantined APs sit out of joint transmissions (the precoder is
// re-derived from the reduced H; see ZfPrecoder::build_masked), and the
// controller raises a re-measurement request so the surviving set
// re-anchors its references. Detection and recovery latencies are
// published into the metric registry (resilience/time_to_detect_s,
// resilience/time_to_recover_s) via the optional ObsSink.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/sink.h"

namespace jmb::fault {

struct ResilienceParams {
  /// Consecutive missed sync headers before an AP is quarantined.
  std::size_t sync_miss_threshold = 3;
  /// Phase-sync residual (radians) counted as a strike against the AP.
  double residual_threshold_rad = 0.5;
  /// Consecutive above-threshold residuals before quarantine.
  std::size_t residual_strike_threshold = 3;
  /// Consecutive clean sync headers a probation AP must produce before it
  /// rejoins joint transmissions.
  std::size_t probation_headers = 2;
  /// Metric namespace for everything the controller publishes. Per-cluster
  /// controllers (metro sharding) pass e.g. "cell3/resilience" so the
  /// merged aggregate registry keeps clusters apart; the default keeps
  /// every legacy metric name byte-identical.
  std::string metric_prefix = "resilience";
};

enum class ApHealth : std::uint8_t {
  kHealthy = 0,
  kQuarantined = 1,
  kProbation = 2,
};

class ResilienceController {
 public:
  /// AP 0 is the lead; it is never quarantined by sync evidence (it is
  /// the node *collecting* the evidence) but can be reported dead by the
  /// MAC, which then re-elects (see elect_lead).
  ResilienceController(std::size_t n_aps, ResilienceParams params = {},
                       const obs::ObsSink* obs = nullptr);

  void attach_obs(const obs::ObsSink* obs) { obs_ = obs; }

  /// Note an injected disruption at time t (drives the time-to-detect /
  /// time-to-recover histograms; harmless to omit).
  void note_fault(double t_s);

  /// Feed one sync-header outcome for AP `ap` at time `t_s`. `ok` means
  /// the header round-trip produced a usable correction;
  /// `residual_rad` / `cfo_innovation_hz` carry the phase-sync telemetry
  /// when ok (pass 0 when unavailable).
  void on_sync_result(std::size_t ap, bool ok, double residual_rad,
                      double cfo_innovation_hz, double t_s);

  /// The MAC observed AP `ap` hard-down (e.g. backhaul heartbeat loss).
  void mark_down(std::size_t ap, double t_s);

  /// A re-measurement epoch completed at t_s: probation APs (and, when
  /// `readmit_quarantined`, quarantined ones whose evidence returned)
  /// rejoin with fresh references.
  void on_remeasure(double t_s);

  /// First fully-successful joint transmission after a quarantine; stamps
  /// time-to-recover. Idempotent until the next quarantine.
  void on_recovered(double t_s);

  [[nodiscard]] ApHealth health(std::size_t ap) const {
    return state_[ap].health;
  }
  [[nodiscard]] bool quarantined(std::size_t ap) const {
    return state_[ap].health != ApHealth::kHealthy;
  }
  /// 1 for each AP currently participating in joint transmissions.
  [[nodiscard]] const std::vector<std::uint8_t>& active() const {
    return active_;
  }
  [[nodiscard]] std::size_t active_count() const;
  [[nodiscard]] bool any_quarantined() const;

  /// A quarantine (or probation readmission) happened since the last
  /// on_remeasure(): the surviving set should re-measure.
  [[nodiscard]] bool needs_remeasure() const { return needs_remeasure_; }

  /// Lead election: the `preferred` AP when it participates, else the
  /// lowest-indexed active AP (n_aps when none survive).
  [[nodiscard]] std::size_t elect_lead(std::size_t preferred) const;

  [[nodiscard]] std::size_t quarantine_events() const { return quarantines_; }
  [[nodiscard]] std::size_t recoveries() const { return recoveries_; }
  [[nodiscard]] double last_detect_latency_s() const {
    return last_detect_latency_s_;
  }
  [[nodiscard]] double last_recover_latency_s() const {
    return last_recover_latency_s_;
  }

 private:
  struct ApState {
    ApHealth health = ApHealth::kHealthy;
    std::size_t consecutive_misses = 0;
    std::size_t residual_strikes = 0;
    std::size_t clean_headers = 0;
  };

  void quarantine(std::size_t ap, double t_s, const char* reason);

  ResilienceParams params_;
  const obs::ObsSink* obs_;
  std::vector<ApState> state_;
  std::vector<std::uint8_t> active_;
  bool needs_remeasure_ = false;

  double last_fault_t_ = 0.0;
  bool fault_pending_ = false;    ///< a fault awaits detection
  bool recovery_pending_ = false; ///< a quarantine awaits recovery
  double pending_since_ = 0.0;    ///< fault time backing both latencies

  std::size_t quarantines_ = 0;
  std::size_t recoveries_ = 0;
  double last_detect_latency_s_ = 0.0;
  double last_recover_latency_s_ = 0.0;
};

}  // namespace jmb::fault
