// Per-trial fault execution: the Injector interface, its concrete
// implementations, and the FaultSession that drives them along a
// FaultPlan's timeline.
//
// A FaultSession is the mutable counterpart of an immutable FaultPlan:
// one session per trial, seeded from (plan seed, trial seed), so every
// probabilistic decision (header loss coin flips, corruption draws)
// comes from a trial-scoped stream and stays byte-identical for any
// JMB_THREADS. Sessions are allocation-free after construction — the
// steady-state frame loop can pump an idle plan without touching the
// heap (enforced by tests/test_zero_alloc.cpp).
//
// Hosts (the sample-level engine, the MAC simulations) implement
// FaultHost to receive point events that mutate world state (oscillator
// phase jumps / CFO steps, crash and restart edges); window state
// (AP down, sync-loss, stale-channel, backhaul windows) is polled
// through the session's query API at the natural hook points.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsp/rng.h"
#include "fault/plan.h"

namespace jmb::fault {

/// Receives point events when the session's clock passes them. Default
/// implementations ignore everything, so hosts override only what they
/// model.
class FaultHost {
 public:
  virtual ~FaultHost() = default;
  virtual void on_ap_crash(std::size_t ap) { (void)ap; }
  virtual void on_ap_restart(std::size_t ap) { (void)ap; }
  virtual void on_phase_jump(std::size_t ap, double rad) {
    (void)ap;
    (void)rad;
  }
  virtual void on_cfo_step(std::size_t ap, double hz) {
    (void)ap;
    (void)hz;
  }
};

/// One family of impairments. Injectors own the active-window state for
/// their kinds; the session routes plan events to them as simulated time
/// advances past event begin/end edges.
class Injector {
 public:
  virtual ~Injector() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual bool handles(FaultKind kind) const = 0;
  /// An event of a handled kind crossed its begin (`begin = true`) or
  /// window-end edge.
  virtual void on_edge(const FaultEvent& ev, bool begin, FaultHost& host) = 0;
};

/// AP crash / restart windows -> per-AP up/down mask.
class ApCrashInjector final : public Injector {
 public:
  explicit ApCrashInjector(std::size_t n_aps) : down_(n_aps, 0) {}
  [[nodiscard]] const char* name() const override { return "ap_crash"; }
  [[nodiscard]] bool handles(FaultKind k) const override {
    return k == FaultKind::kApCrash || k == FaultKind::kApRestart;
  }
  void on_edge(const FaultEvent& ev, bool begin, FaultHost& host) override;

  [[nodiscard]] bool down(std::size_t ap) const {
    return ap < down_.size() && down_[ap] != 0;
  }
  [[nodiscard]] std::size_t n_down() const;

 private:
  std::vector<std::uint8_t> down_;
};

/// Sync-header loss / corruption windows. Loss is a per-header Bernoulli
/// draw at the window's probability; corruption adds a Gaussian phase
/// error of the window's magnitude (std dev, radians).
class SyncHeaderInjector final : public Injector {
 public:
  explicit SyncHeaderInjector(std::size_t n_aps)
      : loss_(n_aps, nullptr), corrupt_(n_aps, nullptr) {}
  [[nodiscard]] const char* name() const override { return "sync_header"; }
  [[nodiscard]] bool handles(FaultKind k) const override {
    return k == FaultKind::kSyncLoss || k == FaultKind::kSyncCorrupt;
  }
  void on_edge(const FaultEvent& ev, bool begin, FaultHost& host) override;

  /// Did this slave's header get lost? Draws from `rng` only while a loss
  /// window targets the AP (a fault-free run never consumes the stream).
  [[nodiscard]] bool header_lost(std::size_t ap, Rng& rng) const;
  /// Phase error to add to this header's channel observation (0 when no
  /// corruption window is active for the AP).
  [[nodiscard]] double header_phase_error(std::size_t ap, Rng& rng) const;

 private:
  // Active window per AP (at most one of each kind at a time; the last
  // activated wins, matching plan order).
  std::vector<const FaultEvent*> loss_;
  std::vector<const FaultEvent*> corrupt_;
};

/// Oscillator phase jumps and drift-rate (CFO) steps: point events
/// forwarded straight to the host, which owns the oscillators.
class OscillatorInjector final : public Injector {
 public:
  [[nodiscard]] const char* name() const override { return "oscillator"; }
  [[nodiscard]] bool handles(FaultKind k) const override {
    return k == FaultKind::kPhaseJump || k == FaultKind::kCfoStep;
  }
  void on_edge(const FaultEvent& ev, bool begin, FaultHost& host) override;
};

/// Stale-channel windows: while active, measurement frames re-deliver the
/// previous H snapshot instead of fresh estimates.
class StaleChannelInjector final : public Injector {
 public:
  [[nodiscard]] const char* name() const override { return "stale_channel"; }
  [[nodiscard]] bool handles(FaultKind k) const override {
    return k == FaultKind::kStaleChannel;
  }
  void on_edge(const FaultEvent& ev, bool begin, FaultHost& host) override;

  [[nodiscard]] bool active() const { return depth_ > 0; }

 private:
  int depth_ = 0;
};

/// Backhaul packet loss / latency windows (the Ethernet distribution of
/// the shared downlink queue, Section 9).
class BackhaulInjector final : public Injector {
 public:
  [[nodiscard]] const char* name() const override { return "backhaul"; }
  [[nodiscard]] bool handles(FaultKind k) const override {
    return k == FaultKind::kBackhaulLoss || k == FaultKind::kBackhaulDelay;
  }
  void on_edge(const FaultEvent& ev, bool begin, FaultHost& host) override;

  /// Is this downlink packet lost on the backhaul? Draws from `rng` only
  /// inside a loss window.
  [[nodiscard]] bool packet_lost(Rng& rng) const;
  /// Extra backhaul latency for a packet enqueued now (0 outside windows).
  [[nodiscard]] double delay_s() const {
    return delay_ ? delay_->magnitude : 0.0;
  }

 private:
  const FaultEvent* loss_ = nullptr;
  const FaultEvent* delay_ = nullptr;
};

/// Drives a plan's event timeline for one trial and answers the hook
/// points' queries. advance_to() is O(edges crossed); with no pending
/// edges it is two comparisons — cheap enough for every frame.
class FaultSession {
 public:
  /// `plan` must outlive the session. `trial_seed` decorrelates the
  /// probabilistic decisions across trials; the same (plan, trial_seed)
  /// always reproduces the same decisions.
  FaultSession(const FaultPlan& plan, std::size_t n_aps,
               std::uint64_t trial_seed);

  /// Activate/deactivate every edge with time <= now, dispatching point
  /// events through `host`. Monotone: time never goes backwards.
  void advance_to(double now_s, FaultHost& host);
  /// advance_to with a no-op host (point events still mark counters).
  void advance_to(double now_s);

  // --- window queries (see the injectors for semantics) ---
  [[nodiscard]] bool ap_down(std::size_t ap) const {
    return crash_.down(ap);
  }
  [[nodiscard]] std::size_t n_aps_down() const { return crash_.n_down(); }
  [[nodiscard]] bool sync_header_lost(std::size_t ap) {
    return sync_.header_lost(ap, rng_);
  }
  [[nodiscard]] double sync_header_phase_error(std::size_t ap) {
    return sync_.header_phase_error(ap, rng_);
  }
  [[nodiscard]] bool stale_channel() const { return stale_.active(); }
  [[nodiscard]] bool backhaul_packet_lost() {
    return backhaul_.packet_lost(rng_);
  }
  [[nodiscard]] double backhaul_delay_s() const {
    return backhaul_.delay_s();
  }

  /// Events whose begin edge has fired so far.
  [[nodiscard]] std::size_t events_applied() const { return applied_; }
  /// Begin time of the most recently activated event (-inf before any).
  [[nodiscard]] double last_fault_t() const { return last_fault_t_; }
  [[nodiscard]] const FaultPlan& plan() const { return *plan_; }
  [[nodiscard]] double now() const { return now_; }

 private:
  struct Edge {
    double t = 0.0;
    std::uint32_t event = 0;
    bool begin = true;
  };

  void dispatch(const Edge& e, FaultHost& host);

  const FaultPlan* plan_;
  Rng rng_;
  std::vector<Edge> edges_;  ///< sorted by (t, begin-before-end at same t)
  std::size_t next_edge_ = 0;
  double now_ = -1.0;
  std::size_t applied_ = 0;
  double last_fault_t_ = 0.0;

  ApCrashInjector crash_;
  SyncHeaderInjector sync_;
  OscillatorInjector osc_;
  StaleChannelInjector stale_;
  BackhaulInjector backhaul_;
  Injector* injectors_[5];
};

}  // namespace jmb::fault
