// Declarative fault schedules — the "what goes wrong, and when" half of
// the resilience subsystem.
//
// A FaultPlan is an immutable, sorted list of impairment events (AP
// crashes, sync-header loss, oscillator glitches, stale channel state,
// backhaul trouble) plus a seed for the plan's random decisions. Plans
// are pure data: they carry no simulation state, so one plan can be
// shared by every trial of a TrialRunner fan-out. Each trial instantiates
// its own FaultSession (fault/injector.h) whose RNG stream is derived
// from (plan seed, trial seed), keeping runs byte-identical for any
// JMB_THREADS.
//
// Plans load from JSON (--fault-plan=FILE.json; schema id
// "jmb.fault_plan.v1") or are built programmatically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jmb::obs {
class JsonValue;
}  // namespace jmb::obs

namespace jmb::fault {

/// Every impairment the subsystem can inject. Window kinds stay active
/// for `duration_s`; point kinds fire once at `t_s`.
enum class FaultKind {
  kApCrash,        ///< AP off the air from t for duration (forever if 0)
  kApRestart,      ///< point: bring a crashed AP back up
  /// window: slave loses the lead's sync header w.p. `probability`
  kSyncLoss,
  kSyncCorrupt,    ///< window: header phase corrupted by N(0, magnitude) rad
  kPhaseJump,      ///< point: oscillator phase jumps by `magnitude` rad
  kCfoStep,        ///< point: oscillator drift rate steps by `magnitude` Hz
  kStaleChannel,   ///< window: measurements return the previous H snapshot
  kBackhaulLoss,   ///< window: downlink packets lost w.p. `probability`
  kBackhaulDelay,  ///< window: downlink packets delayed by `magnitude` s
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind k);
/// Reverse lookup; returns false when `name` matches no kind.
[[nodiscard]] bool fault_kind_from_name(std::string_view name, FaultKind& out);
/// True for kinds whose effect spans [t_s, t_s + duration_s].
[[nodiscard]] bool fault_kind_is_window(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::kApCrash;
  double t_s = 0.0;         ///< activation time (simulation seconds)
  std::size_t ap = 0;       ///< target AP (ignored by backhaul/stale kinds)
  double duration_s = 0.0;  ///< window length; 0 = open-ended / point event
  double magnitude = 0.0;   ///< radians, Hz or seconds, per kind
  double probability = 1.0; ///< per-decision Bernoulli rate for loss kinds

  /// Window end (infinity for open-ended windows and point events never
  /// deactivate on their own).
  [[nodiscard]] double end_s() const;
};

/// An immutable, time-sorted fault schedule.
class FaultPlan {
 public:
  FaultPlan() = default;
  /// Events are sorted by (t_s, insertion order) on construction.
  FaultPlan(std::vector<FaultEvent> events, std::uint64_t seed);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Parse from a jmb.fault_plan.v1 JSON document. Returns an empty plan
  /// and an `error` message on malformed input.
  [[nodiscard]] static FaultPlan from_json(const obs::JsonValue& doc,
                                           std::string* error = nullptr);
  /// Load and parse `path`; empty plan + `error` on IO/parse failure.
  [[nodiscard]] static FaultPlan load(const std::string& path,
                                      std::string* error = nullptr);

  /// Serialize back to jmb.fault_plan.v1 JSON (round-trips with
  /// from_json; event order is the sorted order).
  [[nodiscard]] std::string to_json() const;

  // --- programmatic builders ---

  /// Kill `ap` at `t_s`; it stays down for `outage_s` (0 = forever).
  [[nodiscard]] static FaultPlan single_crash(std::size_t ap, double t_s,
                                              double outage_s = 0.0,
                                              std::uint64_t seed = 1);

  /// Deterministic pseudo-Poisson crash/restart churn: exponential
  /// inter-arrival gaps at `rate_hz`, each crash picking an AP uniformly
  /// from [0, n_aps) and lasting `outage_s`. Fully determined by `seed`.
  [[nodiscard]] static FaultPlan random_crashes(double rate_hz,
                                                double duration_s,
                                                std::size_t n_aps,
                                                double outage_s,
                                                std::uint64_t seed);

  /// Recurring stale-CSI windows: starting at `first_s`, a kStaleChannel
  /// window of `stale_s` seconds opens every `period_s` until
  /// `duration_s`. The distribution system re-delivers the previous H
  /// snapshot inside each window, so every precoder ages by a known
  /// amount — the fault-side twin of phy::CsiImpairment::staleness.
  [[nodiscard]] static FaultPlan periodic_stale(double first_s,
                                               double period_s,
                                               double stale_s,
                                               double duration_s,
                                               std::uint64_t seed = 1);

 private:
  std::vector<FaultEvent> events_;
  std::uint64_t seed_ = 1;
};

}  // namespace jmb::fault
