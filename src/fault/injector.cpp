#include "fault/injector.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace jmb::fault {

namespace {

/// Session RNG stream: mix the plan and trial seeds so two trials of the
/// same plan (or two plans in one trial) never share decisions.
std::uint64_t mix_seeds(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

void ApCrashInjector::on_edge(const FaultEvent& ev, bool begin,
                              FaultHost& host) {
  if (ev.ap >= down_.size()) return;
  if (ev.kind == FaultKind::kApCrash) {
    if (begin) {
      if (!down_[ev.ap]) host.on_ap_crash(ev.ap);
      down_[ev.ap] = 1;
    } else {
      if (down_[ev.ap]) host.on_ap_restart(ev.ap);
      down_[ev.ap] = 0;
    }
  } else if (ev.kind == FaultKind::kApRestart && begin) {
    if (down_[ev.ap]) host.on_ap_restart(ev.ap);
    down_[ev.ap] = 0;
  }
}

std::size_t ApCrashInjector::n_down() const {
  std::size_t n = 0;
  for (const std::uint8_t d : down_) n += d;
  return n;
}

void SyncHeaderInjector::on_edge(const FaultEvent& ev, bool begin,
                                 FaultHost& host) {
  (void)host;
  if (ev.ap >= loss_.size()) return;
  std::vector<const FaultEvent*>& slot =
      ev.kind == FaultKind::kSyncLoss ? loss_ : corrupt_;
  if (begin) {
    slot[ev.ap] = &ev;
  } else if (slot[ev.ap] == &ev) {
    slot[ev.ap] = nullptr;
  }
}

bool SyncHeaderInjector::header_lost(std::size_t ap, Rng& rng) const {
  if (ap >= loss_.size() || loss_[ap] == nullptr) return false;
  return rng.bernoulli(loss_[ap]->probability);
}

double SyncHeaderInjector::header_phase_error(std::size_t ap, Rng& rng) const {
  if (ap >= corrupt_.size() || corrupt_[ap] == nullptr) return 0.0;
  const FaultEvent& ev = *corrupt_[ap];
  if (ev.probability < 1.0 && !rng.bernoulli(ev.probability)) return 0.0;
  return rng.gaussian(ev.magnitude);
}

void OscillatorInjector::on_edge(const FaultEvent& ev, bool begin,
                                 FaultHost& host) {
  if (!begin) return;
  if (ev.kind == FaultKind::kPhaseJump) {
    host.on_phase_jump(ev.ap, ev.magnitude);
  } else if (ev.kind == FaultKind::kCfoStep) {
    host.on_cfo_step(ev.ap, ev.magnitude);
  }
}

void StaleChannelInjector::on_edge(const FaultEvent& ev, bool begin,
                                   FaultHost& host) {
  (void)ev;
  (void)host;
  depth_ += begin ? 1 : -1;
}

void BackhaulInjector::on_edge(const FaultEvent& ev, bool begin,
                               FaultHost& host) {
  (void)host;
  const FaultEvent** slot =
      ev.kind == FaultKind::kBackhaulLoss ? &loss_ : &delay_;
  if (begin) {
    *slot = &ev;
  } else if (*slot == &ev) {
    *slot = nullptr;
  }
}

bool BackhaulInjector::packet_lost(Rng& rng) const {
  if (loss_ == nullptr) return false;
  return rng.bernoulli(loss_->probability);
}

FaultSession::FaultSession(const FaultPlan& plan, std::size_t n_aps,
                           std::uint64_t trial_seed)
    : plan_(&plan),
      rng_(mix_seeds(plan.seed(), trial_seed)),
      crash_(n_aps),
      sync_(n_aps),
      injectors_{&crash_, &sync_, &osc_, &stale_, &backhaul_} {
  last_fault_t_ = -std::numeric_limits<double>::infinity();
  const std::vector<FaultEvent>& events = plan.events();
  edges_.reserve(2 * events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    edges_.push_back({ev.t_s, static_cast<std::uint32_t>(i), true});
    const double end = ev.end_s();
    if (std::isfinite(end)) {
      edges_.push_back({end, static_cast<std::uint32_t>(i), false});
    }
  }
  // Sort by time; at equal times, end edges fire before begin edges so a
  // back-to-back window pair hands over cleanly, and ties stay stable.
  std::stable_sort(edges_.begin(), edges_.end(),
                   [](const Edge& a, const Edge& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return !a.begin && b.begin;
                   });
}

void FaultSession::dispatch(const Edge& e, FaultHost& host) {
  const FaultEvent& ev = plan_->events()[e.event];
  for (Injector* inj : injectors_) {
    if (inj->handles(ev.kind)) {
      inj->on_edge(ev, e.begin, host);
      break;
    }
  }
  if (e.begin) {
    ++applied_;
    last_fault_t_ = ev.t_s;
  }
}

void FaultSession::advance_to(double now_s, FaultHost& host) {
  if (now_s < now_) return;  // monotone; ignore out-of-order pumps
  now_ = now_s;
  while (next_edge_ < edges_.size() && edges_[next_edge_].t <= now_s) {
    dispatch(edges_[next_edge_], host);
    ++next_edge_;
  }
}

void FaultSession::advance_to(double now_s) {
  FaultHost null_host;
  advance_to(now_s, null_host);
}

}  // namespace jmb::fault
