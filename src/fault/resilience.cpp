#include "fault/resilience.h"

#include <algorithm>

#include "obs/bounds.h"
#include "obs/flight/export.h"
#include "obs/flight/recorder.h"

namespace jmb::fault {

ResilienceController::ResilienceController(std::size_t n_aps,
                                           ResilienceParams params,
                                           const obs::ObsSink* obs)
    : params_(params), obs_(obs), state_(n_aps), active_(n_aps, 1) {}

void ResilienceController::note_fault(double t_s) {
  last_fault_t_ = t_s;
  if (!fault_pending_) {
    fault_pending_ = true;
    pending_since_ = t_s;
  }
  if (obs_) obs_->count("fault/injected");
}

void ResilienceController::quarantine(std::size_t ap, double t_s,
                                      const char* reason) {
  ApState& s = state_[ap];
  s.health = ApHealth::kQuarantined;
  s.clean_headers = 0;
  active_[ap] = 0;
  needs_remeasure_ = true;
  ++quarantines_;
  recovery_pending_ = true;
  // Quarantine is cold by design, so building the namespaced metric
  // names here costs nothing in steady state.
  const std::string reason_name = params_.metric_prefix + reason;
  if (fault_pending_) {
    fault_pending_ = false;
    last_detect_latency_s_ = t_s - pending_since_;
    if (obs_) {
      obs_->observe(params_.metric_prefix + "/time_to_detect_s",
                    obs::kLatencySBounds, last_detect_latency_s_);
    }
  } else {
    // Nothing announced the fault (e.g. a plan-less deployment); anchor
    // the recovery latency at detection time instead.
    pending_since_ = t_s;
  }
  if (obs_) {
    obs_->count(params_.metric_prefix + "/quarantines");
    obs_->count(reason_name);
  }
  // Flight-recorder crash scene: mark the quarantine on this thread's
  // timeline and snapshot the last N records of every thread.
  obs::flight::instant(std::string_view(reason_name),
                       obs::flight::kNoFlow, ap);
  obs::flight::trigger_dump("quarantine");
}

void ResilienceController::on_sync_result(std::size_t ap, bool ok,
                                          double residual_rad,
                                          double cfo_innovation_hz,
                                          double t_s) {
  // the lead judges, others are judged
  if (ap == 0 || ap >= state_.size()) return;
  ApState& s = state_[ap];
  if (!ok) {
    s.clean_headers = 0;
    s.residual_strikes = 0;
    ++s.consecutive_misses;
    if (s.health == ApHealth::kHealthy &&
        s.consecutive_misses >= params_.sync_miss_threshold) {
      quarantine(ap, t_s, "/quarantine_sync_loss");
    }
    if (s.health == ApHealth::kProbation) {
      s.health = ApHealth::kQuarantined;
      active_[ap] = 0;
    }
    return;
  }
  s.consecutive_misses = 0;
  const bool dirty = residual_rad > params_.residual_threshold_rad;
  if (dirty) {
    s.residual_strikes++;
    s.clean_headers = 0;
    if (obs_) {
      obs_->observe(params_.metric_prefix + "/residual_strike_rad",
                    obs::kPhaseRadBounds, residual_rad);
    }
    if (s.health == ApHealth::kHealthy &&
        s.residual_strikes >= params_.residual_strike_threshold) {
      quarantine(ap, t_s, "/quarantine_residual");
    }
    return;
  }
  (void)cfo_innovation_hz;
  s.residual_strikes = 0;
  ++s.clean_headers;
  if (s.health == ApHealth::kQuarantined &&
      s.clean_headers >= params_.probation_headers) {
    // Evidence is back; park in probation until a re-measurement epoch
    // restores a trustworthy reference.
    s.health = ApHealth::kProbation;
    needs_remeasure_ = true;
    if (obs_) obs_->count(params_.metric_prefix + "/probations");
  }
}

void ResilienceController::mark_down(std::size_t ap, double t_s) {
  if (ap >= state_.size()) return;
  if (state_[ap].health == ApHealth::kHealthy) {
    quarantine(ap, t_s, "/quarantine_marked_down");
  }
}

void ResilienceController::on_remeasure(double t_s) {
  (void)t_s;
  for (std::size_t a = 0; a < state_.size(); ++a) {
    if (state_[a].health == ApHealth::kProbation) {
      state_[a].health = ApHealth::kHealthy;
      state_[a].consecutive_misses = 0;
      state_[a].residual_strikes = 0;
      active_[a] = 1;
      if (obs_) obs_->count(params_.metric_prefix + "/readmissions");
    }
  }
  needs_remeasure_ = false;
}

void ResilienceController::on_recovered(double t_s) {
  if (!recovery_pending_) return;
  recovery_pending_ = false;
  ++recoveries_;
  last_recover_latency_s_ = t_s - pending_since_;
  if (obs_) {
    obs_->count(params_.metric_prefix + "/recoveries");
    obs_->observe(params_.metric_prefix + "/time_to_recover_s",
                  obs::kLatencySBounds, last_recover_latency_s_);
  }
}

std::size_t ResilienceController::active_count() const {
  std::size_t n = 0;
  for (const std::uint8_t a : active_) n += a;
  return n;
}

bool ResilienceController::any_quarantined() const {
  return std::any_of(active_.begin(), active_.end(),
                     [](std::uint8_t a) { return a == 0; });
}

std::size_t ResilienceController::elect_lead(std::size_t preferred) const {
  if (preferred < active_.size() && active_[preferred]) return preferred;
  for (std::size_t a = 0; a < active_.size(); ++a) {
    if (active_[a]) return a;
  }
  return active_.size();
}

}  // namespace jmb::fault
