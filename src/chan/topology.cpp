#include "chan/topology.h"

#include <algorithm>
#include <cmath>

#include "dsp/types.h"

namespace jmb::chan {

double Position::distance_to(const Position& o) const {
  const double dx = x - o.x, dy = y - o.y;
  return std::sqrt(dx * dx + dy * dy);
}

double propagation_delay_s(double distance_m) {
  constexpr double kC = 299792458.0;
  return distance_m / kC;
}

namespace {

Link make_link(const Position& ap, const Position& cl,
               const PathLossParams& pl, Rng& rng) {
  Link link;
  link.distance_m = std::max(ap.distance_to(cl), 0.5);
  link.line_of_sight = !rng.bernoulli(pl.nlos_probability);
  const double n = link.line_of_sight ? pl.exponent_los : pl.exponent_nlos;
  const double loss_db = pl.ref_loss_db +
                         10.0 * n * std::log10(link.distance_m) +
                         rng.gaussian(pl.shadowing_sigma_db);
  const double rx_dbm = pl.tx_power_dbm - loss_db;
  link.snr_db = rx_dbm - pl.noise_floor_dbm;
  link.gain = from_db(-loss_db);
  return link;
}

Position sample_perimeter(const RoomParams& room, Rng& rng) {
  // APs sit on ledges: within 0.5 m of a wall.
  const double margin = 0.5;
  const int side = rng.uniform_int(0, 3);
  Position p;
  switch (side) {
    case 0:
      p = {rng.uniform(0, room.width_m), rng.uniform(0, margin)};
      break;
    case 1:
      p = {rng.uniform(0, room.width_m),
           room.height_m - rng.uniform(0, margin)};
      break;
    case 2:
      p = {rng.uniform(0, margin), rng.uniform(0, room.height_m)};
      break;
    default:
      p = {room.width_m - rng.uniform(0, margin),
           rng.uniform(0, room.height_m)};
      break;
  }
  return p;
}

}  // namespace

Topology sample_topology(std::size_t n_aps, std::size_t n_clients,
                         const RoomParams& room, Rng& rng) {
  Topology topo;
  topo.aps.reserve(n_aps);
  for (std::size_t i = 0; i < n_aps; ++i) {
    topo.aps.push_back(sample_perimeter(room, rng));
  }
  topo.clients.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i) {
    topo.clients.push_back({rng.uniform(1.0, room.width_m - 1.0),
                            rng.uniform(1.0, room.height_m - 1.0)});
  }
  topo.links.resize(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    topo.links[c].reserve(n_aps);
    for (std::size_t a = 0; a < n_aps; ++a) {
      topo.links[c].push_back(make_link(topo.aps[a], topo.clients[c],
                                        room.path_loss, rng));
    }
  }
  return topo;
}

std::vector<std::vector<double>> diverse_link_gains(std::size_t n_aps,
                                                    std::size_t n_clients,
                                                    double lo_db, double hi_db,
                                                    Rng& rng) {
  // Random assignment of primary APs (a permutation when sizes match).
  std::vector<std::size_t> primary(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) primary[c] = c % n_aps;
  for (std::size_t c = n_clients; c-- > 1;) {
    std::swap(primary[c], primary[static_cast<std::size_t>(
                              rng.uniform_int(0, static_cast<int>(c)))]);
  }
  std::vector<std::vector<double>> gains(n_clients,
                                         std::vector<double>(n_aps, 0.0));
  for (std::size_t c = 0; c < n_clients; ++c) {
    const double best = rng.uniform(lo_db, hi_db);
    for (std::size_t a = 0; a < n_aps; ++a) {
      const double snr =
          (a == primary[c]) ? best : best - rng.uniform(3.0, 12.0);
      gains[c][a] = from_db(snr);
    }
  }
  return gains;
}

Position cell_center(std::size_t cell, const CellGridParams& g) {
  const std::size_t cols = g.cols > 0 ? g.cols : 1;
  return {static_cast<double>(cell % cols) * g.pitch_m,
          static_cast<double>(cell / cols) * g.pitch_m};
}

double cell_distance_m(std::size_t a, std::size_t b, const CellGridParams& g) {
  return cell_center(a, g).distance_to(cell_center(b, g));
}

double inter_cell_leakage_gain(double distance_m, const InterCellParams& p) {
  if (p.coupling_scale == 0.0) return 0.0;
  const double d = std::max(distance_m, p.ref_distance_m);
  const double loss_db =
      p.leakage_ref_db + 10.0 * p.exponent * std::log10(d / p.ref_distance_m);
  return p.coupling_scale * from_db(p.tx_snr_db - loss_db);
}

std::vector<double> inter_cell_interference(
    std::size_t self, std::size_t n_cells, const CellGridParams& grid,
    const InterCellParams& p, std::size_t n_subcarriers,
    std::uint64_t trial_seed, const std::vector<double>& duty) {
  std::vector<double> psd(n_subcarriers, 0.0);
  if (p.coupling_scale == 0.0) return psd;
  for (std::size_t j = 0; j < n_cells; ++j) {
    if (j == self) continue;
    const double d = duty.empty() ? 1.0 : duty[j % duty.size()];
    const double g = inter_cell_leakage_gain(cell_distance_m(self, j, grid), p);
    if (g <= 0.0 || d <= 0.0) continue;
    // Unordered pair key: the fade a sees toward b is the fade b sees
    // toward a, and the draw depends only on (trial, pair), never on
    // which shard computes it first.
    const std::uint64_t lo = std::min<std::uint64_t>(self, j);
    const std::uint64_t hi = std::max<std::uint64_t>(self, j);
    Rng pair_rng(trial_seed ^ (0x9e3779b97f4a7c15ull * (lo + 1)) ^
                 (0xbf58476d1ce4e5b9ull * (hi + 1)));
    for (std::size_t k = 0; k < n_subcarriers; ++k) {
      // Rayleigh-faded power with unit mean: |CN(0, 1)|^2.
      const cplx h = pair_rng.cgaussian(1.0);
      psd[k] += g * d * std::norm(h);
    }
  }
  return psd;
}

Topology sample_topology_in_band(std::size_t n_aps, std::size_t n_clients,
                                 const RoomParams& room, Rng& rng,
                                 double lo_db, double hi_db, int max_tries) {
  Topology best;
  double best_violation = 1e18;
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    Topology t = sample_topology(n_aps, n_clients, room, rng);
    double violation = 0.0;
    for (std::size_t c = 0; c < n_clients; ++c) {
      double snr = -1e18;
      for (const Link& l : t.links[c]) snr = std::max(snr, l.snr_db);
      if (snr < lo_db) violation += lo_db - snr;
      if (snr > hi_db) violation += snr - hi_db;
    }
    if (violation < best_violation) {
      best_violation = violation;
      best = std::move(t);
      if (best_violation == 0.0) return best;
    }
  }
  // Clamp the stragglers into the band by scaling all of a client's link
  // gains (equivalent to moving the client slightly / adjusting tx power).
  for (std::size_t c = 0; c < best.clients.size(); ++c) {
    double snr = -1e18;
    for (const Link& l : best.links[c]) snr = std::max(snr, l.snr_db);
    double shift_db = 0.0;
    if (snr < lo_db) shift_db = lo_db - snr;
    if (snr > hi_db) shift_db = hi_db - snr;
    if (shift_db != 0.0) {
      for (Link& l : best.links[c]) {
        l.snr_db += shift_db;
        l.gain *= from_db(shift_db);
      }
    }
  }
  return best;
}

}  // namespace jmb::chan
