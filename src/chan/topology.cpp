#include "chan/topology.h"

#include <algorithm>
#include <cmath>

#include "dsp/types.h"

namespace jmb::chan {

double Position::distance_to(const Position& o) const {
  const double dx = x - o.x, dy = y - o.y;
  return std::sqrt(dx * dx + dy * dy);
}

double propagation_delay_s(double distance_m) {
  constexpr double kC = 299792458.0;
  return distance_m / kC;
}

namespace {

Link make_link(const Position& ap, const Position& cl,
               const PathLossParams& pl, Rng& rng) {
  Link link;
  link.distance_m = std::max(ap.distance_to(cl), 0.5);
  link.line_of_sight = !rng.bernoulli(pl.nlos_probability);
  const double n = link.line_of_sight ? pl.exponent_los : pl.exponent_nlos;
  const double loss_db = pl.ref_loss_db +
                         10.0 * n * std::log10(link.distance_m) +
                         rng.gaussian(pl.shadowing_sigma_db);
  const double rx_dbm = pl.tx_power_dbm - loss_db;
  link.snr_db = rx_dbm - pl.noise_floor_dbm;
  link.gain = from_db(-loss_db);
  return link;
}

Position sample_perimeter(const RoomParams& room, Rng& rng) {
  // APs sit on ledges: within 0.5 m of a wall.
  const double margin = 0.5;
  const int side = rng.uniform_int(0, 3);
  Position p;
  switch (side) {
    case 0:
      p = {rng.uniform(0, room.width_m), rng.uniform(0, margin)};
      break;
    case 1:
      p = {rng.uniform(0, room.width_m),
           room.height_m - rng.uniform(0, margin)};
      break;
    case 2:
      p = {rng.uniform(0, margin), rng.uniform(0, room.height_m)};
      break;
    default:
      p = {room.width_m - rng.uniform(0, margin),
           rng.uniform(0, room.height_m)};
      break;
  }
  return p;
}

}  // namespace

Topology sample_topology(std::size_t n_aps, std::size_t n_clients,
                         const RoomParams& room, Rng& rng) {
  Topology topo;
  topo.aps.reserve(n_aps);
  for (std::size_t i = 0; i < n_aps; ++i) {
    topo.aps.push_back(sample_perimeter(room, rng));
  }
  topo.clients.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i) {
    topo.clients.push_back({rng.uniform(1.0, room.width_m - 1.0),
                            rng.uniform(1.0, room.height_m - 1.0)});
  }
  topo.links.resize(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    topo.links[c].reserve(n_aps);
    for (std::size_t a = 0; a < n_aps; ++a) {
      topo.links[c].push_back(make_link(topo.aps[a], topo.clients[c],
                                        room.path_loss, rng));
    }
  }
  return topo;
}

Topology sample_topology_in_band(std::size_t n_aps, std::size_t n_clients,
                                 const RoomParams& room, Rng& rng,
                                 double lo_db, double hi_db, int max_tries) {
  Topology best;
  double best_violation = 1e18;
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    Topology t = sample_topology(n_aps, n_clients, room, rng);
    double violation = 0.0;
    for (std::size_t c = 0; c < n_clients; ++c) {
      double snr = -1e18;
      for (const Link& l : t.links[c]) snr = std::max(snr, l.snr_db);
      if (snr < lo_db) violation += lo_db - snr;
      if (snr > hi_db) violation += snr - hi_db;
    }
    if (violation < best_violation) {
      best_violation = violation;
      best = std::move(t);
      if (best_violation == 0.0) return best;
    }
  }
  // Clamp the stragglers into the band by scaling all of a client's link
  // gains (equivalent to moving the client slightly / adjusting tx power).
  for (std::size_t c = 0; c < best.clients.size(); ++c) {
    double snr = -1e18;
    for (const Link& l : best.links[c]) snr = std::max(snr, l.snr_db);
    double shift_db = 0.0;
    if (snr < lo_db) shift_db = lo_db - snr;
    if (snr > hi_db) shift_db = hi_db - snr;
    if (shift_db != 0.0) {
      for (Link& l : best.links[c]) {
        l.snr_db += shift_db;
        l.gain *= from_db(shift_db);
      }
    }
  }
  return best;
}

}  // namespace jmb::chan
