// Rayleigh tapped-delay-line channel with exponential power-delay profile
// and first-order Gauss-Markov time evolution (coherence time ~ hundreds of
// milliseconds indoors, the figure the paper amortizes channel measurement
// over).
#pragma once

#include <cstdint>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace jmb::chan {

struct FadingParams {
  double gain = 1.0;              ///< average power gain (from path loss)
  std::size_t n_taps = 4;         ///< delay-line length at nominal spacing
  double tap_decay = 0.5;         ///< power ratio between consecutive taps
  double rice_k = 0.0;            ///< Rician K-factor for tap 0 (0 = Rayleigh)
  double delay_s = 0.0;           ///< propagation delay (fractional samples ok)
  double coherence_time_s = 0.25; ///< e^{-1} decorrelation time
  double sample_rate_hz = 10e6;
  std::uint64_t seed = 1;
};

/// One directed link's impulse response, evolving in time via a
/// sum-of-sinusoids (Jakes) model: tap autocorrelation ~ J0(2 pi f_D dt),
/// flat at short lags and decorrelated past the coherence time.
///
/// Invariant: queries must be made with non-decreasing time (evolve_to is
/// monotone); taps are constant between evolve_to calls, matching the
/// block-fading assumption (packet << coherence time).
class FadingChannel {
 public:
  explicit FadingChannel(FadingParams p);

  /// Advance the tap process to absolute time t (seconds, monotone).
  void evolve_to(double t_seconds);

  /// Current taps (nominal sample spacing).
  [[nodiscard]] const cvec& taps() const { return taps_; }

  /// Average (ensemble) power gain of the link.
  [[nodiscard]] double mean_gain() const { return params_.gain; }

  /// Propagation delay in nominal samples (fractional).
  [[nodiscard]] double delay_samples() const {
    return params_.delay_s * params_.sample_rate_hz;
  }

  /// Convolve a burst with the current taps (output length x.size() +
  /// n_taps - 1). Delay is NOT applied here — the Medium applies it when
  /// resampling onto the receiver's clock.
  [[nodiscard]] cvec apply(const cvec& x) const;

  /// Frequency response on a given FFT bin count (diagnostics, and the
  /// "true channel" oracle used by tests and the link-level model).
  [[nodiscard]] cvec frequency_response(std::size_t nfft) const;

  [[nodiscard]] const FadingParams& params() const { return params_; }

 private:
  struct Scatterer {
    double freq_hz = 0.0;   ///< Doppler shift of this path
    double phase = 0.0;     ///< initial phase
    double amplitude = 0.0;
  };

  FadingParams params_;
  Rng rng_;
  cvec taps_;
  cvec mean_taps_;  ///< deterministic (LOS) component per tap
  std::vector<std::vector<Scatterer>> scatterers_;  ///< diffuse paths per tap
  double t_ = 0.0;

  void draw_initial();
};

}  // namespace jmb::chan
