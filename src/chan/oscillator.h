// Free-running oscillator model — the impairment JMB exists to fight.
//
// Every node owns one crystal that derives both its RF carrier and its
// sampling clock, so a part-per-million error shows up twice:
//   * carrier frequency offset (CFO): ppm * carrier_hz * 1e-6 (kHz-scale),
//   * sampling frequency offset (SFO): the same ppm on the sample clock.
// On top of the deterministic offset sits Wiener phase noise: a random
// walk whose variance grows linearly in time. This is exactly why CFO
// *prediction* accumulates error across packets (paper Section 5.2) while
// JMB's direct per-packet phase re-measurement does not.
#pragma once

#include <cstdint>
#include <map>

#include "dsp/types.h"

namespace jmb::chan {

struct OscillatorParams {
  double ppm = 0.0;                      ///< crystal error, parts per million
  double carrier_hz = 2.4e9;  ///< RF carrier the crystal multiplies to
  double sample_rate_hz = 10e6;          ///< nominal ADC/DAC rate
  double phase_noise_linewidth_hz = 0.1; ///< Wiener linewidth (3 dB width)
  std::uint64_t seed = 1;                ///< phase-noise stream seed
};

/// One node's oscillator. Thread-compatible (no internal locking).
class Oscillator {
 public:
  explicit Oscillator(OscillatorParams p);

  /// Deterministic carrier offset in Hz relative to nominal, including
  /// any injected drift-rate steps.
  [[nodiscard]] double cfo_hz() const {
    return params_.ppm * 1e-6 * params_.carrier_hz + injected_cfo_hz_;
  }

  /// Actual sample rate of this node's converters.
  [[nodiscard]] double sample_rate_hz() const {
    return params_.sample_rate_hz * (1.0 + params_.ppm * 1e-6);
  }

  /// Clock ratio relative to nominal (1 + ppm*1e-6).
  [[nodiscard]] double clock_ratio() const { return 1.0 + params_.ppm * 1e-6; }

  /// Phase-noise sample theta(n) at nominal sample index n (radians).
  /// Deterministic: the same (seed, n) always yields the same phase, so a
  /// transmitter queried for several receivers stays self-consistent.
  [[nodiscard]] double phase_noise_at(std::uint64_t n) const;

  /// Total oscillator rotation at true time t seconds (index n = t * fs):
  /// e^{j(2 pi cfo t + theta(n))}.
  [[nodiscard]] cplx rotation_at(double t_seconds) const;

  [[nodiscard]] const OscillatorParams& params() const { return params_; }

  /// Fault injection (fault/injector.h): an instantaneous carrier-phase
  /// jump — a micro phase-hit such as a PLL cycle slip or a supply glitch.
  /// Accumulates across calls; affects rotation_at() from now on.
  void inject_phase_jump(double radians) { injected_phase_rad_ += radians; }
  /// Fault injection: a drift-rate step — the crystal's frequency walks to
  /// a new operating point (temperature shock, aging step). Accumulates
  /// into cfo_hz() so both the carrier rotation and every consumer of the
  /// deterministic offset see it.
  void inject_cfo_step(double hz) { injected_cfo_hz_ += hz; }
  [[nodiscard]] double injected_phase_rad() const {
    return injected_phase_rad_;
  }
  [[nodiscard]] double injected_cfo_hz() const { return injected_cfo_hz_; }

 private:
  OscillatorParams params_;
  double sigma_per_sample_ = 0.0;  ///< phase-noise increment std dev
  double injected_phase_rad_ = 0.0;
  double injected_cfo_hz_ = 0.0;

  /// Sparse checkpoints of the random walk (every kCheckpointStride
  /// samples), filled in lazily; mutable cache of a deterministic process.
  static constexpr std::uint64_t kCheckpointStride = 1u << 14;
  mutable std::map<std::uint64_t, double> checkpoints_;
  /// Memo of the most recent query: receive loops ask for near-monotone
  /// indices, so continuing from here makes them O(1) amortized.
  mutable std::uint64_t last_idx_ = 0;
  mutable double last_phase_ = 0.0;

  [[nodiscard]] double increment(std::uint64_t n) const;
};

}  // namespace jmb::chan
