#include "chan/oscillator.h"

#include <cmath>

namespace jmb::chan {

namespace {

// splitmix64: cheap stateless hash -> 64 uniform bits per (seed, counter).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// One standard Gaussian from two hashed uniforms (Box-Muller). The seed is
// pre-mixed so that distinct seeds yield independent streams even for
// overlapping counter ranges (nodes must not share phase noise).
double hashed_gaussian(std::uint64_t seed, std::uint64_t n) {
  const std::uint64_t key = splitmix64(seed);
  const std::uint64_t a = splitmix64(key ^ splitmix64(2 * n + 1));
  const std::uint64_t b = splitmix64(key ^ splitmix64(2 * n + 2));
  const double u1 = (static_cast<double>(a >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = (static_cast<double>(b >> 11) + 0.5) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace

Oscillator::Oscillator(OscillatorParams p) : params_(p) {
  // Wiener phase noise with linewidth B: Var[theta(t+dt) - theta(t)] =
  // 2 pi B dt. Per nominal sample: sigma^2 = 2 pi B / fs.
  sigma_per_sample_ = std::sqrt(kTwoPi * params_.phase_noise_linewidth_hz /
                                params_.sample_rate_hz);
  checkpoints_[0] = 0.0;
}

double Oscillator::increment(std::uint64_t n) const {
  return sigma_per_sample_ * hashed_gaussian(params_.seed, n);
}

double Oscillator::phase_noise_at(std::uint64_t n) const {
  if (sigma_per_sample_ == 0.0) return 0.0;
  // Start from the better of: the nearest checkpoint at or below n, or the
  // previous query's position (receive loops walk near-monotonically).
  auto it = checkpoints_.upper_bound(n);
  --it;  // checkpoints_[0] always exists
  std::uint64_t idx = it->first;
  double phase = it->second;
  if (last_idx_ <= n && last_idx_ > idx) {
    idx = last_idx_;
    phase = last_phase_;
  }
  while (idx < n) {
    ++idx;
    phase += increment(idx);
    if (idx % kCheckpointStride == 0) checkpoints_[idx] = phase;
  }
  last_idx_ = n;
  last_phase_ = phase;
  return phase;
}

cplx Oscillator::rotation_at(double t_seconds) const {
  const double det = kTwoPi * cfo_hz() * t_seconds;
  const auto n = static_cast<std::uint64_t>(
      std::max(0.0, t_seconds * params_.sample_rate_hz));
  return phasor(det + phase_noise_at(n) + injected_phase_rad_);
}

}  // namespace jmb::chan
