// Conference-room geometry: AP positions on ledges around the perimeter,
// clients scattered inside, log-distance path loss with lognormal
// shadowing and a LOS/NLOS mix — reproducing the "significantly diverse
// SNRs ... due to obstacles such as pillars, furniture, ledges" of the
// paper's testbed (Section 10c, Fig. 5).
#pragma once

#include <vector>

#include "dsp/rng.h"

namespace jmb::chan {

struct Position {
  double x = 0.0;  ///< meters
  double y = 0.0;

  [[nodiscard]] double distance_to(const Position& o) const;
};

struct PathLossParams {
  double ref_loss_db = 40.0;     ///< loss at 1 m (2.4 GHz indoor)
  double exponent_los = 2.0;
  double exponent_nlos = 3.2;
  double shadowing_sigma_db = 3.0;
  double nlos_probability = 0.35;
  double tx_power_dbm = 10.0;
  double noise_floor_dbm = -91.0;  ///< thermal + NF over 10 MHz
};

struct Link {
  double gain = 0.0;      ///< linear power gain (signal power / tx power)
  bool line_of_sight = true;
  double distance_m = 0.0;
  double snr_db = 0.0;    ///< at the configured tx power / noise floor
};

/// A sampled room layout: positions and the (AP x client) link budget.
struct Topology {
  std::vector<Position> aps;
  std::vector<Position> clients;
  /// links[client][ap]
  std::vector<std::vector<Link>> links;
};

struct RoomParams {
  double width_m = 18.0;
  double height_m = 12.0;
  PathLossParams path_loss;
};

/// Sample a random placement of n_aps APs (perimeter ledges) and n_clients
/// clients (interior), with per-link path loss.
[[nodiscard]] Topology sample_topology(std::size_t n_aps, std::size_t n_clients,
                                       const RoomParams& room, Rng& rng);

/// Resample client positions until every client's *best-AP* SNR falls in
/// [lo_db, hi_db] — how the paper picks topologies per SNR range
/// ("place nodes ... such that all clients obtain an effective SNR in the
/// desired range"). Gives up after `max_tries` and returns the closest
/// attempt, clamping link gains into the band.
[[nodiscard]] Topology sample_topology_in_band(std::size_t n_aps,
                                               std::size_t n_clients,
                                               const RoomParams& room, Rng& rng,
                                               double lo_db, double hi_db,
                                               int max_tries = 200);

/// Propagation delay over distance d (speed of light), in seconds.
[[nodiscard]] double propagation_delay_s(double distance_m);

}  // namespace jmb::chan
