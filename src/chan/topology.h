// Conference-room geometry: AP positions on ledges around the perimeter,
// clients scattered inside, log-distance path loss with lognormal
// shadowing and a LOS/NLOS mix — reproducing the "significantly diverse
// SNRs ... due to obstacles such as pillars, furniture, ledges" of the
// paper's testbed (Section 10c, Fig. 5).
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/rng.h"

namespace jmb::chan {

struct Position {
  double x = 0.0;  ///< meters
  double y = 0.0;

  [[nodiscard]] double distance_to(const Position& o) const;
};

struct PathLossParams {
  double ref_loss_db = 40.0;     ///< loss at 1 m (2.4 GHz indoor)
  double exponent_los = 2.0;
  double exponent_nlos = 3.2;
  double shadowing_sigma_db = 3.0;
  double nlos_probability = 0.35;
  double tx_power_dbm = 10.0;
  double noise_floor_dbm = -91.0;  ///< thermal + NF over 10 MHz
};

struct Link {
  double gain = 0.0;      ///< linear power gain (signal power / tx power)
  bool line_of_sight = true;
  double distance_m = 0.0;
  double snr_db = 0.0;    ///< at the configured tx power / noise floor
};

/// A sampled room layout: positions and the (AP x client) link budget.
struct Topology {
  std::vector<Position> aps;
  std::vector<Position> clients;
  /// links[client][ap]
  std::vector<std::vector<Link>> links;
};

struct RoomParams {
  double width_m = 18.0;
  double height_m = 12.0;
  PathLossParams path_loss;
};

/// Sample a random placement of n_aps APs (perimeter ledges) and n_clients
/// clients (interior), with per-link path loss.
[[nodiscard]] Topology sample_topology(std::size_t n_aps, std::size_t n_clients,
                                       const RoomParams& room, Rng& rng);

/// Resample client positions until every client's *best-AP* SNR falls in
/// [lo_db, hi_db] — how the paper picks topologies per SNR range
/// ("place nodes ... such that all clients obtain an effective SNR in the
/// desired range"). Gives up after `max_tries` and returns the closest
/// attempt, clamping link gains into the band.
[[nodiscard]] Topology sample_topology_in_band(std::size_t n_aps,
                                               std::size_t n_clients,
                                               const RoomParams& room, Rng& rng,
                                               double lo_db, double hi_db,
                                               int max_tries = 200);

/// Propagation delay over distance d (speed of light), in seconds.
[[nodiscard]] double propagation_delay_s(double distance_m);

/// Dense-deployment link gains: every client has a distinct nearby AP
/// whose SNR lands in [lo_db, hi_db], with the remaining APs a few dB
/// below (clients scatter across the room, so each is close to *some*
/// AP). This diagonal dominance is what keeps the paper's channel
/// matrices "random and well conditioned" even at 10x10.
[[nodiscard]] std::vector<std::vector<double>> diverse_link_gains(
    std::size_t n_aps, std::size_t n_clients, double lo_db, double hi_db,
    Rng& rng);

// ---------------------------------------------------------------------------
// Metro-scale cell grid: each cell is one conference-room-sized JMB
// cluster; cells tile a square-ish grid with `pitch_m` between centers.
// Neighboring clusters leak into each other through walls and streets —
// modeled as distance-based coupling applied as a per-subcarrier noise
// rise at the victim cell (see inter_cell_interference).
// ---------------------------------------------------------------------------

struct CellGridParams {
  std::size_t cols = 4;   ///< grid columns; cell i sits at (i % cols, i / cols)
  double pitch_m = 30.0;  ///< center-to-center spacing
};

/// Center of cell `cell` on the grid (row-major placement).
[[nodiscard]] Position cell_center(std::size_t cell, const CellGridParams& g);

/// Center-to-center distance between two cells (symmetric).
[[nodiscard]] double cell_distance_m(std::size_t a, std::size_t b,
                                     const CellGridParams& g);

struct InterCellParams {
  /// Neighbor cluster's in-band transmit level over the victim's noise
  /// floor, before coupling loss (dB).
  double tx_snr_db = 30.0;
  /// Coupling loss at ref_distance_m (dB): walls + street-level clutter.
  double leakage_ref_db = 30.0;
  double ref_distance_m = 30.0;
  /// Beyond-ref falloff exponent (urban canyon, > indoor NLOS).
  double exponent = 3.5;
  /// Linear multiplier on the whole term; 0 disables inter-cell coupling
  /// exactly (the degenerate single-cell path draws nothing and adds
  /// nothing, keeping legacy configs bitwise identical).
  double coupling_scale = 1.0;
};

/// Mean linear interference-to-noise gain contributed by a neighbor
/// `distance_m` away: coupling_scale * 10^((tx_snr_db - loss(d)) / 10)
/// with loss(d) = leakage_ref_db + 10 * exponent * log10(d / ref), d
/// clamped to ref_distance_m from below. Monotone non-increasing in
/// distance; exactly 0.0 when coupling_scale == 0.
[[nodiscard]] double inter_cell_leakage_gain(double distance_m,
                                             const InterCellParams& p);

/// Aggregate per-subcarrier interference power at cell `self` from every
/// other cell on the grid, in units of the victim's noise floor
/// (noise-rise: post-interference SNR'[k] = SNR[k] / (1 + I[k])).
///
/// Each (cell pair, subcarrier) gets an independent Rayleigh-faded draw
/// seeded from `trial_seed` and the *unordered* pair — deterministic for
/// any shard schedule, and symmetric: cell a sees the same fade toward b
/// as b toward a. `duty[j]` scales neighbor j's contribution by its
/// transmit duty cycle (fraction of airtime actually occupied); pass 1.0
/// for saturated neighbors. Returns all-zeros (no RNG draws) when
/// coupling_scale == 0.
[[nodiscard]] std::vector<double> inter_cell_interference(
    std::size_t self, std::size_t n_cells, const CellGridParams& grid,
    const InterCellParams& p, std::size_t n_subcarriers,
    std::uint64_t trial_seed, const std::vector<double>& duty);

}  // namespace jmb::chan
