#include "chan/medium.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/resampler.h"

namespace jmb::chan {

Medium::Medium(MediumParams p, std::uint64_t noise_seed)
    : params_(p), noise_rng_(noise_seed) {}

NodeId Medium::add_node(OscillatorParams osc, double noise_var) {
  osc.sample_rate_hz = params_.sample_rate_hz;
  nodes_.push_back(Node{Oscillator(osc), noise_var, {}});
  return nodes_.size() - 1;
}

const Oscillator& Medium::oscillator(NodeId id) const {
  return nodes_.at(id).osc;
}

Oscillator& Medium::oscillator_mutable(NodeId id) { return nodes_.at(id).osc; }

double Medium::noise_var(NodeId id) const { return nodes_.at(id).noise_var; }

void Medium::set_noise_var(NodeId id, double noise_var) {
  nodes_.at(id).noise_var = noise_var;
}

void Medium::set_interference(NodeId rx, std::vector<double> psd) {
  nodes_.at(rx).interference_psd = std::move(psd);
}

const std::vector<double>& Medium::interference(NodeId rx) const {
  return nodes_.at(rx).interference_psd;
}

void Medium::set_link(NodeId tx, NodeId rx, FadingParams fading) {
  if (tx >= nodes_.size() || rx >= nodes_.size()) {
    throw std::invalid_argument("Medium::set_link: unknown node");
  }
  fading.sample_rate_hz = params_.sample_rate_hz;
  links_[{tx, rx}] = std::make_unique<FadingChannel>(fading);
}

FadingChannel* Medium::link(NodeId tx, NodeId rx) {
  const auto it = links_.find({tx, rx});
  return it == links_.end() ? nullptr : it->second.get();
}

const FadingChannel* Medium::link(NodeId tx, NodeId rx) const {
  const auto it = links_.find({tx, rx});
  return it == links_.end() ? nullptr : it->second.get();
}

void Medium::evolve_links_to(double t_seconds) {
  for (auto& [key, chan] : links_) chan->evolve_to(t_seconds);
}

void Medium::transmit(NodeId tx, double start_s, cvec samples) {
  if (tx >= nodes_.size()) {
    throw std::invalid_argument("Medium::transmit: unknown node");
  }
  transmissions_.push_back({tx, start_s, std::move(samples)});
}

void Medium::clear_transmissions() { transmissions_.clear(); }

cvec Medium::receive(NodeId rx, double start_s, std::size_t n) {
  if (rx >= nodes_.size()) {
    throw std::invalid_argument("Medium::receive: unknown node");
  }
  const Node& rxn = nodes_[rx];
  const double fs = params_.sample_rate_hz;
  const double fs_rx = rxn.osc.sample_rate_hz();

  // Start with the receiver's own thermal noise.
  cvec y(n);
  for (cplx& v : y) v = noise_rng_.cgaussian(rxn.noise_var);

  // Inter-cell interference as shaped noise: draw each FFT bin at the
  // installed per-subcarrier power and transform one block at a time.
  // Bin k of variance nfft * psd[k] lands in the time domain (ifft
  // scales by 1/N) with per-sample variance mean(psd) — a flat psd of v
  // raises the white floor by exactly v. Receivers without a profile
  // skip this entirely (no RNG draws), keeping legacy runs bitwise
  // identical.
  if (!rxn.interference_psd.empty()) {
    const std::vector<double>& psd = rxn.interference_psd;
    const std::size_t nfft = psd.size();
    const auto nfft_d = static_cast<double>(nfft);
    cvec bins(nfft);
    for (std::size_t start = 0; start < n; start += nfft) {
      for (std::size_t k = 0; k < nfft; ++k) {
        bins[k] = noise_rng_.cgaussian(nfft_d * psd[k]);
      }
      const cvec block = ifft(bins);
      const std::size_t len = std::min(nfft, n - start);
      for (std::size_t i = 0; i < len; ++i) y[start + i] += block[i];
    }
  }

  for (const Transmission& t : transmissions_) {
    if (t.tx == rx) continue;  // half-duplex: a node doesn't hear itself
    const FadingChannel* ch = link(t.tx, rx);
    if (ch == nullptr) continue;

    const Node& txn = nodes_[t.tx];
    const double fs_tx = txn.osc.sample_rate_hz();
    const double delta_cfo = txn.osc.cfo_hz() - rxn.osc.cfo_hz();

    // Multipath at nominal tap spacing, then the pair-specific time base:
    // receiver sample m is taken at true time  t_m = start_s + m / fs_rx,
    // and sees the transmit waveform at position (t_m - t0 - delay) * fs_tx.
    const cvec conv = ch->apply(t.samples);
    const double delay_s = ch->delay_samples() / fs;
    const double t0 = t.start_s + delay_s;

    // Quick reject: does this burst overlap the window at all?
    const double burst_end = t0 + static_cast<double>(conv.size()) / fs_tx;
    const double win_start = start_s;
    const double win_end = start_s + static_cast<double>(n) / fs_rx;
    if (burst_end < win_start || t0 > win_end) continue;

    for (std::size_t m = 0; m < n; ++m) {
      const double tm = start_s + static_cast<double>(m) / fs_rx;
      const double pos = (tm - t0) * fs_tx;
      if (pos < 0.0 || pos > static_cast<double>(conv.size() - 1)) continue;
      const cplx s = interp_cubic(conv, pos);
      if (s == cplx{}) continue;
      // Oscillator rotations evaluated at true time.
      const double det = kTwoPi * delta_cfo * tm;
      const auto idx = static_cast<std::uint64_t>(std::max(0.0, tm * fs));
      const double pn =
          txn.osc.phase_noise_at(idx) - rxn.osc.phase_noise_at(idx);
      y[m] += s * phasor(det + pn);
    }
  }
  return y;
}

cvec Medium::true_channel(NodeId tx, NodeId rx, std::size_t nfft) const {
  const FadingChannel* ch = link(tx, rx);
  if (ch == nullptr) {
    throw std::invalid_argument("Medium::true_channel: no such link");
  }
  cvec h = ch->frequency_response(nfft);
  // Fractional-delay phase ramp: delay d samples multiplies bin k by
  // e^{-j 2 pi k d / nfft} (k interpreted as signed logical index).
  const double d = ch->delay_samples();
  for (std::size_t b = 0; b < nfft; ++b) {
    const int k = (b <= nfft / 2)
                      ? static_cast<int>(b)
                      : static_cast<int>(b) - static_cast<int>(nfft);
    h[b] *= phasor(-kTwoPi * static_cast<double>(k) * d /
                   static_cast<double>(nfft));
  }
  return h;
}

}  // namespace jmb::chan
