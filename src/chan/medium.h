// The shared wireless medium at complex-baseband sample level.
//
// Nodes register with an oscillator and a noise floor; directed links get a
// fading channel. Transmissions are scheduled on a global true-time axis;
// receivers render what they hear over a window, with every physical-layer
// impairment applied per (tx, rx) pair:
//   * tapped-delay-line convolution (multipath),
//   * propagation delay including fractional-sample part,
//   * sampling-frequency offset (the pair's relative clock skew, applied by
//     interpolating the transmit waveform at the receiver's sample times),
//   * carrier-frequency offset and phase noise of both oscillators,
//   * AWGN at the receiver's noise floor.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "chan/fading.h"
#include "chan/oscillator.h"
#include "dsp/rng.h"
#include "dsp/types.h"

namespace jmb::chan {

using NodeId = std::size_t;

struct MediumParams {
  double sample_rate_hz = 10e6;  ///< nominal system rate
};

class Medium {
 public:
  explicit Medium(MediumParams p, std::uint64_t noise_seed = 99);

  /// Register a node; returns its id. `noise_var` is the receiver's noise
  /// power per complex sample (the "noise floor" in linear units).
  NodeId add_node(OscillatorParams osc, double noise_var = 1.0);

  [[nodiscard]] std::size_t n_nodes() const { return nodes_.size(); }
  [[nodiscard]] const Oscillator& oscillator(NodeId id) const;
  /// Mutable oscillator handle for fault injection (phase jumps / CFO
  /// steps); everything else should use the const accessor.
  [[nodiscard]] Oscillator& oscillator_mutable(NodeId id);
  [[nodiscard]] double noise_var(NodeId id) const;
  /// Adjust a receiver's noise floor (used to calibrate operating SNR).
  void set_noise_var(NodeId id, double noise_var);

  /// Install a per-subcarrier interference profile at receiver `rx`:
  /// psd[k] is the extra noise power per complex sample contributed by
  /// neighboring cells' leakage on FFT bin k (noise-rise units — a flat
  /// psd of v raises the white floor by exactly v). Rendered in receive()
  /// as shaped Gaussian noise, one psd.size()-bin block at a time. An
  /// empty vector removes the profile and restores the exact legacy
  /// noise path (no extra RNG draws — bitwise identical output).
  void set_interference(NodeId rx, std::vector<double> psd);
  [[nodiscard]] const std::vector<double>& interference(NodeId rx) const;

  /// Install / replace the directed link tx -> rx.
  void set_link(NodeId tx, NodeId rx, FadingParams fading);
  [[nodiscard]] FadingChannel* link(NodeId tx, NodeId rx);
  [[nodiscard]] const FadingChannel* link(NodeId tx, NodeId rx) const;

  /// Advance all links' fading processes to time t (seconds, monotone).
  void evolve_links_to(double t_seconds);

  /// Schedule a burst from `tx` whose first sample leaves the antenna at
  /// true time `start_s` (as measured on the global clock). The node's SFO
  /// is applied when receivers resample it.
  void transmit(NodeId tx, double start_s, cvec samples);

  /// What `rx` hears over n samples of ITS OWN clock, the first taken at
  /// true time ~ start_s. Includes AWGN and both oscillators' rotations.
  [[nodiscard]] cvec receive(NodeId rx, double start_s, std::size_t n);

  /// Drop all scheduled transmissions (between experiment phases).
  void clear_transmissions();

  /// True channel frequency response tx -> rx on the 64 FFT bins right
  /// now, including the fractional-delay phase ramp — the oracle tests and
  /// the link-level model compare against. Does not include oscillator
  /// rotations (those are time-varying by nature).
  [[nodiscard]] cvec true_channel(NodeId tx, NodeId rx,
                                  std::size_t nfft = 64) const;

  [[nodiscard]] double sample_rate_hz() const { return params_.sample_rate_hz; }

 private:
  struct Node {
    Oscillator osc;
    double noise_var = 1.0;
    /// Empty = no inter-cell interference (legacy path, no RNG draws).
    std::vector<double> interference_psd;
  };
  struct Transmission {
    NodeId tx = 0;
    double start_s = 0.0;
    cvec samples;
  };

  MediumParams params_;
  std::vector<Node> nodes_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<FadingChannel>> links_;
  std::vector<Transmission> transmissions_;
  Rng noise_rng_;
};

}  // namespace jmb::chan
