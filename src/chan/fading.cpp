#include "chan/fading.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"

namespace jmb::chan {

namespace {

/// Scatterers per tap for the sum-of-sinusoids (Jakes) evolution model.
constexpr std::size_t kScatterers = 8;

/// Doppler from coherence time, defined at the 50%-correlation point:
/// J0(2 pi f_D Tc) = 0.5  =>  2 pi f_D Tc ~ 1.52.
double doppler_from_coherence(double tc_s) { return 1.52 / (kTwoPi * tc_s); }

}  // namespace

FadingChannel::FadingChannel(FadingParams p) : params_(p), rng_(p.seed) {
  if (p.n_taps == 0) {
    throw std::invalid_argument("FadingChannel: need >= 1 tap");
  }
  if (p.gain < 0) throw std::invalid_argument("FadingChannel: negative gain");
  if (p.coherence_time_s <= 0) {
    throw std::invalid_argument(
        "FadingChannel: coherence time must be positive");
  }
  draw_initial();
}

void FadingChannel::draw_initial() {
  const std::size_t L = params_.n_taps;
  // Exponential PDP: power_l = decay^l, normalized to sum = gain.
  rvec power(L);
  double total = 0.0;
  for (std::size_t l = 0; l < L; ++l) {
    power[l] = std::pow(params_.tap_decay, static_cast<double>(l));
    total += power[l];
  }
  for (double& v : power) v *= params_.gain / total;

  // Each tap = constant LOS mean (Rician) + a sum of kScatterers complex
  // sinusoids at Doppler-distributed frequencies. The sum is Rayleigh in
  // ensemble, and its autocorrelation approaches J0(2 pi f_D dt): flat
  // (quadratic) at short lags — which is what lets JMB amortize one
  // channel measurement over the coherence time — and decorrelated beyond.
  const double f_d = doppler_from_coherence(params_.coherence_time_s);
  mean_taps_.assign(L, cplx{});
  scatterers_.assign(L, {});
  taps_.assign(L, cplx{});
  for (std::size_t l = 0; l < L; ++l) {
    const double k = (l == 0) ? params_.rice_k : 0.0;
    const double los_p = power[l] * k / (k + 1.0);
    const double diffuse_p = power[l] / (k + 1.0);
    mean_taps_[l] = phasor(rng_.uniform_phase()) * std::sqrt(los_p);
    scatterers_[l].reserve(kScatterers);
    const double amp = std::sqrt(diffuse_p / static_cast<double>(kScatterers));
    for (std::size_t m = 0; m < kScatterers; ++m) {
      scatterers_[l].push_back(
          Scatterer{f_d * std::cos(rng_.uniform_phase()),
                    rng_.uniform_phase(), amp});
    }
  }
  evolve_to(0.0);
}

void FadingChannel::evolve_to(double t_seconds) {
  if (t_seconds < t_) {
    throw std::invalid_argument(
        "FadingChannel::evolve_to: time must not go backwards");
  }
  t_ = t_seconds;
  for (std::size_t l = 0; l < taps_.size(); ++l) {
    cplx acc = mean_taps_[l];
    for (const Scatterer& s : scatterers_[l]) {
      acc += s.amplitude * phasor(kTwoPi * s.freq_hz * t_seconds + s.phase);
    }
    taps_[l] = acc;
  }
}

cvec FadingChannel::apply(const cvec& x) const {
  if (x.empty()) return {};
  cvec out(x.size() + taps_.size() - 1, cplx{});
  for (std::size_t l = 0; l < taps_.size(); ++l) {
    const cplx h = taps_[l];
    if (h == cplx{}) continue;
    for (std::size_t n = 0; n < x.size(); ++n) out[n + l] += h * x[n];
  }
  return out;
}

cvec FadingChannel::frequency_response(std::size_t nfft) const {
  cvec padded(nfft, cplx{});
  for (std::size_t l = 0; l < taps_.size() && l < nfft; ++l) {
    padded[l] = taps_[l];
  }
  return fft(padded);
}

}  // namespace jmb::chan
