// Summary statistics used by experiment harnesses (medians, percentiles,
// CDFs) and by estimators (running averages of CFO across packets).
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/types.h"

namespace jmb {

/// Arithmetic mean; 0 for an empty series.
[[nodiscard]] double mean(const rvec& x);

/// Unbiased sample variance; 0 if fewer than two samples.
[[nodiscard]] double variance(const rvec& x);

/// Sample standard deviation.
[[nodiscard]] double stddev(const rvec& x);

/// q-quantile (q in [0,1]) by linear interpolation on the sorted series.
/// Throws on an empty series.
[[nodiscard]] double percentile(rvec x, double q);

/// Median (0.5-quantile).
[[nodiscard]] double median(rvec x);

/// One point on an empirical CDF.
struct CdfPoint {
  double value = 0.0;     ///< sample value
  double fraction = 0.0;  ///< fraction of samples <= value
};

/// Empirical CDF of a series, one point per sample, sorted ascending.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(rvec x);

/// Welford online mean/variance accumulator. Slave APs use this to maintain
/// the "continuously averaged estimate" of their frequency offset to the
/// lead (paper Section 5.2) without storing per-packet history.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased variance; 0 if fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exponentially-weighted moving average with configurable smoothing.
/// Used where a long-term average must also track slow drift.
class Ewma {
 public:
  /// alpha in (0,1]: weight of the newest sample.
  explicit Ewma(double alpha);
  void add(double x);
  [[nodiscard]] bool empty() const { return !initialized_; }
  [[nodiscard]] double value() const { return value_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace jmb
