// Planned radix-2 FFT: precomputed bit-reversal pairs and per-stage
// twiddle tables, executing strictly in place over a caller-owned span.
//
// Bit-identity contract: the twiddle tables are generated with the exact
// `w *= wlen` recurrence that the naive transform in fft.cpp runs per
// butterfly block, so forward()/inverse() perform the same floating-point
// operations in the same order as fft_inplace()/ifft_inplace() and produce
// bitwise-identical results. Tests assert this (test_dsp.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dsp/types.h"

namespace jmb {

class FftPlan {
 public:
  /// Builds a plan for a fixed power-of-two size. Throws otherwise.
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place forward DFT over exactly size() samples. No scaling.
  void forward(std::span<cplx> x) const;

  /// In-place inverse DFT with 1/N scaling, matching ifft_inplace().
  void inverse(std::span<cplx> x) const;

 private:
  void run(std::span<cplx> x, const std::vector<cplx>& twiddles) const;

  std::size_t n_;
  double inv_n_;
  /// (i, j) index pairs with i < j, applied as swaps for the bit-reversal
  /// permutation before the butterfly stages.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> swaps_;
  /// Concatenated per-stage twiddles (len/2 entries for each stage
  /// len = 2, 4, ..., n), one table per transform direction.
  std::vector<cplx> fwd_twiddles_;
  std::vector<cplx> inv_twiddles_;
};

}  // namespace jmb
