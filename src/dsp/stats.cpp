#include "dsp/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jmb {

double mean(const rvec& x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double variance(const rvec& x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size() - 1);
}

double stddev(const rvec& x) { return std::sqrt(variance(x)); }

double percentile(rvec x, double q) {
  if (x.empty()) throw std::invalid_argument("percentile: empty series");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile: q outside [0,1]");
  }
  std::sort(x.begin(), x.end());
  const double pos = q * static_cast<double>(x.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, x.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return x[lo] + (x[hi] - x[lo]) * frac;
}

double median(rvec x) { return percentile(std::move(x), 0.5); }

std::vector<CdfPoint> empirical_cdf(rvec x) {
  std::sort(x.begin(), x.end());
  std::vector<CdfPoint> out;
  out.reserve(x.size());
  const double n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.push_back({x[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("Ewma: alpha must be in (0,1]");
  }
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ += alpha_ * (x - value_);
  }
}

void Ewma::reset() {
  value_ = 0.0;
  initialized_ = false;
}

}  // namespace jmb
