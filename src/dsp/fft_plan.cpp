#include "dsp/fft_plan.h"

#include <stdexcept>
#include <utility>

#include "dsp/fft.h"
#include "simd/kernels.h"

namespace jmb {

namespace {

// Stage twiddles via the same `w *= wlen` recurrence the naive transform
// uses, NOT phasor(ang * k): the recurrence accumulates rounding exactly
// like the per-block loop in fft.cpp, which is what keeps the planned
// transform bitwise-identical to the naive one.
void append_stage_twiddles(std::vector<cplx>& out, std::size_t len, int sign) {
  const double ang = sign * kTwoPi / static_cast<double>(len);
  const cplx wlen = phasor(ang);
  cplx w{1.0, 0.0};
  for (std::size_t k = 0; k < len / 2; ++k) {
    out.push_back(w);
    w *= wlen;
  }
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), inv_n_(1.0 / static_cast<double>(n)) {
  if (!is_pow2(n)) {
    throw std::invalid_argument("FftPlan: size must be a power of two");
  }
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      swaps_.emplace_back(static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j));
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    append_stage_twiddles(fwd_twiddles_, len, -1);
    append_stage_twiddles(inv_twiddles_, len, +1);
  }
}

void FftPlan::run(std::span<cplx> x, const std::vector<cplx>& twiddles) const {
  if (x.size() != n_) {
    throw std::invalid_argument("FftPlan: span size does not match plan");
  }
  for (const auto& [i, j] : swaps_) std::swap(x[i], x[j]);
  // Butterfly passes over the raw double pairs (array-oriented access,
  // [complex.numbers.general]) via the dispatched SIMD kernel. Every
  // backend runs the exact operation sequence of the naive transform —
  // (br*wr - bi*wi, br*wi + bi*wr), then u+v / u-v — per butterfly,
  // vectorized only across the independent k lanes of a stage, so
  // results stay bitwise identical to the scalar reference.
  double* const d = reinterpret_cast<double*>(x.data());
  const double* const tw = reinterpret_cast<const double*>(twiddles.data());
  simd::active_kernels().fft_run(d, tw, n_);
}

void FftPlan::forward(std::span<cplx> x) const { run(x, fwd_twiddles_); }

void FftPlan::inverse(std::span<cplx> x) const {
  run(x, inv_twiddles_);
  for (cplx& v : x) v *= inv_n_;
}

}  // namespace jmb
