// Radix-2 FFT/IFFT used by the OFDM modulator and demodulator.
#pragma once

#include <cstddef>

#include "dsp/types.h"

namespace jmb {

/// True iff n is a nonzero power of two (the only sizes this FFT supports).
[[nodiscard]] bool is_pow2(std::size_t n);

/// In-place forward DFT: X[k] = sum_n x[n] e^{-j 2 pi k n / N}.
/// Requires x.size() to be a power of two. No scaling is applied.
void fft_inplace(cvec& x);

/// In-place inverse DFT with 1/N scaling, so ifft(fft(x)) == x.
void ifft_inplace(cvec& x);

/// Out-of-place convenience wrappers.
[[nodiscard]] cvec fft(cvec x);
[[nodiscard]] cvec ifft(cvec x);

/// Circular shift that moves DC to the middle (plotting / diagnostics).
[[nodiscard]] cvec fftshift(const cvec& x);

}  // namespace jmb
