// Fractional-delay resampling, used by the channel substrate to apply
// sampling-frequency offset (SFO): a receiver whose ADC clock runs at
// (1 + ppm*1e-6) times the transmitter's DAC clock effectively samples the
// waveform at slowly-drifting fractional positions.
#pragma once

#include <cstddef>

#include "dsp/types.h"

namespace jmb {

/// Evaluate x at fractional position `pos` (in samples) with cubic Lagrange
/// interpolation over the four nearest neighbours. Positions outside the
/// valid support return 0 (silence before/after a burst).
[[nodiscard]] cplx interp_cubic(const cvec& x, double pos);

/// Resample a burst by a clock-ratio: output[n] = x(n * ratio + offset).
/// ratio = 1 + sfo_ppm * 1e-6 models a receiver clock that runs fast (>1)
/// or slow (<1) relative to the transmitter; `offset` is an initial
/// fractional timing offset in samples.
[[nodiscard]] cvec resample(const cvec& x, double ratio, double offset = 0.0);

}  // namespace jmb
