// Deterministic random number generation for reproducible experiments.
#pragma once

#include <cstdint>
#include <random>

#include "dsp/types.h"

namespace jmb {

/// Seeded random source. Every experiment object takes an Rng (or a seed)
/// explicitly so that a bench rerun with the same seed reproduces the same
/// topologies, channels and noise — a property the tests rely on.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// One fair coin flip / biased Bernoulli draw.
  [[nodiscard]] bool bernoulli(double p = 0.5) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Zero-mean real Gaussian with the given standard deviation.
  [[nodiscard]] double gaussian(double stddev = 1.0) {
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// Circularly-symmetric complex Gaussian with E[|x|^2] = variance.
  [[nodiscard]] cplx cgaussian(double variance = 1.0) {
    const double s = std::sqrt(variance / 2.0);
    return {gaussian(s), gaussian(s)};
  }

  /// A run of n complex Gaussian samples with E[|x|^2] = variance.
  [[nodiscard]] cvec cgaussian_vec(std::size_t n, double variance = 1.0) {
    cvec out(n);
    for (cplx& v : out) v = cgaussian(variance);
    return out;
  }

  /// Uniform phase in [0, 2*pi).
  [[nodiscard]] double uniform_phase() { return uniform(0.0, kTwoPi); }

  /// Derive an independent child generator (used to give each node its own
  /// stream so adding a node never perturbs the draws of existing nodes).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Raw 64-bit draw.
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace jmb
