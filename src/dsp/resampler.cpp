#include "dsp/resampler.h"

#include <cmath>

namespace jmb {

cplx interp_cubic(const cvec& x, double pos) {
  // Four-point Lagrange interpolation around floor(pos). Points that fall
  // within one sample of either edge degrade gracefully to linear/nearest.
  if (x.empty() || pos < 0.0 || pos > static_cast<double>(x.size() - 1)) {
    return {0.0, 0.0};
  }
  const auto i1 = static_cast<std::ptrdiff_t>(std::floor(pos));
  const double mu = pos - static_cast<double>(i1);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());

  const auto at = [&](std::ptrdiff_t i) -> cplx {
    if (i < 0) return x.front();
    if (i >= n) return x.back();
    return x[static_cast<std::size_t>(i)];
  };
  const cplx y0 = at(i1 - 1);
  const cplx y1 = at(i1);
  const cplx y2 = at(i1 + 1);
  const cplx y3 = at(i1 + 2);

  // Catmull-Rom style cubic through the middle two samples.
  const cplx a = 0.5 * (-y0 + 3.0 * y1 - 3.0 * y2 + y3);
  const cplx b = y0 - 2.5 * y1 + 2.0 * y2 - 0.5 * y3;
  const cplx c = 0.5 * (y2 - y0);
  return ((a * mu + b) * mu + c) * mu + y1;
}

cvec resample(const cvec& x, double ratio, double offset) {
  if (x.empty()) return {};
  const double last = static_cast<double>(x.size() - 1);
  cvec out;
  out.reserve(x.size());
  for (std::size_t n = 0;; ++n) {
    const double pos = static_cast<double>(n) * ratio + offset;
    if (pos > last) break;
    out.push_back(interp_cubic(x, pos));
    if (out.size() > 4 * x.size() + 16) break;  // guard against ratio ~ 0
  }
  return out;
}

}  // namespace jmb
