#include "dsp/fft.h"

#include <stdexcept>
#include <utility>

namespace jmb {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

// Iterative Cooley-Tukey with bit-reversal permutation. `sign` is -1 for the
// forward transform and +1 for the inverse.
void transform(cvec& x, int sign) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * kTwoPi / static_cast<double>(len);
    const cplx wlen = phasor(ang);
    for (std::size_t i = 0; i < n; i += len) {
      cplx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = x[i + k];
        const cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_inplace(cvec& x) { transform(x, -1); }

void ifft_inplace(cvec& x) {
  transform(x, +1);
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (cplx& v : x) v *= inv_n;
}

cvec fft(cvec x) {
  fft_inplace(x);
  return x;
}

cvec ifft(cvec x) {
  ifft_inplace(x);
  return x;
}

cvec fftshift(const cvec& x) {
  const std::size_t n = x.size();
  cvec out(n);
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

}  // namespace jmb
