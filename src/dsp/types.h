// Fundamental sample types and dB helpers shared across the library.
#pragma once

#include <complex>
#include <cmath>
#include <vector>

namespace jmb {

/// Complex baseband sample. Double precision throughout: the paper's claims
/// hinge on phase errors of ~0.01 rad, well below float accumulation noise
/// when chaining FFTs, matrix inverses and long correlations.
using cplx = std::complex<double>;

/// A contiguous run of complex samples (one antenna / one subcarrier set).
using cvec = std::vector<cplx>;

/// A real-valued series (magnitudes, SNRs, phases, ...).
using rvec = std::vector<double>;

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

/// Power ratio -> decibels.
[[nodiscard]] inline double to_db(double power_ratio) {
  return 10.0 * std::log10(power_ratio);
}

/// Decibels -> power ratio.
[[nodiscard]] inline double from_db(double db) {
  return std::pow(10.0, db / 10.0);
}

/// Amplitude ratio -> decibels.
[[nodiscard]] inline double amp_to_db(double amp_ratio) {
  return 20.0 * std::log10(amp_ratio);
}

/// Wrap an angle to (-pi, pi].
[[nodiscard]] inline double wrap_phase(double phi) {
  phi = std::fmod(phi + kPi, kTwoPi);
  if (phi < 0) phi += kTwoPi;
  return phi - kPi;
}

/// Mean power (|x|^2 averaged) of a sample run; 0 for an empty run.
[[nodiscard]] inline double mean_power(const cvec& x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const cplx& v : x) acc += std::norm(v);
  return acc / static_cast<double>(x.size());
}

/// Total energy (sum of |x|^2) of a sample run.
[[nodiscard]] inline double energy(const cvec& x) {
  double acc = 0.0;
  for (const cplx& v : x) acc += std::norm(v);
  return acc;
}

/// e^{j*phi} as a unit phasor.
[[nodiscard]] inline cplx phasor(double phi) {
  return {std::cos(phi), std::sin(phi)};
}

}  // namespace jmb
