// Opt-in heap-allocation counters for the zero-allocation contract.
//
// The companion TU (alloc_count.cpp, built as the `jmb_alloc_count` static
// library) replaces the global operator new/delete with counting versions.
// Linking that library is what arms the instrument; this header only
// declares the control surface, so production binaries that never link
// `jmb_alloc_count` keep the stock allocator with zero overhead.
//
// Counting is off until enabled — either programmatically with
// set_alloc_counting(true) or by setting the JMB_COUNT_ALLOCS environment
// variable (checked once, at the first allocation) — so process startup
// and test-framework noise never pollute a measurement window.
#pragma once

#include <cstdint>

#include "obs/registry.h"

namespace jmb::obs {

/// Snapshot of the global allocation counters.
struct AllocCounts {
  std::uint64_t allocs = 0;    ///< operator new calls while counting was on
  std::uint64_t deallocs = 0;  ///< operator delete calls while counting was on
  std::uint64_t bytes = 0;     ///< total bytes requested while counting was on
};

/// Turn counting on/off. Thread-safe; affects all threads.
void set_alloc_counting(bool on);

/// True while counting is enabled (explicitly or via JMB_COUNT_ALLOCS).
[[nodiscard]] bool alloc_counting_enabled();

/// Zero all counters.
void reset_alloc_counts();

/// Read the counters (racy snapshots are fine: each field is atomic).
[[nodiscard]] AllocCounts alloc_counts();

/// Record the current counters as kTiming gauges (alloc/new_calls,
/// alloc/delete_calls, alloc/bytes) so a run's allocation profile rides
/// along in --metrics-timing exports without touching physics output.
void export_alloc_metrics(MetricRegistry& reg);

}  // namespace jmb::obs
