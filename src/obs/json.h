// Minimal JSON value, writer, and recursive-descent parser.
//
// Exists so exporters and the bench_result schema validator need no
// third-party dependency. Objects preserve insertion order and doubles
// serialize with %.17g (round-trip exact), so a document built from a
// deterministic registry serializes byte-identically everywhere.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jmb::obs {

/// Append `v` formatted with %.17g — integral values print without an
/// exponent or trailing ".0" (1234, not 1.234e3).
void append_json_double(std::string& out, double v);

/// Append `s` as a quoted, escaped JSON string literal.
void append_json_string(std::string& out, std::string_view s);

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Insertion-ordered key/value list (duplicate keys keep the first).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}                // NOLINT
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}             // NOLINT
  JsonValue(int i) : kind_(Kind::kNumber), num_(i) {}                // NOLINT
  JsonValue(std::uint64_t u)                                         // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  JsonValue(std::string s)  // NOLINT
      : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}        // NOLINT
  JsonValue(JsonArray a)  // NOLINT
      : kind_(Kind::kArray), arr_(std::move(a)) {}
  JsonValue(JsonObject o)  // NOLINT
      : kind_(Kind::kObject), obj_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const JsonArray& as_array() const { return arr_; }
  [[nodiscard]] const JsonObject& as_object() const { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;

  void append_to(std::string& out) const;
  [[nodiscard]] std::string dump() const {
    std::string out;
    append_to(out);
    return out;
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Parse a JSON document. On failure returns null (kind kNull) and, when
/// `error` is non-null, stores a message with the byte offset.
JsonValue parse_json(std::string_view text, std::string* error = nullptr);

}  // namespace jmb::obs
