// ObsSink — the handle hot paths hold to publish telemetry.
//
// Callers store an `ObsSink*` and null-check before each probe, so an
// un-instrumented run costs one pointer compare per probe site and no
// observability symbol is touched. A sink bundles the per-trial metric
// registry (lock-free; merged in trial order afterwards) with the trial
// id spans are attributed to. Trace spans no longer route through the
// sink: the flight recorder (obs/flight/) is per-thread and always on,
// so stage timers write to it directly.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "obs/registry.h"

namespace jmb::obs {

class ObsSink {
 public:
  ObsSink() = default;
  ObsSink(MetricRegistry* reg, std::uint32_t trial, std::uint32_t cell = 0)
      : reg_(reg), trial_(trial), cell_(cell) {}

  [[nodiscard]] MetricRegistry* registry() const { return reg_; }
  [[nodiscard]] std::uint32_t trial() const { return trial_; }
  /// Cell shard the sink is bound to; 0 for unsharded runs.
  [[nodiscard]] std::uint32_t cell() const { return cell_; }

  void count(std::string_view name, double d = 1.0,
             MetricClass cls = MetricClass::kPhysics) const {
    if (reg_) reg_->counter(name, cls).add(d);
  }

  void set_gauge(std::string_view name, double v,
                 MetricClass cls = MetricClass::kPhysics) const {
    if (reg_) reg_->gauge(name, cls).set(v);
  }

  void observe(std::string_view name, std::span<const double> bounds, double v,
               MetricClass cls = MetricClass::kPhysics) const {
    if (reg_) reg_->histogram(name, bounds, cls).observe(v);
  }

 private:
  MetricRegistry* reg_ = nullptr;
  std::uint32_t trial_ = 0;
  std::uint32_t cell_ = 0;
};

}  // namespace jmb::obs
