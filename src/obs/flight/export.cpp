#include "obs/flight/export.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "engine/env.h"
#include "obs/flight/recorder.h"
#include "obs/json.h"

namespace jmb::obs::flight {

namespace {

struct FlowPoint {
  double ts_us = 0.0;
  std::uint32_t tid = 0;
};

void append_event_head(std::string& out, std::string_view name,
                       const char* cat, const char* ph, double ts_us,
                       std::uint32_t tid) {
  out += "{\"name\":";
  append_json_string(out, name);
  out += ",\"cat\":\"";
  out += cat;
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"ts\":";
  append_json_double(out, ts_us);
  out += ",\"pid\":0,\"tid\":";
  out += std::to_string(tid);
}

}  // namespace

std::string chrome_trace_json(std::size_t last_n) {
  FlightRecorder& rec = FlightRecorder::instance();
  const auto threads = rec.snapshot_all(last_n);

  std::string out;
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };

  // Spans that share a flow id, in (flow, ts) order, for the flow pass.
  std::map<std::uint64_t, std::vector<FlowPoint>> flows;

  for (const auto& th : threads) {
    for (const FlightRecord& r : th.records) {
      const double ts_us = ticks_to_us(r.tsc);
      const std::string_view name = rec.name_of(r.name);
      switch (r.type) {
        case EventType::kSpan:
        case EventType::kRingWait: {
          sep();
          append_event_head(
              out, name, r.type == EventType::kSpan ? "stage" : "ring", "X",
              ts_us, th.tid);
          out += ",\"dur\":";
          append_json_double(out, tick_delta_us(r.value));
          if (r.flow != kNoFlow) {
            out += ",\"args\":{\"flow\":";
            out += std::to_string(r.flow);
            out += '}';
            flows[r.flow].push_back({ts_us, th.tid});
          }
          out += '}';
          break;
        }
        case EventType::kInstant: {
          sep();
          append_event_head(out, name, "instant", "i", ts_us, th.tid);
          out += ",\"s\":\"t\",\"args\":{";
          if (r.flow != kNoFlow) {
            out += "\"flow\":";
            out += std::to_string(r.flow);
            out += ',';
          }
          out += "\"value\":";
          out += std::to_string(r.value);
          out += "}}";
          break;
        }
        case EventType::kCounter: {
          double v = 0.0;
          std::memcpy(&v, &r.value, sizeof v);
          sep();
          append_event_head(out, name, "counter", "C", ts_us, th.tid);
          out += ",\"args\":{\"value\":";
          append_json_double(out, v);
          out += "}}";
          break;
        }
      }
    }
  }

  // Causal chains: one s -> t... -> f sequence per flow id that spans
  // more than one event, binding the item's journey across threads.
  for (auto& [flow, points] : flows) {
    if (points.size() < 2) continue;
    std::stable_sort(points.begin(), points.end(),
                     [](const FlowPoint& a, const FlowPoint& b) {
                       return a.ts_us < b.ts_us;
                     });
    for (std::size_t i = 0; i < points.size(); ++i) {
      const char* ph = i == 0 ? "s" : (i + 1 == points.size() ? "f" : "t");
      sep();
      append_event_head(out, "item", "flow", ph, points[i].ts_us,
                        points[i].tid);
      out += ",\"id\":";
      out += std::to_string(flow);
      out += '}';
    }
  }

  out += "]}\n";
  return out;
}

bool write_chrome_trace_file(const std::string& path, std::size_t last_n) {
  const std::string text = chrome_trace_json(last_n);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[flight] cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "[flight] short write to '%s'\n", path.c_str());
  }
  return ok;
}

namespace {

struct DumpState {
  std::mutex mu;
  std::size_t written = 0;
  bool dir_overridden = false;
  std::string dir_override;
};

DumpState& dump_state() {
  static DumpState* g = new DumpState();
  return *g;
}

std::string dump_dir_locked(const DumpState& st) {
  if (st.dir_overridden) return st.dir_override;
  const char* env = std::getenv("JMB_FLIGHT_DUMP_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

std::size_t max_dumps() {
  static bool warned = false;
  return static_cast<std::size_t>(
      engine::env_u64("JMB_FLIGHT_MAX_DUMPS", 4, /*min_one=*/false, warned));
}

}  // namespace

std::string trigger_dump(const char* reason) {
  FlightRecorder& rec = FlightRecorder::instance();
  if (!rec.enabled()) return "";
  DumpState& st = dump_state();
  std::lock_guard<std::mutex> lock(st.mu);
  const std::string dir = dump_dir_locked(st);
  if (dir.empty() || st.written >= max_dumps()) return "";

  // Mark the trigger in the calling thread's own ring so the dump is
  // self-describing, then snapshot everything.
  instant(std::string("dump/") + reason);
  ::mkdir(dir.c_str(), 0755);  // best-effort; open() below reports errors
  std::string path = dir;
  path += "/flight_";
  path += reason;
  path += '_';
  path += std::to_string(st.written);
  path += ".json";
  if (!write_chrome_trace_file(path, rec.ring_capacity())) return "";
  ++st.written;
  std::fprintf(stderr, "[flight] dumped trace to %s (%s)\n", path.c_str(),
               reason);
  return path;
}

std::size_t dumps_written() {
  DumpState& st = dump_state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.written;
}

void set_dump_dir_for_test(std::string dir) {
  DumpState& st = dump_state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.dir_overridden = !dir.empty();
  st.dir_override = std::move(dir);
}

void reset_dump_count_for_test() {
  DumpState& st = dump_state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.written = 0;
}

}  // namespace jmb::obs::flight
