#include "obs/flight/clock.h"

namespace jmb::obs::flight {

namespace {

ClockCalibration measure() {
  ClockCalibration cal;
  const auto w0 = std::chrono::steady_clock::now();
  cal.tsc0 = now_ticks();
#if defined(__x86_64__) || defined(_M_X64)
  // Spin ~2 ms: long enough that steady_clock granularity is noise,
  // short enough to be invisible at process start. Paid once.
  for (;;) {
    const auto w1 = std::chrono::steady_clock::now();
    if (w1 - w0 >= std::chrono::milliseconds(2)) {
      const std::uint64_t t1 = now_ticks();
      const double us =
          std::chrono::duration<double, std::micro>(w1 - w0).count();
      if (us > 0.0 && t1 > cal.tsc0) {
        cal.ticks_per_us = static_cast<double>(t1 - cal.tsc0) / us;
      }
      break;
    }
  }
#endif
  // Fallback path (and any degenerate measurement): ticks are
  // steady_clock nanoseconds, so 1000 ticks per microsecond.
  if (!(cal.ticks_per_us > 0.0)) cal.ticks_per_us = 1e3;
  return cal;
}

}  // namespace

const ClockCalibration& clock_calibration() {
  static const ClockCalibration cal = measure();
  return cal;
}

}  // namespace jmb::obs::flight
