// Timestamp source for the flight recorder.
//
// Hot-path records are stamped with the raw time-stamp counter (rdtsc on
// x86-64: ~6 ns, monotonic on every post-2008 part via invariant TSC) and
// converted to microseconds only at export time, using a one-time
// calibration against steady_clock. Non-x86 builds fall back to
// steady_clock nanoseconds with a 1000 ticks/us identity calibration, so
// callers never branch on the architecture.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace jmb::obs::flight {

/// Raw monotonic tick count. The unit is *ticks* — only meaningful
/// relative to clock_calibration().
inline std::uint64_t now_ticks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Result of the one-time tick-rate measurement. `tsc0` is the trace
/// epoch: exported timestamps are `(ticks - tsc0) / ticks_per_us`, which
/// keeps sub-microsecond resolution in a double (an absolute unix-epoch
/// microsecond count would eat the mantissa).
struct ClockCalibration {
  std::uint64_t tsc0 = 0;
  double ticks_per_us = 1e3;
};

/// The process-wide calibration, measured once (~2 ms spin against
/// steady_clock) on first use. Thread-safe; every later call is a load.
const ClockCalibration& clock_calibration();

/// Convert a now_ticks() stamp to microseconds since the trace epoch.
inline double ticks_to_us(std::uint64_t ticks) {
  const ClockCalibration& cal = clock_calibration();
  return static_cast<double>(static_cast<std::int64_t>(ticks - cal.tsc0)) /
         cal.ticks_per_us;
}

/// Convert a tick *duration* to microseconds.
inline double tick_delta_us(std::uint64_t dt) {
  return static_cast<double>(dt) / clock_calibration().ticks_per_us;
}

}  // namespace jmb::obs::flight
