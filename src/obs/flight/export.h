// Drain-on-demand exporter for the flight recorder.
//
// Serializes the rings as Chrome trace_event JSON (chrome://tracing and
// Perfetto both load it): stage spans and ring waits as "X" complete
// events, instants as "i", counters as "C", and — for every flow id that
// appears on more than one span — "s"/"t"/"f" flow events that draw the
// item's causal chain across threads. Timestamps are microseconds since
// the TSC calibration epoch; tid is the flight ring id (one lane per
// recorded thread), pid is always 0.
//
// trigger_dump() is the fault hook: quarantine and deadline-miss paths
// call it to snapshot the last N records per thread into
// $JMB_FLIGHT_DUMP_DIR/flight_<reason>_<k>.json. It is rate-limited
// (JMB_FLIGHT_MAX_DUMPS, default 4, strict warn-once parsing) and a
// no-op when the directory is unset, so instrumented hot paths pay one
// predictable branch in the common case.
#pragma once

#include <cstddef>
#include <string>

namespace jmb::obs::flight {

/// The whole recorder state (last `last_n` records per thread; 0 = all
/// retained) as a Chrome trace_event JSON document.
[[nodiscard]] std::string chrome_trace_json(std::size_t last_n = 0);

/// Write chrome_trace_json() to `path`. False (with a stderr message) on
/// I/O failure.
bool write_chrome_trace_file(const std::string& path, std::size_t last_n = 0);

/// Fault-triggered snapshot dump. Returns the path written, or "" when
/// skipped (no JMB_FLIGHT_DUMP_DIR, recording disabled, dump budget
/// exhausted, or I/O failure). `reason` lands in the filename and in a
/// trace metadata instant, so a dump directory tells the story by itself.
std::string trigger_dump(const char* reason);

/// Dumps written so far this process (test/report hook).
[[nodiscard]] std::size_t dumps_written();

/// Test hooks: override the dump directory (empty string restores the
/// environment-driven default) and reset the dump budget.
void set_dump_dir_for_test(std::string dir);
void reset_dump_count_for_test();

}  // namespace jmb::obs::flight
