#include "obs/flight/recorder.h"

#include <bit>
#include <cstring>

// Header-only strict env parsing (no link dependency on the engine lib);
// the flight knobs follow the same warn-once convention as JMB_THREADS.
#include "engine/env.h"

namespace jmb::obs::flight {

FlightRing::FlightRing(std::size_t capacity_pow2, std::uint32_t tid)
    : slots_(new Slot[capacity_pow2]),
      mask_(capacity_pow2 - 1),
      tid_(tid) {}

std::vector<FlightRecord> FlightRing::snapshot(std::size_t last_n) const {
  const std::uint64_t e1 = end_.load(std::memory_order_acquire);
  const std::uint64_t avail =
      e1 < capacity() ? e1 : static_cast<std::uint64_t>(capacity());
  const std::uint64_t want =
      (last_n != 0 && last_n < avail) ? last_n : avail;

  struct Raw {
    std::uint64_t w[4];
  };
  std::vector<Raw> raw(static_cast<std::size_t>(want));
  for (std::uint64_t i = 0; i < want; ++i) {
    const std::uint64_t j = e1 - want + i;
    const Slot& s = slots_[j & mask_];
    raw[i].w[0] = s.w[0].load(std::memory_order_relaxed);
    raw[i].w[1] = s.w[1].load(std::memory_order_relaxed);
    raw[i].w[2] = s.w[2].load(std::memory_order_relaxed);
    raw[i].w[3] = s.w[3].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t b2 = begin_.load(std::memory_order_relaxed);

  std::vector<FlightRecord> out;
  out.reserve(raw.size());
  for (std::uint64_t i = 0; i < want; ++i) {
    const std::uint64_t j = e1 - want + i;
    // The writer may have been rewriting slot j if it has since claimed
    // logical index j + capacity or later; drop those (possibly torn).
    if (b2 > j + capacity()) continue;
    FlightRecord rec;
    rec.tsc = raw[i].w[0];
    rec.flow = raw[i].w[1];
    rec.value = raw[i].w[2];
    rec.name = static_cast<std::uint32_t>(raw[i].w[3] & 0xffffffffu);
    rec.type = static_cast<EventType>((raw[i].w[3] >> 32) & 0xffu);
    out.push_back(rec);
  }
  return out;
}

FlightRecorder& FlightRecorder::instance() {
  // Deliberately leaked: operator-thread leases release rings back here
  // at thread exit, and dumps may happen during static destruction —
  // a destroyed singleton would turn both into use-after-free.
  static FlightRecorder* g = new FlightRecorder();
  return *g;
}

FlightRecorder::FlightRecorder() {
  static bool warned_enabled = false;
  static bool warned_depth = false;
  enabled_.store(
      engine::env_u64("JMB_FLIGHT", 1, /*min_one=*/false, warned_enabled) != 0,
      std::memory_order_relaxed);
  const std::uint64_t depth = engine::env_u64("JMB_FLIGHT_DEPTH", 8192,
                                              /*min_one=*/true, warned_depth);
  capacity_ = std::bit_ceil(
      static_cast<std::size_t>(depth < 64 ? 64 : depth));
  // Reserve id 0 for the overflow alias so a full table degrades loudly
  // ("?") instead of mis-attributing records.
  (void)intern("?");
}

FlightRecorder::ThreadLease::~ThreadLease() {
  if (ring != nullptr) FlightRecorder::instance().release_ring(ring);
}

FlightRing* FlightRecorder::local_ring() {
  if (!enabled()) return nullptr;
  thread_local ThreadLease lease;
  if (lease.ring == nullptr) lease.ring = acquire_ring();
  return lease.ring;
}

FlightRing* FlightRecorder::acquire_ring() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  if (!free_rings_.empty()) {
    FlightRing* r = free_rings_.back();
    free_rings_.pop_back();
    return r;
  }
  rings_.push_back(std::make_unique<FlightRing>(
      capacity_, static_cast<std::uint32_t>(rings_.size())));
  return rings_.back().get();
}

void FlightRecorder::release_ring(FlightRing* ring) {
  std::lock_guard<std::mutex> lock(rings_mu_);
  free_rings_.push_back(ring);
}

std::uint32_t FlightRecorder::intern(std::string_view name) {
  // Lock-free fast path: scan the published prefix. Entries are
  // immutable once visible via the release store of n_names_.
  const std::uint32_t n = n_names_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string* t = names_[i].text;
    if (t->size() == name.size() &&
        std::memcmp(t->data(), name.data(), name.size()) == 0) {
      return i;
    }
  }
  std::lock_guard<std::mutex> lock(names_mu_);
  const std::uint32_t m = n_names_.load(std::memory_order_relaxed);
  for (std::uint32_t i = n; i < m; ++i) {
    const std::string* t = names_[i].text;
    if (t->size() == name.size() &&
        std::memcmp(t->data(), name.data(), name.size()) == 0) {
      return i;
    }
  }
  if (m >= kMaxNames) return 0;  // table full: alias to "?"
  name_store_.emplace_back(name);
  names_[m].text = &name_store_.back();
  n_names_.store(m + 1, std::memory_order_release);
  return m;
}

std::string_view FlightRecorder::name_of(std::uint32_t id) const {
  const std::uint32_t n = n_names_.load(std::memory_order_acquire);
  if (id >= n) return "?";
  return *names_[id].text;
}

std::vector<FlightRecorder::ThreadSnapshot> FlightRecorder::snapshot_all(
    std::size_t last_n) const {
  // Collect the ring pointers under the lock, then snapshot outside it:
  // rings_ only grows and rings are never destroyed, so the pointers
  // stay valid, and writers never take rings_mu_.
  std::vector<const FlightRing*> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  std::vector<ThreadSnapshot> out;
  out.reserve(rings.size());
  for (const FlightRing* r : rings) {
    ThreadSnapshot snap;
    snap.tid = r->tid();
    snap.records = r->snapshot(last_n);
    if (!snap.records.empty()) out.push_back(std::move(snap));
  }
  return out;
}

void instant(std::string_view name, std::uint64_t flow, std::uint64_t value) {
  FlightRecorder& rec = FlightRecorder::instance();
  if (FlightRing* r = rec.local_ring()) {
    r->write(EventType::kInstant, rec.intern(name), now_ticks(), flow, value);
  }
}

void counter(std::string_view name, double value) {
  FlightRecorder& rec = FlightRecorder::instance();
  if (FlightRing* r = rec.local_ring()) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    r->write(EventType::kCounter, rec.intern(name), now_ticks(), kNoFlow,
             bits);
  }
}

SpanScope::SpanScope(std::string_view name, std::uint64_t flow)
    : ring_(FlightRecorder::instance().local_ring()), flow_(flow) {
  if (ring_ != nullptr) {
    name_ = FlightRecorder::instance().intern(name);
    t0_ = now_ticks();
  }
}

}  // namespace jmb::obs::flight
