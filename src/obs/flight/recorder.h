// Flight recorder: always-on, per-thread, lock-free binary tracing.
//
// Every instrumented thread owns a FlightRing — a power-of-two array of
// fixed-size 32-byte records written with a seqlock-style protocol — so
// the steady-state cost of a record is four relaxed atomic stores plus a
// TSC read, with no locks, no allocation and no cross-thread cache
// traffic. Names are interned once into a fixed table and travel as
// 32-bit ids; flow ids stitch one frame's records into a causal chain
// across threads (see make_flow). The rings overwrite oldest-first, so
// at any moment the recorder holds the last `capacity` events per thread
// — a crash-scene flight recording, drained on demand by the exporter
// (obs/flight/export.h) or dumped automatically on quarantine/deadline
// miss.
//
// Writer/reader protocol. The writer is the ring's owner thread; readers
// (exporter, dump trigger) may run concurrently on any thread. A write
// bumps `begin_` (relaxed), release-fences, stores the record words
// (relaxed atomics), then release-stores `end_`. A snapshot
// acquire-loads `end_`, copies the words, acquire-fences, then re-reads
// `begin_` and discards any record the writer might have been rewriting
// (logical index < begin - capacity). Torn reads are therefore detected
// and dropped, never surfaced, and every access is on atomics — clean
// under ThreadSanitizer and free on x86's total-store-order.
//
// Knobs (strict warn-once parsing via engine/env.h):
//   JMB_FLIGHT=0         disable recording (default on)
//   JMB_FLIGHT_DEPTH=N   records per thread ring (default 8192, pow2-rounded)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "obs/flight/clock.h"

namespace jmb::obs::flight {

enum class EventType : std::uint8_t {
  kSpan = 0,      ///< stage execution; value = duration ticks
  kRingWait = 1,  ///< time an item sat in an SPSC ring; value = ticks
  kInstant = 2,   ///< point event (fault injected, quarantine, miss...)
  kCounter = 3,   ///< sampled series value; value = bit-cast double
};

/// Sentinel for records not attached to any item journey.
inline constexpr std::uint64_t kNoFlow = ~0ull;

/// Flow ids thread one item's journey through the pipeline: the high
/// bits identify the independent sequence (streaming lane, batch trial),
/// the low 40 bits the item within it. 2^40 frames per lane is ~34 years
/// of 20 MHz airtime — no wraparound in practice.
inline constexpr std::uint64_t make_flow(std::uint64_t stream,
                                         std::uint64_t seq) {
  return (stream << 40) | (seq & ((1ull << 40) - 1));
}

/// Flow id for metro-sharded runs: the cell shard index rides in bits
/// 16..23 of the stream field, above the 16-bit trial index. Cell 0
/// reproduces the classic make_flow(trial, seq) id bit-for-bit, so
/// single-cell traces are indistinguishable from pre-sharding ones.
inline constexpr std::uint64_t make_cell_flow(std::uint64_t trial,
                                              std::uint64_t cell,
                                              std::uint64_t seq) {
  return make_flow(((cell & 0xff) << 16) | (trial & 0xffff), seq);
}

/// Decoded trace record, as returned by snapshots. `tsc` is the event
/// (or span start) stamp in raw ticks; `value` is type-dependent (see
/// EventType).
struct FlightRecord {
  std::uint64_t tsc = 0;
  std::uint64_t flow = kNoFlow;
  std::uint64_t value = 0;
  std::uint32_t name = 0;
  EventType type = EventType::kInstant;
};

/// One thread's trace ring. Single writer (the owning thread), any
/// number of concurrent snapshot readers.
class FlightRing {
 public:
  FlightRing(std::size_t capacity_pow2, std::uint32_t tid);
  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  /// Owner thread only. Zero allocation, no locks.
  void write(EventType type, std::uint32_t name, std::uint64_t tsc,
             std::uint64_t flow, std::uint64_t value) {
    const std::uint64_t h = begin_.load(std::memory_order_relaxed);
    // Publish "slot h is being rewritten" before touching its words...
    begin_.store(h + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    Slot& s = slots_[h & mask_];
    s.w[0].store(tsc, std::memory_order_relaxed);
    s.w[1].store(flow, std::memory_order_relaxed);
    s.w[2].store(value, std::memory_order_relaxed);
    s.w[3].store(static_cast<std::uint64_t>(name) |
                     (static_cast<std::uint64_t>(type) << 32),
                 std::memory_order_relaxed);
    // ...and "slot h is complete" after.
    end_.store(h + 1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  [[nodiscard]] std::uint32_t tid() const { return tid_; }
  /// Total records ever written (monotonic; any thread).
  [[nodiscard]] std::uint64_t written() const {
    return end_.load(std::memory_order_acquire);
  }

  /// Oldest-first copy of the retained records (the last `last_n`, or
  /// everything retained when 0). Safe concurrently with the writer;
  /// records the writer was mid-rewrite on are detected and dropped.
  [[nodiscard]] std::vector<FlightRecord> snapshot(std::size_t last_n = 0) const;

 private:
  struct Slot {
    std::array<std::atomic<std::uint64_t>, 4> w;
  };

  std::unique_ptr<Slot[]> slots_;
  std::uint64_t mask_ = 0;
  std::uint32_t tid_ = 0;
  /// begin_ >= end_ always; slots in [end_, begin_) are being rewritten.
  alignas(64) std::atomic<std::uint64_t> begin_{0};
  alignas(64) std::atomic<std::uint64_t> end_{0};
};

/// Process-wide recorder: owns the per-thread rings and the interned
/// name table. A leaked singleton (never destroyed), so records from
/// detached/exiting threads stay drainable until process exit.
class FlightRecorder {
 public:
  static FlightRecorder& instance();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t ring_capacity() const { return capacity_; }

  /// The calling thread's ring, created (or reused from a finished
  /// thread's returned ring) on first use. Null when recording is
  /// disabled. After the first call this is a thread-local load.
  FlightRing* local_ring();

  /// Intern `name`, returning its stable 32-bit id. Lock-free lookup of
  /// already-interned names; a mutex only on first insertion. A full
  /// table (512 names) aliases to id 0 ("?") rather than failing.
  std::uint32_t intern(std::string_view name);
  [[nodiscard]] std::string_view name_of(std::uint32_t id) const;

  struct ThreadSnapshot {
    std::uint32_t tid = 0;
    std::vector<FlightRecord> records;  ///< oldest first
  };
  /// Snapshot every ring (live and reclaimed), in ring-creation order.
  [[nodiscard]] std::vector<ThreadSnapshot> snapshot_all(
      std::size_t last_n = 0) const;

  /// Test hook: flip recording at runtime (env decides the initial
  /// state). Threads with an existing lease keep their ring but
  /// local_ring() returns null while disabled.
  void set_enabled_for_test(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

 private:
  FlightRecorder();
  FlightRing* acquire_ring();
  void release_ring(FlightRing* ring);

  struct ThreadLease {
    FlightRing* ring = nullptr;
    ~ThreadLease();
  };

  std::atomic<bool> enabled_{true};
  std::size_t capacity_ = 8192;

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<FlightRing>> rings_;
  std::vector<FlightRing*> free_rings_;

  static constexpr std::size_t kMaxNames = 512;
  struct NameEntry {
    const std::string* text = nullptr;
  };
  std::array<NameEntry, kMaxNames> names_{};
  std::atomic<std::uint32_t> n_names_{0};
  std::deque<std::string> name_store_;  ///< stable storage (guarded)
  std::mutex names_mu_;
};

/// Record one event on the calling thread's ring (no-op when disabled).
/// The id-based overloads are the hot path; intern once at setup.
inline void record(EventType type, std::uint32_t name, std::uint64_t tsc,
                   std::uint64_t flow, std::uint64_t value) {
  if (FlightRing* r = FlightRecorder::instance().local_ring()) {
    r->write(type, name, tsc, flow, value);
  }
}

inline void instant(std::uint32_t name, std::uint64_t flow = kNoFlow,
                    std::uint64_t value = 0) {
  record(EventType::kInstant, name, now_ticks(), flow, value);
}

/// Convenience for cold paths: interns on each call.
void instant(std::string_view name, std::uint64_t flow = kNoFlow,
             std::uint64_t value = 0);
void counter(std::string_view name, double value);

/// RAII span: stamps TSC at construction, writes one kSpan record at
/// destruction. Zero-allocation with a pre-interned id.
class SpanScope {
 public:
  explicit SpanScope(std::uint32_t name, std::uint64_t flow = kNoFlow)
      : ring_(FlightRecorder::instance().local_ring()),
        name_(name),
        flow_(flow),
        t0_(ring_ ? now_ticks() : 0) {}
  explicit SpanScope(std::string_view name, std::uint64_t flow = kNoFlow);
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() {
    if (ring_) {
      ring_->write(EventType::kSpan, name_, t0_, flow_, now_ticks() - t0_);
    }
  }

 private:
  FlightRing* ring_;
  std::uint32_t name_ = 0;
  std::uint64_t flow_ = kNoFlow;
  std::uint64_t t0_ = 0;
};

}  // namespace jmb::obs::flight
