#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace jmb::obs {

void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN
    out += v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
    return;
  }
  char buf[32];
  // Integral values within uint64/int64 range print exactly, no exponent.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::append_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      append_json_double(out, num_);
      break;
    case Kind::kString:
      append_json_string(out, str_);
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : arr_) {
        if (!first) out += ',';
        first = false;
        v.append_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, k);
        out += ':';
        v.append_to(out);
      }
      out += '}';
      break;
    }
  }
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse(std::string* error) {
    JsonValue v = parse_value();
    skip_ws();
    if (!failed_ && pos_ != text_.size()) fail("trailing characters");
    if (failed_) {
      if (error) {
        *error = message_ + " at byte " + std::to_string(err_pos_);
      }
      return JsonValue();
    }
    return v;
  }

 private:
  void fail(const char* msg) {
    if (!failed_) {
      failed_ = true;
      message_ = msg;
      err_pos_ = pos_;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    fail("invalid literal");
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (failed_ || pos_ >= text_.size()) {
      fail("unexpected end of input");
      return JsonValue();
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': return expect_literal("true") ? JsonValue(true) : JsonValue();
      case 'f': return expect_literal("false") ? JsonValue(false) : JsonValue();
      case 'n': expect_literal("null"); return JsonValue();
      default: return parse_number();
    }
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      fail("expected string");
      return out;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return out;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
                return out;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs kept as-is).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return out;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("expected number");
      return JsonValue();
    }
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      fail("malformed number");
      return JsonValue();
    }
    return JsonValue(v);
  }

  JsonValue parse_array() {
    JsonArray arr;
    consume('[');
    skip_ws();
    if (consume(']')) return JsonValue(std::move(arr));
    while (!failed_) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(']')) return JsonValue(std::move(arr));
      if (!consume(',')) {
        fail("expected ',' or ']'");
        break;
      }
    }
    return JsonValue();
  }

  JsonValue parse_object() {
    JsonObject obj;
    consume('{');
    skip_ws();
    if (consume('}')) return JsonValue(std::move(obj));
    while (!failed_) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        break;
      }
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) return JsonValue(std::move(obj));
      if (!consume(',')) {
        fail("expected ',' or '}'");
        break;
      }
    }
    return JsonValue();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string message_;
  std::size_t err_pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace jmb::obs
