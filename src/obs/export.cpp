#include "obs/export.h"

#include <cstdio>

// GCC 12 misfires -Warray-bounds / -Wstringop-overread on the (unreachable
// but not provably so) _M_realloc_insert path of
// vector<pair<string, JsonValue>> at -O2; which emplace site trips it
// shifts with inlining, so suppress the pair for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Warray-bounds"
#pragma GCC diagnostic ignored "-Wstringop-overread"
#endif

namespace jmb::obs {

namespace {

const char* kind_name(const std::variant<Counter, Gauge, Histogram>& m) {
  switch (m.index()) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

const char* class_name(MetricClass cls) {
  return cls == MetricClass::kTiming ? "timing" : "physics";
}

JsonValue metric_to_json(const MetricRegistry::Entry& e) {
  JsonObject m;
  m.emplace_back("name", e.name);
  m.emplace_back("kind", kind_name(e.metric));
  m.emplace_back("class", class_name(e.cls));
  if (const auto* c = std::get_if<Counter>(&e.metric)) {
    m.emplace_back("value", c->value());
  } else if (const auto* g = std::get_if<Gauge>(&e.metric)) {
    m.emplace_back("value", g->value());
  } else {
    const auto& h = std::get<Histogram>(e.metric);
    m.emplace_back("count", h.count());
    m.emplace_back("sum", h.sum());
    m.emplace_back("min", h.min());
    m.emplace_back("max", h.max());
    m.emplace_back("p50", h.quantile(0.50));
    m.emplace_back("p90", h.quantile(0.90));
    m.emplace_back("p99", h.quantile(0.99));
    JsonArray bounds;
    for (const double b : h.bounds()) bounds.emplace_back(b);
    m.emplace_back("bounds", std::move(bounds));
    JsonArray counts;
    for (const std::uint64_t c : h.counts()) counts.emplace_back(c);
    m.emplace_back("counts", std::move(counts));
  }
  return JsonValue(std::move(m));
}

}  // namespace

JsonValue bench_result_doc(const BenchRunInfo& info, const MetricRegistry& reg,
                           bool include_timing) {
  JsonObject root;
  root.emplace_back("schema", "jmb.bench_result.v1");
  root.emplace_back("figure", info.figure);
  root.emplace_back("seed", info.seed);
  JsonObject params;
  for (const auto& [k, v] : info.params) params.emplace_back(k, v);
  root.emplace_back("params", std::move(params));
  if (info.has_faults) {
    JsonObject faults;
    faults.emplace_back("plan", info.fault_plan);
    faults.emplace_back("events", static_cast<double>(info.fault_events));
    for (const auto& [k, v] : info.fault_stats) faults.emplace_back(k, v);
    root.emplace_back("faults", std::move(faults));
  }
  if (info.has_streaming) {
    const StreamingStats& s = info.streaming;
    JsonObject streaming;
    streaming.emplace_back("msamples_per_s", s.msamples_per_s);
    streaming.emplace_back("deadline_miss_rate", s.deadline_miss_rate);
    streaming.emplace_back("items", static_cast<double>(s.items));
    streaming.emplace_back("deadline_misses",
                           static_cast<double>(s.deadline_misses));
    streaming.emplace_back("total_msamples", s.total_msamples);
    streaming.emplace_back("wall_s", s.wall_s);
    streaming.emplace_back("ring_depth", s.ring_depth);
    streaming.emplace_back("stage_threads", s.stage_threads);
    streaming.emplace_back("rt_factor", s.rt_factor);
    root.emplace_back("streaming", std::move(streaming));
  }
  if (info.has_metro) {
    const MetroSummary& m = info.metro;
    JsonObject metro;
    metro.emplace_back("cells", static_cast<double>(m.cells));
    metro.emplace_back("users_per_cell", static_cast<double>(m.users_per_cell));
    metro.emplace_back("churn_rate_hz", m.churn_rate_hz);
    metro.emplace_back("aggregate_goodput_mbps", m.aggregate_goodput_mbps);
    metro.emplace_back("p99_frame_latency_s", m.p99_frame_latency_s);
    metro.emplace_back("arrivals", static_cast<double>(m.arrivals));
    metro.emplace_back("departures", static_cast<double>(m.departures));
    metro.emplace_back("handoffs", static_cast<double>(m.handoffs));
    metro.emplace_back("blocked_handoffs",
                       static_cast<double>(m.blocked_handoffs));
    metro.emplace_back("lead_elections",
                       static_cast<double>(m.lead_elections));
    metro.emplace_back("quarantines", static_cast<double>(m.quarantines));
    JsonArray per_cell;
    for (const double g : m.per_cell_goodput_mbps) per_cell.emplace_back(g);
    metro.emplace_back("per_cell_goodput_mbps", std::move(per_cell));
    root.emplace_back("metro", std::move(metro));
  }
  if (info.has_traffic) {
    const TrafficSummary& tr = info.traffic;
    JsonObject traffic;
    traffic.emplace_back("profile", tr.profile);
    traffic.emplace_back("policy", tr.policy);
    traffic.emplace_back("offered_load", tr.offered_load);
    traffic.emplace_back("users", static_cast<double>(tr.users));
    traffic.emplace_back("flows", static_cast<double>(tr.flows));
    traffic.emplace_back("offered_packets",
                         static_cast<double>(tr.offered_packets));
    traffic.emplace_back("delivered_packets",
                         static_cast<double>(tr.delivered_packets));
    traffic.emplace_back("dropped_packets",
                         static_cast<double>(tr.dropped_packets));
    traffic.emplace_back("deadline_misses",
                         static_cast<double>(tr.deadline_misses));
    traffic.emplace_back("aggregated_mpdus",
                         static_cast<double>(tr.aggregated_mpdus));
    traffic.emplace_back("jain_fairness", tr.jain_fairness);
    traffic.emplace_back("goodput_mbps", tr.goodput_mbps);
    traffic.emplace_back("p50_latency_s", tr.p50_latency_s);
    traffic.emplace_back("p99_latency_s", tr.p99_latency_s);
    root.emplace_back("traffic", std::move(traffic));
  }
  if (info.has_precoder) {
    const PrecoderSummary& pc = info.precoder;
    JsonObject precoder;
    precoder.emplace_back("headline_kind", pc.headline_kind);
    precoder.emplace_back("staleness", pc.staleness);
    precoder.emplace_back("feedback_bits",
                          static_cast<double>(pc.feedback_bits));
    precoder.emplace_back("zf_goodput_mbps", pc.zf_goodput_mbps);
    precoder.emplace_back("rzf_goodput_mbps", pc.rzf_goodput_mbps);
    precoder.emplace_back("conj_goodput_mbps", pc.conj_goodput_mbps);
    precoder.emplace_back("rzf_over_zf", pc.rzf_over_zf);
    precoder.emplace_back("mean_condition", pc.mean_condition);
    root.emplace_back("precoder", std::move(precoder));
  }
  JsonArray metrics;
  for (const MetricRegistry::Entry& e : reg.entries()) {
    if (e.cls == MetricClass::kTiming && !include_timing) continue;
    metrics.push_back(metric_to_json(e));
  }
  root.emplace_back("metrics", std::move(metrics));
  return JsonValue(std::move(root));
}

std::string bench_result_json(const BenchRunInfo& info,
                              const MetricRegistry& reg, bool include_timing) {
  std::string out = bench_result_doc(info, reg, include_timing).dump();
  out += '\n';
  return out;
}

std::string registry_csv(const MetricRegistry& reg, bool include_timing) {
  std::string out = "name,kind,class,count,sum,min,max,mean,p50,p90,p99\n";
  for (const MetricRegistry::Entry& e : reg.entries()) {
    if (e.cls == MetricClass::kTiming && !include_timing) continue;
    out += e.name;
    out += ',';
    out += kind_name(e.metric);
    out += ',';
    out += class_name(e.cls);
    if (const auto* h = std::get_if<Histogram>(&e.metric)) {
      out += ',';
      out += std::to_string(h->count());
      for (const double v : {h->sum(), h->min(), h->max(), h->mean(),
                             h->quantile(0.50), h->quantile(0.90),
                             h->quantile(0.99)}) {
        out += ',';
        append_json_double(out, v);
      }
    } else {
      const double v = e.metric.index() == 0
                           ? std::get<Counter>(e.metric).value()
                           : std::get<Gauge>(e.metric).value();
      out += ",,";  // count empty
      append_json_double(out, v);
      out += ",,,,,,";  // min..p99 empty
    }
    out += '\n';
  }
  return out;
}

namespace {

const char* json_type_name(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "boolean";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    default: return "object";
  }
}

bool type_matches(const std::string& want, const JsonValue& v) {
  if (want == "integer") {
    return v.is_number() &&
           v.as_number() == static_cast<double>(
                                static_cast<long long>(v.as_number()));
  }
  return want == json_type_name(v);
}

bool json_equal(const JsonValue& a, const JsonValue& b) {
  return a.dump() == b.dump();
}

void validate_at(const JsonValue& schema, const JsonValue& doc,
                 const std::string& path, std::vector<std::string>& errors) {
  if (!schema.is_object()) return;  // permissive: non-object schema = any

  if (const JsonValue* type = schema.get("type")) {
    bool ok = false;
    if (type->is_string()) {
      ok = type_matches(type->as_string(), doc);
    } else if (type->is_array()) {
      for (const JsonValue& t : type->as_array()) {
        if (t.is_string() && type_matches(t.as_string(), doc)) ok = true;
      }
    }
    if (!ok) {
      errors.push_back(path + ": expected type " + type->dump() + ", got " +
                       json_type_name(doc));
      return;  // deeper checks would only cascade
    }
  }

  if (const JsonValue* cv = schema.get("const")) {
    if (!json_equal(*cv, doc)) {
      errors.push_back(path + ": expected const " + cv->dump() + ", got " +
                       doc.dump());
    }
  }

  if (const JsonValue* en = schema.get("enum"); en && en->is_array()) {
    bool ok = false;
    for (const JsonValue& v : en->as_array()) {
      if (json_equal(v, doc)) ok = true;
    }
    if (!ok) errors.push_back(path + ": value " + doc.dump() + " not in enum");
  }

  if (doc.is_number()) {
    if (const JsonValue* lo = schema.get("minimum");
        lo && lo->is_number() && doc.as_number() < lo->as_number()) {
      errors.push_back(path + ": value " + doc.dump() + " below minimum " +
                       lo->dump());
    }
    if (const JsonValue* hi = schema.get("maximum");
        hi && hi->is_number() && doc.as_number() > hi->as_number()) {
      errors.push_back(path + ": value " + doc.dump() + " above maximum " +
                       hi->dump());
    }
  }

  if (doc.is_object()) {
    if (const JsonValue* req = schema.get("required"); req && req->is_array()) {
      for (const JsonValue& k : req->as_array()) {
        if (k.is_string() && !doc.get(k.as_string())) {
          errors.push_back(path + ": missing required member \"" +
                           k.as_string() + "\"");
        }
      }
    }
    if (const JsonValue* props = schema.get("properties");
        props && props->is_object()) {
      for (const auto& [key, sub] : props->as_object()) {
        if (const JsonValue* member = doc.get(key)) {
          validate_at(sub, *member, path + "." + key, errors);
        }
      }
    }
  }

  if (doc.is_array()) {
    if (const JsonValue* min_items = schema.get("minItems");
        min_items && min_items->is_number() &&
        static_cast<double>(doc.as_array().size()) < min_items->as_number()) {
      errors.push_back(path + ": fewer than " + min_items->dump() + " items");
    }
    if (const JsonValue* items = schema.get("items")) {
      std::size_t i = 0;
      for (const JsonValue& el : doc.as_array()) {
        validate_at(*items, el, path + "[" + std::to_string(i++) + "]",
                    errors);
      }
    }
  }
}

}  // namespace

std::vector<std::string> validate_schema(const JsonValue& schema,
                                         const JsonValue& doc) {
  std::vector<std::string> errors;
  validate_at(schema, doc, "$", errors);
  return errors;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  const bool ok = (n == text.size()) && closed;
  if (!ok) std::fprintf(stderr, "error: short write to '%s'\n", path.c_str());
  return ok;
}

}  // namespace jmb::obs
