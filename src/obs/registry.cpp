#include "obs/registry.h"

#include <algorithm>
#include <stdexcept>

namespace jmb::obs {

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), counts_(bounds.size() + 1, 0) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      double lo = (i == 0) ? min_ : std::max(bounds_[i - 1], min_);
      double hi = (i < bounds_.size()) ? std::min(bounds_[i], max_) : max_;
      if (hi < lo) hi = lo;
      const double frac = std::clamp(
          (target - cum) / static_cast<double>(counts_[i]), 0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
    cum = next;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::logic_error("Histogram::merge: bucket boundary mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

MetricRegistry::Entry* MetricRegistry::find_mutable(std::string_view name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const MetricRegistry::Entry* MetricRegistry::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter& MetricRegistry::counter(std::string_view name, MetricClass cls) {
  if (Entry* e = find_mutable(name)) {
    if (auto* c = std::get_if<Counter>(&e->metric)) return *c;
    throw std::logic_error("MetricRegistry: '" + std::string(name) +
                           "' is not a counter");
  }
  entries_.push_back({std::string(name), cls, Counter{}});
  return std::get<Counter>(entries_.back().metric);
}

Gauge& MetricRegistry::gauge(std::string_view name, MetricClass cls) {
  if (Entry* e = find_mutable(name)) {
    if (auto* g = std::get_if<Gauge>(&e->metric)) return *g;
    throw std::logic_error("MetricRegistry: '" + std::string(name) +
                           "' is not a gauge");
  }
  entries_.push_back({std::string(name), cls, Gauge{}});
  return std::get<Gauge>(entries_.back().metric);
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::span<const double> bounds,
                                     MetricClass cls) {
  if (Entry* e = find_mutable(name)) {
    auto* h = std::get_if<Histogram>(&e->metric);
    if (!h) {
      throw std::logic_error("MetricRegistry: '" + std::string(name) +
                             "' is not a histogram");
    }
    if (h->bounds().size() != bounds.size() ||
        !std::equal(bounds.begin(), bounds.end(), h->bounds().begin())) {
      throw std::logic_error("MetricRegistry: '" + std::string(name) +
                             "' re-registered with different bounds");
    }
    return *h;
  }
  entries_.push_back({std::string(name), cls, Histogram(bounds)});
  return std::get<Histogram>(entries_.back().metric);
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const Entry& oe : other.entries_) {
    if (Entry* e = find_mutable(oe.name)) {
      if (e->metric.index() != oe.metric.index()) {
        throw std::logic_error("MetricRegistry::merge: kind mismatch for '" +
                               oe.name + "'");
      }
      std::visit(
          [&](auto& mine) {
            using T = std::decay_t<decltype(mine)>;
            mine.merge(std::get<T>(oe.metric));
          },
          e->metric);
    } else {
      entries_.push_back(oe);
    }
  }
}

}  // namespace jmb::obs
