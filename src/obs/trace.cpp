#include "obs/trace.h"

#include <chrono>

#include "obs/json.h"

namespace jmb::obs {

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

double TraceRecorder::now_us() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::micro>(now).count();
}

void TraceRecorder::record(std::string_view name, std::uint32_t trial,
                           std::uint64_t frame, double ts_us, double dur_us) {
  const TraceSpan span{name, trial, frame, ts_us, dur_us};
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[next_] = span;
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceSpan> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, next_ points at the oldest span.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::write_chrome_trace(std::FILE* out) const {
  std::vector<TraceSpan> spans;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      spans.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    dropped = dropped_;
  }
  std::string buf;
  buf += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) buf += ',';
    first = false;
    buf += "{\"name\":";
    append_json_string(buf, s.name);
    buf += ",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":";
    append_json_double(buf, s.ts_us);
    buf += ",\"dur\":";
    append_json_double(buf, s.dur_us);
    buf += ",\"pid\":0,\"tid\":";
    buf += std::to_string(s.trial);
    buf += ",\"args\":{\"frame\":";
    buf += std::to_string(s.frame);
    buf += "}}";
  }
  if (dropped > 0) {
    if (!first) buf += ',';
    buf +=
        "{\"name\":\"trace/dropped_events\",\"cat\":\"counter\",\"ph\":\"C\","
        "\"ts\":";
    append_json_double(buf, spans.empty() ? 0.0 : spans.back().ts_us);
    buf += ",\"pid\":0,\"tid\":0,\"args\":{\"value\":";
    buf += std::to_string(dropped);
    buf += "}}";
  }
  buf += "]}\n";
  std::fwrite(buf.data(), 1, buf.size(), out);
}

void TraceRecorder::export_metrics(MetricRegistry& reg) const {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recorded = static_cast<std::uint64_t>(ring_.size()) + dropped_;
    dropped = dropped_;
  }
  reg.gauge("trace/recorded_events", MetricClass::kTiming)
      .set(static_cast<double>(recorded));
  if (dropped > 0) {
    reg.gauge("trace/dropped_events", MetricClass::kTiming)
        .set(static_cast<double>(dropped));
  }
}

}  // namespace jmb::obs
