#include "obs/streaming.h"

#include <string>

namespace jmb::obs {

StreamOpObs::StreamOpObs(MetricRegistry& reg, std::size_t op_index) {
  const std::string prefix = "stream/op" + std::to_string(op_index) + "/";
  depth_ = &reg.gauge(prefix + "queue_depth", MetricClass::kTiming);
  depth_hist_ = &reg.histogram(prefix + "queue_depth_hist", kQueueDepthBounds,
                               MetricClass::kTiming);
  items_ = &reg.counter(prefix + "items", MetricClass::kTiming);
  stalls_ = &reg.counter(prefix + "push_stalls", MetricClass::kTiming);
}

void register_stream_summary(MetricRegistry& reg, const StreamingStats& s) {
  reg.gauge("stream/msamples_per_s", MetricClass::kTiming).set(s.msamples_per_s);
  reg.gauge("stream/deadline_miss_rate", MetricClass::kTiming)
      .set(s.deadline_miss_rate);
  reg.gauge("stream/items", MetricClass::kTiming)
      .set(static_cast<double>(s.items));
  reg.gauge("stream/deadline_misses", MetricClass::kTiming)
      .set(static_cast<double>(s.deadline_misses));
  reg.gauge("stream/total_msamples", MetricClass::kTiming)
      .set(s.total_msamples);
  reg.gauge("stream/wall_s", MetricClass::kTiming).set(s.wall_s);
  reg.gauge("stream/ring_depth", MetricClass::kTiming).set(s.ring_depth);
  reg.gauge("stream/stage_threads", MetricClass::kTiming).set(s.stage_threads);
  reg.gauge("stream/rt_factor", MetricClass::kTiming).set(s.rt_factor);
}

}  // namespace jmb::obs
