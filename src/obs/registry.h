// Typed metric registry — the single metrics spine for the whole system.
//
// A registry holds named counters, gauges and fixed-bucket histograms in
// first-registration order. Instances are NOT thread-safe by design: the
// trial runner gives every trial its own registry (lock-free hot path)
// and merges them in trial order afterwards, so aggregates are
// bit-identical for any worker-thread count — the same discipline
// StageMetricsSet established in PR 1, now generalized to every metric.
//
// Metrics carry a class: kPhysics values are deterministic functions of
// the seed (frame counts, phase errors, condition numbers) and are what
// exporters emit by default; kTiming values are wall-clock derived and
// only exported on request, keeping bench_result.json byte-identical
// across thread counts.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace jmb::obs {

enum class MetricClass {
  kPhysics,  ///< deterministic given the seed; exported by default
  kTiming,   ///< wall-clock derived; exported only when requested
};

/// Monotonically accumulating sum (doubles so it can carry seconds as
/// well as event counts).
class Counter {
 public:
  void add(double d = 1.0) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  double value_ = 0.0;
};

/// Last-written value. Merging takes the other side's value when it was
/// ever set, so trial-order merges resolve to the last trial that wrote.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    set_ = true;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool is_set() const { return set_; }
  void merge(const Gauge& other) {
    if (other.set_) {
      value_ = other.value_;
      set_ = true;
    }
  }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

/// Fixed-boundary histogram: bucket i counts observations in
/// (bounds[i-1], bounds[i]]; one overflow bucket past bounds.back().
/// Boundaries are fixed at registration (see obs/bounds.h for the
/// canonical literal tables) so bucket layout is stable across platforms
/// and merges are a plain element-wise sum.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 buckets, last one the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// q-quantile (q in [0,1]) by linear interpolation inside the bucket,
  /// tightened by the observed min/max. 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Element-wise sum; throws std::logic_error on boundary mismatch
  /// (two metrics with one name must agree on layout).
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics in first-registration order. Lookup is get-or-create;
/// asking for an existing name with a different metric kind (or different
/// histogram boundaries) throws std::logic_error.
class MetricRegistry {
 public:
  struct Entry {
    std::string name;
    MetricClass cls = MetricClass::kPhysics;
    std::variant<Counter, Gauge, Histogram> metric;
  };

  Counter& counter(std::string_view name,
                   MetricClass cls = MetricClass::kPhysics);
  Gauge& gauge(std::string_view name, MetricClass cls = MetricClass::kPhysics);
  Histogram& histogram(std::string_view name, std::span<const double> bounds,
                       MetricClass cls = MetricClass::kPhysics);

  /// Entries in first-registration order (deque: references handed out by
  /// the accessors stay valid as the registry grows).
  [[nodiscard]] const std::deque<Entry>& entries() const { return entries_; }
  [[nodiscard]] const Entry* find(std::string_view name) const;
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Merge `other` into this registry. New names append in the other
  /// registry's order, so repeated trial-order merges yield one
  /// deterministic layout regardless of scheduling.
  void merge(const MetricRegistry& other);

 private:
  Entry* find_mutable(std::string_view name);

  std::deque<Entry> entries_;
};

}  // namespace jmb::obs
