// Streaming-pipeline observability: per-operator queue/stall/deadline
// metrics and the run-level summary the streaming benches export.
//
// Everything here is MetricClass::kTiming — queue depths, stalls and
// deadline misses depend on wall-clock scheduling (ring depth, thread
// placement, machine load), so none of it may leak into the default
// physics export, which must stay byte-identical across every streaming
// configuration.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/bounds.h"
#include "obs/registry.h"

namespace jmb::obs {

/// Run-level streaming summary: the headline numbers bench_result.json
/// carries in its optional "streaming" object.
struct StreamingStats {
  double msamples_per_s = 0.0;     ///< sustained virtual samples / wall s
  double deadline_miss_rate = 0.0; ///< missed items / retired items
  std::uint64_t items = 0;         ///< work items retired
  std::uint64_t deadline_misses = 0;
  double total_msamples = 0.0;     ///< virtual samples pushed through, 1e6
  double wall_s = 0.0;
  double ring_depth = 0.0;         ///< per-edge SPSC capacity
  double stage_threads = 0.0;      ///< operator threads stages were packed on
  double rt_factor = 0.0;          ///< virtual-clock speedup; <= 0 free-run
};

/// Per-operator handle: resolves its metrics once at construction so the
/// operator hot loop is pointer-chasing adds, the same discipline as
/// engine::StageMetrics. One instance per operator thread, each backed by
/// that operator's own registry (merged in operator order afterwards).
class StreamOpObs {
 public:
  StreamOpObs(MetricRegistry& reg, std::size_t op_index);

  /// An item was popped; `depth` is the input ring's occupancy after.
  void on_pop(std::size_t depth) {
    const double d = static_cast<double>(depth);
    depth_->set(d);
    depth_hist_->observe(d);
    items_->add(1.0);
  }
  /// Output ring was full; the operator had to wait (backpressure).
  void on_push_stall() { stalls_->add(1.0); }

 private:
  Gauge* depth_ = nullptr;
  Histogram* depth_hist_ = nullptr;
  Counter* items_ = nullptr;
  Counter* stalls_ = nullptr;
};

/// Publish the run-level summary as kTiming gauges (for CSV dumps and
/// post-run inspection of a merged registry).
void register_stream_summary(MetricRegistry& reg, const StreamingStats& s);

}  // namespace jmb::obs
