// Bounded frame-trace recorder.
//
// Stages record begin/end spans (stage name, trial id, frame id); the
// recorder keeps the most recent `capacity` spans in a ring buffer and
// can dump them in Chrome trace_event JSON, viewable in chrome://tracing
// or Perfetto. One recorder is shared by all trial workers behind a
// mutex — tracing is an opt-in debugging aid, so its spans (unlike
// registry metrics) carry no cross-thread determinism guarantee.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string_view>
#include <vector>

#include "obs/registry.h"

namespace jmb::obs {

struct TraceSpan {
  std::string_view name;  ///< must outlive the recorder (kStage* constants)
  std::uint32_t trial = 0;
  std::uint64_t frame = 0;
  double ts_us = 0.0;   ///< span start, microseconds since epoch
  double dur_us = 0.0;  ///< span duration, microseconds
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1u << 16);

  /// Current wall-clock in microseconds since the Unix epoch; pair with
  /// record() to stamp a span.
  static double now_us();

  void record(std::string_view name, std::uint32_t trial, std::uint64_t frame,
              double ts_us, double dur_us);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  /// Spans evicted because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Retained spans, oldest first.
  [[nodiscard]] std::vector<TraceSpan> snapshot() const;

  /// Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...}]}. Each span
  /// maps trial id -> tid so per-trial timelines stack in the viewer.
  /// When spans were evicted, a final "C" counter event carries the
  /// `trace/dropped_events` total so the loss is visible in the viewer.
  void write_chrome_trace(std::FILE* out) const;

  /// Export the recorder's loss accounting into `reg` as kTiming gauges
  /// (`trace/recorded_events`, and `trace/dropped_events` when nonzero),
  /// so a bounded buffer that overflowed is loud in the metrics artifact
  /// instead of silently truncating the trace.
  void export_metrics(MetricRegistry& reg) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> ring_;
  std::size_t next_ = 0;        ///< ring write cursor once full
  std::uint64_t dropped_ = 0;
};

}  // namespace jmb::obs
