// Canonical histogram bucket boundaries.
//
// Every table is a literal constant — never computed with pow()/exp() at
// runtime — so bucket layout is bit-identical across platforms and
// libm implementations, and registry snapshots diff cleanly between
// machines.
#pragma once

namespace jmb::obs {

/// Wall-clock durations in microseconds (stage/frame timers).
inline constexpr double kTimeUsBounds[] = {
    1.0,    2.0,    5.0,    10.0,   20.0,    50.0,    100.0,
    200.0,  500.0,  1e3,    2e3,    5e3,     1e4,     2e4,
    5e4,    1e5,    2e5,    5e5,    1e6,     2e6,     5e6};

/// Phase errors in radians (residual misalignment, sync innovations).
inline constexpr double kPhaseRadBounds[] = {
    1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 0.01, 0.02,
    0.05, 0.1,  0.2,  0.5,  1.0,  2.0,  3.15};

/// Frequency offsets / innovations in Hz (CFO tracking).
inline constexpr double kHzBounds[] = {
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1e3, 3e3, 1e4};

/// Decibel-valued quantities spanning numeric leakage (-300 dB) through
/// strong signals (+50 dB): ZF leakage, EVM-SNR, INR.
inline constexpr double kDbBounds[] = {
    -320.0, -280.0, -240.0, -200.0, -160.0, -120.0, -80.0, -60.0, -40.0,
    -30.0,  -20.0,  -10.0,  -5.0,   0.0,    5.0,    10.0,  15.0,  20.0,
    25.0,   30.0,   40.0,   50.0};

/// Matrix 2-norm condition numbers (precoder conditioning, the K in the
/// paper's N log(SNR/K) beamforming rate).
inline constexpr double kCondBounds[] = {
    1.0, 1.2, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 50.0, 100.0, 1e3, 1e6};

/// Simulated-time latencies in seconds (fault time-to-detect /
/// time-to-recover; spans sub-millisecond detection through multi-second
/// outages).
inline constexpr double kLatencySBounds[] = {
    1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 0.01, 0.02, 0.05,
    0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0, 30.0};

/// Goodput in Mb/s (MAC-level throughput distributions from the
/// resilience sweeps; spans a starved single stream through a 10-AP
/// joint transmission).
inline constexpr double kMbpsBounds[] = {
    0.5,  1.0,  2.0,   3.0,   5.0,   7.5,   10.0,  15.0,  20.0,
    30.0, 50.0, 75.0,  100.0, 150.0, 200.0, 300.0, 500.0};

/// Bounded-ring occupancy (streaming-pipeline queue depths, sampled at
/// each pop; spans an empty edge through the deepest configured ring).
inline constexpr double kQueueDepthBounds[] = {
    0.0,  1.0,  2.0,  3.0,  4.0,   6.0,   8.0,   12.0,  16.0,
    24.0, 32.0, 48.0, 64.0, 96.0,  128.0, 192.0, 256.0, 512.0};

/// Unit-interval quantities (Jain fairness index, delivery ratios);
/// resolution concentrated near 1.0 where fair schedulers live.
inline constexpr double kUnitBounds[] = {
    0.1,  0.2,  0.3,  0.4,  0.5,  0.6,  0.7,   0.75, 0.8,
    0.85, 0.9,  0.925, 0.95, 0.97, 0.98, 0.99, 0.995, 1.0};

}  // namespace jmb::obs
