// Counting replacements for the global allocation functions. This TU is
// deliberately isolated in its own static library (`jmb_alloc_count`):
// only binaries that opt in — the zero-allocation tests — get the
// replaced operators; everything else keeps the stock allocator.
#include "obs/alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace jmb::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_deallocs{0};
std::atomic<std::uint64_t> g_bytes{0};

/// Honor JMB_COUNT_ALLOCS once, before the first counted allocation.
bool env_enabled() {
  static const bool on = [] {
    const char* v = std::getenv("JMB_COUNT_ALLOCS");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return on;
}

bool counting() {
  return g_enabled.load(std::memory_order_relaxed) || env_enabled();
}

void on_alloc(std::size_t size) {
  if (!counting()) return;
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
}

void on_dealloc() {
  if (!counting()) return;
  g_deallocs.fetch_add(1, std::memory_order_relaxed);
}

void* checked_malloc(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* checked_aligned(std::size_t size, std::size_t align) {
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void set_alloc_counting(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool alloc_counting_enabled() { return counting(); }

void reset_alloc_counts() {
  g_allocs.store(0, std::memory_order_relaxed);
  g_deallocs.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
}

AllocCounts alloc_counts() {
  return {g_allocs.load(std::memory_order_relaxed),
          g_deallocs.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

void export_alloc_metrics(MetricRegistry& reg) {
  const AllocCounts c = alloc_counts();
  reg.gauge("alloc/new_calls", MetricClass::kTiming)
      .set(static_cast<double>(c.allocs));
  reg.gauge("alloc/delete_calls", MetricClass::kTiming)
      .set(static_cast<double>(c.deallocs));
  reg.gauge("alloc/bytes", MetricClass::kTiming)
      .set(static_cast<double>(c.bytes));
}

}  // namespace jmb::obs

// ---- Global allocation-function replacements ------------------------------

void* operator new(std::size_t size) {
  jmb::obs::on_alloc(size);
  return jmb::obs::checked_malloc(size);
}

void* operator new[](std::size_t size) {
  jmb::obs::on_alloc(size);
  return jmb::obs::checked_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  jmb::obs::on_alloc(size);
  return jmb::obs::checked_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  jmb::obs::on_alloc(size);
  return jmb::obs::checked_aligned(size, static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  jmb::obs::on_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  jmb::obs::on_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept {
  jmb::obs::on_dealloc();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  jmb::obs::on_dealloc();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept {
  jmb::obs::on_dealloc();
  std::free(p);
}

void operator delete[](void* p, std::size_t) noexcept {
  jmb::obs::on_dealloc();
  std::free(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  jmb::obs::on_dealloc();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  jmb::obs::on_dealloc();
  std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  jmb::obs::on_dealloc();
  std::free(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  jmb::obs::on_dealloc();
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  jmb::obs::on_dealloc();
  std::free(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  jmb::obs::on_dealloc();
  std::free(p);
}
