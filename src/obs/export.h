// Exporters: registry -> bench_result.json / CSV, plus the minimal
// JSON-Schema validator backing the `metrics_export_smoke` ctest target.
//
// bench_result.json (schema id "jmb.bench_result.v1") is the
// machine-readable artifact every bench emits via --metrics-out; future
// PRs diff these files to track physics and perf trajectories. Exports
// include only kPhysics metrics unless `include_timing` is set, so a
// default export is byte-identical for any JMB_THREADS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/registry.h"
#include "obs/streaming.h"

namespace jmb::obs {

/// Metro-sharding run summary for the bench_result "metro" object. Plain
/// data so the exporter stays independent of the metro layer; the metro
/// bench fills it from a metro::MetroResult.
struct MetroSummary {
  std::uint64_t cells = 0;
  std::uint64_t users_per_cell = 0;
  double churn_rate_hz = 0.0;
  double aggregate_goodput_mbps = 0.0;
  double p99_frame_latency_s = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t handoffs = 0;  ///< accepted hand-offs (grid-wide)
  std::uint64_t blocked_handoffs = 0;
  std::uint64_t lead_elections = 0;
  std::uint64_t quarantines = 0;
  std::vector<double> per_cell_goodput_mbps;
};

/// Traffic-mode run summary for the bench_result "traffic" object: the
/// headline overload/fairness numbers for one (load, policy) configuration.
/// Plain data so the exporter stays independent of src/traffic/.
struct TrafficSummary {
  std::string profile;        ///< workload mix name ("web", "mixed", ...)
  std::string policy;         ///< scheduling policy name ("pf", "edf", ...)
  double offered_load = 0.0;  ///< offered / nominal-capacity ratio
  std::uint64_t users = 0;
  std::uint64_t flows = 0;            ///< distinct (client, flow) pairs
  std::uint64_t offered_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t aggregated_mpdus = 0;  ///< packets that rode an A-MPDU
  double jain_fairness = 0.0;          ///< over per-flow goodput, (0, 1]
  double goodput_mbps = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
};

/// Precoder-zoo run summary for the bench_result "precoder" object: the
/// headline CSI-robustness comparison at one impairment point. Plain data
/// so the exporter stays independent of core/precoder.h.
struct PrecoderSummary {
  std::string headline_kind;  ///< best goodput at the headline CSI point
  double staleness = 0.0;     ///< headline point: CSI age, coherence intervals
  std::uint64_t feedback_bits = 0;  ///< headline point: bits/component, 0=full
  double zf_goodput_mbps = 0.0;
  double rzf_goodput_mbps = 0.0;
  double conj_goodput_mbps = 0.0;
  /// rzf over zf goodput at the headline point — the MMSE robustness win.
  double rzf_over_zf = 0.0;
  double mean_condition = 0.0;  ///< mean channel 2-norm condition, all trials
};

struct BenchRunInfo {
  std::string figure;  ///< e.g. "fig09_throughput_scaling"
  std::uint64_t seed = 0;
  /// Free-form run parameters (n_ap, trials, snr_db, ...).
  std::vector<std::pair<std::string, double>> params;

  // --- fault-injection summary (resilience benches only) ---
  /// When set, a "faults" object is emitted. Runs without fault injection
  /// leave this false so their artifacts stay byte-identical to pre-fault
  /// exports.
  bool has_faults = false;
  std::string fault_plan;         ///< plan source: file path or builder name
  std::uint64_t fault_events = 0; ///< plan events scheduled per trial
  /// Aggregated recovery stats (quarantines, mean_time_to_detect_s, ...).
  std::vector<std::pair<std::string, double>> fault_stats;

  // --- streaming-mode summary (streaming benches only) ---
  /// When set, a "streaming" object is emitted (sustained Msamples/s,
  /// deadline-miss rate, ring/thread configuration). Batch runs leave
  /// this false so their artifacts stay byte-identical to pre-streaming
  /// exports.
  bool has_streaming = false;
  StreamingStats streaming;

  // --- metro-sharding summary (metro benches only) ---
  /// When set, a "metro" object is emitted (cell grid shape, churn and
  /// hand-off totals, aggregate goodput, p99 frame latency). Single-system
  /// runs leave this false so their artifacts stay byte-identical to
  /// pre-metro exports.
  bool has_metro = false;
  MetroSummary metro;

  // --- traffic-mode summary (overload/fairness benches only) ---
  /// When set, a "traffic" object is emitted (workload mix, scheduling
  /// policy, fairness and tail-latency headline numbers). Saturated runs
  /// leave this false so their artifacts stay byte-identical to
  /// pre-traffic exports.
  bool has_traffic = false;
  TrafficSummary traffic;

  // --- precoder-zoo summary (CSI-robustness benches only) ---
  /// When set, a "precoder" object is emitted (headline CSI point, per-kind
  /// goodput, rzf/zf robustness ratio). ZF-only runs leave this false so
  /// their artifacts stay byte-identical to pre-zoo exports.
  bool has_precoder = false;
  PrecoderSummary precoder;
};

/// Build the bench_result.v1 document for a merged registry.
JsonValue bench_result_doc(const BenchRunInfo& info, const MetricRegistry& reg,
                           bool include_timing = false);

/// Serialized bench_result.v1 JSON, newline-terminated.
std::string bench_result_json(const BenchRunInfo& info,
                              const MetricRegistry& reg,
                              bool include_timing = false);

/// CSV rows: name,kind,class,count,sum,min,max,mean,p50,p90,p99
/// (count/quantiles empty for counters and gauges).
std::string registry_csv(const MetricRegistry& reg,
                         bool include_timing = false);

/// Validate `doc` against a simplified JSON Schema supporting: type,
/// required, properties, items, const, enum, minItems, minimum, maximum.
/// Returns a list of human-readable errors, empty when the document
/// conforms.
std::vector<std::string> validate_schema(const JsonValue& schema,
                                         const JsonValue& doc);

/// Write `text` to `path`; returns false (and perror-style stderr note)
/// on failure.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace jmb::obs
