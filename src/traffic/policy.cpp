#include "traffic/policy.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace jmb::traffic {

namespace {
/// Floor for the PF denominator: a never-served client gets a huge but
/// finite priority instead of a division blow-up.
constexpr double kMinEwmaMbps = 1e-6;
}  // namespace

std::vector<std::size_t> FifoScheduler::select(
    const net::DownlinkQueue& q, std::size_t max_streams, double /*now*/,
    const net::RateHintFn* /*rate_hint*/) {
  std::vector<std::size_t> out = q.clients_fifo();
  if (out.size() > max_streams) out.resize(max_streams);
  return out;
}

std::vector<std::size_t> PfScheduler::select(
    const net::DownlinkQueue& q, std::size_t max_streams, double /*now*/,
    const net::RateHintFn* rate_hint) {
  // clients_fifo order is the tie-break: equal priorities keep FIFO.
  std::vector<std::size_t> out = q.clients_fifo();
  std::vector<double> prio(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::size_t c = out[i];
    double rate = 1.0;  // rate-blind PF degrades to max-min style fairness
    if (rate_hint && *rate_hint) {
      const double hint = (*rate_hint)(c);
      if (hint > 0.0) rate = hint;
    }
    prio[i] = rate / std::max(ewma_mbps(c), kMinEwmaMbps);
  }
  std::vector<std::size_t> order(out.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return prio[a] > prio[b];
                   });
  std::vector<std::size_t> picked;
  picked.reserve(std::min(max_streams, out.size()));
  for (std::size_t i : order) {
    if (picked.size() >= max_streams) break;
    picked.push_back(out[i]);
  }
  return picked;
}

void PfScheduler::on_served(std::size_t client, double bytes, double slot_s) {
  if (slot_s <= 0.0) return;
  pending_.emplace_back(client, bytes * 8.0 / slot_s / 1e6);
}

void PfScheduler::on_slot(double slot_s) {
  if (slot_s <= 0.0) {
    pending_.clear();
    return;
  }
  std::size_t max_client = ewma_mbps_.empty() ? 0 : ewma_mbps_.size() - 1;
  for (const auto& [c, rate] : pending_) max_client = std::max(max_client, c);
  if (max_client >= ewma_mbps_.size()) ewma_mbps_.resize(max_client + 1, 0.0);

  const double alpha = std::min(slot_s / tau_s_, 1.0);
  // Classic PF filter: everyone decays, the served add their slot rate.
  for (double& r : ewma_mbps_) r *= 1.0 - alpha;
  for (const auto& [c, rate] : pending_) ewma_mbps_[c] += alpha * rate;
  pending_.clear();
}

std::vector<std::size_t> EdfScheduler::select(
    const net::DownlinkQueue& q, std::size_t max_streams, double /*now*/,
    const net::RateHintFn* /*rate_hint*/) {
  std::vector<std::size_t> out = q.clients_fifo();
  const auto deadline_of = [&](std::size_t c) {
    const net::Packet* p = q.front_of(c);
    if (!p || p->deadline_s <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    return p->deadline_s;
  };
  std::stable_sort(out.begin(), out.end(),
                   [&](std::size_t a, std::size_t b) {
                     return deadline_of(a) < deadline_of(b);
                   });
  if (out.size() > max_streams) out.resize(max_streams);
  return out;
}

std::unique_ptr<net::Scheduler> make_scheduler(std::string_view name,
                                               double pf_tau_s) {
  if (name == "fifo") return std::make_unique<FifoScheduler>();
  if (name == "pf") return std::make_unique<PfScheduler>(pf_tau_s);
  if (name == "edf") return std::make_unique<EdfScheduler>();
  throw std::invalid_argument("make_scheduler: unknown policy '" +
                              std::string(name) + "'");
}

}  // namespace jmb::traffic
