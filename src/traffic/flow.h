// Deterministic per-user flow generators: the traffic side of the
// overload story. Each user carries a small set of flows (CBR "video",
// Poisson, or Pareto-burst "web"), and every flow runs on its own RNG
// stream seeded `base ^ user ^ (flow << 16)`, so the arrival sequence is
// a pure function of the seed — independent of thread count, trial order,
// and of how many *other* users exist. That is what lets bench exports
// stay byte-identical for any JMB_THREADS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "dsp/rng.h"
#include "net/queue.h"
#include "net/traffic_api.h"

namespace jmb::traffic {

enum class FlowKind {
  kCbr,      ///< fixed inter-packet gap, random initial phase (video)
  kPoisson,  ///< exponential inter-arrival (generic data)
  kWeb,      ///< Poisson burst arrivals, Pareto burst sizes (web browsing)
};

/// One flow's statistical shape. The long-run offered rate is rate_mbps
/// for every kind; the kinds differ in burstiness.
struct FlowSpec {
  FlowKind kind = FlowKind::kPoisson;
  double rate_mbps = 1.0;        ///< long-run offered load
  std::size_t packet_bytes = 1500;
  /// Relative delivery deadline stamped on each packet (EDF scheduling);
  /// 0 = best-effort, no deadline.
  double deadline_s = 0.0;
  // --- kWeb shape ---
  double pareto_alpha = 1.5;      ///< burst-size tail index (1 < alpha)
  double mean_burst_pkts = 8.0;   ///< mean burst size, packets
};

/// The flow set every user runs (users are statistically identical but
/// draw from independent RNG streams).
struct Profile {
  std::vector<FlowSpec> flows;
};

/// Named workload mixes for the JMB_TRAFFIC knob, scaled so each user
/// offers per_user_mbps in total:
///   "poisson" — one Poisson flow;
///   "web"     — one Pareto-burst web flow;
///   "video"   — one CBR flow with a 30 ms delivery deadline;
///   "mixed"   — 60% web + 40% deadline CBR video.
/// Throws std::invalid_argument for an unknown name.
[[nodiscard]] Profile make_profile(std::string_view name,
                                   double per_user_mbps);

/// Deterministic packet arrival process over n_users identical Profile
/// instances. Packets are emitted in global arrival order with a strict
/// (time, user, flow) tie-break; generation stops at horizon_s.
class PacketSource final : public net::TrafficSource {
 public:
  PacketSource(std::uint64_t base_seed, std::size_t n_users, Profile profile,
               double horizon_s);

  std::size_t drain_until(double t, net::DownlinkQueue& q) override;
  [[nodiscard]] double next_arrival_s() const override;

  /// Arrival-side accounting (what was offered, not what was served).
  [[nodiscard]] std::size_t offered_packets() const {
    return offered_packets_;
  }
  [[nodiscard]] std::size_t offered_bytes() const { return offered_bytes_; }

 private:
  struct FlowState {
    std::size_t user = 0;
    std::uint32_t flow = 0;
    FlowSpec spec;
    Rng rng;
    double next_t = 0.0;          ///< next packet emission instant
    std::size_t burst_left = 1;   ///< packets left at next_t (kWeb bursts)
  };

  /// Advance `f` past the packet just emitted: same-instant burst packets
  /// first, then the next scheduled arrival.
  void advance(FlowState& f);

  std::vector<FlowState> flows_;
  double horizon_s_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::size_t offered_packets_ = 0;
  std::size_t offered_bytes_ = 0;
};

}  // namespace jmb::traffic
