// Pluggable user-selection policies behind the net::Scheduler interface.
// FIFO reproduces the legacy pop_joint order bit-for-bit; proportional
// fair trades instantaneous rate against an EWMA of served throughput;
// earliest-deadline-first serves the most urgent head-of-line packets.
// All three are deterministic functions of their inputs and feedback —
// a requirement for cross-thread byte-identical exports.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "net/traffic_api.h"

namespace jmb::traffic {

/// First packet per distinct client, in global arrival order — exactly
/// what DownlinkQueue::pop_joint serves (tested bit-identical).
class FifoScheduler final : public net::Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "fifo"; }
  [[nodiscard]] std::vector<std::size_t> select(
      const net::DownlinkQueue& q, std::size_t max_streams, double now,
      const net::RateHintFn* rate_hint) override;
};

/// Proportional fair: priority = achievable rate / EWMA of served rate,
/// so a starved client's priority grows until it wins a slot. The EWMA
/// time constant tau governs the fairness horizon; every known client is
/// aged each slot (served or not), the classic PF filter.
class PfScheduler final : public net::Scheduler {
 public:
  explicit PfScheduler(double ewma_tau_s = 0.1) : tau_s_(ewma_tau_s) {}
  [[nodiscard]] std::string_view name() const override { return "pf"; }
  [[nodiscard]] std::vector<std::size_t> select(
      const net::DownlinkQueue& q, std::size_t max_streams, double now,
      const net::RateHintFn* rate_hint) override;
  void on_served(std::size_t client, double bytes, double slot_s) override;
  void on_slot(double slot_s) override;

  /// Current throughput estimate (Mb/s) for tests; 0 for unseen clients.
  [[nodiscard]] double ewma_mbps(std::size_t client) const {
    return client < ewma_mbps_.size() ? ewma_mbps_[client] : 0.0;
  }

 private:
  double tau_s_;
  std::vector<double> ewma_mbps_;
  /// (client, Mb/s served) feedback for the slot in flight, folded into
  /// the EWMA at on_slot().
  std::vector<std::pair<std::size_t, double>> pending_;
};

/// Earliest deadline first over head-of-line packets. Deadline-free
/// packets (deadline_s == 0) rank after every deadline, and ties keep
/// FIFO order (stable sort) — so two ready deadlines are never inverted.
class EdfScheduler final : public net::Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "edf"; }
  [[nodiscard]] std::vector<std::size_t> select(
      const net::DownlinkQueue& q, std::size_t max_streams, double now,
      const net::RateHintFn* rate_hint) override;
};

/// Factory for the JMB_SCHED knob: "fifo" | "pf" | "edf". Throws
/// std::invalid_argument for an unknown name.
[[nodiscard]] std::unique_ptr<net::Scheduler> make_scheduler(
    std::string_view name, double pf_tau_s = 0.1);

}  // namespace jmb::traffic
