#include "traffic/flow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace jmb::traffic {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
/// Burst-size cap: the Pareto tail is heavy (infinite variance for
/// alpha <= 2), so one unlucky draw must not freeze a trial.
constexpr std::size_t kMaxBurstPkts = 1024;

/// Mean inter-packet (or inter-burst) gap in seconds for a given offered
/// rate and payload size.
double mean_gap_s(double rate_mbps, double bytes) {
  return bytes * 8.0 / (rate_mbps * 1e6);
}

double exp_draw(Rng& rng, double mean_s) {
  // uniform() is [0, 1), so 1-u is (0, 1] and the log is finite.
  return -mean_s * std::log(1.0 - rng.uniform());
}

/// Pareto burst size with the requested mean:  xm = mean*(a-1)/a  and
/// B = floor(xm / U^(1/a)), clamped to [1, kMaxBurstPkts].
std::size_t pareto_burst(Rng& rng, const FlowSpec& spec) {
  const double a = std::max(spec.pareto_alpha, 1.001);
  const double xm = spec.mean_burst_pkts * (a - 1.0) / a;
  const double u = 1.0 - rng.uniform();  // (0, 1]
  const double b = std::floor(xm / std::pow(u, 1.0 / a));
  if (b < 1.0) return 1;
  return std::min(static_cast<std::size_t>(b), kMaxBurstPkts);
}

}  // namespace

Profile make_profile(std::string_view name, double per_user_mbps) {
  Profile p;
  if (name == "poisson") {
    p.flows.push_back({FlowKind::kPoisson, per_user_mbps, 1500, 0.0});
  } else if (name == "web") {
    p.flows.push_back({FlowKind::kWeb, per_user_mbps, 1500, 0.0});
  } else if (name == "video") {
    p.flows.push_back({FlowKind::kCbr, per_user_mbps, 1316, 0.030});
  } else if (name == "mixed") {
    p.flows.push_back({FlowKind::kWeb, 0.6 * per_user_mbps, 1500, 0.0});
    p.flows.push_back({FlowKind::kCbr, 0.4 * per_user_mbps, 1316, 0.030});
  } else {
    throw std::invalid_argument("make_profile: unknown traffic profile '" +
                                std::string(name) + "'");
  }
  return p;
}

PacketSource::PacketSource(std::uint64_t base_seed, std::size_t n_users,
                           Profile profile, double horizon_s)
    : horizon_s_(horizon_s) {
  flows_.reserve(n_users * profile.flows.size());
  for (std::size_t u = 0; u < n_users; ++u) {
    for (std::size_t fi = 0; fi < profile.flows.size(); ++fi) {
      FlowState f;
      f.user = u;
      f.flow = static_cast<std::uint32_t>(fi);
      f.spec = profile.flows[fi];
      // ISSUE-mandated per-flow stream: independent of every other flow
      // and of thread count.
      f.rng = Rng(base_seed ^ static_cast<std::uint64_t>(u) ^
                  (static_cast<std::uint64_t>(fi) << 16));
      const double gap =
          mean_gap_s(f.spec.rate_mbps,
                     static_cast<double>(f.spec.packet_bytes) *
                         (f.spec.kind == FlowKind::kWeb
                              ? f.spec.mean_burst_pkts
                              : 1.0));
      switch (f.spec.kind) {
        case FlowKind::kCbr:
          f.next_t = f.rng.uniform() * gap;  // random phase
          f.burst_left = 1;
          break;
        case FlowKind::kPoisson:
          f.next_t = exp_draw(f.rng, gap);
          f.burst_left = 1;
          break;
        case FlowKind::kWeb:
          f.next_t = exp_draw(f.rng, gap);
          f.burst_left = pareto_burst(f.rng, f.spec);
          break;
      }
      flows_.push_back(std::move(f));
    }
  }
}

void PacketSource::advance(FlowState& f) {
  if (f.burst_left > 1) {
    --f.burst_left;  // next packet of the burst, same instant
    return;
  }
  const double pkt_gap = mean_gap_s(
      f.spec.rate_mbps, static_cast<double>(f.spec.packet_bytes));
  switch (f.spec.kind) {
    case FlowKind::kCbr:
      f.next_t += pkt_gap;
      f.burst_left = 1;
      break;
    case FlowKind::kPoisson:
      f.next_t += exp_draw(f.rng, pkt_gap);
      f.burst_left = 1;
      break;
    case FlowKind::kWeb:
      f.next_t += exp_draw(f.rng, pkt_gap * f.spec.mean_burst_pkts);
      f.burst_left = pareto_burst(f.rng, f.spec);
      break;
  }
}

std::size_t PacketSource::drain_until(double t, net::DownlinkQueue& q) {
  std::size_t pushed = 0;
  for (;;) {
    // Global arrival order with a (time, user, flow) tie-break: flows_ is
    // ordered by (user, flow), and the strict < keeps the first minimum.
    std::size_t best = kNpos;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (best == kNpos || flows_[i].next_t < flows_[best].next_t) best = i;
    }
    if (best == kNpos) break;
    FlowState& f = flows_[best];
    if (f.next_t > t || f.next_t >= horizon_s_) break;
    net::Packet p;
    p.client = f.user;
    p.bytes = f.spec.packet_bytes;
    p.designated_ap = 0;
    p.enqueue_s = f.next_t;
    p.retries = 0;
    p.id = next_id_++;
    p.flow = f.flow;
    p.deadline_s =
        f.spec.deadline_s > 0.0 ? f.next_t + f.spec.deadline_s : 0.0;
    q.push(p);
    ++pushed;
    ++offered_packets_;
    offered_bytes_ += p.bytes;
    advance(f);
  }
  return pushed;
}

double PacketSource::next_arrival_s() const {
  double best = std::numeric_limits<double>::infinity();
  for (const FlowState& f : flows_) best = std::min(best, f.next_t);
  return best >= horizon_s_ ? std::numeric_limits<double>::infinity() : best;
}

}  // namespace jmb::traffic
