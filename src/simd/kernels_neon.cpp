#include "simd/tables.h"

#if defined(__aarch64__)
#include "simd/kernels_impl.h"
#endif

namespace jmb::simd {

#if defined(__aarch64__)
const Kernels* neon_kernels() {
  static constexpr Kernels k = make_kernels<NeonArch>("neon");
  return &k;
}
#else
const Kernels* neon_kernels() { return nullptr; }
#endif

}  // namespace jmb::simd
