// Internal: per-backend kernel-table accessors. Each returns nullptr when
// the backend is not compiled into this binary (wrong arch or missing
// compiler support); backend.cpp treats nullptr as unavailable.
#pragma once

namespace jmb::simd {

struct Kernels;

const Kernels* scalar_kernels();
const Kernels* sse2_kernels();
const Kernels* avx2_kernels();
const Kernels* avx512_kernels();
const Kernels* neon_kernels();

}  // namespace jmb::simd
