// Per-architecture batch primitives: a uniform register-level vocabulary
// (load/store, add/sub, complex multiply, compare/select) over which the
// shared kernel templates in kernels_impl.h are written once and
// instantiated per backend.
//
// Bit-identity rules every arch must obey:
//  - cmul(a, b) performs, per complex lane, exactly
//        re = ar*br - ai*bi;  im = ar*bi + ai*br;
//    as four IEEE multiplies, one subtraction-equivalent and one
//    addition. Vector archs realize the subtraction as x + (-y) via a
//    sign-bit XOR, which IEEE 754 defines to be bitwise equal to x - y.
//  - No FMA anywhere (the TUs additionally compile with
//    -ffp-contract=off so scalar tails cannot be contracted either).
//  - Lanes are independent: no horizontal operations, no reassociation.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace jmb::simd {

/// Reference backend: one complex lane, plain double arithmetic. Every
/// other arch must match it bitwise lane by lane.
struct ScalarArch {
  static constexpr std::size_t kLanes = 1;      ///< complex lanes
  static constexpr std::size_t kRealLanes = 1;  ///< real (double) lanes
  struct CReg {
    double re, im;
  };
  using RReg = double;
  using MReg = bool;

  static CReg cload(const double* p) { return {p[0], p[1]}; }
  static void cstore(double* p, CReg a) {
    p[0] = a.re;
    p[1] = a.im;
  }
  static CReg cbroadcast(double re, double im) { return {re, im}; }
  static CReg cgather(const double* p, std::size_t) { return cload(p); }
  static void cscatter(double* p, std::size_t, CReg a) { cstore(p, a); }
  /// Load 2*kLanes contiguous complex at p; even complex indices into
  /// `ev`, odd into `od`. cinterleave2 is the exact inverse store.
  static void cdeinterleave2(const double* p, CReg& ev, CReg& od) {
    ev = cload(p);
    od = cload(p + 2);
  }
  static void cinterleave2(double* p, CReg ev, CReg od) {
    cstore(p, ev);
    cstore(p + 2, od);
  }
  static CReg cadd(CReg a, CReg b) { return {a.re + b.re, a.im + b.im}; }
  static CReg csub(CReg a, CReg b) { return {a.re - b.re, a.im - b.im}; }
  static CReg cmul(CReg a, CReg b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  static CReg cconj(CReg a) { return {a.re, -a.im}; }

  static RReg rload(const double* p) { return *p; }
  static void rstore(double* p, RReg a) { *p = a; }
  static RReg rbroadcast(double v) { return v; }
  static RReg radd(RReg a, RReg b) { return a + b; }
  static RReg rmul(RReg a, RReg b) { return a * b; }
  static MReg rcmp_gt(RReg a, RReg b) { return a > b; }
  static RReg rselect(MReg m, RReg a, RReg b) { return m ? a : b; }
  static unsigned mask_bits(MReg m) { return m ? 1u : 0u; }
  static void deinterleave(const double* p, RReg& even, RReg& odd) {
    even = p[0];
    odd = p[1];
  }
};

#if defined(__SSE2__)
/// SSE2: one complex lane per __m128d; re and im advance in lockstep.
struct Sse2Arch {
  static constexpr std::size_t kLanes = 1;
  static constexpr std::size_t kRealLanes = 2;
  using CReg = __m128d;
  using RReg = __m128d;
  using MReg = __m128d;

  static CReg cload(const double* p) { return _mm_loadu_pd(p); }
  static void cstore(double* p, CReg a) { _mm_storeu_pd(p, a); }
  static CReg cbroadcast(double re, double im) { return _mm_setr_pd(re, im); }
  static CReg cgather(const double* p, std::size_t) { return cload(p); }
  static void cscatter(double* p, std::size_t, CReg a) { cstore(p, a); }
  static void cdeinterleave2(const double* p, CReg& ev, CReg& od) {
    ev = _mm_loadu_pd(p);
    od = _mm_loadu_pd(p + 2);
  }
  static void cinterleave2(double* p, CReg ev, CReg od) {
    _mm_storeu_pd(p, ev);
    _mm_storeu_pd(p + 2, od);
  }
  static CReg cadd(CReg a, CReg b) { return _mm_add_pd(a, b); }
  static CReg csub(CReg a, CReg b) { return _mm_sub_pd(a, b); }
  static CReg cmul(CReg a, CReg b) {
    const __m128d ar = _mm_unpacklo_pd(a, a);
    const __m128d ai = _mm_unpackhi_pd(a, a);
    const __m128d bswap = _mm_shuffle_pd(b, b, 0x1);
    const __m128d t1 = _mm_mul_pd(ar, b);      // [ar*br, ar*bi]
    const __m128d t2 = _mm_mul_pd(ai, bswap);  // [ai*bi, ai*br]
    return _mm_add_pd(t1, _mm_xor_pd(t2, _mm_setr_pd(-0.0, 0.0)));
  }
  static CReg cconj(CReg a) {
    return _mm_xor_pd(a, _mm_setr_pd(0.0, -0.0));
  }

  static RReg rload(const double* p) { return _mm_loadu_pd(p); }
  static void rstore(double* p, RReg a) { _mm_storeu_pd(p, a); }
  static RReg rbroadcast(double v) { return _mm_set1_pd(v); }
  static RReg radd(RReg a, RReg b) { return _mm_add_pd(a, b); }
  static RReg rmul(RReg a, RReg b) { return _mm_mul_pd(a, b); }
  static MReg rcmp_gt(RReg a, RReg b) { return _mm_cmpgt_pd(a, b); }
  static RReg rselect(MReg m, RReg a, RReg b) {
    return _mm_or_pd(_mm_and_pd(m, a), _mm_andnot_pd(m, b));
  }
  static unsigned mask_bits(MReg m) {
    return static_cast<unsigned>(_mm_movemask_pd(m));
  }
  static void deinterleave(const double* p, RReg& even, RReg& odd) {
    const __m128d a = _mm_loadu_pd(p);
    const __m128d b = _mm_loadu_pd(p + 2);
    even = _mm_unpacklo_pd(a, b);
    odd = _mm_unpackhi_pd(a, b);
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
/// AVX2: two complex lanes per __m256d.
struct Avx2Arch {
  static constexpr std::size_t kLanes = 2;
  static constexpr std::size_t kRealLanes = 4;
  using CReg = __m256d;
  using RReg = __m256d;
  using MReg = __m256d;

  static CReg cload(const double* p) { return _mm256_loadu_pd(p); }
  static void cstore(double* p, CReg a) { _mm256_storeu_pd(p, a); }
  static CReg cbroadcast(double re, double im) {
    return _mm256_setr_pd(re, im, re, im);
  }
  /// Two complex lanes from p and p + stride doubles.
  static CReg cgather(const double* p, std::size_t stride) {
    return _mm256_insertf128_pd(_mm256_castpd128_pd256(_mm_loadu_pd(p)),
                                _mm_loadu_pd(p + stride), 1);
  }
  static void cscatter(double* p, std::size_t stride, CReg a) {
    _mm_storeu_pd(p, _mm256_castpd256_pd128(a));
    _mm_storeu_pd(p + stride, _mm256_extractf128_pd(a, 1));
  }
  static void cdeinterleave2(const double* p, CReg& ev, CReg& od) {
    const __m256d a = _mm256_loadu_pd(p);      // [e0 o0]
    const __m256d b = _mm256_loadu_pd(p + 4);  // [e1 o1]
    ev = _mm256_permute2f128_pd(a, b, 0x20);   // [e0 e1]
    od = _mm256_permute2f128_pd(a, b, 0x31);   // [o0 o1]
  }
  static void cinterleave2(double* p, CReg ev, CReg od) {
    _mm256_storeu_pd(p, _mm256_permute2f128_pd(ev, od, 0x20));
    _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(ev, od, 0x31));
  }
  static CReg cadd(CReg a, CReg b) { return _mm256_add_pd(a, b); }
  static CReg csub(CReg a, CReg b) { return _mm256_sub_pd(a, b); }
  static CReg cmul(CReg a, CReg b) {
    const __m256d ar = _mm256_movedup_pd(a);
    const __m256d ai = _mm256_permute_pd(a, 0xF);
    const __m256d bswap = _mm256_permute_pd(b, 0x5);
    const __m256d t1 = _mm256_mul_pd(ar, b);
    const __m256d t2 = _mm256_mul_pd(ai, bswap);
    return _mm256_add_pd(
        t1, _mm256_xor_pd(t2, _mm256_setr_pd(-0.0, 0.0, -0.0, 0.0)));
  }
  static CReg cconj(CReg a) {
    return _mm256_xor_pd(a, _mm256_setr_pd(0.0, -0.0, 0.0, -0.0));
  }

  static RReg rload(const double* p) { return _mm256_loadu_pd(p); }
  static void rstore(double* p, RReg a) { _mm256_storeu_pd(p, a); }
  static RReg rbroadcast(double v) { return _mm256_set1_pd(v); }
  static RReg radd(RReg a, RReg b) { return _mm256_add_pd(a, b); }
  static RReg rmul(RReg a, RReg b) { return _mm256_mul_pd(a, b); }
  static MReg rcmp_gt(RReg a, RReg b) {
    return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
  }
  static RReg rselect(MReg m, RReg a, RReg b) {
    return _mm256_blendv_pd(b, a, m);
  }
  static unsigned mask_bits(MReg m) {
    return static_cast<unsigned>(_mm256_movemask_pd(m));
  }
  static void deinterleave(const double* p, RReg& even, RReg& odd) {
    const __m256d a = _mm256_loadu_pd(p);      // [p0 p1 p2 p3]
    const __m256d b = _mm256_loadu_pd(p + 4);  // [p4 p5 p6 p7]
    const __m256d lo = _mm256_unpacklo_pd(a, b);  // [p0 p4 p2 p6]
    const __m256d hi = _mm256_unpackhi_pd(a, b);  // [p1 p5 p3 p7]
    even = _mm256_permute4x64_pd(lo, _MM_SHUFFLE(3, 1, 2, 0));
    odd = _mm256_permute4x64_pd(hi, _MM_SHUFFLE(3, 1, 2, 0));
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
/// AVX-512F: four complex lanes per __m512d. Bitwise float ops go through
/// the integer domain (xor_pd needs AVX512DQ; xor_epi64 is F).
struct Avx512Arch {
  static constexpr std::size_t kLanes = 4;
  static constexpr std::size_t kRealLanes = 8;
  using CReg = __m512d;
  using RReg = __m512d;
  using MReg = __mmask8;

  static __m512d xor_pd(__m512d a, __m512d b) {
    return _mm512_castsi512_pd(_mm512_xor_epi64(_mm512_castpd_si512(a),
                                                _mm512_castpd_si512(b)));
  }

  static CReg cload(const double* p) { return _mm512_loadu_pd(p); }
  static void cstore(double* p, CReg a) { _mm512_storeu_pd(p, a); }
  static CReg cbroadcast(double re, double im) {
    return _mm512_setr_pd(re, im, re, im, re, im, re, im);
  }
  static CReg cgather(const double* p, std::size_t stride) {
    const __m256d lo = _mm256_insertf128_pd(
        _mm256_castpd128_pd256(_mm_loadu_pd(p)), _mm_loadu_pd(p + stride), 1);
    const __m256d hi = _mm256_insertf128_pd(
        _mm256_castpd128_pd256(_mm_loadu_pd(p + 2 * stride)),
        _mm_loadu_pd(p + 3 * stride), 1);
    return _mm512_insertf64x4(_mm512_castpd256_pd512(lo), hi, 1);
  }
  static void cscatter(double* p, std::size_t stride, CReg a) {
    // extractf64x2 needs AVX512DQ; stay within F via the 256-bit halves.
    const __m256d lo = _mm512_castpd512_pd256(a);
    const __m256d hi = _mm512_extractf64x4_pd(a, 1);
    _mm_storeu_pd(p, _mm256_castpd256_pd128(lo));
    _mm_storeu_pd(p + stride, _mm256_extractf128_pd(lo, 1));
    _mm_storeu_pd(p + 2 * stride, _mm256_castpd256_pd128(hi));
    _mm_storeu_pd(p + 3 * stride, _mm256_extractf128_pd(hi, 1));
  }
  static void cdeinterleave2(const double* p, CReg& ev, CReg& od) {
    const __m512d a = _mm512_loadu_pd(p);      // [e0 o0 e1 o1]
    const __m512d b = _mm512_loadu_pd(p + 8);  // [e2 o2 e3 o3]
    ev = _mm512_shuffle_f64x2(a, b, _MM_SHUFFLE(2, 0, 2, 0));
    od = _mm512_shuffle_f64x2(a, b, _MM_SHUFFLE(3, 1, 3, 1));
  }
  static void cinterleave2(double* p, CReg ev, CReg od) {
    const __m512i idx_lo = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
    const __m512i idx_hi = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
    _mm512_storeu_pd(p, _mm512_permutex2var_pd(ev, idx_lo, od));
    _mm512_storeu_pd(p + 8, _mm512_permutex2var_pd(ev, idx_hi, od));
  }
  static CReg cadd(CReg a, CReg b) { return _mm512_add_pd(a, b); }
  static CReg csub(CReg a, CReg b) { return _mm512_sub_pd(a, b); }
  static CReg cmul(CReg a, CReg b) {
    const __m512d ar = _mm512_movedup_pd(a);
    const __m512d ai = _mm512_permute_pd(a, 0xFF);
    const __m512d bswap = _mm512_permute_pd(b, 0x55);
    const __m512d t1 = _mm512_mul_pd(ar, b);
    const __m512d t2 = _mm512_mul_pd(ai, bswap);
    return _mm512_add_pd(
        t1, xor_pd(t2, _mm512_setr_pd(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0,
                                      0.0)));
  }
  static CReg cconj(CReg a) {
    return xor_pd(
        a, _mm512_setr_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0));
  }

  static RReg rload(const double* p) { return _mm512_loadu_pd(p); }
  static void rstore(double* p, RReg a) { _mm512_storeu_pd(p, a); }
  static RReg rbroadcast(double v) { return _mm512_set1_pd(v); }
  static RReg radd(RReg a, RReg b) { return _mm512_add_pd(a, b); }
  static RReg rmul(RReg a, RReg b) { return _mm512_mul_pd(a, b); }
  static MReg rcmp_gt(RReg a, RReg b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_GT_OQ);
  }
  static RReg rselect(MReg m, RReg a, RReg b) {
    return _mm512_mask_blend_pd(m, b, a);
  }
  static unsigned mask_bits(MReg m) { return static_cast<unsigned>(m); }
  static void deinterleave(const double* p, RReg& even, RReg& odd) {
    const __m512d a = _mm512_loadu_pd(p);
    const __m512d b = _mm512_loadu_pd(p + 8);
    const __m512i idx_e = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i idx_o = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    even = _mm512_permutex2var_pd(a, idx_e, b);
    odd = _mm512_permutex2var_pd(a, idx_o, b);
  }
};
#endif  // __AVX512F__

#if defined(__aarch64__)
/// NEON (aarch64): one complex lane per float64x2_t.
struct NeonArch {
  static constexpr std::size_t kLanes = 1;
  static constexpr std::size_t kRealLanes = 2;
  using CReg = float64x2_t;
  using RReg = float64x2_t;
  using MReg = uint64x2_t;

  static float64x2_t xor_f64(float64x2_t a, uint64x2_t mask) {
    return vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(a), mask));
  }

  static CReg cload(const double* p) { return vld1q_f64(p); }
  static void cstore(double* p, CReg a) { vst1q_f64(p, a); }
  static CReg cbroadcast(double re, double im) {
    const double v[2] = {re, im};
    return vld1q_f64(v);
  }
  static CReg cgather(const double* p, std::size_t) { return cload(p); }
  static void cscatter(double* p, std::size_t, CReg a) { cstore(p, a); }
  static void cdeinterleave2(const double* p, CReg& ev, CReg& od) {
    ev = vld1q_f64(p);
    od = vld1q_f64(p + 2);
  }
  static void cinterleave2(double* p, CReg ev, CReg od) {
    vst1q_f64(p, ev);
    vst1q_f64(p + 2, od);
  }
  static CReg cadd(CReg a, CReg b) { return vaddq_f64(a, b); }
  static CReg csub(CReg a, CReg b) { return vsubq_f64(a, b); }
  static CReg cmul(CReg a, CReg b) {
    const float64x2_t ar = vdupq_laneq_f64(a, 0);
    const float64x2_t ai = vdupq_laneq_f64(a, 1);
    const float64x2_t bswap = vextq_f64(b, b, 1);
    const float64x2_t t1 = vmulq_f64(ar, b);
    const float64x2_t t2 = vmulq_f64(ai, bswap);
    const uint64x2_t neg_even = {0x8000000000000000ull, 0ull};
    return vaddq_f64(t1, xor_f64(t2, neg_even));
  }
  static CReg cconj(CReg a) {
    const uint64x2_t neg_odd = {0ull, 0x8000000000000000ull};
    return xor_f64(a, neg_odd);
  }

  static RReg rload(const double* p) { return vld1q_f64(p); }
  static void rstore(double* p, RReg a) { vst1q_f64(p, a); }
  static RReg rbroadcast(double v) { return vdupq_n_f64(v); }
  static RReg radd(RReg a, RReg b) { return vaddq_f64(a, b); }
  static RReg rmul(RReg a, RReg b) { return vmulq_f64(a, b); }
  static MReg rcmp_gt(RReg a, RReg b) { return vcgtq_f64(a, b); }
  static RReg rselect(MReg m, RReg a, RReg b) { return vbslq_f64(m, a, b); }
  static unsigned mask_bits(MReg m) {
    return static_cast<unsigned>(vgetq_lane_u64(m, 0) & 1u) |
           (static_cast<unsigned>(vgetq_lane_u64(m, 1) & 1u) << 1);
  }
  static void deinterleave(const double* p, RReg& even, RReg& odd) {
    const float64x2x2_t t = vld2q_f64(p);
    even = t.val[0];
    odd = t.val[1];
  }
};
#endif  // __aarch64__

}  // namespace jmb::simd
