// Cache-line-aligned allocator for hot-path buffers, so vector loads on
// Workspace-owned spans never split cache lines. Allocation goes through
// the aligned global operator new, which obs/alloc_count.cpp replaces —
// JMB_COUNT_ALLOCS keeps seeing these allocations.
#pragma once

#include <cstddef>
#include <new>

#include "dsp/types.h"

namespace jmb::simd {

inline constexpr std::size_t kCacheLine = 64;

template <class T, std::size_t Align = kCacheLine>
struct AlignedAlloc {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0);
  using value_type = T;

  // The non-type Align parameter defeats allocator_traits' default
  // rebind; spell it out.
  template <class U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };

  AlignedAlloc() = default;
  template <class U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
  }

  template <class U>
  bool operator==(const AlignedAlloc<U, Align>&) const noexcept {
    return true;
  }
};

/// Aligned drop-in for cvec in hot-path workspaces. Converts to the same
/// std::span<cplx> views the kernels consume.
using acvec = std::vector<cplx, AlignedAlloc<cplx>>;

/// Aligned real buffer (Viterbi path metrics).
using advec = std::vector<double, AlignedAlloc<double>>;

}  // namespace jmb::simd
