#include "simd/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "simd/kernels.h"
#include "simd/tables.h"

namespace jmb::simd {

namespace {

const Kernels* table_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_kernels();
    case Backend::kSse2:
      return sse2_kernels();
    case Backend::kAvx2:
      return avx2_kernels();
    case Backend::kAvx512:
      return avx512_kernels();
    case Backend::kNeon:
      return neon_kernels();
  }
  return nullptr;
}

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Backend::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Backend::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
#endif
#if defined(__aarch64__)
    case Backend::kNeon:
      return true;  // AdvSIMD is architecturally mandatory on aarch64
#endif
    default:
      return false;
  }
}

// Cached selection: -1 = not yet resolved. The table pointer is derived
// from the backend, so one atomic is enough; racing first-use threads all
// resolve to the same value (detect_backend is deterministic per env).
std::atomic<int> g_active{-1};

int resolve_active() {
  int cur = g_active.load(std::memory_order_acquire);
  if (cur < 0) {
    const Backend b = detect_backend();
    cur = static_cast<int>(b);
    int expected = -1;
    if (!g_active.compare_exchange_strong(expected, cur,
                                          std::memory_order_acq_rel)) {
      cur = expected;
    }
  }
  return cur;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
    case Backend::kNeon:
      return "neon";
  }
  return "?";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "sse2") return Backend::kSse2;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512" || name == "avx512f") return Backend::kAvx512;
  if (name == "neon") return Backend::kNeon;
  return std::nullopt;
}

bool backend_available(Backend b) {
  return table_for(b) != nullptr && cpu_supports(b);
}

Backend best_backend() {
  for (Backend b : {Backend::kAvx512, Backend::kAvx2, Backend::kSse2,
                    Backend::kNeon}) {
    if (backend_available(b)) return b;
  }
  return Backend::kScalar;
}

Backend detect_backend() {
  const char* env = std::getenv("JMB_SIMD");
  if (env == nullptr || *env == '\0' ||
      std::string_view(env) == "auto") {
    return best_backend();
  }
  const std::optional<Backend> want = parse_backend(env);
  if (want && backend_available(*want)) return *want;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    if (want) {
      std::fprintf(stderr,
                   "jmb: JMB_SIMD=%s not available on this machine; using "
                   "%s\n",
                   env, backend_name(best_backend()));
    } else {
      std::fprintf(stderr,
                   "jmb: unknown JMB_SIMD=%s (want "
                   "scalar|sse2|avx2|avx512|neon|auto); using %s\n",
                   env, backend_name(best_backend()));
    }
  }
  return best_backend();
}

Backend active_backend() { return static_cast<Backend>(resolve_active()); }

const Kernels& active_kernels() {
  return *table_for(static_cast<Backend>(resolve_active()));
}

bool set_backend(Backend b) {
  if (!backend_available(b)) return false;
  g_active.store(static_cast<int>(b), std::memory_order_release);
  return true;
}

void reset_backend_cache() {
  g_active.store(-1, std::memory_order_release);
}

}  // namespace jmb::simd
