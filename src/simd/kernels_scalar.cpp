#include "simd/kernels_impl.h"
#include "simd/tables.h"

namespace jmb::simd {

const Kernels* scalar_kernels() {
  static constexpr Kernels k = make_kernels<ScalarArch>("scalar");
  return &k;
}

}  // namespace jmb::simd
