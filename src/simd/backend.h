// SIMD backend selection: compile-time gated kernel tables (scalar /
// SSE2 / AVX2 / AVX-512 / NEON) chosen once at startup via cpuid and
// overridable with JMB_SIMD=scalar|sse2|avx2|avx512|neon for debugging
// and parity testing.
//
// The parity contract (see DESIGN.md "SIMD model"): every backend's
// kernels perform the exact scalar operation sequence within each vector
// lane and batch only across independent elements (subcarriers, matrix
// columns, trellis states), so all backends produce bitwise-identical
// results. JMB_SIMD never changes physics, only speed.
#pragma once

#include <optional>
#include <string_view>

namespace jmb::simd {

enum class Backend { kScalar, kSse2, kAvx2, kAvx512, kNeon };

/// Lower-case canonical name ("scalar", "sse2", ...).
[[nodiscard]] const char* backend_name(Backend b);

/// Parse a JMB_SIMD value; "auto" and "" mean nullopt (pick the best).
/// Unknown names also return nullopt — the caller warns.
[[nodiscard]] std::optional<Backend> parse_backend(std::string_view name);

/// True when the backend is both compiled into this binary and supported
/// by the running CPU. kScalar is always available.
[[nodiscard]] bool backend_available(Backend b);

/// The widest available backend on this machine (ignores JMB_SIMD).
[[nodiscard]] Backend best_backend();

/// best_backend() unless JMB_SIMD names an available backend. An unknown
/// or unavailable JMB_SIMD value warns once on stderr and falls back.
[[nodiscard]] Backend detect_backend();

/// The backend whose kernel table active_kernels() currently returns.
/// Resolved from detect_backend() on first use, then cached.
[[nodiscard]] Backend active_backend();

/// Force the active kernel table (test/bench hook). Not thread-safe
/// against concurrently running kernels: call it only from the main
/// thread while no TrialRunner workers are live. Returns false (and
/// changes nothing) if the backend is unavailable on this machine.
bool set_backend(Backend b);

/// Drop the cached selection so the next active_kernels() call re-reads
/// JMB_SIMD — the env-override round-trip used by tests.
void reset_backend_cache();

}  // namespace jmb::simd
