#include "simd/tables.h"

#if defined(__SSE2__)
#include "simd/kernels_impl.h"
#endif

namespace jmb::simd {

#if defined(__SSE2__)
const Kernels* sse2_kernels() {
  static constexpr Kernels k = make_kernels<Sse2Arch>("sse2");
  return &k;
}
#else
const Kernels* sse2_kernels() { return nullptr; }
#endif

}  // namespace jmb::simd
