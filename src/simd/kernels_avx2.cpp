// Compiled with -mavx2 when the toolchain supports it (see
// simd/CMakeLists.txt); the guard turns the TU into a stub otherwise.
#include "simd/tables.h"

#if defined(__AVX2__)
#include "simd/kernels_impl.h"
#endif

namespace jmb::simd {

#if defined(__AVX2__)
const Kernels* avx2_kernels() {
  static constexpr Kernels k = make_kernels<Avx2Arch>("avx2");
  return &k;
}
#else
const Kernels* avx2_kernels() { return nullptr; }
#endif

}  // namespace jmb::simd
