// Compiled with -mavx512f when the toolchain supports it (see
// simd/CMakeLists.txt); the guard turns the TU into a stub otherwise.
#include "simd/tables.h"

#if defined(__AVX512F__)
#include "simd/kernels_impl.h"
#endif

namespace jmb::simd {

#if defined(__AVX512F__)
const Kernels* avx512_kernels() {
  static constexpr Kernels k = make_kernels<Avx512Arch>("avx512");
  return &k;
}
#else
const Kernels* avx512_kernels() { return nullptr; }
#endif

}  // namespace jmb::simd
